// Ablation benchmarks for the design choices DESIGN.md calls out:
// stripe unit, device scheduling discipline, cache capacity, and
// buffer/I/O-process sizing. Each reports its figure of merit via
// b.ReportMetric on deterministic virtual-time runs.
package pario_test

import (
	"fmt"
	"io"
	"testing"
	"time"

	pario "repro"
	"repro/internal/blockio"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// scanElapsed runs a full type-S scan of a file created with spec over
// devs drives and returns the virtual scan time.
func scanElapsed(b *testing.B, devs int, spec pfs.Spec, opts core.Options) time.Duration {
	b.Helper()
	e := sim.NewEngine()
	disks := make([]*device.Disk, devs)
	for i := range disks {
		disks[i] = device.New(device.Config{Name: fmt.Sprintf("d%d", i), Engine: e})
	}
	store, err := blockio.NewDirect(disks)
	if err != nil {
		b.Fatal(err)
	}
	vol := pfs.NewVolume(store)
	f, err := vol.Create(spec)
	if err != nil {
		b.Fatal(err)
	}
	var elapsed time.Duration
	e.Go("main", func(p *sim.Proc) {
		w, err := core.OpenWriter(f, opts)
		if err != nil {
			b.Error(err)
			return
		}
		buf := make([]byte, spec.RecordSize)
		for r := int64(0); r < spec.NumRecords; r++ {
			if _, err := w.WriteRecord(p, buf); err != nil {
				b.Error(err)
				return
			}
		}
		if err := w.Close(p); err != nil {
			b.Error(err)
			return
		}
		start := p.Now()
		rd, err := core.OpenReader(f, opts)
		if err != nil {
			b.Error(err)
			return
		}
		for {
			if _, _, err := rd.ReadRecord(p); err != nil {
				if err == io.EOF {
					break
				}
				b.Error(err)
				return
			}
		}
		_ = rd.Close(p)
		elapsed = p.Now() - start
	})
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
	return elapsed
}

// BenchmarkAblationStripeUnit sweeps the stripe unit of a striped S
// file: fine units maximize read-ahead parallelism for sequential scans,
// coarse units cost device idleness.
func BenchmarkAblationStripeUnit(b *testing.B) {
	const devs = 4
	for _, unit := range []int64{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("unit%d", unit), func(b *testing.B) {
			var elapsed time.Duration
			for i := 0; i < b.N; i++ {
				elapsed = scanElapsed(b, devs, pfs.Spec{
					Name: "s", Org: pfs.OrgSequential, RecordSize: 4096,
					BlockRecords: 1, NumRecords: 256, StripeUnitFS: unit,
				}, core.Options{NBufs: 8, IOProcs: 4})
			}
			b.ReportMetric(elapsed.Seconds(), "virtual_s")
		})
	}
}

// BenchmarkAblationSched compares FCFS and SCAN on a contended drive
// (16 partitions, 1 device — E4's worst case).
func BenchmarkAblationSched(b *testing.B) {
	for _, sched := range []device.Sched{device.FCFS, device.SCAN} {
		b.Run(sched.String(), func(b *testing.B) {
			var elapsed time.Duration
			for i := 0; i < b.N; i++ {
				e := sim.NewEngine()
				d := device.New(device.Config{Engine: e, Sched: sched})
				store, err := blockio.NewDirect([]*device.Disk{d})
				if err != nil {
					b.Fatal(err)
				}
				vol := pfs.NewVolume(store)
				f, err := vol.Create(pfs.Spec{
					Name: "ps", Org: pfs.OrgPartitioned, RecordSize: 4096,
					BlockRecords: 1, NumRecords: 256, Parts: 16,
				})
				if err != nil {
					b.Fatal(err)
				}
				e.Go("main", func(p *sim.Proc) {
					w, err := core.OpenWriter(f, core.Options{NBufs: 4, IOProcs: 2})
					if err != nil {
						b.Error(err)
						return
					}
					buf := make([]byte, 4096)
					for r := int64(0); r < 256; r++ {
						if _, err := w.WriteRecord(p, buf); err != nil {
							b.Error(err)
							return
						}
					}
					if err := w.Close(p); err != nil {
						b.Error(err)
						return
					}
					var g sim.Group
					for wk := 0; wk < 16; wk++ {
						wid := wk
						g.Spawn(p.Engine(), "w", func(c *sim.Proc) {
							r, err := core.OpenPartReader(f, wid, core.Options{NBufs: 2, IOProcs: 1})
							if err != nil {
								return
							}
							for {
								if _, _, err := r.ReadRecord(c); err != nil {
									break
								}
								c.Sleep(time.Millisecond)
							}
							_ = r.Close(c)
						})
					}
					g.Wait(p)
				})
				if err := e.Run(); err != nil {
					b.Fatal(err)
				}
				elapsed = e.Now()
			}
			b.ReportMetric(elapsed.Seconds(), "virtual_s")
		})
	}
}

// BenchmarkAblationCacheSize sweeps the GDA block-cache capacity under a
// skewed workload and reports the hit rate — sizing the §4 "buffer
// caching" recommendation.
func BenchmarkAblationCacheSize(b *testing.B) {
	for _, capacity := range []int{2, 4, 8, 16, 32} {
		b.Run(fmt.Sprintf("cache%d", capacity), func(b *testing.B) {
			var hitRate float64
			for i := 0; i < b.N; i++ {
				disks := []*pario.Disk{pario.NewDisk(pario.DiskConfig{})}
				vol, err := pario.NewVolume(disks)
				if err != nil {
					b.Fatal(err)
				}
				f, err := vol.Create(pario.Spec{
					Name: "gda", Org: pario.OrgGlobalDirect, RecordSize: 512, NumRecords: 2048,
				})
				if err != nil {
					b.Fatal(err)
				}
				opts := pario.DefaultOptions()
				opts.CacheBlocks = capacity
				d, err := pario.OpenDirect(f, opts)
				if err != nil {
					b.Fatal(err)
				}
				ctx := pario.NewWall()
				pat := workload.NewZipfAccess(11, 2048, 1.1)
				buf := make([]byte, 512)
				for n := 0; n < 8000; n++ {
					if err := d.ReadRecordAt(ctx, pat.Next(), buf); err != nil {
						b.Fatal(err)
					}
				}
				hitRate = d.CacheStats().HitRate()
			}
			b.ReportMetric(hitRate*100, "hit_pct")
		})
	}
}

// BenchmarkAblationIOProcs fixes 8 buffers and sweeps the dedicated I/O
// process count on a 4-drive striped scan: parallel prefetchers are what
// turn buffer space into device concurrency.
func BenchmarkAblationIOProcs(b *testing.B) {
	for _, procs := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("ioprocs%d", procs), func(b *testing.B) {
			var elapsed time.Duration
			for i := 0; i < b.N; i++ {
				elapsed = scanElapsed(b, 4, pfs.Spec{
					Name: "s", Org: pfs.OrgSequential, RecordSize: 4096,
					BlockRecords: 1, NumRecords: 256, StripeUnitFS: 1,
				}, core.Options{NBufs: 8, IOProcs: procs})
			}
			b.ReportMetric(elapsed.Seconds(), "virtual_s")
		})
	}
}
