package pfs

import (
	"strings"
	"testing"

	"repro/internal/blockio"
	"repro/internal/device"
)

func testVolume(t *testing.T, devs int) *Volume {
	t.Helper()
	disks := make([]*device.Disk, devs)
	for i := range disks {
		disks[i] = device.New(device.Config{
			Geometry: device.Geometry{BlockSize: 256, BlocksPerCyl: 8, Cylinders: 64},
		})
	}
	store, err := blockio.NewDirect(disks)
	if err != nil {
		t.Fatal(err)
	}
	return NewVolume(store)
}

func TestCreateDefaults(t *testing.T) {
	v := testVolume(t, 4)
	f, err := v.Create(Spec{
		Name:       "data",
		Org:        OrgSequential,
		RecordSize: 64,
		NumRecords: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	sp := f.Spec()
	if sp.BlockRecords != 4 { // 256/64
		t.Fatalf("default BlockRecords = %d, want 4", sp.BlockRecords)
	}
	if sp.Placement != PlaceStriped {
		t.Fatalf("S file placement = %v, want striped", sp.Placement)
	}
	if f.Parts() != 1 {
		t.Fatalf("S file parts = %d", f.Parts())
	}
	if f.Mapper().NumBlocks() != 25 {
		t.Fatalf("blocks = %d", f.Mapper().NumBlocks())
	}
}

func TestCreateValidation(t *testing.T) {
	v := testVolume(t, 2)
	cases := []Spec{
		{},                         // no name
		{Name: "a"},                // no record size
		{Name: "a", RecordSize: 8}, // no records
		{Name: "a", RecordSize: 8, NumRecords: -4},                     // negative
		{Name: "a", Org: OrgPartitioned, RecordSize: 8, NumRecords: 4}, // PS without parts
	}
	for i, s := range cases {
		if _, err := v.Create(s); err == nil {
			t.Fatalf("case %d accepted: %+v", i, s)
		}
	}
}

func TestCreateDuplicateName(t *testing.T) {
	v := testVolume(t, 2)
	spec := Spec{Name: "x", RecordSize: 8, NumRecords: 10}
	if _, err := v.Create(spec); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Create(spec); err == nil || !strings.Contains(err.Error(), "exists") {
		t.Fatalf("duplicate accepted: %v", err)
	}
}

func TestLookupRemove(t *testing.T) {
	v := testVolume(t, 2)
	if _, err := v.Create(Spec{Name: "x", RecordSize: 8, NumRecords: 10}); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Lookup("x"); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Lookup("y"); err == nil {
		t.Fatal("lookup of missing file passed")
	}
	names := v.Files()
	if len(names) != 1 || names[0] != "x" {
		t.Fatalf("Files = %v", names)
	}
	if err := v.Remove("x"); err != nil {
		t.Fatal(err)
	}
	if err := v.Remove("x"); err == nil {
		t.Fatal("double remove passed")
	}
}

func TestPartitionDefaultsEvenSplit(t *testing.T) {
	v := testVolume(t, 4)
	// 10 blocks over 4 parts -> 3,3,2,2.
	f, err := v.Create(Spec{
		Name: "ps", Org: OrgPartitioned, RecordSize: 64,
		BlockRecords: 4, NumRecords: 40, Parts: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := [][2]int64{{0, 3}, {3, 6}, {6, 8}, {8, 10}}
	for p := 0; p < 4; p++ {
		first, end := f.PartBlockRange(p)
		if first != want[p][0] || end != want[p][1] {
			t.Fatalf("part %d = [%d,%d), want %v", p, first, end, want[p])
		}
	}
	if f.Spec().Placement != PlacePartitioned {
		t.Fatalf("PS placement = %v", f.Spec().Placement)
	}
}

func TestPartRecordRangeClampsShortFile(t *testing.T) {
	v := testVolume(t, 2)
	// 7 records, 2 per block -> 4 blocks (last short); parts 2 -> blocks 2,2.
	f, err := v.Create(Spec{
		Name: "ps", Org: OrgPartitioned, RecordSize: 8,
		BlockRecords: 2, NumRecords: 7, Parts: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	first, end := f.PartRecordRange(1)
	if first != 4 || end != 7 {
		t.Fatalf("part 1 records = [%d,%d), want [4,7)", first, end)
	}
}

func TestExplicitPartBlocks(t *testing.T) {
	v := testVolume(t, 2)
	f, err := v.Create(Spec{
		Name: "ps", Org: OrgPartitioned, RecordSize: 8,
		BlockRecords: 1, NumRecords: 10, Parts: 3,
		PartBlocks: []int64{5, 3, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if first, end := f.PartBlockRange(1); first != 5 || end != 8 {
		t.Fatalf("part 1 = [%d,%d)", first, end)
	}
	// Sizes that don't add up must fail.
	if _, err := v.Create(Spec{
		Name: "bad", Org: OrgPartitioned, RecordSize: 8,
		BlockRecords: 1, NumRecords: 10, Parts: 2,
		PartBlocks: []int64{5, 3},
	}); err == nil {
		t.Fatal("bad partition sizes accepted")
	}
}

func TestBlockOwner(t *testing.T) {
	v := testVolume(t, 4)
	ps, err := v.Create(Spec{
		Name: "ps", Org: OrgPartitioned, RecordSize: 64,
		BlockRecords: 4, NumRecords: 48, Parts: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 12 blocks over 3 parts -> 4 each.
	for b := int64(0); b < 12; b++ {
		if got := ps.BlockOwner(b); got != int(b/4) {
			t.Fatalf("PS owner(%d) = %d, want %d", b, got, b/4)
		}
	}
	is, err := v.Create(Spec{
		Name: "is", Org: OrgInterleaved, RecordSize: 64,
		BlockRecords: 4, NumRecords: 48, Parts: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for b := int64(0); b < 12; b++ {
		if got := is.BlockOwner(b); got != int(b%3) {
			t.Fatalf("IS owner(%d) = %d, want %d", b, got, b%3)
		}
	}
}

func TestAllocationSeparatesFiles(t *testing.T) {
	v := testVolume(t, 2)
	f1, err := v.Create(Spec{Name: "a", RecordSize: 128, NumRecords: 16})
	if err != nil {
		t.Fatal(err)
	}
	f2, err := v.Create(Spec{Name: "b", RecordSize: 128, NumRecords: 16})
	if err != nil {
		t.Fatal(err)
	}
	// Physical locations of block 0 must differ.
	d1, p1 := f1.Set().Locate(0)
	d2, p2 := f2.Set().Locate(0)
	if d1 == d2 && p1 == p2 {
		t.Fatal("two files share a physical block")
	}
	used := v.Used()
	if used[0] == 0 && used[1] == 0 {
		t.Fatal("no space accounted")
	}
}

func TestVolumeFull(t *testing.T) {
	v := testVolume(t, 1)
	// Device: 8*64 = 512 blocks of 256B. Ask for more.
	if _, err := v.Create(Spec{Name: "big", RecordSize: 256, NumRecords: 600}); err == nil {
		t.Fatal("over-capacity create accepted")
	}
	// A fitting file still works afterwards.
	if _, err := v.Create(Spec{Name: "ok", RecordSize: 256, NumRecords: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestStripeUnitOverride(t *testing.T) {
	v := testVolume(t, 4)
	f, err := v.Create(Spec{
		Name: "declustered", Org: OrgGlobalDirect, RecordSize: 64,
		BlockRecords: 16, NumRecords: 256, // paper-block = 1024B = 4 fs blocks
		StripeUnitFS: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// With unit 1, consecutive fs blocks hit different devices.
	d0, _ := f.Set().Locate(0)
	d1, _ := f.Set().Locate(1)
	if d0 == d1 {
		t.Fatal("declustered layout kept consecutive fs blocks on one device")
	}
	// Default (whole paper-block) keeps them together.
	g, err := v.Create(Spec{
		Name: "whole", Org: OrgGlobalDirect, RecordSize: 64,
		BlockRecords: 16, NumRecords: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	e0, _ := g.Set().Locate(0)
	e1, _ := g.Set().Locate(1)
	if e0 != e1 {
		t.Fatal("whole-block layout split a paper-block")
	}
}

func TestOrganizationStrings(t *testing.T) {
	want := map[Organization]string{
		OrgSequential: "S", OrgPartitioned: "PS", OrgInterleaved: "IS",
		OrgSelfScheduled: "SS", OrgGlobalDirect: "GDA", OrgPartitionedDirect: "PDA",
	}
	for org, s := range want {
		if org.String() != s {
			t.Fatalf("%d -> %q want %q", int(org), org.String(), s)
		}
	}
	if Organization(99).String() == "" || Placement(99).String() == "" {
		t.Fatal("unknown enums print empty")
	}
	if Standard.String() != "standard" || Specialized.String() != "specialized" {
		t.Fatal("category strings")
	}
	if PlaceAuto.String() != "auto" || PlaceStriped.String() != "striped" ||
		PlacePartitioned.String() != "partitioned" || PlaceInterleaved.String() != "interleaved" {
		t.Fatal("placement strings")
	}
}

func TestInterleavedPlacementEqualsDevicesPerProc(t *testing.T) {
	v := testVolume(t, 3)
	f, err := v.Create(Spec{
		Name: "is", Org: OrgInterleaved, RecordSize: 256,
		BlockRecords: 1, NumRecords: 9, Parts: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Paper-block b belongs to proc b%3, which owns device b%3.
	for b := int64(0); b < 9; b++ {
		dev, _ := f.Set().Locate(b) // fsPer == 1 here
		if dev != int(b%3) {
			t.Fatalf("block %d on device %d, want %d", b, dev, b%3)
		}
	}
}

func TestFileGroup(t *testing.T) {
	v := testVolume(t, 2)
	mk := func(name string, records int64) *File {
		t.Helper()
		f, err := v.Create(Spec{Name: name, Org: OrgSequential, RecordSize: 256, NumRecords: records})
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	a := mk("a", 6) // 6 fs blocks
	b := mk("b", 3) // 3 fs blocks
	g, err := v.OpenGroup("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 2 || g.File(0) != a || g.File(1) != b {
		t.Fatalf("group members wrong: %v", g)
	}
	if g.TotalFSBlocks() != 9 {
		t.Fatalf("TotalFSBlocks = %d, want 9", g.TotalFSBlocks())
	}
	if g.Offset(0) != 0 || g.Offset(1) != 6 || g.Offset(2) != 9 {
		t.Fatalf("offsets = %d %d %d", g.Offset(0), g.Offset(1), g.Offset(2))
	}
	for _, tc := range []struct {
		global int64
		file   int
		block  int64
	}{{0, 0, 0}, {5, 0, 5}, {6, 1, 0}, {8, 1, 2}} {
		file, block, err := g.Locate(tc.global)
		if err != nil || file != tc.file || block != tc.block {
			t.Fatalf("Locate(%d) = (%d, %d, %v), want (%d, %d)", tc.global, file, block, err, tc.file, tc.block)
		}
	}
	if _, _, err := g.Locate(9); err == nil {
		t.Fatal("Locate beyond the group accepted")
	}
	if _, _, err := g.Locate(-1); err == nil {
		t.Fatal("negative Locate accepted")
	}
	if g.Store() != v.Store() {
		t.Fatal("group store differs from volume store")
	}
}

func TestFileGroupValidation(t *testing.T) {
	v := testVolume(t, 2)
	f, err := v.Create(Spec{Name: "a", Org: OrgSequential, RecordSize: 256, NumRecords: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewFileGroup(); err == nil {
		t.Fatal("empty group accepted")
	}
	if _, err := NewFileGroup(f, f); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Fatalf("duplicate member: %v", err)
	}
	if _, err := v.OpenGroup("a", "missing"); err == nil {
		t.Fatal("missing member accepted")
	}
	// Files on a different device array cannot join the group.
	v2 := testVolume(t, 2)
	f2, err := v2.Create(Spec{Name: "b", Org: OrgSequential, RecordSize: 256, NumRecords: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewFileGroup(f, f2); err == nil || !strings.Contains(err.Error(), "different device array") {
		t.Fatalf("cross-array group: %v", err)
	}
}
