package pfs

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/blockio"
	"repro/internal/device"
)

func TestCheckCleanVolume(t *testing.T) {
	v := testVolume(t, 4)
	specs := []Spec{
		{Name: "a", Org: OrgSequential, RecordSize: 64, NumRecords: 100},
		{Name: "b", Org: OrgPartitioned, RecordSize: 64, BlockRecords: 2, NumRecords: 64, Parts: 4},
		{Name: "c", Org: OrgInterleaved, RecordSize: 32, BlockRecords: 4, NumRecords: 48, Parts: 3},
		{Name: "d", Org: OrgGlobalDirect, RecordSize: 256, NumRecords: 32, StripeUnitFS: 1},
	}
	for _, s := range specs {
		if _, err := v.Create(s); err != nil {
			t.Fatal(err)
		}
	}
	rep := v.Check()
	if !rep.OK() {
		t.Fatalf("clean volume flagged:\n%s", rep)
	}
	if rep.Files != 4 || rep.Extents == 0 {
		t.Fatalf("report = %+v", rep)
	}
	if !strings.Contains(rep.String(), "consistent") {
		t.Fatalf("String = %q", rep.String())
	}
}

func TestCheckDetectsOverlap(t *testing.T) {
	v := testVolume(t, 2)
	if _, err := v.Create(Spec{Name: "a", RecordSize: 256, NumRecords: 32}); err != nil {
		t.Fatal(err)
	}
	// Force an overlapping restore: same bases as file "a".
	a, _ := v.Lookup("a")
	spec := a.Spec()
	spec.Name = "evil"
	if _, err := v.Restore(spec, a.Set().Bases()); err != nil {
		t.Fatal(err)
	}
	rep := v.Check()
	if rep.OK() {
		t.Fatal("overlapping extents not detected")
	}
	found := false
	for _, p := range rep.Problems {
		if strings.Contains(p, "overlaps") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no overlap problem in report:\n%s", rep)
	}
}

func TestCheckQuickRandomVolumes(t *testing.T) {
	// Property: any volume built purely through Create passes fsck.
	check := func(seeds [6]uint16, devs8 uint8) bool {
		devs := int(devs8%4) + 1
		disks := make([]*device.Disk, devs)
		for i := range disks {
			disks[i] = device.New(device.Config{
				Geometry: device.Geometry{BlockSize: 256, BlocksPerCyl: 8, Cylinders: 128},
			})
		}
		store, err := blockio.NewDirect(disks)
		if err != nil {
			return false
		}
		v := NewVolume(store)
		orgs := []Organization{OrgSequential, OrgPartitioned, OrgInterleaved, OrgGlobalDirect, OrgPartitionedDirect}
		created := 0
		for i, s := range seeds {
			spec := Spec{
				Name:         string(rune('a' + i)),
				Org:          orgs[int(s)%len(orgs)],
				RecordSize:   int(s%200) + 1,
				BlockRecords: int(s%3) + 1,
				NumRecords:   int64(s%150) + 1,
				Parts:        int(s%3) + 1,
			}
			if _, err := v.Create(spec); err == nil {
				created++
			}
		}
		if created == 0 {
			return true
		}
		return v.Check().OK()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
