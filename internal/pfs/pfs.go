// Package pfs implements the parallel file system: volumes spanning a
// device set, a directory of parallel files, and per-file metadata (the
// paper's §2–§3 concepts of organization, records, blocks and
// partitions).
//
// A file is created with a fixed size and organization; the volume
// allocates one contiguous extent per device and binds the file's layout
// (striped / partitioned / interleaved, per §4) over those extents.
// Access methods for the organizations live in package core; pfs only
// owns naming, metadata and space.
package pfs

import (
	"fmt"
	"sort"

	"repro/internal/blockio"
	"repro/internal/records"
)

// Organization identifies the paper's six standard parallel file
// organizations (§3, Figure 1).
type Organization int

const (
	// OrgSequential is type S: one process reads or writes the file in
	// order (possibly at very high rates).
	OrgSequential Organization = iota
	// OrgPartitioned is type PS: contiguous blocks, one partition per
	// process.
	OrgPartitioned
	// OrgInterleaved is type IS: partitions strided across the file
	// (wrapped storage).
	OrgInterleaved
	// OrgSelfScheduled is type SS: every request, from whatever
	// process, receives the next record exactly once.
	OrgSelfScheduled
	// OrgGlobalDirect is type GDA: any process accesses any record.
	OrgGlobalDirect
	// OrgPartitionedDirect is type PDA: random access within blocks
	// assigned to the process.
	OrgPartitionedDirect
)

// String implements fmt.Stringer with the paper's abbreviations.
func (o Organization) String() string {
	switch o {
	case OrgSequential:
		return "S"
	case OrgPartitioned:
		return "PS"
	case OrgInterleaved:
		return "IS"
	case OrgSelfScheduled:
		return "SS"
	case OrgGlobalDirect:
		return "GDA"
	case OrgPartitionedDirect:
		return "PDA"
	default:
		return fmt.Sprintf("Organization(%d)", int(o))
	}
}

// Category distinguishes the paper's two lifespan classes (§2).
type Category int

const (
	// Standard files outlive their programs and must present a
	// conventional global view.
	Standard Category = iota
	// Specialized files are private to one program (temporaries,
	// checkpoints, out-of-core storage).
	Specialized
)

// String implements fmt.Stringer.
func (c Category) String() string {
	if c == Specialized {
		return "specialized"
	}
	return "standard"
}

// Placement selects the physical strategy (§4) when creating a file.
type Placement int

const (
	// PlaceAuto picks the paper's recommendation for the organization:
	// striping for S/SS/GDA, partitioned for PS/PDA, interleaved for IS.
	PlaceAuto Placement = iota
	// PlaceStriped stripes fs blocks round-robin across devices.
	PlaceStriped
	// PlacePartitioned puts each partition's blocks on one device.
	PlacePartitioned
	// PlaceInterleaved puts each (cyclic) partition stream on one device.
	PlaceInterleaved
)

// String implements fmt.Stringer.
func (p Placement) String() string {
	switch p {
	case PlaceAuto:
		return "auto"
	case PlaceStriped:
		return "striped"
	case PlacePartitioned:
		return "partitioned"
	case PlaceInterleaved:
		return "interleaved"
	default:
		return fmt.Sprintf("Placement(%d)", int(p))
	}
}

// Spec carries the creation parameters of a parallel file.
type Spec struct {
	Name     string
	Org      Organization
	Category Category

	RecordSize   int   // bytes per record (required)
	BlockRecords int   // records per paper-block; 0 = fill one fs block
	NumRecords   int64 // file length in records (fixed at creation)

	// Parts is the number of partitions (processes) for PS/IS/PDA.
	// Ignored (treated as 1) for S/SS/GDA unless explicitly set.
	Parts int
	// PartBlocks optionally fixes each partition's size in paper-blocks
	// (PS/PDA); when nil the blocks are split as evenly as possible.
	PartBlocks []int64

	// Placement optionally overrides the §4 default physical strategy.
	Placement Placement
	// StripeUnitFS sets the stripe unit in fs blocks for striped
	// placement; 0 = one paper-block (whole blocks round-robin). Use 1
	// for declustering.
	StripeUnitFS int64
	// Pack selects the on-device packing policy when several partitions
	// share a device (PS/IS with fewer devices than partitions).
	Pack blockio.Pack
}

// File is an entry in a volume's directory: metadata plus the bound
// logical-block Set. Access methods live in package core.
type File struct {
	spec   Spec
	mapper *records.Mapper
	set    *blockio.Set
	layout blockio.Layout
	// partFirstBlock[p] is the first paper-block of partition p
	// (len = parts+1; the final entry is NumBlocks).
	partFirstBlock []int64
}

// Spec returns the file's creation parameters (with defaults resolved).
func (f *File) Spec() Spec { return f.spec }

// Name reports the file name.
func (f *File) Name() string { return f.spec.Name }

// Mapper exposes the record/block framing.
func (f *File) Mapper() *records.Mapper { return f.mapper }

// Set exposes the logical-block I/O interface.
func (f *File) Set() *blockio.Set { return f.set }

// Layout exposes the physical layout.
func (f *File) Layout() blockio.Layout { return f.layout }

// Parts reports the number of partitions.
func (f *File) Parts() int { return len(f.partFirstBlock) - 1 }

// PartBlockRange reports the paper-block range [first, end) of
// partition p. For IS files the range is the cyclic class {first + k*Parts}
// and this reports (p, NumBlocks) bounds instead; use Org to interpret.
func (f *File) PartBlockRange(p int) (first, end int64) {
	return f.partFirstBlock[p], f.partFirstBlock[p+1]
}

// PartRecordRange reports the record range [first, end) of partition p
// for contiguous (PS/PDA) files.
func (f *File) PartRecordRange(p int) (first, end int64) {
	bFirst, bEnd := f.PartBlockRange(p)
	first = bFirst * int64(f.mapper.BlockRecords())
	end = bEnd * int64(f.mapper.BlockRecords())
	if end > f.mapper.NumRecords() {
		end = f.mapper.NumRecords()
	}
	if first > f.mapper.NumRecords() {
		first = f.mapper.NumRecords()
	}
	return first, end
}

// BlockOwner reports which partition owns paper-block b under the file's
// organization (contiguous ranges for PS/PDA, cyclic for IS; everything
// belongs to partition 0 for S/SS/GDA single-part files).
func (f *File) BlockOwner(b int64) int {
	switch f.spec.Org {
	case OrgInterleaved:
		return int(b % int64(f.Parts()))
	default:
		// Binary search the partition table.
		i := sort.Search(f.Parts(), func(i int) bool { return f.partFirstBlock[i+1] > b })
		if i >= f.Parts() {
			i = f.Parts() - 1
		}
		return i
	}
}

// FileGroup is an ordered set of files sharing one device array, opened
// together for collective access. It concatenates the members' fs-block
// spaces into one global enumeration — file i's blocks occupy the global
// indexes [Offset(i), Offset(i+1)) — which is the coordinate system the
// collective subsystem computes its union footprint and file domains in.
type FileGroup struct {
	files []*File
	offs  []int64 // offs[i] = global index of file i's block 0; len = files+1
}

// NewFileGroup forms a group from already-open files. The files must be
// distinct and their Sets must share one Store (one device array) — the
// condition under which cross-file physical merging (blockio.BatchVec)
// is meaningful.
func NewFileGroup(files ...*File) (*FileGroup, error) {
	if len(files) == 0 {
		return nil, fmt.Errorf("pfs: file group needs at least one file")
	}
	store := files[0].Set().Store()
	g := &FileGroup{files: files, offs: make([]int64, len(files)+1)}
	for i, f := range files {
		if f == nil {
			return nil, fmt.Errorf("pfs: file group member %d is nil", i)
		}
		if f.Set().Store() != store {
			return nil, fmt.Errorf("pfs: file group member %q is on a different device array", f.Name())
		}
		for _, prev := range files[:i] {
			if prev == f {
				return nil, fmt.Errorf("pfs: file group lists %q twice", f.Name())
			}
		}
		g.offs[i+1] = g.offs[i] + f.Mapper().TotalFSBlocks()
	}
	return g, nil
}

// OpenGroup looks up the named files and forms a FileGroup — the
// collective open of a file group.
func (v *Volume) OpenGroup(names ...string) (*FileGroup, error) {
	files := make([]*File, len(names))
	for i, n := range names {
		f, err := v.Lookup(n)
		if err != nil {
			return nil, err
		}
		files[i] = f
	}
	return NewFileGroup(files...)
}

// Len reports the number of files in the group.
func (g *FileGroup) Len() int { return len(g.files) }

// File returns member i.
func (g *FileGroup) File(i int) *File { return g.files[i] }

// Store returns the shared device array.
func (g *FileGroup) Store() blockio.Store { return g.files[0].Set().Store() }

// TotalFSBlocks reports the size of the concatenated block space.
func (g *FileGroup) TotalFSBlocks() int64 { return g.offs[len(g.files)] }

// Offset reports the global index of file i's block 0; Offset(Len()) is
// the total.
func (g *FileGroup) Offset(i int) int64 { return g.offs[i] }

// Locate maps a global block index to its (file, file-local block) pair.
func (g *FileGroup) Locate(global int64) (file int, block int64, err error) {
	if global < 0 || global >= g.TotalFSBlocks() {
		return 0, 0, fmt.Errorf("pfs: global block %d out of range [0,%d)", global, g.TotalFSBlocks())
	}
	file = sort.Search(len(g.files), func(i int) bool { return g.offs[i+1] > global })
	return file, global - g.offs[file], nil
}

// Volume is a parallel file system instance over a Store.
type Volume struct {
	store blockio.Store
	next  []int64 // per-device allocation cursor (physical blocks)
	files map[string]*File
	order []string // creation order (for persistence replay)
}

// NewVolume formats a volume over the store.
func NewVolume(store blockio.Store) *Volume {
	return &Volume{
		store: store,
		next:  make([]int64, store.Devices()),
		files: make(map[string]*File),
	}
}

// CreationOrder lists live files in the order they were created
// (removed files excluded). Replaying Create with each file's resolved
// Spec on a fresh volume reproduces identical extents, which is how
// volumes are persisted.
func (v *Volume) CreationOrder() []string {
	out := make([]string, 0, len(v.order))
	for _, n := range v.order {
		if _, ok := v.files[n]; ok {
			out = append(out, n)
		}
	}
	return out
}

// Store exposes the underlying store.
func (v *Volume) Store() blockio.Store { return v.store }

// Devices reports the number of data devices.
func (v *Volume) Devices() int { return v.store.Devices() }

// Files lists the directory in name order.
func (v *Volume) Files() []string {
	names := make([]string, 0, len(v.files))
	for n := range v.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Lookup returns the named file.
func (v *Volume) Lookup(name string) (*File, error) {
	f, ok := v.files[name]
	if !ok {
		return nil, fmt.Errorf("pfs: file %q not found", name)
	}
	return f, nil
}

// Remove deletes the directory entry. (Extent space is not reclaimed;
// volumes are arena-allocated, which suits fixed experiment runs.)
func (v *Volume) Remove(name string) error {
	if _, ok := v.files[name]; !ok {
		return fmt.Errorf("pfs: file %q not found", name)
	}
	delete(v.files, name)
	return nil
}

// Used reports the allocated blocks per device.
func (v *Volume) Used() []int64 {
	out := make([]int64, len(v.next))
	copy(out, v.next)
	return out
}

// Free reports the unallocated blocks per device.
func (v *Volume) Free() []int64 {
	out := make([]int64, len(v.next))
	for i, used := range v.next {
		out[i] = v.store.Blocks() - used
	}
	return out
}

// splitEven splits total into n parts differing by at most 1.
func splitEven(total int64, n int) []int64 {
	out := make([]int64, n)
	base := total / int64(n)
	rem := total % int64(n)
	for i := range out {
		out[i] = base
		if int64(i) < rem {
			out[i]++
		}
	}
	return out
}

// resolveSpec fills defaults and validates a spec.
func (v *Volume) resolveSpec(spec *Spec) error {
	if spec.Name == "" {
		return fmt.Errorf("pfs: file needs a name")
	}
	if _, exists := v.files[spec.Name]; exists {
		return fmt.Errorf("pfs: file %q already exists", spec.Name)
	}
	if spec.RecordSize <= 0 {
		return fmt.Errorf("pfs: %q: record size %d", spec.Name, spec.RecordSize)
	}
	if spec.NumRecords <= 0 {
		return fmt.Errorf("pfs: %q: file needs records, got %d", spec.Name, spec.NumRecords)
	}
	fsbs := v.store.BlockSize()
	if spec.BlockRecords == 0 {
		spec.BlockRecords = fsbs / spec.RecordSize
		if spec.BlockRecords < 1 {
			spec.BlockRecords = 1
		}
	}
	if spec.BlockRecords < 0 {
		return fmt.Errorf("pfs: %q: negative block records", spec.Name)
	}
	switch spec.Org {
	case OrgPartitioned, OrgInterleaved, OrgPartitionedDirect:
		if spec.Parts <= 0 {
			return fmt.Errorf("pfs: %q: organization %s needs Parts > 0", spec.Name, spec.Org)
		}
	default:
		if spec.Parts <= 0 {
			spec.Parts = 1
		}
	}
	if spec.Placement == PlaceAuto {
		switch spec.Org {
		case OrgPartitioned, OrgPartitionedDirect:
			spec.Placement = PlacePartitioned
		case OrgInterleaved:
			spec.Placement = PlaceInterleaved
		default:
			spec.Placement = PlaceStriped
		}
	}
	return nil
}

// Create allocates and registers a new parallel file.
func (v *Volume) Create(spec Spec) (*File, error) {
	return v.create(spec, nil)
}

// Restore registers a file at explicit per-device extent bases — the
// persistence path (volume images record each file's bases so removals
// and allocation history need not be replayed). The allocation cursors
// advance past the restored extents.
func (v *Volume) Restore(spec Spec, bases []int64) (*File, error) {
	if len(bases) != v.store.Devices() {
		return nil, fmt.Errorf("pfs: %q: %d bases for %d devices", spec.Name, len(bases), v.store.Devices())
	}
	return v.create(spec, bases)
}

// create implements Create/Restore; fixedBase non-nil pins the extents.
func (v *Volume) create(spec Spec, fixedBase []int64) (*File, error) {
	if err := v.resolveSpec(&spec); err != nil {
		return nil, err
	}
	mapper, err := records.NewMapper(spec.RecordSize, spec.BlockRecords, v.store.BlockSize(), spec.NumRecords)
	if err != nil {
		return nil, fmt.Errorf("pfs: %q: %w", spec.Name, err)
	}
	nBlocks := mapper.NumBlocks()
	fsPer := mapper.FSPerBlock()
	totalFS := mapper.TotalFSBlocks()
	devs := v.store.Devices()

	// Partition table in paper-blocks.
	partBlocks := spec.PartBlocks
	if partBlocks == nil {
		partBlocks = splitEven(nBlocks, spec.Parts)
	}
	if len(partBlocks) != spec.Parts {
		return nil, fmt.Errorf("pfs: %q: %d partition sizes for %d parts", spec.Name, len(partBlocks), spec.Parts)
	}
	var sum int64
	partFirst := make([]int64, spec.Parts+1)
	for i, n := range partBlocks {
		if n < 0 {
			return nil, fmt.Errorf("pfs: %q: negative partition size", spec.Name)
		}
		sum += n
		partFirst[i+1] = sum
	}
	if sum != nBlocks {
		return nil, fmt.Errorf("pfs: %q: partition sizes total %d blocks, file has %d", spec.Name, sum, nBlocks)
	}

	// Physical layout.
	var layout blockio.Layout
	switch spec.Placement {
	case PlaceStriped:
		unit := spec.StripeUnitFS
		if unit <= 0 {
			unit = fsPer
		}
		layout = blockio.NewStriped(devs, unit)
	case PlacePartitioned:
		partFS := make([]int64, len(partBlocks))
		for i, n := range partBlocks {
			partFS[i] = n * fsPer
		}
		l, err := blockio.NewPartitioned(devs, partFS, fsPer, spec.Pack)
		if err != nil {
			return nil, fmt.Errorf("pfs: %q: %w", spec.Name, err)
		}
		layout = l
	case PlaceInterleaved:
		l, err := blockio.NewInterleaved(devs, spec.Parts, fsPer, totalFS, spec.Pack)
		if err != nil {
			return nil, fmt.Errorf("pfs: %q: %w", spec.Name, err)
		}
		layout = l
	default:
		return nil, fmt.Errorf("pfs: %q: unknown placement %v", spec.Name, spec.Placement)
	}

	// Allocate per-device extents (or pin them when restoring).
	need := blockio.PerDevice(layout, totalFS)
	base := make([]int64, layout.Devices())
	if fixedBase != nil {
		for dev, n := range need {
			base[dev] = fixedBase[dev]
			if base[dev]+n > v.store.Blocks() {
				return nil, fmt.Errorf("pfs: %q: restored extent exceeds device %d", spec.Name, dev)
			}
			if end := base[dev] + n; end > v.next[dev] {
				v.next[dev] = end
			}
		}
	} else {
		for dev, n := range need {
			if v.next[dev]+n > v.store.Blocks() {
				return nil, fmt.Errorf("pfs: %q: device %d full (%d + %d > %d blocks)",
					spec.Name, dev, v.next[dev], n, v.store.Blocks())
			}
		}
		for dev, n := range need {
			base[dev] = v.next[dev]
			v.next[dev] += n
		}
	}

	set, err := blockio.NewSet(v.store, layout, base)
	if err != nil {
		return nil, fmt.Errorf("pfs: %q: %w", spec.Name, err)
	}
	spec.PartBlocks = partBlocks // store the resolved partition table
	f := &File{
		spec:           spec,
		mapper:         mapper,
		set:            set,
		layout:         layout,
		partFirstBlock: partFirst,
	}
	v.files[spec.Name] = f
	v.order = append(v.order, spec.Name)
	return f, nil
}
