package pfs

import (
	"fmt"
	"sort"

	"repro/internal/blockio"
)

// CheckReport is the result of a volume consistency check.
type CheckReport struct {
	Files    int
	Extents  int // per-device extents examined
	Problems []string
}

// OK reports whether the check found no problems.
func (r CheckReport) OK() bool { return len(r.Problems) == 0 }

// String summarizes the report.
func (r CheckReport) String() string {
	if r.OK() {
		return fmt.Sprintf("pfs: volume consistent: %d files, %d extents", r.Files, r.Extents)
	}
	s := fmt.Sprintf("pfs: volume INCONSISTENT: %d problems\n", len(r.Problems))
	for _, p := range r.Problems {
		s += "  - " + p + "\n"
	}
	return s
}

// extent is a per-device allocation claim for overlap checking.
type extent struct {
	file  string
	dev   int
	first int64
	end   int64
}

// Check verifies the volume's structural invariants — the fsck of the
// parallel file system:
//
//   - every file's layout maps every logical fs block inside the file's
//     allocated extent on the right device;
//   - no two files' extents overlap on any device;
//   - no extent exceeds the device capacity;
//   - partition tables are monotone and cover each file exactly.
func (v *Volume) Check() CheckReport {
	var rep CheckReport
	var extents []extent
	rep.Files = len(v.files)

	names := v.Files()
	for _, name := range names {
		f := v.files[name]
		m := f.mapper
		total := m.TotalFSBlocks()
		layout := f.layout
		bases := f.set.Bases()

		// Partition table invariants.
		if f.partFirstBlock[0] != 0 {
			rep.Problems = append(rep.Problems, fmt.Sprintf("%s: partition table does not start at block 0", name))
		}
		for i := 0; i < len(f.partFirstBlock)-1; i++ {
			if f.partFirstBlock[i] > f.partFirstBlock[i+1] {
				rep.Problems = append(rep.Problems, fmt.Sprintf("%s: partition table not monotone at %d", name, i))
			}
		}
		if last := f.partFirstBlock[len(f.partFirstBlock)-1]; last != m.NumBlocks() {
			rep.Problems = append(rep.Problems,
				fmt.Sprintf("%s: partition table ends at block %d, file has %d", name, last, m.NumBlocks()))
		}

		// Per-device extent bounds from the layout.
		need := blockio.PerDevice(layout, total)
		for dev, n := range need {
			if n == 0 {
				continue
			}
			first := bases[dev]
			end := first + n
			if end > v.store.Blocks() {
				rep.Problems = append(rep.Problems,
					fmt.Sprintf("%s: extent [%d,%d) exceeds device %d capacity %d", name, first, end, dev, v.store.Blocks()))
			}
			extents = append(extents, extent{file: name, dev: dev, first: first, end: end})
		}

		// Every logical block maps inside the extent.
		for b := int64(0); b < total; b++ {
			dev, pb := layout.Map(b)
			if dev < 0 || dev >= len(bases) {
				rep.Problems = append(rep.Problems, fmt.Sprintf("%s: block %d maps to device %d", name, b, dev))
				continue
			}
			if pb < 0 || pb >= need[dev] {
				rep.Problems = append(rep.Problems,
					fmt.Sprintf("%s: block %d maps to pblock %d outside extent size %d", name, b, pb, need[dev]))
			}
		}
	}

	// Cross-file overlap per device.
	sort.Slice(extents, func(i, j int) bool {
		if extents[i].dev != extents[j].dev {
			return extents[i].dev < extents[j].dev
		}
		return extents[i].first < extents[j].first
	})
	rep.Extents = len(extents)
	for i := 1; i < len(extents); i++ {
		a, b := extents[i-1], extents[i]
		if a.dev == b.dev && b.first < a.end {
			rep.Problems = append(rep.Problems,
				fmt.Sprintf("device %d: %s [%d,%d) overlaps %s [%d,%d)", a.dev, a.file, a.first, a.end, b.file, b.first, b.end))
		}
	}
	return rep
}
