package trace

import (
	"strings"
	"testing"
)

func ev(proc int, rec, block int64) Event {
	return Event{Proc: proc, Op: Read, Record: rec, Block: block}
}

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Add(ev(0, 0, 0)) // must not panic
	if r.Events() != nil || r.Len() != 0 {
		t.Fatal("nil recorder not empty")
	}
	r.Reset()
}

func TestRecorderAccumulates(t *testing.T) {
	r := &Recorder{}
	r.Add(ev(0, 0, 0))
	r.Add(ev(1, 1, 1))
	if r.Len() != 2 {
		t.Fatalf("Len = %d", r.Len())
	}
	r.Reset()
	if r.Len() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestBlockOwners(t *testing.T) {
	events := []Event{ev(0, 0, 0), ev(1, 1, 1), ev(0, 2, 1), ev(2, 9, 9)}
	owners := BlockOwners(events, 4)
	if owners[0] != 0 {
		t.Fatalf("block 0 owner %d", owners[0])
	}
	if owners[1] != -2 {
		t.Fatalf("contested block = %d, want -2", owners[1])
	}
	if owners[2] != -1 {
		t.Fatalf("untouched block = %d, want -1", owners[2])
	}
}

func TestRenderBlocks(t *testing.T) {
	events := []Event{ev(0, 0, 0), ev(1, 1, 1), ev(0, 2, 2), ev(1, 3, 2)}
	s := RenderBlocks(events, 4)
	if !strings.Contains(s, "[P1]") || !strings.Contains(s, "[P2]") {
		t.Fatalf("render = %q", s)
	}
	if !strings.Contains(s, "[**]") || !strings.Contains(s, "[--]") {
		t.Fatalf("render = %q", s)
	}
}

func TestValidateSequential(t *testing.T) {
	good := []Event{ev(0, 0, 0), ev(0, 1, 1), ev(0, 2, 2)}
	if err := ValidateSequential(good, 3); err != nil {
		t.Fatal(err)
	}
	if err := ValidateSequential(good, 4); err == nil {
		t.Fatal("short trace accepted")
	}
	twoProcs := []Event{ev(0, 0, 0), ev(1, 1, 1)}
	if err := ValidateSequential(twoProcs, 2); err == nil {
		t.Fatal("multi-process S accepted")
	}
	skipped := []Event{ev(0, 0, 0), ev(0, 2, 2), ev(0, 1, 1)}
	if err := ValidateSequential(skipped, 3); err == nil {
		t.Fatal("out-of-order S accepted")
	}
}

func TestValidatePartitioned(t *testing.T) {
	first := []int64{0, 2, 4}
	good := []Event{ev(0, 0, 0), ev(1, 2, 2), ev(0, 1, 1), ev(1, 3, 3)}
	if err := ValidatePartitioned(good, first); err != nil {
		t.Fatal(err)
	}
	cross := []Event{ev(0, 0, 0), ev(0, 1, 1), ev(0, 2, 2), ev(1, 3, 3)}
	if err := ValidatePartitioned(cross, first); err == nil {
		t.Fatal("partition crossing accepted")
	}
	incomplete := []Event{ev(0, 0, 0), ev(1, 2, 2), ev(1, 3, 3)}
	if err := ValidatePartitioned(incomplete, first); err == nil {
		t.Fatal("incomplete partition accepted")
	}
	unknown := []Event{ev(5, 0, 0)}
	if err := ValidatePartitioned(unknown, first); err == nil {
		t.Fatal("unknown proc accepted")
	}
}

func TestValidateInterleaved(t *testing.T) {
	// 2 procs, 1 record per block, 4 records: proc0 -> 0,2; proc1 -> 1,3.
	good := []Event{ev(0, 0, 0), ev(1, 1, 1), ev(1, 3, 3), ev(0, 2, 2)}
	if err := ValidateInterleaved(good, 2, 1, 4); err != nil {
		t.Fatal(err)
	}
	wrong := []Event{ev(0, 1, 1), ev(0, 0, 0), ev(1, 2, 2), ev(1, 3, 3)}
	if err := ValidateInterleaved(wrong, 2, 1, 4); err == nil {
		t.Fatal("wrong stride class accepted")
	}
	short := []Event{ev(0, 0, 0)}
	if err := ValidateInterleaved(short, 2, 1, 4); err == nil {
		t.Fatal("incomplete interleave accepted")
	}
}

func TestValidateSelfScheduled(t *testing.T) {
	good := []Event{ev(0, 0, 0), ev(2, 1, 1), ev(1, 2, 2)}
	if err := ValidateSelfScheduled(good, 3); err != nil {
		t.Fatal(err)
	}
	skip := []Event{ev(0, 0, 0), ev(1, 2, 2), ev(2, 1, 1)}
	if err := ValidateSelfScheduled(skip, 3); err == nil {
		t.Fatal("skipped record accepted")
	}
	if err := ValidateSelfScheduled(good[:2], 3); err == nil {
		t.Fatal("short SS trace accepted")
	}
}

func TestByTime(t *testing.T) {
	events := []Event{
		{Time: 30, Proc: 0, Record: 2},
		{Time: 10, Proc: 1, Record: 0},
		{Time: 20, Proc: 2, Record: 1},
	}
	sorted := ByTime(events)
	if sorted[0].Record != 0 || sorted[1].Record != 1 || sorted[2].Record != 2 {
		t.Fatalf("sorted = %v", sorted)
	}
	// Original untouched.
	if events[0].Record != 2 {
		t.Fatal("ByTime mutated input")
	}
}
