// Package trace captures record/block access traces from parallel file
// handles and renders or validates them against the access patterns of
// the paper's Figure 1.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Op is the access direction.
type Op byte

const (
	// Read marks a record read.
	Read Op = 'R'
	// Write marks a record write.
	Write Op = 'W'
)

// Event is one record access by one process.
type Event struct {
	Time   time.Duration
	Proc   int
	Op     Op
	Record int64
	Block  int64 // paper-block holding the record
}

// Recorder accumulates events. The zero value is ready to use; a nil
// *Recorder discards events, so handles may call Add unconditionally.
type Recorder struct {
	events []Event
}

// Add appends an event (no-op on a nil recorder).
func (r *Recorder) Add(ev Event) {
	if r == nil {
		return
	}
	r.events = append(r.events, ev)
}

// Events returns the accumulated events in insertion order.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	return r.events
}

// Len reports the event count.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.events)
}

// Reset discards accumulated events.
func (r *Recorder) Reset() {
	if r != nil {
		r.events = r.events[:0]
	}
}

// BlockOwners derives, for each of nblocks paper-blocks, which process
// accessed it (-1 if untouched, -2 if touched by several processes).
func BlockOwners(events []Event, nblocks int64) []int {
	owners := make([]int, nblocks)
	for i := range owners {
		owners[i] = -1
	}
	for _, ev := range events {
		if ev.Block < 0 || ev.Block >= nblocks {
			continue
		}
		switch owners[ev.Block] {
		case -1:
			owners[ev.Block] = ev.Proc
		case ev.Proc:
		default:
			owners[ev.Block] = -2
		}
	}
	return owners
}

// RenderBlocks draws a Figure-1 style strip: one cell per paper-block
// labelled with the accessing process (P1, P2, ...), matching the
// paper's diagrams (processes are 1-based there).
func RenderBlocks(events []Event, nblocks int64) string {
	owners := BlockOwners(events, nblocks)
	var b strings.Builder
	for _, o := range owners {
		switch {
		case o == -1:
			b.WriteString("[--]")
		case o == -2:
			b.WriteString("[**]")
		default:
			fmt.Fprintf(&b, "[P%d]", o+1)
		}
	}
	return b.String()
}

// ValidateSequential checks the type-S pattern: a single process touched
// every record exactly once in ascending order.
func ValidateSequential(events []Event, nrecords int64) error {
	if int64(len(events)) != nrecords {
		return fmt.Errorf("trace: S pattern: %d events for %d records", len(events), nrecords)
	}
	proc := -1
	for i, ev := range events {
		if proc == -1 {
			proc = ev.Proc
		}
		if ev.Proc != proc {
			return fmt.Errorf("trace: S pattern: process %d intruded (expected only %d)", ev.Proc, proc)
		}
		if ev.Record != int64(i) {
			return fmt.Errorf("trace: S pattern: event %d accessed record %d", i, ev.Record)
		}
	}
	return nil
}

// ValidatePartitioned checks the type-PS pattern: each process touched
// exactly its contiguous record range [first[p], first[p+1]) in order.
func ValidatePartitioned(events []Event, first []int64) error {
	next := make([]int64, len(first)-1)
	for p := range next {
		next[p] = first[p]
	}
	for _, ev := range events {
		p := ev.Proc
		if p < 0 || p >= len(next) {
			return fmt.Errorf("trace: PS pattern: unknown process %d", p)
		}
		if ev.Record != next[p] {
			return fmt.Errorf("trace: PS pattern: process %d accessed record %d, expected %d", p, ev.Record, next[p])
		}
		next[p]++
		if next[p] > first[p+1] {
			return fmt.Errorf("trace: PS pattern: process %d overran its partition", p)
		}
	}
	for p := range next {
		if next[p] != first[p+1] {
			return fmt.Errorf("trace: PS pattern: process %d stopped at %d of %d", p, next[p], first[p+1])
		}
	}
	return nil
}

// ValidateInterleaved checks the type-IS pattern: process p touched
// exactly the records of paper-blocks ≡ p (mod procs), in order.
func ValidateInterleaved(events []Event, procs int, blockRecords int, nrecords int64) error {
	// Expected per-process sequences.
	expect := make([][]int64, procs)
	for r := int64(0); r < nrecords; r++ {
		b := r / int64(blockRecords)
		p := int(b % int64(procs))
		expect[p] = append(expect[p], r)
	}
	pos := make([]int, procs)
	for _, ev := range events {
		p := ev.Proc
		if p < 0 || p >= procs {
			return fmt.Errorf("trace: IS pattern: unknown process %d", p)
		}
		if pos[p] >= len(expect[p]) {
			return fmt.Errorf("trace: IS pattern: process %d overran its stride", p)
		}
		if want := expect[p][pos[p]]; ev.Record != want {
			return fmt.Errorf("trace: IS pattern: process %d accessed %d, expected %d", p, ev.Record, want)
		}
		pos[p]++
	}
	for p := range pos {
		if pos[p] != len(expect[p]) {
			return fmt.Errorf("trace: IS pattern: process %d completed %d of %d", p, pos[p], len(expect[p]))
		}
	}
	return nil
}

// ValidateSelfScheduled checks the type-SS pattern: every record was
// touched exactly once, and claim order (event order) is ascending — "each
// request accesses a different record and no record gets skipped".
func ValidateSelfScheduled(events []Event, nrecords int64) error {
	if int64(len(events)) != nrecords {
		return fmt.Errorf("trace: SS pattern: %d events for %d records", len(events), nrecords)
	}
	seen := make(map[int64]bool, nrecords)
	for i, ev := range events {
		if ev.Record != int64(i) {
			return fmt.Errorf("trace: SS pattern: claim %d took record %d", i, ev.Record)
		}
		if seen[ev.Record] {
			return fmt.Errorf("trace: SS pattern: record %d claimed twice", ev.Record)
		}
		seen[ev.Record] = true
	}
	procs := map[int]bool{}
	for _, ev := range events {
		procs[ev.Proc] = true
	}
	if len(procs) < 1 {
		return fmt.Errorf("trace: SS pattern: no processes")
	}
	return nil
}

// ByTime returns a copy of events sorted by timestamp (stable).
func ByTime(events []Event) []Event {
	out := make([]Event, len(events))
	copy(out, events)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time < out[j].Time })
	return out
}
