// Package mpp is a miniature MIMD runtime: it stands in for the
// "general-purpose MIMD computer architecture" the paper assumes (§2).
// A Run launches P processes (goroutines under the simulation engine),
// giving each a rank and collective operations (barrier, reductions,
// gather) in the style parallel programs of the era used.
package mpp

import (
	"fmt"
	"time"

	"repro/internal/sim"
)

// Proc is one process of a parallel program: a sim.Proc plus its rank
// and the group's collectives.
type Proc struct {
	*sim.Proc
	rank  int
	group *Group
}

// Rank reports this process's rank in [0, Size).
func (p *Proc) Rank() int { return p.rank }

// Size reports the group size.
func (p *Proc) Size() int { return p.group.size }

// Barrier blocks until every process in the group has arrived.
func (p *Proc) Barrier() { p.group.barrier.Wait(p.Proc) }

// Compute models work for the given duration of virtual time.
func (p *Proc) Compute(d time.Duration) { p.Sleep(d) }

// Group is a set of processes executing one parallel program.
type Group struct {
	size    int
	barrier *sim.Barrier
	// interconnect model (zero: communication is free, the historical
	// default — see SetLink)
	linkMsg   time.Duration
	linkBytes float64 // bytes per second; 0 = infinite
	// reduction scratch
	redVals  []float64
	redCount int
	gather   [][]byte
	a2a      [][][]byte // a2a[src][dst]: Alltoallv scratch
}

// Run launches fn on size processes under the engine and returns the
// group (join with Engine.Run or a surrounding sim.Group).
func Run(e *sim.Engine, size int, name string, fn func(p *Proc)) (*Group, *sim.Group) {
	g := &Group{
		size:    size,
		barrier: sim.NewBarrier(size),
		redVals: make([]float64, size),
		gather:  make([][]byte, size),
		a2a:     make([][][]byte, size),
	}
	for i := range g.a2a {
		g.a2a[i] = make([][]byte, size)
	}
	var join sim.Group
	for r := 0; r < size; r++ {
		rank := r
		join.Spawn(e, fmt.Sprintf("%s-%d", name, rank), func(sp *sim.Proc) {
			fn(&Proc{Proc: sp, rank: rank, group: g})
		})
	}
	return g, &join
}

// ReduceSum performs a barrier-synchronized sum reduction: every process
// contributes v and all receive the total.
func (p *Proc) ReduceSum(v float64) float64 {
	g := p.group
	g.redVals[p.rank] = v
	p.Barrier()
	var sum float64
	for _, x := range g.redVals {
		sum += x
	}
	p.Barrier() // don't let anyone overwrite redVals before all have read
	return sum
}

// ReduceMax performs a barrier-synchronized max reduction.
func (p *Proc) ReduceMax(v float64) float64 {
	g := p.group
	g.redVals[p.rank] = v
	p.Barrier()
	max := g.redVals[0]
	for _, x := range g.redVals[1:] {
		if x > max {
			max = x
		}
	}
	p.Barrier()
	return max
}

// Gather collects each process's payload; rank 0's slice of all payloads
// is returned to every process (valid until the next collective). With a
// link model configured (SetLink) each process is charged for injecting
// its payload and receiving the other processes' payloads.
func (p *Proc) Gather(payload []byte) [][]byte {
	g := p.group
	cp := make([]byte, len(payload))
	copy(cp, payload)
	g.gather[p.rank] = cp
	p.chargeLink(1, int64(len(payload)))
	p.Barrier()
	out := g.gather
	var in int64
	for r, pl := range out {
		if r != p.rank {
			in += int64(len(pl))
		}
	}
	p.chargeLink(g.size-1, in)
	p.Barrier()
	return out
}

// SetLink configures the modeled interconnect: every message a process
// injects or receives costs msg fixed time plus its bytes at bytesPerSec
// through the process's link. The zero configuration (the default) keeps
// communication free, so existing programs' timings are unchanged.
// Configure before the group's processes start communicating.
func (g *Group) SetLink(msg time.Duration, bytesPerSec float64) {
	g.linkMsg = msg
	g.linkBytes = bytesPerSec
}

// chargeLink models msgs messages totalling bytes crossing this process's
// link. A no-op (not even a yield) when no link model is configured, so
// the default timing stays bit-identical.
func (p *Proc) chargeLink(msgs int, bytes int64) {
	g := p.group
	if msgs <= 0 || (g.linkMsg == 0 && g.linkBytes == 0) {
		return
	}
	d := time.Duration(msgs) * g.linkMsg
	if g.linkBytes > 0 && bytes > 0 {
		d += time.Duration(float64(bytes) / g.linkBytes * float64(time.Second))
	}
	if d > 0 {
		p.Sleep(d)
	}
}

// Alltoallv performs a personalized all-to-all exchange: send[dst] is the
// payload (possibly nil) this process sends to rank dst, and the returned
// slice holds at recv[src] the payload rank src sent to this process
// (valid until the group's next collective; payloads are copied at send
// time, so the caller may reuse its buffers immediately). len(send) may
// be shorter than the group; absent entries send nothing. With a link
// model configured (SetLink), each process is charged for injecting its
// outgoing payloads and receiving its incoming ones; the self payload
// (send[rank]) is a local copy and crosses no link.
//
// This is the data-exchange primitive of two-phase collective I/O
// (package collective): ranks ship their pieces to aggregators, or
// aggregators ship file domains back to ranks, in one step.
func (p *Proc) Alltoallv(send [][]byte) [][]byte {
	g := p.group
	row := g.a2a[p.rank]
	var out int64
	outMsgs := 0
	for dst := 0; dst < g.size; dst++ {
		var pl []byte
		if dst < len(send) {
			pl = send[dst]
		}
		if pl == nil {
			row[dst] = nil
			continue
		}
		cp := make([]byte, len(pl))
		copy(cp, pl)
		row[dst] = cp
		if dst != p.rank {
			out += int64(len(pl))
			outMsgs++
		}
	}
	p.chargeLink(outMsgs, out)
	p.Barrier()
	recv := make([][]byte, g.size)
	var in int64
	inMsgs := 0
	for src := 0; src < g.size; src++ {
		recv[src] = g.a2a[src][p.rank]
		if src != p.rank && recv[src] != nil {
			in += int64(len(recv[src]))
			inMsgs++
		}
	}
	p.chargeLink(inMsgs, in)
	p.Barrier()
	return recv
}
