// Package mpp is a miniature MIMD runtime: it stands in for the
// "general-purpose MIMD computer architecture" the paper assumes (§2).
// A Run launches P processes (goroutines under the simulation engine),
// giving each a rank and collective operations (barrier, reductions,
// gather) in the style parallel programs of the era used.
package mpp

import (
	"fmt"
	"time"

	"repro/internal/sim"
)

// Proc is one process of a parallel program: a sim.Proc plus its rank
// and the group's collectives.
type Proc struct {
	*sim.Proc
	rank  int
	group *Group
}

// Rank reports this process's rank in [0, Size).
func (p *Proc) Rank() int { return p.rank }

// Size reports the group size.
func (p *Proc) Size() int { return p.group.size }

// Barrier blocks until every process in the group has arrived.
func (p *Proc) Barrier() { p.group.barrier.Wait(p.Proc) }

// Compute models work for the given duration of virtual time.
func (p *Proc) Compute(d time.Duration) { p.Sleep(d) }

// Group is a set of processes executing one parallel program.
type Group struct {
	size    int
	barrier *sim.Barrier
	// reduction scratch
	redVals  []float64
	redCount int
	gather   [][]byte
}

// Run launches fn on size processes under the engine and returns the
// group (join with Engine.Run or a surrounding sim.Group).
func Run(e *sim.Engine, size int, name string, fn func(p *Proc)) (*Group, *sim.Group) {
	g := &Group{
		size:    size,
		barrier: sim.NewBarrier(size),
		redVals: make([]float64, size),
		gather:  make([][]byte, size),
	}
	var join sim.Group
	for r := 0; r < size; r++ {
		rank := r
		join.Spawn(e, fmt.Sprintf("%s-%d", name, rank), func(sp *sim.Proc) {
			fn(&Proc{Proc: sp, rank: rank, group: g})
		})
	}
	return g, &join
}

// ReduceSum performs a barrier-synchronized sum reduction: every process
// contributes v and all receive the total.
func (p *Proc) ReduceSum(v float64) float64 {
	g := p.group
	g.redVals[p.rank] = v
	p.Barrier()
	var sum float64
	for _, x := range g.redVals {
		sum += x
	}
	p.Barrier() // don't let anyone overwrite redVals before all have read
	return sum
}

// ReduceMax performs a barrier-synchronized max reduction.
func (p *Proc) ReduceMax(v float64) float64 {
	g := p.group
	g.redVals[p.rank] = v
	p.Barrier()
	max := g.redVals[0]
	for _, x := range g.redVals[1:] {
		if x > max {
			max = x
		}
	}
	p.Barrier()
	return max
}

// Gather collects each process's payload; rank 0's slice of all payloads
// is returned to every process (valid until the next collective).
func (p *Proc) Gather(payload []byte) [][]byte {
	g := p.group
	cp := make([]byte, len(payload))
	copy(cp, payload)
	g.gather[p.rank] = cp
	p.Barrier()
	out := g.gather
	p.Barrier()
	return out
}
