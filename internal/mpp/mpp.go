// Package mpp is a miniature MIMD runtime: it stands in for the
// "general-purpose MIMD computer architecture" the paper assumes (§2).
// A Run launches P processes (goroutines under the simulation engine),
// giving each a rank and collective operations (barrier, reductions,
// gather) in the style parallel programs of the era used.
//
// # Interconnect models
//
// Collectives (Gather, AlltoallvSparse) can charge modeled communication time
// under two composable models, both off by default so communication is
// free and existing programs' timings are bit-identical:
//
//   - Per-process link (SetLink): every message a process injects or
//     receives costs a fixed per-message time plus its bytes at the
//     process's link bandwidth. Exchange time is governed by the busiest
//     process and is independent of how many other processes communicate
//     at once — an uncontended, full-bisection network.
//
//   - Shared link (SetBisection): the group shares one bisection
//     bandwidth pool. Each collective charges every process the total
//     cross-link volume of the whole exchange against the pool, so
//     exchange time grows with rank count × message volume — P ranks
//     exchanging pairwise messages of m bytes cost O(P²·m/B) rather than
//     the per-process model's O(P·m/b). This is the contention real
//     machines exhibit, and what makes aggregator placement matter for
//     collective I/O (package collective's locality-aware domains).
//
// The pool is a reservation timeline (Bisection): each exchange reserves
// its cross volume once, and a reservation issued while an earlier one
// is still draining queues behind it, so two in-flight exchanges share
// the pool's bandwidth instead of each seeing the full pool. Serialized
// exchanges (the only kind a single group can produce, since collectives
// are barrier-bracketed) are charged exactly as before; the queueing
// matters when several groups share one pool (SetBisectionPool) or when
// chunked exchanges from a pipelined collective land back to back.
//
// Chunked exchanges (NewSparseExchange / SparseExchange.Round) split one
// logical personalized exchange into several rounds so a consumer can
// overlap round k's delivery with other work — the exchange engine of
// package collective's pipelined two-phase I/O. A chunked exchange
// charges the same totals as the equivalent single AlltoallvSparse:
// per-message setup time (SetLink's msg cost) is charged once per
// communicating pair for the whole exchange, not once per round, and
// Traffic counts one message per pair; bytes are charged as they move.
//
// Under both models a self-message (rank → itself) is a local copy and
// is never charged. Traffic reports the accumulated cross-link volume,
// counted whether or not a model is configured, so tests can measure
// how many bytes an algorithm moved over the interconnect.
//
// # Sparse exchanges
//
// The exchanges carry their payloads as explicit (rank, payload) message
// lists: a process pays only for the pairs it actually communicates
// with, payloads transfer by reference instead of by copy, and receive
// lists are recycled through a pool (RecycleRecv). The original dense
// forms (Alltoallv, NewExchange), which take and return rank-indexed
// slices and so touch all P slots per round, are retained in the test
// suite as comparison baselines: charging is identical by construction —
// the same per-message setup, the same byte totals against the link and
// the pool, the same Traffic counts, the same barrier structure — so a
// program moved from the dense to the sparse form reports bit-identical
// modeled times; only the wall-clock cost of simulating it changes.
//
// # Topology-aware bisection (optional)
//
// SetTopology splits the group into halves. With a topology configured,
// only traffic that crosses the cut is charged against the bisection
// pool (self-side messages still pay per-process link costs), and a
// process whose round moved no cross-cut bytes skips the pool wait
// entirely — senders that finish early release the pool to others
// instead of idling until the collective's drain. Off by default;
// without a topology pool charging is unchanged.
package mpp

import (
	"fmt"
	"time"

	"repro/internal/probe"
	"repro/internal/sim"
)

// Proc is one process of a parallel program: a sim.Proc plus its rank
// and the group's collectives.
type Proc struct {
	*sim.Proc
	rank  int
	group *Group
}

// Rank reports this process's rank in [0, Size).
func (p *Proc) Rank() int { return p.rank }

// Probe reports the group's attached recorder, this rank's trace track,
// and the attach prefix (nil/zero when detached) — the hook layers
// built on a group use to inherit its flight recorder.
func (p *Proc) Probe() (*probe.Recorder, probe.TrackID, string) {
	g := p.group
	if g.rec == nil {
		return nil, 0, ""
	}
	return g.rec, g.rankTrk[p.rank], g.prPrefix
}

// Size reports the group size.
func (p *Proc) Size() int { return p.group.size }

// Barrier blocks until every process in the group has arrived.
func (p *Proc) Barrier() { p.group.barrier.Wait(p.Proc) }

// Compute models work for the given duration of virtual time.
func (p *Proc) Compute(d time.Duration) { p.Sleep(d) }

// Bisection is a shared-link bandwidth pool: a reservation timeline over
// one pool of aggregate bisection bandwidth. Exchanges reserve their
// cross-link volume in FIFO order, so a reservation issued while an
// earlier one is still draining starts only when the pool frees up —
// concurrent exchanges share the pool rather than each seeing its full
// bandwidth. A pool may be shared by several groups (SetBisectionPool)
// to model jobs contending for one interconnect. Only engine-managed
// processes may drive a pool (strict alternation is its locking).
type Bisection struct {
	bw   float64 // bytes per second
	free time.Duration
}

// NewBisection returns a pool of bytesPerSec aggregate bandwidth.
// bytesPerSec <= 0 yields a pool that never charges (uncontended).
func NewBisection(bytesPerSec float64) *Bisection {
	return &Bisection{bw: bytesPerSec}
}

// reserve books vol bytes on the pool starting no earlier than now and
// no earlier than the end of every prior reservation, returning the time
// the reservation drains. The FIFO queueing is what makes two in-flight
// exchanges share the pool instead of double-counting its bandwidth.
func (b *Bisection) reserve(now time.Duration, vol int64) time.Duration {
	start := now
	if b.free > start {
		start = b.free
	}
	b.free = start + time.Duration(float64(vol)/b.bw*float64(time.Second))
	return b.free
}

// Group is a set of processes executing one parallel program.
type Group struct {
	size    int
	barrier *sim.Barrier
	// interconnect model (zero: communication is free, the historical
	// default — see SetLink and SetBisection)
	linkMsg   time.Duration
	linkBytes float64    // per-process bytes per second; 0 = infinite
	bisection *Bisection // shared pool; nil = uncontended
	// cross-link traffic accounting (self-messages excluded)
	trafMsgs  int64
	trafBytes int64
	// crossVol accumulates the current collective's cross-link volume:
	// each process adds its contribution before the entry barrier and
	// subtracts it after the exit barrier, so between the barriers the
	// field holds the whole exchange's total (identical for every
	// reader) and it drains back to zero with no designated resetter —
	// a process can only re-enter the next collective once its own
	// subtraction has run, and add/subtract commute.
	crossVol int64
	// per-exchange pool reservation: the first process to charge the
	// pool between a collective's barriers makes one reservation for the
	// whole exchange and stashes its drain time; the others reuse it.
	// Reset (idempotently) after the exit barrier, like crossVol.
	exCharged bool
	exEnd     time.Duration
	// reduction scratch
	redVals   []float64
	redCount  int
	gather    [][]byte
	gatherBuf [][]byte   // per-rank retained Gather copies, reused per call
	a2a       [][][]byte // a2a[src][dst]: dense Alltoallv scratch (lazy)
	// sparse exchange state: per-rank inboxes plus a free list of
	// consumed receive lists handed back through RecycleRecv
	sin       [][]RecvMsg
	inboxPool [][]RecvMsg
	// topo, when non-nil, assigns each rank a side of the bisection cut;
	// only cross-cut traffic then charges the pool (see SetTopology)
	topo []int
	// epoch counts interconnect-model reconfigurations (SetLink,
	// SetBisection, SetBisectionPool, SetTopology). Layers that cache
	// model-derived decisions (collective's schedule cache) compare it
	// to detect that a cached decision was priced under a stale model.
	epoch uint64
	// flight recorder (nil: detached); one trace track per rank
	rec      *probe.Recorder
	prPrefix string
	rankTrk  []probe.TrackID
	poolWait *probe.Histogram
}

// Run launches fn on size processes under the engine and returns the
// group (join with Engine.Run or a surrounding sim.Group).
func Run(e *sim.Engine, size int, name string, fn func(p *Proc)) (*Group, *sim.Group) {
	g := &Group{
		size:    size,
		barrier: sim.NewBarrier(size),
		redVals: make([]float64, size),
		gather:  make([][]byte, size),
	}
	var join sim.Group
	for r := 0; r < size; r++ {
		rank := r
		join.Spawn(e, fmt.Sprintf("%s-%d", name, rank), func(sp *sim.Proc) {
			fn(&Proc{Proc: sp, rank: rank, group: g})
		})
	}
	return g, &join
}

// ReduceSum performs a barrier-synchronized sum reduction: every process
// contributes v and all receive the total.
func (p *Proc) ReduceSum(v float64) float64 {
	g := p.group
	g.redVals[p.rank] = v
	p.Barrier()
	var sum float64
	for _, x := range g.redVals {
		sum += x
	}
	p.Barrier() // don't let anyone overwrite redVals before all have read
	return sum
}

// ReduceMax performs a barrier-synchronized max reduction.
func (p *Proc) ReduceMax(v float64) float64 {
	g := p.group
	g.redVals[p.rank] = v
	p.Barrier()
	max := g.redVals[0]
	for _, x := range g.redVals[1:] {
		if x > max {
			max = x
		}
	}
	p.Barrier()
	return max
}

// Gather collects each process's payload; rank 0's slice of all payloads
// is returned to every process (valid until the next collective). With a
// link model configured (SetLink) each process is charged for injecting
// its payload and receiving the other processes' payloads; under a shared
// link (SetBisection) the whole exchange volume is additionally charged
// against the pool. A single-process group gathers locally and crosses no
// link.
func (p *Proc) Gather(payload []byte) [][]byte {
	g := p.group
	if g.gatherBuf == nil {
		g.gatherBuf = make([][]byte, g.size)
	}
	// Reuse this rank's retained buffer: the result is only promised
	// valid until the next collective, so the copy from the prior Gather
	// is dead by the time we overwrite it.
	cp := append(g.gatherBuf[p.rank][:0], payload...)
	g.gatherBuf[p.rank] = cp
	g.gather[p.rank] = cp
	cross := int64(g.size-1) * int64(len(payload))
	crossPool := int64(g.othersAcross(p.rank)) * int64(len(payload))
	if g.size > 1 {
		// The payload reaches size-1 remote processes; the process's own
		// copy is local. A 1-process gather is pure copy: no link charge.
		p.chargeLink(1, int64(len(payload)))
		g.trafMsgs += int64(g.size - 1)
		g.trafBytes += cross
		g.crossVol += crossPool
	}
	p.Barrier()
	out := g.gather
	var in, inPool int64
	for r, pl := range out {
		if r != p.rank {
			in += int64(len(pl))
			if g.crossCut(r, p.rank) {
				inPool += int64(len(pl))
			}
		}
	}
	p.chargeLink(g.size-1, in)
	p.chargePool(g.crossVol, crossPool+inPool)
	p.Barrier()
	if g.size > 1 {
		g.crossVol -= crossPool
	}
	g.exCharged = false
	return out
}

// SetLink configures the modeled interconnect: every message a process
// injects or receives costs msg fixed time plus its bytes at bytesPerSec
// through the process's link. The zero configuration (the default) keeps
// communication free, so existing programs' timings are unchanged.
// Configure before the group's processes start communicating.
func (g *Group) SetLink(msg time.Duration, bytesPerSec float64) {
	g.linkMsg = msg
	g.linkBytes = bytesPerSec
	g.epoch++
}

// ModelEpoch reports how many times the group's interconnect model has
// been reconfigured (SetLink, SetBisection, SetBisectionPool,
// SetTopology). Consumers that cache decisions priced under the model —
// the collective layer's schedule cache — compare epochs to invalidate
// on reconfiguration.
func (g *Group) ModelEpoch() uint64 { return g.epoch }

// ModelEpoch reports the model epoch of the proc's group.
func (p *Proc) ModelEpoch() uint64 { return p.group.epoch }

// LinkModel reports the group's interconnect parameters — per-message
// latency, per-process bandwidth (0 = infinite), and the shared
// bisection pool's aggregate bandwidth (0 = uncontended) — for cost
// models that weigh exchange traffic against device access
// (blockio.CostModel).
func (g *Group) LinkModel() (msg time.Duration, bytesPerSec, bisectionBytesPerSec float64) {
	if g.bisection != nil {
		bisectionBytesPerSec = g.bisection.bw
	}
	return g.linkMsg, g.linkBytes, bisectionBytesPerSec
}

// LinkModel reports the interconnect parameters of the proc's group.
func (p *Proc) LinkModel() (msg time.Duration, bytesPerSec, bisectionBytesPerSec float64) {
	return p.group.LinkModel()
}

// SetBisection configures the shared-link (contention) model: the whole
// group shares one pool of bytesPerSec aggregate bisection bandwidth,
// and every collective charges each process the exchange's total
// cross-link volume against the pool. Zero (the default) keeps the
// network uncontended. Composes with SetLink: per-process injection and
// receive costs are charged in addition to the pool. Configure before
// the group's processes start communicating.
func (g *Group) SetBisection(bytesPerSec float64) {
	g.epoch++
	if bytesPerSec <= 0 {
		g.bisection = nil
		return
	}
	g.bisection = NewBisection(bytesPerSec)
}

// SetBisectionPool attaches an existing pool, which may be shared with
// other groups on the same engine: their exchanges then queue on one
// reservation timeline, modeling several parallel jobs contending for
// one interconnect. nil detaches the pool. Configure before the group's
// processes start communicating.
func (g *Group) SetBisectionPool(pool *Bisection) {
	if pool != nil && pool.bw <= 0 {
		pool = nil
	}
	g.bisection = pool
	g.epoch++
}

// SetTopology assigns each rank a side of the bisection cut: side[r] is
// an arbitrary side label for rank r (typically 0 or 1 for the two
// halves of the machine). With a topology configured, only traffic
// between ranks on different sides charges the shared bisection pool —
// same-side messages still pay per-process link costs (SetLink) and
// still count in Traffic, but they do not cross the cut the pool
// models. A process that moved no cross-cut bytes in a collective skips
// the pool wait entirely, and the processes that did wait only until
// the shared reservation drains, so early finishers release bandwidth
// within the round. nil restores the default (every non-self message
// charges the pool). Configure before the group's processes start
// communicating; len(side) must equal the group size.
func (g *Group) SetTopology(side []int) {
	if side != nil && len(side) != g.size {
		panic("mpp: SetTopology side length != group size")
	}
	g.topo = side
	g.epoch++
}

// SetProbe attaches a flight recorder to the group: one trace track per
// rank named "<prefix>/<rank>", exchange-round and bisection-pool-wait
// spans on those tracks, a pool-wait histogram, and the group's traffic
// counters as pull gauges. Pass nil to detach. Recording only reads the
// virtual clock, so charging — and every modeled time — is unchanged.
// Configure before the group's processes start communicating.
func (g *Group) SetProbe(r *probe.Recorder, prefix string) {
	g.rec = r
	if r == nil {
		g.prPrefix, g.rankTrk, g.poolWait = "", nil, nil
		return
	}
	g.prPrefix = prefix
	g.rankTrk = make([]probe.TrackID, g.size)
	for i := range g.rankTrk {
		g.rankTrk[i] = r.Track(fmt.Sprintf("%s/%d", prefix, i))
	}
	m := r.Metrics()
	g.poolWait = m.Histogram("mpp." + prefix + ".pool_wait_s")
	m.Gauge("mpp."+prefix+".msgs", func() float64 { return float64(g.trafMsgs) })
	m.Gauge("mpp."+prefix+".bytes", func() float64 { return float64(g.trafBytes) })
}

// Probe reports the group's attached recorder (nil when detached) and
// the track-name prefix it was attached under. Layers built on a group
// (package collective) inherit its recorder through this.
func (g *Group) Probe() (*probe.Recorder, string) { return g.rec, g.prPrefix }

// RankTrack reports rank r's trace track (0 when detached).
func (g *Group) RankTrack(r int) probe.TrackID {
	if g.rankTrk == nil {
		return 0
	}
	return g.rankTrk[r]
}

// crossCut reports whether a message from rank a to rank b crosses the
// bisection cut (and so charges the pool). Without a topology every
// non-self pair crosses; a == b never does.
func (g *Group) crossCut(a, b int) bool {
	if a == b {
		return false
	}
	if g.topo == nil {
		return true
	}
	return g.topo[a] != g.topo[b]
}

// othersAcross counts the ranks a broadcast-style payload from rank r
// must cross the cut to reach (all other ranks without a topology).
func (g *Group) othersAcross(r int) int {
	if g.topo == nil {
		return g.size - 1
	}
	n := 0
	for o, s := range g.topo {
		if o != r && s != g.topo[r] {
			n++
		}
	}
	return n
}

// Traffic reports the cross-link volume the group's collectives have
// moved so far: messages and bytes that actually crossed a link, with
// each message counted once at its source and self-messages excluded.
// Accumulated whether or not a link model is configured (accounting
// only — it never charges time).
func (g *Group) Traffic() (msgs, bytes int64) {
	return g.trafMsgs, g.trafBytes
}

// chargeLink models msgs messages totalling bytes crossing this process's
// link. A no-op (not even a yield) when no link model is configured, so
// the default timing stays bit-identical. msgs may be zero with nonzero
// bytes (later rounds of a chunked exchange, whose setup was already
// charged): only the byte cost applies then.
func (p *Proc) chargeLink(msgs int, bytes int64) {
	g := p.group
	if (msgs <= 0 && bytes <= 0) || (g.linkMsg == 0 && g.linkBytes == 0) {
		return
	}
	var d time.Duration
	if msgs > 0 {
		d = time.Duration(msgs) * g.linkMsg
	}
	if g.linkBytes > 0 && bytes > 0 {
		d += time.Duration(float64(bytes) / g.linkBytes * float64(time.Second))
	}
	if d > 0 {
		p.Sleep(d)
	}
}

// chargePool models vol total bytes crossing the group's shared
// bisection pool. Every process of the collective calls it with the same
// volume (a pure function of the exchange's payloads) between the
// exchange's barriers; the first caller reserves the volume on the pool
// timeline once, and every caller then waits for the longer of its own
// drain time (vol at pool bandwidth from its own arrival — the
// historical per-process charge) and the shared reservation's end (which
// exceeds it only when an earlier reservation is still draining, i.e.
// under cross-exchange contention). A no-op when the shared model is
// off.
//
// own is the caller's personal cross-cut volume (bytes it sent plus
// bytes it received across the bisection cut). It matters only with a
// topology configured (SetTopology): a process with own == 0 skips the
// pool wait, and participating processes wait only for the shared
// reservation to drain rather than their own full-volume drain —
// finishing early releases the pool within the round.
func (p *Proc) chargePool(vol, own int64) {
	g := p.group
	if g.bisection == nil || vol <= 0 {
		return
	}
	if g.topo != nil && own <= 0 {
		return // no cross-cut involvement: the pool is not this process's wait
	}
	if !g.exCharged {
		g.exEnd = g.bisection.reserve(p.Now(), vol)
		g.exCharged = true
	}
	until := g.exEnd
	if g.topo == nil {
		if mine := p.Now() + time.Duration(float64(vol)/g.bisection.bw*float64(time.Second)); mine > until {
			until = mine
		}
	}
	if until > p.Now() {
		from := p.Now()
		p.SleepUntil(until)
		if g.rec != nil {
			g.rec.Span(g.rankTrk[p.rank], "mpp", "pool.wait", from, until, 0, 0)
			g.poolWait.AddDuration(until - from)
		}
	}
}
