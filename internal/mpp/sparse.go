package mpp

// Sparse personalized exchanges: the same collectives as Alltoallv and
// Exchange.Round, carried as explicit message lists instead of
// rank-indexed slices. A process pays only for the pairs it actually
// communicates with — O(messages) instead of O(group size) per round —
// and payloads transfer by reference: the sender gives up ownership of
// each Msg.Data until the receiver has consumed it, and no copy is made
// anywhere on the path. Charging (per-process link, shared pool,
// Traffic) is computed from the same message and byte totals as the
// dense forms, between the same pair of barriers, so modeled times are
// bit-identical; only the wall-clock cost of the simulation differs.

// Msg is one outgoing payload of a sparse exchange. At most one Msg per
// destination may be passed per round (matching the dense forms, where
// send[dst] is a single payload).
type Msg struct {
	Dst  int
	Data []byte
}

// RecvMsg is one delivered payload: what rank Src sent this process.
// Delivery order follows the engine's deterministic execution order of
// the senders, not rank order; consumers that need rank order (e.g. a
// last-writer-wins merge) must sort by Src.
type RecvMsg struct {
	Src  int
	Data []byte
}

// SortBySrc orders a receive list by source rank in place (insertion
// sort: receive lists are short and nearly ordered, and unlike
// sort.Slice this allocates nothing). Use it when consumption order
// matters, e.g. a last-writer-wins merge keyed on rank order.
func SortBySrc(recv []RecvMsg) {
	for i := 1; i < len(recv); i++ {
		for j := i; j > 0 && recv[j].Src < recv[j-1].Src; j-- {
			recv[j], recv[j-1] = recv[j-1], recv[j]
		}
	}
}

// ensureSparse lazily allocates the per-rank inboxes.
func (g *Group) ensureSparse() {
	if g.sin == nil {
		g.sin = make([][]RecvMsg, g.size)
	}
}

// takeInbox hands out a recycled (or nil, to be grown by append)
// receive list for a rank whose inbox was just consumed.
func (g *Group) takeInbox() []RecvMsg {
	if n := len(g.inboxPool); n > 0 {
		b := g.inboxPool[n-1]
		g.inboxPool[n-1] = nil
		g.inboxPool = g.inboxPool[:n-1]
		return b
	}
	return nil
}

// RecycleRecv returns a receive list obtained from AlltoallvSparse or
// SparseExchange.Round to the group's pool once its payloads have been
// fully consumed. Optional — an unrecycled list is ordinary garbage —
// but steady-state exchanges that recycle run allocation-free.
func (p *Proc) RecycleRecv(recv []RecvMsg) {
	for i := range recv {
		recv[i] = RecvMsg{}
	}
	p.group.inboxPool = append(p.group.inboxPool, recv[:0])
}

// deliverSparse appends this process's messages to the destination
// inboxes and returns the outgoing totals: all cross-link bytes and
// messages, plus the subset of bytes that crosses the bisection cut.
func (p *Proc) deliverSparse(send []Msg) (out, outPool int64, outMsgs int) {
	g := p.group
	for _, m := range send {
		g.sin[m.Dst] = append(g.sin[m.Dst], RecvMsg{Src: p.rank, Data: m.Data})
		if m.Dst != p.rank {
			out += int64(len(m.Data))
			outMsgs++
			if g.crossCut(p.rank, m.Dst) {
				outPool += int64(len(m.Data))
			}
		}
	}
	return out, outPool, outMsgs
}

// AlltoallvSparse performs one personalized all-to-all exchange from
// message lists: each Msg is delivered to its destination rank, and the
// returned list holds everything the other ranks (and the process
// itself, if it self-sent) addressed here. Payloads move by reference —
// the caller must not modify a sent Data until the receiver is done
// with it, and should hand the returned list back via RecycleRecv when
// consumed. Charged identically to the equivalent Alltoallv. All
// processes of the group must call it together.
func (p *Proc) AlltoallvSparse(send []Msg) []RecvMsg {
	g := p.group
	g.ensureSparse()
	t0 := p.Now()
	out, outPool, outMsgs := p.deliverSparse(send)
	p.chargeLink(outMsgs, out)
	g.trafMsgs += int64(outMsgs)
	g.trafBytes += out
	g.crossVol += outPool
	p.Barrier()
	recv := g.sin[p.rank]
	g.sin[p.rank] = g.takeInbox()
	var in, inPool int64
	inMsgs := 0
	for _, m := range recv {
		if m.Src != p.rank {
			in += int64(len(m.Data))
			inMsgs++
			if g.crossCut(m.Src, p.rank) {
				inPool += int64(len(m.Data))
			}
		}
	}
	p.chargeLink(inMsgs, in)
	p.chargePool(g.crossVol, outPool+inPool)
	p.Barrier()
	g.crossVol -= outPool
	g.exCharged = false
	if g.rec != nil {
		g.rec.Span(g.rankTrk[p.rank], "mpp", "exchange", t0, p.Now(), out+in, 0)
	}
	return recv
}

// SparseExchange is the sparse counterpart of Exchange: one logical
// personalized exchange split into rounds, with per-pair setup time and
// Traffic's message count charged once per communicating pair across
// the handle's lifetime. Unlike Exchange, a handle's footprint is
// proportional to the pairs it touches, not the group size.
type SparseExchange struct {
	p     *Proc
	pairs map[int]uint8 // peer rank -> setup flags (bit 0 sent, bit 1 received)
}

// NewSparseExchange returns this process's handle on a fresh chunked
// sparse exchange. Handles are per-collective-operation, like
// NewExchange.
func (p *Proc) NewSparseExchange() *SparseExchange {
	return &SparseExchange{p: p, pairs: make(map[int]uint8)}
}

// Round moves one round of the chunked exchange — the sparse analogue
// of Exchange.Round, with AlltoallvSparse's delivery and ownership
// contract. All processes of the group must call Round together.
func (ex *SparseExchange) Round(send []Msg) []RecvMsg {
	p := ex.p
	g := p.group
	g.ensureSparse()
	t0 := p.Now()
	var out, outPool int64
	newOut := 0
	for _, m := range send {
		g.sin[m.Dst] = append(g.sin[m.Dst], RecvMsg{Src: p.rank, Data: m.Data})
		if m.Dst != p.rank {
			out += int64(len(m.Data))
			if f := ex.pairs[m.Dst]; f&1 == 0 {
				ex.pairs[m.Dst] = f | 1
				newOut++
			}
			if g.crossCut(p.rank, m.Dst) {
				outPool += int64(len(m.Data))
			}
		}
	}
	p.chargeLink(newOut, out)
	g.trafMsgs += int64(newOut)
	g.trafBytes += out
	g.crossVol += outPool
	p.Barrier()
	recv := g.sin[p.rank]
	g.sin[p.rank] = g.takeInbox()
	var in, inPool int64
	newIn := 0
	for _, m := range recv {
		if m.Src != p.rank {
			in += int64(len(m.Data))
			if f := ex.pairs[m.Src]; f&2 == 0 {
				ex.pairs[m.Src] = f | 2
				newIn++
			}
			if g.crossCut(m.Src, p.rank) {
				inPool += int64(len(m.Data))
			}
		}
	}
	p.chargeLink(newIn, in)
	p.chargePool(g.crossVol, outPool+inPool)
	p.Barrier()
	g.crossVol -= outPool
	g.exCharged = false
	if g.rec != nil {
		g.rec.Span(g.rankTrk[p.rank], "mpp", "round", t0, p.Now(), out+in, 0)
	}
	return recv
}
