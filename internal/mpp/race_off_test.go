//go:build !race

package mpp

const raceEnabled = false
