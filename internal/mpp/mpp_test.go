package mpp

import (
	"testing"
	"time"

	"repro/internal/sim"
)

func TestRanksAndSize(t *testing.T) {
	e := sim.NewEngine()
	seen := make(map[int]bool)
	_, join := Run(e, 4, "w", func(p *Proc) {
		if p.Size() != 4 {
			t.Errorf("Size = %d", p.Size())
		}
		seen[p.Rank()] = true
	})
	e.Go("join", func(sp *sim.Proc) { join.Wait(sp) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 4 {
		t.Fatalf("ranks seen: %v", seen)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	e := sim.NewEngine()
	var after []time.Duration
	_, join := Run(e, 3, "w", func(p *Proc) {
		p.Compute(time.Duration(p.Rank()+1) * time.Millisecond)
		p.Barrier()
		after = append(after, p.Now())
	})
	e.Go("join", func(sp *sim.Proc) { join.Wait(sp) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for _, ts := range after {
		if ts != 3*time.Millisecond {
			t.Fatalf("barrier released at %v, want 3ms", ts)
		}
	}
}

func TestReduceSum(t *testing.T) {
	e := sim.NewEngine()
	_, join := Run(e, 4, "w", func(p *Proc) {
		got := p.ReduceSum(float64(p.Rank() + 1))
		if got != 10 {
			t.Errorf("rank %d sum = %v", p.Rank(), got)
		}
		// A second reduction must not see stale values.
		got2 := p.ReduceSum(1)
		if got2 != 4 {
			t.Errorf("rank %d second sum = %v", p.Rank(), got2)
		}
	})
	e.Go("join", func(sp *sim.Proc) { join.Wait(sp) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestReduceMax(t *testing.T) {
	e := sim.NewEngine()
	_, join := Run(e, 5, "w", func(p *Proc) {
		if got := p.ReduceMax(float64(p.Rank())); got != 4 {
			t.Errorf("max = %v", got)
		}
	})
	e.Go("join", func(sp *sim.Proc) { join.Wait(sp) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestGather(t *testing.T) {
	e := sim.NewEngine()
	_, join := Run(e, 3, "w", func(p *Proc) {
		all := p.Gather([]byte{byte(p.Rank() * 10)})
		for r := 0; r < 3; r++ {
			if len(all[r]) != 1 || all[r][0] != byte(r*10) {
				t.Errorf("rank %d sees gather[%d] = %v", p.Rank(), r, all[r])
			}
		}
	})
	e.Go("join", func(sp *sim.Proc) { join.Wait(sp) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestComputeAdvancesClock(t *testing.T) {
	e := sim.NewEngine()
	_, join := Run(e, 1, "w", func(p *Proc) {
		p.Compute(7 * time.Millisecond)
		if p.Now() != 7*time.Millisecond {
			t.Errorf("Now = %v", p.Now())
		}
	})
	e.Go("join", func(sp *sim.Proc) { join.Wait(sp) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}
