package mpp

import (
	"testing"
	"time"

	"repro/internal/sim"
)

func TestRanksAndSize(t *testing.T) {
	e := sim.NewEngine()
	seen := make(map[int]bool)
	_, join := Run(e, 4, "w", func(p *Proc) {
		if p.Size() != 4 {
			t.Errorf("Size = %d", p.Size())
		}
		seen[p.Rank()] = true
	})
	e.Go("join", func(sp *sim.Proc) { join.Wait(sp) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 4 {
		t.Fatalf("ranks seen: %v", seen)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	e := sim.NewEngine()
	var after []time.Duration
	_, join := Run(e, 3, "w", func(p *Proc) {
		p.Compute(time.Duration(p.Rank()+1) * time.Millisecond)
		p.Barrier()
		after = append(after, p.Now())
	})
	e.Go("join", func(sp *sim.Proc) { join.Wait(sp) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for _, ts := range after {
		if ts != 3*time.Millisecond {
			t.Fatalf("barrier released at %v, want 3ms", ts)
		}
	}
}

func TestReduceSum(t *testing.T) {
	e := sim.NewEngine()
	_, join := Run(e, 4, "w", func(p *Proc) {
		got := p.ReduceSum(float64(p.Rank() + 1))
		if got != 10 {
			t.Errorf("rank %d sum = %v", p.Rank(), got)
		}
		// A second reduction must not see stale values.
		got2 := p.ReduceSum(1)
		if got2 != 4 {
			t.Errorf("rank %d second sum = %v", p.Rank(), got2)
		}
	})
	e.Go("join", func(sp *sim.Proc) { join.Wait(sp) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestReduceMax(t *testing.T) {
	e := sim.NewEngine()
	_, join := Run(e, 5, "w", func(p *Proc) {
		if got := p.ReduceMax(float64(p.Rank())); got != 4 {
			t.Errorf("max = %v", got)
		}
	})
	e.Go("join", func(sp *sim.Proc) { join.Wait(sp) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestGather(t *testing.T) {
	e := sim.NewEngine()
	_, join := Run(e, 3, "w", func(p *Proc) {
		all := p.Gather([]byte{byte(p.Rank() * 10)})
		for r := 0; r < 3; r++ {
			if len(all[r]) != 1 || all[r][0] != byte(r*10) {
				t.Errorf("rank %d sees gather[%d] = %v", p.Rank(), r, all[r])
			}
		}
	})
	e.Go("join", func(sp *sim.Proc) { join.Wait(sp) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestAlltoallv(t *testing.T) {
	e := sim.NewEngine()
	const n = 4
	_, join := Run(e, n, "w", func(p *Proc) {
		// Rank r sends to each dst a payload of r+1 bytes of value
		// 10*r+dst; rank 3 sends nothing (nil row entries).
		send := make([][]byte, n)
		if p.Rank() != 3 {
			for dst := 0; dst < n; dst++ {
				pl := make([]byte, p.Rank()+1)
				for i := range pl {
					pl[i] = byte(10*p.Rank() + dst)
				}
				send[dst] = pl
			}
		}
		recv := p.Alltoallv(send)
		for src := 0; src < n; src++ {
			if src == 3 {
				if recv[src] != nil {
					t.Errorf("rank %d: unexpected payload from silent rank: %v", p.Rank(), recv[src])
				}
				continue
			}
			want := byte(10*src + p.Rank())
			if len(recv[src]) != src+1 {
				t.Errorf("rank %d: payload from %d has %d bytes, want %d", p.Rank(), src, len(recv[src]), src+1)
				continue
			}
			for _, b := range recv[src] {
				if b != want {
					t.Errorf("rank %d: payload from %d = %v, want all %d", p.Rank(), src, recv[src], want)
					break
				}
			}
		}
		// A second exchange must not see stale scratch.
		recv2 := p.Alltoallv(make([][]byte, n))
		for src, pl := range recv2 {
			if pl != nil {
				t.Errorf("rank %d: stale payload from %d: %v", p.Rank(), src, pl)
			}
		}
	})
	e.Go("join", func(sp *sim.Proc) { join.Wait(sp) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestAlltoallvShortSend(t *testing.T) {
	e := sim.NewEngine()
	_, join := Run(e, 3, "w", func(p *Proc) {
		// A send slice shorter than the group (including nil) is legal.
		var send [][]byte
		if p.Rank() == 0 {
			send = [][]byte{nil, {42}} // only to rank 1
		}
		recv := p.Alltoallv(send)
		if p.Rank() == 1 {
			if len(recv[0]) != 1 || recv[0][0] != 42 {
				t.Errorf("rank 1 recv[0] = %v", recv[0])
			}
		} else if recv[0] != nil {
			t.Errorf("rank %d recv[0] = %v, want nil", p.Rank(), recv[0])
		}
	})
	e.Go("join", func(sp *sim.Proc) { join.Wait(sp) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestAlltoallvLinkCost(t *testing.T) {
	// With a link of 1 ms/message + 1000 bytes/s, a 2-rank exchange of
	// 500 bytes each way costs every rank 1 ms + 0.5 s to inject and the
	// same to receive: both ranks finish at exactly 1.002 s.
	e := sim.NewEngine()
	g, join := Run(e, 2, "w", func(p *Proc) {
		pl := make([]byte, 500)
		send := [][]byte{nil, nil}
		send[1-p.Rank()] = pl
		p.Alltoallv(send)
		want := 2 * (time.Millisecond + 500*time.Millisecond)
		if p.Now() != want {
			t.Errorf("rank %d finished at %v, want %v", p.Rank(), p.Now(), want)
		}
	})
	g.SetLink(time.Millisecond, 1000)
	e.Go("join", func(sp *sim.Proc) { join.Wait(sp) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestLinkFreeByDefault(t *testing.T) {
	// Without SetLink, collectives charge no time at all.
	e := sim.NewEngine()
	_, join := Run(e, 2, "w", func(p *Proc) {
		p.Alltoallv([][]byte{make([]byte, 1<<20), make([]byte, 1<<20)})
		p.Gather(make([]byte, 1<<20))
		if p.Now() != 0 {
			t.Errorf("rank %d: free link advanced clock to %v", p.Rank(), p.Now())
		}
	})
	e.Go("join", func(sp *sim.Proc) { join.Wait(sp) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestGatherLinkCost(t *testing.T) {
	// Gather with a pure-bandwidth link: each of 2 ranks injects 100
	// bytes and receives the other's 100 bytes at 1000 B/s.
	e := sim.NewEngine()
	g, join := Run(e, 2, "w", func(p *Proc) {
		p.Gather(make([]byte, 100))
		want := 2 * 100 * time.Millisecond
		if p.Now() != want {
			t.Errorf("rank %d finished at %v, want %v", p.Rank(), p.Now(), want)
		}
	})
	g.SetLink(0, 1000)
	e.Go("join", func(sp *sim.Proc) { join.Wait(sp) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBisectionContention(t *testing.T) {
	// Shared pool of 1000 B/s; 2 ranks exchange 500 bytes each way →
	// total cross volume 1000 bytes → every rank pays exactly 1 s, on
	// top of nothing else (no per-process model configured).
	e := sim.NewEngine()
	g, join := Run(e, 2, "w", func(p *Proc) {
		pl := make([]byte, 500)
		send := [][]byte{nil, nil}
		send[1-p.Rank()] = pl
		p.Alltoallv(send)
		if want := time.Second; p.Now() != want {
			t.Errorf("rank %d finished at %v, want %v", p.Rank(), p.Now(), want)
		}
	})
	g.SetBisection(1000)
	e.Go("join", func(sp *sim.Proc) { join.Wait(sp) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBisectionScalesWithRanks(t *testing.T) {
	// Fixed pairwise message size, growing group: under the shared model
	// the exchange time grows ~P² (P ranks × (P-1) destinations), where
	// the per-process model would stay ~linear in P. This is the
	// contention signature the model exists to capture.
	elapsed := func(ranks int) time.Duration {
		e := sim.NewEngine()
		g, join := Run(e, ranks, "w", func(p *Proc) {
			send := make([][]byte, ranks)
			for dst := 0; dst < ranks; dst++ {
				send[dst] = make([]byte, 100) // self entry is free
			}
			p.Alltoallv(send)
		})
		g.SetBisection(1e6)
		e.Go("join", func(sp *sim.Proc) { join.Wait(sp) })
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return e.Now()
	}
	t2, t4, t8 := elapsed(2), elapsed(4), elapsed(8)
	// Cross volumes: 2·1, 4·3, 8·7 hundred bytes → ratios 6× and 28×.
	if t4 != 6*t2 || t8 != 28*t2 {
		t.Fatalf("bisection scaling: %v, %v, %v (want 1:6:28)", t2, t4, t8)
	}
}

func TestBisectionComposesWithLink(t *testing.T) {
	// Both models on: per-process charges (inject + receive) and the
	// shared-pool charge add up.
	e := sim.NewEngine()
	g, join := Run(e, 2, "w", func(p *Proc) {
		send := [][]byte{nil, nil}
		send[1-p.Rank()] = make([]byte, 500)
		p.Alltoallv(send)
		// Per-process: 2 × (1 ms + 0.5 s); pool: 1000 bytes / 1000 B/s.
		want := 2*(time.Millisecond+500*time.Millisecond) + time.Second
		if p.Now() != want {
			t.Errorf("rank %d finished at %v, want %v", p.Rank(), p.Now(), want)
		}
	})
	g.SetLink(time.Millisecond, 1000)
	g.SetBisection(1000)
	e.Go("join", func(sp *sim.Proc) { join.Wait(sp) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSelfMessagesNeverCharged(t *testing.T) {
	// A rank sending only to itself crosses no link under either model;
	// a 1-process Gather likewise. The clock must not move at all.
	e := sim.NewEngine()
	g, join := Run(e, 2, "w", func(p *Proc) {
		send := make([][]byte, 2)
		send[p.Rank()] = make([]byte, 1<<20)
		recv := p.Alltoallv(send)
		if len(recv[p.Rank()]) != 1<<20 {
			t.Errorf("rank %d: self payload lost", p.Rank())
		}
		if p.Now() != 0 {
			t.Errorf("rank %d: self-only exchange charged %v", p.Rank(), p.Now())
		}
	})
	g.SetLink(time.Millisecond, 1000)
	g.SetBisection(1000)
	e.Go("join", func(sp *sim.Proc) { join.Wait(sp) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if msgs, bytes := g.Traffic(); msgs != 0 || bytes != 0 {
		t.Fatalf("self-only exchange counted traffic: %d msgs, %d bytes", msgs, bytes)
	}

	e2 := sim.NewEngine()
	g2, join2 := Run(e2, 1, "w", func(p *Proc) {
		all := p.Gather(make([]byte, 1<<20))
		if len(all) != 1 || len(all[0]) != 1<<20 {
			t.Error("1-process gather lost its payload")
		}
		if p.Now() != 0 {
			t.Errorf("1-process gather charged %v", p.Now())
		}
	})
	g2.SetLink(time.Millisecond, 1000)
	g2.SetBisection(1000)
	e2.Go("join", func(sp *sim.Proc) { join2.Wait(sp) })
	if err := e2.Run(); err != nil {
		t.Fatal(err)
	}
	if msgs, bytes := g2.Traffic(); msgs != 0 || bytes != 0 {
		t.Fatalf("1-process gather counted traffic: %d msgs, %d bytes", msgs, bytes)
	}
}

func TestTrafficAccounting(t *testing.T) {
	// Traffic counts cross-link volume even with no link model set (and
	// charges nothing). 3 ranks: rank 0 sends 10 bytes to each other
	// rank and 99 to itself; then everyone gathers 7 bytes.
	e := sim.NewEngine()
	g, join := Run(e, 3, "w", func(p *Proc) {
		send := make([][]byte, 3)
		if p.Rank() == 0 {
			send[0] = make([]byte, 99)
			send[1] = make([]byte, 10)
			send[2] = make([]byte, 10)
		}
		p.Alltoallv(send)
		p.Gather(make([]byte, 7))
		if p.Now() != 0 {
			t.Errorf("rank %d: accounting charged time %v", p.Rank(), p.Now())
		}
	})
	e.Go("join", func(sp *sim.Proc) { join.Wait(sp) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Alltoallv: 2 msgs / 20 bytes. Gather: each of 3 ranks' 7 bytes
	// reaches 2 remotes → 6 msgs / 42 bytes.
	if msgs, bytes := g.Traffic(); msgs != 8 || bytes != 62 {
		t.Fatalf("Traffic() = %d msgs, %d bytes, want 8, 62", msgs, bytes)
	}
}

func TestGatherBisectionCost(t *testing.T) {
	// 2 ranks gather 100 bytes each over a 1000 B/s pool: cross volume =
	// 2 payloads × 1 remote receiver × 100 bytes = 200 bytes → 0.2 s.
	e := sim.NewEngine()
	g, join := Run(e, 2, "w", func(p *Proc) {
		p.Gather(make([]byte, 100))
		if want := 200 * time.Millisecond; p.Now() != want {
			t.Errorf("rank %d finished at %v, want %v", p.Rank(), p.Now(), want)
		}
	})
	g.SetBisection(1000)
	e.Go("join", func(sp *sim.Proc) { join.Wait(sp) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestComputeAdvancesClock(t *testing.T) {
	e := sim.NewEngine()
	_, join := Run(e, 1, "w", func(p *Proc) {
		p.Compute(7 * time.Millisecond)
		if p.Now() != 7*time.Millisecond {
			t.Errorf("Now = %v", p.Now())
		}
	})
	e.Go("join", func(sp *sim.Proc) { join.Wait(sp) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestExchangeMatchesAlltoallv: a chunked exchange must cost the same
// modeled time, count the same traffic, and deliver the same bytes as
// the equivalent single Alltoallv, for every link configuration. This is
// the "no re-charged setup" guarantee the pipelined collective relies
// on: splitting the exchange into rounds may only move time around, not
// add any.
func TestExchangeMatchesAlltoallv(t *testing.T) {
	const ranks = 4
	const payload = 900 // per pair; splits into 3 rounds of 300
	configure := []struct {
		name string
		cfg  func(*Group)
	}{
		{"free", func(*Group) {}},
		{"link", func(g *Group) { g.SetLink(time.Millisecond, 1e5) }},
		{"bisection", func(g *Group) { g.SetBisection(1e5) }},
		{"composed", func(g *Group) {
			g.SetLink(time.Millisecond, 1e5)
			g.SetBisection(1e5)
		}},
	}
	fill := func(src, dst int) []byte {
		pl := make([]byte, payload)
		for i := range pl {
			pl[i] = byte(7*src + 3*dst + i)
		}
		return pl
	}
	run := func(cfg func(*Group), chunked bool) (time.Duration, int64, int64) {
		e := sim.NewEngine()
		g, join := Run(e, ranks, "x", func(p *Proc) {
			got := make([][]byte, ranks)
			for i := range got {
				got[i] = []byte{}
			}
			if chunked {
				ex := p.NewExchange()
				const rounds = 3
				for k := 0; k < rounds; k++ {
					send := make([][]byte, ranks)
					for dst := 0; dst < ranks; dst++ {
						whole := fill(p.Rank(), dst)
						send[dst] = whole[k*payload/rounds : (k+1)*payload/rounds]
					}
					recv := ex.Round(send)
					for src := range recv {
						got[src] = append(got[src], recv[src]...)
					}
				}
			} else {
				send := make([][]byte, ranks)
				for dst := 0; dst < ranks; dst++ {
					send[dst] = fill(p.Rank(), dst)
				}
				recv := p.Alltoallv(send)
				for src := range recv {
					got[src] = append(got[src], recv[src]...)
				}
			}
			for src := range got {
				want := fill(src, p.Rank())
				if len(got[src]) != len(want) {
					t.Errorf("rank %d: %d bytes from %d, want %d", p.Rank(), len(got[src]), src, len(want))
					continue
				}
				for i := range want {
					if got[src][i] != want[i] {
						t.Errorf("rank %d: byte %d from %d corrupted", p.Rank(), i, src)
						break
					}
				}
			}
		})
		cfg(g)
		e.Go("join", func(sp *sim.Proc) { join.Wait(sp) })
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		msgs, bytes := g.Traffic()
		return e.Now(), msgs, bytes
	}
	for _, tc := range configure {
		t.Run(tc.name, func(t *testing.T) {
			oneTime, oneMsgs, oneBytes := run(tc.cfg, false)
			chTime, chMsgs, chBytes := run(tc.cfg, true)
			if chTime != oneTime {
				t.Errorf("chunked exchange took %v, single Alltoallv %v", chTime, oneTime)
			}
			if chMsgs != oneMsgs || chBytes != oneBytes {
				t.Errorf("chunked traffic %d msgs / %d bytes, single %d / %d",
					chMsgs, chBytes, oneMsgs, oneBytes)
			}
		})
	}
}

// TestExchangeSetupChargedOncePerHandle: a fresh Exchange handle
// re-charges per-pair setup; rounds within one handle do not.
func TestExchangeSetupChargedOncePerHandle(t *testing.T) {
	elapsed := func(handles, roundsPer int) time.Duration {
		e := sim.NewEngine()
		g, join := Run(e, 2, "x", func(p *Proc) {
			for h := 0; h < handles; h++ {
				ex := p.NewExchange()
				for k := 0; k < roundsPer; k++ {
					send := make([][]byte, 2)
					send[1-p.Rank()] = make([]byte, 10)
					ex.Round(send)
				}
			}
		})
		g.SetLink(time.Millisecond, 0) // setup cost only, bytes free
		e.Go("join", func(sp *sim.Proc) { join.Wait(sp) })
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return e.Now()
	}
	// 1 handle × 4 rounds: one setup (1 ms inject + 1 ms receive).
	if got, want := elapsed(1, 4), 2*time.Millisecond; got != want {
		t.Errorf("1 handle × 4 rounds = %v, want %v", got, want)
	}
	// 4 handles × 1 round: four setups.
	if got, want := elapsed(4, 1), 8*time.Millisecond; got != want {
		t.Errorf("4 handles × 1 round = %v, want %v", got, want)
	}
}

// TestSharedPoolSerializes: two groups sharing one Bisection pool and
// exchanging concurrently must drain in sequence — the pool serves
// volA+volB in (volA+volB)/BW, not in max(volA,volB)/BW as two private
// pools would.
func TestSharedPoolSerializes(t *testing.T) {
	const bw = 1000.0
	const volA, volB = 1000, 3000 // cross bytes per group's exchange
	run := func(shared bool) time.Duration {
		e := sim.NewEngine()
		mk := func(name string, vol int) (*Group, *sim.Group) {
			return Run(e, 2, name, func(p *Proc) {
				send := make([][]byte, 2)
				send[1-p.Rank()] = make([]byte, vol/2)
				p.Alltoallv(send)
			})
		}
		ga, ja := mk("a", volA)
		gb, jb := mk("b", volB)
		if shared {
			pool := NewBisection(bw)
			ga.SetBisectionPool(pool)
			gb.SetBisectionPool(pool)
		} else {
			ga.SetBisection(bw)
			gb.SetBisection(bw)
		}
		e.Go("join", func(sp *sim.Proc) { ja.Wait(sp); jb.Wait(sp) })
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return e.Now()
	}
	sharedTime := run(true)
	if want := time.Duration(float64(volA+volB) / bw * float64(time.Second)); sharedTime != want {
		t.Errorf("shared pool drained at %v, want serialized %v", sharedTime, want)
	}
	privateTime := run(false)
	if want := time.Duration(float64(volB) / bw * float64(time.Second)); privateTime != want {
		t.Errorf("private pools drained at %v, want %v", privateTime, want)
	}
}
