package mpp

import (
	"testing"
	"time"

	"repro/internal/sim"
)

func TestRanksAndSize(t *testing.T) {
	e := sim.NewEngine()
	seen := make(map[int]bool)
	_, join := Run(e, 4, "w", func(p *Proc) {
		if p.Size() != 4 {
			t.Errorf("Size = %d", p.Size())
		}
		seen[p.Rank()] = true
	})
	e.Go("join", func(sp *sim.Proc) { join.Wait(sp) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 4 {
		t.Fatalf("ranks seen: %v", seen)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	e := sim.NewEngine()
	var after []time.Duration
	_, join := Run(e, 3, "w", func(p *Proc) {
		p.Compute(time.Duration(p.Rank()+1) * time.Millisecond)
		p.Barrier()
		after = append(after, p.Now())
	})
	e.Go("join", func(sp *sim.Proc) { join.Wait(sp) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for _, ts := range after {
		if ts != 3*time.Millisecond {
			t.Fatalf("barrier released at %v, want 3ms", ts)
		}
	}
}

func TestReduceSum(t *testing.T) {
	e := sim.NewEngine()
	_, join := Run(e, 4, "w", func(p *Proc) {
		got := p.ReduceSum(float64(p.Rank() + 1))
		if got != 10 {
			t.Errorf("rank %d sum = %v", p.Rank(), got)
		}
		// A second reduction must not see stale values.
		got2 := p.ReduceSum(1)
		if got2 != 4 {
			t.Errorf("rank %d second sum = %v", p.Rank(), got2)
		}
	})
	e.Go("join", func(sp *sim.Proc) { join.Wait(sp) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestReduceMax(t *testing.T) {
	e := sim.NewEngine()
	_, join := Run(e, 5, "w", func(p *Proc) {
		if got := p.ReduceMax(float64(p.Rank())); got != 4 {
			t.Errorf("max = %v", got)
		}
	})
	e.Go("join", func(sp *sim.Proc) { join.Wait(sp) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestGather(t *testing.T) {
	e := sim.NewEngine()
	_, join := Run(e, 3, "w", func(p *Proc) {
		all := p.Gather([]byte{byte(p.Rank() * 10)})
		for r := 0; r < 3; r++ {
			if len(all[r]) != 1 || all[r][0] != byte(r*10) {
				t.Errorf("rank %d sees gather[%d] = %v", p.Rank(), r, all[r])
			}
		}
	})
	e.Go("join", func(sp *sim.Proc) { join.Wait(sp) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestAlltoallv(t *testing.T) {
	e := sim.NewEngine()
	const n = 4
	_, join := Run(e, n, "w", func(p *Proc) {
		// Rank r sends to each dst a payload of r+1 bytes of value
		// 10*r+dst; rank 3 sends nothing (nil row entries).
		send := make([][]byte, n)
		if p.Rank() != 3 {
			for dst := 0; dst < n; dst++ {
				pl := make([]byte, p.Rank()+1)
				for i := range pl {
					pl[i] = byte(10*p.Rank() + dst)
				}
				send[dst] = pl
			}
		}
		recv := p.Alltoallv(send)
		for src := 0; src < n; src++ {
			if src == 3 {
				if recv[src] != nil {
					t.Errorf("rank %d: unexpected payload from silent rank: %v", p.Rank(), recv[src])
				}
				continue
			}
			want := byte(10*src + p.Rank())
			if len(recv[src]) != src+1 {
				t.Errorf("rank %d: payload from %d has %d bytes, want %d", p.Rank(), src, len(recv[src]), src+1)
				continue
			}
			for _, b := range recv[src] {
				if b != want {
					t.Errorf("rank %d: payload from %d = %v, want all %d", p.Rank(), src, recv[src], want)
					break
				}
			}
		}
		// A second exchange must not see stale scratch.
		recv2 := p.Alltoallv(make([][]byte, n))
		for src, pl := range recv2 {
			if pl != nil {
				t.Errorf("rank %d: stale payload from %d: %v", p.Rank(), src, pl)
			}
		}
	})
	e.Go("join", func(sp *sim.Proc) { join.Wait(sp) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestAlltoallvShortSend(t *testing.T) {
	e := sim.NewEngine()
	_, join := Run(e, 3, "w", func(p *Proc) {
		// A send slice shorter than the group (including nil) is legal.
		var send [][]byte
		if p.Rank() == 0 {
			send = [][]byte{nil, {42}} // only to rank 1
		}
		recv := p.Alltoallv(send)
		if p.Rank() == 1 {
			if len(recv[0]) != 1 || recv[0][0] != 42 {
				t.Errorf("rank 1 recv[0] = %v", recv[0])
			}
		} else if recv[0] != nil {
			t.Errorf("rank %d recv[0] = %v, want nil", p.Rank(), recv[0])
		}
	})
	e.Go("join", func(sp *sim.Proc) { join.Wait(sp) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestAlltoallvLinkCost(t *testing.T) {
	// With a link of 1 ms/message + 1000 bytes/s, a 2-rank exchange of
	// 500 bytes each way costs every rank 1 ms + 0.5 s to inject and the
	// same to receive: both ranks finish at exactly 1.002 s.
	e := sim.NewEngine()
	g, join := Run(e, 2, "w", func(p *Proc) {
		pl := make([]byte, 500)
		send := [][]byte{nil, nil}
		send[1-p.Rank()] = pl
		p.Alltoallv(send)
		want := 2 * (time.Millisecond + 500*time.Millisecond)
		if p.Now() != want {
			t.Errorf("rank %d finished at %v, want %v", p.Rank(), p.Now(), want)
		}
	})
	g.SetLink(time.Millisecond, 1000)
	e.Go("join", func(sp *sim.Proc) { join.Wait(sp) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestLinkFreeByDefault(t *testing.T) {
	// Without SetLink, collectives charge no time at all.
	e := sim.NewEngine()
	_, join := Run(e, 2, "w", func(p *Proc) {
		p.Alltoallv([][]byte{make([]byte, 1<<20), make([]byte, 1<<20)})
		p.Gather(make([]byte, 1<<20))
		if p.Now() != 0 {
			t.Errorf("rank %d: free link advanced clock to %v", p.Rank(), p.Now())
		}
	})
	e.Go("join", func(sp *sim.Proc) { join.Wait(sp) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestGatherLinkCost(t *testing.T) {
	// Gather with a pure-bandwidth link: each of 2 ranks injects 100
	// bytes and receives the other's 100 bytes at 1000 B/s.
	e := sim.NewEngine()
	g, join := Run(e, 2, "w", func(p *Proc) {
		p.Gather(make([]byte, 100))
		want := 2 * 100 * time.Millisecond
		if p.Now() != want {
			t.Errorf("rank %d finished at %v, want %v", p.Rank(), p.Now(), want)
		}
	})
	g.SetLink(0, 1000)
	e.Go("join", func(sp *sim.Proc) { join.Wait(sp) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBisectionContention(t *testing.T) {
	// Shared pool of 1000 B/s; 2 ranks exchange 500 bytes each way →
	// total cross volume 1000 bytes → every rank pays exactly 1 s, on
	// top of nothing else (no per-process model configured).
	e := sim.NewEngine()
	g, join := Run(e, 2, "w", func(p *Proc) {
		pl := make([]byte, 500)
		send := [][]byte{nil, nil}
		send[1-p.Rank()] = pl
		p.Alltoallv(send)
		if want := time.Second; p.Now() != want {
			t.Errorf("rank %d finished at %v, want %v", p.Rank(), p.Now(), want)
		}
	})
	g.SetBisection(1000)
	e.Go("join", func(sp *sim.Proc) { join.Wait(sp) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBisectionScalesWithRanks(t *testing.T) {
	// Fixed pairwise message size, growing group: under the shared model
	// the exchange time grows ~P² (P ranks × (P-1) destinations), where
	// the per-process model would stay ~linear in P. This is the
	// contention signature the model exists to capture.
	elapsed := func(ranks int) time.Duration {
		e := sim.NewEngine()
		g, join := Run(e, ranks, "w", func(p *Proc) {
			send := make([][]byte, ranks)
			for dst := 0; dst < ranks; dst++ {
				send[dst] = make([]byte, 100) // self entry is free
			}
			p.Alltoallv(send)
		})
		g.SetBisection(1e6)
		e.Go("join", func(sp *sim.Proc) { join.Wait(sp) })
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return e.Now()
	}
	t2, t4, t8 := elapsed(2), elapsed(4), elapsed(8)
	// Cross volumes: 2·1, 4·3, 8·7 hundred bytes → ratios 6× and 28×.
	if t4 != 6*t2 || t8 != 28*t2 {
		t.Fatalf("bisection scaling: %v, %v, %v (want 1:6:28)", t2, t4, t8)
	}
}

func TestBisectionComposesWithLink(t *testing.T) {
	// Both models on: per-process charges (inject + receive) and the
	// shared-pool charge add up.
	e := sim.NewEngine()
	g, join := Run(e, 2, "w", func(p *Proc) {
		send := [][]byte{nil, nil}
		send[1-p.Rank()] = make([]byte, 500)
		p.Alltoallv(send)
		// Per-process: 2 × (1 ms + 0.5 s); pool: 1000 bytes / 1000 B/s.
		want := 2*(time.Millisecond+500*time.Millisecond) + time.Second
		if p.Now() != want {
			t.Errorf("rank %d finished at %v, want %v", p.Rank(), p.Now(), want)
		}
	})
	g.SetLink(time.Millisecond, 1000)
	g.SetBisection(1000)
	e.Go("join", func(sp *sim.Proc) { join.Wait(sp) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSelfMessagesNeverCharged(t *testing.T) {
	// A rank sending only to itself crosses no link under either model;
	// a 1-process Gather likewise. The clock must not move at all.
	e := sim.NewEngine()
	g, join := Run(e, 2, "w", func(p *Proc) {
		send := make([][]byte, 2)
		send[p.Rank()] = make([]byte, 1<<20)
		recv := p.Alltoallv(send)
		if len(recv[p.Rank()]) != 1<<20 {
			t.Errorf("rank %d: self payload lost", p.Rank())
		}
		if p.Now() != 0 {
			t.Errorf("rank %d: self-only exchange charged %v", p.Rank(), p.Now())
		}
	})
	g.SetLink(time.Millisecond, 1000)
	g.SetBisection(1000)
	e.Go("join", func(sp *sim.Proc) { join.Wait(sp) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if msgs, bytes := g.Traffic(); msgs != 0 || bytes != 0 {
		t.Fatalf("self-only exchange counted traffic: %d msgs, %d bytes", msgs, bytes)
	}

	e2 := sim.NewEngine()
	g2, join2 := Run(e2, 1, "w", func(p *Proc) {
		all := p.Gather(make([]byte, 1<<20))
		if len(all) != 1 || len(all[0]) != 1<<20 {
			t.Error("1-process gather lost its payload")
		}
		if p.Now() != 0 {
			t.Errorf("1-process gather charged %v", p.Now())
		}
	})
	g2.SetLink(time.Millisecond, 1000)
	g2.SetBisection(1000)
	e2.Go("join", func(sp *sim.Proc) { join2.Wait(sp) })
	if err := e2.Run(); err != nil {
		t.Fatal(err)
	}
	if msgs, bytes := g2.Traffic(); msgs != 0 || bytes != 0 {
		t.Fatalf("1-process gather counted traffic: %d msgs, %d bytes", msgs, bytes)
	}
}

func TestTrafficAccounting(t *testing.T) {
	// Traffic counts cross-link volume even with no link model set (and
	// charges nothing). 3 ranks: rank 0 sends 10 bytes to each other
	// rank and 99 to itself; then everyone gathers 7 bytes.
	e := sim.NewEngine()
	g, join := Run(e, 3, "w", func(p *Proc) {
		send := make([][]byte, 3)
		if p.Rank() == 0 {
			send[0] = make([]byte, 99)
			send[1] = make([]byte, 10)
			send[2] = make([]byte, 10)
		}
		p.Alltoallv(send)
		p.Gather(make([]byte, 7))
		if p.Now() != 0 {
			t.Errorf("rank %d: accounting charged time %v", p.Rank(), p.Now())
		}
	})
	e.Go("join", func(sp *sim.Proc) { join.Wait(sp) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Alltoallv: 2 msgs / 20 bytes. Gather: each of 3 ranks' 7 bytes
	// reaches 2 remotes → 6 msgs / 42 bytes.
	if msgs, bytes := g.Traffic(); msgs != 8 || bytes != 62 {
		t.Fatalf("Traffic() = %d msgs, %d bytes, want 8, 62", msgs, bytes)
	}
}

func TestGatherBisectionCost(t *testing.T) {
	// 2 ranks gather 100 bytes each over a 1000 B/s pool: cross volume =
	// 2 payloads × 1 remote receiver × 100 bytes = 200 bytes → 0.2 s.
	e := sim.NewEngine()
	g, join := Run(e, 2, "w", func(p *Proc) {
		p.Gather(make([]byte, 100))
		if want := 200 * time.Millisecond; p.Now() != want {
			t.Errorf("rank %d finished at %v, want %v", p.Rank(), p.Now(), want)
		}
	})
	g.SetBisection(1000)
	e.Go("join", func(sp *sim.Proc) { join.Wait(sp) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestComputeAdvancesClock(t *testing.T) {
	e := sim.NewEngine()
	_, join := Run(e, 1, "w", func(p *Proc) {
		p.Compute(7 * time.Millisecond)
		if p.Now() != 7*time.Millisecond {
			t.Errorf("Now = %v", p.Now())
		}
	})
	e.Go("join", func(sp *sim.Proc) { join.Wait(sp) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}
