// Fuzz target for the Alltoallv exchange and its link models. Arbitrary
// bytes decode into a group size, a payload-size matrix and a link
// configuration; invariants:
//
//   - delivery: every rank receives exactly the bytes each source sent
//     it, absent entries stay nil;
//   - self-messages are never charged: with only self payloads the
//     clock stays at zero under every model;
//   - the shared pool charges exactly the exchange's cross volume once
//     (bisection-only runs finish at crossVol/BW);
//   - traffic accounting matches the payload matrix.
//
// Run as `go test -fuzz=FuzzAlltoallv ./internal/mpp`; the seed corpus
// keeps it exercised as a plain test (CI runs a -fuzztime=10s smoke).
package mpp

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/sim"
)

func FuzzAlltoallv(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{2, 1, 0, 0, 5})                   // 3 ranks, free link
	f.Add([]byte{1, 3, 0, 200, 0})                 // self-only payloads
	f.Add([]byte{3, 2, 1, 2, 3, 4, 5, 6, 7, 8, 9}) // 4 ranks, bisection
	f.Add([]byte{5, 3, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		size := int(data[0])%6 + 1
		mode := data[1] % 3 // 0 free, 1 bisection only, 2 per-process + bisection
		// sizes[src][dst]: payload length; 0 = nil (nothing sent).
		sizes := make([][]int, size)
		p := 2
		for src := range sizes {
			sizes[src] = make([]int, size)
			for dst := range sizes[src] {
				if p < len(data) {
					sizes[src][dst] = int(data[p]) % 64
					p++
				}
			}
		}
		var crossVol int64
		var crossMsgs int64
		for src := range sizes {
			for dst, n := range sizes[src] {
				if src != dst && n > 0 {
					crossVol += int64(n)
					crossMsgs++
				}
			}
		}

		const bw = 1e6
		e := sim.NewEngine()
		g, join := Run(e, size, "f", func(pr *Proc) {
			send := make([][]byte, size)
			for dst, n := range sizes[pr.Rank()] {
				if n == 0 {
					continue
				}
				pl := make([]byte, n)
				for i := range pl {
					pl[i] = byte(7*pr.Rank() + 3*dst + i)
				}
				send[dst] = pl
			}
			recv := pr.Alltoallv(send)
			for src := 0; src < size; src++ {
				n := sizes[src][pr.Rank()]
				if n == 0 {
					if recv[src] != nil {
						t.Errorf("rank %d: ghost payload from %d", pr.Rank(), src)
					}
					continue
				}
				want := make([]byte, n)
				for i := range want {
					want[i] = byte(7*src + 3*pr.Rank() + i)
				}
				if !bytes.Equal(recv[src], want) {
					t.Errorf("rank %d: corrupted payload from %d", pr.Rank(), src)
				}
			}
		})
		switch mode {
		case 1:
			g.SetBisection(bw)
		case 2:
			g.SetLink(time.Microsecond, bw)
			g.SetBisection(bw)
		}
		e.Go("join", func(sp *sim.Proc) { join.Wait(sp) })
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}

		if msgs, bytes := g.Traffic(); msgs != crossMsgs || bytes != crossVol {
			t.Fatalf("Traffic() = %d msgs / %d bytes, want %d / %d", msgs, bytes, crossMsgs, crossVol)
		}
		switch {
		case crossVol == 0:
			// Self-only (or silent) exchange: no model may charge time.
			if e.Now() != 0 {
				t.Fatalf("mode %d: self-only exchange charged %v", mode, e.Now())
			}
		case mode == 0:
			if e.Now() != 0 {
				t.Fatalf("free link charged %v", e.Now())
			}
		case mode == 1:
			// Pool-only: every rank pays exactly crossVol/bw between the
			// two barriers, so the run ends at that instant.
			want := time.Duration(float64(crossVol) / bw * float64(time.Second))
			if e.Now() != want {
				t.Fatalf("bisection-only exchange ended at %v, want %v (crossVol %d)", e.Now(), want, crossVol)
			}
		case mode == 2:
			// Composed: at least the pool charge, plus nonnegative
			// per-process time.
			min := time.Duration(float64(crossVol) / bw * float64(time.Second))
			if e.Now() < min {
				t.Fatalf("composed exchange ended at %v, below the pool charge %v", e.Now(), min)
			}
		}
	})
}
