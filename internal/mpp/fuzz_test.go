// Fuzz target for the Alltoallv exchange and its link models. Arbitrary
// bytes decode into a group size, a payload-size matrix, a link
// configuration, a chunked-round count, and optionally a second group
// issuing an overlapping exchange on a shared pool; invariants:
//
//   - delivery: every rank receives exactly the bytes each source sent
//     it, absent entries stay nil — whether the exchange moves in one
//     Alltoallv or in chunked Exchange rounds;
//   - self-messages are never charged: with only self payloads the
//     clock stays at zero under every model;
//   - the shared pool charges exactly the exchange's cross volume once
//     (bisection-only runs finish at crossVol/BW, chunked or not), and
//     two overlapping exchanges on one shared pool serialize: the run
//     ends at (crossVol+crossVol2)/BW, never earlier (no
//     double-counting of the pool's bandwidth);
//   - traffic accounting matches the payload matrix, with a chunked
//     exchange counting one message per communicating pair.
//
// Run as `go test -fuzz=FuzzAlltoallv ./internal/mpp`; the seed corpus
// keeps it exercised as a plain test (CI runs a -fuzztime=10s smoke).
package mpp

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/sim"
)

func FuzzAlltoallv(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{2, 1, 0, 0, 0, 5})                      // 3 ranks, free link
	f.Add([]byte{1, 3, 0, 0, 200, 0})                    // self-only payloads
	f.Add([]byte{3, 2, 0, 0, 1, 2, 3, 4, 5, 6, 7, 8})    // 4 ranks, bisection
	f.Add([]byte{3, 1, 2, 0, 1, 2, 3, 4, 5, 6, 7, 8})    // same, 3 chunked rounds
	f.Add([]byte{1, 1, 0, 9, 40, 40, 40, 40})            // overlapping second group
	f.Add([]byte{3, 2, 3, 17, 9, 9, 9, 9, 9, 9, 9, 9})   // chunked + overlap + link
	f.Add([]byte{5, 3, 1, 0, 9, 9, 9, 9, 9, 9, 9, 9, 9}) // big group
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			return
		}
		size := int(data[0])%6 + 1
		mode := data[1] % 3          // 0 free, 1 bisection only, 2 per-process + bisection
		rounds := int(data[2])%4 + 1 // 1 = single Alltoallv, >1 = chunked Exchange
		overlap := data[3]%2 == 1    // second group exchanging on the same pool
		vol2 := int(data[3]) % 128   // second group's per-rank payload
		// sizes[src][dst]: payload length; 0 = nil (nothing sent).
		sizes := make([][]int, size)
		p := 4
		for src := range sizes {
			sizes[src] = make([]int, size)
			for dst := range sizes[src] {
				if p < len(data) {
					sizes[src][dst] = int(data[p]) % 64
					p++
				}
			}
		}
		var crossVol int64
		var crossMsgs int64
		for src := range sizes {
			for dst, n := range sizes[src] {
				if src != dst && n > 0 {
					crossVol += int64(n)
					crossMsgs++
				}
			}
		}
		if mode == 0 {
			overlap = false // no pool to contend for
		}
		var crossVol2 int64
		if overlap {
			crossVol2 = 2 * int64(vol2) // 2 ranks, vol2 each way
		}

		const bw = 1e6
		e := sim.NewEngine()
		g, join := Run(e, size, "f", func(pr *Proc) {
			got := make([][]byte, size)
			if rounds == 1 {
				recv := pr.Alltoallv(make2(sizes, pr.Rank()))
				for src := 0; src < size; src++ {
					if recv[src] != nil {
						got[src] = append([]byte(nil), recv[src]...)
					}
				}
			} else {
				ex := pr.NewExchange()
				whole := make2(sizes, pr.Rank())
				for k := 0; k < rounds; k++ {
					send := make([][]byte, size)
					for dst, pl := range whole {
						if pl == nil {
							continue
						}
						send[dst] = pl[k*len(pl)/rounds : (k+1)*len(pl)/rounds]
					}
					recv := ex.Round(send)
					for src := 0; src < size; src++ {
						if recv[src] != nil {
							if got[src] == nil {
								got[src] = []byte{}
							}
							got[src] = append(got[src], recv[src]...)
						}
					}
				}
			}
			for src := 0; src < size; src++ {
				n := sizes[src][pr.Rank()]
				if n == 0 {
					if got[src] != nil {
						t.Errorf("rank %d: ghost payload from %d", pr.Rank(), src)
					}
					continue
				}
				want := make([]byte, n)
				for i := range want {
					want[i] = byte(7*src + 3*pr.Rank() + i)
				}
				if !bytes.Equal(got[src], want) {
					t.Errorf("rank %d: corrupted payload from %d", pr.Rank(), src)
				}
			}
		})
		var g2 *Group
		var join2 *sim.Group
		if overlap {
			g2, join2 = Run(e, 2, "f2", func(pr *Proc) {
				send := make([][]byte, 2)
				send[1-pr.Rank()] = make([]byte, vol2)
				pr.Alltoallv(send)
			})
		}
		switch mode {
		case 1:
			g.SetBisection(bw)
		case 2:
			g.SetLink(time.Microsecond, bw)
			g.SetBisection(bw)
		}
		if overlap {
			// Both groups contend for group 1's pool: their exchanges
			// must serialize on its timeline.
			g2.SetBisectionPool(g.bisection)
		}
		e.Go("join", func(sp *sim.Proc) {
			join.Wait(sp)
			if join2 != nil {
				join2.Wait(sp)
			}
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}

		if msgs, bytes := g.Traffic(); msgs != crossMsgs || bytes != crossVol {
			t.Fatalf("Traffic() = %d msgs / %d bytes, want %d / %d (rounds %d)",
				msgs, bytes, crossMsgs, crossVol, rounds)
		}
		total := crossVol + crossVol2
		switch {
		case total == 0:
			// Self-only (or silent) exchanges: no model may charge time.
			if e.Now() != 0 {
				t.Fatalf("mode %d: self-only exchange charged %v", mode, e.Now())
			}
		case mode == 0:
			if e.Now() != 0 {
				t.Fatalf("free link charged %v", e.Now())
			}
		case mode == 1:
			// Pool-only: the pool drains every exchange's volume exactly
			// once and overlapping exchanges serialize, so the run ends
			// when the summed volume has drained — chunked or not, one
			// group or two. Each reservation's duration conversion may
			// truncate below a nanosecond, so the chained end time may
			// trail the one-shot conversion by up to one ns per charge.
			want := time.Duration(float64(total) / bw * float64(time.Second))
			slack := time.Duration(rounds + 1)
			if e.Now() > want+slack || e.Now() < want-slack {
				t.Fatalf("bisection-only run ended at %v, want %v (±%dns; vol %d+%d, rounds %d)",
					e.Now(), want, slack, crossVol, crossVol2, rounds)
			}
		case mode == 2:
			// Composed: at least the summed pool charge (same per-charge
			// truncation slack), plus nonnegative per-process time.
			min := time.Duration(float64(total)/bw*float64(time.Second)) - time.Duration(rounds+1)
			if e.Now() < min {
				t.Fatalf("composed run ended at %v, below the pool charge %v", e.Now(), min)
			}
		}
	})
}

// make2 builds a rank's send payloads from the size matrix with the
// deterministic per-pair fill the delivery check expects.
func make2(sizes [][]int, rank int) [][]byte {
	send := make([][]byte, len(sizes))
	for dst, n := range sizes[rank] {
		if n == 0 {
			continue
		}
		pl := make([]byte, n)
		for i := range pl {
			pl[i] = byte(7*rank + 3*dst + i)
		}
		send[dst] = pl
	}
	return send
}
