package mpp

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/sim"
)

// exchangeResult captures everything a scenario run observes, so dense
// and sparse paths can be compared field by field.
type exchangeResult struct {
	now       time.Duration
	msgs      int64
	bytes     int64
	checksums []uint64
	wall      time.Duration
	allocs    uint64
}

// runChunkedScenario drives a pinned chunked-exchange scenario — every
// rank ships a payload to fanout neighbors each round under both link
// models — through either the dense (pre-sparse) Exchange path or the
// sparse one, and reports modeled time, traffic, per-rank payload
// checksums, and the wall-clock/allocation cost of simulating it.
func runChunkedScenario(ranks, rounds, fanout, payload int, sparse bool) exchangeResult {
	eng := sim.NewEngine()
	checksums := make([]uint64, ranks)
	g, _ := Run(eng, ranks, "w", func(p *Proc) {
		r := p.Rank()
		buf := make([]byte, payload)
		for i := range buf {
			buf[i] = byte(r + i)
		}
		var sum uint64
		digest := func(src int, data []byte) {
			for _, b := range data {
				sum = sum*31 + uint64(b)
			}
			sum = sum*31 + uint64(src)
		}
		if sparse {
			ex := p.NewSparseExchange()
			send := make([]Msg, 0, fanout)
			for round := 0; round < rounds; round++ {
				send = send[:0]
				for j := 1; j <= fanout; j++ {
					send = append(send, Msg{Dst: (r + j) % ranks, Data: buf})
				}
				recv := ex.Round(send)
				SortBySrc(recv)
				for _, m := range recv {
					digest(m.Src, m.Data)
				}
				p.RecycleRecv(recv)
			}
		} else {
			ex := p.NewExchange()
			send := make([][]byte, ranks)
			for round := 0; round < rounds; round++ {
				for j := 1; j <= fanout; j++ {
					send[(r+j)%ranks] = buf
				}
				recv := ex.Round(send)
				for j := 1; j <= fanout; j++ {
					send[(r+j)%ranks] = nil
				}
				for src, data := range recv {
					if data != nil {
						digest(src, data)
					}
				}
			}
		}
		checksums[r] = sum
	})
	g.SetLink(2*time.Microsecond, 100e6)
	g.SetBisection(500e6)
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	if err := eng.Run(); err != nil {
		panic(err)
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	msgs, bytes := g.Traffic()
	return exchangeResult{
		now:       eng.Now(),
		msgs:      msgs,
		bytes:     bytes,
		checksums: checksums,
		wall:      wall,
		allocs:    after.Mallocs - before.Mallocs,
	}
}

// TestSparseMatchesDenseChunked checks the sparse exchange's core
// guarantee: same modeled time, same Traffic, same delivered payloads
// as the dense path it replaces.
func TestSparseMatchesDenseChunked(t *testing.T) {
	dense := runChunkedScenario(16, 4, 3, 96, false)
	sp := runChunkedScenario(16, 4, 3, 96, true)
	if dense.now != sp.now {
		t.Fatalf("modeled time differs: dense %v, sparse %v", dense.now, sp.now)
	}
	if dense.msgs != sp.msgs || dense.bytes != sp.bytes {
		t.Fatalf("traffic differs: dense (%d, %d), sparse (%d, %d)",
			dense.msgs, dense.bytes, sp.msgs, sp.bytes)
	}
	for r := range dense.checksums {
		if dense.checksums[r] != sp.checksums[r] {
			t.Fatalf("rank %d received different payloads: dense %x, sparse %x",
				r, dense.checksums[r], sp.checksums[r])
		}
	}
}

// TestAlltoallvSparseMatchesDense compares the single-shot forms,
// including self-sends.
func TestAlltoallvSparseMatchesDense(t *testing.T) {
	const ranks = 8
	run := func(sparse bool) (time.Duration, int64, int64, []uint64) {
		eng := sim.NewEngine()
		sums := make([]uint64, ranks)
		g, _ := Run(eng, ranks, "w", func(p *Proc) {
			r := p.Rank()
			pl := make([]byte, 16+4*r)
			for i := range pl {
				pl[i] = byte(r ^ i)
			}
			digest := func(src int, data []byte) {
				for _, b := range data {
					sums[r] = sums[r]*31 + uint64(b)
				}
				sums[r] = sums[r]*31 + uint64(src)
			}
			// Send to self, next, and next-next ranks.
			if sparse {
				recv := p.AlltoallvSparse([]Msg{
					{Dst: r, Data: pl},
					{Dst: (r + 1) % ranks, Data: pl},
					{Dst: (r + 2) % ranks, Data: pl},
				})
				SortBySrc(recv)
				for _, m := range recv {
					digest(m.Src, m.Data)
				}
				p.RecycleRecv(recv)
			} else {
				send := make([][]byte, ranks)
				send[r] = pl
				send[(r+1)%ranks] = pl
				send[(r+2)%ranks] = pl
				recv := p.Alltoallv(send)
				for src, data := range recv {
					if data != nil {
						digest(src, data)
					}
				}
			}
		})
		g.SetLink(time.Microsecond, 50e6)
		g.SetBisection(200e6)
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		msgs, bytes := g.Traffic()
		return eng.Now(), msgs, bytes, sums
	}
	dNow, dMsgs, dBytes, dSums := run(false)
	sNow, sMsgs, sBytes, sSums := run(true)
	if dNow != sNow || dMsgs != sMsgs || dBytes != sBytes {
		t.Fatalf("dense (%v, %d, %d) != sparse (%v, %d, %d)",
			dNow, dMsgs, dBytes, sNow, sMsgs, sBytes)
	}
	for r := range dSums {
		if dSums[r] != sSums[r] {
			t.Fatalf("rank %d payloads differ", r)
		}
	}
}

// TestRecycleRecvReused checks the inbox pool actually recycles: after
// warm-up rounds, sparse rounds should allocate almost nothing.
func TestRecycleRecvReused(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counting is meaningless under -race")
	}
	warm := runChunkedScenario(64, 2, 4, 64, true)
	long := runChunkedScenario(64, 34, 4, 64, true)
	perRound := float64(long.allocs-warm.allocs) / 32
	// Each extra round involves 64 ranks; without recycling, receive
	// lists alone would cost ≥ 64 allocations a round.
	if perRound > 32 {
		t.Fatalf("sparse steady state allocates %.1f objects per round; inbox recycling broken", perRound)
	}
}

// TestTopologySameSideSkipsPool: with a topology whose traffic never
// crosses the cut, the bisection pool must charge nothing.
func TestTopologySameSideSkipsPool(t *testing.T) {
	run := func(topo []int) time.Duration {
		eng := sim.NewEngine()
		g, _ := Run(eng, 4, "w", func(p *Proc) {
			// Ranks 0<->1 exchange within side 0; ranks 2 and 3 idle.
			var send []Msg
			switch p.Rank() {
			case 0:
				send = []Msg{{Dst: 1, Data: make([]byte, 1000)}}
			case 1:
				send = []Msg{{Dst: 0, Data: make([]byte, 1000)}}
			}
			p.RecycleRecv(p.AlltoallvSparse(send))
		})
		g.SetBisection(1e6) // 1 MB/s: 1000 B cost 1 ms if pooled
		g.SetTopology(topo)
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return eng.Now()
	}
	base := run(nil)
	if base != 2*time.Millisecond {
		t.Fatalf("no-topology pool charge = %v, want 2ms (2000 B at 1 MB/s)", base)
	}
	sameSide := run([]int{0, 0, 1, 1})
	if sameSide != 0 {
		t.Fatalf("same-side exchange charged the pool: %v, want 0", sameSide)
	}
}

// TestTopologyReleasesPoolEarly: with a topology, processes that moved
// no cross-cut bytes skip the pool wait, and participants wait only for
// the shared reservation to drain instead of re-paying the full volume
// from their own (link-delayed) arrival.
func TestTopologyReleasesPoolEarly(t *testing.T) {
	run := func(topo []int) time.Duration {
		eng := sim.NewEngine()
		g, _ := Run(eng, 4, "w", func(p *Proc) {
			var send []Msg
			if p.Rank() == 0 {
				// 0 -> 2 crosses the cut.
				send = []Msg{{Dst: 2, Data: make([]byte, 1000)}}
			}
			p.RecycleRecv(p.AlltoallvSparse(send))
		})
		g.SetLink(0, 1e6)   // injecting/receiving 1000 B costs 1 ms
		g.SetBisection(1e6) // draining 1000 B through the pool costs 1 ms
		g.SetTopology(topo)
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return eng.Now()
	}
	// Pre-PR accounting: rank 0's injection delays the entry barrier to
	// 1 ms; rank 2 then pays its 1 ms receive charge and re-pays the
	// full pool drain from its own 2 ms arrival -> ends at 3 ms.
	if got := run(nil); got != 3*time.Millisecond {
		t.Fatalf("no-topology end = %v, want 3ms", got)
	}
	// With the cut [0,0|1,1]: ranks 1 and 3 moved nothing across it and
	// skip the pool; the reservation drains at 2 ms (1 ms barrier + 1 ms
	// drain), so rank 2, arriving at 2 ms after its receive charge, is
	// not held further -> ends at 2 ms.
	if got := run([]int{0, 0, 1, 1}); got != 2*time.Millisecond {
		t.Fatalf("topology end = %v, want 2ms (early pool release)", got)
	}
}

// TestTopologyLengthMismatchPanics pins the misuse guard.
func TestTopologyLengthMismatchPanics(t *testing.T) {
	eng := sim.NewEngine()
	g, _ := Run(eng, 4, "w", func(p *Proc) {})
	defer func() {
		if recover() == nil {
			t.Fatal("SetTopology with wrong length did not panic")
		}
	}()
	g.SetTopology([]int{0, 1})
}

// TestEngineScaleWin is the PR's enforced win: on a pinned 1024-rank
// chunked exchange, the sparse path must simulate the identical modeled
// scenario with at least 4x fewer allocations per round and at least 3x
// less wall-clock time than the dense pre-PR path.
func TestEngineScaleWin(t *testing.T) {
	if raceEnabled {
		t.Skip("wall-clock and allocation ratios are distorted under -race")
	}
	if testing.Short() {
		t.Skip("1024-rank comparison skipped in -short mode")
	}
	const (
		ranks   = 1024
		rounds  = 20
		fanout  = 3
		payload = 64
	)
	dense := runChunkedScenario(ranks, rounds, fanout, payload, false)
	sp := runChunkedScenario(ranks, rounds, fanout, payload, true)
	if dense.now != sp.now {
		t.Fatalf("modeled time differs: dense %v, sparse %v", dense.now, sp.now)
	}
	if dense.msgs != sp.msgs || dense.bytes != sp.bytes {
		t.Fatalf("traffic differs: dense (%d, %d), sparse (%d, %d)",
			dense.msgs, dense.bytes, sp.msgs, sp.bytes)
	}
	for r := range dense.checksums {
		if dense.checksums[r] != sp.checksums[r] {
			t.Fatalf("rank %d received different payloads", r)
		}
	}
	denseAllocs := float64(dense.allocs) / rounds
	sparseAllocs := float64(sp.allocs) / rounds
	t.Logf("dense: %v wall, %.0f allocs/round; sparse: %v wall, %.0f allocs/round",
		dense.wall, denseAllocs, sp.wall, sparseAllocs)
	if denseAllocs < 4*sparseAllocs {
		t.Errorf("allocation win %.2fx < 4x (dense %.0f, sparse %.0f per round)",
			denseAllocs/sparseAllocs, denseAllocs, sparseAllocs)
	}
	if dense.wall < 3*sp.wall {
		t.Errorf("wall-clock win %.2fx < 3x (dense %v, sparse %v)",
			float64(dense.wall)/float64(sp.wall), dense.wall, sp.wall)
	}
}
