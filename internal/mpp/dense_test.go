// Dense collective baselines. Alltoallv and the chunked Exchange are the
// original rank-indexed forms of the exchange primitives: every process
// touches all P slots per round, O(P²) work and copies even when most
// pairs are empty. Production traffic moved to the sparse forms
// (AlltoallvSparse, NewSparseExchange), which charge identically by
// construction; the dense forms survive here as the test-only comparison
// baselines that enforce that equivalence (sparse_test.go) and as the
// readable reference semantics of a personalized exchange.

package mpp

// Alltoallv performs a personalized all-to-all exchange: send[dst] is the
// payload (possibly nil) this process sends to rank dst, and the returned
// slice holds at recv[src] the payload rank src sent to this process
// (valid until the group's next collective; payloads are copied at send
// time, so the caller may reuse its buffers immediately). len(send) may
// be shorter than the group; absent entries send nothing. With a link
// model configured (SetLink), each process is charged for injecting its
// outgoing payloads and receiving its incoming ones, and with a shared
// link (SetBisection) the exchange's total cross-link volume is
// additionally charged against the pool; the self payload (send[rank])
// is a local copy and crosses no link under either model.
//
// This is the data-exchange primitive of two-phase collective I/O
// (package collective): ranks ship their pieces to aggregators, or
// aggregators ship file domains back to ranks, in one step.
func (p *Proc) Alltoallv(send [][]byte) [][]byte {
	g := p.group
	row := g.denseRow(p.rank)
	var out, outPool int64
	outMsgs := 0
	for dst := 0; dst < g.size; dst++ {
		var pl []byte
		if dst < len(send) {
			pl = send[dst]
		}
		if pl == nil {
			row[dst] = nil
			continue
		}
		cp := make([]byte, len(pl))
		copy(cp, pl)
		row[dst] = cp
		if dst != p.rank {
			out += int64(len(pl))
			outMsgs++
			if g.crossCut(p.rank, dst) {
				outPool += int64(len(pl))
			}
		}
	}
	p.chargeLink(outMsgs, out)
	g.trafMsgs += int64(outMsgs)
	g.trafBytes += out
	g.crossVol += outPool
	p.Barrier()
	// Between the barriers crossVol holds every rank's contribution —
	// the whole exchange's cross-link volume (self payloads excluded),
	// identical for all readers.
	recv := make([][]byte, g.size)
	var in, inPool int64
	inMsgs := 0
	for src := 0; src < g.size; src++ {
		recv[src] = g.a2a[src][p.rank]
		if src != p.rank && recv[src] != nil {
			in += int64(len(recv[src]))
			inMsgs++
			if g.crossCut(src, p.rank) {
				inPool += int64(len(recv[src]))
			}
		}
	}
	p.chargeLink(inMsgs, in)
	p.chargePool(g.crossVol, outPool+inPool)
	p.Barrier()
	g.crossVol -= outPool
	g.exCharged = false
	return recv
}

// denseRow returns this rank's row of the dense Alltoallv scratch table,
// allocating the table lazily: programs on the sparse path never pay the
// O(size²) footprint. Every rank of a dense collective calls this before
// the entry barrier, so all rows exist by delivery time.
func (g *Group) denseRow(rank int) [][]byte {
	if g.a2a == nil {
		g.a2a = make([][][]byte, g.size)
	}
	if g.a2a[rank] == nil {
		g.a2a[rank] = make([][]byte, g.size)
	}
	return g.a2a[rank]
}

// Exchange is a chunked personalized exchange: one logical Alltoallv
// split into rounds so callers can overlap a round's delivery with other
// work (the pipelined collective's exchange engine). Every process of
// the group creates its own handle and all must call Round the same
// number of times — each Round is a collective, barrier-bracketed like
// Alltoallv. Per-message setup time (SetLink's msg cost) and Traffic's
// message count are charged once per communicating pair across the
// handle's lifetime, so a chunked exchange costs the same modeled time
// and counts the same traffic as the equivalent single Alltoallv; byte
// costs (per-process link and shared pool) are charged per round, as the
// bytes move.
type Exchange struct {
	p        *Proc
	sentTo   []bool // pairs whose setup this process already charged
	recvFrom []bool
}

// NewExchange returns this process's handle on a fresh chunked exchange.
// Handles are per-collective-operation: a new logical exchange (whose
// per-pair setup should be charged again) needs a new handle.
func (p *Proc) NewExchange() *Exchange {
	return &Exchange{
		p:        p,
		sentTo:   make([]bool, p.group.size),
		recvFrom: make([]bool, p.group.size),
	}
}

// Round moves one round of the chunked exchange: send[dst] is this
// round's payload for rank dst (nil sends nothing this round), and the
// returned slice holds at recv[src] what src sent this process this
// round — the same contract as Alltoallv, charged per the Exchange
// rules. All processes of the group must call Round together.
func (ex *Exchange) Round(send [][]byte) [][]byte {
	p := ex.p
	g := p.group
	row := g.denseRow(p.rank)
	var out, outPool int64
	newOut := 0
	for dst := 0; dst < g.size; dst++ {
		var pl []byte
		if dst < len(send) {
			pl = send[dst]
		}
		if pl == nil {
			row[dst] = nil
			continue
		}
		cp := make([]byte, len(pl))
		copy(cp, pl)
		row[dst] = cp
		if dst != p.rank {
			out += int64(len(pl))
			if !ex.sentTo[dst] {
				ex.sentTo[dst] = true
				newOut++
			}
			if g.crossCut(p.rank, dst) {
				outPool += int64(len(pl))
			}
		}
	}
	p.chargeLink(newOut, out)
	g.trafMsgs += int64(newOut)
	g.trafBytes += out
	g.crossVol += outPool
	p.Barrier()
	recv := make([][]byte, g.size)
	var in, inPool int64
	newIn := 0
	for src := 0; src < g.size; src++ {
		recv[src] = g.a2a[src][p.rank]
		if src != p.rank && recv[src] != nil {
			in += int64(len(recv[src]))
			if !ex.recvFrom[src] {
				ex.recvFrom[src] = true
				newIn++
			}
			if g.crossCut(src, p.rank) {
				inPool += int64(len(recv[src]))
			}
		}
	}
	p.chargeLink(newIn, in)
	p.chargePool(g.crossVol, outPool+inPool)
	p.Barrier()
	g.crossVol -= outPool
	g.exCharged = false
	return recv
}
