// Package boundary implements the paper's §5 treatment of partition
// boundaries: "in many algorithms, data along partition boundaries is
// needed by processes on both sides ... the data partitions logically
// overlap". Two remedies are provided:
//
//   - Replication: boundary (halo) records are stored twice, once in each
//     adjacent partition, so every process reads a self-contained
//     partition. This inflates the file and complicates the global view
//     ("there will be redundant data records") — DedupReader restores a
//     clean canonical stream.
//
//   - Caching: partitions store only their own records; each process
//     reads its neighbours' boundary records once and caches them in
//     memory across passes (HaloCache) — "helpful if more than one pass
//     is made through the file".
package boundary

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/pfs"
	"repro/internal/sim"
)

// Layout describes a 1-D domain of logical records split into partitions
// with halo overlap.
type Layout struct {
	Parts int   // number of partitions
	Base  int64 // records owned per partition (the last may own fewer if Points < Parts*Base)
	Halo  int64 // records replicated from each neighbour
	Total int64 // total logical records
}

// New validates a boundary layout for total records over parts
// partitions with the given halo width.
func New(parts int, total, halo int64) (Layout, error) {
	if parts <= 0 {
		return Layout{}, fmt.Errorf("boundary: parts %d", parts)
	}
	if total <= 0 {
		return Layout{}, fmt.Errorf("boundary: total records %d", total)
	}
	if halo < 0 {
		return Layout{}, fmt.Errorf("boundary: negative halo")
	}
	base := (total + int64(parts) - 1) / int64(parts)
	if halo > base {
		return Layout{}, fmt.Errorf("boundary: halo %d exceeds partition size %d", halo, base)
	}
	return Layout{Parts: parts, Base: base, Halo: halo, Total: total}, nil
}

// OwnedRange reports the logical records partition p owns (no halo).
func (l Layout) OwnedRange(p int) (first, end int64) {
	first = int64(p) * l.Base
	end = first + l.Base
	if first > l.Total {
		first = l.Total
	}
	if end > l.Total {
		end = l.Total
	}
	return first, end
}

// StoredRange reports the logical records partition p stores when
// replicated (owned plus halos, clipped at the domain edges).
func (l Layout) StoredRange(p int) (first, end int64) {
	of, oe := l.OwnedRange(p)
	first = of - l.Halo
	end = oe + l.Halo
	if p == 0 {
		first = of
	}
	if p == l.Parts-1 {
		end = oe
	}
	if first < 0 {
		first = 0
	}
	if end > l.Total {
		end = l.Total
	}
	return first, end
}

// StoredPerPart reports the stored record count of each partition under
// replication.
func (l Layout) StoredPerPart() []int64 {
	out := make([]int64, l.Parts)
	for p := range out {
		f, e := l.StoredRange(p)
		out[p] = e - f
	}
	return out
}

// TotalStored reports the file size in records under replication.
func (l Layout) TotalStored() int64 {
	var sum int64
	for _, n := range l.StoredPerPart() {
		sum += n
	}
	return sum
}

// Overhead reports the fractional file-size overhead of replication.
func (l Layout) Overhead() float64 {
	return float64(l.TotalStored()-l.Total) / float64(l.Total)
}

// CreateReplicated creates a PS file storing each partition's owned and
// halo records contiguously (BlockRecords is fixed at 1 so partition
// boundaries land exactly on paper-block boundaries for any halo).
func CreateReplicated(vol *pfs.Volume, name string, recordSize int, l Layout) (*pfs.File, error) {
	return vol.Create(pfs.Spec{
		Name:         name,
		Org:          pfs.OrgPartitioned,
		Category:     pfs.Specialized,
		RecordSize:   recordSize,
		BlockRecords: 1,
		NumRecords:   l.TotalStored(),
		Parts:        l.Parts,
		PartBlocks:   l.StoredPerPart(),
	})
}

// CreatePlain creates the non-replicated PS twin (each partition stores
// only owned records) for the caching strategy.
func CreatePlain(vol *pfs.Volume, name string, recordSize int, l Layout) (*pfs.File, error) {
	parts := make([]int64, l.Parts)
	for p := range parts {
		f, e := l.OwnedRange(p)
		parts[p] = e - f
	}
	return vol.Create(pfs.Spec{
		Name:         name,
		Org:          pfs.OrgPartitioned,
		Category:     pfs.Specialized,
		RecordSize:   recordSize,
		BlockRecords: 1,
		NumRecords:   l.Total,
		Parts:        l.Parts,
		PartBlocks:   parts,
	})
}

// WriteReplicated fills a replicated file: partition p's stream receives
// logical records StoredRange(p) in order, with src(rec, buf) producing
// record rec's payload.
func WriteReplicated(ctx sim.Context, f *pfs.File, l Layout, part int,
	src func(rec int64, buf []byte) error, opts core.Options) error {
	w, err := core.OpenPartWriter(f, part, opts)
	if err != nil {
		return err
	}
	buf := make([]byte, f.Mapper().RecordSize())
	first, end := l.StoredRange(part)
	for rec := first; rec < end; rec++ {
		if err := src(rec, buf); err != nil {
			w.Close(ctx)
			return err
		}
		if _, err := w.WriteRecord(ctx, buf); err != nil {
			w.Close(ctx)
			return err
		}
	}
	return w.Close(ctx)
}

// PartReader yields the logical records partition p needs for a pass
// (StoredRange under replication) directly from its own partition.
type PartReader struct {
	r       *core.StreamReader
	logical int64
	end     int64
}

// OpenPartReader opens partition part of a replicated file; records come
// back tagged with their logical (global) index.
func OpenPartReader(f *pfs.File, l Layout, part int, opts core.Options) (*PartReader, error) {
	r, err := core.OpenPartReader(f, part, opts)
	if err != nil {
		return nil, err
	}
	first, end := l.StoredRange(part)
	return &PartReader{r: r, logical: first, end: end}, nil
}

// ReadRecord returns the next record and its logical index.
func (pr *PartReader) ReadRecord(ctx sim.Context) ([]byte, int64, error) {
	if pr.logical >= pr.end {
		return nil, 0, io.EOF
	}
	data, _, err := pr.r.ReadRecord(ctx)
	if err != nil {
		return nil, 0, err
	}
	rec := pr.logical
	pr.logical++
	return data, rec, nil
}

// Close releases the reader.
func (pr *PartReader) Close(ctx sim.Context) error { return pr.r.Close(ctx) }

// DedupReader presents the clean global view of a replicated file:
// logical records in canonical order, halo duplicates skipped (the §5
// "difficulties for the global view" resolved in software).
type DedupReader struct {
	f    *pfs.File
	l    Layout
	opts core.Options

	part    int
	r       *core.StreamReader
	skipped bool
	ctx     sim.Context
	logical int64
}

// OpenDedupReader opens the deduplicating global view.
func OpenDedupReader(f *pfs.File, l Layout, ctx sim.Context, opts core.Options) (*DedupReader, error) {
	return &DedupReader{f: f, l: l, opts: opts, ctx: ctx, part: -1}, nil
}

// ReadRecord returns the next logical record and its index.
func (d *DedupReader) ReadRecord(ctx sim.Context) ([]byte, int64, error) {
	for {
		if d.r == nil {
			d.part++
			if d.part >= d.l.Parts {
				return nil, 0, io.EOF
			}
			r, err := core.OpenPartReader(d.f, d.part, d.opts)
			if err != nil {
				return nil, 0, err
			}
			d.r = r
			first, _ := d.l.StoredRange(d.part)
			d.logical = first
			d.skipped = false
		}
		ownF, ownE := d.l.OwnedRange(d.part)
		data, _, err := d.r.ReadRecord(ctx)
		if err == io.EOF {
			d.r.Close(ctx)
			d.r = nil
			continue
		}
		if err != nil {
			return nil, 0, err
		}
		rec := d.logical
		d.logical++
		if rec < ownF || rec >= ownE {
			continue // halo duplicate: skip
		}
		return data, rec, nil
	}
}

// Close releases any open partition reader.
func (d *DedupReader) Close(ctx sim.Context) error {
	if d.r != nil {
		err := d.r.Close(ctx)
		d.r = nil
		return err
	}
	return nil
}

// HaloCache implements the in-memory alternative: partition p of a plain
// (non-replicated) file reads its neighbours' boundary records once,
// keeps them in memory, and reuses them on every subsequent pass.
type HaloCache struct {
	l       Layout
	part    int
	rs      int
	records map[int64][]byte
}

// NewHaloCache prepares an empty cache for partition part.
func NewHaloCache(l Layout, part, recordSize int) *HaloCache {
	return &HaloCache{l: l, part: part, rs: recordSize, records: make(map[int64][]byte)}
}

// haloRecords lists the logical records partition p needs but does not
// own.
func (h *HaloCache) haloRecords() []int64 {
	ownF, ownE := h.l.OwnedRange(h.part)
	var out []int64
	for r := ownF - h.l.Halo; r < ownF; r++ {
		if r >= 0 {
			out = append(out, r)
		}
	}
	for r := ownE; r < ownE+h.l.Halo && r < h.l.Total; r++ {
		out = append(out, r)
	}
	return out
}

// Fill loads the halo records from the plain file through a GDA handle
// (one-time cost; subsequent passes hit memory).
func (h *HaloCache) Fill(ctx sim.Context, f *pfs.File, opts core.Options) error {
	d, err := core.OpenDirect(f, opts)
	if err != nil {
		return err
	}
	defer d.Close(ctx)
	for _, rec := range h.haloRecords() {
		buf := make([]byte, h.rs)
		if err := d.ReadRecordAt(ctx, rec, buf); err != nil {
			return err
		}
		h.records[rec] = buf
	}
	return nil
}

// Get returns the cached halo record, or nil if rec is not a cached halo.
func (h *HaloCache) Get(rec int64) []byte { return h.records[rec] }

// Size reports the cached record count.
func (h *HaloCache) Size() int { return len(h.records) }

// MemoryBytes reports the cache footprint.
func (h *HaloCache) MemoryBytes() int64 { return int64(len(h.records)) * int64(h.rs) }
