package boundary

import (
	"io"
	"testing"

	"repro/internal/blockio"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/workload"
)

func testVolume(t *testing.T, devs int) *pfs.Volume {
	t.Helper()
	disks := make([]*device.Disk, devs)
	for i := range disks {
		disks[i] = device.New(device.Config{
			Geometry: device.Geometry{BlockSize: 256, BlocksPerCyl: 8, Cylinders: 256},
		})
	}
	store, err := blockio.NewDirect(disks)
	if err != nil {
		t.Fatal(err)
	}
	return pfs.NewVolume(store)
}

func TestLayoutValidation(t *testing.T) {
	if _, err := New(0, 10, 1); err == nil {
		t.Fatal("0 parts accepted")
	}
	if _, err := New(2, 0, 1); err == nil {
		t.Fatal("0 records accepted")
	}
	if _, err := New(2, 10, -1); err == nil {
		t.Fatal("negative halo accepted")
	}
	if _, err := New(2, 10, 6); err == nil {
		t.Fatal("halo > partition accepted")
	}
}

func TestRangesAndOverhead(t *testing.T) {
	l, err := New(4, 40, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Owned: [0,10) [10,20) [20,30) [30,40).
	if f, e := l.OwnedRange(1); f != 10 || e != 20 {
		t.Fatalf("owned(1) = [%d,%d)", f, e)
	}
	// Stored: edges lose one halo side.
	if f, e := l.StoredRange(0); f != 0 || e != 12 {
		t.Fatalf("stored(0) = [%d,%d)", f, e)
	}
	if f, e := l.StoredRange(1); f != 8 || e != 22 {
		t.Fatalf("stored(1) = [%d,%d)", f, e)
	}
	if f, e := l.StoredRange(3); f != 28 || e != 40 {
		t.Fatalf("stored(3) = [%d,%d)", f, e)
	}
	// Total stored: 12 + 14 + 14 + 12 = 52; overhead = 12/40.
	if l.TotalStored() != 52 {
		t.Fatalf("TotalStored = %d", l.TotalStored())
	}
	if got := l.Overhead(); got != 0.3 {
		t.Fatalf("Overhead = %v", got)
	}
}

func TestReplicatedRoundTripPerPartition(t *testing.T) {
	v := testVolume(t, 4)
	ctx := sim.NewWall()
	l, err := New(4, 40, 2)
	if err != nil {
		t.Fatal(err)
	}
	f, err := CreateReplicated(v, "halo", 64, l)
	if err != nil {
		t.Fatal(err)
	}
	src := func(rec int64, buf []byte) error {
		workload.Record(buf, 11, rec)
		return nil
	}
	for p := 0; p < 4; p++ {
		if err := WriteReplicated(ctx, f, l, p, src, core.Options{}); err != nil {
			t.Fatal(err)
		}
	}
	// Each partition reads back its stored range — including halos —
	// without touching other partitions.
	for p := 0; p < 4; p++ {
		pr, err := OpenPartReader(f, l, p, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		first, end := l.StoredRange(p)
		want := first
		for {
			data, rec, err := pr.ReadRecord(ctx)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			if rec != want {
				t.Fatalf("part %d read logical %d, want %d", p, rec, want)
			}
			if err := workload.CheckRecord(data, 11, rec); err != nil {
				t.Fatal(err)
			}
			want++
		}
		if want != end {
			t.Fatalf("part %d stopped at %d of %d", p, want, end)
		}
		if err := pr.Close(ctx); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDedupReaderCanonicalStream(t *testing.T) {
	v := testVolume(t, 4)
	ctx := sim.NewWall()
	l, err := New(4, 40, 3)
	if err != nil {
		t.Fatal(err)
	}
	f, err := CreateReplicated(v, "halo", 64, l)
	if err != nil {
		t.Fatal(err)
	}
	src := func(rec int64, buf []byte) error {
		workload.Record(buf, 12, rec)
		return nil
	}
	for p := 0; p < 4; p++ {
		if err := WriteReplicated(ctx, f, l, p, src, core.Options{}); err != nil {
			t.Fatal(err)
		}
	}
	d, err := OpenDedupReader(f, l, ctx, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(0)
	for {
		data, rec, err := d.ReadRecord(ctx)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if rec != want {
			t.Fatalf("dedup stream gave %d, want %d", rec, want)
		}
		if err := workload.CheckRecord(data, 12, rec); err != nil {
			t.Fatal(err)
		}
		want++
	}
	if want != 40 {
		t.Fatalf("dedup stream delivered %d of 40", want)
	}
	if err := d.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestHaloCache(t *testing.T) {
	v := testVolume(t, 4)
	ctx := sim.NewWall()
	l, err := New(4, 40, 2)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := CreatePlain(v, "plain", 64, l)
	if err != nil {
		t.Fatal(err)
	}
	// Fill the plain file canonically.
	w, err := core.OpenWriter(plain, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	for rec := int64(0); rec < 40; rec++ {
		workload.Record(buf, 13, rec)
		if _, err := w.WriteRecord(ctx, buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(ctx); err != nil {
		t.Fatal(err)
	}
	// Partition 1 caches its halos: records 8,9 and 20,21.
	h := NewHaloCache(l, 1, 64)
	if err := h.Fill(ctx, plain, core.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	if h.Size() != 4 {
		t.Fatalf("cache size %d, want 4", h.Size())
	}
	if h.MemoryBytes() != 4*64 {
		t.Fatalf("memory = %d", h.MemoryBytes())
	}
	for _, rec := range []int64{8, 9, 20, 21} {
		data := h.Get(rec)
		if data == nil {
			t.Fatalf("halo %d missing", rec)
		}
		if err := workload.CheckRecord(data, 13, rec); err != nil {
			t.Fatal(err)
		}
	}
	if h.Get(15) != nil {
		t.Fatal("owned record in halo cache")
	}
	// Edge partitions have one-sided halos.
	h0 := NewHaloCache(l, 0, 64)
	if err := h0.Fill(ctx, plain, core.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	if h0.Size() != 2 {
		t.Fatalf("edge cache size %d, want 2", h0.Size())
	}
}

func TestPlainFileSmallerThanReplicated(t *testing.T) {
	v := testVolume(t, 4)
	l, err := New(4, 40, 2)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := CreatePlain(v, "p", 64, l)
	if err != nil {
		t.Fatal(err)
	}
	repl, err := CreateReplicated(v, "r", 64, l)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Mapper().NumRecords() >= repl.Mapper().NumRecords() {
		t.Fatalf("plain %d >= replicated %d", plain.Mapper().NumRecords(), repl.Mapper().NumRecords())
	}
}
