package device

import (
	"bytes"
	"testing"

	"repro/internal/sim"
)

// TestBlocksVecRoundTrip checks writev/readv semantics: a gather write
// followed by a scatter read round-trips through arbitrary block-multiple
// segmentations, each transfer counting as exactly one request.
func TestBlocksVecRoundTrip(t *testing.T) {
	d := New(Config{Geometry: Geometry{BlockSize: 64, BlocksPerCyl: 4, Cylinders: 8}})
	ctx := sim.NewWall()
	const n = 6
	bs := d.Geometry().BlockSize
	src := make([]byte, n*bs)
	for i := range src {
		src[i] = byte(i * 7)
	}
	// Gather from a 1+3+2 segmentation.
	srcs := [][]byte{src[:bs], src[bs : 4*bs], src[4*bs:]}
	if err := d.WriteBlocksVec(ctx, 2, n, srcs); err != nil {
		t.Fatal(err)
	}
	if got := d.Stats().Writes; got != 1 {
		t.Fatalf("gather write counted %d requests, want 1", got)
	}
	// Scatter into a different 2+2+1+1 segmentation.
	parts := make([][]byte, 4)
	for i, k := range []int{2, 2, 1, 1} {
		parts[i] = make([]byte, k*bs)
	}
	if err := d.ReadBlocksVec(ctx, 2, n, parts); err != nil {
		t.Fatal(err)
	}
	if got := d.Stats().Reads; got != 1 {
		t.Fatalf("scatter read counted %d requests, want 1", got)
	}
	if got := bytes.Join(parts, nil); !bytes.Equal(got, src) {
		t.Fatalf("scatter read returned wrong data")
	}
}

// TestBlocksVecMatchesBlocksTiming asserts the vectored run costs exactly
// what the contiguous run costs under the service-time model: the
// scatter list is free, only the physical run shape is charged.
func TestBlocksVecMatchesBlocksTiming(t *testing.T) {
	run := func(vec bool) (elapsed int64) {
		e := sim.NewEngine()
		d := New(Config{Engine: e})
		bs := d.Geometry().BlockSize
		e.Go("io", func(p *sim.Proc) {
			buf := make([]byte, 16*bs)
			if vec {
				halves := [][]byte{buf[:8*bs], buf[8*bs:]}
				if err := d.ReadBlocksVec(p, 0, 16, halves); err != nil {
					t.Error(err)
				}
			} else {
				if err := d.ReadBlocks(p, 0, 16, buf); err != nil {
					t.Error(err)
				}
			}
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return int64(e.Now())
	}
	if plain, vec := run(false), run(true); plain != vec {
		t.Fatalf("vectored run modeled %d ns, contiguous run %d ns; must be identical", vec, plain)
	}
}

// TestBlocksVecValidation rejects malformed scatter lists.
func TestBlocksVecValidation(t *testing.T) {
	d := New(Config{Geometry: Geometry{BlockSize: 64, BlocksPerCyl: 4, Cylinders: 8}})
	ctx := sim.NewWall()
	bs := d.Geometry().BlockSize
	if err := d.ReadBlocksVec(ctx, 0, 2, [][]byte{make([]byte, bs+1), make([]byte, bs-1)}); err == nil {
		t.Fatal("accepted non-block-multiple segments")
	}
	if err := d.ReadBlocksVec(ctx, 0, 2, [][]byte{make([]byte, bs)}); err == nil {
		t.Fatal("accepted short scatter list")
	}
	if err := d.WriteBlocksVec(ctx, 0, 0, nil); err == nil {
		t.Fatal("accepted empty run")
	}
	if err := d.WriteBlocksVec(ctx, d.Geometry().Blocks(), 1, [][]byte{make([]byte, bs)}); err == nil {
		t.Fatal("accepted out-of-range run")
	}
}
