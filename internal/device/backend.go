package device

import (
	"fmt"
	"os"
)

// Backend stores a disk's pages. The default is an in-memory sparse map;
// FileBackend keeps pages in a host file so simulated volumes can exceed
// RAM and persist across processes.
type Backend interface {
	// ReadPage copies block's page into dst, reporting false if the
	// block was never written (dst contents are then unspecified).
	ReadPage(block int64, dst []byte) (bool, error)
	// WritePage stores src as block's page.
	WritePage(block int64, src []byte) error
	// Erase discards all pages.
	Erase() error
	// Snapshot deep-copies all written pages.
	Snapshot() (map[int64][]byte, error)
	// Restore replaces contents with the snapshot.
	Restore(map[int64][]byte) error
	// Close releases backend resources.
	Close() error
}

// memBackend is the default sparse in-memory store.
type memBackend struct {
	pages map[int64][]byte
	bs    int
}

// newMemBackend builds an empty in-memory backend.
func newMemBackend(blockSize int) *memBackend {
	return &memBackend{pages: make(map[int64][]byte), bs: blockSize}
}

// ReadPage implements Backend.
func (m *memBackend) ReadPage(block int64, dst []byte) (bool, error) {
	pg, ok := m.pages[block]
	if !ok {
		return false, nil
	}
	copy(dst, pg)
	return true, nil
}

// WritePage implements Backend.
func (m *memBackend) WritePage(block int64, src []byte) error {
	pg := m.pages[block]
	if pg == nil {
		pg = make([]byte, m.bs)
		m.pages[block] = pg
	}
	copy(pg, src)
	return nil
}

// Erase implements Backend.
func (m *memBackend) Erase() error {
	m.pages = make(map[int64][]byte)
	return nil
}

// Snapshot implements Backend.
func (m *memBackend) Snapshot() (map[int64][]byte, error) {
	out := make(map[int64][]byte, len(m.pages))
	for b, pg := range m.pages {
		cp := make([]byte, len(pg))
		copy(cp, pg)
		out[b] = cp
	}
	return out, nil
}

// Restore implements Backend.
func (m *memBackend) Restore(snap map[int64][]byte) error {
	m.pages = make(map[int64][]byte, len(snap))
	for b, pg := range snap {
		cp := make([]byte, len(pg))
		copy(cp, pg)
		m.pages[b] = cp
	}
	return nil
}

// Close implements Backend.
func (m *memBackend) Close() error { return nil }

// FileBackend stores pages in a host file at block-aligned offsets
// (sparse where the OS supports it). Written blocks are tracked in
// memory so unwritten blocks still read as "absent".
type FileBackend struct {
	f       *os.File
	bs      int
	written map[int64]bool
}

// NewFileBackend creates (or truncates) the backing file at path.
func NewFileBackend(path string, blockSize int) (*FileBackend, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("device: file backend: %w", err)
	}
	return &FileBackend{f: f, bs: blockSize, written: make(map[int64]bool)}, nil
}

// ReadPage implements Backend.
func (fb *FileBackend) ReadPage(block int64, dst []byte) (bool, error) {
	if !fb.written[block] {
		return false, nil
	}
	if _, err := fb.f.ReadAt(dst[:fb.bs], block*int64(fb.bs)); err != nil {
		return true, fmt.Errorf("device: file backend read block %d: %w", block, err)
	}
	return true, nil
}

// WritePage implements Backend.
func (fb *FileBackend) WritePage(block int64, src []byte) error {
	if _, err := fb.f.WriteAt(src[:fb.bs], block*int64(fb.bs)); err != nil {
		return fmt.Errorf("device: file backend write block %d: %w", block, err)
	}
	fb.written[block] = true
	return nil
}

// Erase implements Backend.
func (fb *FileBackend) Erase() error {
	if err := fb.f.Truncate(0); err != nil {
		return err
	}
	fb.written = make(map[int64]bool)
	return nil
}

// Snapshot implements Backend.
func (fb *FileBackend) Snapshot() (map[int64][]byte, error) {
	out := make(map[int64][]byte, len(fb.written))
	for b := range fb.written {
		pg := make([]byte, fb.bs)
		if _, err := fb.f.ReadAt(pg, b*int64(fb.bs)); err != nil {
			return nil, err
		}
		out[b] = pg
	}
	return out, nil
}

// Restore implements Backend.
func (fb *FileBackend) Restore(snap map[int64][]byte) error {
	if err := fb.Erase(); err != nil {
		return err
	}
	for b, pg := range snap {
		if err := fb.WritePage(b, pg); err != nil {
			return err
		}
	}
	return nil
}

// Close implements Backend.
func (fb *FileBackend) Close() error { return fb.f.Close() }

var (
	_ Backend = (*memBackend)(nil)
	_ Backend = (*FileBackend)(nil)
)
