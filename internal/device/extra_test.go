package device

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestDiskName(t *testing.T) {
	d := New(Config{Name: "scratch3"})
	if d.Name() != "scratch3" {
		t.Fatalf("Name = %q", d.Name())
	}
	if New(Config{}).Name() == "" {
		t.Fatal("default name empty")
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	d := untimed()
	ctx := sim.NewWall()
	bs := d.Geometry().BlockSize
	blkA := bytes.Repeat([]byte{0xaa}, bs)
	if err := d.WriteBlock(ctx, 2, blkA); err != nil {
		t.Fatal(err)
	}
	snap, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// Mutate after the snapshot.
	blkB := bytes.Repeat([]byte{0xbb}, bs)
	if err := d.WriteBlock(ctx, 2, blkB); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteBlock(ctx, 7, blkB); err != nil {
		t.Fatal(err)
	}
	if err := d.Restore(snap); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, bs)
	if err := d.ReadBlock(ctx, 2, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0xaa {
		t.Fatalf("block 2 = %#x after restore", got[0])
	}
	if err := d.ReadBlock(ctx, 7, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 {
		t.Fatal("block written after snapshot survived restore")
	}
}

func TestSnapshotIsDeepCopy(t *testing.T) {
	d := untimed()
	ctx := sim.NewWall()
	bs := d.Geometry().BlockSize
	if err := d.WriteBlock(ctx, 0, bytes.Repeat([]byte{1}, bs)); err != nil {
		t.Fatal(err)
	}
	snap, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	snap[0][0] = 0xff // mutating the snapshot must not touch the disk
	got := make([]byte, bs)
	if err := d.ReadBlock(ctx, 0, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 {
		t.Fatal("snapshot aliased disk pages")
	}
	// And Restore must copy too.
	if err := d.Restore(snap); err != nil {
		t.Fatal(err)
	}
	snap[0][0] = 0x77
	if err := d.ReadBlock(ctx, 0, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0xff {
		t.Fatal("restore aliased snapshot pages")
	}
}

func TestServiceTimeQuickProperties(t *testing.T) {
	d := untimed()
	// Service time is monotone in bytes and in seek distance, and always
	// at least overhead + half rotation.
	err := quick.Check(func(c1, c2 uint16, n1 uint16) bool {
		from := int(c1) % d.Geometry().Cylinders
		to := int(c2) % d.Geometry().Cylinders
		bytes1 := int(n1)%65536 + 1
		s1 := d.serviceTime(from, to, bytes1)
		s2 := d.serviceTime(from, to, bytes1+4096)
		if s2 < s1 {
			return false
		}
		min := d.timing.Overhead + d.timing.RotationPeriod/2
		return s1 >= min
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestQueuePeakTracksDepth(t *testing.T) {
	e := sim.NewEngine()
	d := New(Config{Engine: e})
	const n = 6
	for i := 0; i < n; i++ {
		e.Go("w", func(p *sim.Proc) {
			buf := make([]byte, d.Geometry().BlockSize)
			_ = d.ReadBlock(p, 0, buf)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := d.Stats().QueuePeak; got != n {
		t.Fatalf("QueuePeak = %d, want %d", got, n)
	}
}

func TestLatencyStats(t *testing.T) {
	e := sim.NewEngine()
	d := New(Config{Engine: e})
	for i := 0; i < 3; i++ {
		e.Go("w", func(p *sim.Proc) {
			buf := make([]byte, d.Geometry().BlockSize)
			_ = d.ReadBlock(p, 0, buf)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.LatencySum <= 0 || st.LatencyMax <= 0 {
		t.Fatalf("latency stats empty: %+v", st)
	}
	// Max latency (3rd request: waits for two services) must be about
	// 3x the min service; the sum of three queued latencies s+2s+3s = 6s.
	if st.LatencyMax >= st.LatencySum {
		t.Fatal("max latency not less than sum")
	}
}
