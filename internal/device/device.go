// Package device models direct-access storage devices (disks) of the kind
// the paper assumes: late-1980s Winchester drives with seek, rotational
// and transfer delays, accessed through a per-device request queue.
//
// A Disk stores data through a pluggable Backend — sparse in-memory
// pages by default, or a host file (FileBackend) for volumes larger than
// RAM — and, when attached to a sim.Engine, charges virtual time for
// every request using a parametric service-time model:
//
//	service = overhead + seek(|head - cylinder|) + rotational latency + bytes/rate
//
// Requests from concurrent processes queue at the device and are served
// one at a time under a configurable discipline (FCFS or SCAN), which is
// what makes the paper's seek-interference and bandwidth-aggregation
// effects emerge naturally. Without an engine the same calls complete
// immediately but still maintain all statistics, so the library is usable
// as an ordinary in-memory block store.
package device

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/probe"
	"repro/internal/sim"
)

// Errors reported by device operations.
var (
	// ErrFailed is returned for any access to a failed device.
	ErrFailed = errors.New("device: drive failed")
	// ErrOutOfRange is returned when a request exceeds the device capacity.
	ErrOutOfRange = errors.New("device: block out of range")
)

// Geometry fixes the data layout of a disk.
type Geometry struct {
	BlockSize    int // bytes per block
	BlocksPerCyl int // blocks per cylinder
	Cylinders    int
}

// Blocks reports the total number of blocks on the device.
func (g Geometry) Blocks() int64 {
	return int64(g.BlocksPerCyl) * int64(g.Cylinders)
}

// Capacity reports the device size in bytes.
func (g Geometry) Capacity() int64 {
	return g.Blocks() * int64(g.BlockSize)
}

// cylinderOf maps a block number to its cylinder.
func (g Geometry) cylinderOf(block int64) int {
	return int(block / int64(g.BlocksPerCyl))
}

// Timing fixes the service-time model of a disk.
type Timing struct {
	SeekMin        time.Duration // single-cylinder (minimum nonzero) seek
	SeekMax        time.Duration // full-stroke seek
	LinearSeek     bool          // if true seek grows linearly with distance; default √distance
	RotationPeriod time.Duration // one revolution; average latency is half
	TransferRate   float64       // bytes per second
	Overhead       time.Duration // fixed controller overhead per request
}

// DefaultGeometry1989 is a plausible 1989 Winchester drive layout:
// 4 KiB blocks, 64 blocks per cylinder, 900 cylinders (~225 MB).
func DefaultGeometry1989() Geometry {
	return Geometry{BlockSize: 4096, BlocksPerCyl: 64, Cylinders: 900}
}

// DefaultTiming1989 models the drives the paper cites (≈16 ms average
// seek, 3600 RPM, ~1.5 MB/s transfer).
func DefaultTiming1989() Timing {
	return Timing{
		SeekMin:        3 * time.Millisecond,
		SeekMax:        30 * time.Millisecond,
		RotationPeriod: 16667 * time.Microsecond, // 3600 RPM
		TransferRate:   1.5e6,
		Overhead:       500 * time.Microsecond,
	}
}

// Sched selects the request-scheduling discipline for a disk queue.
type Sched int

const (
	// FCFS serves requests in arrival order.
	FCFS Sched = iota
	// SCAN serves requests in elevator order (nearest in the current
	// head direction, reversing at the extremes).
	SCAN
)

// String implements fmt.Stringer.
func (s Sched) String() string {
	switch s {
	case FCFS:
		return "FCFS"
	case SCAN:
		return "SCAN"
	default:
		return fmt.Sprintf("Sched(%d)", int(s))
	}
}

// Stats accumulates per-device counters. All times are virtual when the
// disk is attached to an engine.
type Stats struct {
	Reads        int64
	Writes       int64
	BytesRead    int64
	BytesWritten int64
	Seeks        int64         // requests that moved the head
	SeekCyls     int64         // total cylinders traveled
	Merged       int64         // queued requests absorbed by back/front merging
	BusyTime     time.Duration // time the device spent servicing requests
	LatencySum   time.Duration // queue wait + service, summed over requests
	LatencyMax   time.Duration
	QueuePeak    int // deepest queue observed (including in-service request)
}

// Requests reports the total number of completed requests.
func (s Stats) Requests() int64 { return s.Reads + s.Writes }

// Bytes reports total bytes transferred.
func (s Stats) Bytes() int64 { return s.BytesRead + s.BytesWritten }

// reqOp classifies a request for queue merging: only whole-block
// requests of the same direction may merge.
type reqOp int

const (
	opOther reqOp = iota // byte-granular (ReadAt/WriteAt): never merged
	opRead
	opWrite
)

// request is a queued disk operation. A merged request carries several
// owning processes: procs[0] issued the request the others were absorbed
// into, performs the completion chaining, and is woken first; every
// member transfers its own data at the shared completion instant.
type request struct {
	procs   []*sim.Proc
	op      reqOp
	block   int64 // first block of the run (merge key)
	nblk    int64 // run length in blocks; 0 for byte-granular requests
	cyl     int
	bytes   int
	svcFrom time.Duration // service start, set at dispatch
	done    time.Duration // completion time, set at dispatch
}

// Disk is a simulated direct-access storage device. Disk methods are not
// safe for use from ordinary concurrent goroutines; under an engine,
// strict alternation makes them safe from any managed process, which is
// the intended use.
type Disk struct {
	name   string
	geom   Geometry
	timing Timing
	sched  Sched
	eng    *sim.Engine // nil: untimed

	backend Backend // page storage (in-memory by default)
	scratch []byte  // one-block scratch page for partial transfers
	head    int     // current cylinder
	scanUp  bool    // SCAN direction
	busy    bool
	merge   bool // merge physically adjacent queued requests
	queue   []*request
	failed  bool

	stats Stats

	// Flight-recorder hooks (nil/zero when detached).
	rec  *probe.Recorder
	trk  probe.TrackID // service timeline (serialized; one span per request)
	trkQ probe.TrackID // queue-wait timeline (async; waits overlap)
}

// Config carries the constructor parameters for a Disk.
type Config struct {
	Name     string
	Geometry Geometry
	Timing   Timing
	Sched    Sched
	Engine   *sim.Engine // nil for untimed operation
	// Backend optionally overrides the page store (e.g. a FileBackend);
	// nil selects the in-memory sparse store.
	Backend Backend
	// MergeQueued enables block-layer style back/front merging: a newly
	// queued whole-block request that is physically adjacent to a queued
	// request of the same direction is absorbed into it, and the merged
	// run is serviced as one request (one overhead + seek + rotation for
	// the combined transfer). Off by default — the paper's model services
	// every arrival individually — and counted in Stats.Merged when on.
	MergeQueued bool
}

// New creates a disk. Zero-valued geometry or timing fields are filled
// from the 1989 defaults.
func New(cfg Config) *Disk {
	if cfg.Geometry == (Geometry{}) {
		cfg.Geometry = DefaultGeometry1989()
	}
	if cfg.Timing == (Timing{}) {
		cfg.Timing = DefaultTiming1989()
	}
	if cfg.Name == "" {
		cfg.Name = "disk"
	}
	backend := cfg.Backend
	if backend == nil {
		backend = newMemBackend(cfg.Geometry.BlockSize)
	}
	return &Disk{
		name:    cfg.Name,
		geom:    cfg.Geometry,
		timing:  cfg.Timing,
		sched:   cfg.Sched,
		eng:     cfg.Engine,
		backend: backend,
		scratch: make([]byte, cfg.Geometry.BlockSize),
		scanUp:  true,
		merge:   cfg.MergeQueued,
	}
}

// SetProbe attaches a flight recorder: every serviced request records a
// service span on track "dev/<name>" (and, when it queued, a wait span
// on the async "dev/<name>/q" track), and the device counters appear as
// pull gauges in the recorder's metrics. Pass nil to detach. Recording
// reads the virtual clock only, so modeled times are unchanged.
func (d *Disk) SetProbe(r *probe.Recorder) {
	d.rec = r
	if r == nil {
		d.trk, d.trkQ = 0, 0
		return
	}
	d.trk = r.Track("dev/" + d.name)
	d.trkQ = r.AsyncTrack("dev/" + d.name + "/q")
	m := r.Metrics()
	m.Gauge("dev."+d.name+".requests", func() float64 { return float64(d.stats.Requests()) })
	m.Gauge("dev."+d.name+".bytes", func() float64 { return float64(d.stats.Bytes()) })
	m.Gauge("dev."+d.name+".busy_s", func() float64 { return d.stats.BusyTime.Seconds() })
	m.Gauge("dev."+d.name+".seeks", func() float64 { return float64(d.stats.Seeks) })
	m.Gauge("dev."+d.name+".merged", func() float64 { return float64(d.stats.Merged) })
}

// Close releases the page backend (required for file-backed disks).
func (d *Disk) Close() error { return d.backend.Close() }

// Name reports the device name.
func (d *Disk) Name() string { return d.name }

// Geometry reports the device geometry.
func (d *Disk) Geometry() Geometry { return d.geom }

// Timing reports the disk's service-time model — the parameters cost
// models (blockio.StoreCostModel) price device requests with.
func (d *Disk) Timing() Timing { return d.timing }

// Stats returns a snapshot of the device counters.
func (d *Disk) Stats() Stats { return d.stats }

// ResetStats zeroes the counters (the head position is kept).
func (d *Disk) ResetStats() { d.stats = Stats{} }

// Failed reports whether the device is in the failed state.
func (d *Disk) Failed() bool { return d.failed }

// Fail marks the device failed: queued and future requests return
// ErrFailed (after their modeled service completes, as a real timeout
// would).
func (d *Disk) Fail() { d.failed = true }

// Repair clears the failed state. The stored data is retained; restoring
// consistent contents is the caller's (reliability layer's) job.
func (d *Disk) Repair() { d.failed = false }

// Erase discards all stored data, as a replacement drive would arrive
// blank.
func (d *Disk) Erase() error { return d.backend.Erase() }

// Snapshot deep-copies the stored data — a point-in-time backup of this
// drive (used by the reliability experiments to demonstrate the §5
// rollback-consistency problem).
func (d *Disk) Snapshot() (map[int64][]byte, error) { return d.backend.Snapshot() }

// Restore replaces the stored data with a snapshot (rolling the drive
// back to that point in time).
func (d *Disk) Restore(snap map[int64][]byte) error { return d.backend.Restore(snap) }

// seekTime models head movement across dist cylinders.
func (d *Disk) seekTime(dist int) time.Duration {
	if dist <= 0 {
		return 0
	}
	maxDist := d.geom.Cylinders - 1
	if maxDist < 1 {
		maxDist = 1
	}
	span := d.timing.SeekMax - d.timing.SeekMin
	var frac float64
	if d.timing.LinearSeek {
		frac = float64(dist) / float64(maxDist)
	} else {
		frac = math.Sqrt(float64(dist) / float64(maxDist))
	}
	return d.timing.SeekMin + time.Duration(float64(span)*frac)
}

// serviceTime models one request: overhead + seek + rotation + transfer.
func (d *Disk) serviceTime(fromCyl, toCyl, bytes int) time.Duration {
	t := d.timing.Overhead
	if dist := toCyl - fromCyl; dist != 0 {
		if dist < 0 {
			dist = -dist
		}
		t += d.seekTime(dist)
	}
	t += d.timing.RotationPeriod / 2
	if d.timing.TransferRate > 0 {
		t += time.Duration(float64(bytes) / d.timing.TransferRate * float64(time.Second))
	}
	return t
}

// selectNext removes and returns the next request per the discipline.
func (d *Disk) selectNext() *request {
	best := 0
	switch d.sched {
	case SCAN:
		// Nearest request at or beyond the head in the travel
		// direction; if none, reverse.
		for pass := 0; pass < 2; pass++ {
			bestDist := math.MaxInt
			bestIdx := -1
			for i, r := range d.queue {
				var dist int
				if d.scanUp {
					dist = r.cyl - d.head
				} else {
					dist = d.head - r.cyl
				}
				if dist >= 0 && dist < bestDist {
					bestDist, bestIdx = dist, i
				}
			}
			if bestIdx >= 0 {
				best = bestIdx
				break
			}
			d.scanUp = !d.scanUp
		}
	default: // FCFS
		best = 0
	}
	r := d.queue[best]
	d.queue = append(d.queue[:best], d.queue[best+1:]...)
	return r
}

// startService moves the head to the request and charges its service
// time, recording the completion instant in r.done.
func (d *Disk) startService(r *request, now time.Duration) {
	svc := d.serviceTime(d.head, r.cyl, r.bytes)
	if r.cyl != d.head {
		d.stats.Seeks++
		dist := r.cyl - d.head
		if dist < 0 {
			dist = -dist
		}
		d.stats.SeekCyls += int64(dist)
	}
	d.head = r.cyl
	d.stats.BusyTime += svc
	r.svcFrom = now
	r.done = now + svc
}

// dispatch starts service of the next queued request at virtual time now,
// waking its (parked) owners at the completion instant — the issuing
// process first, then any merged members. Caller must have checked the
// queue is non-empty.
func (d *Disk) dispatch(now time.Duration) {
	r := d.selectNext()
	d.startService(r, now)
	for _, p := range r.procs {
		d.eng.WakeAt(p, r.done)
	}
}

// tryMerge absorbs a new whole-block request into a physically adjacent
// queued request of the same direction (block-layer back/front merging)
// and returns the merged request, or nil when nothing is adjacent. Only
// requests still waiting in the queue merge; the in-service request is
// already committed to its service time.
func (d *Disk) tryMerge(p *sim.Proc, op reqOp, block, nblk int64, bytes int) *request {
	for _, q := range d.queue {
		if q.op != op || q.nblk == 0 {
			continue
		}
		switch {
		case q.block+q.nblk == block: // back merge
		case block+nblk == q.block: // front merge
			q.block = block
			q.cyl = d.geom.cylinderOf(block)
		default:
			continue
		}
		q.nblk += nblk
		q.bytes += bytes
		q.procs = append(q.procs, p)
		d.stats.Merged++
		return q
	}
	return nil
}

// access performs the timing model around fn, which does the actual
// data transfer. block fixes the target cylinder, bytes the transfer
// size; nblk is the whole-block run length (0 for byte-granular
// requests), which is what queue merging keys on.
func (d *Disk) access(ctx sim.Context, op reqOp, block, nblk int64, bytes int, fn func() error) error {
	if block < 0 || block >= d.geom.Blocks() {
		return fmt.Errorf("%w: block %d of %d on %s", ErrOutOfRange, block, d.geom.Blocks(), d.name)
	}
	p, timed := ctx.(*sim.Proc)
	if !timed || d.eng == nil {
		if d.failed {
			return fmt.Errorf("%w: %s", ErrFailed, d.name)
		}
		cyl := d.geom.cylinderOf(block)
		if cyl != d.head {
			d.stats.Seeks++
			dist := cyl - d.head
			if dist < 0 {
				dist = -dist
			}
			d.stats.SeekCyls += int64(dist)
			d.head = cyl
		}
		return fn()
	}

	enq := p.Now()
	var r *request
	if d.busy {
		// Queue behind the in-service request; a completing process will
		// dispatch us and wake us at our completion time. With merging
		// enabled, an adjacent queued request may absorb us instead.
		if d.merge && nblk > 0 {
			r = d.tryMerge(p, op, block, nblk, bytes)
		}
		if r == nil {
			r = &request{procs: []*sim.Proc{p}, op: op, block: block, nblk: nblk,
				cyl: d.geom.cylinderOf(block), bytes: bytes}
			d.queue = append(d.queue, r)
		}
		if depth := len(d.queue) + 1; depth > d.stats.QueuePeak {
			d.stats.QueuePeak = depth
		}
		p.Park()
	} else {
		// Idle disk: serve ourselves immediately.
		r = &request{procs: []*sim.Proc{p}, op: op, block: block, nblk: nblk,
			cyl: d.geom.cylinderOf(block), bytes: bytes}
		d.busy = true
		if d.stats.QueuePeak < 1 {
			d.stats.QueuePeak = 1
		}
		d.startService(r, p.Now())
		p.SleepUntil(r.done)
	}

	lat := p.Now() - enq
	d.stats.LatencySum += lat
	if lat > d.stats.LatencyMax {
		d.stats.LatencyMax = lat
	}
	if d.rec != nil {
		// Each member records its own queue wait; the issuing process
		// records the single service span for the (possibly merged) run.
		if r.svcFrom > enq {
			d.rec.Span(d.trkQ, "device", "wait", enq, r.svcFrom, 0, 0)
		}
		if p == r.procs[0] {
			name := "io"
			switch r.op {
			case opRead:
				name = "read"
			case opWrite:
				name = "write"
			}
			d.rec.Span(d.trk, "device", name, r.svcFrom, r.done, int64(r.bytes), 0)
		}
	}

	var err error
	if d.failed {
		err = fmt.Errorf("%w: %s", ErrFailed, d.name)
	} else {
		err = fn()
	}
	// The issuing process chains the next request or idles the disk;
	// merged members woken at the same completion instant only transfer
	// their data.
	if p == r.procs[0] {
		if len(d.queue) > 0 {
			d.dispatch(p.Now())
		} else {
			d.busy = false
		}
	}
	return err
}

// ReadBlock reads one whole block into dst (len(dst) must equal the block
// size). Unwritten blocks read as zeros.
func (d *Disk) ReadBlock(ctx sim.Context, block int64, dst []byte) error {
	if len(dst) != d.geom.BlockSize {
		return fmt.Errorf("device: ReadBlock dst len %d != block size %d", len(dst), d.geom.BlockSize)
	}
	return d.access(ctx, opRead, block, 1, len(dst), func() error {
		found, err := d.backend.ReadPage(block, dst)
		if err != nil {
			return err
		}
		if !found {
			clear(dst)
		}
		d.stats.Reads++
		d.stats.BytesRead += int64(len(dst))
		return nil
	})
}

// WriteBlock writes one whole block from src (len(src) must equal the
// block size).
func (d *Disk) WriteBlock(ctx sim.Context, block int64, src []byte) error {
	if len(src) != d.geom.BlockSize {
		return fmt.Errorf("device: WriteBlock src len %d != block size %d", len(src), d.geom.BlockSize)
	}
	return d.access(ctx, opWrite, block, 1, len(src), func() error {
		if err := d.backend.WritePage(block, src); err != nil {
			return err
		}
		d.stats.Writes++
		d.stats.BytesWritten += int64(len(src))
		return nil
	})
}

// checkRun validates a whole-block run request.
func (d *Disk) checkRun(op string, block int64, n int, buf []byte) error {
	if n <= 0 {
		return fmt.Errorf("device: %s of %d blocks", op, n)
	}
	if block < 0 || block+int64(n) > d.geom.Blocks() {
		return fmt.Errorf("%w: blocks [%d,%d) of %d on %s", ErrOutOfRange, block, block+int64(n), d.geom.Blocks(), d.name)
	}
	if len(buf) != n*d.geom.BlockSize {
		return fmt.Errorf("device: %s buffer len %d != %d blocks of %d bytes", op, len(buf), n, d.geom.BlockSize)
	}
	return nil
}

// ReadBlocks reads the n contiguous blocks starting at block into dst
// (len(dst) must equal n × block size). The run is serviced as ONE queued
// request — one controller overhead, one seek to the first block's
// cylinder, one rotational latency, then n blocks at the streaming rate —
// and the statistics count it as a single read of n blocks. This is the
// extent I/O primitive: a sequential transfer of 1000 blocks issued
// through ReadBlocks pays 1 overhead instead of 1000.
func (d *Disk) ReadBlocks(ctx sim.Context, block int64, n int, dst []byte) error {
	if err := d.checkRun("ReadBlocks", block, n, dst); err != nil {
		return err
	}
	return d.access(ctx, opRead, block, int64(n), len(dst), func() error {
		bs := d.geom.BlockSize
		for i := 0; i < n; i++ {
			page := dst[i*bs : (i+1)*bs]
			found, err := d.backend.ReadPage(block+int64(i), page)
			if err != nil {
				return err
			}
			if !found {
				clear(page)
			}
		}
		d.stats.Reads++
		d.stats.BytesRead += int64(len(dst))
		return nil
	})
}

// WriteBlocks writes the n contiguous blocks starting at block from src
// (len(src) must equal n × block size) as ONE queued request, the write
// counterpart of ReadBlocks.
func (d *Disk) WriteBlocks(ctx sim.Context, block int64, n int, src []byte) error {
	if err := d.checkRun("WriteBlocks", block, n, src); err != nil {
		return err
	}
	return d.access(ctx, opWrite, block, int64(n), len(src), func() error {
		bs := d.geom.BlockSize
		for i := 0; i < n; i++ {
			if err := d.backend.WritePage(block+int64(i), src[i*bs:(i+1)*bs]); err != nil {
				return err
			}
		}
		d.stats.Writes++
		d.stats.BytesWritten += int64(len(src))
		return nil
	})
}

// checkRunVec validates a scatter/gather run request: every element of
// iov must be a non-empty whole number of blocks and the elements must
// total exactly n blocks.
func (d *Disk) checkRunVec(op string, block int64, n int, iov [][]byte) error {
	if n <= 0 {
		return fmt.Errorf("device: %s of %d blocks", op, n)
	}
	if block < 0 || block+int64(n) > d.geom.Blocks() {
		return fmt.Errorf("%w: blocks [%d,%d) of %d on %s", ErrOutOfRange, block, block+int64(n), d.geom.Blocks(), d.name)
	}
	bs := d.geom.BlockSize
	total := 0
	for i, v := range iov {
		if len(v) == 0 || len(v)%bs != 0 {
			return fmt.Errorf("device: %s segment %d is %d bytes, not a positive multiple of the %d-byte block", op, i, len(v), bs)
		}
		total += len(v)
	}
	if total != n*bs {
		return fmt.Errorf("device: %s segments total %d bytes != %d blocks of %d bytes", op, total, n, bs)
	}
	return nil
}

// ReadBlocksVec reads the n physically contiguous blocks starting at
// block as ONE queued request — the same service-time model as
// ReadBlocks — scattering consecutive blocks into the elements of dsts in
// order (readv semantics). Each element must hold a whole number of
// blocks; together they must hold exactly n. This is the gather-run
// primitive behind vectored I/O: a merged physical run can deliver into a
// strided caller buffer without paying one request per stride.
func (d *Disk) ReadBlocksVec(ctx sim.Context, block int64, n int, dsts [][]byte) error {
	if err := d.checkRunVec("ReadBlocksVec", block, n, dsts); err != nil {
		return err
	}
	return d.access(ctx, opRead, block, int64(n), n*d.geom.BlockSize, func() error {
		bs := d.geom.BlockSize
		b := block
		for _, dst := range dsts {
			for off := 0; off < len(dst); off += bs {
				page := dst[off : off+bs]
				found, err := d.backend.ReadPage(b, page)
				if err != nil {
					return err
				}
				if !found {
					clear(page)
				}
				b++
			}
		}
		d.stats.Reads++
		d.stats.BytesRead += int64(n) * int64(bs)
		return nil
	})
}

// WriteBlocksVec writes the n physically contiguous blocks starting at
// block as ONE queued request, gathering consecutive blocks from the
// elements of srcs in order (writev semantics) — the write counterpart
// of ReadBlocksVec.
func (d *Disk) WriteBlocksVec(ctx sim.Context, block int64, n int, srcs [][]byte) error {
	if err := d.checkRunVec("WriteBlocksVec", block, n, srcs); err != nil {
		return err
	}
	return d.access(ctx, opWrite, block, int64(n), n*d.geom.BlockSize, func() error {
		bs := d.geom.BlockSize
		b := block
		for _, src := range srcs {
			for off := 0; off < len(src); off += bs {
				if err := d.backend.WritePage(b, src[off:off+bs]); err != nil {
					return err
				}
				b++
			}
		}
		d.stats.Writes++
		d.stats.BytesWritten += int64(n) * int64(bs)
		return nil
	})
}

// ReadAt reads len(dst) bytes starting at byte offset off, possibly
// spanning blocks; it is modeled as a single request targeting the first
// block's cylinder (contiguous blocks transfer at the streaming rate).
func (d *Disk) ReadAt(ctx sim.Context, off int64, dst []byte) error {
	if off < 0 || off+int64(len(dst)) > d.geom.Capacity() {
		return fmt.Errorf("%w: [%d,%d) of %d bytes on %s", ErrOutOfRange, off, off+int64(len(dst)), d.geom.Capacity(), d.name)
	}
	first := off / int64(d.geom.BlockSize)
	return d.access(ctx, opOther, first, 0, len(dst), func() error {
		if err := d.copyOut(off, dst); err != nil {
			return err
		}
		d.stats.Reads++
		d.stats.BytesRead += int64(len(dst))
		return nil
	})
}

// WriteAt writes len(src) bytes starting at byte offset off, modeled as a
// single request like ReadAt.
func (d *Disk) WriteAt(ctx sim.Context, off int64, src []byte) error {
	if off < 0 || off+int64(len(src)) > d.geom.Capacity() {
		return fmt.Errorf("%w: [%d,%d) of %d bytes on %s", ErrOutOfRange, off, off+int64(len(src)), d.geom.Capacity(), d.name)
	}
	first := off / int64(d.geom.BlockSize)
	return d.access(ctx, opOther, first, 0, len(src), func() error {
		if err := d.copyIn(off, src); err != nil {
			return err
		}
		d.stats.Writes++
		d.stats.BytesWritten += int64(len(src))
		return nil
	})
}

// copyOut copies stored bytes [off, off+len(dst)) into dst.
func (d *Disk) copyOut(off int64, dst []byte) error {
	bs := int64(d.geom.BlockSize)
	for len(dst) > 0 {
		block := off / bs
		in := off % bs
		n := bs - in
		if n > int64(len(dst)) {
			n = int64(len(dst))
		}
		found, err := d.backend.ReadPage(block, d.scratch)
		if err != nil {
			return err
		}
		if found {
			copy(dst[:n], d.scratch[in:in+n])
		} else {
			clear(dst[:n])
		}
		dst = dst[n:]
		off += n
	}
	return nil
}

// copyIn copies src into stored bytes starting at off (read-modify-write
// for partial pages).
func (d *Disk) copyIn(off int64, src []byte) error {
	bs := int64(d.geom.BlockSize)
	for len(src) > 0 {
		block := off / bs
		in := off % bs
		n := bs - in
		if n > int64(len(src)) {
			n = int64(len(src))
		}
		if in == 0 && n == bs {
			if err := d.backend.WritePage(block, src[:n]); err != nil {
				return err
			}
		} else {
			found, err := d.backend.ReadPage(block, d.scratch)
			if err != nil {
				return err
			}
			if !found {
				clear(d.scratch)
			}
			copy(d.scratch[in:in+n], src[:n])
			if err := d.backend.WritePage(block, d.scratch); err != nil {
				return err
			}
		}
		src = src[n:]
		off += n
	}
	return nil
}
