package device

import (
	"bytes"
	"path/filepath"
	"testing"

	"repro/internal/sim"
)

// fileDisk builds a file-backed disk in a temp dir.
func fileDisk(t *testing.T) *Disk {
	t.Helper()
	geom := Geometry{BlockSize: 256, BlocksPerCyl: 8, Cylinders: 32}
	fb, err := NewFileBackend(filepath.Join(t.TempDir(), "disk.img"), geom.BlockSize)
	if err != nil {
		t.Fatal(err)
	}
	d := New(Config{Name: "filed", Geometry: geom, Backend: fb})
	t.Cleanup(func() { d.Close() })
	return d
}

func TestFileBackendRoundTrip(t *testing.T) {
	d := fileDisk(t)
	ctx := sim.NewWall()
	bs := d.Geometry().BlockSize
	src := bytes.Repeat([]byte{0x5e}, bs)
	if err := d.WriteBlock(ctx, 9, src); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, bs)
	if err := d.ReadBlock(ctx, 9, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(src, dst) {
		t.Fatal("file-backed round trip mismatch")
	}
	// Unwritten blocks still read as zeros.
	if err := d.ReadBlock(ctx, 10, dst); err != nil {
		t.Fatal(err)
	}
	for _, b := range dst {
		if b != 0 {
			t.Fatal("unwritten block nonzero")
		}
	}
}

func TestFileBackendPartialWrites(t *testing.T) {
	d := fileDisk(t)
	ctx := sim.NewWall()
	// Byte-granular writes straddling blocks exercise read-modify-write.
	payload := []byte("straddling the boundary")
	off := int64(d.Geometry().BlockSize) - 7
	if err := d.WriteAt(ctx, off, payload); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	if err := d.ReadAt(ctx, off, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(payload, got) {
		t.Fatalf("got %q", got)
	}
	// Overwrite part of it; the rest must survive.
	if err := d.WriteAt(ctx, off+4, []byte("DDL")); err != nil {
		t.Fatal(err)
	}
	if err := d.ReadAt(ctx, off, got); err != nil {
		t.Fatal(err)
	}
	if string(got[:4]) != "stra" || string(got[4:7]) != "DDL" {
		t.Fatalf("partial overwrite corrupted: %q", got)
	}
}

func TestFileBackendSnapshotRestoreErase(t *testing.T) {
	d := fileDisk(t)
	ctx := sim.NewWall()
	bs := d.Geometry().BlockSize
	if err := d.WriteBlock(ctx, 1, bytes.Repeat([]byte{0x11}, bs)); err != nil {
		t.Fatal(err)
	}
	snap, err := d.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) != 1 || snap[1][0] != 0x11 {
		t.Fatalf("snapshot = %v blocks", len(snap))
	}
	if err := d.WriteBlock(ctx, 1, bytes.Repeat([]byte{0x22}, bs)); err != nil {
		t.Fatal(err)
	}
	if err := d.Restore(snap); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, bs)
	if err := d.ReadBlock(ctx, 1, dst); err != nil {
		t.Fatal(err)
	}
	if dst[0] != 0x11 {
		t.Fatalf("restored block = %#x", dst[0])
	}
	if err := d.Erase(); err != nil {
		t.Fatal(err)
	}
	if err := d.ReadBlock(ctx, 1, dst); err != nil {
		t.Fatal(err)
	}
	if dst[0] != 0 {
		t.Fatal("erase left data")
	}
}

func TestFileBackendUnderEngine(t *testing.T) {
	// The timing model is orthogonal to the backend: a file-backed disk
	// under the engine charges identical virtual time to a memory one.
	runWith := func(backend Backend) (dur int64) {
		e := sim.NewEngine()
		geom := Geometry{BlockSize: 256, BlocksPerCyl: 8, Cylinders: 32}
		d := New(Config{Geometry: geom, Engine: e, Backend: backend})
		e.Go("w", func(p *sim.Proc) {
			buf := make([]byte, geom.BlockSize)
			for b := int64(0); b < 16; b++ {
				if err := d.WriteBlock(p, b, buf); err != nil {
					t.Error(err)
				}
			}
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return int64(e.Now())
	}
	fb, err := NewFileBackend(filepath.Join(t.TempDir(), "disk.img"), 256)
	if err != nil {
		t.Fatal(err)
	}
	defer fb.Close()
	if m, f := runWith(nil), runWith(fb); m != f {
		t.Fatalf("virtual time differs: mem %d vs file %d", m, f)
	}
}

func TestFileBackendBadPath(t *testing.T) {
	if _, err := NewFileBackend("/nonexistent/dir/disk.img", 256); err == nil {
		t.Fatal("bad path accepted")
	}
}

func TestMemBackendFound(t *testing.T) {
	m := newMemBackend(8)
	buf := make([]byte, 8)
	found, err := m.ReadPage(0, buf)
	if err != nil || found {
		t.Fatalf("empty backend: found=%v err=%v", found, err)
	}
	if err := m.WritePage(0, []byte{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
		t.Fatal(err)
	}
	found, err = m.ReadPage(0, buf)
	if err != nil || !found || buf[0] != 1 {
		t.Fatalf("after write: found=%v err=%v buf=%v", found, err, buf)
	}
}
