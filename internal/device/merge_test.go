package device

import (
	"bytes"
	"math"
	"testing"
	"time"

	"repro/internal/sim"
)

// mergeRun executes the canonical merge scenario — one process occupies
// the disk with an 8-block read while four others queue single-block
// requests on blocks 100..103 (in the given arrival order) — and
// returns the disk and total elapsed time. op selects reads or writes.
func mergeRun(t *testing.T, mergeOn bool, order []int64, write bool) (*Disk, time.Duration) {
	t.Helper()
	e := sim.NewEngine()
	d := New(Config{Engine: e, MergeQueued: mergeOn})
	bs := d.Geometry().BlockSize
	// Seed blocks 100..103 for the read case.
	ctx := sim.NewWall()
	for i := int64(0); i < 4; i++ {
		blk := make([]byte, bs)
		for j := range blk {
			blk[j] = byte(100 + i)
		}
		if err := d.WriteBlock(ctx, 100+i, blk); err != nil {
			t.Fatal(err)
		}
	}
	d.ResetStats()

	e.Go("busy", func(p *sim.Proc) {
		buf := make([]byte, 8*bs)
		if err := d.ReadBlocks(p, 0, 8, buf); err != nil {
			t.Error(err)
		}
	})
	for _, b := range order {
		b := b
		e.Go("rq", func(p *sim.Proc) {
			p.Sleep(time.Microsecond) // arrive after "busy" is in service
			buf := make([]byte, bs)
			if write {
				for j := range buf {
					buf[j] = byte(200 + b - 100)
				}
				if err := d.WriteBlock(p, b, buf); err != nil {
					t.Error(err)
				}
				return
			}
			if err := d.ReadBlock(p, b, buf); err != nil {
				t.Error(err)
				return
			}
			want := byte(100 + b - 100)
			for _, x := range buf {
				if x != want {
					t.Errorf("block %d read %d, want %d", b, x, want)
					return
				}
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return d, e.Now()
}

// TestMergeQueuedBack merges in-order adjacent arrivals into one request
// and services them faster than individually.
func TestMergeQueuedBack(t *testing.T) {
	asc := []int64{100, 101, 102, 103}
	dOff, elapsedOff := mergeRun(t, false, asc, false)
	if got := dOff.Stats().Merged; got != 0 {
		t.Fatalf("merging off: Merged = %d, want 0", got)
	}
	dOn, elapsedOn := mergeRun(t, true, asc, false)
	if got := dOn.Stats().Merged; got != 3 {
		t.Fatalf("Merged = %d, want 3", got)
	}
	if elapsedOn >= elapsedOff {
		t.Fatalf("merged run not faster: %v vs %v", elapsedOn, elapsedOff)
	}
	// The merged service pays the per-request costs once instead of 4×:
	// savings = 3 × (overhead + rotation/2), modulo the sub-ns truncation
	// difference between one 4-block transfer and four 1-block transfers.
	tm := DefaultTiming1989()
	bs := DefaultGeometry1989().BlockSize
	xfer := func(bytes int) time.Duration {
		return time.Duration(float64(bytes) / tm.TransferRate * float64(time.Second))
	}
	want := elapsedOff - 3*(tm.Overhead+tm.RotationPeriod/2) - 4*xfer(bs) + xfer(4*bs)
	if elapsedOn != want {
		t.Fatalf("merged elapsed = %v, want %v", elapsedOn, want)
	}
	if dOn.Stats().BusyTime >= dOff.Stats().BusyTime {
		t.Fatalf("merged busy time not smaller: %v vs %v", dOn.Stats().BusyTime, dOff.Stats().BusyTime)
	}
}

// TestMergeQueuedFront merges reverse-order arrivals (each new request
// physically precedes a queued one).
func TestMergeQueuedFront(t *testing.T) {
	desc := []int64{103, 102, 101, 100}
	d, _ := mergeRun(t, true, desc, false)
	if got := d.Stats().Merged; got != 3 {
		t.Fatalf("front merge: Merged = %d, want 3", got)
	}
}

// TestMergeQueuedWrites merges adjacent writes and lands every process's
// own data.
func TestMergeQueuedWrites(t *testing.T) {
	d, _ := mergeRun(t, true, []int64{100, 101, 102, 103}, true)
	if got := d.Stats().Merged; got != 3 {
		t.Fatalf("write merge: Merged = %d, want 3", got)
	}
	ctx := sim.NewWall()
	bs := d.Geometry().BlockSize
	buf := make([]byte, bs)
	for i := int64(0); i < 4; i++ {
		if err := d.ReadBlock(ctx, 100+i, buf); err != nil {
			t.Fatal(err)
		}
		want := bytes.Repeat([]byte{byte(200 + i)}, bs)
		if !bytes.Equal(buf, want) {
			t.Fatalf("block %d holds %d, want %d", 100+i, buf[0], want[0])
		}
	}
}

// TestMergeRespectsOpAndAdjacency: different directions and non-adjacent
// blocks never merge, and byte-granular requests are left alone.
func TestMergeRespectsOpAndAdjacency(t *testing.T) {
	e := sim.NewEngine()
	d := New(Config{Engine: e, MergeQueued: true})
	bs := d.Geometry().BlockSize
	e.Go("busy", func(p *sim.Proc) {
		buf := make([]byte, 8*bs)
		if err := d.ReadBlocks(p, 0, 8, buf); err != nil {
			t.Error(err)
		}
	})
	e.Go("read100", func(p *sim.Proc) {
		p.Sleep(time.Microsecond)
		if err := d.ReadBlock(p, 100, make([]byte, bs)); err != nil {
			t.Error(err)
		}
	})
	e.Go("write101", func(p *sim.Proc) { // adjacent but a write: no merge
		p.Sleep(time.Microsecond)
		if err := d.WriteBlock(p, 101, make([]byte, bs)); err != nil {
			t.Error(err)
		}
	})
	e.Go("read200", func(p *sim.Proc) { // same op but not adjacent
		p.Sleep(time.Microsecond)
		if err := d.ReadBlock(p, 200, make([]byte, bs)); err != nil {
			t.Error(err)
		}
	})
	e.Go("readAt102", func(p *sim.Proc) { // byte-granular: never merged
		p.Sleep(time.Microsecond)
		if err := d.ReadAt(p, int64(102)*int64(bs), make([]byte, bs)); err != nil {
			t.Error(err)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := d.Stats().Merged; got != 0 {
		t.Fatalf("Merged = %d, want 0", got)
	}
}

// TestMergeDefaultTimingUnchanged: with the knob off (the default), the
// queue scenario's timing is identical to the historical model — the
// sum of four individual service times behind the busy request.
func TestMergeDefaultTimingUnchanged(t *testing.T) {
	_, elapsed := mergeRun(t, false, []int64{100, 101, 102, 103}, false)
	tm := DefaultTiming1989()
	g := DefaultGeometry1989()
	bs := g.BlockSize
	xfer := func(bytes int) time.Duration {
		return time.Duration(float64(bytes) / tm.TransferRate * float64(time.Second))
	}
	// Seeding blocks 100..103 left the head at their cylinder, so the
	// busy 8-block read at block 0 seeks back first; then the first
	// queued request seeks to block 100's cylinder again, and the
	// remaining three are seek-free.
	seek := d1seek(tm, g, 0, 100/int64(g.BlocksPerCyl))
	svcBusy := tm.Overhead + seek + tm.RotationPeriod/2 + xfer(8*bs)
	svcFirst := tm.Overhead + seek + tm.RotationPeriod/2 + xfer(bs)
	svcRest := tm.Overhead + tm.RotationPeriod/2 + xfer(bs)
	want := svcBusy + svcFirst + 3*svcRest
	if elapsed != want {
		t.Fatalf("default-off elapsed = %v, want %v", elapsed, want)
	}
}

// d1seek recomputes the model's seek time for a cylinder distance (test
// mirror of Disk.seekTime).
func d1seek(tm Timing, g Geometry, from, to int64) time.Duration {
	dist := to - from
	if dist < 0 {
		dist = -dist
	}
	if dist == 0 {
		return 0
	}
	maxDist := g.Cylinders - 1
	span := tm.SeekMax - tm.SeekMin
	frac := float64(dist) / float64(maxDist)
	if !tm.LinearSeek {
		frac = math.Sqrt(frac)
	}
	return tm.SeekMin + time.Duration(float64(span)*frac)
}
