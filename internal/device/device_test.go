package device

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/sim"
)

// untimed returns a disk with no engine attached.
func untimed() *Disk {
	return New(Config{Name: "d0"})
}

func TestGeometryMath(t *testing.T) {
	g := Geometry{BlockSize: 512, BlocksPerCyl: 4, Cylinders: 10}
	if g.Blocks() != 40 {
		t.Fatalf("Blocks = %d, want 40", g.Blocks())
	}
	if g.Capacity() != 40*512 {
		t.Fatalf("Capacity = %d", g.Capacity())
	}
	if g.cylinderOf(0) != 0 || g.cylinderOf(3) != 0 || g.cylinderOf(4) != 1 || g.cylinderOf(39) != 9 {
		t.Fatal("cylinderOf mapping wrong")
	}
}

func TestReadWriteBlockRoundTrip(t *testing.T) {
	d := untimed()
	ctx := sim.NewWall()
	bs := d.Geometry().BlockSize
	src := make([]byte, bs)
	for i := range src {
		src[i] = byte(i * 7)
	}
	if err := d.WriteBlock(ctx, 5, src); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, bs)
	if err := d.ReadBlock(ctx, 5, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(src, dst) {
		t.Fatal("round trip mismatch")
	}
}

func TestUnwrittenBlocksReadZero(t *testing.T) {
	d := untimed()
	ctx := sim.NewWall()
	dst := make([]byte, d.Geometry().BlockSize)
	dst[0] = 0xff
	if err := d.ReadBlock(ctx, 17, dst); err != nil {
		t.Fatal(err)
	}
	for i, b := range dst {
		if b != 0 {
			t.Fatalf("byte %d = %#x, want 0", i, b)
		}
	}
}

func TestBlockSizeMismatchRejected(t *testing.T) {
	d := untimed()
	ctx := sim.NewWall()
	if err := d.ReadBlock(ctx, 0, make([]byte, 3)); err == nil {
		t.Fatal("short ReadBlock accepted")
	}
	if err := d.WriteBlock(ctx, 0, make([]byte, 3)); err == nil {
		t.Fatal("short WriteBlock accepted")
	}
}

func TestOutOfRange(t *testing.T) {
	d := untimed()
	ctx := sim.NewWall()
	buf := make([]byte, d.Geometry().BlockSize)
	if err := d.ReadBlock(ctx, d.Geometry().Blocks(), buf); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("want ErrOutOfRange, got %v", err)
	}
	if err := d.ReadBlock(ctx, -1, buf); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("negative block: want ErrOutOfRange, got %v", err)
	}
	if err := d.WriteAt(ctx, d.Geometry().Capacity()-1, []byte{1, 2}); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("WriteAt past end: want ErrOutOfRange, got %v", err)
	}
}

func TestReadWriteAtSpanningBlocks(t *testing.T) {
	d := untimed()
	ctx := sim.NewWall()
	bs := int64(d.Geometry().BlockSize)
	// Write across a block boundary.
	src := []byte("hello, parallel files")
	off := bs - 5
	if err := d.WriteAt(ctx, off, src); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, len(src))
	if err := d.ReadAt(ctx, off, dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(src, dst) {
		t.Fatalf("got %q want %q", dst, src)
	}
	// The partial first block must retain zeros before off.
	pre := make([]byte, 5)
	if err := d.ReadAt(ctx, off-5, pre); err != nil {
		t.Fatal(err)
	}
	for _, b := range pre {
		if b != 0 {
			t.Fatal("bytes before partial write corrupted")
		}
	}
}

func TestFailedDeviceErrors(t *testing.T) {
	d := untimed()
	ctx := sim.NewWall()
	buf := make([]byte, d.Geometry().BlockSize)
	d.Fail()
	if !d.Failed() {
		t.Fatal("Failed() false after Fail()")
	}
	if err := d.ReadBlock(ctx, 0, buf); !errors.Is(err, ErrFailed) {
		t.Fatalf("want ErrFailed, got %v", err)
	}
	d.Repair()
	if err := d.ReadBlock(ctx, 0, buf); err != nil {
		t.Fatalf("after Repair: %v", err)
	}
}

func TestEraseDiscardsData(t *testing.T) {
	d := untimed()
	ctx := sim.NewWall()
	bs := d.Geometry().BlockSize
	src := bytes.Repeat([]byte{0xab}, bs)
	if err := d.WriteBlock(ctx, 0, src); err != nil {
		t.Fatal(err)
	}
	if err := d.Erase(); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, bs)
	if err := d.ReadBlock(ctx, 0, dst); err != nil {
		t.Fatal(err)
	}
	for _, b := range dst {
		if b != 0 {
			t.Fatal("Erase left data behind")
		}
	}
}

func TestSeekTimeMonotonic(t *testing.T) {
	d := untimed()
	prev := time.Duration(0)
	for dist := 0; dist < d.Geometry().Cylinders; dist += 37 {
		s := d.seekTime(dist)
		if s < prev {
			t.Fatalf("seekTime(%d)=%v < seekTime(prev)=%v", dist, s, prev)
		}
		prev = s
	}
	if d.seekTime(0) != 0 {
		t.Fatal("zero-distance seek should be free")
	}
	if d.seekTime(1) < d.timing.SeekMin {
		t.Fatal("single-cylinder seek below SeekMin")
	}
	if got := d.seekTime(d.Geometry().Cylinders - 1); got != d.timing.SeekMax {
		t.Fatalf("full-stroke seek = %v, want SeekMax %v", got, d.timing.SeekMax)
	}
}

func TestLinearSeekOption(t *testing.T) {
	cfg := Config{Timing: DefaultTiming1989()}
	cfg.Timing.LinearSeek = true
	lin := New(cfg)
	sq := untimed()
	// At half stroke, sqrt curve must be above linear.
	half := (sq.Geometry().Cylinders - 1) / 2
	if !(sq.seekTime(half) > lin.seekTime(half)) {
		t.Fatalf("sqrt seek %v should exceed linear %v at half stroke", sq.seekTime(half), lin.seekTime(half))
	}
}

func TestVirtualTimeSingleRequest(t *testing.T) {
	e := sim.NewEngine()
	d := New(Config{Engine: e})
	var elapsed time.Duration
	e.Go("p", func(p *sim.Proc) {
		buf := make([]byte, d.Geometry().BlockSize)
		if err := d.ReadBlock(p, 0, buf); err != nil {
			t.Error(err)
		}
		elapsed = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Head starts at cylinder 0, block 0 is cylinder 0: no seek.
	want := d.timing.Overhead + d.timing.RotationPeriod/2 +
		time.Duration(float64(d.Geometry().BlockSize)/d.timing.TransferRate*float64(time.Second))
	if elapsed != want {
		t.Fatalf("single request took %v, want %v", elapsed, want)
	}
	if d.Stats().Seeks != 0 {
		t.Fatalf("seeks = %d, want 0", d.Stats().Seeks)
	}
}

func TestVirtualTimeQueueingSerializes(t *testing.T) {
	e := sim.NewEngine()
	d := New(Config{Engine: e})
	perReq := d.serviceTime(0, 0, d.Geometry().BlockSize)
	const workers = 4
	var latest time.Duration
	for i := 0; i < workers; i++ {
		e.Go("w", func(p *sim.Proc) {
			buf := make([]byte, d.Geometry().BlockSize)
			if err := d.ReadBlock(p, 0, buf); err != nil {
				t.Error(err)
			}
			if p.Now() > latest {
				latest = p.Now()
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if want := time.Duration(workers) * perReq; latest != want {
		t.Fatalf("4 same-cylinder requests finished at %v, want serialized %v", latest, want)
	}
	if d.Stats().QueuePeak != workers {
		t.Fatalf("queue peak %d, want %d", d.Stats().QueuePeak, workers)
	}
}

func TestVirtualTimeTwoDisksOverlap(t *testing.T) {
	e := sim.NewEngine()
	d0 := New(Config{Name: "d0", Engine: e})
	d1 := New(Config{Name: "d1", Engine: e})
	perReq := d0.serviceTime(0, 0, d0.Geometry().BlockSize)
	var end time.Duration
	for i, d := range []*Disk{d0, d1} {
		disk := d
		_ = i
		e.Go("w", func(p *sim.Proc) {
			buf := make([]byte, disk.Geometry().BlockSize)
			if err := disk.ReadBlock(p, 0, buf); err != nil {
				t.Error(err)
			}
			if p.Now() > end {
				end = p.Now()
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if end != perReq {
		t.Fatalf("two independent disks: end %v, want parallel %v", end, perReq)
	}
}

func TestSeekChargedBetweenCylinders(t *testing.T) {
	e := sim.NewEngine()
	d := New(Config{Engine: e})
	bpc := int64(d.Geometry().BlocksPerCyl)
	var t1, t2 time.Duration
	e.Go("p", func(p *sim.Proc) {
		buf := make([]byte, d.Geometry().BlockSize)
		if err := d.ReadBlock(p, 0, buf); err != nil {
			t.Error(err)
		}
		t1 = p.Now()
		if err := d.ReadBlock(p, 100*bpc, buf); err != nil { // cylinder 100
			t.Error(err)
		}
		t2 = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	noSeek := d.serviceTime(0, 0, d.Geometry().BlockSize)
	if t1 != noSeek {
		t.Fatalf("first request %v, want %v", t1, noSeek)
	}
	if t2-t1 <= noSeek {
		t.Fatalf("second request with 100-cyl seek took %v, want > %v", t2-t1, noSeek)
	}
	st := d.Stats()
	if st.Seeks != 1 || st.SeekCyls != 100 {
		t.Fatalf("seek stats = %+v", st)
	}
}

func TestSCANOrdersByPosition(t *testing.T) {
	// Issue requests at cylinders 800, 100, 400 while the disk is busy;
	// SCAN (head moving up from 0) should serve 100, 400, 800.
	runOrder := func(sched Sched) []int64 {
		e := sim.NewEngine()
		d := New(Config{Engine: e, Sched: sched})
		bpc := int64(d.Geometry().BlocksPerCyl)
		var order []int64
		// A first process occupies the disk at cylinder 0.
		e.Go("hold", func(p *sim.Proc) {
			buf := make([]byte, d.Geometry().BlockSize)
			if err := d.ReadBlock(p, 0, buf); err != nil {
				t.Error(err)
			}
		})
		for _, cyl := range []int64{800, 100, 400} {
			c := cyl
			e.Go("w", func(p *sim.Proc) {
				p.Sleep(time.Microsecond) // enqueue while disk busy
				buf := make([]byte, d.Geometry().BlockSize)
				if err := d.ReadBlock(p, c*bpc, buf); err != nil {
					t.Error(err)
				}
				order = append(order, c)
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return order
	}
	scan := runOrder(SCAN)
	want := []int64{100, 400, 800}
	for i := range want {
		if scan[i] != want[i] {
			t.Fatalf("SCAN order = %v, want %v", scan, want)
		}
	}
	fcfs := runOrder(FCFS)
	wantF := []int64{800, 100, 400}
	for i := range wantF {
		if fcfs[i] != wantF[i] {
			t.Fatalf("FCFS order = %v, want %v", fcfs, wantF)
		}
	}
}

func TestSCANReducesTotalSeekTravel(t *testing.T) {
	run := func(sched Sched) int64 {
		e := sim.NewEngine()
		d := New(Config{Engine: e, Sched: sched})
		bpc := int64(d.Geometry().BlocksPerCyl)
		e.Go("hold", func(p *sim.Proc) {
			buf := make([]byte, d.Geometry().BlockSize)
			_ = d.ReadBlock(p, 0, buf)
		})
		for _, cyl := range []int64{700, 50, 650, 100, 600, 150} {
			c := cyl
			e.Go("w", func(p *sim.Proc) {
				p.Sleep(time.Microsecond)
				buf := make([]byte, d.Geometry().BlockSize)
				_ = d.ReadBlock(p, c*bpc, buf)
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return d.Stats().SeekCyls
	}
	if scan, fcfs := run(SCAN), run(FCFS); scan >= fcfs {
		t.Fatalf("SCAN travel %d should be < FCFS travel %d", scan, fcfs)
	}
}

func TestFailDuringQueuedRequests(t *testing.T) {
	e := sim.NewEngine()
	d := New(Config{Engine: e})
	errs := 0
	// One service takes ~11.5 ms with default timing. The holder
	// finishes before the 12 ms failure; the victim (queued behind the
	// holder) completes after it and must observe the failure.
	e.Go("holder", func(p *sim.Proc) {
		buf := make([]byte, d.Geometry().BlockSize)
		if err := d.ReadBlock(p, 0, buf); err != nil {
			t.Errorf("holder should complete before failure: %v", err)
		}
	})
	e.Go("failer", func(p *sim.Proc) {
		p.Sleep(12 * time.Millisecond)
		d.Fail()
	})
	e.Go("victim", func(p *sim.Proc) {
		p.Sleep(time.Microsecond) // enqueue while holder is in service
		buf := make([]byte, d.Geometry().BlockSize)
		if err := d.ReadBlock(p, 0, buf); errors.Is(err, ErrFailed) {
			errs++
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if errs != 1 {
		t.Fatalf("victim should observe ErrFailed, errs=%d", errs)
	}
}

func TestStatsAccumulation(t *testing.T) {
	d := untimed()
	ctx := sim.NewWall()
	bs := d.Geometry().BlockSize
	buf := make([]byte, bs)
	for i := int64(0); i < 3; i++ {
		if err := d.WriteBlock(ctx, i, buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.ReadBlock(ctx, 0, buf); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.Writes != 3 || st.Reads != 1 {
		t.Fatalf("ops = %d writes %d reads", st.Writes, st.Reads)
	}
	if st.BytesWritten != int64(3*bs) || st.BytesRead != int64(bs) {
		t.Fatalf("bytes = %d written %d read", st.BytesWritten, st.BytesRead)
	}
	if st.Requests() != 4 || st.Bytes() != int64(4*bs) {
		t.Fatalf("totals wrong: %+v", st)
	}
	d.ResetStats()
	if d.Stats().Requests() != 0 {
		t.Fatal("ResetStats did not zero")
	}
}

func TestReadAtWriteAtQuick(t *testing.T) {
	d := untimed()
	ctx := sim.NewWall()
	capBytes := d.Geometry().Capacity()
	shadow := make(map[int64]byte)
	err := quick.Check(func(off16 uint16, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		if len(data) > 10000 {
			data = data[:10000]
		}
		off := int64(off16) * 7 % (capBytes - int64(len(data)))
		if off < 0 {
			off = 0
		}
		if err := d.WriteAt(ctx, off, data); err != nil {
			return false
		}
		for i, b := range data {
			shadow[off+int64(i)] = b
		}
		got := make([]byte, len(data))
		if err := d.ReadAt(ctx, off, got); err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
	// Spot-check a few shadowed bytes survive later writes elsewhere.
	for off, want := range shadow {
		got := make([]byte, 1)
		if err := d.ReadAt(ctx, off, got); err != nil {
			t.Fatal(err)
		}
		_ = want // overlapping writes make exact comparison invalid; just exercising reads
		break
	}
}

func TestSchedString(t *testing.T) {
	if FCFS.String() != "FCFS" || SCAN.String() != "SCAN" {
		t.Fatal("Sched String broken")
	}
	if Sched(9).String() == "" {
		t.Fatal("unknown sched empty")
	}
}
