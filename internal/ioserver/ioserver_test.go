package ioserver

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/blockio"
	"repro/internal/device"
	"repro/internal/sim"
)

// fixture builds an engine-timed 2-device store with one striped set of
// `blocks` blocks (64-byte blocks, paper-default timing).
func fixture(t *testing.T, e *sim.Engine, blocks int64) *blockio.Set {
	t.Helper()
	const devs = 2
	disks := make([]*device.Disk, devs)
	for i := range disks {
		disks[i] = device.New(device.Config{
			Name:     fmt.Sprintf("d%d", i),
			Geometry: device.Geometry{BlockSize: 64, BlocksPerCyl: 8, Cylinders: 64},
			Engine:   e,
		})
	}
	store, err := blockio.NewDirect(disks)
	if err != nil {
		t.Fatal(err)
	}
	set, err := blockio.NewSet(store, blockio.NewStriped(devs, 1), make([]int64, devs))
	if err != nil {
		t.Fatal(err)
	}
	return set
}

// batchFor builds a write or read batch over blocks [first, first+n).
func batchFor(set *blockio.Set, first, n int64, buf []byte) blockio.BatchVec {
	return blockio.BatchVec{{Set: set, Vec: blockio.Vec{{Block: first, N: n}}, Buf: buf}}
}

func run(t *testing.T, e *sim.Engine) {
	t.Helper()
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestServerRoundTrip: a write submitted through the server lands on
// the devices (a later read sees it), tickets complete, and the job's
// accounting adds up.
func TestServerRoundTrip(t *testing.T) {
	e := sim.NewEngine()
	set := fixture(t, e, 8)
	s := New(Config{Workers: 1})
	job := s.AddJob(JobConfig{Name: "j0"})
	s.Start(e)

	bs := int64(set.BlockSize())
	out := make([]byte, 4*bs)
	for i := range out {
		out[i] = byte(i)
	}
	in := make([]byte, 4*bs)
	e.Go("client", func(p *sim.Proc) {
		w := job.SubmitWrite(p, batchFor(set, 0, 4, out), 4*bs)
		if w.Done() {
			t.Error("write done before any virtual time passed")
		}
		if err := w.Wait(p); err != nil {
			t.Error(err)
		}
		if !w.Done() || w.Err() != nil {
			t.Error("ticket not completed after Wait")
		}
		r := job.SubmitRead(p, batchFor(set, 0, 4, in), 4*bs)
		if err := r.Wait(p); err != nil {
			t.Error(err)
		}
		s.Stop(p)
	})
	run(t, e)
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("byte %d: got %d want %d", i, in[i], out[i])
		}
	}
	st := job.Stats()
	if st.Submitted != 2 || st.Completed != 2 || st.Bytes != 8*bs {
		t.Fatalf("stats = %+v", st)
	}
	if st.P99 <= 0 || st.Busy <= 0 {
		t.Fatalf("latency/busy not recorded: %+v", st)
	}
}

// submitN has a client proc submit n equal-size writes back-to-back
// with the given inter-arrival gap, recording completion order into
// order via the shared log.
func submitN(e *sim.Engine, job *Job, set *blockio.Set, first, blocks int64, n int, gap time.Duration, log *[]string) *sim.Group {
	var g sim.Group
	bs := int64(set.BlockSize())
	g.Spawn(e, "client-"+job.Name(), func(p *sim.Proc) {
		tickets := make([]*Request, 0, n)
		for i := 0; i < n; i++ {
			if gap > 0 && i > 0 {
				p.Sleep(gap)
			}
			buf := make([]byte, blocks*bs)
			tickets = append(tickets, job.SubmitWrite(p, batchFor(set, first, blocks, buf), blocks*bs))
		}
		for i, tk := range tickets {
			if err := tk.Wait(p); err != nil {
				panic(err)
			}
			*log = append(*log, fmt.Sprintf("%s-%d", job.Name(), i))
		}
	})
	return &g
}

// contendedMix runs a bully (8 large writes, no gap) against a victim
// (4 small writes, no gap, arriving just after) under the given policy
// and reports (bully, victim) stats.
func contendedMix(t *testing.T, pol Policy, victimPrio int) (JobStats, JobStats) {
	t.Helper()
	e := sim.NewEngine()
	set := fixture(t, e, 64)
	s := New(Config{Workers: 1, Policy: pol})
	bully := s.AddJob(JobConfig{Name: "bully"})
	victim := s.AddJob(JobConfig{Name: "victim", Priority: victimPrio})
	s.Start(e)
	var log []string
	g1 := submitN(e, bully, set, 0, 16, 8, 0, &log)
	g2 := submitN(e, victim, set, 32, 1, 4, 0, &log)
	e.Go("driver", func(p *sim.Proc) {
		g1.Wait(p)
		g2.Wait(p)
		s.Stop(p)
	})
	run(t, e)
	return bully.Stats(), victim.Stats()
}

// TestFairShareBoundsVictimLatency: under FIFO the victim's small
// requests queue behind the bully's backlog; fair-share interleaves by
// served bytes, so the victim's p99 must drop.
func TestFairShareBoundsVictimLatency(t *testing.T) {
	_, vFIFO := contendedMix(t, FIFO, 0)
	_, vFair := contendedMix(t, FairShare, 0)
	if vFair.P99 >= vFIFO.P99 {
		t.Fatalf("fair-share p99 %v not below FIFO p99 %v", vFair.P99, vFIFO.P99)
	}
}

// TestPriorityOvertakesBacklog: a strict-priority victim overtakes the
// bully's queued requests at every dispatch.
func TestPriorityOvertakesBacklog(t *testing.T) {
	_, vFIFO := contendedMix(t, FIFO, 0)
	_, vPrio := contendedMix(t, Priority, 1)
	if vPrio.P99*2 > vFIFO.P99 {
		t.Fatalf("priority p99 %v not 2x below FIFO p99 %v", vPrio.P99, vFIFO.P99)
	}
}

// TestBandwidthCapPaces: a capped job's dispatches are paced at the
// cap rate even with a deep backlog, leaving the device mostly idle
// for others. The capped run must take at least bytes/rate of virtual
// time; the uncapped run finishes far sooner.
func TestBandwidthCapPaces(t *testing.T) {
	elapsed := func(rate float64) time.Duration {
		e := sim.NewEngine()
		set := fixture(t, e, 64)
		s := New(Config{Workers: 1})
		job := s.AddJob(JobConfig{Name: "capped", BytesPerSec: rate})
		s.Start(e)
		var done time.Duration
		bs := int64(set.BlockSize())
		e.Go("client", func(p *sim.Proc) {
			var last *Request
			for i := int64(0); i < 8; i++ {
				buf := make([]byte, 2*bs)
				last = job.SubmitWrite(p, batchFor(set, i*2, 2, buf), 2*bs)
			}
			if err := last.Wait(p); err != nil {
				t.Error(err)
			}
			done = p.Now()
			s.Stop(p)
		})
		run(t, e)
		return done
	}
	uncapped := elapsed(0)
	rate := 512.0 // bytes/sec of virtual time: 128-byte requests pace 250 ms apart
	capped := elapsed(rate)
	// 8 requests of 128 bytes: the first dispatches immediately, each
	// later one no earlier than its predecessor's bucket expiry, so the
	// run takes at least 7 × 128/rate of virtual time.
	minPaced := time.Duration(float64(7*2*64) / rate * float64(time.Second))
	if capped < minPaced {
		t.Fatalf("capped run %v faster than the cap allows (%v)", capped, minPaced)
	}
	if capped <= uncapped*2 {
		t.Fatalf("cap had no effect: capped %v vs uncapped %v", capped, uncapped)
	}
}

// TestQueueDepthBackpressure: QueueDepth 1 parks the submitter until
// the server drains its queue — admission control, not an error.
func TestQueueDepthBackpressure(t *testing.T) {
	e := sim.NewEngine()
	set := fixture(t, e, 16)
	s := New(Config{Workers: 1})
	job := s.AddJob(JobConfig{Name: "j", QueueDepth: 1})
	s.Start(e)
	bs := int64(set.BlockSize())
	var submitTimes []time.Duration
	e.Go("client", func(p *sim.Proc) {
		var last *Request
		for i := int64(0); i < 3; i++ {
			buf := make([]byte, bs)
			last = job.SubmitWrite(p, batchFor(set, i, 1, buf), bs)
			submitTimes = append(submitTimes, p.Now())
		}
		if err := last.Wait(p); err != nil {
			t.Error(err)
		}
		s.Stop(p)
	})
	run(t, e)
	// The first two submissions are immediate (one in service, one
	// queued); the third must have parked until the first completed.
	if submitTimes[1] != submitTimes[0] {
		t.Fatalf("second submit parked: %v vs %v", submitTimes[1], submitTimes[0])
	}
	if submitTimes[2] <= submitTimes[1] {
		t.Fatalf("third submit did not park: %v", submitTimes)
	}
}

// TestMultiWorkerDrainsAndJoins: several workers, several jobs, Stop
// joins everything with all requests completed.
func TestMultiWorkerDrainsAndJoins(t *testing.T) {
	e := sim.NewEngine()
	set := fixture(t, e, 64)
	s := New(Config{Workers: 3, Policy: FairShare})
	var jobs []*Job
	for i := 0; i < 4; i++ {
		jobs = append(jobs, s.AddJob(JobConfig{Name: fmt.Sprintf("j%d", i)}))
	}
	s.Start(e)
	var log []string
	var groups []*sim.Group
	for i, j := range jobs {
		groups = append(groups, submitN(e, j, set, int64(i*16), 2, 5, time.Millisecond, &log))
	}
	e.Go("driver", func(p *sim.Proc) {
		for _, g := range groups {
			g.Wait(p)
		}
		s.Stop(p)
	})
	run(t, e)
	if len(log) != 20 {
		t.Fatalf("completions logged = %d", len(log))
	}
	for _, j := range jobs {
		st := j.Stats()
		if st.Submitted != 5 || st.Completed != 5 {
			t.Fatalf("job %s: %+v", st.Name, st)
		}
	}
}

// TestServerDeterminism: the same contended mix twice gives
// bit-identical stats snapshots (modeled times included).
func TestServerDeterminism(t *testing.T) {
	for _, pol := range []Policy{FIFO, FairShare, Priority} {
		b1, v1 := contendedMix(t, pol, 1)
		b2, v2 := contendedMix(t, pol, 1)
		if b1 != b2 || v1 != v2 {
			t.Fatalf("policy %v: stats differ across identical runs:\n%+v\n%+v\n%+v\n%+v", pol, b1, b2, v1, v2)
		}
	}
}

// TestSubmitBeforeStartPanics documents the protocol error.
func TestSubmitBeforeStartPanics(t *testing.T) {
	e := sim.NewEngine()
	set := fixture(t, e, 8)
	s := New(Config{})
	job := s.AddJob(JobConfig{Name: "early"})
	e.Go("client", func(p *sim.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("Submit before Start did not panic")
			}
		}()
		job.SubmitWrite(p, batchFor(set, 0, 1, make([]byte, set.BlockSize())), int64(set.BlockSize()))
	})
	run(t, e)
}

// TestSubmitWakesCapSleeper: when every backlogged job is at its
// bandwidth cap the single worker sleeps until the earliest bucket
// expiry; an uncapped request submitted mid-sleep must be served
// immediately rather than waiting out that expiry (the ROADMAP
// carry-over the submit-side wake closes). The capped job's own pacing
// must be unchanged by the early wake.
func TestSubmitWakesCapSleeper(t *testing.T) {
	e := sim.NewEngine()
	set := fixture(t, e, 16)
	s := New(Config{Workers: 1})
	bs := int64(set.BlockSize())
	// 1 block per second of virtual time: after the first dispatch the
	// capped job's bucket blocks it until t = 1s.
	capped := s.AddJob(JobConfig{Name: "capped", BytesPerSec: float64(bs)})
	free := s.AddJob(JobConfig{Name: "free"})
	s.Start(e)

	const arrival = 100 * time.Millisecond
	expiry := time.Duration(float64(bs) / float64(bs) * float64(time.Second)) // 1s
	var freeDone, cappedDone time.Duration
	var g sim.Group
	g.Spawn(e, "capped-client", func(p *sim.Proc) {
		buf := make([]byte, bs)
		t1 := capped.SubmitWrite(p, batchFor(set, 0, 1, buf), bs)
		t2 := capped.SubmitWrite(p, batchFor(set, 1, 1, buf), bs)
		if err := t1.Wait(p); err != nil {
			t.Error(err)
		}
		if err := t2.Wait(p); err != nil {
			t.Error(err)
		}
		cappedDone = p.Now()
	})
	g.Spawn(e, "free-client", func(p *sim.Proc) {
		p.Sleep(arrival) // well inside the worker's cap sleep [~0, 1s)
		buf := make([]byte, bs)
		tk := free.SubmitRead(p, batchFor(set, 2, 1, buf), bs)
		if err := tk.Wait(p); err != nil {
			t.Error(err)
		}
		freeDone = p.Now()
	})
	e.Go("driver", func(p *sim.Proc) {
		g.Wait(p)
		s.Stop(p)
	})
	run(t, e)

	// The uncapped request arrived at 100ms; served on arrival it
	// completes after one device access (milliseconds), far inside the
	// 1s bucket expiry it used to wait for.
	if freeDone >= expiry {
		t.Fatalf("uncapped request finished at %v: still waiting out the cap expiry %v", freeDone, expiry)
	}
	if freeDone < arrival {
		t.Fatalf("uncapped request finished at %v, before its own arrival %v", freeDone, arrival)
	}
	// The capped job's second dispatch still respects its bucket.
	if cappedDone < expiry {
		t.Fatalf("capped job finished at %v, faster than its cap allows (%v)", cappedDone, expiry)
	}
}
