// Package ioserver promotes I/O from a library call to a service: a
// Server owns the shared device array and runs dedicated I/O-server
// processes (sim procs — the ViPIOS "I/O server" shape from the
// related-work survey) that drain per-job request queues and execute
// blockio batches on the clients' behalf. Clients — the collective
// layer's nonblocking IWriteAll/IReadAll entry points, or any direct
// submitter — enqueue Requests and go back to computing; a Request is a
// ticket with Done/Wait semantics.
//
// Multiplexing many concurrent jobs over one device array is the whole
// point, so the dequeue order is a pluggable QoS policy:
//
//   - FIFO: global arrival order — the baseline, and the policy that
//     lets one bulk job bury everyone else's latency.
//   - FairShare: start-time fair queueing over service bytes — each
//     job accrues virtual time at bytes/weight per byte served, and the
//     backlogged job with the least virtual time goes next, so a
//     request-heavy job cannot starve light ones.
//   - Priority: strict priority (higher JobConfig.Priority first),
//     FIFO within a level — latency-critical jobs overtake bulk
//     traffic at every dispatch.
//
// Orthogonally, JobConfig.BytesPerSec imposes a per-job bandwidth cap
// (a leaky bucket over virtual time): a job at its cap is ineligible
// until its bucket drains, whatever the policy. If every backlogged job
// is capped the worker sleeps until the earliest becomes eligible, and
// a Submit arriving mid-sleep wakes it immediately, so an uncapped
// request never waits out another job's bucket.
//
// Every request records its enqueue→completion latency in the job's
// stats.Sample, so per-job p50/p95/p99 come out exact and
// deterministic; JobStats snapshots are comparable structs, which is
// what TestMultijobDeterminism compares across runs.
//
// Everything relies on the engine's strict alternation (one managed
// process runs at a time), like the rest of the sim stack: no locks,
// and modeled times are bit-for-bit reproducible for a fixed job mix.
package ioserver

import (
	"fmt"
	"time"

	"repro/internal/blockio"
	"repro/internal/probe"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Policy selects the scheduler's dequeue discipline.
type Policy int

const (
	// FIFO serves requests in global arrival order.
	FIFO Policy = iota
	// FairShare serves the backlogged job with the least virtual
	// service time (bytes served / weight), arrival order within a job.
	FairShare
	// Priority serves the highest-priority backlogged job first
	// (JobConfig.Priority, larger wins), FIFO within a level.
	Priority
)

// String names the policy for tables and logs.
func (p Policy) String() string {
	switch p {
	case FIFO:
		return "fifo"
	case FairShare:
		return "fair"
	case Priority:
		return "prio"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// Config sizes a Server.
type Config struct {
	// Workers is the number of dedicated I/O-server processes (≥1;
	// default 1). Each worker executes one request at a time, so
	// Workers bounds the server's request concurrency the way
	// aggregator count bounds a collective's.
	Workers int
	// Policy is the dequeue discipline (default FIFO).
	Policy Policy
}

// JobConfig declares one client job to the scheduler.
type JobConfig struct {
	Name string
	// Priority orders jobs under the Priority policy (larger = served
	// first). Ignored by other policies.
	Priority int
	// Weight scales the job's fair share (default 1): a weight-2 job
	// accrues virtual time half as fast, so it receives twice the
	// service of a weight-1 job under contention. Ignored by other
	// policies.
	Weight float64
	// BytesPerSec caps the job's dispatch rate in payload bytes per
	// second of virtual time; 0 means uncapped. Applies under every
	// policy.
	BytesPerSec float64
	// QueueDepth bounds the job's pending-request queue; Submit parks
	// once the queue is full (admission control back-pressure). 0
	// means effectively unbounded.
	QueueDepth int
}

// JobStats is a point-in-time accounting snapshot for one job. It is a
// comparable struct: two runs of the same job mix must produce equal
// snapshots (TestMultijobDeterminism).
type JobStats struct {
	Name                 string
	Submitted, Completed int64
	Bytes                int64 // payload bytes served
	Busy                 time.Duration
	P50, P95, P99, Max   time.Duration // enqueue→completion latency
}

// Job is one client's lane into the server: a FIFO request queue plus
// the scheduling state (fair-share virtual time, bandwidth bucket) and
// accounting the policies read.
type Job struct {
	s   *Server
	cfg JobConfig
	q   *sim.Queue // *Request, FIFO within the job

	vtime   float64       // fair-share virtual service time (weighted bytes)
	capFree time.Duration // bandwidth bucket: eligible when now ≥ capFree

	submitted int64
	completed int64
	bytes     int64
	busy      time.Duration
	lat       stats.Sample // seconds, one observation per request

	trk probe.TrackID // flight-recorder lane track (0: detached)
}

// Name reports the job's configured name.
func (j *Job) Name() string { return j.cfg.Name }

// Stats snapshots the job's accounting.
func (j *Job) Stats() JobStats {
	return JobStats{
		Name:      j.cfg.Name,
		Submitted: j.submitted,
		Completed: j.completed,
		Bytes:     j.bytes,
		Busy:      j.busy,
		P50:       j.lat.QuantileDur(0.50),
		P95:       j.lat.QuantileDur(0.95),
		P99:       j.lat.QuantileDur(0.99),
		Max:       j.lat.QuantileDur(1),
	}
}

// Latency exposes the job's raw latency sample (seconds) for quantiles
// the snapshot does not pre-compute.
func (j *Job) Latency() *stats.Sample { return &j.lat }

// Request is the ticket for one submitted batch: Done reports local
// completion without parking (the MPI_Test shape), Wait parks until the
// server finishes and returns the access error.
type Request struct {
	job   *Job
	write bool
	batch blockio.BatchVec
	// Prepared-plan form (SubmitWritePlan/SubmitReadPlan): window 0 of
	// plan is issued against pbuf instead of executing batch. Lets a
	// client reuse one validated, merged plan across many submissions
	// (the collective layer's schedule replay).
	plan  *blockio.BatchPlan
	pbuf  []byte
	bytes int64
	seq   int64 // global arrival order
	enq   time.Duration

	done bool
	err  error
	wq   sim.WaitQueue
}

// Done reports whether the server has completed the request.
func (r *Request) Done() bool { return r.done }

// Err returns the access error once Done; nil before completion.
func (r *Request) Err() error { return r.err }

// Wait parks the caller until the server completes the request and
// returns the access error.
func (r *Request) Wait(p *sim.Proc) error {
	for !r.done {
		r.wq.Wait(p)
	}
	return r.err
}

// Server owns the device array on behalf of its jobs: a fixed pool of
// worker processes executing requests in policy order. Build with New,
// declare jobs with AddJob, Start under an engine, and Stop before the
// engine drains (parked idle workers would otherwise be reported as a
// deadlock — the server is a service, and services are shut down).
type Server struct {
	cfg  Config
	jobs []*Job

	started bool
	closed  bool
	seq     int64
	vnow    float64       // fair-share virtual clock (last dispatch's tag)
	idle    sim.WaitQueue // parked workers waiting for work
	g       sim.Group
	// capSleep lists workers sleeping out an all-jobs-capped interval;
	// submit wakes them early so a newly eligible request is served
	// immediately rather than at the next bucket expiry.
	capSleep []*sim.Proc

	rec *probe.Recorder // flight recorder (nil: detached)
}

// New builds a server; declare jobs with AddJob before submitting.
func New(cfg Config) *Server {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	return &Server{cfg: cfg}
}

// Policy reports the configured dequeue discipline.
func (s *Server) Policy() Policy { return s.cfg.Policy }

// Jobs returns the declared jobs in AddJob order.
func (s *Server) Jobs() []*Job { return s.jobs }

// AddJob declares a client job. Jobs may be added any time before
// their first Submit.
func (s *Server) AddJob(cfg JobConfig) *Job {
	if cfg.Weight <= 0 {
		cfg.Weight = 1
	}
	depth := cfg.QueueDepth
	if depth <= 0 {
		depth = 1 << 30 // effectively unbounded
	}
	j := &Job{s: s, cfg: cfg, q: sim.NewQueue(depth)}
	if s.rec != nil {
		j.attachProbe(s.rec)
	}
	s.jobs = append(s.jobs, j)
	return j
}

// SetProbe attaches a flight recorder to the server: one async lane
// track per job ("lane/<name>") carrying an admission instant and
// request/wait/service spans per request, with each job's latency
// sample adopted into the metrics registry. Pass nil to detach. Jobs
// declared after SetProbe are instrumented as they are added.
func (s *Server) SetProbe(r *probe.Recorder) {
	s.rec = r
	for _, j := range s.jobs {
		j.attachProbe(r)
	}
}

func (j *Job) attachProbe(r *probe.Recorder) {
	if r == nil {
		j.trk = 0
		return
	}
	j.trk = r.AsyncTrack("lane/" + j.cfg.Name)
	m := r.Metrics()
	m.ObserveSample("ioserver."+j.cfg.Name+".lat_s", &j.lat)
	m.Gauge("ioserver."+j.cfg.Name+".completed", func() float64 { return float64(j.completed) })
	m.Gauge("ioserver."+j.cfg.Name+".bytes", func() float64 { return float64(j.bytes) })
}

// Start launches the worker processes on the engine. Call once, before
// the first Submit.
func (s *Server) Start(e *sim.Engine) {
	if s.started {
		panic("ioserver: Start called twice")
	}
	s.started = true
	for i := 0; i < s.cfg.Workers; i++ {
		s.g.Spawn(e, "io-server", s.worker)
	}
}

// Stop drains every queued request, retires the workers and joins
// them. Collective: submitting concurrently with Stop panics (Put on
// the closed lane), like writing on a closed channel.
func (s *Server) Stop(p *sim.Proc) {
	if s.closed {
		return
	}
	s.closed = true
	for _, j := range s.jobs {
		j.q.Close(p)
	}
	s.idle.WakeAll(p.Engine())
	s.g.Wait(p)
}

// SubmitWrite enqueues a write of the batch (bytes is the payload size
// the accounting and QoS policies charge) and returns its ticket.
func (j *Job) SubmitWrite(p *sim.Proc, batch blockio.BatchVec, bytes int64) *Request {
	return j.submit(p, true, batch, nil, nil, bytes)
}

// SubmitRead enqueues a read of the batch and returns its ticket.
func (j *Job) SubmitRead(p *sim.Proc, batch blockio.BatchVec, bytes int64) *Request {
	return j.submit(p, false, batch, nil, nil, bytes)
}

// SubmitWritePlan enqueues a write issued through a prepared
// blockio.BatchPlan: the worker issues window 0 of the plan bound to
// buf. Service semantics (queueing, QoS, accounting, modeled time) are
// identical to SubmitWrite of the equivalent batch — the prepared form
// exists so a client can validate and merge once, then submit every
// iteration with only the buffer rebound (the collective layer's
// schedule replay).
func (j *Job) SubmitWritePlan(p *sim.Proc, plan *blockio.BatchPlan, buf []byte, bytes int64) *Request {
	return j.submit(p, true, nil, plan, buf, bytes)
}

// SubmitReadPlan enqueues a read through a prepared plan — the read
// counterpart of SubmitWritePlan.
func (j *Job) SubmitReadPlan(p *sim.Proc, plan *blockio.BatchPlan, buf []byte, bytes int64) *Request {
	return j.submit(p, false, nil, plan, buf, bytes)
}

func (j *Job) submit(p *sim.Proc, write bool, batch blockio.BatchVec, plan *blockio.BatchPlan, pbuf []byte, bytes int64) *Request {
	s := j.s
	if !s.started {
		panic("ioserver: Submit before Start")
	}
	s.seq++
	r := &Request{
		job:   j,
		write: write,
		batch: batch,
		plan:  plan,
		pbuf:  pbuf,
		bytes: bytes,
		seq:   s.seq,
		enq:   p.Now(),
	}
	j.submitted++
	j.q.Put(p, r) // parks when the job is at QueueDepth (admission control)
	if s.rec != nil {
		s.rec.Instant(j.trk, "ioserver", "admit", p.Now())
	}
	s.idle.WakeOne(p.Engine())
	// Workers sleeping out an all-jobs-capped interval re-evaluate now:
	// if this request is eligible it is served immediately instead of at
	// the earliest bucket expiry. A spurious wake (the new request's job
	// is itself capped) just re-sleeps to the same expiry.
	for _, w := range s.capSleep {
		p.Engine().Wake(w)
	}
	return r
}

// worker is one dedicated I/O-server process: dequeue in policy order,
// execute, complete, repeat until the server stops.
func (s *Server) worker(p *sim.Proc) {
	for {
		r := s.next(p)
		if r == nil {
			return
		}
		start := p.Now()
		var err error
		switch {
		case r.plan != nil && r.write:
			err = r.plan.WriteWindow(p, 0, r.pbuf, 0)
		case r.plan != nil:
			err = r.plan.ReadWindow(p, 0, r.pbuf, 0)
		case r.write:
			err = r.batch.Write(p)
		default:
			err = r.batch.Read(p)
		}
		s.complete(p, r, start, err)
	}
}

// next blocks until a request is eligible under the policy (nil once
// the server is stopped and drained). When every backlogged job is at
// its bandwidth cap, the worker sleeps until the earliest cap expiry —
// registered on capSleep so a mid-sleep Submit can wake it early.
func (s *Server) next(p *sim.Proc) *Request {
	for {
		r, wakeAt := s.pick(p)
		switch {
		case r != nil:
			return r
		case wakeAt > 0:
			s.capSleep = append(s.capSleep, p)
			p.SleepUntil(wakeAt)
			for i, w := range s.capSleep {
				if w == p {
					last := len(s.capSleep) - 1
					s.capSleep[i] = s.capSleep[last]
					s.capSleep[last] = nil
					s.capSleep = s.capSleep[:last]
					break
				}
			}
		case s.closed:
			return nil
		default:
			s.idle.Wait(p)
		}
	}
}

// pick dequeues the next request per the policy, or reports the
// earliest bandwidth-cap expiry when every backlogged job is capped
// (wakeAt 0 when there is simply nothing queued). Job iteration order
// and seq tie-breaks are fixed, so scheduling is deterministic.
func (s *Server) pick(p *sim.Proc) (r *Request, wakeAt time.Duration) {
	now := p.Now()
	var best *Job
	var bestHead *Request
	backlogged := false
	for _, j := range s.jobs {
		head, ok := j.q.Peek()
		if !ok {
			continue
		}
		backlogged = true
		if j.cfg.BytesPerSec > 0 && j.capFree > now {
			if wakeAt == 0 || j.capFree < wakeAt {
				wakeAt = j.capFree
			}
			continue
		}
		hr := head.(*Request)
		if best == nil || s.beats(j, hr, best, bestHead) {
			best, bestHead = j, hr
		}
	}
	if best == nil {
		if !backlogged {
			wakeAt = 0
		}
		return nil, wakeAt
	}
	v, _ := best.q.TryGet(p)
	r = v.(*Request)
	// Charge the QoS state at dispatch: the fair-share virtual clock
	// advances by weighted bytes, the bandwidth bucket by the time this
	// payload takes at the capped rate. A job returning from idle first
	// catches its tag up to the server's virtual clock (the start-time
	// fair queueing rule), so accumulated idleness buys at most one
	// early dispatch, not a monopolizing burst.
	if best.vtime < s.vnow {
		best.vtime = s.vnow
	}
	s.vnow = best.vtime
	if best.cfg.BytesPerSec > 0 {
		busyFor := time.Duration(float64(r.bytes) / best.cfg.BytesPerSec * float64(time.Second))
		from := best.capFree
		if now > from {
			from = now
		}
		best.capFree = from + busyFor
	}
	best.vtime += float64(r.bytes) / best.cfg.Weight
	return r, 0
}

// beats reports whether backlogged job j (head request jr) should be
// served before the current best under the configured policy.
func (s *Server) beats(j *Job, jr *Request, best *Job, br *Request) bool {
	switch s.cfg.Policy {
	case Priority:
		if j.cfg.Priority != best.cfg.Priority {
			return j.cfg.Priority > best.cfg.Priority
		}
	case FairShare:
		if j.vtime != best.vtime {
			return j.vtime < best.vtime
		}
	}
	return jr.seq < br.seq
}

// complete finalizes a request: accounting, spans, then wake its
// waiters.
func (s *Server) complete(p *sim.Proc, r *Request, start time.Duration, err error) {
	j := r.job
	j.completed++
	j.bytes += r.bytes
	j.busy += p.Now() - start
	j.lat.AddDuration(p.Now() - r.enq)
	if s.rec != nil {
		req := s.rec.Span(j.trk, "ioserver", "req", r.enq, p.Now(), r.bytes, 0)
		if start > r.enq {
			s.rec.Span(j.trk, "ioserver", "wait", r.enq, start, 0, req)
		}
		s.rec.Span(j.trk, "ioserver", "service", start, p.Now(), r.bytes, req)
	}
	r.err = err
	r.done = true
	r.wq.WakeAll(p.Engine())
}
