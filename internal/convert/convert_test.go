package convert

import (
	"io"
	"testing"

	"repro/internal/blockio"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/workload"
)

func testVolume(t *testing.T, devs int) *pfs.Volume {
	t.Helper()
	disks := make([]*device.Disk, devs)
	for i := range disks {
		disks[i] = device.New(device.Config{
			Geometry: device.Geometry{BlockSize: 256, BlocksPerCyl: 8, Cylinders: 256},
		})
	}
	store, err := blockio.NewDirect(disks)
	if err != nil {
		t.Fatal(err)
	}
	return pfs.NewVolume(store)
}

// fill writes workload records through the S view.
func fill(t *testing.T, f *pfs.File, ctx sim.Context, seed uint64) {
	t.Helper()
	w, err := core.OpenWriter(f, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, f.Mapper().RecordSize())
	for r := int64(0); r < f.Mapper().NumRecords(); r++ {
		workload.Record(buf, seed, r)
		if _, err := w.WriteRecord(ctx, buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

// drain reads a stream to EOF verifying workload records, returning ids.
func drain(t *testing.T, r *core.StreamReader, ctx sim.Context, seed uint64) []int64 {
	t.Helper()
	var ids []int64
	for {
		data, rec, err := r.ReadRecord(ctx)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := workload.CheckRecord(data, seed, rec); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, rec)
	}
	if err := r.Close(ctx); err != nil {
		t.Fatal(err)
	}
	return ids
}

func TestAlternateViewISOverPS(t *testing.T) {
	v := testVolume(t, 4)
	ctx := sim.NewWall()
	ps, err := v.Create(pfs.Spec{
		Name: "ps", Org: pfs.OrgPartitioned, RecordSize: 64,
		BlockRecords: 2, NumRecords: 48, Parts: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	fill(t, ps, ctx, 5)
	// Read the PS file with an IS view of stride 3.
	var all []int64
	for part := 0; part < 3; part++ {
		r, err := OpenView(ps, View{Org: pfs.OrgInterleaved, Part: part, Stride: 3}, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		ids := drain(t, r, ctx, 5)
		// Every record of this stride class: blocks ≡ part mod 3.
		for _, rec := range ids {
			if (rec/2)%3 != int64(part) {
				t.Fatalf("part %d got record %d", part, rec)
			}
		}
		all = append(all, ids...)
	}
	if len(all) != 48 {
		t.Fatalf("alternate views delivered %d records", len(all))
	}
}

func TestAlternateViewPSOverIS(t *testing.T) {
	v := testVolume(t, 4)
	ctx := sim.NewWall()
	is, err := v.Create(pfs.Spec{
		Name: "is", Org: pfs.OrgInterleaved, RecordSize: 64,
		BlockRecords: 2, NumRecords: 48, Parts: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	fill(t, is, ctx, 6)
	// PS view with 2 partitions over the IS file (re-partition).
	var total int
	for part := 0; part < 2; part++ {
		r, err := OpenView(is, View{Org: pfs.OrgPartitioned, Part: part, Stride: 2}, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		ids := drain(t, r, ctx, 6)
		total += len(ids)
		// Contiguous halves: part0 records 0..23, part1 24..47.
		for _, rec := range ids {
			if part == 0 && rec >= 24 || part == 1 && rec < 24 {
				t.Fatalf("part %d got record %d", part, rec)
			}
		}
	}
	if total != 48 {
		t.Fatalf("PS alternate view delivered %d", total)
	}
}

func TestGlobalFallback(t *testing.T) {
	v := testVolume(t, 2)
	ctx := sim.NewWall()
	ps, err := v.Create(pfs.Spec{
		Name: "ps", Org: pfs.OrgPartitioned, RecordSize: 64,
		BlockRecords: 2, NumRecords: 20, Parts: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	fill(t, ps, ctx, 7)
	r, err := core.OpenReader(ps, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ids := drain(t, r, ctx, 7)
	for i, rec := range ids {
		if rec != int64(i) {
			t.Fatalf("global fallback out of order at %d: %d", i, rec)
		}
	}
}

func TestCopyConvert(t *testing.T) {
	v := testVolume(t, 4)
	ctx := sim.NewWall()
	ps, err := v.Create(pfs.Spec{
		Name: "ps", Org: pfs.OrgPartitioned, RecordSize: 64,
		BlockRecords: 2, NumRecords: 40, Parts: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	fill(t, ps, ctx, 8)
	is, err := ToOrganization(ctx, v, ps, "is-copy", pfs.OrgInterleaved, 4, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if is.Spec().Org != pfs.OrgInterleaved || is.Spec().Placement != pfs.PlaceInterleaved {
		t.Fatalf("converted spec = %+v", is.Spec())
	}
	// Converted file carries identical records.
	r, err := core.OpenReader(is, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ids := drain(t, r, ctx, 8)
	if len(ids) != 40 {
		t.Fatalf("converted file has %d records", len(ids))
	}
	// The native IS view now works with natural placement.
	ir, err := core.OpenInterleavedReader(is, 1, 4, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	drain(t, ir, ctx, 8)
}

func TestCopyValidation(t *testing.T) {
	v := testVolume(t, 2)
	ctx := sim.NewWall()
	a, err := v.Create(pfs.Spec{Name: "a", RecordSize: 64, NumRecords: 10})
	if err != nil {
		t.Fatal(err)
	}
	b, err := v.Create(pfs.Spec{Name: "b", RecordSize: 32, NumRecords: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Copy(ctx, a, b, core.Options{}); err == nil {
		t.Fatal("mismatched record sizes accepted")
	}
	c, err := v.Create(pfs.Spec{Name: "c", RecordSize: 64, NumRecords: 11})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Copy(ctx, a, c, core.Options{}); err == nil {
		t.Fatal("mismatched record counts accepted")
	}
}

func TestOpenViewValidation(t *testing.T) {
	v := testVolume(t, 2)
	f, err := v.Create(pfs.Spec{Name: "f", RecordSize: 64, NumRecords: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenView(f, View{Org: pfs.OrgSelfScheduled}, core.Options{}); err == nil {
		t.Fatal("SS view accepted")
	}
}

func TestStrategyStrings(t *testing.T) {
	if AlternateView.String() != "alternate-view" || GlobalFallback.String() != "global-fallback" ||
		CopyConvert.String() != "copy-convert" || Strategy(9).String() == "" {
		t.Fatal("strategy strings")
	}
}
