// Package convert implements the paper's §5 remedies for the
// view-mismatch problem ("a file created with a PS organization needs to
// be read later with an IS format"):
//
//  1. AlternateView — present the requested internal view through a
//     software interface over the existing physical layout, accepting
//     degraded performance (the stride fights the placement).
//  2. GlobalFallback — force the consumer to the global sequential view.
//  3. Copy — convert the file into a second file with the desired
//     organization and placement ("could be expensive for large files").
//
// All three produce the same record stream; experiments measure the cost
// differences the paper predicts.
package convert

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/pfs"
	"repro/internal/sim"
)

// Strategy names the §5 remedies.
type Strategy int

const (
	// AlternateView reads the file in the requested pattern despite its
	// placement.
	AlternateView Strategy = iota
	// GlobalFallback reads through the canonical sequential view.
	GlobalFallback
	// CopyConvert copies into a new file organized for the new view.
	CopyConvert
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case AlternateView:
		return "alternate-view"
	case GlobalFallback:
		return "global-fallback"
	case CopyConvert:
		return "copy-convert"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// View describes a requested internal read view.
type View struct {
	Org    pfs.Organization // OrgPartitioned or OrgInterleaved
	Part   int              // which partition/stride class
	Stride int              // IS stride (process count); ignored for PS
}

// OpenView opens a StreamReader presenting the view over f regardless of
// f's own organization — remedy (1). PS views of non-PS files use an
// even block split into Stride partitions.
func OpenView(f *pfs.File, v View, opts core.Options) (*core.StreamReader, error) {
	switch v.Org {
	case pfs.OrgPartitioned:
		if f.Spec().Org == pfs.OrgPartitioned && v.Stride == f.Parts() || v.Stride == 0 {
			return core.OpenPartReader(f, v.Part, opts)
		}
		// Re-partition evenly into Stride parts over paper-blocks.
		total := f.Mapper().NumBlocks()
		per := (total + int64(v.Stride) - 1) / int64(v.Stride)
		first := int64(v.Part) * per
		end := first + per
		if end > total {
			end = total
		}
		if first > total {
			first = total
		}
		return core.OpenBlockRangeReader(f, first, end, opts)
	case pfs.OrgInterleaved:
		return core.OpenInterleavedReader(f, v.Part, v.Stride, opts)
	default:
		return nil, fmt.Errorf("convert: unsupported view %v", v.Org)
	}
}

// Copy streams every record of src into dst (both must share record size
// and count), using sequential views with read-ahead on both sides —
// remedy (3). It returns the records copied.
func Copy(ctx sim.Context, src, dst *pfs.File, opts core.Options) (int64, error) {
	if src.Mapper().RecordSize() != dst.Mapper().RecordSize() {
		return 0, fmt.Errorf("convert: record sizes differ (%d vs %d)",
			src.Mapper().RecordSize(), dst.Mapper().RecordSize())
	}
	if src.Mapper().NumRecords() != dst.Mapper().NumRecords() {
		return 0, fmt.Errorf("convert: record counts differ (%d vs %d)",
			src.Mapper().NumRecords(), dst.Mapper().NumRecords())
	}
	r, err := core.OpenReader(src, opts)
	if err != nil {
		return 0, err
	}
	defer r.Close(ctx)
	w, err := core.OpenWriter(dst, opts)
	if err != nil {
		return 0, err
	}
	var n int64
	for {
		data, _, err := r.ReadRecord(ctx)
		if err == io.EOF {
			break
		}
		if err != nil {
			w.Close(ctx)
			return n, err
		}
		if _, err := w.WriteRecord(ctx, data); err != nil {
			w.Close(ctx)
			return n, err
		}
		n++
	}
	return n, w.Close(ctx)
}

// ToOrganization creates a sibling of src named newName with the target
// organization/placement and copies src into it — the full remedy (3)
// workflow. The new spec inherits src's framing.
func ToOrganization(ctx sim.Context, vol *pfs.Volume, src *pfs.File, newName string,
	org pfs.Organization, parts int, opts core.Options) (*pfs.File, error) {
	spec := src.Spec()
	spec.Name = newName
	spec.Org = org
	spec.Parts = parts
	spec.PartBlocks = nil
	spec.Placement = pfs.PlaceAuto
	dst, err := vol.Create(spec)
	if err != nil {
		return nil, err
	}
	if _, err := Copy(ctx, src, dst, opts); err != nil {
		return nil, err
	}
	return dst, nil
}
