package records

import (
	"testing"
	"testing/quick"
)

func mustMapper(t *testing.T, rs, br, fs int, n int64) *Mapper {
	t.Helper()
	m, err := NewMapper(rs, br, fs, n)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMapperValidation(t *testing.T) {
	cases := []struct {
		rs, br, fs int
		n          int64
	}{
		{0, 1, 1, 1}, {1, 0, 1, 1}, {1, 1, 0, 1}, {1, 1, 1, -1},
	}
	for _, c := range cases {
		if _, err := NewMapper(c.rs, c.br, c.fs, c.n); err == nil {
			t.Fatalf("accepted invalid %+v", c)
		}
	}
}

func TestExactFit(t *testing.T) {
	// 4 records of 64 bytes per paper-block, 256-byte fs blocks: no padding.
	m := mustMapper(t, 64, 4, 256, 100)
	if m.FSPerBlock() != 1 || m.PaddedBlockBytes() != 256 || m.PayloadBlockBytes() != 256 {
		t.Fatalf("exact fit wrong: fsPer=%d padded=%d", m.FSPerBlock(), m.PaddedBlockBytes())
	}
	if m.NumBlocks() != 25 {
		t.Fatalf("NumBlocks = %d, want 25", m.NumBlocks())
	}
	if m.TotalFSBlocks() != 25 {
		t.Fatalf("TotalFSBlocks = %d", m.TotalFSBlocks())
	}
}

func TestPadding(t *testing.T) {
	// 3 records of 100 bytes = 300 payload on 256-byte fs blocks -> 2 fs
	// blocks, 212 bytes padding.
	m := mustMapper(t, 100, 3, 256, 7)
	if m.FSPerBlock() != 2 || m.PaddedBlockBytes() != 512 {
		t.Fatalf("padding wrong: fsPer=%d padded=%d", m.FSPerBlock(), m.PaddedBlockBytes())
	}
	if m.NumBlocks() != 3 { // 7 records, 3 per block -> blocks of 3,3,1
		t.Fatalf("NumBlocks = %d", m.NumBlocks())
	}
	if m.RecordsInBlock(0) != 3 || m.RecordsInBlock(2) != 1 {
		t.Fatalf("RecordsInBlock: %d %d", m.RecordsInBlock(0), m.RecordsInBlock(2))
	}
	if m.RecordsInBlock(3) != 0 || m.RecordsInBlock(-1) != 0 {
		t.Fatal("out-of-range block should hold 0 records")
	}
}

func TestEmptyFile(t *testing.T) {
	m := mustMapper(t, 8, 2, 64, 0)
	if m.NumBlocks() != 0 || m.TotalFSBlocks() != 0 {
		t.Fatal("empty file has blocks")
	}
	if err := m.Check(0); err == nil {
		t.Fatal("Check(0) on empty file passed")
	}
}

func TestSpansSingle(t *testing.T) {
	m := mustMapper(t, 64, 4, 256, 100)
	s := m.Spans(5) // block 1, index 1 -> fs block 1, offset 64
	if len(s) != 1 {
		t.Fatalf("spans = %v", s)
	}
	if s[0].FSBlock != 1 || s[0].Off != 64 || s[0].Len != 64 {
		t.Fatalf("span = %+v", s[0])
	}
}

func TestSpansStraddle(t *testing.T) {
	// 100-byte records on 256-byte fs blocks: record 2 of a block spans
	// bytes 200..299 -> straddles fs blocks 0 and 1 of the paper-block.
	m := mustMapper(t, 100, 3, 256, 9)
	s := m.Spans(2)
	if len(s) != 2 {
		t.Fatalf("want 2 spans, got %v", s)
	}
	if s[0].FSBlock != 0 || s[0].Off != 200 || s[0].Len != 56 {
		t.Fatalf("span0 = %+v", s[0])
	}
	if s[1].FSBlock != 1 || s[1].Off != 0 || s[1].Len != 44 {
		t.Fatalf("span1 = %+v", s[1])
	}
	// Record 3 starts the next paper-block: fs block 2.
	s3 := m.Spans(3)
	if s3[0].FSBlock != 2 || s3[0].Off != 0 {
		t.Fatalf("record 3 span = %+v", s3[0])
	}
}

func TestSpansLargeRecordManyBlocks(t *testing.T) {
	// One 1000-byte record per paper-block on 256-byte fs blocks: 4 fs
	// blocks per paper-block, record spans all 4.
	m := mustMapper(t, 1000, 1, 256, 3)
	s := m.Spans(1)
	if len(s) != 4 {
		t.Fatalf("want 4 spans, got %d: %v", len(s), s)
	}
	total := 0
	for i, sp := range s {
		total += sp.Len
		if i > 0 && sp.Off != 0 {
			t.Fatalf("continuation span has nonzero offset: %+v", sp)
		}
	}
	if total != 1000 {
		t.Fatalf("span bytes = %d, want 1000", total)
	}
	if s[0].FSBlock != 4 { // paper-block 1 starts at fs block 4
		t.Fatalf("first span fs block = %d, want 4", s[0].FSBlock)
	}
}

func TestSpansCoverExactlyOnceQuick(t *testing.T) {
	// Property: across all records, spans tile the payload bytes of the
	// file exactly once and never touch padding.
	err := quick.Check(func(rs8, br8, fs8 uint8, n8 uint8) bool {
		rs := int(rs8%50) + 1
		br := int(br8%5) + 1
		fs := int(fs8%100) + 10
		n := int64(n8%40) + 1
		m, err := NewMapper(rs, br, fs, n)
		if err != nil {
			return false
		}
		type cell struct {
			fs  int64
			off int
		}
		seen := make(map[cell]bool)
		for r := int64(0); r < n; r++ {
			for _, sp := range m.Spans(r) {
				if sp.FSBlock < 0 || sp.FSBlock >= m.TotalFSBlocks() {
					return false
				}
				if sp.Off < 0 || sp.Off+sp.Len > fs || sp.Len <= 0 {
					return false
				}
				for i := 0; i < sp.Len; i++ {
					c := cell{sp.FSBlock, sp.Off + i}
					if seen[c] {
						return false // overlap
					}
					seen[c] = true
				}
			}
		}
		// Total covered bytes must equal record payload.
		return int64(len(seen)) == n*int64(rs)
	}, &quick.Config{MaxCount: 80})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBlockSpan(t *testing.T) {
	m := mustMapper(t, 100, 3, 256, 9)
	first, count := m.BlockSpan(2)
	if first != 4 || count != 2 {
		t.Fatalf("BlockSpan(2) = %d,%d want 4,2", first, count)
	}
}

func TestCheck(t *testing.T) {
	m := mustMapper(t, 8, 2, 64, 10)
	if err := m.Check(9); err != nil {
		t.Fatal(err)
	}
	if err := m.Check(10); err == nil {
		t.Fatal("Check(10) passed for 10-record file")
	}
	if err := m.Check(-1); err == nil {
		t.Fatal("Check(-1) passed")
	}
}

func TestBlockOfIndexInBlock(t *testing.T) {
	m := mustMapper(t, 8, 4, 64, 100)
	for r := int64(0); r < 100; r++ {
		if m.BlockOf(r) != r/4 || int64(m.IndexInBlock(r)) != r%4 {
			t.Fatalf("record %d: block %d idx %d", r, m.BlockOf(r), m.IndexInBlock(r))
		}
	}
}
