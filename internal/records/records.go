// Package records implements the paper's §3 data model: a file is a
// collection of fixed-size records grouped into blocks ("logical
// groupings of contiguous data rather than physical partitions"), which
// in turn are stored on fixed-size file-system (device) blocks.
//
// A Mapper translates record indices to byte spans on file-system
// blocks. Paper-blocks are padded up to a whole number of fs blocks so
// that every paper-block is device-aligned (a requirement for placing
// whole blocks on single devices); the global view skips the padding, so
// sequential consumers still see a gap-free record stream.
package records

import "fmt"

// Span is a byte range within one file-system block.
type Span struct {
	FSBlock int64 // logical fs-block index within the file
	Off     int   // byte offset within that fs block
	Len     int   // byte count
}

// Mapper fixes the framing parameters of one file.
type Mapper struct {
	recordSize   int   // bytes per record
	blockRecords int   // records per paper-block
	fsBlock      int   // device block bytes
	numRecords   int64 // file length in records

	fsPerBlock  int64 // fs blocks per paper-block (after padding)
	blockBytes  int   // paper-block payload bytes
	paddedBytes int   // paper-block allocated bytes
}

// NewMapper validates and builds a Mapper.
func NewMapper(recordSize, blockRecords, fsBlock int, numRecords int64) (*Mapper, error) {
	if recordSize <= 0 {
		return nil, fmt.Errorf("records: record size %d must be positive", recordSize)
	}
	if blockRecords <= 0 {
		return nil, fmt.Errorf("records: block records %d must be positive", blockRecords)
	}
	if fsBlock <= 0 {
		return nil, fmt.Errorf("records: fs block size %d must be positive", fsBlock)
	}
	if numRecords < 0 {
		return nil, fmt.Errorf("records: negative record count %d", numRecords)
	}
	m := &Mapper{
		recordSize:   recordSize,
		blockRecords: blockRecords,
		fsBlock:      fsBlock,
		numRecords:   numRecords,
	}
	m.blockBytes = recordSize * blockRecords
	m.fsPerBlock = int64((m.blockBytes + fsBlock - 1) / fsBlock)
	m.paddedBytes = int(m.fsPerBlock) * fsBlock
	return m, nil
}

// RecordSize reports bytes per record.
func (m *Mapper) RecordSize() int { return m.recordSize }

// BlockRecords reports records per paper-block.
func (m *Mapper) BlockRecords() int { return m.blockRecords }

// FSBlockSize reports the device block size.
func (m *Mapper) FSBlockSize() int { return m.fsBlock }

// NumRecords reports the file length in records.
func (m *Mapper) NumRecords() int64 { return m.numRecords }

// NumBlocks reports the file length in paper-blocks (the final block may
// be short).
func (m *Mapper) NumBlocks() int64 {
	if m.numRecords == 0 {
		return 0
	}
	return (m.numRecords + int64(m.blockRecords) - 1) / int64(m.blockRecords)
}

// FSPerBlock reports fs blocks per paper-block.
func (m *Mapper) FSPerBlock() int64 { return m.fsPerBlock }

// TotalFSBlocks reports the fs blocks needed to store the whole file.
func (m *Mapper) TotalFSBlocks() int64 { return m.NumBlocks() * m.fsPerBlock }

// Dense reports whether the record payload tiles the file's fs blocks
// exactly (paper-blocks carry no padding): payload byte x then lives at
// fs block x/FSBlockSize, offset x%FSBlockSize. Dense framings admit
// whole-block bulk (extent) transfers of the canonical byte stream.
func (m *Mapper) Dense() bool { return m.blockBytes == m.paddedBytes }

// PaddedBlockBytes reports the allocated bytes per paper-block.
func (m *Mapper) PaddedBlockBytes() int { return m.paddedBytes }

// PayloadBlockBytes reports the useful bytes per full paper-block.
func (m *Mapper) PayloadBlockBytes() int { return m.blockBytes }

// BlockOf reports the paper-block holding record r.
func (m *Mapper) BlockOf(r int64) int64 { return r / int64(m.blockRecords) }

// IndexInBlock reports r's position within its paper-block.
func (m *Mapper) IndexInBlock(r int64) int { return int(r % int64(m.blockRecords)) }

// RecordsInBlock reports how many records paper-block b actually holds
// (short for the final block).
func (m *Mapper) RecordsInBlock(b int64) int {
	if b < 0 || b >= m.NumBlocks() {
		return 0
	}
	if b == m.NumBlocks()-1 {
		if rem := m.numRecords - b*int64(m.blockRecords); rem < int64(m.blockRecords) {
			return int(rem)
		}
	}
	return m.blockRecords
}

// Check validates a record index.
func (m *Mapper) Check(r int64) error {
	if r < 0 || r >= m.numRecords {
		return fmt.Errorf("records: record %d out of range [0,%d)", r, m.numRecords)
	}
	return nil
}

// AppendSpans appends the byte spans of record r (in logical fs-block
// coordinates) to dst and returns it. A record occupies one span unless
// it straddles fs-block boundaries within its paper-block.
func (m *Mapper) AppendSpans(dst []Span, r int64) []Span {
	block := m.BlockOf(r)
	idx := m.IndexInBlock(r)
	baseFS := block * m.fsPerBlock
	start := idx * m.recordSize // byte offset within the padded paper-block
	remaining := m.recordSize
	for remaining > 0 {
		fs := baseFS + int64(start/m.fsBlock)
		off := start % m.fsBlock
		n := m.fsBlock - off
		if n > remaining {
			n = remaining
		}
		dst = append(dst, Span{FSBlock: fs, Off: off, Len: n})
		start += n
		remaining -= n
	}
	return dst
}

// Spans returns the byte spans of record r.
func (m *Mapper) Spans(r int64) []Span { return m.AppendSpans(nil, r) }

// BlockSpan reports the fs-block range [first, first+count) occupied by
// paper-block b.
func (m *Mapper) BlockSpan(b int64) (first, count int64) {
	return b * m.fsPerBlock, m.fsPerBlock
}
