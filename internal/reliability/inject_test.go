package reliability

import (
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/stripe"
)

func TestScheduleFailureFiresOnTime(t *testing.T) {
	e := sim.NewEngine()
	d := device.New(device.Config{Engine: e})
	ScheduleFailure(e, d, 5*time.Millisecond)
	var beforeFailed, afterFailed bool
	e.Go("probe", func(p *sim.Proc) {
		p.SleepUntil(4 * time.Millisecond)
		beforeFailed = d.Failed()
		p.SleepUntil(6 * time.Millisecond)
		afterFailed = d.Failed()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if beforeFailed {
		t.Fatal("disk failed early")
	}
	if !afterFailed {
		t.Fatal("disk did not fail on schedule")
	}
}

func TestScheduleExponentialFailuresWithinHorizon(t *testing.T) {
	e := sim.NewEngine()
	disks := make([]*device.Disk, 20)
	for i := range disks {
		disks[i] = device.New(device.Config{Engine: e})
	}
	rng := sim.NewRNG(77)
	horizon := 10 * time.Hour
	// Tiny MTBF so most disks fail inside the horizon.
	times := ScheduleExponentialFailures(e, disks, rng, 2*time.Hour, horizon)
	scheduled := 0
	for _, ts := range times {
		if ts > 0 {
			scheduled++
			if ts > horizon {
				t.Fatalf("failure at %v beyond horizon", ts)
			}
		}
	}
	if scheduled < 10 {
		t.Fatalf("only %d/20 failures scheduled with MTBF << horizon", scheduled)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	failed := 0
	for _, d := range disks {
		if d.Failed() {
			failed++
		}
	}
	if failed != scheduled {
		t.Fatalf("%d failed, %d scheduled", failed, scheduled)
	}
}

// TestMirroredWorkloadSurvivesInjectedFailure runs a PS read workload on
// a shadowed store while a failure injector kills a primary mid-run: the
// workload must complete with correct data.
func TestMirroredWorkloadSurvivesInjectedFailure(t *testing.T) {
	e := sim.NewEngine()
	geom := device.Geometry{BlockSize: 4096, BlocksPerCyl: 16, Cylinders: 64}
	mk := func() []*device.Disk {
		ds := make([]*device.Disk, 2)
		for i := range ds {
			ds[i] = device.New(device.Config{Geometry: geom, Engine: e})
		}
		return ds
	}
	prim, shad := mk(), mk()
	mir, err := stripe.NewMirror(prim, shad)
	if err != nil {
		t.Fatal(err)
	}
	vol := pfs.NewVolume(mir)
	f, err := vol.Create(pfs.Spec{Name: "d", RecordSize: 4096, NumRecords: 64})
	if err != nil {
		t.Fatal(err)
	}
	e.Go("workload", func(p *sim.Proc) {
		if err := WritePattern(p, f, 0x9); err != nil {
			t.Error(err)
			return
		}
		// Kill a primary in the middle of the verify pass.
		ScheduleFailure(p.Engine(), prim[0], p.Now()+100*time.Millisecond)
		if err := VerifyPattern(p, f, 0x9); err != nil {
			t.Errorf("verify with mid-run failure: %v", err)
		}
		if !prim[0].Failed() {
			t.Error("failure did not fire during workload")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}
