// Package reliability implements the paper's §5 reliability analysis and
// mechanisms:
//
//   - the MTBF arithmetic ("assuming a MTBF of 30,000 hours for each
//     storage device, a file system containing 10 devices could be
//     expected to fail every 3000 hours ... a system with 100 devices
//     would average more than one failure every two weeks");
//   - Monte-Carlo failure campaigns over exponential lifetimes, with and
//     without single-failure redundancy (parity / shadowing);
//   - end-to-end inject/recover scenarios on parity and mirror stores;
//   - the rollback-consistency property: "if a single drive fails, it is
//     not sufficient to restore just that disk from backups — all of the
//     disks will have to be rolled back to the same point in time".
package reliability

import (
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/blockio"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/stripe"
	"repro/internal/workload"
)

// Hours is a convenience duration unit.
const Hours = time.Hour

// DeviceMTBF1989 is the drive MTBF the paper assumes.
const DeviceMTBF1989 = 30000 * Hours

// SystemMTBF reports the mean time between failures of n independent
// devices in series (any failure fails the system): MTBF/n.
func SystemMTBF(deviceMTBF time.Duration, n int) time.Duration {
	if n <= 0 {
		return 0
	}
	return deviceMTBF / time.Duration(n)
}

// FailuresPerYear reports the expected yearly failure count for a system
// with the given MTBF.
func FailuresPerYear(mtbf time.Duration) float64 {
	if mtbf <= 0 {
		return 0
	}
	year := 365.25 * 24 * float64(Hours)
	return year / float64(mtbf)
}

// MTTFSingleFaultHours approximates the mean time to data loss, in
// hours, of an n-drive group that tolerates one failure and repairs in
// mttr (the classical Markov result MTBF² / (n·(n−1)·MTTR)). Hours avoid
// the time.Duration overflow these very large MTTFs hit.
func MTTFSingleFaultHours(deviceMTBF, mttr time.Duration, n int) float64 {
	if n < 2 || mttr <= 0 {
		return 0
	}
	m := deviceMTBF.Hours()
	return m * m / (float64(n) * float64(n-1) * mttr.Hours())
}

// MTTFSingleFault is MTTFSingleFaultHours as a duration, saturating at
// the maximum representable duration instead of overflowing.
func MTTFSingleFault(deviceMTBF, mttr time.Duration, n int) time.Duration {
	h := MTTFSingleFaultHours(deviceMTBF, mttr, n)
	maxH := float64(1<<63-1) / float64(Hours)
	if h >= maxH {
		return 1<<63 - 1
	}
	return time.Duration(h * float64(Hours))
}

// CampaignResult summarizes a Monte-Carlo failure campaign.
type CampaignResult struct {
	Missions     int
	DataLoss     int     // missions that lost data
	MeanFailures float64 // device failures per mission
}

// LossRate reports the fraction of missions with data loss.
func (c CampaignResult) LossRate() float64 {
	if c.Missions == 0 {
		return 0
	}
	return float64(c.DataLoss) / float64(c.Missions)
}

// Campaign simulates `missions` independent missions of the given length
// over n drives with exponential lifetimes (mean deviceMTBF) and repair
// time mttr. The drives are split into `groups` equal redundancy groups,
// each tolerating `tolerate` concurrent outages (0 = plain array, 1 =
// parity group or mirror pair). Data is lost when any group's concurrent
// outages exceed its tolerance.
func Campaign(rng *sim.RNG, missions, n, groups, tolerate int,
	deviceMTBF, mttr, mission time.Duration) CampaignResult {
	if groups < 1 {
		groups = 1
	}
	perGroup := (n + groups - 1) / groups
	res := CampaignResult{Missions: missions}
	totalFailures := 0
	repairEnd := make([]time.Duration, n)
	next := make([]time.Duration, n)
	for m := 0; m < missions; m++ {
		lost := false
		failures := 0
		for d := range next {
			repairEnd[d] = 0
			next[d] = time.Duration(rng.ExpFloat64() * float64(deviceMTBF))
		}
		for {
			best := -1
			for d, t := range next {
				if t <= mission && (best == -1 || t < next[best]) {
					best = d
				}
			}
			if best == -1 {
				break
			}
			t := next[best]
			failures++
			g := best / perGroup
			concurrent := 1
			for d := g * perGroup; d < n && d < (g+1)*perGroup; d++ {
				if d != best && repairEnd[d] > t {
					concurrent++
				}
			}
			if concurrent > tolerate {
				lost = true
			}
			repairEnd[best] = t + mttr
			next[best] = repairEnd[best] + time.Duration(rng.ExpFloat64()*float64(deviceMTBF))
		}
		if lost {
			res.DataLoss++
		}
		totalFailures += failures
	}
	res.MeanFailures = float64(totalFailures) / float64(missions)
	return res
}

// WritePattern fills f with the workload pattern for seed through the
// sequential view.
func WritePattern(ctx sim.Context, f *pfs.File, seed uint64) error {
	w, err := core.OpenWriter(f, core.Options{})
	if err != nil {
		return err
	}
	buf := make([]byte, f.Mapper().RecordSize())
	for rec := int64(0); rec < f.Mapper().NumRecords(); rec++ {
		workload.Record(buf, seed, rec)
		if _, err := w.WriteRecord(ctx, buf); err != nil {
			w.Close(ctx)
			return err
		}
	}
	return w.Close(ctx)
}

// VerifyPattern checks that every record of f carries the workload
// pattern for seed.
func VerifyPattern(ctx sim.Context, f *pfs.File, seed uint64) error {
	r, err := core.OpenReader(f, core.Options{})
	if err != nil {
		return err
	}
	defer r.Close(ctx)
	for {
		data, rec, err := r.ReadRecord(ctx)
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		if err := workload.CheckRecord(data, seed, rec); err != nil {
			return err
		}
	}
}

// ParityScenario runs the end-to-end §5 scenario on a parity store:
// write a pattern, fail one physical drive, verify degraded reads still
// return correct data, install a blank replacement, rebuild, and verify
// clean reads. It returns the virtual time spent in the rebuild phase.
func ParityScenario(ctx sim.Context, par *stripe.Parity, f *pfs.File, failPhys int, seed uint64) (time.Duration, error) {
	if err := WritePattern(ctx, f, seed); err != nil {
		return 0, fmt.Errorf("reliability: write: %w", err)
	}
	par.PhysDisk(failPhys).Fail()
	if err := VerifyPattern(ctx, f, seed); err != nil {
		return 0, fmt.Errorf("reliability: degraded read: %w", err)
	}
	// Blank replacement arrives; rebuild every allocated row.
	if err := par.PhysDisk(failPhys).Erase(); err != nil {
		return 0, err
	}
	par.PhysDisk(failPhys).Repair()
	start := ctx.Now()
	rows := rowsInUse(par.Blocks(), f)
	if err := par.Rebuild(ctx, failPhys, rows); err != nil {
		return 0, fmt.Errorf("reliability: rebuild: %w", err)
	}
	rebuildTime := ctx.Now() - start
	if err := VerifyPattern(ctx, f, seed); err != nil {
		return rebuildTime, fmt.Errorf("reliability: post-rebuild read: %w", err)
	}
	return rebuildTime, nil
}

// MirrorScenario runs the shadow-disk §5 scenario: write a pattern, fail
// a primary, verify reads fail over to the shadow, rebuild the primary
// from its twin, fail the shadow, and verify the rebuilt primary serves
// correct data alone.
func MirrorScenario(ctx sim.Context, mir *stripe.Mirror, f *pfs.File, dev int, seed uint64) (time.Duration, error) {
	if err := WritePattern(ctx, f, seed); err != nil {
		return 0, fmt.Errorf("reliability: write: %w", err)
	}
	mir.Primary(dev).Fail()
	if err := VerifyPattern(ctx, f, seed); err != nil {
		return 0, fmt.Errorf("reliability: failover read: %w", err)
	}
	if err := mir.Primary(dev).Erase(); err != nil {
		return 0, err
	}
	mir.Primary(dev).Repair()
	start := ctx.Now()
	rows := rowsInUse(mir.Blocks(), f)
	if err := mir.Rebuild(ctx, dev, rows, true); err != nil {
		return 0, fmt.Errorf("reliability: rebuild: %w", err)
	}
	rebuildTime := ctx.Now() - start
	mir.Shadow(dev).Fail()
	if err := VerifyPattern(ctx, f, seed); err != nil {
		return rebuildTime, fmt.Errorf("reliability: post-rebuild read: %w", err)
	}
	mir.Shadow(dev).Repair()
	return rebuildTime, nil
}

// rowsInUse bounds the physical rows a file can occupy (whole-device
// rebuilds are wasteful in experiments; rebuilding the file's extent
// suffices). It conservatively uses the file's total fs blocks, which is
// an upper bound on any single device's extent.
func rowsInUse(deviceBlocks int64, f *pfs.File) int64 {
	rows := f.Mapper().TotalFSBlocks()
	if rows > deviceBlocks {
		rows = deviceBlocks
	}
	return rows
}

// RollbackDemo demonstrates the §5 consistency hazard on a striped file
// over plain disks. It:
//  1. writes pattern A and takes a consistent backup of every drive;
//  2. writes pattern B (the file evolves past the backup);
//  3. simulates losing one drive and restoring ONLY it from the backup;
//  4. checks the file is now inconsistent (a mix of A and B);
//  5. rolls ALL drives back to the common snapshot and verifies pattern A.
//
// It returns (inconsistentAfterSingleRestore, consistentAfterFullRollback).
func RollbackDemo(ctx sim.Context, disks []*device.Disk, f *pfs.File, backupDrive int) (bool, bool, error) {
	if err := WritePattern(ctx, f, 0xA); err != nil {
		return false, false, err
	}
	full := make([]map[int64][]byte, len(disks))
	for i, d := range disks {
		snap, err := d.Snapshot()
		if err != nil {
			return false, false, err
		}
		full[i] = snap
	}
	if err := WritePattern(ctx, f, 0xB); err != nil {
		return false, false, err
	}
	if err := disks[backupDrive].Restore(full[backupDrive]); err != nil {
		return false, false, err
	}
	inconsistent := VerifyPattern(ctx, f, 0xB) != nil

	for i, d := range disks {
		if err := d.Restore(full[i]); err != nil {
			return false, false, err
		}
	}
	consistent := VerifyPattern(ctx, f, 0xA) == nil
	return inconsistent, consistent, nil
}

// ScheduleFailure arranges for the disk to fail at the given virtual
// time (a background failure-injection process).
func ScheduleFailure(e *sim.Engine, d *device.Disk, at time.Duration) {
	e.Go("failure-injector", func(p *sim.Proc) {
		p.SleepUntil(at)
		d.Fail()
	})
}

// ScheduleExponentialFailures draws one failure time per disk from an
// exponential lifetime distribution (mean = mtbf) and schedules those
// that land inside the horizon. It returns the scheduled times (zero
// means no failure within the horizon) — the workload-facing face of the
// §5 MTBF model.
func ScheduleExponentialFailures(e *sim.Engine, disks []*device.Disk, rng *sim.RNG,
	mtbf, horizon time.Duration) []time.Duration {
	out := make([]time.Duration, len(disks))
	for i, d := range disks {
		t := time.Duration(rng.ExpFloat64() * float64(mtbf))
		if t <= horizon {
			out[i] = t
			ScheduleFailure(e, d, t)
		}
	}
	return out
}

// NewPlainArray builds n engine-attached disks with the given geometry
// and a volume over them (convenience for experiments and tests).
func NewPlainArray(e *sim.Engine, n int, geom device.Geometry) ([]*device.Disk, *pfs.Volume, error) {
	disks := make([]*device.Disk, n)
	for i := range disks {
		disks[i] = device.New(device.Config{
			Name:     fmt.Sprintf("d%d", i),
			Geometry: geom,
			Engine:   e,
		})
	}
	store, err := blockio.NewDirect(disks)
	if err != nil {
		return nil, nil, err
	}
	return disks, pfs.NewVolume(store), nil
}
