package reliability

import (
	"math"
	"testing"

	"repro/internal/device"
	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/stripe"
)

func TestSystemMTBFPaperNumbers(t *testing.T) {
	// The paper: 30,000 h drives, 10 devices -> 3,000 h ("about 3 times
	// per year"); 100 devices -> 300 h ("more than one failure every two
	// weeks").
	ten := SystemMTBF(DeviceMTBF1989, 10)
	if ten != 3000*Hours {
		t.Fatalf("10 devices: %v, want 3000h", ten)
	}
	if fpy := FailuresPerYear(ten); math.Abs(fpy-2.922) > 0.01 {
		t.Fatalf("10 devices: %.3f failures/year, want ~2.9 ('about 3 times per year')", fpy)
	}
	hundred := SystemMTBF(DeviceMTBF1989, 100)
	if hundred != 300*Hours {
		t.Fatalf("100 devices: %v, want 300h", hundred)
	}
	twoWeeks := 14 * 24 * Hours
	if hundred >= twoWeeks {
		t.Fatalf("100 devices MTBF %v should be under two weeks (%v)", hundred, twoWeeks)
	}
	if SystemMTBF(DeviceMTBF1989, 0) != 0 {
		t.Fatal("n=0 should be 0")
	}
	if FailuresPerYear(0) != 0 {
		t.Fatal("zero MTBF should be 0")
	}
}

func TestMTTFSingleFault(t *testing.T) {
	// Redundancy must buy orders of magnitude.
	plain := SystemMTBF(DeviceMTBF1989, 10)
	mttr := 24 * Hours
	prot := MTTFSingleFault(DeviceMTBF1989, mttr, 10)
	if prot < 100*plain {
		t.Fatalf("single-fault MTTF %v not >> plain %v", prot, plain)
	}
	if MTTFSingleFault(DeviceMTBF1989, mttr, 1) != 0 {
		t.Fatal("n=1 should be 0")
	}
	if MTTFSingleFault(DeviceMTBF1989, 0, 4) != 0 {
		t.Fatal("zero MTTR should be 0")
	}
}

func TestCampaignPlainMatchesAnalytic(t *testing.T) {
	rng := sim.NewRNG(123)
	mission := 3000 * Hours
	res := Campaign(rng, 2000, 10, 1, 0, DeviceMTBF1989, 24*Hours, mission)
	// Expected failures per mission: n * mission/MTBF = 10 * 0.1 = 1.
	if math.Abs(res.MeanFailures-1.0) > 0.1 {
		t.Fatalf("mean failures %v, want ~1.0", res.MeanFailures)
	}
	// P(any failure) = 1 - exp(-1) ≈ 0.632.
	if math.Abs(res.LossRate()-0.632) > 0.05 {
		t.Fatalf("loss rate %v, want ~0.632", res.LossRate())
	}
}

func TestCampaignRedundancyHelps(t *testing.T) {
	mission := 3000 * Hours
	plain := Campaign(sim.NewRNG(5), 1500, 10, 1, 0, DeviceMTBF1989, 24*Hours, mission)
	parity := Campaign(sim.NewRNG(5), 1500, 10, 1, 1, DeviceMTBF1989, 24*Hours, mission)
	mirror := Campaign(sim.NewRNG(5), 1500, 10, 5, 1, DeviceMTBF1989, 24*Hours, mission)
	if parity.LossRate() >= plain.LossRate()/5 {
		t.Fatalf("parity loss %v not << plain %v", parity.LossRate(), plain.LossRate())
	}
	if mirror.LossRate() > parity.LossRate() {
		t.Fatalf("mirror loss %v worse than one parity group %v", mirror.LossRate(), parity.LossRate())
	}
}

func TestCampaignScalesWithDeviceCount(t *testing.T) {
	mission := 1000 * Hours
	small := Campaign(sim.NewRNG(9), 800, 10, 1, 0, DeviceMTBF1989, 24*Hours, mission)
	large := Campaign(sim.NewRNG(9), 800, 100, 1, 0, DeviceMTBF1989, 24*Hours, mission)
	if large.LossRate() <= small.LossRate() {
		t.Fatalf("100 devices loss %v not worse than 10 devices %v", large.LossRate(), small.LossRate())
	}
	if large.MeanFailures <= small.MeanFailures {
		t.Fatal("failure count should grow with device count")
	}
}

func parityFixture(t *testing.T) (*stripe.Parity, *pfs.File) {
	t.Helper()
	geom := device.Geometry{BlockSize: 256, BlocksPerCyl: 8, Cylinders: 64}
	disks := make([]*device.Disk, 4)
	for i := range disks {
		disks[i] = device.New(device.Config{Geometry: geom})
	}
	par, err := stripe.NewParity(disks, true)
	if err != nil {
		t.Fatal(err)
	}
	vol := pfs.NewVolume(par)
	f, err := vol.Create(pfs.Spec{Name: "data", RecordSize: 64, NumRecords: 96})
	if err != nil {
		t.Fatal(err)
	}
	return par, f
}

func TestParityScenarioEndToEnd(t *testing.T) {
	par, f := parityFixture(t)
	ctx := sim.NewWall()
	if _, err := ParityScenario(ctx, par, f, 1, 0x77); err != nil {
		t.Fatal(err)
	}
}

func TestMirrorScenarioEndToEnd(t *testing.T) {
	geom := device.Geometry{BlockSize: 256, BlocksPerCyl: 8, Cylinders: 64}
	mk := func(n int) []*device.Disk {
		ds := make([]*device.Disk, n)
		for i := range ds {
			ds[i] = device.New(device.Config{Geometry: geom})
		}
		return ds
	}
	mir, err := stripe.NewMirror(mk(2), mk(2))
	if err != nil {
		t.Fatal(err)
	}
	vol := pfs.NewVolume(mir)
	f, err := vol.Create(pfs.Spec{Name: "data", RecordSize: 64, NumRecords: 64})
	if err != nil {
		t.Fatal(err)
	}
	ctx := sim.NewWall()
	if _, err := MirrorScenario(ctx, mir, f, 0, 0x55); err != nil {
		t.Fatal(err)
	}
}

func TestRollbackDemo(t *testing.T) {
	e := sim.NewEngine()
	disks, vol, err := NewPlainArray(e, 4, device.Geometry{BlockSize: 256, BlocksPerCyl: 8, Cylinders: 64})
	if err != nil {
		t.Fatal(err)
	}
	f, err := vol.Create(pfs.Spec{Name: "data", RecordSize: 64, NumRecords: 128})
	if err != nil {
		t.Fatal(err)
	}
	var inconsistent, consistent bool
	e.Go("demo", func(p *sim.Proc) {
		var derr error
		inconsistent, consistent, derr = RollbackDemo(p, disks, f, 1)
		if derr != nil {
			t.Error(derr)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !inconsistent {
		t.Fatal("single-drive restore should corrupt the striped file (§5)")
	}
	if !consistent {
		t.Fatal("whole-array rollback should restore consistency")
	}
}

func TestWriteVerifyPattern(t *testing.T) {
	e := sim.NewEngine()
	_, vol, err := NewPlainArray(e, 2, device.Geometry{BlockSize: 256, BlocksPerCyl: 8, Cylinders: 64})
	if err != nil {
		t.Fatal(err)
	}
	f, err := vol.Create(pfs.Spec{Name: "p", RecordSize: 64, NumRecords: 32})
	if err != nil {
		t.Fatal(err)
	}
	e.Go("t", func(p *sim.Proc) {
		if err := WritePattern(p, f, 1); err != nil {
			t.Error(err)
		}
		if err := VerifyPattern(p, f, 1); err != nil {
			t.Error(err)
		}
		if err := VerifyPattern(p, f, 2); err == nil {
			t.Error("wrong seed verified")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}
