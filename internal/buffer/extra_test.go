package buffer

import (
	"testing"

	"repro/internal/sim"
)

func TestSeqWriterValidation(t *testing.T) {
	flush := func(sim.Context, int64, []byte) error { return nil }
	if _, err := NewSeqWriter(flush, 0, 1, 1); err == nil {
		t.Fatal("zero block size accepted")
	}
	if _, err := NewSeqWriter(flush, 8, 0, 1); err == nil {
		t.Fatal("zero buffers accepted")
	}
	if _, err := NewSeqWriter(flush, 8, 1, -1); err == nil {
		t.Fatal("negative writers accepted")
	}
	// writers > nbufs clamps rather than errors.
	w, err := NewSeqWriter(flush, 8, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if w.writers != 2 {
		t.Fatalf("writers = %d, want clamped 2", w.writers)
	}
}

func TestSeqReaderClampReaders(t *testing.T) {
	r, err := NewSeqReader(memFetch(0), 8, 4, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if r.readers != 2 {
		t.Fatalf("readers = %d, want clamped 2", r.readers)
	}
}

func TestSeqWriterSynchronousBufferExhaustion(t *testing.T) {
	// In synchronous mode, Acquire without Submit exhausts the pool and
	// must error rather than hang.
	flush := func(sim.Context, int64, []byte) error { return nil }
	w, err := NewSeqWriter(flush, 8, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx := sim.NewWall()
	if _, err := w.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Acquire(ctx); err == nil {
		t.Fatal("leaked buffer not detected")
	}
}

func TestSeqReaderSynchronousBufferLeak(t *testing.T) {
	r, err := NewSeqReader(memFetch(0), 8, 4, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx := sim.NewWall()
	if _, _, err := r.Next(ctx); err != nil {
		t.Fatal(err)
	}
	// Second Next without Release must error (single buffer).
	if _, _, err := r.Next(ctx); err == nil {
		t.Fatal("leaked buffer not detected")
	}
}

func TestCacheOvercommitWhenAllBusy(t *testing.T) {
	// Capacity 1 with two concurrent misses on different blocks: the
	// second must overcommit rather than deadlock or fail.
	e := sim.NewEngine()
	fetch := func(ctx sim.Context, idx int64, buf []byte) error {
		ctx.Sleep(1000)
		return nil
	}
	c, err := NewCache(fetch, func(sim.Context, int64, []byte) error { return nil }, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		idx := int64(i)
		e.Go("r", func(p *sim.Proc) {
			if err := c.With(p, idx, false, func([]byte) error { return nil }); err != nil {
				t.Error(err)
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCacheEvictionOrderDeterministic(t *testing.T) {
	// Flush order must be ascending block index regardless of insert
	// order (determinism of virtual-time runs).
	var flushed []int64
	flush := func(ctx sim.Context, idx int64, buf []byte) error {
		flushed = append(flushed, idx)
		return nil
	}
	c, err := NewCache(func(sim.Context, int64, []byte) error { return nil }, flush, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	ctx := sim.NewWall()
	for _, idx := range []int64{5, 1, 3, 2} {
		if err := c.With(ctx, idx, true, func([]byte) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	want := []int64{1, 2, 3, 5}
	for i := range want {
		if flushed[i] != want[i] {
			t.Fatalf("flush order %v, want %v", flushed, want)
		}
	}
}
