package buffer

import (
	"fmt"
	"testing"

	"repro/internal/sim"
)

// spanBackend instruments a fake store: it counts fetch calls of each
// kind so tests can assert the batch path was taken.
type spanBackend struct {
	blockSize  int
	fetches    int // single-block Fetch calls
	spans      int // FetchSpan calls
	spanBlocks int // blocks moved by FetchSpan calls
	flushes    int
}

func (b *spanBackend) fetch(ctx sim.Context, idx int64, buf []byte) error {
	b.fetches++
	for i := range buf {
		buf[i] = byte(idx)
	}
	return nil
}

func (b *spanBackend) fetchSpan(ctx sim.Context, idxs []int64, buf []byte) error {
	b.spans++
	b.spanBlocks += len(idxs)
	for i, idx := range idxs {
		for j := 0; j < b.blockSize; j++ {
			buf[i*b.blockSize+j] = byte(idx)
		}
	}
	return nil
}

func (b *spanBackend) flush(ctx sim.Context, idx int64, buf []byte) error {
	b.flushes++
	return nil
}

func newSpanCache(t *testing.T, capacity int) (*Cache, *spanBackend) {
	t.Helper()
	be := &spanBackend{blockSize: 16}
	c, err := NewCache(be.fetch, be.flush, be.blockSize, capacity)
	if err != nil {
		t.Fatal(err)
	}
	c.SetFetchSpan(be.fetchSpan)
	return c, be
}

// TestFaultInBatchesMisses asserts a span of absent blocks is fetched by
// one FetchSpan call and subsequent accesses are hits.
func TestFaultInBatchesMisses(t *testing.T) {
	c, be := newSpanCache(t, 8)
	ctx := sim.NewWall()
	idxs := []int64{3, 5, 6, 9}
	if err := c.FaultIn(ctx, idxs); err != nil {
		t.Fatal(err)
	}
	if be.spans != 1 || be.spanBlocks != 4 || be.fetches != 0 {
		t.Fatalf("FaultIn used %d span calls (%d blocks) and %d single fetches; want 1 span of 4",
			be.spans, be.spanBlocks, be.fetches)
	}
	for _, idx := range idxs {
		idx := idx
		err := c.With(ctx, idx, false, func(buf []byte) error {
			if buf[0] != byte(idx) {
				return fmt.Errorf("block %d holds %d", idx, buf[0])
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if s := c.Stats(); s.Hits != 4 || s.Misses != 4 {
		t.Fatalf("stats = %+v, want 4 hits (post-fault) and 4 misses (the faulted blocks)", s)
	}
	if be.fetches != 0 {
		t.Fatalf("%d single-block fetches after FaultIn; want 0", be.fetches)
	}
}

// TestFaultInSkipsResident asserts resident blocks are neither refetched
// nor evicted by a fault that fills the rest of the cache.
func TestFaultInSkipsResident(t *testing.T) {
	c, be := newSpanCache(t, 4)
	ctx := sim.NewWall()
	if err := c.With(ctx, 7, false, func([]byte) error { return nil }); err != nil {
		t.Fatal(err)
	}
	be.fetches = 0
	if err := c.FaultIn(ctx, []int64{2, 4, 7, 8}); err != nil {
		t.Fatal(err)
	}
	if be.spans != 1 || be.spanBlocks != 3 {
		t.Fatalf("fault fetched %d blocks in %d calls; want 3 in 1 (7 already resident)", be.spanBlocks, be.spans)
	}
	if c.Resident() != 4 {
		t.Fatalf("%d resident, want 4", c.Resident())
	}
	hits := c.Stats().Hits
	if err := c.With(ctx, 7, false, func([]byte) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if c.Stats().Hits != hits+1 {
		t.Fatal("resident block 7 was evicted by FaultIn")
	}
}

// TestFaultInClampsToCapacity asserts a span larger than the cache only
// faults capacity blocks (the rest fall back to per-block fetches).
func TestFaultInClampsToCapacity(t *testing.T) {
	c, be := newSpanCache(t, 3)
	ctx := sim.NewWall()
	if err := c.FaultIn(ctx, []int64{1, 2, 3, 4, 5}); err != nil {
		t.Fatal(err)
	}
	if be.spanBlocks != 3 {
		t.Fatalf("faulted %d blocks into a 3-block cache, want 3", be.spanBlocks)
	}
	if c.Resident() != 3 {
		t.Fatalf("%d resident, want 3", c.Resident())
	}
}

// TestFaultInWritesBack asserts dirty victims are flushed when a fault
// needs their slots.
func TestFaultInWritesBack(t *testing.T) {
	c, be := newSpanCache(t, 2)
	ctx := sim.NewWall()
	for idx := int64(0); idx < 2; idx++ {
		if err := c.With(ctx, idx, true, func([]byte) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.FaultIn(ctx, []int64{10, 11}); err != nil {
		t.Fatal(err)
	}
	if be.flushes != 2 {
		t.Fatalf("%d write-backs, want 2 (both dirty victims)", be.flushes)
	}
}

// TestFaultInWithoutFetchSpan degrades to per-block fetches.
func TestFaultInWithoutFetchSpan(t *testing.T) {
	be := &spanBackend{blockSize: 16}
	c, err := NewCache(be.fetch, be.flush, be.blockSize, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.FaultIn(sim.NewWall(), []int64{1, 4}); err != nil {
		t.Fatal(err)
	}
	if be.fetches != 2 || c.Resident() != 2 {
		t.Fatalf("fallback faulted %d blocks via %d fetches, want 2 via 2", c.Resident(), be.fetches)
	}
}
