// Package buffer implements the paper's §4 buffering techniques:
//
//   - SeqReader: multiple buffering with read-ahead for sequential
//     streams ("since the order of accesses is predictable, reading ahead
//     ... can be used to overlap I/O operations with computation").
//     Prefetching is performed by dedicated I/O processes, the paper's
//     "dedicated I/O processors".
//   - SeqWriter: deferred (behind) writing for sequential output streams.
//   - Cache: an LRU block cache "helpful when there is some locality of
//     reference, as in the PDA organization".
//
// SeqReader and SeqWriter also come in extent form (NewSeqReaderExtent,
// NewSeqWriterExtent): the streaming unit becomes a run of up to E
// blocks fetched or flushed by one FetchRun/FlushRun call, so a
// coalescing backend turns every extent into a single device request.
//
// All three are engine-aware: under a sim.Engine they overlap transfers
// with the caller's computation in virtual time; without one they degrade
// to synchronous operation (single-goroutine use only).
package buffer

import (
	"container/list"
	"errors"
	"fmt"
	"io"
	"sort"

	"repro/internal/sim"
)

// Fetch reads stream block idx into buf (len(buf) = block size).
type Fetch func(ctx sim.Context, idx int64, buf []byte) error

// FlushFn writes stream block idx from buf.
type FlushFn func(ctx sim.Context, idx int64, buf []byte) error

// FetchRun reads the run of n stream blocks starting at block first into
// buf (len(buf) = n × block size), ideally as one coalesced device
// request (blockio.Set.ReadRange).
type FetchRun func(ctx sim.Context, first int64, n int, buf []byte) error

// FlushRun writes the run of n stream blocks starting at block first
// from buf, the write counterpart of FetchRun.
type FlushRun func(ctx sim.Context, first int64, n int, buf []byte) error

// FetchSpan reads the len(idxs) blocks listed in idxs into buf, the i-th
// landing at buf[i×blockSize:]. The indices are ascending and distinct
// but need not be contiguous; a vectored backend (blockio.Set.ReadVec)
// coalesces physically adjacent blocks into single device requests.
type FetchSpan func(ctx sim.Context, idxs []int64, buf []byte) error

// fetched is one prefetched block's future: the prefetcher enqueues it
// on the filled queue at claim time (so consumers receive blocks in
// stream order) and completes it when the fetch lands.
type fetched struct {
	idx  int64
	buf  []byte
	err  error
	done bool
	wq   sim.WaitQueue
}

// SeqReader streams blocks 0..total-1 in order through a fixed pool of
// buffers, prefetching ahead of the consumer. Multiple consumers may call
// Next concurrently under an engine (each receives a distinct block, in
// claim order) — this is the substrate for shared self-scheduled reads.
//
// Under an engine the reader is built on two sim.Queues — the same
// request-queue machinery the I/O server uses: free buffers flow
// producer-ward through freeq, and fetched-block futures flow
// consumer-ward through fillq in claim order.
type SeqReader struct {
	fetch     Fetch
	blockSize int
	total     int64
	nbufs     int
	readers   int // prefetch processes; 0 = synchronous on Next

	started   bool
	closed    bool
	free      [][]byte   // synchronous-path free list (engine moves it into freeq)
	freeq     *sim.Queue // []byte, capacity nbufs
	fillq     *sim.Queue // *fetched, in claim order
	nextFetch int64
	nextServe int64
}

// NewSeqReader builds a reader of total blocks of blockSize bytes using
// nbufs buffers and `readers` prefetch processes. With readers == 0 (or
// when used without an engine) each Next performs its fetch
// synchronously — the paper's unbuffered baseline.
func NewSeqReader(fetch Fetch, blockSize int, total int64, nbufs, readers int) (*SeqReader, error) {
	if blockSize <= 0 {
		return nil, fmt.Errorf("buffer: block size %d", blockSize)
	}
	if nbufs < 1 {
		return nil, fmt.Errorf("buffer: need at least 1 buffer, got %d", nbufs)
	}
	if readers < 0 {
		return nil, fmt.Errorf("buffer: negative reader count")
	}
	if readers > nbufs {
		readers = nbufs
	}
	r := &SeqReader{
		fetch:     fetch,
		blockSize: blockSize,
		total:     total,
		nbufs:     nbufs,
		readers:   readers,
	}
	for i := 0; i < nbufs; i++ {
		r.free = append(r.free, make([]byte, blockSize))
	}
	return r, nil
}

// NewSeqReaderExtent builds a reader whose streaming unit is an extent
// of up to `extent` blocks: buffers are extent × blockSize bytes, and
// each prefetch covers one whole extent — blocks [e·extent,
// min((e+1)·extent, total)) — in a single FetchRun call, so a coalescing
// fetch pays the device's per-request overhead once per extent instead
// of once per block. Next yields whole extents (the index is the extent
// number; the final extent may cover fewer blocks, and only its valid
// prefix of the buffer is filled).
func NewSeqReaderExtent(fetch FetchRun, blockSize int, total int64, extent, nbufs, readers int) (*SeqReader, error) {
	if extent < 1 {
		extent = 1
	}
	if blockSize <= 0 {
		return nil, fmt.Errorf("buffer: block size %d", blockSize)
	}
	extents := (total + int64(extent) - 1) / int64(extent)
	wrapped := func(ctx sim.Context, e int64, buf []byte) error {
		first := e * int64(extent)
		n := int64(extent)
		if first+n > total {
			n = total - first
		}
		return fetch(ctx, first, int(n), buf[:n*int64(blockSize)])
	}
	return NewSeqReader(wrapped, blockSize*extent, extents, nbufs, readers)
}

// startPrefetch launches the dedicated I/O processes (engine mode
// only), moving the buffer pool into the queues. Each prefetcher claims
// the next block, publishes its future on fillq (claim and publish
// never park, so fillq stays in stream order — fillq is unbounded for
// exactly that reason; the buffer pool is what bounds read-ahead), then
// fetches and completes the future.
func (r *SeqReader) startPrefetch(p *sim.Proc) {
	r.started = true
	r.freeq = sim.NewQueue(r.nbufs)
	r.fillq = sim.NewQueue(1 << 30)
	for _, b := range r.free {
		r.freeq.Put(p, b)
	}
	r.free = nil
	for i := 0; i < r.readers; i++ {
		p.Engine().Go("prefetch", func(io *sim.Proc) {
			for {
				if r.closed || r.nextFetch >= r.total {
					return
				}
				v, ok := r.freeq.Get(io)
				if !ok {
					return // reader closed
				}
				buf := v.([]byte)
				if r.closed {
					return // closed while parked; drop the buffer
				}
				if r.nextFetch >= r.total {
					// Stream exhausted while parked: hand the buffer to
					// any sibling still mid-claim and retire.
					r.freeq.Put(io, buf)
					return
				}
				f := &fetched{idx: r.nextFetch, buf: buf}
				r.nextFetch++
				r.fillq.Put(io, f)
				err := r.fetch(io, f.idx, buf)
				if r.closed {
					return // consumer gone; drop the block
				}
				if err != nil {
					f.err, f.buf = err, nil
					r.freeq.Put(io, buf)
				}
				f.done = true
				f.wq.WakeAll(io.Engine())
			}
		})
	}
}

// Next claims and returns the next block in stream order along with its
// index. The caller must Release the buffer when done. At end of stream
// it returns io.EOF.
func (r *SeqReader) Next(ctx sim.Context) ([]byte, int64, error) {
	if r.closed {
		return nil, 0, fmt.Errorf("buffer: reader closed")
	}
	if r.nextServe >= r.total {
		return nil, 0, io.EOF
	}
	p, engine := ctx.(*sim.Proc)
	if !engine || r.readers == 0 {
		// Synchronous path: fetch directly into a free buffer.
		idx := r.nextServe
		r.nextServe++
		if len(r.free) == 0 {
			return nil, idx, fmt.Errorf("buffer: no free buffer (missing Release?)")
		}
		buf := r.free[len(r.free)-1]
		r.free = r.free[:len(r.free)-1]
		if err := r.fetch(ctx, idx, buf); err != nil {
			r.free = append(r.free, buf)
			return nil, idx, err
		}
		return buf, idx, nil
	}
	if !r.started {
		r.startPrefetch(p)
	}
	r.nextServe++
	// Futures arrive in claim order, so the queue's head is this
	// consumer's block; park on the future until its fetch lands.
	v, ok := r.fillq.Get(p)
	if !ok {
		return nil, r.nextServe - 1, fmt.Errorf("buffer: reader closed")
	}
	f := v.(*fetched)
	for !f.done {
		f.wq.Wait(p)
	}
	if f.err != nil {
		return nil, f.idx, f.err
	}
	return f.buf, f.idx, nil
}

// Release returns a buffer obtained from Next to the pool.
func (r *SeqReader) Release(ctx sim.Context, buf []byte) {
	if p, ok := ctx.(*sim.Proc); ok && r.started {
		if r.closed {
			return
		}
		// Never parks: the pool holds at most nbufs buffers.
		r.freeq.Put(p, buf)
		return
	}
	r.free = append(r.free, buf)
}

// Close shuts the reader down; outstanding prefetches complete and are
// discarded, parked prefetchers are released.
func (r *SeqReader) Close(ctx sim.Context) {
	if r.closed {
		return
	}
	r.closed = true
	if p, ok := ctx.(*sim.Proc); ok && r.started {
		r.freeq.Close(p)
		r.fillq.Close(p)
	}
}

// flushItem is a block queued for deferred writing.
type flushItem struct {
	idx int64
	buf []byte
}

// SeqWriter implements deferred writing: the producer fills buffers and
// Submit returns immediately while dedicated writer processes perform the
// transfers. Close drains everything and reports the first errors.
//
// Under an engine the writer is built on two sim.Queues, mirroring
// SeqReader: filled blocks flow writer-ward through queue, drained
// buffers flow back through freeq.
type SeqWriter struct {
	flush     FlushFn
	blockSize int
	nbufs     int
	writers   int

	started bool
	closed  bool
	free    [][]byte   // synchronous-path free list (engine moves it into freeq)
	freeq   *sim.Queue // []byte, capacity nbufs
	queue   *sim.Queue // flushItem, capacity nbufs
	errs    []error
	g       sim.Group
}

// NewSeqWriter builds a deferred writer with nbufs buffers and `writers`
// flush processes (0 = synchronous Submit).
func NewSeqWriter(flush FlushFn, blockSize, nbufs, writers int) (*SeqWriter, error) {
	if blockSize <= 0 {
		return nil, fmt.Errorf("buffer: block size %d", blockSize)
	}
	if nbufs < 1 {
		return nil, fmt.Errorf("buffer: need at least 1 buffer, got %d", nbufs)
	}
	if writers < 0 {
		return nil, fmt.Errorf("buffer: negative writer count")
	}
	if writers > nbufs {
		writers = nbufs
	}
	w := &SeqWriter{flush: flush, blockSize: blockSize, nbufs: nbufs, writers: writers}
	for i := 0; i < nbufs; i++ {
		w.free = append(w.free, make([]byte, blockSize))
	}
	return w, nil
}

// NewSeqWriterExtent builds a deferred writer whose streaming unit is an
// extent of up to `extent` blocks over a stream of total blocks: the
// producer assembles extent × blockSize buffers (Submit index = extent
// number) and each flush covers the whole extent in a single FlushRun
// call — one coalesced device request per extent. The final extent is
// clamped to the stream length, so only its valid prefix is written.
func NewSeqWriterExtent(flush FlushRun, blockSize int, total int64, extent, nbufs, writers int) (*SeqWriter, error) {
	if extent < 1 {
		extent = 1
	}
	if blockSize <= 0 {
		return nil, fmt.Errorf("buffer: block size %d", blockSize)
	}
	wrapped := func(ctx sim.Context, e int64, buf []byte) error {
		first := e * int64(extent)
		n := int64(extent)
		if first+n > total {
			n = total - first
		}
		if n <= 0 {
			return fmt.Errorf("buffer: extent %d beyond stream of %d blocks", e, total)
		}
		return flush(ctx, first, int(n), buf[:n*int64(blockSize)])
	}
	return NewSeqWriter(wrapped, blockSize*extent, nbufs, writers)
}

// startWriters launches the flush processes (engine mode only), moving
// the buffer pool into the queues. Writers drain the flush queue until
// Close closes it, returning each drained buffer to the pool.
func (w *SeqWriter) startWriters(p *sim.Proc) {
	w.started = true
	w.freeq = sim.NewQueue(w.nbufs)
	w.queue = sim.NewQueue(w.nbufs)
	for _, b := range w.free {
		w.freeq.Put(p, b)
	}
	w.free = nil
	for i := 0; i < w.writers; i++ {
		w.g.Spawn(p.Engine(), "write-behind", func(io *sim.Proc) {
			for {
				v, ok := w.queue.Get(io)
				if !ok {
					return
				}
				item := v.(flushItem)
				if err := w.flush(io, item.idx, item.buf); err != nil {
					w.errs = append(w.errs, fmt.Errorf("buffer: flush block %d: %w", item.idx, err))
				}
				w.freeq.Put(io, item.buf)
			}
		})
	}
}

// Acquire obtains an empty buffer to fill (waiting for one under an
// engine; erroring if exhausted without one).
func (w *SeqWriter) Acquire(ctx sim.Context) ([]byte, error) {
	if w.closed {
		return nil, fmt.Errorf("buffer: writer closed")
	}
	if p, engine := ctx.(*sim.Proc); engine && w.writers > 0 && w.started {
		v, ok := w.freeq.Get(p)
		if !ok {
			return nil, fmt.Errorf("buffer: writer closed")
		}
		return v.([]byte), nil
	}
	if len(w.free) == 0 {
		return nil, fmt.Errorf("buffer: no free buffer (synchronous writer leak?)")
	}
	buf := w.free[len(w.free)-1]
	w.free = w.free[:len(w.free)-1]
	return buf, nil
}

// Submit hands a filled buffer over for (deferred) writing as stream
// block idx. Under an engine with writer processes it returns before the
// transfer; otherwise it flushes synchronously.
func (w *SeqWriter) Submit(ctx sim.Context, idx int64, buf []byte) error {
	if w.closed {
		return fmt.Errorf("buffer: writer closed")
	}
	p, engine := ctx.(*sim.Proc)
	if !engine || w.writers == 0 {
		err := w.flush(ctx, idx, buf)
		w.free = append(w.free, buf)
		return err
	}
	if !w.started {
		w.startWriters(p)
	}
	// Never parks: every queued item holds a distinct pool buffer, so
	// the queue holds at most nbufs items.
	w.queue.Put(p, flushItem{idx: idx, buf: buf})
	return nil
}

// Close drains pending writes, stops the writer processes and returns
// any accumulated flush errors.
func (w *SeqWriter) Close(ctx sim.Context) error {
	if w.closed {
		return nil
	}
	w.closed = true
	if p, ok := ctx.(*sim.Proc); ok && w.started {
		w.queue.Close(p)
		w.g.Wait(p)
	}
	return errors.Join(w.errs...)
}

// CacheStats counts cache outcomes.
type CacheStats struct {
	Hits       int64
	Misses     int64
	Evictions  int64
	WriteBacks int64
}

// HitRate reports hits / (hits+misses), zero when empty.
func (s CacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// entry is a resident cache block.
type entry struct {
	idx   int64
	buf   []byte
	dirty bool
	elem  *list.Element
}

// Cache is a write-back LRU block cache keyed by block index. Under an
// engine concurrent readers coalesce misses per block; without one it
// must be used from a single goroutine.
type Cache struct {
	fetch     Fetch
	fetchSpan FetchSpan // optional vectored batch fetch (FaultIn)
	flush     FlushFn
	blockSize int
	capacity  int

	entries map[int64]*entry
	lru     *list.List // front = most recent
	busy    map[int64]*sim.WaitQueue
	stats   CacheStats
}

// NewCache builds a cache of capacity blocks.
func NewCache(fetch Fetch, flush FlushFn, blockSize, capacity int) (*Cache, error) {
	if blockSize <= 0 {
		return nil, fmt.Errorf("buffer: block size %d", blockSize)
	}
	if capacity < 1 {
		return nil, fmt.Errorf("buffer: cache capacity %d", capacity)
	}
	return &Cache{
		fetch:     fetch,
		flush:     flush,
		blockSize: blockSize,
		capacity:  capacity,
		entries:   make(map[int64]*entry),
		lru:       list.New(),
		busy:      make(map[int64]*sim.WaitQueue),
	}, nil
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() CacheStats { return c.stats }

// SetFetchSpan installs a vectored batch fetch used by FaultIn. Without
// one, FaultIn degrades to per-block fetches.
func (c *Cache) SetFetchSpan(fs FetchSpan) { c.fetchSpan = fs }

// FaultIn brings the listed blocks (ascending, distinct) into the cache,
// fetching all the missing ones with a single vectored FetchSpan call —
// the ranged fault path: a request spanning several absent blocks pays
// the device's per-request overhead once per physically contiguous run
// instead of once per block. Blocks already resident are touched first
// (made most-recent), so the fault's evictions spare them whenever the
// listed span fits the cache. At most capacity blocks are faulted per
// call; callers chunk larger spans.
func (c *Cache) FaultIn(ctx sim.Context, idxs []int64) error {
	for _, idx := range idxs {
		c.waitNotBusy(ctx, idx)
		if e, ok := c.entries[idx]; ok {
			c.lru.MoveToFront(e.elem)
		}
	}
	var missing []int64
	for _, idx := range idxs {
		c.waitNotBusy(ctx, idx)
		if _, ok := c.entries[idx]; ok {
			continue
		}
		if c.busy[idx] != nil || len(missing) >= c.capacity {
			continue
		}
		// Reserve the slot before parking in eviction, so concurrent
		// accessors wait for our fetch instead of duplicating it.
		c.setBusy(idx)
		missing = append(missing, idx)
		for len(c.entries)+len(c.busy) > c.capacity && c.lru.Len() > 0 {
			if err := c.evictOne(ctx); err != nil {
				for _, m := range missing {
					c.clearBusy(ctx, m)
				}
				return err
			}
		}
	}
	if len(missing) == 0 {
		return nil
	}
	c.stats.Misses += int64(len(missing))
	flat := make([]byte, len(missing)*c.blockSize)
	var err error
	if c.fetchSpan != nil {
		err = c.fetchSpan(ctx, missing, flat)
	} else {
		for i, idx := range missing {
			if err = c.fetch(ctx, idx, flat[i*c.blockSize:(i+1)*c.blockSize]); err != nil {
				break
			}
		}
	}
	for i, idx := range missing {
		c.clearBusy(ctx, idx)
		if err != nil {
			continue
		}
		e := &entry{idx: idx, buf: flat[i*c.blockSize : (i+1)*c.blockSize]}
		e.elem = c.lru.PushFront(e)
		c.entries[idx] = e
	}
	if err != nil {
		return fmt.Errorf("buffer: fault in %d blocks: %w", len(missing), err)
	}
	return nil
}

// waitNotBusy parks until no fetch/write-back is in flight for idx.
func (c *Cache) waitNotBusy(ctx sim.Context, idx int64) {
	p, ok := ctx.(*sim.Proc)
	if !ok {
		return
	}
	for {
		wq := c.busy[idx]
		if wq == nil {
			return
		}
		wq.Wait(p)
	}
}

// setBusy marks idx in flight.
func (c *Cache) setBusy(idx int64) {
	c.busy[idx] = &sim.WaitQueue{}
}

// clearBusy releases waiters for idx.
func (c *Cache) clearBusy(ctx sim.Context, idx int64) {
	wq := c.busy[idx]
	delete(c.busy, idx)
	if p, ok := ctx.(*sim.Proc); ok && wq != nil {
		wq.WakeAll(p.Engine())
	}
}

// evictOne writes back and drops the least-recently-used entry.
func (c *Cache) evictOne(ctx sim.Context) error {
	back := c.lru.Back()
	if back == nil {
		return fmt.Errorf("buffer: cache eviction with empty LRU")
	}
	victim := back.Value.(*entry)
	c.lru.Remove(back)
	delete(c.entries, victim.idx)
	c.stats.Evictions++
	if victim.dirty {
		c.stats.WriteBacks++
		c.setBusy(victim.idx)
		err := c.flush(ctx, victim.idx, victim.buf)
		c.clearBusy(ctx, victim.idx)
		if err != nil {
			return fmt.Errorf("buffer: write back block %d: %w", victim.idx, err)
		}
	}
	return nil
}

// With runs fn on the cached contents of block idx, faulting it in if
// needed; dirty marks the block modified (write-back on eviction or
// Flush). fn must not block: it runs while the cache entry is unpinned.
func (c *Cache) With(ctx sim.Context, idx int64, dirty bool, fn func(buf []byte) error) error {
	for {
		c.waitNotBusy(ctx, idx)
		if e, ok := c.entries[idx]; ok {
			c.stats.Hits++
			c.lru.MoveToFront(e.elem)
			e.dirty = e.dirty || dirty
			return fn(e.buf)
		}
		// Miss: make room, then fetch. Both park, so re-check residency
		// afterwards (another process may have raced us to it).
		c.stats.Misses++
		for len(c.entries)+len(c.busy) >= c.capacity && c.lru.Len() > 0 {
			if err := c.evictOne(ctx); err != nil {
				return err
			}
		}
		if _, ok := c.entries[idx]; ok || c.busy[idx] != nil {
			c.stats.Misses-- // someone else brought it in; recount as hit
			continue
		}
		buf := make([]byte, c.blockSize)
		c.setBusy(idx)
		err := c.fetch(ctx, idx, buf)
		c.clearBusy(ctx, idx)
		if err != nil {
			return fmt.Errorf("buffer: fetch block %d: %w", idx, err)
		}
		e := &entry{idx: idx, buf: buf, dirty: dirty}
		e.elem = c.lru.PushFront(e)
		c.entries[idx] = e
		return fn(e.buf)
	}
}

// Flush writes back all dirty entries (they stay resident, clean).
// Entries are flushed in ascending block order so virtual-time runs are
// deterministic.
func (c *Cache) Flush(ctx sim.Context) error {
	idxs := make([]int64, 0, len(c.entries))
	for idx, e := range c.entries {
		if e.dirty {
			idxs = append(idxs, idx)
		}
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	var errs []error
	for _, idx := range idxs {
		e, ok := c.entries[idx]
		if !ok || !e.dirty {
			continue // evicted or cleaned while we flushed earlier blocks
		}
		c.stats.WriteBacks++
		c.setBusy(idx)
		err := c.flush(ctx, idx, e.buf)
		c.clearBusy(ctx, idx)
		if err != nil {
			errs = append(errs, fmt.Errorf("buffer: flush block %d: %w", idx, err))
			continue
		}
		e.dirty = false
	}
	return errors.Join(errs...)
}

// Resident reports how many blocks are cached.
func (c *Cache) Resident() int { return len(c.entries) }
