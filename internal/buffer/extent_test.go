package buffer

import (
	"io"
	"testing"

	"repro/internal/sim"
)

// TestSeqReaderExtentBoundaries checks that the extent reader issues one
// FetchRun per extent with correct first/n (short final extent) and that
// Next yields extents in order.
func TestSeqReaderExtentBoundaries(t *testing.T) {
	const bs = 8
	const total = 11
	const extent = 4
	type call struct {
		first int64
		n     int
	}
	var calls []call
	fetch := func(ctx sim.Context, first int64, n int, buf []byte) error {
		calls = append(calls, call{first, n})
		if len(buf) != n*bs {
			t.Fatalf("fetch buf len %d for %d blocks", len(buf), n)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < bs; j++ {
				buf[i*bs+j] = byte(first + int64(i))
			}
		}
		return nil
	}
	r, err := NewSeqReaderExtent(fetch, bs, total, extent, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx := sim.NewWall()
	for e := int64(0); ; e++ {
		buf, idx, err := r.Next(ctx)
		if err == io.EOF {
			if e != 3 {
				t.Fatalf("EOF after %d extents, want 3", e)
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if idx != e {
			t.Fatalf("extent %d out of order (got %d)", e, idx)
		}
		n := extent
		if rem := total - e*extent; rem < int64(n) {
			n = int(rem)
		}
		for i := 0; i < n; i++ {
			if buf[i*bs] != byte(e*extent+int64(i)) {
				t.Fatalf("extent %d block %d tagged %d", e, i, buf[i*bs])
			}
		}
		r.Release(ctx, buf)
	}
	want := []call{{0, 4}, {4, 4}, {8, 3}}
	if len(calls) != len(want) {
		t.Fatalf("calls = %v, want %v", calls, want)
	}
	for i := range want {
		if calls[i] != want[i] {
			t.Fatalf("call %d = %v, want %v", i, calls[i], want[i])
		}
	}
}

// TestSeqWriterExtentBoundaries checks the extent writer clamps the
// final extent to the stream length and flushes whole extents.
func TestSeqWriterExtentBoundaries(t *testing.T) {
	const bs = 8
	const total = 10
	const extent = 4
	type call struct {
		first int64
		n     int
	}
	var calls []call
	flush := func(ctx sim.Context, first int64, n int, buf []byte) error {
		calls = append(calls, call{first, n})
		if len(buf) != n*bs {
			t.Fatalf("flush buf len %d for %d blocks", len(buf), n)
		}
		return nil
	}
	w, err := NewSeqWriterExtent(flush, bs, total, extent, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx := sim.NewWall()
	for e := int64(0); e < 3; e++ {
		buf, err := w.Acquire(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if len(buf) != extent*bs {
			t.Fatalf("acquire len %d", len(buf))
		}
		if err := w.Submit(ctx, e, buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(ctx); err != nil {
		t.Fatal(err)
	}
	want := []call{{0, 4}, {4, 4}, {8, 2}}
	if len(calls) != len(want) {
		t.Fatalf("calls = %v, want %v", calls, want)
	}
	for i := range want {
		if calls[i] != want[i] {
			t.Fatalf("call %d = %v, want %v", i, calls[i], want[i])
		}
	}
}

// TestSeqReaderExtentPrefetch runs the extent reader under an engine
// with dedicated prefetchers to cover the asynchronous path.
func TestSeqReaderExtentPrefetch(t *testing.T) {
	const bs = 4
	const total = 9
	const extent = 2
	fetch := func(ctx sim.Context, first int64, n int, buf []byte) error {
		if p, ok := ctx.(*sim.Proc); ok {
			p.Sleep(1)
		}
		for i := 0; i < n; i++ {
			buf[i*bs] = byte(first + int64(i))
		}
		return nil
	}
	e := sim.NewEngine()
	r, err := NewSeqReaderExtent(fetch, bs, total, extent, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	e.Go("consumer", func(p *sim.Proc) {
		for {
			buf, idx, err := r.Next(p)
			if err == io.EOF {
				return
			}
			if err != nil {
				t.Errorf("Next: %v", err)
				return
			}
			n := extent
			if rem := total - idx*extent; rem < int64(n) {
				n = int(rem)
			}
			for i := 0; i < n; i++ {
				got = append(got, buf[i*bs])
			}
			r.Release(p, buf)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != total {
		t.Fatalf("consumed %d blocks, want %d", len(got), total)
	}
	for i, b := range got {
		if b != byte(i) {
			t.Fatalf("block %d tagged %d", i, b)
		}
	}
}
