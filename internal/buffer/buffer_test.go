package buffer

import (
	"errors"
	"io"
	"testing"
	"time"

	"repro/internal/sim"
)

// memFetch serves blocks whose first byte is the block index, charging
// cost of virtual time per fetch.
func memFetch(cost time.Duration) Fetch {
	return func(ctx sim.Context, idx int64, buf []byte) error {
		ctx.Sleep(cost)
		for i := range buf {
			buf[i] = byte(idx)
		}
		return nil
	}
}

func TestSeqReaderValidation(t *testing.T) {
	f := memFetch(0)
	if _, err := NewSeqReader(f, 0, 1, 1, 1); err == nil {
		t.Fatal("zero block size accepted")
	}
	if _, err := NewSeqReader(f, 8, 1, 0, 1); err == nil {
		t.Fatal("zero buffers accepted")
	}
	if _, err := NewSeqReader(f, 8, 1, 1, -1); err == nil {
		t.Fatal("negative readers accepted")
	}
}

func TestSeqReaderSynchronousOrder(t *testing.T) {
	r, err := NewSeqReader(memFetch(0), 8, 5, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx := sim.NewWall()
	for want := int64(0); want < 5; want++ {
		buf, idx, err := r.Next(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if idx != want || buf[0] != byte(want) {
			t.Fatalf("got block %d (first byte %d), want %d", idx, buf[0], want)
		}
		r.Release(ctx, buf)
	}
	if _, _, err := r.Next(ctx); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestSeqReaderEngineOrderAndData(t *testing.T) {
	e := sim.NewEngine()
	r, err := NewSeqReader(memFetch(time.Millisecond), 8, 20, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	var got []int64
	e.Go("consumer", func(p *sim.Proc) {
		defer r.Close(p)
		for {
			buf, idx, err := r.Next(p)
			if err == io.EOF {
				return
			}
			if err != nil {
				t.Error(err)
				return
			}
			if buf[0] != byte(idx) {
				t.Errorf("block %d has byte %d", idx, buf[0])
			}
			got = append(got, idx)
			r.Release(p, buf)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 20 {
		t.Fatalf("consumed %d blocks", len(got))
	}
	for i, idx := range got {
		if idx != int64(i) {
			t.Fatalf("out of order at %d: %v", i, got)
		}
	}
}

func TestSeqReaderOverlapsComputeWithIO(t *testing.T) {
	// With 1 buffer, fetch (1ms) and compute (1ms) serialize: ~2ms/block.
	// With 2+ buffers and a prefetcher, they overlap: ~1ms/block.
	run := func(nbufs, readers int) time.Duration {
		e := sim.NewEngine()
		r, err := NewSeqReader(memFetch(time.Millisecond), 8, 10, nbufs, readers)
		if err != nil {
			t.Fatal(err)
		}
		var end time.Duration
		e.Go("consumer", func(p *sim.Proc) {
			defer r.Close(p)
			for {
				buf, _, err := r.Next(p)
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Error(err)
					break
				}
				p.Sleep(time.Millisecond) // compute on the block
				r.Release(p, buf)
			}
			end = p.Now()
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return end
	}
	single := run(1, 1)
	double := run(2, 1)
	if single < 19*time.Millisecond {
		t.Fatalf("single buffering finished too fast: %v", single)
	}
	if double >= single {
		t.Fatalf("double buffering %v not faster than single %v", double, single)
	}
	if double > 12*time.Millisecond {
		t.Fatalf("double buffering failed to overlap: %v", double)
	}
}

func TestSeqReaderMultipleConsumers(t *testing.T) {
	// Two consumers share the stream; every block is delivered exactly once.
	e := sim.NewEngine()
	r, err := NewSeqReader(memFetch(time.Millisecond), 8, 30, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int64]int)
	var done sim.Group
	consume := func(p *sim.Proc) {
		for {
			buf, idx, err := r.Next(p)
			if err == io.EOF {
				return
			}
			if err != nil {
				t.Error(err)
				return
			}
			seen[idx]++
			p.Sleep(time.Millisecond)
			r.Release(p, buf)
		}
	}
	for i := 0; i < 2; i++ {
		done.Spawn(e, "consumer", consume)
	}
	e.Go("closer", func(p *sim.Proc) {
		done.Wait(p)
		r.Close(p)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 30 {
		t.Fatalf("delivered %d distinct blocks, want 30", len(seen))
	}
	for idx, n := range seen {
		if n != 1 {
			t.Fatalf("block %d delivered %d times", idx, n)
		}
	}
}

func TestSeqReaderFetchError(t *testing.T) {
	boom := errors.New("boom")
	f := func(ctx sim.Context, idx int64, buf []byte) error {
		if idx == 3 {
			return boom
		}
		return nil
	}
	e := sim.NewEngine()
	r, err := NewSeqReader(f, 8, 5, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	var sawErr error
	e.Go("consumer", func(p *sim.Proc) {
		defer r.Close(p)
		for {
			buf, _, err := r.Next(p)
			if err == io.EOF {
				return
			}
			if err != nil {
				sawErr = err
				return
			}
			r.Release(p, buf)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(sawErr, boom) {
		t.Fatalf("want boom, got %v", sawErr)
	}
}

func TestSeqReaderCloseUnblocksPrefetchers(t *testing.T) {
	// Consumer abandons the stream early; Run must not deadlock.
	e := sim.NewEngine()
	r, err := NewSeqReader(memFetch(time.Millisecond), 8, 100, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	e.Go("consumer", func(p *sim.Proc) {
		buf, _, err := r.Next(p)
		if err != nil {
			t.Error(err)
		}
		r.Release(p, buf)
		r.Close(p)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSeqWriterSynchronous(t *testing.T) {
	var wrote []int64
	flush := func(ctx sim.Context, idx int64, buf []byte) error {
		wrote = append(wrote, idx)
		return nil
	}
	w, err := NewSeqWriter(flush, 8, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx := sim.NewWall()
	for i := int64(0); i < 5; i++ {
		buf, err := w.Acquire(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Submit(ctx, i, buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if len(wrote) != 5 {
		t.Fatalf("wrote %d blocks", len(wrote))
	}
}

func TestSeqWriterDeferredOverlap(t *testing.T) {
	// Producer computes 1ms then submits; flush costs 1ms. Deferred
	// writing should overlap them (~n ms), synchronous doubles (~2n ms).
	run := func(writers int) time.Duration {
		e := sim.NewEngine()
		flush := func(ctx sim.Context, idx int64, buf []byte) error {
			ctx.Sleep(time.Millisecond)
			return nil
		}
		w, err := NewSeqWriter(flush, 8, 2, writers)
		if err != nil {
			t.Fatal(err)
		}
		var end time.Duration
		e.Go("producer", func(p *sim.Proc) {
			for i := int64(0); i < 10; i++ {
				p.Sleep(time.Millisecond) // compute
				buf, err := w.Acquire(p)
				if err != nil {
					t.Error(err)
					return
				}
				if err := w.Submit(p, i, buf); err != nil {
					t.Error(err)
					return
				}
			}
			if err := w.Close(p); err != nil {
				t.Error(err)
			}
			end = p.Now()
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return end
	}
	sync := run(0)
	deferred := run(1)
	if deferred >= sync {
		t.Fatalf("deferred %v not faster than synchronous %v", deferred, sync)
	}
	if deferred > 12*time.Millisecond {
		t.Fatalf("deferred writing failed to overlap: %v", deferred)
	}
}

func TestSeqWriterCollectsErrors(t *testing.T) {
	boom := errors.New("boom")
	flush := func(ctx sim.Context, idx int64, buf []byte) error {
		if idx == 2 {
			return boom
		}
		return nil
	}
	e := sim.NewEngine()
	w, err := NewSeqWriter(flush, 8, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	var closeErr error
	e.Go("producer", func(p *sim.Proc) {
		for i := int64(0); i < 4; i++ {
			buf, err := w.Acquire(p)
			if err != nil {
				t.Error(err)
				return
			}
			if err := w.Submit(p, i, buf); err != nil {
				t.Error(err)
			}
		}
		closeErr = w.Close(p)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(closeErr, boom) {
		t.Fatalf("Close error = %v, want boom", closeErr)
	}
}

func TestSeqWriterDoubleCloseOK(t *testing.T) {
	w, err := NewSeqWriter(func(sim.Context, int64, []byte) error { return nil }, 8, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx := sim.NewWall()
	if err := w.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Acquire(ctx); err == nil {
		t.Fatal("Acquire after Close accepted")
	}
}

// cacheBacking is a trivial block store for cache tests.
type cacheBacking struct {
	blocks  map[int64][]byte
	fetches int
	flushes int
}

func newCacheBacking() *cacheBacking { return &cacheBacking{blocks: map[int64][]byte{}} }

func (b *cacheBacking) fetch(ctx sim.Context, idx int64, buf []byte) error {
	b.fetches++
	if src, ok := b.blocks[idx]; ok {
		copy(buf, src)
	} else {
		clear(buf)
	}
	return nil
}

func (b *cacheBacking) flush(ctx sim.Context, idx int64, buf []byte) error {
	b.flushes++
	cp := make([]byte, len(buf))
	copy(cp, buf)
	b.blocks[idx] = cp
	return nil
}

func TestCacheValidation(t *testing.T) {
	b := newCacheBacking()
	if _, err := NewCache(b.fetch, b.flush, 0, 1); err == nil {
		t.Fatal("zero block size accepted")
	}
	if _, err := NewCache(b.fetch, b.flush, 8, 0); err == nil {
		t.Fatal("zero capacity accepted")
	}
}

func TestCacheHitMissAndLRU(t *testing.T) {
	b := newCacheBacking()
	c, err := NewCache(b.fetch, b.flush, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	ctx := sim.NewWall()
	touch := func(idx int64) {
		if err := c.With(ctx, idx, false, func(buf []byte) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	touch(1) // miss
	touch(2) // miss
	touch(1) // hit
	touch(3) // miss, evicts 2 (LRU)
	touch(1) // hit (still resident)
	touch(2) // miss again
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 4 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Evictions != 2 {
		t.Fatalf("evictions = %d, want 2", st.Evictions)
	}
	if b.flushes != 0 {
		t.Fatal("clean evictions should not write back")
	}
	if c.Resident() != 2 {
		t.Fatalf("resident = %d", c.Resident())
	}
}

func TestCacheWriteBackOnEvictionAndFlush(t *testing.T) {
	b := newCacheBacking()
	c, err := NewCache(b.fetch, b.flush, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	ctx := sim.NewWall()
	if err := c.With(ctx, 1, true, func(buf []byte) error { buf[0] = 0xaa; return nil }); err != nil {
		t.Fatal(err)
	}
	if err := c.With(ctx, 2, true, func(buf []byte) error { buf[0] = 0xbb; return nil }); err != nil {
		t.Fatal(err)
	}
	// Evict 1 by touching 3.
	if err := c.With(ctx, 3, false, func(buf []byte) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if b.blocks[1] == nil || b.blocks[1][0] != 0xaa {
		t.Fatal("dirty eviction did not write back")
	}
	if err := c.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if b.blocks[2] == nil || b.blocks[2][0] != 0xbb {
		t.Fatal("Flush did not write dirty block")
	}
	// Flushing again writes nothing new.
	n := b.flushes
	if err := c.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if b.flushes != n {
		t.Fatal("second Flush rewrote clean blocks")
	}
}

func TestCacheReadAfterWriteThroughEviction(t *testing.T) {
	b := newCacheBacking()
	c, err := NewCache(b.fetch, b.flush, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx := sim.NewWall()
	if err := c.With(ctx, 5, true, func(buf []byte) error { buf[0] = 42; return nil }); err != nil {
		t.Fatal(err)
	}
	if err := c.With(ctx, 6, false, func(buf []byte) error { return nil }); err != nil {
		t.Fatal(err) // evicts 5
	}
	var got byte
	if err := c.With(ctx, 5, false, func(buf []byte) error { got = buf[0]; return nil }); err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("reread after eviction = %d, want 42", got)
	}
}

func TestCacheCoalescesConcurrentMisses(t *testing.T) {
	// Two processes miss the same block; only one fetch must occur.
	e := sim.NewEngine()
	fetches := 0
	fetch := func(ctx sim.Context, idx int64, buf []byte) error {
		fetches++
		ctx.Sleep(time.Millisecond)
		return nil
	}
	c, err := NewCache(fetch, func(sim.Context, int64, []byte) error { return nil }, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		e.Go("reader", func(p *sim.Proc) {
			if err := c.With(p, 7, false, func(buf []byte) error { return nil }); err != nil {
				t.Error(err)
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fetches != 1 {
		t.Fatalf("fetches = %d, want 1 (coalesced)", fetches)
	}
}

func TestCacheZipfLocalityBeatsUniform(t *testing.T) {
	// Sanity: with a skewed access pattern a small cache achieves a much
	// better hit rate than under uniform access.
	run := func(skew float64) float64 {
		b := newCacheBacking()
		c, err := NewCache(b.fetch, b.flush, 8, 16)
		if err != nil {
			t.Fatal(err)
		}
		ctx := sim.NewWall()
		rng := sim.NewRNG(1)
		z := sim.NewZipf(rng, 256, skew)
		for i := 0; i < 4000; i++ {
			if err := c.With(ctx, int64(z.Next()), false, func([]byte) error { return nil }); err != nil {
				t.Fatal(err)
			}
		}
		return c.Stats().HitRate()
	}
	uniform, skewed := run(0), run(1.2)
	if skewed <= uniform+0.2 {
		t.Fatalf("zipf hit rate %.2f should greatly exceed uniform %.2f", skewed, uniform)
	}
}

func TestCacheFetchErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	c, err := NewCache(
		func(sim.Context, int64, []byte) error { return boom },
		func(sim.Context, int64, []byte) error { return nil }, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.With(sim.NewWall(), 0, false, func([]byte) error { return nil }); !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
}

func TestCacheHitRateZeroWhenEmpty(t *testing.T) {
	var s CacheStats
	if s.HitRate() != 0 {
		t.Fatal("empty HitRate should be 0")
	}
}

func TestSeqReaderManyBuffersStress(t *testing.T) {
	for _, nbufs := range []int{1, 2, 3, 8} {
		for _, readers := range []int{1, 2, 4} {
			e := sim.NewEngine()
			r, err := NewSeqReader(memFetch(100*time.Microsecond), 4, 50, nbufs, readers)
			if err != nil {
				t.Fatal(err)
			}
			count := 0
			e.Go("consumer", func(p *sim.Proc) {
				defer r.Close(p)
				for {
					buf, idx, err := r.Next(p)
					if err == io.EOF {
						return
					}
					if err != nil {
						t.Error(err)
						return
					}
					if buf[0] != byte(idx) {
						t.Errorf("nbufs=%d readers=%d: block %d byte %d", nbufs, readers, idx, buf[0])
					}
					count++
					r.Release(p, buf)
				}
			})
			if err := e.Run(); err != nil {
				t.Fatalf("nbufs=%d readers=%d: %v", nbufs, readers, err)
			}
			if count != 50 {
				t.Fatalf("nbufs=%d readers=%d: consumed %d", nbufs, readers, count)
			}
		}
	}
}
