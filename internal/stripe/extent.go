// Extent (multi-block run) I/O for the redundant stores. A run of rows
// on a visible device is split into maximal segments living on one
// physical drive (parity rotation moves blocks between drives row by
// row), each segment transfers as one coalesced device request, and
// segments proceed in parallel — so the per-request overhead of the
// device model is paid once per contiguous span rather than once per
// block, while preserving the per-row redundancy semantics of
// ReadBlock/WriteBlock.

package stripe

import (
	"errors"
	"fmt"

	"repro/internal/device"
	"repro/internal/sim"
)

// physSeg is a maximal sub-run of rows whose blocks live on one physical
// drive.
type physSeg struct {
	phys int   // physical drive index
	row  int64 // first row (physical block number on the drive)
	off  int   // row offset from the start of the requested run
	n    int   // rows in the segment
}

// segsBy splits rows [b, b+n) into maximal segments with constant
// physOf(row), in row order.
func segsBy(b int64, n int, physOf func(int64) int) []physSeg {
	var segs []physSeg
	for i := 0; i < n; {
		ph := physOf(b + int64(i))
		j := i + 1
		for j < n && physOf(b+int64(j)) == ph {
			j++
		}
		segs = append(segs, physSeg{phys: ph, row: b + int64(i), off: i, n: j - i})
		i = j
	}
	return segs
}

// ReadBlocks implements blockio.Store: the run is read as one coalesced
// request per physical-drive segment (one request total without parity
// rotation), falling back to per-row reconstruction for segments on a
// failed drive.
func (p *Parity) ReadBlocks(ctx sim.Context, dev int, b int64, n int, dst []byte) error {
	bs := p.BlockSize()
	if len(dst) != n*bs {
		return fmt.Errorf("stripe: ReadBlocks dst len %d != %d blocks of %d bytes", len(dst), n, bs)
	}
	if n == 1 {
		return p.ReadBlock(ctx, dev, b, dst)
	}
	segs := segsBy(b, n, func(row int64) int { return p.phys(dev, row) })
	fns := make([]func(sim.Context) error, len(segs))
	for i, sg := range segs {
		sg := sg
		sub := dst[sg.off*bs : (sg.off+sg.n)*bs]
		fns[i] = func(c sim.Context) error {
			err := p.disks[sg.phys].ReadBlocks(c, sg.row, sg.n, sub)
			if err == nil || !errors.Is(err, device.ErrFailed) {
				return err
			}
			// Degraded: reconstruct the segment row by row under the
			// row locks.
			for r := 0; r < sg.n; r++ {
				row := sg.row + int64(r)
				if err := p.ReadBlock(c, dev, row, sub[r*bs:(r+1)*bs]); err != nil {
					return err
				}
			}
			return nil
		}
	}
	return par(ctx, fns...)
}

// WriteBlocks implements blockio.Store with the small-write procedure
// batched across the run: all row locks are taken in ascending order,
// old data and old parity are read as coalesced segment requests in
// parallel, every row's new parity is XORed in memory, and new data and
// new parity are written back as coalesced segment requests in parallel.
// Runs touching a failed drive (or racing a failure) take the per-row
// WriteBlock path, which handles every degraded mode.
func (p *Parity) WriteBlocks(ctx sim.Context, dev int, b int64, n int, src []byte) error {
	bs := p.BlockSize()
	if len(src) != n*bs {
		return fmt.Errorf("stripe: WriteBlocks src len %d != %d blocks of %d bytes", len(src), n, bs)
	}
	if n == 1 {
		return p.WriteBlock(ctx, dev, b, src)
	}
	healthy := true
	for i := 0; i < n && healthy; i++ {
		row := b + int64(i)
		if p.disks[p.phys(dev, row)].Failed() || p.disks[p.parityPhys(row)].Failed() {
			healthy = false
		}
	}
	if healthy {
		err := p.writeRun(ctx, dev, b, n, src)
		if err == nil || !errors.Is(err, device.ErrFailed) {
			return err
		}
		// A drive failed mid-run: fall through and redo the run row by
		// row — each per-row write re-reads current contents, so parity
		// stays consistent for whatever already landed.
	}
	for i := 0; i < n; i++ {
		if err := p.WriteBlock(ctx, dev, b+int64(i), src[i*bs:(i+1)*bs]); err != nil {
			return err
		}
	}
	return nil
}

// writeRun is the healthy batched small-write across rows [b, b+n).
func (p *Parity) writeRun(ctx sim.Context, dev int, b int64, n int, src []byte) error {
	bs := p.BlockSize()
	// Row locks in ascending row order — the store-wide global order
	// (rows are shared across visible devices: writes to dev 0 row r and
	// dev 1 row r update the same parity block). Concurrent writeRuns
	// with overlapping ranges therefore contend but never deadlock,
	// whichever aggregator goroutines issue them.
	unlocks := make([]func(), 0, n)
	for i := 0; i < n; i++ {
		unlocks = append(unlocks, p.lockRow(ctx, b+int64(i)))
	}
	defer func() {
		for i := len(unlocks) - 1; i >= 0; i-- {
			unlocks[i]()
		}
	}()

	oldData := make([]byte, n*bs)
	newPar := make([]byte, n*bs) // old parity first, XORed in place below
	dataSegs := segsBy(b, n, func(row int64) int { return p.phys(dev, row) })
	parSegs := segsBy(b, n, p.parityPhys)
	fns := make([]func(sim.Context) error, 0, len(dataSegs)+len(parSegs))
	for _, sg := range dataSegs {
		sg := sg
		sub := oldData[sg.off*bs : (sg.off+sg.n)*bs]
		fns = append(fns, func(c sim.Context) error { return p.disks[sg.phys].ReadBlocks(c, sg.row, sg.n, sub) })
	}
	for _, sg := range parSegs {
		sg := sg
		sub := newPar[sg.off*bs : (sg.off+sg.n)*bs]
		fns = append(fns, func(c sim.Context) error { return p.disks[sg.phys].ReadBlocks(c, sg.row, sg.n, sub) })
	}
	if err := par(ctx, fns...); err != nil {
		return err
	}
	xorInto(newPar, oldData)
	xorInto(newPar, src)
	fns = fns[:0]
	for _, sg := range dataSegs {
		sg := sg
		sub := src[sg.off*bs : (sg.off+sg.n)*bs]
		fns = append(fns, func(c sim.Context) error { return p.disks[sg.phys].WriteBlocks(c, sg.row, sg.n, sub) })
	}
	for _, sg := range parSegs {
		sg := sg
		sub := newPar[sg.off*bs : (sg.off+sg.n)*bs]
		fns = append(fns, func(c sim.Context) error { return p.disks[sg.phys].WriteBlocks(c, sg.row, sg.n, sub) })
	}
	return par(ctx, fns...)
}

// ReadBlocks implements blockio.Store as one coalesced request on the
// primary, failing over to one request on the shadow.
func (m *Mirror) ReadBlocks(ctx sim.Context, dev int, b int64, n int, dst []byte) error {
	err := m.primary[dev].ReadBlocks(ctx, b, n, dst)
	if err == nil || !errors.Is(err, device.ErrFailed) {
		return err
	}
	if err2 := m.shadow[dev].ReadBlocks(ctx, b, n, dst); err2 != nil {
		return fmt.Errorf("%w: primary and shadow of device %d", ErrDoubleFailure, dev)
	}
	return nil
}

// WriteBlocks implements blockio.Store: one coalesced request on the
// drive and one on its shadow, issued in parallel; the write survives a
// single failed drive of the pair.
func (m *Mirror) WriteBlocks(ctx sim.Context, dev int, b int64, n int, src []byte) error {
	errP := make([]error, 2)
	err := par(ctx,
		func(c sim.Context) error { errP[0] = m.primary[dev].WriteBlocks(c, b, n, src); return nil },
		func(c sim.Context) error { errP[1] = m.shadow[dev].WriteBlocks(c, b, n, src); return nil },
	)
	if err != nil {
		return err
	}
	if errP[0] != nil && errP[1] != nil {
		return fmt.Errorf("%w: primary and shadow of device %d", ErrDoubleFailure, dev)
	}
	return nil
}
