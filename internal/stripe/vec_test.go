package stripe

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/blockio"
	"repro/internal/device"
	"repro/internal/sim"
)

// vecStores builds each Store implementation over fresh untimed drives,
// plus an injector that fails one drive holding visible data.
func vecStores(t *testing.T) []struct {
	name  string
	store blockio.Store
	fail  func()
} {
	t.Helper()
	geom := device.Geometry{BlockSize: 64, BlocksPerCyl: 8, Cylinders: 32}
	mk := func(n int) []*device.Disk {
		ds := make([]*device.Disk, n)
		for i := range ds {
			ds[i] = device.New(device.Config{Name: fmt.Sprintf("d%d", i), Geometry: geom})
		}
		return ds
	}
	direct, err := blockio.NewDirect(mk(4))
	if err != nil {
		t.Fatal(err)
	}
	parityDisks := mk(5)
	parity, err := NewParity(parityDisks, true)
	if err != nil {
		t.Fatal(err)
	}
	mirror, err := NewMirror(mk(4), mk(4))
	if err != nil {
		t.Fatal(err)
	}
	return []struct {
		name  string
		store blockio.Store
		fail  func()
	}{
		{"direct", direct, nil},
		{"parity", parity, func() { parityDisks[1].Fail() }},
		{"mirror", mirror, func() { mirror.Primary(1).Fail() }},
	}
}

// vecLayouts enumerates the three layout families sized for 48 blocks,
// including the unit-1 declustered case vectored I/O exists for.
func vecLayouts(t *testing.T) []struct {
	name   string
	layout blockio.Layout
	total  int64
} {
	t.Helper()
	part, err := blockio.NewPartitioned(4, []int64{14, 10, 16, 8}, 2, blockio.PackInterleaved)
	if err != nil {
		t.Fatal(err)
	}
	il, err := blockio.NewInterleaved(4, 6, 2, 48, blockio.PackContiguous)
	if err != nil {
		t.Fatal(err)
	}
	return []struct {
		name   string
		layout blockio.Layout
		total  int64
	}{
		{"striped-unit1", blockio.NewStriped(4, 1), 48},
		{"partitioned", part, 48},
		{"interleaved", il, 48},
	}
}

// TestVecStoreEquivalence checks ReadVec/WriteVec against per-block
// loops for every layout × store combination, then re-checks reads with
// one drive failed (degraded parity reconstruction, mirror failover).
func TestVecStoreEquivalence(t *testing.T) {
	for _, lt := range vecLayouts(t) {
		for _, st := range vecStores(t) {
			t.Run(lt.name+"/"+st.name, func(t *testing.T) {
				set, err := blockio.NewSet(st.store, lt.layout, make([]int64, lt.layout.Devices()))
				if err != nil {
					t.Fatal(err)
				}
				ctx := sim.NewWall()
				bs := int64(set.BlockSize())
				rng := rand.New(rand.NewSource(11))
				// Strided descriptor: every other pair of blocks, buffer
				// slots shuffled.
				var vec blockio.Vec
				var off int64
				for b := int64(0); b < lt.total; b += 4 {
					vec = append(vec, blockio.VecSeg{Block: b, N: 2, BufOff: off})
					off += 2 * bs
				}
				rng.Shuffle(len(vec), func(i, j int) {
					vec[i].BufOff, vec[j].BufOff = vec[j].BufOff, vec[i].BufOff
				})
				src := make([]byte, off)
				rng.Read(src)
				if err := set.WriteVec(ctx, vec, src); err != nil {
					t.Fatalf("WriteVec: %v", err)
				}
				// Per-block readback must see exactly the vec-written data.
				rb := make([]byte, bs)
				for _, sg := range vec {
					for i := int64(0); i < sg.N; i++ {
						if err := set.ReadBlock(ctx, sg.Block+i, rb); err != nil {
							t.Fatal(err)
						}
						if !bytes.Equal(rb, src[sg.BufOff+i*bs:sg.BufOff+(i+1)*bs]) {
							t.Fatalf("block %d: WriteVec data differs from per-block read", sg.Block+i)
						}
					}
				}
				check := func(phase string) {
					got := make([]byte, off)
					if err := set.ReadVec(ctx, vec, got); err != nil {
						t.Fatalf("%s ReadVec: %v", phase, err)
					}
					if !bytes.Equal(got, src) {
						t.Fatalf("%s ReadVec differs from written data", phase)
					}
				}
				check("healthy")
				if st.fail != nil {
					st.fail()
					check("degraded")
				}
			})
		}
	}
}

// TestParityVecScratchPooled pins the ROADMAP carry-over fix: the
// contiguous staging buffer the Parity vectored paths gather/scatter
// through comes from a pool, so a steady-state vectored sweep allocates
// no more than the equivalent contiguous call (which pays the run path's
// own per-call allocations) plus a small constant — not a fresh n×bs
// buffer per call.
func TestParityVecScratchPooled(t *testing.T) {
	ctx := sim.NewWall()
	geom := device.Geometry{BlockSize: 64, BlocksPerCyl: 16, Cylinders: 8}
	disks := make([]*device.Disk, 5)
	for i := range disks {
		disks[i] = device.New(device.Config{Name: fmt.Sprintf("d%d", i), Geometry: geom})
	}
	p, err := NewParity(disks, true)
	if err != nil {
		t.Fatal(err)
	}
	const n = 16
	bs := p.BlockSize()
	flat := make([]byte, n*bs)
	iov := make([][]byte, n) // one slice per block: the staged multi-iov path
	for i := range iov {
		iov[i] = flat[i*bs : (i+1)*bs]
	}
	for _, op := range []struct {
		name  string
		plain func() error
		vec   func() error
	}{
		{"write",
			func() error { return p.WriteBlocks(ctx, 0, 0, n, flat) },
			func() error { return p.WriteBlocksVec(ctx, 0, 0, n, iov) }},
		{"read",
			func() error { return p.ReadBlocks(ctx, 0, 0, n, flat) },
			func() error { return p.ReadBlocksVec(ctx, 0, 0, n, iov) }},
	} {
		if err := op.vec(); err != nil { // warm the pool
			t.Fatal(err)
		}
		plain := testing.AllocsPerRun(50, func() {
			if err := op.plain(); err != nil {
				t.Fatal(err)
			}
		})
		vec := testing.AllocsPerRun(50, func() {
			if err := op.vec(); err != nil {
				t.Fatal(err)
			}
		})
		if vec > plain+2 {
			t.Errorf("%s: vectored path allocates %.0f/run vs %.0f for the contiguous path — scratch is not pooled",
				op.name, vec, plain)
		}
	}
}

// requests sums completed requests over drives.
func requests(ds []*device.Disk) int64 {
	var n int64
	for _, d := range ds {
		n += d.Stats().Requests()
	}
	return n
}

// TestParityRebuildBatched verifies a 64-row parity rebuild reconstructs
// correct data while issuing ≥4× fewer device requests than row-by-row
// reconstruction would (which needs one read per surviving drive plus
// one write, per row).
func TestParityRebuildBatched(t *testing.T) {
	ctx := sim.NewWall()
	geom := device.Geometry{BlockSize: 64, BlocksPerCyl: 16, Cylinders: 8}
	disks := make([]*device.Disk, 4)
	for i := range disks {
		disks[i] = device.New(device.Config{Name: fmt.Sprintf("d%d", i), Geometry: geom})
	}
	p, err := NewParity(disks, true)
	if err != nil {
		t.Fatal(err)
	}
	const rows = 64
	bs := p.BlockSize()
	want := make([][]byte, p.Devices())
	for dev := range want {
		want[dev] = make([]byte, rows*bs)
		for i := range want[dev] {
			want[dev][i] = byte(dev*13 + i)
		}
		if err := p.WriteBlocks(ctx, dev, 0, rows, want[dev]); err != nil {
			t.Fatal(err)
		}
	}
	const victim = 2
	disks[victim].Fail()
	if err := disks[victim].Erase(); err != nil {
		t.Fatal(err)
	}
	disks[victim].Repair()
	for _, d := range disks {
		d.ResetStats()
	}
	if err := p.Rebuild(ctx, victim, rows); err != nil {
		t.Fatal(err)
	}
	got := requests(disks)
	rowByRow := int64(rows * len(disks)) // (drives-1) reads + 1 write per row
	if got*4 > rowByRow {
		t.Fatalf("batched rebuild issued %d requests; row-by-row would issue %d, want ≥4× fewer", got, rowByRow)
	}
	for dev := range want {
		buf := make([]byte, rows*bs)
		if err := p.ReadBlocks(ctx, dev, 0, rows, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, want[dev]) {
			t.Fatalf("device %d data corrupted by rebuild", dev)
		}
	}
}

// TestMirrorRebuildBatched is the mirror counterpart: a 64-row rebuild
// copies in extents, ≥4× fewer requests than row-by-row copying.
func TestMirrorRebuildBatched(t *testing.T) {
	ctx := sim.NewWall()
	geom := device.Geometry{BlockSize: 64, BlocksPerCyl: 16, Cylinders: 8}
	mk := func(n int) []*device.Disk {
		ds := make([]*device.Disk, n)
		for i := range ds {
			ds[i] = device.New(device.Config{Geometry: geom})
		}
		return ds
	}
	primary, shadow := mk(2), mk(2)
	m, err := NewMirror(primary, shadow)
	if err != nil {
		t.Fatal(err)
	}
	const rows = 64
	bs := m.BlockSize()
	want := make([]byte, rows*bs)
	for i := range want {
		want[i] = byte(i * 3)
	}
	if err := m.WriteBlocks(ctx, 0, 0, rows, want); err != nil {
		t.Fatal(err)
	}
	if err := primary[0].Erase(); err != nil {
		t.Fatal(err)
	}
	for _, d := range append(append([]*device.Disk{}, primary...), shadow...) {
		d.ResetStats()
	}
	if err := m.Rebuild(ctx, 0, rows, true); err != nil {
		t.Fatal(err)
	}
	got := requests(primary) + requests(shadow)
	if rowByRow := int64(rows * 2); got*4 > rowByRow {
		t.Fatalf("batched mirror rebuild issued %d requests; row-by-row would issue %d, want ≥4× fewer", got, rowByRow)
	}
	buf := make([]byte, rows*bs)
	if err := primary[0].ReadBlocks(ctx, 0, rows, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, want) {
		t.Fatal("rebuilt primary differs from shadow data")
	}
}
