// Package stripe provides redundant Store implementations over device
// arrays, realizing the reliability mechanisms of the paper's §5:
//
//   - Parity: error-correcting striped storage in the style the paper
//     cites from Kim — parity information on a check disk (or rotated
//     across all drives, RAID-5 style) tolerates the complete failure of
//     any single drive. As the paper observes, parity fits striped files;
//     applying it under independently-accessed PS/IS layouts makes the
//     parity drive a shared bottleneck, which experiments can measure.
//
//   - Mirror: the "shadow disk" technique — every write is performed on a
//     drive and its shadow, providing an up-to-date backup at twice the
//     hardware cost.
//
// Multi-drive operations issue their component transfers in parallel
// under a simulation engine (each transfer is a concurrent request at its
// device), matching how an I/O controller would drive the spindles.
package stripe

import (
	"errors"
	"fmt"

	"repro/internal/blockio"
	"repro/internal/device"
	"repro/internal/sim"
)

// ErrDoubleFailure is returned when redundancy cannot cover the failed
// drives (two or more failures in one parity group, or a failed pair in a
// mirror).
var ErrDoubleFailure = errors.New("stripe: multiple drive failures exceed redundancy")

// par runs the given operations concurrently under a simulation engine
// (or sequentially otherwise) and joins their errors.
func par(ctx sim.Context, fns ...func(sim.Context) error) error {
	return sim.Par(ctx, fns...)
}

// xorInto sets dst ^= src.
func xorInto(dst, src []byte) {
	for i := range dst {
		dst[i] ^= src[i]
	}
}

// Parity is a Store of D data devices protected by one drive's worth of
// parity, tolerating any single drive failure.
//
// Concurrent writers updating different data blocks of the same parity
// row would race on the read-modify-write of the parity block (the
// classic stripe-update hazard); Parity therefore serializes all
// operations on a row through a per-row lock.
type Parity struct {
	disks  []*device.Disk // D+1 physical drives
	rotate bool           // rotate parity across drives (RAID-5) vs dedicated check disk (RAID-4)

	rowLocks map[int64]*sim.Mutex
}

// NewParity builds a parity store over D+1 identical physical drives.
// With rotate false the last drive is the dedicated check disk.
func NewParity(disks []*device.Disk, rotate bool) (*Parity, error) {
	if len(disks) < 2 {
		return nil, fmt.Errorf("stripe: parity needs at least 2 drives, got %d", len(disks))
	}
	g := disks[0].Geometry()
	for _, d := range disks[1:] {
		if d.Geometry() != g {
			return nil, fmt.Errorf("stripe: mixed geometries in parity group")
		}
	}
	return &Parity{disks: disks, rotate: rotate, rowLocks: make(map[int64]*sim.Mutex)}, nil
}

// lockRow serializes row b (engine contexts only — without an engine
// there is no concurrency to guard). The returned function unlocks.
//
// Lock-order invariant: every multi-row operation acquires row locks in
// ascending row number (see writeRun), and single-row operations hold at
// most one row lock at a time — a global order, so concurrent aggregator
// goroutines (two-phase collective writers staging through
// WriteBlocksVec, degraded readers reconstructing mid-write) can never
// deadlock however their row ranges overlap. The row-lock map itself is
// only ever touched by engine-managed processes, whose strict
// alternation provides the required happens-before edges;
// TestParityConcurrentAggregators runs this under -race.
func (p *Parity) lockRow(ctx sim.Context, b int64) func() {
	pr, ok := ctx.(*sim.Proc)
	if !ok {
		return func() {}
	}
	mu := p.rowLocks[b]
	if mu == nil {
		mu = &sim.Mutex{}
		p.rowLocks[b] = mu
	}
	mu.Lock(pr)
	return func() { mu.Unlock(pr) }
}

// Devices implements Store: the number of data drives visible above.
func (p *Parity) Devices() int { return len(p.disks) - 1 }

// BlockSize implements Store.
func (p *Parity) BlockSize() int { return p.disks[0].Geometry().BlockSize }

// Blocks implements Store.
func (p *Parity) Blocks() int64 { return p.disks[0].Geometry().Blocks() }

// PhysDisk exposes physical drive i (data and parity alike), e.g. for
// failure injection.
func (p *Parity) PhysDisk(i int) *device.Disk { return p.disks[i] }

// PhysDrives reports the number of physical drives (data + parity).
func (p *Parity) PhysDrives() int { return len(p.disks) }

// parityPhys reports which physical drive holds parity for row b.
func (p *Parity) parityPhys(b int64) int {
	if p.rotate {
		return int(b % int64(len(p.disks)))
	}
	return len(p.disks) - 1
}

// phys maps a visible data device index to a physical drive for row b.
func (p *Parity) phys(dev int, b int64) int {
	pp := p.parityPhys(b)
	if dev < pp {
		return dev
	}
	return dev + 1
}

// reconstruct reads every healthy drive's row b except failedPhys and
// XORs them into dst (which it zeroes first).
func (p *Parity) reconstruct(ctx sim.Context, failedPhys int, b int64, dst []byte) error {
	clear(dst)
	bufs := make([][]byte, len(p.disks))
	fns := make([]func(sim.Context) error, 0, len(p.disks)-1)
	for i := range p.disks {
		if i == failedPhys {
			continue
		}
		i := i
		bufs[i] = make([]byte, p.BlockSize())
		fns = append(fns, func(c sim.Context) error {
			if err := p.disks[i].ReadBlock(c, b, bufs[i]); err != nil {
				return fmt.Errorf("%w (drive %d also unavailable: %v)", ErrDoubleFailure, i, err)
			}
			return nil
		})
	}
	if err := par(ctx, fns...); err != nil {
		return err
	}
	for i, buf := range bufs {
		if i == failedPhys || buf == nil {
			continue
		}
		xorInto(dst, buf)
	}
	return nil
}

// ReadBlock implements Store, reconstructing from peers when the target
// drive has failed. Reconstruction takes the row lock so it never
// observes a half-applied parity update.
func (p *Parity) ReadBlock(ctx sim.Context, dev int, b int64, dst []byte) error {
	phys := p.phys(dev, b)
	err := p.disks[phys].ReadBlock(ctx, b, dst)
	if err == nil {
		return nil
	}
	if !errors.Is(err, device.ErrFailed) {
		return err
	}
	unlock := p.lockRow(ctx, b)
	defer unlock()
	return p.reconstruct(ctx, phys, b, dst)
}

// WriteBlock implements Store using the standard small-write procedure:
// read old data and old parity in parallel, then write new data and new
// parity (new parity = old parity XOR old data XOR new data) in parallel.
// Degraded modes cover a failed data or parity drive.
func (p *Parity) WriteBlock(ctx sim.Context, dev int, b int64, src []byte) error {
	dataPhys := p.phys(dev, b)
	parPhys := p.parityPhys(b)
	data := p.disks[dataPhys]
	parD := p.disks[parPhys]
	bs := p.BlockSize()
	unlock := p.lockRow(ctx, b)
	defer unlock()

	switch {
	case !data.Failed() && !parD.Failed():
		oldData := make([]byte, bs)
		oldPar := make([]byte, bs)
		if err := par(ctx,
			func(c sim.Context) error { return data.ReadBlock(c, b, oldData) },
			func(c sim.Context) error { return parD.ReadBlock(c, b, oldPar) },
		); err != nil {
			return err
		}
		newPar := oldPar
		xorInto(newPar, oldData)
		xorInto(newPar, src)
		return par(ctx,
			func(c sim.Context) error { return data.WriteBlock(c, b, src) },
			func(c sim.Context) error { return parD.WriteBlock(c, b, newPar) },
		)
	case data.Failed() && parD.Failed():
		return fmt.Errorf("%w: drives %d and %d", ErrDoubleFailure, dataPhys, parPhys)
	case parD.Failed():
		// Parity unavailable: the data write alone keeps user data intact.
		return data.WriteBlock(ctx, b, src)
	default:
		// Data drive failed: fold the write into parity so the block is
		// recoverable. New parity = XOR of all surviving data rows XOR src.
		newPar := make([]byte, bs)
		copy(newPar, src)
		bufs := make([][]byte, len(p.disks))
		var fns []func(sim.Context) error
		for i := range p.disks {
			if i == dataPhys || i == parPhys {
				continue
			}
			i := i
			bufs[i] = make([]byte, bs)
			fns = append(fns, func(c sim.Context) error {
				if err := p.disks[i].ReadBlock(c, b, bufs[i]); err != nil {
					return fmt.Errorf("%w (drive %d also unavailable: %v)", ErrDoubleFailure, i, err)
				}
				return nil
			})
		}
		if err := par(ctx, fns...); err != nil {
			return err
		}
		for _, buf := range bufs {
			if buf == nil {
				continue
			}
			xorInto(newPar, buf)
		}
		return parD.WriteBlock(ctx, b, newPar)
	}
}

// rebuildExtent is the batching unit (in rows) for drive rebuilds: each
// extent's surviving-drive reads and replacement write are one coalesced
// device request apiece, shrinking the §5 reliability-exposure window by
// the coalescing factor versus row-by-row reconstruction.
const rebuildExtent = 32

// Rebuild reconstructs rows [0, rows) of the (repaired, erased) physical
// drive failedPhys from the surviving drives, in extents of up to
// rebuildExtent rows: every surviving drive's extent is read as one
// coalesced request (in parallel across drives), the rows are XORed in
// memory, and the reconstructed extent is written back as one request.
func (p *Parity) Rebuild(ctx sim.Context, failedPhys int, rows int64) error {
	if p.disks[failedPhys].Failed() {
		return fmt.Errorf("stripe: rebuild target drive %d still failed", failedPhys)
	}
	bs := int64(p.BlockSize())
	bufs := make([][]byte, len(p.disks))
	for i := range p.disks {
		if i != failedPhys {
			bufs[i] = make([]byte, rebuildExtent*bs)
		}
	}
	acc := make([]byte, rebuildExtent*bs)
	for b := int64(0); b < rows; b += rebuildExtent {
		n := int64(rebuildExtent)
		if b+n > rows {
			n = rows - b
		}
		fns := make([]func(sim.Context) error, 0, len(p.disks)-1)
		for i := range p.disks {
			if i == failedPhys {
				continue
			}
			i := i
			fns = append(fns, func(c sim.Context) error {
				if err := p.disks[i].ReadBlocks(c, b, int(n), bufs[i][:n*bs]); err != nil {
					return fmt.Errorf("%w (drive %d also unavailable: %v)", ErrDoubleFailure, i, err)
				}
				return nil
			})
		}
		if err := par(ctx, fns...); err != nil {
			return fmt.Errorf("stripe: rebuild rows [%d,%d): %w", b, b+n, err)
		}
		clear(acc[:n*bs])
		for i, buf := range bufs {
			if i == failedPhys || buf == nil {
				continue
			}
			xorInto(acc[:n*bs], buf[:n*bs])
		}
		if err := p.disks[failedPhys].WriteBlocks(ctx, b, int(n), acc[:n*bs]); err != nil {
			return fmt.Errorf("stripe: rebuild rows [%d,%d): %w", b, b+n, err)
		}
	}
	return nil
}

// Mirror is a Store in which every visible device is a primary/shadow
// drive pair (the §5 "shadow" technique): writes go to both drives,
// reads prefer the primary and fail over to the shadow.
type Mirror struct {
	primary []*device.Disk
	shadow  []*device.Disk
}

// NewMirror pairs primary drives with their shadows.
func NewMirror(primary, shadow []*device.Disk) (*Mirror, error) {
	if len(primary) == 0 || len(primary) != len(shadow) {
		return nil, fmt.Errorf("stripe: mirror needs equal non-empty primary/shadow sets (%d/%d)", len(primary), len(shadow))
	}
	g := primary[0].Geometry()
	for _, d := range append(append([]*device.Disk{}, primary...), shadow...) {
		if d.Geometry() != g {
			return nil, fmt.Errorf("stripe: mixed geometries in mirror")
		}
	}
	return &Mirror{primary: primary, shadow: shadow}, nil
}

// Devices implements Store.
func (m *Mirror) Devices() int { return len(m.primary) }

// BlockSize implements Store.
func (m *Mirror) BlockSize() int { return m.primary[0].Geometry().BlockSize }

// Blocks implements Store.
func (m *Mirror) Blocks() int64 { return m.primary[0].Geometry().Blocks() }

// Primary exposes primary drive i.
func (m *Mirror) Primary(i int) *device.Disk { return m.primary[i] }

// Shadow exposes shadow drive i.
func (m *Mirror) Shadow(i int) *device.Disk { return m.shadow[i] }

// ReadBlock implements Store with failover to the shadow.
func (m *Mirror) ReadBlock(ctx sim.Context, dev int, b int64, dst []byte) error {
	err := m.primary[dev].ReadBlock(ctx, b, dst)
	if err == nil || !errors.Is(err, device.ErrFailed) {
		return err
	}
	if err2 := m.shadow[dev].ReadBlock(ctx, b, dst); err2 != nil {
		return fmt.Errorf("%w: primary and shadow of device %d", ErrDoubleFailure, dev)
	}
	return nil
}

// WriteBlock implements Store: "exactly the same I/O operations on each
// disk and its shadow", issued in parallel. The write survives a single
// failed drive of the pair.
func (m *Mirror) WriteBlock(ctx sim.Context, dev int, b int64, src []byte) error {
	errP := make([]error, 2)
	err := par(ctx,
		func(c sim.Context) error { errP[0] = m.primary[dev].WriteBlock(c, b, src); return nil },
		func(c sim.Context) error { errP[1] = m.shadow[dev].WriteBlock(c, b, src); return nil },
	)
	if err != nil {
		return err
	}
	if errP[0] != nil && errP[1] != nil {
		return fmt.Errorf("%w: primary and shadow of device %d", ErrDoubleFailure, dev)
	}
	return nil
}

// Rebuild copies rows [0, rows) of device dev from its healthy twin onto
// the (repaired, erased) other drive, in extents of up to rebuildExtent
// rows — one coalesced read and one coalesced write per extent.
// fromShadow selects the direction: true restores the primary from the
// shadow.
func (m *Mirror) Rebuild(ctx sim.Context, dev int, rows int64, fromShadow bool) error {
	src, dst := m.primary[dev], m.shadow[dev]
	if fromShadow {
		src, dst = m.shadow[dev], m.primary[dev]
	}
	bs := int64(m.BlockSize())
	buf := make([]byte, rebuildExtent*bs)
	for b := int64(0); b < rows; b += rebuildExtent {
		n := int64(rebuildExtent)
		if b+n > rows {
			n = rows - b
		}
		if err := src.ReadBlocks(ctx, b, int(n), buf[:n*bs]); err != nil {
			return fmt.Errorf("stripe: mirror rebuild rows [%d,%d): %w", b, b+n, err)
		}
		if err := dst.WriteBlocks(ctx, b, int(n), buf[:n*bs]); err != nil {
			return fmt.Errorf("stripe: mirror rebuild rows [%d,%d): %w", b, b+n, err)
		}
	}
	return nil
}

var (
	_ blockio.Store = (*Parity)(nil)
	_ blockio.Store = (*Mirror)(nil)
)
