// Vectored (scatter/gather) run I/O for the redundant stores. Mirror
// passes the scatter list straight through to the drive pair, so
// scattered delivery happens at the device like a plain disk. Parity
// stages through a contiguous scratch run instead: its run path already
// splits by physical drive and batches parity rows (extent.go), and the
// redundancy arithmetic (XOR across rows) wants contiguous spans — an
// in-memory copy costs nothing in the device model, while the queued
// requests, locks and degraded modes stay exactly those of
// ReadBlocks/WriteBlocks.

package stripe

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/device"
	"repro/internal/sim"
)

// vecPool recycles the contiguous staging buffers the Parity vectored
// paths gather/scatter through. Sieved covering spans make these runs
// large, so a fresh n*bs allocation per call would be real allocator
// churn (the ROADMAP carry-over this closes).
var vecPool = sync.Pool{New: func() any { return new([]byte) }}

// getVecBuf pops a pooled buffer of at least n bytes.
func getVecBuf(n int) *[]byte {
	bp := vecPool.Get().(*[]byte)
	if cap(*bp) < n {
		*bp = make([]byte, n)
	}
	*bp = (*bp)[:n]
	return bp
}

// DeviceTiming implements blockio.DeviceTimer with the array's drive
// parameters.
func (p *Parity) DeviceTiming() device.Timing { return p.disks[0].Timing() }

// DeviceTiming implements blockio.DeviceTimer with the pair's drive
// parameters.
func (m *Mirror) DeviceTiming() device.Timing { return m.primary[0].Timing() }

// checkVec validates a scatter/gather list against a run of n blocks.
func checkVec(op string, bs, n int, iov [][]byte) error {
	total := 0
	for i, v := range iov {
		if len(v) == 0 || len(v)%bs != 0 {
			return fmt.Errorf("stripe: %s segment %d is %d bytes, not a positive multiple of the %d-byte block", op, i, len(v), bs)
		}
		total += len(v)
	}
	if total != n*bs {
		return fmt.Errorf("stripe: %s segments total %d bytes != %d blocks of %d bytes", op, total, n, bs)
	}
	return nil
}

// gather copies the scatter list into one contiguous run buffer.
func gather(iov [][]byte, dst []byte) {
	pos := 0
	for _, v := range iov {
		pos += copy(dst[pos:], v)
	}
}

// scatter copies a contiguous run buffer out into the scatter list.
func scatter(src []byte, iov [][]byte) {
	pos := 0
	for _, v := range iov {
		pos += copy(v, src[pos:])
	}
}

// ReadBlocksVec implements blockio.Store: the run is read through the
// coalesced (and degraded-capable) ReadBlocks path into a contiguous
// scratch buffer, then scattered to the caller's segments.
func (p *Parity) ReadBlocksVec(ctx sim.Context, dev int, b int64, n int, dsts [][]byte) error {
	bs := p.BlockSize()
	if err := checkVec("ReadBlocksVec", bs, n, dsts); err != nil {
		return err
	}
	if len(dsts) == 1 {
		return p.ReadBlocks(ctx, dev, b, n, dsts[0])
	}
	bp := getVecBuf(n * bs)
	defer vecPool.Put(bp)
	if err := p.ReadBlocks(ctx, dev, b, n, *bp); err != nil {
		return err
	}
	scatter(*bp, dsts)
	return nil
}

// WriteBlocksVec implements blockio.Store: the caller's segments are
// gathered into a contiguous run and written through the batched
// small-write path (WriteBlocks), preserving its row locks and degraded
// modes.
func (p *Parity) WriteBlocksVec(ctx sim.Context, dev int, b int64, n int, srcs [][]byte) error {
	bs := p.BlockSize()
	if err := checkVec("WriteBlocksVec", bs, n, srcs); err != nil {
		return err
	}
	if len(srcs) == 1 {
		return p.WriteBlocks(ctx, dev, b, n, srcs[0])
	}
	bp := getVecBuf(n * bs)
	defer vecPool.Put(bp)
	gather(srcs, *bp)
	return p.WriteBlocks(ctx, dev, b, n, *bp)
}

// ReadBlocksVec implements blockio.Store as one scatter request on the
// primary, failing over to one on the shadow.
func (m *Mirror) ReadBlocksVec(ctx sim.Context, dev int, b int64, n int, dsts [][]byte) error {
	if err := checkVec("ReadBlocksVec", m.BlockSize(), n, dsts); err != nil {
		return err
	}
	err := m.primary[dev].ReadBlocksVec(ctx, b, n, dsts)
	if err == nil || !errors.Is(err, device.ErrFailed) {
		return err
	}
	if err2 := m.shadow[dev].ReadBlocksVec(ctx, b, n, dsts); err2 != nil {
		return fmt.Errorf("%w: primary and shadow of device %d", ErrDoubleFailure, dev)
	}
	return nil
}

// WriteBlocksVec implements blockio.Store: one gather request on the
// drive and one on its shadow, issued in parallel; the write survives a
// single failed drive of the pair.
func (m *Mirror) WriteBlocksVec(ctx sim.Context, dev int, b int64, n int, srcs [][]byte) error {
	if err := checkVec("WriteBlocksVec", m.BlockSize(), n, srcs); err != nil {
		return err
	}
	errP := make([]error, 2)
	err := par(ctx,
		func(c sim.Context) error { errP[0] = m.primary[dev].WriteBlocksVec(c, b, n, srcs); return nil },
		func(c sim.Context) error { errP[1] = m.shadow[dev].WriteBlocksVec(c, b, n, srcs); return nil },
	)
	if err != nil {
		return err
	}
	if errP[0] != nil && errP[1] != nil {
		return fmt.Errorf("%w: primary and shadow of device %d", ErrDoubleFailure, dev)
	}
	return nil
}
