package stripe

import (
	"fmt"
	"testing"

	"repro/internal/device"
	"repro/internal/sim"
)

// TestParityConcurrentAggregators is the -race regression for parity
// scratch staging under concurrent collective writers: many aggregator
// processes issue overlapping-row vectored writes (the WriteBlocksVec
// staging path) to different visible devices concurrently, interleaved
// with degraded-style single-row writers. The per-row locks must be
// taken in global (ascending-row) order, so the run must neither
// deadlock nor — under `go test -race` — trip the race detector, and
// every parity row must be consistent afterwards (XOR of all drives'
// blocks = 0).
func TestParityConcurrentAggregators(t *testing.T) {
	const (
		dataDevs = 4
		rows     = 64
		writers  = 8
		span     = 24 // rows per writer: overlapping ranges across writers
	)
	e := sim.NewEngine()
	disks := make([]*device.Disk, dataDevs+1)
	for i := range disks {
		disks[i] = device.New(device.Config{
			Name:     fmt.Sprintf("d%d", i),
			Geometry: device.Geometry{BlockSize: 64, BlocksPerCyl: 8, Cylinders: 16},
			Engine:   e,
		})
	}
	p, err := NewParity(disks, true)
	if err != nil {
		t.Fatal(err)
	}
	bs := p.BlockSize()

	for w := 0; w < writers; w++ {
		w := w
		e.Go(fmt.Sprintf("agg-%d", w), func(pr *sim.Proc) {
			dev := w % dataDevs
			base := int64(w * 5) // ranges [base, base+span) overlap heavily
			// A two-segment scatter list exercises the scratch staging.
			buf := make([]byte, span*bs)
			for i := range buf {
				buf[i] = byte(w*31 + i)
			}
			srcs := [][]byte{buf[: 8*bs : 8*bs], buf[8*bs:]}
			if err := p.WriteBlocksVec(pr, dev, base, span, srcs); err != nil {
				t.Errorf("writer %d: %v", w, err)
			}
			// A second, shifted run so lock ranges cross between writers
			// in both directions.
			if err := p.WriteBlocks(pr, (dev+1)%dataDevs, base+2, span, buf); err != nil {
				t.Errorf("writer %d second run: %v", w, err)
			}
		})
	}
	for w := 0; w < 4; w++ {
		w := w
		e.Go(fmt.Sprintf("row-%d", w), func(pr *sim.Proc) {
			blk := make([]byte, bs)
			for i := range blk {
				blk[i] = byte(200 + w)
			}
			for r := int64(w); r < rows; r += 16 {
				if err := p.WriteBlock(pr, (w+2)%dataDevs, r, blk); err != nil {
					t.Errorf("row writer %d: %v", w, err)
					return
				}
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}

	// Parity invariant: every row XORs to zero across all drives.
	ctx := sim.NewWall()
	acc := make([]byte, bs)
	blk := make([]byte, bs)
	for r := int64(0); r < rows; r++ {
		clear(acc)
		for i := range disks {
			if err := disks[i].ReadBlock(ctx, r, blk); err != nil {
				t.Fatal(err)
			}
			xorInto(acc, blk)
		}
		for _, x := range acc {
			if x != 0 {
				t.Fatalf("row %d parity inconsistent after concurrent writers", r)
			}
		}
	}
}
