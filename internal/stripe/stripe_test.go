package stripe

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/sim"
)

func drives(n int, e *sim.Engine) []*device.Disk {
	ds := make([]*device.Disk, n)
	for i := range ds {
		ds[i] = device.New(device.Config{
			Name:     "d",
			Geometry: device.Geometry{BlockSize: 128, BlocksPerCyl: 4, Cylinders: 16},
			Engine:   e,
		})
	}
	return ds
}

func blockOf(b byte, n int) []byte { return bytes.Repeat([]byte{b}, n) }

func TestParityRoundTrip(t *testing.T) {
	p, err := NewParity(drives(4, nil), false)
	if err != nil {
		t.Fatal(err)
	}
	ctx := sim.NewWall()
	if p.Devices() != 3 {
		t.Fatalf("Devices = %d, want 3", p.Devices())
	}
	for dev := 0; dev < 3; dev++ {
		if err := p.WriteBlock(ctx, dev, 2, blockOf(byte(dev+1), 128)); err != nil {
			t.Fatal(err)
		}
	}
	for dev := 0; dev < 3; dev++ {
		got := make([]byte, 128)
		if err := p.ReadBlock(ctx, dev, 2, got); err != nil {
			t.Fatal(err)
		}
		if got[0] != byte(dev+1) {
			t.Fatalf("dev %d read %d", dev, got[0])
		}
	}
}

func TestParityReconstructsFailedDrive(t *testing.T) {
	for _, rotate := range []bool{false, true} {
		p, err := NewParity(drives(4, nil), rotate)
		if err != nil {
			t.Fatal(err)
		}
		ctx := sim.NewWall()
		for dev := 0; dev < 3; dev++ {
			for b := int64(0); b < 4; b++ {
				if err := p.WriteBlock(ctx, dev, b, blockOf(byte(16*dev+int(b)+1), 128)); err != nil {
					t.Fatal(err)
				}
			}
		}
		// Fail data drive holding dev 1 (phys depends on rotation; fail
		// the physical drive for row 0).
		failPhys := p.phys(1, 0)
		p.PhysDisk(failPhys).Fail()
		got := make([]byte, 128)
		// Rows where dev1 lives on the failed phys must reconstruct.
		if err := p.ReadBlock(ctx, 1, 0, got); err != nil {
			t.Fatalf("rotate=%v: degraded read: %v", rotate, err)
		}
		if got[0] != 17 {
			t.Fatalf("rotate=%v: reconstructed %d, want 17", rotate, got[0])
		}
	}
}

func TestParityDegradedWriteThenRecover(t *testing.T) {
	p, err := NewParity(drives(4, nil), false)
	if err != nil {
		t.Fatal(err)
	}
	ctx := sim.NewWall()
	for dev := 0; dev < 3; dev++ {
		if err := p.WriteBlock(ctx, dev, 0, blockOf(byte(dev+1), 128)); err != nil {
			t.Fatal(err)
		}
	}
	p.PhysDisk(1).Fail() // dev 1's drive
	// Write to the failed device: must fold into parity.
	if err := p.WriteBlock(ctx, 1, 0, blockOf(0x99, 128)); err != nil {
		t.Fatalf("degraded write: %v", err)
	}
	got := make([]byte, 128)
	if err := p.ReadBlock(ctx, 1, 0, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0x99 {
		t.Fatalf("degraded read-after-write got %#x, want 0x99", got[0])
	}
}

func TestParityRebuild(t *testing.T) {
	p, err := NewParity(drives(4, nil), true)
	if err != nil {
		t.Fatal(err)
	}
	ctx := sim.NewWall()
	const rows = 6
	for dev := 0; dev < 3; dev++ {
		for b := int64(0); b < rows; b++ {
			if err := p.WriteBlock(ctx, dev, b, blockOf(byte(10*dev+int(b)+1), 128)); err != nil {
				t.Fatal(err)
			}
		}
	}
	p.PhysDisk(2).Fail()
	if err := p.PhysDisk(2).Erase(); err != nil { // replacement drive arrives blank
		t.Fatal(err)
	}
	p.PhysDisk(2).Repair()
	if err := p.Rebuild(ctx, 2, rows); err != nil {
		t.Fatal(err)
	}
	// All data must read back clean with no degraded paths.
	for dev := 0; dev < 3; dev++ {
		for b := int64(0); b < rows; b++ {
			got := make([]byte, 128)
			if err := p.ReadBlock(ctx, dev, b, got); err != nil {
				t.Fatal(err)
			}
			if got[0] != byte(10*dev+int(b)+1) {
				t.Fatalf("after rebuild dev %d row %d = %d", dev, b, got[0])
			}
		}
	}
}

func TestParityRebuildRequiresRepairedTarget(t *testing.T) {
	p, err := NewParity(drives(3, nil), false)
	if err != nil {
		t.Fatal(err)
	}
	p.PhysDisk(0).Fail()
	if err := p.Rebuild(sim.NewWall(), 0, 1); err == nil {
		t.Fatal("rebuild onto failed drive accepted")
	}
}

func TestParityDoubleFailure(t *testing.T) {
	p, err := NewParity(drives(4, nil), false)
	if err != nil {
		t.Fatal(err)
	}
	ctx := sim.NewWall()
	if err := p.WriteBlock(ctx, 0, 0, blockOf(1, 128)); err != nil {
		t.Fatal(err)
	}
	p.PhysDisk(0).Fail()
	p.PhysDisk(1).Fail()
	got := make([]byte, 128)
	if err := p.ReadBlock(ctx, 0, 0, got); !errors.Is(err, ErrDoubleFailure) {
		t.Fatalf("want ErrDoubleFailure, got %v", err)
	}
	if err := p.WriteBlock(ctx, 1, 0, blockOf(2, 128)); err == nil {
		t.Fatal("double-failure write accepted")
	}
}

func TestParityValidation(t *testing.T) {
	if _, err := NewParity(drives(1, nil), false); err == nil {
		t.Fatal("1 drive accepted")
	}
	mixed := drives(2, nil)
	mixed = append(mixed, device.New(device.Config{Geometry: device.Geometry{BlockSize: 64, BlocksPerCyl: 2, Cylinders: 2}}))
	if _, err := NewParity(mixed, false); err == nil {
		t.Fatal("mixed geometry accepted")
	}
}

func TestRotatedParitySpreadsParity(t *testing.T) {
	p, err := NewParity(drives(4, nil), true)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for b := int64(0); b < 8; b++ {
		seen[p.parityPhys(b)] = true
	}
	if len(seen) != 4 {
		t.Fatalf("rotated parity touched %d drives, want 4", len(seen))
	}
	fixed, _ := NewParity(drives(4, nil), false)
	for b := int64(0); b < 8; b++ {
		if fixed.parityPhys(b) != 3 {
			t.Fatal("dedicated parity moved")
		}
	}
}

func TestMirrorRoundTripAndFailover(t *testing.T) {
	e := (*sim.Engine)(nil)
	m, err := NewMirror(drives(2, e), drives(2, e))
	if err != nil {
		t.Fatal(err)
	}
	ctx := sim.NewWall()
	if err := m.WriteBlock(ctx, 0, 3, blockOf(0x42, 128)); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 128)
	if err := m.ReadBlock(ctx, 0, 3, got); err != nil || got[0] != 0x42 {
		t.Fatalf("read: %v %#x", err, got[0])
	}
	m.Primary(0).Fail()
	clear(got)
	if err := m.ReadBlock(ctx, 0, 3, got); err != nil {
		t.Fatalf("failover read: %v", err)
	}
	if got[0] != 0x42 {
		t.Fatalf("failover read %#x, want 0x42", got[0])
	}
}

func TestMirrorWritesSurviveSingleFailure(t *testing.T) {
	m, err := NewMirror(drives(1, nil), drives(1, nil))
	if err != nil {
		t.Fatal(err)
	}
	ctx := sim.NewWall()
	m.Primary(0).Fail()
	if err := m.WriteBlock(ctx, 0, 0, blockOf(7, 128)); err != nil {
		t.Fatalf("write with failed primary: %v", err)
	}
	got := make([]byte, 128)
	if err := m.ReadBlock(ctx, 0, 0, got); err != nil || got[0] != 7 {
		t.Fatalf("read: %v %d", err, got[0])
	}
	m.Shadow(0).Fail()
	if err := m.WriteBlock(ctx, 0, 0, blockOf(8, 128)); !errors.Is(err, ErrDoubleFailure) {
		t.Fatalf("want ErrDoubleFailure, got %v", err)
	}
	if err := m.ReadBlock(ctx, 0, 0, got); !errors.Is(err, ErrDoubleFailure) {
		t.Fatalf("want ErrDoubleFailure, got %v", err)
	}
}

func TestMirrorRebuild(t *testing.T) {
	m, err := NewMirror(drives(1, nil), drives(1, nil))
	if err != nil {
		t.Fatal(err)
	}
	ctx := sim.NewWall()
	const rows = 5
	for b := int64(0); b < rows; b++ {
		if err := m.WriteBlock(ctx, 0, b, blockOf(byte(b+1), 128)); err != nil {
			t.Fatal(err)
		}
	}
	m.Primary(0).Fail()
	if err := m.Primary(0).Erase(); err != nil {
		t.Fatal(err)
	}
	m.Primary(0).Repair()
	if err := m.Rebuild(ctx, 0, rows, true); err != nil {
		t.Fatal(err)
	}
	m.Shadow(0).Fail() // force reads onto the rebuilt primary
	for b := int64(0); b < rows; b++ {
		got := make([]byte, 128)
		if err := m.ReadBlock(ctx, 0, b, got); err != nil || got[0] != byte(b+1) {
			t.Fatalf("row %d after rebuild: %v %d", b, err, got[0])
		}
	}
}

func TestMirrorValidation(t *testing.T) {
	if _, err := NewMirror(drives(2, nil), drives(1, nil)); err == nil {
		t.Fatal("mismatched sets accepted")
	}
	if _, err := NewMirror(nil, nil); err == nil {
		t.Fatal("empty mirror accepted")
	}
}

func TestMirrorWritesOverlapUnderEngine(t *testing.T) {
	// Under the engine, primary and shadow writes are concurrent: the
	// pair costs one service time, not two.
	e := sim.NewEngine()
	m, err := NewMirror(drives(1, e), drives(1, e))
	if err != nil {
		t.Fatal(err)
	}
	var elapsed time.Duration
	e.Go("w", func(p *sim.Proc) {
		if err := m.WriteBlock(p, 0, 0, blockOf(1, 128)); err != nil {
			t.Error(err)
		}
		elapsed = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	single := sim.NewEngine()
	d := drives(1, single)[0]
	var one time.Duration
	single.Go("w", func(p *sim.Proc) {
		if err := d.WriteBlock(p, 0, blockOf(1, 128)); err != nil {
			t.Error(err)
		}
		one = p.Now()
	})
	if err := single.Run(); err != nil {
		t.Fatal(err)
	}
	if elapsed != one {
		t.Fatalf("mirrored write %v, want overlapped %v", elapsed, one)
	}
}

func TestParitySmallWritePenaltyUnderEngine(t *testing.T) {
	// The RAID small write is read+read then write+write: two serial
	// phases, each overlapped across two drives -> ~2x one service time.
	e := sim.NewEngine()
	p4, err := NewParity(drives(3, e), false)
	if err != nil {
		t.Fatal(err)
	}
	var elapsed time.Duration
	e.Go("w", func(p *sim.Proc) {
		if err := p4.WriteBlock(p, 0, 0, blockOf(1, 128)); err != nil {
			t.Error(err)
		}
		elapsed = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	single := sim.NewEngine()
	d := drives(1, single)[0]
	var one time.Duration
	single.Go("w", func(p *sim.Proc) {
		_ = d.ReadBlock(p, 0, make([]byte, 128))
		one = p.Now()
	})
	if err := single.Run(); err != nil {
		t.Fatal(err)
	}
	if elapsed != 2*one {
		t.Fatalf("parity small write %v, want 2 phases = %v", elapsed, 2*one)
	}
}
