package stripe

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/device"
	"repro/internal/sim"
)

// newDrives builds n identical small untimed drives.
func newDrives(t *testing.T, n int, e *sim.Engine) []*device.Disk {
	t.Helper()
	disks := make([]*device.Disk, n)
	for i := range disks {
		disks[i] = device.New(device.Config{
			Name:     fmt.Sprintf("d%d", i),
			Geometry: device.Geometry{BlockSize: 64, BlocksPerCyl: 8, Cylinders: 32},
			Engine:   e,
		})
	}
	return disks
}

// checkParityConsistent asserts that XOR across all physical drives is
// zero for rows [0, rows).
func checkParityConsistent(t *testing.T, p *Parity, rows int64) {
	t.Helper()
	ctx := sim.NewWall()
	bs := p.BlockSize()
	acc := make([]byte, bs)
	buf := make([]byte, bs)
	for b := int64(0); b < rows; b++ {
		clear(acc)
		for i := 0; i < p.PhysDrives(); i++ {
			if err := p.PhysDisk(i).ReadBlock(ctx, b, buf); err != nil {
				t.Fatalf("row %d drive %d: %v", b, i, err)
			}
			xorInto(acc, buf)
		}
		for _, x := range acc {
			if x != 0 {
				t.Fatalf("row %d parity inconsistent", b)
			}
		}
	}
}

// TestParityRunEquivalence writes runs through WriteBlocks and asserts
// the data reads back identically block-at-a-time and via ReadBlocks,
// parity stays consistent, and a degraded (failed-drive) ranged read
// still reconstructs the exact bytes — for both the dedicated check
// disk (RAID-4) and rotated parity (RAID-5) geometries.
func TestParityRunEquivalence(t *testing.T) {
	for _, rotate := range []bool{false, true} {
		t.Run(fmt.Sprintf("rotate=%v", rotate), func(t *testing.T) {
			ctx := sim.NewWall()
			const rows = 40
			const bs = 64
			p, err := NewParity(newDrives(t, 5, nil), rotate)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(3))
			want := make([][]byte, p.Devices())
			for dev := range want {
				want[dev] = make([]byte, rows*bs)
				rng.Read(want[dev])
				// Irregular run sizes cover the segment-splitting logic.
				for b := int64(0); b < rows; {
					n := int64(rng.Intn(9) + 1)
					if b+n > rows {
						n = rows - b
					}
					if err := p.WriteBlocks(ctx, dev, b, int(n), want[dev][b*bs:(b+n)*bs]); err != nil {
						t.Fatalf("WriteBlocks(dev=%d,b=%d,n=%d): %v", dev, b, n, err)
					}
					b += n
				}
			}
			checkParityConsistent(t, p, rows)

			// Healthy ranged and per-block reads agree.
			got := make([]byte, rows*bs)
			buf := make([]byte, bs)
			for dev := range want {
				if err := p.ReadBlocks(ctx, dev, 0, rows, got); err != nil {
					t.Fatalf("ReadBlocks(dev=%d): %v", dev, err)
				}
				if !bytes.Equal(got, want[dev]) {
					t.Fatalf("dev %d ranged read mismatch", dev)
				}
				for b := int64(0); b < rows; b++ {
					if err := p.ReadBlock(ctx, dev, b, buf); err != nil {
						t.Fatalf("ReadBlock(dev=%d,b=%d): %v", dev, b, err)
					}
					if !bytes.Equal(buf, want[dev][b*bs:(b+1)*bs]) {
						t.Fatalf("dev %d block %d mismatch", dev, b)
					}
				}
			}

			// Degraded: fail each physical drive in turn; every visible
			// device must still read back exactly via ReadBlocks.
			for fail := 0; fail < p.PhysDrives(); fail++ {
				p.PhysDisk(fail).Fail()
				for dev := range want {
					if err := p.ReadBlocks(ctx, dev, 0, rows, got); err != nil {
						t.Fatalf("degraded(fail=%d) ReadBlocks(dev=%d): %v", fail, dev, err)
					}
					if !bytes.Equal(got, want[dev]) {
						t.Fatalf("degraded(fail=%d) dev %d mismatch", fail, dev)
					}
				}
				p.PhysDisk(fail).Repair()
			}

			// Degraded writes: runs written with a failed drive must fold
			// into parity and read back after repair+rebuild.
			p.PhysDisk(0).Fail()
			alt := make([]byte, rows*bs)
			rng.Read(alt)
			if err := p.WriteBlocks(ctx, 0, 0, rows, alt); err != nil {
				t.Fatalf("degraded WriteBlocks: %v", err)
			}
			if err := p.ReadBlocks(ctx, 0, 0, rows, got); err != nil {
				t.Fatalf("degraded read-after-write: %v", err)
			}
			if !bytes.Equal(got, alt) {
				t.Fatal("degraded write not recoverable")
			}
			p.PhysDisk(0).Repair()
			if err := p.PhysDisk(0).Erase(); err != nil {
				t.Fatal(err)
			}
			if err := p.Rebuild(ctx, 0, rows); err != nil {
				t.Fatalf("rebuild: %v", err)
			}
			checkParityConsistent(t, p, rows)
			if err := p.ReadBlocks(ctx, 0, 0, rows, got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, alt) {
				t.Fatal("post-rebuild mismatch")
			}
		})
	}
}

// TestParityRunUnderEngine exercises concurrent overlapping WriteBlocks
// from managed processes: ascending row-lock acquisition must not
// deadlock and parity must stay consistent.
func TestParityRunUnderEngine(t *testing.T) {
	const rows = 32
	const bs = 64
	e := sim.NewEngine()
	p, err := NewParity(newDrives(t, 4, e), true)
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 3; w++ {
		w := w
		e.Go(fmt.Sprintf("writer%d", w), func(pr *sim.Proc) {
			data := make([]byte, rows*bs)
			rand.New(rand.NewSource(int64(w))).Read(data)
			for pass := 0; pass < 2; pass++ {
				for b := int64(0); b < rows; b += 8 {
					if err := p.WriteBlocks(pr, w, b, 8, data[b*bs:(b+8)*bs]); err != nil {
						t.Errorf("writer %d: %v", w, err)
						return
					}
				}
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	checkParityConsistent(t, p, rows)
}

// TestMirrorRunEquivalence checks WriteBlocks lands on drive and shadow,
// ranged reads equal per-block reads, and a failed primary fails over.
func TestMirrorRunEquivalence(t *testing.T) {
	ctx := sim.NewWall()
	const rows = 24
	const bs = 64
	m, err := NewMirror(newDrives(t, 2, nil), newDrives(t, 2, nil))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	want := make([]byte, rows*bs)
	rng.Read(want)
	for b := int64(0); b < rows; {
		n := int64(rng.Intn(5) + 1)
		if b+n > rows {
			n = rows - b
		}
		if err := m.WriteBlocks(ctx, 1, b, int(n), want[b*bs:(b+n)*bs]); err != nil {
			t.Fatalf("WriteBlocks: %v", err)
		}
		b += n
	}
	got := make([]byte, rows*bs)
	if err := m.ReadBlocks(ctx, 1, 0, rows, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("mirror ranged read mismatch")
	}
	buf := make([]byte, bs)
	for b := int64(0); b < rows; b++ {
		if err := m.Shadow(1).ReadBlock(ctx, b, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, want[b*bs:(b+1)*bs]) {
			t.Fatalf("shadow row %d differs", b)
		}
	}
	m.Primary(1).Fail()
	clear(got)
	if err := m.ReadBlocks(ctx, 1, 0, rows, got); err != nil {
		t.Fatalf("failover ReadBlocks: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("failover read mismatch")
	}
	m.Shadow(1).Fail()
	if err := m.ReadBlocks(ctx, 1, 0, rows, got); err == nil {
		t.Fatal("double failure read should error")
	}
}
