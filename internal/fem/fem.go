// Package fem implements the baseline the paper argues against: the
// file-per-process practice from NASA's Finite Element Machine (§3).
// Each process owns one or more private sequential files; a global input
// must be partitioned into them by a pre-processing utility, and their
// outputs merged back by a post-processing utility — the two overheads
// the paper reports users "balked at".
//
// The manager quantifies the §3 pain points directly: the number of
// file-system objects to create/track/delete, and the virtual time spent
// in the partition and merge passes (which are sequential programs).
package fem

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/pfs"
	"repro/internal/sim"
)

// Manager tracks a file-per-process working set on a volume.
type Manager struct {
	vol    *pfs.Volume
	app    string
	procs  int
	perPrc int
	names  []string

	created int
	deleted int
}

// NewManager prepares a manager for app with procs processes and
// filesPerProc private files each.
func NewManager(vol *pfs.Volume, app string, procs, filesPerProc int) (*Manager, error) {
	if procs <= 0 || filesPerProc <= 0 {
		return nil, fmt.Errorf("fem: procs %d, filesPerProc %d", procs, filesPerProc)
	}
	return &Manager{vol: vol, app: app, procs: procs, perPrc: filesPerProc}, nil
}

// FileName reports the conventional name of process p's i-th file.
func (m *Manager) FileName(p, i int) string {
	return fmt.Sprintf("%s.p%03d.f%d", m.app, p, i)
}

// FileCount reports how many separate files the working set needs — the
// paper's first complaint ("the sheer number of files became unwieldy").
func (m *Manager) FileCount() int { return m.procs * m.perPrc }

// Created reports how many files have been created so far.
func (m *Manager) Created() int { return m.created }

// Deleted reports how many files have been deleted so far.
func (m *Manager) Deleted() int { return m.deleted }

// CreateAll creates every private file (recordSize bytes per record,
// recsPerFile records each). Each create is a separate directory
// operation, as it was on the FEM.
func (m *Manager) CreateAll(recordSize int, recsPerFile int64) error {
	for p := 0; p < m.procs; p++ {
		for i := 0; i < m.perPrc; i++ {
			name := m.FileName(p, i)
			_, err := m.vol.Create(pfs.Spec{
				Name:       name,
				Org:        pfs.OrgSequential,
				Category:   pfs.Specialized,
				RecordSize: recordSize,
				NumRecords: recsPerFile,
			})
			if err != nil {
				return fmt.Errorf("fem: create %s: %w", name, err)
			}
			m.names = append(m.names, name)
			m.created++
		}
	}
	return nil
}

// DeleteAll removes every private file — individually, as the paper
// complains.
func (m *Manager) DeleteAll() error {
	for _, name := range m.names {
		if err := m.vol.Remove(name); err != nil {
			return err
		}
		m.deleted++
	}
	m.names = nil
	return nil
}

// Partition is the pre-processing utility: a sequential program that
// reads a global input file and deals its records round-robin into each
// process's file 0. It returns the virtual time consumed.
func (m *Manager) Partition(ctx sim.Context, global *pfs.File, opts core.Options) (elapsed time.Duration, err error) {
	start := ctx.Now()
	r, err := core.OpenReader(global, opts)
	if err != nil {
		return 0, err
	}
	defer r.Close(ctx)
	writers := make([]*core.StreamWriter, m.procs)
	for p := 0; p < m.procs; p++ {
		f, err := m.vol.Lookup(m.FileName(p, 0))
		if err != nil {
			return 0, err
		}
		w, err := core.OpenWriter(f, opts)
		if err != nil {
			return 0, err
		}
		writers[p] = w
	}
	var rec int64
	for {
		data, _, rerr := r.ReadRecord(ctx)
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			err = rerr
			break
		}
		if _, werr := writers[int(rec)%m.procs].WriteRecord(ctx, data); werr != nil {
			err = werr
			break
		}
		rec++
	}
	for _, w := range writers {
		if cerr := w.Close(ctx); cerr != nil && err == nil {
			err = cerr
		}
	}
	return ctx.Now() - start, err
}

// Merge is the post-processing utility: a sequential program that reads
// every process's file 0 and reassembles the global order (inverse of
// Partition's round-robin deal) into dst. It returns the virtual time
// consumed.
func (m *Manager) Merge(ctx sim.Context, dst *pfs.File, opts core.Options) (time.Duration, error) {
	start := ctx.Now()
	readers := make([]*core.StreamReader, m.procs)
	for p := 0; p < m.procs; p++ {
		f, err := m.vol.Lookup(m.FileName(p, 0))
		if err != nil {
			return 0, err
		}
		r, err := core.OpenReader(f, opts)
		if err != nil {
			return 0, err
		}
		readers[p] = r
	}
	w, err := core.OpenWriter(dst, opts)
	if err != nil {
		return 0, err
	}
	var rec int64
	total := dst.Mapper().NumRecords()
	for rec < total {
		data, _, rerr := readers[int(rec)%m.procs].ReadRecord(ctx)
		if rerr != nil {
			err = rerr
			break
		}
		if _, werr := w.WriteRecord(ctx, data); werr != nil {
			err = werr
			break
		}
		rec++
	}
	for _, r := range readers {
		if cerr := r.Close(ctx); cerr != nil && err == nil {
			err = cerr
		}
	}
	if cerr := w.Close(ctx); cerr != nil && err == nil {
		err = cerr
	}
	return ctx.Now() - start, err
}

// ProcFile returns process p's i-th file for direct worker access.
func (m *Manager) ProcFile(p, i int) (*pfs.File, error) {
	return m.vol.Lookup(m.FileName(p, i))
}
