package fem

import (
	"io"
	"testing"

	"repro/internal/blockio"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/workload"
)

func testVolume(t *testing.T, devs int) *pfs.Volume {
	t.Helper()
	disks := make([]*device.Disk, devs)
	for i := range disks {
		disks[i] = device.New(device.Config{
			Geometry: device.Geometry{BlockSize: 256, BlocksPerCyl: 8, Cylinders: 512},
		})
	}
	store, err := blockio.NewDirect(disks)
	if err != nil {
		t.Fatal(err)
	}
	return pfs.NewVolume(store)
}

func TestManagerValidation(t *testing.T) {
	v := testVolume(t, 2)
	if _, err := NewManager(v, "app", 0, 1); err == nil {
		t.Fatal("0 procs accepted")
	}
	if _, err := NewManager(v, "app", 1, 0); err == nil {
		t.Fatal("0 files accepted")
	}
}

func TestFileCountGrowth(t *testing.T) {
	v := testVolume(t, 2)
	m, err := NewManager(v, "app", 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	// The paper: "several separate files per process ... multiplied by 16
	// processors, the sheer number of files became unwieldy."
	if m.FileCount() != 64 {
		t.Fatalf("FileCount = %d", m.FileCount())
	}
}

func TestCreateDeleteLifecycle(t *testing.T) {
	v := testVolume(t, 2)
	m, err := NewManager(v, "app", 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.CreateAll(64, 8); err != nil {
		t.Fatal(err)
	}
	if m.Created() != 8 {
		t.Fatalf("Created = %d", m.Created())
	}
	if len(v.Files()) != 8 {
		t.Fatalf("directory has %d files", len(v.Files()))
	}
	if _, err := m.ProcFile(2, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.DeleteAll(); err != nil {
		t.Fatal(err)
	}
	if m.Deleted() != 8 || len(v.Files()) != 0 {
		t.Fatalf("Deleted = %d, dir = %d", m.Deleted(), len(v.Files()))
	}
}

func TestPartitionMergeRoundTrip(t *testing.T) {
	v := testVolume(t, 2)
	const procs = 4
	const total = 64
	global, err := v.Create(pfs.Spec{Name: "input", RecordSize: 64, NumRecords: total})
	if err != nil {
		t.Fatal(err)
	}
	ctx := sim.NewWall()
	// Fill global input.
	w, err := core.OpenWriter(global, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	for r := int64(0); r < total; r++ {
		workload.Record(buf, 3, r)
		if _, err := w.WriteRecord(ctx, buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(ctx); err != nil {
		t.Fatal(err)
	}

	m, err := NewManager(v, "app", procs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.CreateAll(64, total/procs); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Partition(ctx, global, core.Options{}); err != nil {
		t.Fatal(err)
	}
	// Each proc file holds its round-robin share.
	for p := 0; p < procs; p++ {
		f, err := m.ProcFile(p, 0)
		if err != nil {
			t.Fatal(err)
		}
		r, err := core.OpenReader(f, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		i := int64(0)
		for {
			data, _, err := r.ReadRecord(ctx)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			want := i*procs + int64(p)
			if err := workload.CheckRecord(data, 3, want); err != nil {
				t.Fatalf("proc %d: %v", p, err)
			}
			i++
		}
		if i != total/procs {
			t.Fatalf("proc %d holds %d records", p, i)
		}
		_ = r.Close(ctx)
	}
	// Merge back into a fresh global file and verify canonical order.
	out, err := v.Create(pfs.Spec{Name: "output", RecordSize: 64, NumRecords: total})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Merge(ctx, out, core.Options{}); err != nil {
		t.Fatal(err)
	}
	r, err := core.OpenReader(out, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for want := int64(0); want < total; want++ {
		data, _, err := r.ReadRecord(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if err := workload.CheckRecord(data, 3, want); err != nil {
			t.Fatal(err)
		}
	}
	_ = r.Close(ctx)
}

func TestPartitionMergeCostGrowsWithProcs(t *testing.T) {
	// Under virtual time, the sequential pre/post utilities cost real
	// simulated time that a single PS parallel file avoids.
	run := func(procs int) (elapsed int64) {
		e := sim.NewEngine()
		disks := make([]*device.Disk, 2)
		for i := range disks {
			disks[i] = device.New(device.Config{
				Geometry: device.Geometry{BlockSize: 256, BlocksPerCyl: 8, Cylinders: 512},
				Engine:   e,
			})
		}
		store, err := blockio.NewDirect(disks)
		if err != nil {
			t.Fatal(err)
		}
		v := pfs.NewVolume(store)
		global, err := v.Create(pfs.Spec{Name: "input", RecordSize: 64, NumRecords: 64})
		if err != nil {
			t.Fatal(err)
		}
		m, err := NewManager(v, "app", procs, 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.CreateAll(64, 64/int64(procs)); err != nil {
			t.Fatal(err)
		}
		e.Go("driver", func(p *sim.Proc) {
			buf := make([]byte, 64)
			w, err := core.OpenWriter(global, core.Options{})
			if err != nil {
				t.Error(err)
				return
			}
			for r := int64(0); r < 64; r++ {
				workload.Record(buf, 1, r)
				if _, err := w.WriteRecord(p, buf); err != nil {
					t.Error(err)
					return
				}
			}
			if err := w.Close(p); err != nil {
				t.Error(err)
			}
			d, err := m.Partition(p, global, core.Options{})
			if err != nil {
				t.Error(err)
			}
			elapsed = int64(d)
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return elapsed
	}
	if run(4) <= 0 {
		t.Fatal("partition pass cost no virtual time")
	}
}
