// Package experiments contains one driver per reproduced figure/table.
// Each driver builds a fresh simulated machine (1989-class drives under a
// virtual-time engine), runs the workload, and returns paper-style tables
// plus named metrics for the benchmark harness and shape assertions.
//
// The experiment index, the paper claims each one reproduces, and the
// expected shapes are documented in DESIGN.md §5 and EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/blockio"
	"repro/internal/device"
	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Result is the outcome of one experiment run.
type Result struct {
	ID      string
	Title   string
	Tables  []*stats.Table
	Metrics map[string]float64
}

// String renders all tables.
func (r *Result) String() string {
	out := fmt.Sprintf("== %s: %s ==\n", r.ID, r.Title)
	for _, t := range r.Tables {
		out += "\n" + t.String()
	}
	return out
}

// entry is one registered experiment driver.
type entry struct {
	title string
	run   func() (*Result, error)
}

// registry maps experiment ids to drivers. It is populated in init (a
// plain var initializer would form a reference cycle through Title).
var registry = map[string]entry{}

func init() {
	registry["f1"] = entry{"Figure 1: internal organizations of sequential parallel files", Figure1}
	registry["e1"] = entry{"E1: disk striping bandwidth for S files (§4)", E1Striping}
	registry["e2"] = entry{"E2: self-scheduled early pointer release (§4)", E2SelfSched}
	registry["e3"] = entry{"E3: one device per process — independent progress (§4)", E3DevicePerProcess}
	registry["e4"] = entry{"E4: fewer devices than processes — seek interference (§4)", E4SeekInterference}
	registry["e5"] = entry{"E5: declustering vs whole blocks under skew (§4, Livny)", E5Decluster}
	registry["e6"] = entry{"E6: buffering — overlap of I/O with computation (§4)", E6Buffering}
	registry["e7"] = entry{"E7: global view performance by placement (§4)", E7GlobalView}
	registry["e8"] = entry{"E8: reliability — MTBF, parity, shadowing (§5)", E8Reliability}
	registry["e9"] = entry{"E9: view mismatch remedies (§5)", E9ViewMismatch}
	registry["e10"] = entry{"E10: boundary data — replicate vs cache (§5)", E10Boundary}
	registry["e11"] = entry{"E11: file-per-process baseline (FEM, §3)", E11FemBaseline}
}

// IDs lists the experiment identifiers in canonical order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		// f1 first, then e1..e11 numerically.
		a, b := ids[i], ids[j]
		if a[0] != b[0] {
			return a[0] == 'f'
		}
		var na, nb int
		fmt.Sscanf(a[1:], "%d", &na)
		fmt.Sscanf(b[1:], "%d", &nb)
		return na < nb
	})
	return ids
}

// Title reports the registered title for id.
func Title(id string) string { return registry[id].title }

// Run executes the experiment with the given id.
func Run(id string) (*Result, error) {
	ent, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q (have %v)", id, IDs())
	}
	return ent.run()
}

// geom1989 is the drive layout used by all experiments: 4 KiB blocks,
// 64 per cylinder, 900 cylinders.
func geom1989() device.Geometry { return device.DefaultGeometry1989() }

// array builds n engine-attached 1989 drives and a volume over them.
func array(e *sim.Engine, n int, sched device.Sched) ([]*device.Disk, *pfs.Volume, error) {
	disks := make([]*device.Disk, n)
	for i := range disks {
		disks[i] = device.New(device.Config{
			Name:     fmt.Sprintf("d%d", i),
			Geometry: geom1989(),
			Engine:   e,
			Sched:    sched,
		})
	}
	store, err := blockio.NewDirect(disks)
	if err != nil {
		return nil, nil, err
	}
	return disks, pfs.NewVolume(store), nil
}

// runMain runs fn as the single root process of a fresh engine and
// returns the total virtual time.
func runMain(e *sim.Engine, fn func(p *sim.Proc) error) (time.Duration, error) {
	var ferr error
	e.Go("main", func(p *sim.Proc) {
		ferr = fn(p)
	})
	if err := e.Run(); err != nil {
		return 0, err
	}
	return e.Now(), ferr
}

// sumSeeks totals seek counts across disks.
func sumSeeks(disks []*device.Disk) (count, cyls int64) {
	for _, d := range disks {
		st := d.Stats()
		count += st.Seeks
		cyls += st.SeekCyls
	}
	return count, cyls
}
