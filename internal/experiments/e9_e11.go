package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/boundary"
	"repro/internal/convert"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/fem"
	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// E9ViewMismatch measures the §5 remedies when a file written with a PS
// organization must later be consumed with an IS view: the alternate
// software view (degraded), the global-view fallback (serial), and copy
// conversion (expensive once, fast thereafter).
func E9ViewMismatch() (*Result, error) {
	const recordSize = 4096
	const totalRecords = 512
	const devs = 4
	const procs = 4
	table := stats.NewTable("E9: PS-written 2 MiB file consumed with an IS view (4 processes, 4 devices)",
		"strategy", "1 pass", "4 passes", "notes")
	table.Note = "copy-convert pays the conversion once; alternate view pays the placement mismatch every pass"
	metrics := map[string]float64{}

	// readPass performs one full parallel IS-view consumption of f.
	readPass := func(p *sim.Proc, f *pfs.File, native bool) error {
		var g sim.Group
		for w := 0; w < procs; w++ {
			wid := w
			g.Spawn(p.Engine(), "w", func(c *sim.Proc) {
				r, err := core.OpenInterleavedReader(f, wid, procs, core.Options{NBufs: 2, IOProcs: 1})
				if err != nil {
					return
				}
				for {
					if _, _, err := r.ReadRecord(c); err != nil {
						break
					}
					c.Sleep(time.Millisecond)
				}
				_ = r.Close(c)
			})
		}
		g.Wait(p)
		return nil
	}

	mkPS := func(e *sim.Engine) (*pfs.Volume, *pfs.File, error) {
		_, vol, err := array(e, devs, device.FCFS)
		if err != nil {
			return nil, nil, err
		}
		f, err := vol.Create(pfs.Spec{
			Name: "ps", Org: pfs.OrgPartitioned, RecordSize: recordSize,
			BlockRecords: 1, NumRecords: totalRecords, Parts: procs,
		})
		return vol, f, err
	}
	fill := func(p *sim.Proc, f *pfs.File) error {
		w, err := core.OpenWriter(f, core.Options{NBufs: 8, IOProcs: 4})
		if err != nil {
			return err
		}
		buf := make([]byte, recordSize)
		for r := int64(0); r < totalRecords; r++ {
			workload.Record(buf, 1, r)
			if _, err := w.WriteRecord(p, buf); err != nil {
				return err
			}
		}
		return w.Close(p)
	}

	// Strategy 1: alternate view directly on the PS file.
	altOne, altFour := time.Duration(0), time.Duration(0)
	{
		e := sim.NewEngine()
		_, f, err := mkPS(e)
		if err != nil {
			return nil, err
		}
		if _, err := runMain(e, func(p *sim.Proc) error {
			if err := fill(p, f); err != nil {
				return err
			}
			start := p.Now()
			if err := readPass(p, f, false); err != nil {
				return err
			}
			altOne = p.Now() - start
			for i := 0; i < 3; i++ {
				if err := readPass(p, f, false); err != nil {
					return err
				}
			}
			altFour = p.Now() - start
			return nil
		}); err != nil {
			return nil, err
		}
	}

	// Strategy 2: global-view fallback (single sequential consumer).
	glbOne, glbFour := time.Duration(0), time.Duration(0)
	{
		e := sim.NewEngine()
		_, f, err := mkPS(e)
		if err != nil {
			return nil, err
		}
		if _, err := runMain(e, func(p *sim.Proc) error {
			if err := fill(p, f); err != nil {
				return err
			}
			start := p.Now()
			pass := func() error {
				r, err := core.OpenReader(f, core.Options{NBufs: 8, IOProcs: 4})
				if err != nil {
					return err
				}
				for {
					if _, _, err := r.ReadRecord(p); err != nil {
						if err == io.EOF {
							return r.Close(p)
						}
						return err
					}
					p.Sleep(time.Millisecond / 4) // same total compute, one process
				}
			}
			if err := pass(); err != nil {
				return err
			}
			glbOne = p.Now() - start
			for i := 0; i < 3; i++ {
				if err := pass(); err != nil {
					return err
				}
			}
			glbFour = p.Now() - start
			return nil
		}); err != nil {
			return nil, err
		}
	}

	// Strategy 3: copy-convert to IS, then native passes.
	cpOne, cpFour := time.Duration(0), time.Duration(0)
	{
		e := sim.NewEngine()
		vol, f, err := mkPS(e)
		if err != nil {
			return nil, err
		}
		if _, err := runMain(e, func(p *sim.Proc) error {
			if err := fill(p, f); err != nil {
				return err
			}
			start := p.Now()
			is, err := convert.ToOrganization(p, vol, f, "is", pfs.OrgInterleaved, procs,
				core.Options{NBufs: 8, IOProcs: 4})
			if err != nil {
				return err
			}
			if err := readPass(p, is, true); err != nil {
				return err
			}
			cpOne = p.Now() - start
			for i := 0; i < 3; i++ {
				if err := readPass(p, is, true); err != nil {
					return err
				}
			}
			cpFour = p.Now() - start
			return nil
		}); err != nil {
			return nil, err
		}
	}

	table.AddRow("alternate view (PS placement)", altOne, altFour, "stride fights placement every pass")
	table.AddRow("global-view fallback", glbOne, glbFour, "one sequential consumer")
	table.AddRow("copy-convert to IS", cpOne, cpFour, "includes one full copy")
	metrics["alt_one_s"] = altOne.Seconds()
	metrics["alt_four_s"] = altFour.Seconds()
	metrics["glb_one_s"] = glbOne.Seconds()
	metrics["copy_one_s"] = cpOne.Seconds()
	metrics["copy_four_s"] = cpFour.Seconds()
	return &Result{ID: "e9", Title: Title("e9"), Tables: []*stats.Table{table}, Metrics: metrics}, nil
}

// E10Boundary measures the §5 boundary-data remedies on an out-of-core
// 1-D stencil: replicating halo records in the file (bigger file, clean
// per-partition streams, dirty global view) versus caching halos in
// memory (clean file, extra random reads on the first pass only).
func E10Boundary() (*Result, error) {
	const recordSize = 4096
	const points = 512
	const parts = 4
	const devs = 4
	table := stats.NewTable("E10: 1-D stencil, 512 records, 4 partitions, 4 devices",
		"halo", "strategy", "file overhead", "1 pass", "4 passes", "global view scan")
	table.Note = "replicate stores halos in the file; cache reads them once via direct access and holds them in memory"
	metrics := map[string]float64{}

	for _, halo := range []int64{1, 8} {
		l, err := boundary.New(parts, points, halo)
		if err != nil {
			return nil, err
		}

		// Strategy A: replicated file.
		var repOne, repFour, repGlobal time.Duration
		{
			e := sim.NewEngine()
			_, vol, err := array(e, devs, device.FCFS)
			if err != nil {
				return nil, err
			}
			f, err := boundary.CreateReplicated(vol, "halo", recordSize, l)
			if err != nil {
				return nil, err
			}
			if _, err := runMain(e, func(p *sim.Proc) error {
				src := func(rec int64, buf []byte) error {
					workload.Record(buf, 2, rec)
					return nil
				}
				for part := 0; part < parts; part++ {
					if err := boundary.WriteReplicated(p, f, l, part, src, core.Options{NBufs: 4, IOProcs: 2}); err != nil {
						return err
					}
				}
				start := p.Now()
				pass := func() error {
					var g sim.Group
					for part := 0; part < parts; part++ {
						pid := part
						g.Spawn(p.Engine(), "w", func(c *sim.Proc) {
							pr, err := boundary.OpenPartReader(f, l, pid, core.Options{NBufs: 2, IOProcs: 1})
							if err != nil {
								return
							}
							for {
								if _, _, err := pr.ReadRecord(c); err != nil {
									break
								}
								c.Sleep(time.Millisecond)
							}
							_ = pr.Close(c)
						})
					}
					g.Wait(p)
					return nil
				}
				if err := pass(); err != nil {
					return err
				}
				repOne = p.Now() - start
				for i := 0; i < 3; i++ {
					if err := pass(); err != nil {
						return err
					}
				}
				repFour = p.Now() - start
				// Global-view scan pays the dedup machinery.
				gStart := p.Now()
				dr, err := boundary.OpenDedupReader(f, l, p, core.Options{NBufs: 4, IOProcs: 2})
				if err != nil {
					return err
				}
				for {
					if _, _, err := dr.ReadRecord(p); err != nil {
						break
					}
				}
				if err := dr.Close(p); err != nil {
					return err
				}
				repGlobal = p.Now() - gStart
				return nil
			}); err != nil {
				return nil, err
			}
		}

		// Strategy B: plain file + in-memory halo cache.
		var cacheOne, cacheFour, plainGlobal time.Duration
		{
			e := sim.NewEngine()
			_, vol, err := array(e, devs, device.FCFS)
			if err != nil {
				return nil, err
			}
			f, err := boundary.CreatePlain(vol, "plain", recordSize, l)
			if err != nil {
				return nil, err
			}
			if _, err := runMain(e, func(p *sim.Proc) error {
				w, err := core.OpenWriter(f, core.Options{NBufs: 8, IOProcs: 4})
				if err != nil {
					return err
				}
				buf := make([]byte, recordSize)
				for r := int64(0); r < points; r++ {
					workload.Record(buf, 2, r)
					if _, err := w.WriteRecord(p, buf); err != nil {
						return err
					}
				}
				if err := w.Close(p); err != nil {
					return err
				}
				start := p.Now()
				// Pass 1 includes halo fills.
				var g sim.Group
				caches := make([]*boundary.HaloCache, parts)
				for part := 0; part < parts; part++ {
					pid := part
					g.Spawn(p.Engine(), "w", func(c *sim.Proc) {
						h := boundary.NewHaloCache(l, pid, recordSize)
						caches[pid] = h
						if err := h.Fill(c, f, core.Options{CacheBlocks: 4}); err != nil {
							return
						}
						r, err := core.OpenPartReader(f, pid, core.Options{NBufs: 2, IOProcs: 1})
						if err != nil {
							return
						}
						for {
							if _, _, err := r.ReadRecord(c); err != nil {
								break
							}
							c.Sleep(time.Millisecond)
						}
						_ = r.Close(c)
					})
				}
				g.Wait(p)
				cacheOne = p.Now() - start
				// Later passes: own records only, halos from memory.
				for i := 0; i < 3; i++ {
					var g2 sim.Group
					for part := 0; part < parts; part++ {
						pid := part
						g2.Spawn(p.Engine(), "w", func(c *sim.Proc) {
							r, err := core.OpenPartReader(f, pid, core.Options{NBufs: 2, IOProcs: 1})
							if err != nil {
								return
							}
							for {
								if _, _, err := r.ReadRecord(c); err != nil {
									break
								}
								c.Sleep(time.Millisecond)
							}
							_ = r.Close(c)
						})
					}
					g2.Wait(p)
				}
				cacheFour = p.Now() - start
				// Global view of the plain file is a free, clean scan.
				gStart := p.Now()
				r, err := core.OpenReader(f, core.Options{NBufs: 4, IOProcs: 2})
				if err != nil {
					return err
				}
				for {
					if _, _, err := r.ReadRecord(p); err != nil {
						break
					}
				}
				if err := r.Close(p); err != nil {
					return err
				}
				plainGlobal = p.Now() - gStart
				return nil
			}); err != nil {
				return nil, err
			}
		}

		ov := fmt.Sprintf("%.1f%%", l.Overhead()*100)
		table.AddRow(halo, "replicate in file", ov, repOne, repFour, repGlobal)
		table.AddRow(halo, "cache in memory", "0%", cacheOne, cacheFour, plainGlobal)
		metrics[fmt.Sprintf("rep_one_h%d_s", halo)] = repOne.Seconds()
		metrics[fmt.Sprintf("rep_four_h%d_s", halo)] = repFour.Seconds()
		metrics[fmt.Sprintf("cache_one_h%d_s", halo)] = cacheOne.Seconds()
		metrics[fmt.Sprintf("cache_four_h%d_s", halo)] = cacheFour.Seconds()
		metrics[fmt.Sprintf("overhead_h%d", halo)] = l.Overhead()
	}
	return &Result{ID: "e10", Title: Title("e10"), Tables: []*stats.Table{table}, Metrics: metrics}, nil
}

// E11FemBaseline quantifies the §3 Finite Element Machine experience:
// file-per-process working sets versus one PS parallel file — object
// counts and the pre/post-processing passes users "balked at".
func E11FemBaseline() (*Result, error) {
	const recordSize = 4096
	const devs = 4
	table := stats.NewTable("E11: file-per-process (FEM) vs one PS parallel file, 1 MiB of records",
		"procs", "files/proc", "fs objects", "partition pass", "merge pass", "pre+post overhead", "PS parallel file")
	table.Note = "overhead = sequential partition+merge time the PS organization eliminates; PS column = objects it needs"
	metrics := map[string]float64{}

	const totalRecords = 256
	for _, procs := range []int{4, 16, 64} {
		for _, perProc := range []int{1, 4} {
			e := sim.NewEngine()
			_, vol, err := array(e, devs, device.FCFS)
			if err != nil {
				return nil, err
			}
			global, err := vol.Create(pfs.Spec{
				Name: "input", Org: pfs.OrgSequential, RecordSize: recordSize,
				BlockRecords: 1, NumRecords: totalRecords, StripeUnitFS: 1,
			})
			if err != nil {
				return nil, err
			}
			output, err := vol.Create(pfs.Spec{
				Name: "output", Org: pfs.OrgSequential, RecordSize: recordSize,
				BlockRecords: 1, NumRecords: totalRecords, StripeUnitFS: 1,
			})
			if err != nil {
				return nil, err
			}
			m, err := fem.NewManager(vol, "app", procs, perProc)
			if err != nil {
				return nil, err
			}
			if err := m.CreateAll(recordSize, totalRecords/int64(procs)); err != nil {
				return nil, err
			}
			var partT, mergeT time.Duration
			if _, err := runMain(e, func(p *sim.Proc) error {
				w, err := core.OpenWriter(global, core.Options{NBufs: 8, IOProcs: 4})
				if err != nil {
					return err
				}
				buf := make([]byte, recordSize)
				for r := int64(0); r < totalRecords; r++ {
					workload.Record(buf, 3, r)
					if _, err := w.WriteRecord(p, buf); err != nil {
						return err
					}
				}
				if err := w.Close(p); err != nil {
					return err
				}
				partT, err = m.Partition(p, global, core.Options{NBufs: 4, IOProcs: 2})
				if err != nil {
					return err
				}
				mergeT, err = m.Merge(p, output, core.Options{NBufs: 4, IOProcs: 2})
				return err
			}); err != nil {
				return nil, err
			}
			table.AddRow(procs, perProc, m.FileCount(), partT, mergeT, partT+mergeT, "1 object, 0 pre/post")
			metrics[fmt.Sprintf("files_p%d_f%d", procs, perProc)] = float64(m.FileCount())
			metrics[fmt.Sprintf("prepost_s_p%d_f%d", procs, perProc)] = (partT + mergeT).Seconds()
		}
	}
	return &Result{ID: "e11", Title: Title("e11"), Tables: []*stats.Table{table}, Metrics: metrics}, nil
}
