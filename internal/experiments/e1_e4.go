package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/blockio"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/stats"
)

// E1Striping measures sequential (type S) read and write bandwidth as
// the file is striped over 1..16 devices — the §4 claim that "disk
// striping can be used to spread the file across multiple drives,
// resulting in higher transfer rates".
func E1Striping() (*Result, error) {
	const records = 1024 // 4 MiB with 4 KiB records
	const recordSize = 4096
	table := stats.NewTable("E1: type-S scan of a 4 MiB file, striped (stripe unit = 1 block)",
		"devices", "read time", "read MB/s", "read speedup", "write time", "write MB/s")
	table.Note = "read-ahead/write-behind sized to the device count; speedup is vs 1 device"
	metrics := map[string]float64{}

	var baseRead time.Duration
	for _, devs := range []int{1, 2, 4, 8, 16} {
		e := sim.NewEngine()
		_, vol, err := array(e, devs, device.FCFS)
		if err != nil {
			return nil, err
		}
		f, err := vol.Create(pfs.Spec{
			Name: "s", Org: pfs.OrgSequential, RecordSize: recordSize,
			BlockRecords: 1, NumRecords: records, StripeUnitFS: 1,
		})
		if err != nil {
			return nil, err
		}
		opts := core.Options{NBufs: 2 * devs, IOProcs: devs, EarlyRelease: true}
		var writeTime, readTime time.Duration
		if _, err := runMain(e, func(p *sim.Proc) error {
			start := p.Now()
			w, err := core.OpenWriter(f, opts)
			if err != nil {
				return err
			}
			buf := make([]byte, recordSize)
			for r := int64(0); r < records; r++ {
				if _, err := w.WriteRecord(p, buf); err != nil {
					return err
				}
			}
			if err := w.Close(p); err != nil {
				return err
			}
			writeTime = p.Now() - start

			start = p.Now()
			rd, err := core.OpenReader(f, opts)
			if err != nil {
				return err
			}
			for {
				if _, _, err := rd.ReadRecord(p); err != nil {
					if err == io.EOF {
						break
					}
					return err
				}
			}
			if err := rd.Close(p); err != nil {
				return err
			}
			readTime = p.Now() - start
			return nil
		}); err != nil {
			return nil, err
		}

		bytes := int64(records) * recordSize
		if devs == 1 {
			baseRead = readTime
		}
		table.AddRow(devs, readTime, stats.MBps(bytes, readTime),
			stats.Speedup(baseRead, readTime), writeTime, stats.MBps(bytes, writeTime))
		metrics[fmt.Sprintf("read_mbps_d%d", devs)] = stats.MBps(bytes, readTime)
		metrics[fmt.Sprintf("read_speedup_d%d", devs)] = stats.Speedup(baseRead, readTime)
	}
	return &Result{ID: "e1", Title: Title("e1"), Tables: []*stats.Table{table}, Metrics: metrics}, nil
}

// E2SelfSched measures the §4 self-scheduling optimization: early
// pointer release vs holding the shared pointer through each transfer,
// across compute/IO ratios.
func E2SelfSched() (*Result, error) {
	const records = 512
	const recordSize = 4096
	const workers = 8
	const devs = 4
	table := stats.NewTable("E2: 8 workers self-scheduling 512 records from a 4-device striped SS file",
		"compute/record", "early release", "serialized", "speedup")
	table.Note = "early release = pointer advanced and buffer reserved before the transfer completes (§4)"
	metrics := map[string]float64{}

	run := func(early bool, compute time.Duration) (time.Duration, error) {
		e := sim.NewEngine()
		_, vol, err := array(e, devs, device.FCFS)
		if err != nil {
			return 0, err
		}
		f, err := vol.Create(pfs.Spec{
			Name: "ss", Org: pfs.OrgSelfScheduled, RecordSize: recordSize,
			BlockRecords: 1, NumRecords: records, StripeUnitFS: 1,
		})
		if err != nil {
			return 0, err
		}
		var elapsed time.Duration
		_, err = runMain(e, func(p *sim.Proc) error {
			w, err := core.OpenWriter(f, core.Options{NBufs: 2 * devs, IOProcs: devs})
			if err != nil {
				return err
			}
			buf := make([]byte, recordSize)
			for r := int64(0); r < records; r++ {
				if _, err := w.WriteRecord(p, buf); err != nil {
					return err
				}
			}
			if err := w.Close(p); err != nil {
				return err
			}
			start := p.Now()
			opts := core.Options{NBufs: 2 * devs, IOProcs: devs, EarlyRelease: early}
			ss, err := core.OpenSelfSched(f, core.SSRead, opts)
			if err != nil {
				return err
			}
			var g sim.Group
			for wk := 0; wk < workers; wk++ {
				g.Spawn(p.Engine(), "w", func(c *sim.Proc) {
					dst := make([]byte, recordSize)
					for {
						if _, err := ss.ReadNext(c, dst); err != nil {
							return
						}
						if compute > 0 {
							c.Sleep(compute)
						}
					}
				})
			}
			g.Wait(p)
			if err := ss.Close(p); err != nil {
				return err
			}
			elapsed = p.Now() - start
			return nil
		})
		return elapsed, err
	}

	for _, compute := range []time.Duration{0, 2 * time.Millisecond, 10 * time.Millisecond, 40 * time.Millisecond} {
		early, err := run(true, compute)
		if err != nil {
			return nil, err
		}
		serial, err := run(false, compute)
		if err != nil {
			return nil, err
		}
		table.AddRow(compute, early, serial, stats.Speedup(serial, early))
		metrics[fmt.Sprintf("speedup_c%dms", compute/time.Millisecond)] = stats.Speedup(serial, early)
	}

	// Extension (§3.1): "self-scheduling by block for multi-record blocks
	// could be provided if needed" — claiming whole 4-record blocks
	// amortizes the shared-pointer critical section.
	granTable := stats.NewTable("E2b: claim granularity, 512 records in 4-record blocks, 2 ms compute/record",
		"claim unit", "elapsed", "pointer claims")
	runBlocks := func(byBlock bool) (time.Duration, int64, error) {
		e := sim.NewEngine()
		_, vol, err := array(e, devs, device.FCFS)
		if err != nil {
			return 0, 0, err
		}
		f, err := vol.Create(pfs.Spec{
			Name: "ssb", Org: pfs.OrgSelfScheduled, RecordSize: recordSize,
			BlockRecords: 4, NumRecords: records, StripeUnitFS: 1,
		})
		if err != nil {
			return 0, 0, err
		}
		var elapsed time.Duration
		var claims int64
		_, err = runMain(e, func(p *sim.Proc) error {
			w, err := core.OpenWriter(f, core.Options{NBufs: 2 * devs, IOProcs: devs})
			if err != nil {
				return err
			}
			buf := make([]byte, recordSize)
			for r := int64(0); r < records; r++ {
				if _, err := w.WriteRecord(p, buf); err != nil {
					return err
				}
			}
			if err := w.Close(p); err != nil {
				return err
			}
			start := p.Now()
			ss, err := core.OpenSelfSched(f, core.SSRead, core.Options{NBufs: 2 * devs, IOProcs: devs, EarlyRelease: true})
			if err != nil {
				return err
			}
			var g sim.Group
			for wk := 0; wk < workers; wk++ {
				g.Spawn(p.Engine(), "w", func(c *sim.Proc) {
					dst := make([]byte, recordSize)
					for {
						if byBlock {
							payload, _, err := ss.ReadNextBlock(c)
							if err != nil {
								return
							}
							claims++
							n := len(payload) / recordSize
							c.Sleep(time.Duration(n) * 2 * time.Millisecond)
						} else {
							if _, err := ss.ReadNext(c, dst); err != nil {
								return
							}
							claims++
							c.Sleep(2 * time.Millisecond)
						}
					}
				})
			}
			g.Wait(p)
			if err := ss.Close(p); err != nil {
				return err
			}
			elapsed = p.Now() - start
			return nil
		})
		return elapsed, claims, err
	}
	recElapsed, recClaims, err := runBlocks(false)
	if err != nil {
		return nil, err
	}
	blkElapsed, blkClaims, err := runBlocks(true)
	if err != nil {
		return nil, err
	}
	granTable.AddRow("record", recElapsed, recClaims)
	granTable.AddRow("block (4 records)", blkElapsed, blkClaims)
	metrics["claims_record"] = float64(recClaims)
	metrics["claims_block"] = float64(blkClaims)

	return &Result{ID: "e2", Title: Title("e2"), Tables: []*stats.Table{table, granTable}, Metrics: metrics}, nil
}

// E3DevicePerProcess shows the §4 property of PS/IS placements: with one
// device per process, processes "are free to proceed at different
// rates"; sharing one device couples them.
func E3DevicePerProcess() (*Result, error) {
	const procs = 4
	const blocksPerPart = 64
	const recordSize = 4096
	table := stats.NewTable("E3: 4 PS partitions, per-process compute rates 0/4/8/12 ms per block",
		"devices", "finish p0", "finish p1", "finish p2", "finish p3", "fast proc slowdown vs private")
	table.Note = "private devices let the light process finish early; a shared device couples everyone"
	metrics := map[string]float64{}

	run := func(devs int) ([procs]time.Duration, error) {
		var finish [procs]time.Duration
		e := sim.NewEngine()
		_, vol, err := array(e, devs, device.FCFS)
		if err != nil {
			return finish, err
		}
		f, err := vol.Create(pfs.Spec{
			Name: "ps", Org: pfs.OrgPartitioned, RecordSize: recordSize,
			BlockRecords: 1, NumRecords: procs * blocksPerPart, Parts: procs,
		})
		if err != nil {
			return finish, err
		}
		_, err = runMain(e, func(p *sim.Proc) error {
			// Fill all partitions.
			w, err := core.OpenWriter(f, core.Options{NBufs: 4, IOProcs: 2})
			if err != nil {
				return err
			}
			buf := make([]byte, recordSize)
			for r := int64(0); r < procs*blocksPerPart; r++ {
				if _, err := w.WriteRecord(p, buf); err != nil {
					return err
				}
			}
			if err := w.Close(p); err != nil {
				return err
			}
			start := p.Now()
			var g sim.Group
			for wk := 0; wk < procs; wk++ {
				wid := wk
				compute := time.Duration(wid) * 4 * time.Millisecond
				g.Spawn(p.Engine(), "w", func(c *sim.Proc) {
					r, err := core.OpenPartReader(f, wid, core.Options{NBufs: 2, IOProcs: 1})
					if err != nil {
						return
					}
					for {
						if _, _, err := r.ReadRecord(c); err != nil {
							break
						}
						if compute > 0 {
							c.Sleep(compute)
						}
					}
					_ = r.Close(c)
					finish[wid] = c.Now() - start
				})
			}
			g.Wait(p)
			return nil
		})
		return finish, err
	}

	private, err := run(procs)
	if err != nil {
		return nil, err
	}
	shared, err := run(1)
	if err != nil {
		return nil, err
	}
	table.AddRow(procs, private[0], private[1], private[2], private[3], 1.0)
	slow := float64(shared[0]) / float64(private[0])
	table.AddRow(1, shared[0], shared[1], shared[2], shared[3], slow)
	metrics["private_fast_finish_ms"] = float64(private[0]) / float64(time.Millisecond)
	metrics["shared_fast_finish_ms"] = float64(shared[0]) / float64(time.Millisecond)
	metrics["fast_proc_slowdown"] = slow
	return &Result{ID: "e3", Title: Title("e3"), Tables: []*stats.Table{table}, Metrics: metrics}, nil
}

// E4SeekInterference measures the §4 concern that with fewer devices
// than processes "seek times are likely to cause some performance
// degradation as the drive services requests from different processes",
// and compares the two on-device allocation policies ("work is needed
// here to determine the best ways to allocate space").
func E4SeekInterference() (*Result, error) {
	const procs = 16
	const blocksPerPart = 32
	const recordSize = 4096
	table := stats.NewTable("E4: 16 PS readers, devices swept 16..1, contiguous vs interleaved on-device packing",
		"devices", "procs/device", "pack", "elapsed", "agg MB/s", "seeks", "seek cylinders")
	table.Note = "FCFS queues; interleaved packing keeps co-resident partitions' current blocks close together"
	metrics := map[string]float64{}

	run := func(devs int, pack blockio.Pack, sched device.Sched) (time.Duration, int64, int64, error) {
		e := sim.NewEngine()
		disks, vol, err := array(e, devs, sched)
		if err != nil {
			return 0, 0, 0, err
		}
		f, err := vol.Create(pfs.Spec{
			Name: "ps", Org: pfs.OrgPartitioned, RecordSize: recordSize,
			BlockRecords: 1, NumRecords: procs * blocksPerPart, Parts: procs,
			Pack: pack,
		})
		if err != nil {
			return 0, 0, 0, err
		}
		var elapsed time.Duration
		_, err = runMain(e, func(p *sim.Proc) error {
			w, err := core.OpenWriter(f, core.Options{NBufs: 4, IOProcs: 2})
			if err != nil {
				return err
			}
			buf := make([]byte, recordSize)
			for r := int64(0); r < procs*blocksPerPart; r++ {
				if _, err := w.WriteRecord(p, buf); err != nil {
					return err
				}
			}
			if err := w.Close(p); err != nil {
				return err
			}
			for _, d := range disks {
				d.ResetStats()
			}
			start := p.Now()
			var g sim.Group
			for wk := 0; wk < procs; wk++ {
				wid := wk
				g.Spawn(p.Engine(), "w", func(c *sim.Proc) {
					r, err := core.OpenPartReader(f, wid, core.Options{NBufs: 2, IOProcs: 1})
					if err != nil {
						return
					}
					for {
						if _, _, err := r.ReadRecord(c); err != nil {
							break
						}
						c.Sleep(time.Millisecond) // light compute keeps procs in lockstep
					}
					_ = r.Close(c)
				})
			}
			g.Wait(p)
			elapsed = p.Now() - start
			return nil
		})
		if err != nil {
			return 0, 0, 0, err
		}
		seeks, cyls := sumSeeks(disks)
		return elapsed, seeks, cyls, nil
	}

	bytes := int64(procs) * blocksPerPart * recordSize
	for _, devs := range []int{16, 8, 4, 2, 1} {
		for _, pack := range []blockio.Pack{blockio.PackContiguous, blockio.PackInterleaved} {
			elapsed, seeks, cyls, err := run(devs, pack, device.FCFS)
			if err != nil {
				return nil, err
			}
			table.AddRow(devs, procs/devs, pack.String(), elapsed, stats.MBps(bytes, elapsed), seeks, cyls)
			metrics[fmt.Sprintf("mbps_d%d_%s", devs, pack)] = stats.MBps(bytes, elapsed)
			metrics[fmt.Sprintf("seekcyls_d%d_%s", devs, pack)] = float64(cyls)
		}
	}

	// Ablation: the elevator (SCAN) discipline is the classic device-level
	// mitigation for the same interference; compare it against FCFS on
	// the worst (contiguous) allocation.
	scanTable := stats.NewTable("E4b: device scheduling ablation on the contiguous allocation",
		"devices", "discipline", "elapsed", "agg MB/s", "seek cylinders")
	for _, devs := range []int{4, 1} {
		for _, sched := range []device.Sched{device.FCFS, device.SCAN} {
			elapsed, _, cyls, err := run(devs, blockio.PackContiguous, sched)
			if err != nil {
				return nil, err
			}
			scanTable.AddRow(devs, sched.String(), elapsed, stats.MBps(bytes, elapsed), cyls)
			metrics[fmt.Sprintf("mbps_d%d_%s", devs, sched)] = stats.MBps(bytes, elapsed)
			metrics[fmt.Sprintf("seekcyls_d%d_%s", devs, sched)] = float64(cyls)
		}
	}
	return &Result{ID: "e4", Title: Title("e4"), Tables: []*stats.Table{table, scanTable}, Metrics: metrics}, nil
}
