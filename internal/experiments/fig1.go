package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Figure1 reproduces the paper's Figure 1: the access patterns of the
// four sequential organizations (S, PS, IS, SS) for a hypothetical
// three-process program over a 12-block file. Each pattern is rendered
// as a block strip and machine-validated against the §3.1 definition.
func Figure1() (*Result, error) {
	const procs = 3
	const blocks = 12
	table := stats.NewTable("Figure 1: access patterns, 3 processes, 12 blocks (1 record/block)",
		"type", "pattern (owner of each block)", "valid")
	table.Note = "P1..P3 = processes, as in the paper's diagrams; SS ownership varies with timing but every record is claimed exactly once"

	metrics := map[string]float64{}

	type orgCase struct {
		name string
		org  pfs.Organization
		run  func(e *sim.Engine, f *pfs.File, rec *trace.Recorder) error
		val  func(events []trace.Event) error
	}

	fill := func(p *sim.Proc, f *pfs.File) error {
		w, err := core.OpenWriter(f, core.Options{})
		if err != nil {
			return err
		}
		buf := make([]byte, 64)
		for r := int64(0); r < blocks; r++ {
			if _, err := w.WriteRecord(p, buf); err != nil {
				return err
			}
		}
		return w.Close(p)
	}

	drainStream := func(c *sim.Proc, r *core.StreamReader) error {
		for {
			if _, _, err := r.ReadRecord(c); err != nil {
				if err == io.EOF {
					return r.Close(c)
				}
				return err
			}
		}
	}

	cases := []orgCase{
		{
			name: "S (sequential)",
			org:  pfs.OrgSequential,
			run: func(e *sim.Engine, f *pfs.File, rec *trace.Recorder) error {
				var ferr error
				e.Go("p0", func(p *sim.Proc) {
					if err := fill(p, f); err != nil {
						ferr = err
						return
					}
					r, err := core.OpenReader(f, core.Options{Trace: rec, Proc: 0})
					if err != nil {
						ferr = err
						return
					}
					ferr = drainStream(p, r)
				})
				return ferr
			},
			val: func(ev []trace.Event) error { return trace.ValidateSequential(ev, blocks) },
		},
		{
			name: "PS (partitioned)",
			org:  pfs.OrgPartitioned,
			run: func(e *sim.Engine, f *pfs.File, rec *trace.Recorder) error {
				var ferr error
				e.Go("main", func(p *sim.Proc) {
					if err := fill(p, f); err != nil {
						ferr = err
						return
					}
					var g sim.Group
					for w := 0; w < procs; w++ {
						wid := w
						g.Spawn(p.Engine(), "w", func(c *sim.Proc) {
							r, err := core.OpenPartReader(f, wid, core.Options{Trace: rec, Proc: wid})
							if err != nil {
								ferr = err
								return
							}
							if err := drainStream(c, r); err != nil {
								ferr = err
							}
						})
					}
					g.Wait(p)
				})
				return ferr
			},
			val: func(ev []trace.Event) error {
				return trace.ValidatePartitioned(ev, []int64{0, 4, 8, 12})
			},
		},
		{
			name: "IS (interleaved)",
			org:  pfs.OrgInterleaved,
			run: func(e *sim.Engine, f *pfs.File, rec *trace.Recorder) error {
				var ferr error
				e.Go("main", func(p *sim.Proc) {
					if err := fill(p, f); err != nil {
						ferr = err
						return
					}
					var g sim.Group
					for w := 0; w < procs; w++ {
						wid := w
						g.Spawn(p.Engine(), "w", func(c *sim.Proc) {
							r, err := core.OpenInterleavedReader(f, wid, procs, core.Options{Trace: rec, Proc: wid})
							if err != nil {
								ferr = err
								return
							}
							if err := drainStream(c, r); err != nil {
								ferr = err
							}
						})
					}
					g.Wait(p)
				})
				return ferr
			},
			val: func(ev []trace.Event) error {
				return trace.ValidateInterleaved(ev, procs, 1, blocks)
			},
		},
		{
			name: "SS (self-scheduled)",
			org:  pfs.OrgSelfScheduled,
			run: func(e *sim.Engine, f *pfs.File, rec *trace.Recorder) error {
				var ferr error
				e.Go("main", func(p *sim.Proc) {
					if err := fill(p, f); err != nil {
						ferr = err
						return
					}
					opts := core.DefaultOptions()
					opts.Trace = rec
					ss, err := core.OpenSelfSched(f, core.SSRead, opts)
					if err != nil {
						ferr = err
						return
					}
					var g sim.Group
					for w := 0; w < procs; w++ {
						wid := w
						g.Spawn(p.Engine(), "w", func(c *sim.Proc) {
							ss.RegisterProc(c, wid)
							dst := make([]byte, 64)
							for {
								if _, err := ss.ReadNext(c, dst); err != nil {
									return
								}
								// Uneven work so claims interleave.
								c.Sleep(time.Duration(wid+1) * time.Millisecond)
							}
						})
					}
					g.Wait(p)
					if err := ss.Close(p); err != nil {
						ferr = err
					}
				})
				return ferr
			},
			val: func(ev []trace.Event) error { return trace.ValidateSelfScheduled(ev, blocks) },
		},
	}

	for _, tc := range cases {
		e := sim.NewEngine()
		_, vol, err := array(e, procs, device.FCFS)
		if err != nil {
			return nil, err
		}
		spec := pfs.Spec{Name: "fig1", Org: tc.org, RecordSize: 64, BlockRecords: 1, NumRecords: blocks}
		if tc.org == pfs.OrgPartitioned || tc.org == pfs.OrgInterleaved {
			spec.Parts = procs
		}
		f, err := vol.Create(spec)
		if err != nil {
			return nil, err
		}
		rec := &trace.Recorder{}
		if err := tc.run(e, f, rec); err != nil {
			return nil, fmt.Errorf("%s: %w", tc.name, err)
		}
		if err := e.Run(); err != nil {
			return nil, fmt.Errorf("%s: %w", tc.name, err)
		}
		// Only read events (the fill pass writes without tracing).
		valErr := tc.val(rec.Events())
		valid := "yes"
		if valErr != nil {
			valid = valErr.Error()
		}
		table.AddRow(tc.name, trace.RenderBlocks(rec.Events(), blocks), valid)
		if valErr == nil {
			metrics[tc.name] = 1
		}
	}

	return &Result{
		ID:      "f1",
		Title:   Title("f1"),
		Tables:  []*stats.Table{table},
		Metrics: metrics,
	}, nil
}
