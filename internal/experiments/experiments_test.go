package experiments

import (
	"strings"
	"testing"
)

func TestIDsOrderAndTitles(t *testing.T) {
	ids := IDs()
	want := []string{"f1", "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11"}
	if len(ids) != len(want) {
		t.Fatalf("IDs = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("IDs = %v, want %v", ids, want)
		}
	}
	for _, id := range ids {
		if Title(id) == "" {
			t.Fatalf("no title for %s", id)
		}
	}
	if _, err := Run("nope"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

// runOK runs an experiment and sanity-checks the result envelope.
func runOK(t *testing.T, id string) *Result {
	t.Helper()
	res, err := Run(id)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if res.ID != id || len(res.Tables) == 0 {
		t.Fatalf("%s: malformed result", id)
	}
	if !strings.Contains(res.String(), res.ID) {
		t.Fatalf("%s: String() missing id", id)
	}
	return res
}

func TestFigure1AllPatternsValid(t *testing.T) {
	res := runOK(t, "f1")
	if res.Tables[0].Rows() != 4 {
		t.Fatalf("Figure 1 rows = %d", res.Tables[0].Rows())
	}
	if len(res.Metrics) != 4 {
		t.Fatalf("only %d of 4 patterns validated: %v", len(res.Metrics), res.Metrics)
	}
}

func TestE1StripingScales(t *testing.T) {
	res := runOK(t, "e1")
	// Shape: bandwidth grows with device count; 16 devices at least 6x
	// one device.
	if res.Metrics["read_speedup_d2"] < 1.5 {
		t.Fatalf("2-device speedup %v", res.Metrics["read_speedup_d2"])
	}
	if res.Metrics["read_speedup_d16"] < 6 {
		t.Fatalf("16-device speedup %v", res.Metrics["read_speedup_d16"])
	}
	if res.Metrics["read_speedup_d16"] <= res.Metrics["read_speedup_d4"] {
		t.Fatal("speedup not monotone")
	}
}

func TestE2EarlyReleaseWins(t *testing.T) {
	res := runOK(t, "e2")
	// At zero compute the shared pointer serializes transfers: early
	// release must win clearly; at heavy compute both converge.
	if res.Metrics["speedup_c0ms"] < 1.5 {
		t.Fatalf("early release speedup at c=0 is %v", res.Metrics["speedup_c0ms"])
	}
	if res.Metrics["speedup_c40ms"] > res.Metrics["speedup_c0ms"] {
		t.Fatal("speedup should shrink as compute dominates")
	}
	// E2b: block claims must be 4x fewer than record claims.
	if res.Metrics["claims_block"]*4 != res.Metrics["claims_record"] {
		t.Fatalf("claims: block %v, record %v", res.Metrics["claims_block"], res.Metrics["claims_record"])
	}
}

func TestE3PrivateDevicesDecouple(t *testing.T) {
	res := runOK(t, "e3")
	if res.Metrics["fast_proc_slowdown"] < 1.5 {
		t.Fatalf("sharing slowed the fast process only %vx", res.Metrics["fast_proc_slowdown"])
	}
}

func TestE4InterferenceAndPacking(t *testing.T) {
	res := runOK(t, "e4")
	// Throughput must degrade as devices shrink.
	if res.Metrics["mbps_d16_contiguous"] <= res.Metrics["mbps_d1_contiguous"] {
		t.Fatal("16 devices not faster than 1")
	}
	// Interleaved packing must cut seek travel when devices are shared.
	if res.Metrics["seekcyls_d4_interleaved"] >= res.Metrics["seekcyls_d4_contiguous"] {
		t.Fatalf("interleaved packing travel %v !< contiguous %v",
			res.Metrics["seekcyls_d4_interleaved"], res.Metrics["seekcyls_d4_contiguous"])
	}
}

func TestE5DeclusteringHelpsUnderSkew(t *testing.T) {
	res := runOK(t, "e5")
	// Livny's claim: under non-uniform access, declustering beats whole
	// blocks. (Under uniform access whole blocks may win — that is the
	// trade-off the literature reports.)
	for _, devs := range []string{"4", "8"} {
		whole := res.Metrics["s_d"+devs+"_zipf(2.0)_whole"]
		decl := res.Metrics["s_d"+devs+"_zipf(2.0)_declustered"]
		if decl >= whole {
			t.Fatalf("d=%s: declustered %vs !< whole %vs under skew", devs, decl, whole)
		}
	}
}

func TestE6BufferingOverlap(t *testing.T) {
	res := runOK(t, "e6")
	unbuf := res.Metrics["read, unbuffered"]
	double := res.Metrics["read, double buffer"]
	if double >= unbuf {
		t.Fatalf("double buffering %v !< unbuffered %v", double, unbuf)
	}
	wsync := res.Metrics["write, synchronous"]
	wdef := res.Metrics["write, deferred x2"]
	if wdef >= wsync {
		t.Fatalf("deferred write %v !< synchronous %v", wdef, wsync)
	}
}

func TestE7GlobalViewShape(t *testing.T) {
	res := runOK(t, "e7")
	striped := res.Metrics["S striped (unit 1)"]
	ps := res.Metrics["PS (partition per device)"]
	isSmall := res.Metrics["IS (8-block groups, buffers < group)"]
	isBig := res.Metrics["IS (8-block groups, buffers >= group)"]
	if ps >= striped/1.5 {
		t.Fatalf("PS global scan %v MB/s should be well under striped %v", ps, striped)
	}
	if isSmall >= isBig {
		t.Fatalf("IS with starved buffers %v !< IS with ample buffers %v", isSmall, isBig)
	}
}

func TestE8ReliabilityNumbers(t *testing.T) {
	res := runOK(t, "e8")
	if res.Metrics["mtbf_h_n10"] != 3000 {
		t.Fatalf("10-device MTBF %v h, want 3000 (paper)", res.Metrics["mtbf_h_n10"])
	}
	if res.Metrics["mtbf_h_n100"] != 300 {
		t.Fatalf("100-device MTBF %v h, want 300 (paper)", res.Metrics["mtbf_h_n100"])
	}
	if res.Metrics["loss_parity_n10"] >= res.Metrics["loss_plain_n10"]/3 {
		t.Fatal("parity did not clearly reduce loss probability")
	}
	if res.Metrics["rollback_hazard"] != 1 || res.Metrics["rollback_fix"] != 1 {
		t.Fatal("rollback consistency demo failed")
	}
	if res.Metrics["parity_rebuild_s"] <= 0 || res.Metrics["mirror_rebuild_s"] <= 0 {
		t.Fatal("rebuild scenarios reported no time")
	}
}

func TestE9CopyBeatsAlternateEventually(t *testing.T) {
	res := runOK(t, "e9")
	// One pass: alternate view avoids the copy, so it should not lose
	// catastrophically; four passes: the converted file must win.
	if res.Metrics["copy_four_s"] >= res.Metrics["alt_four_s"] {
		t.Fatalf("after 4 passes copy-convert %v !< alternate %v",
			res.Metrics["copy_four_s"], res.Metrics["alt_four_s"])
	}
}

func TestE10BoundaryTradeoff(t *testing.T) {
	res := runOK(t, "e10")
	if res.Metrics["overhead_h8"] <= res.Metrics["overhead_h1"] {
		t.Fatal("bigger halo should cost more file overhead")
	}
	// Multi-pass: caching avoids rereading halos, replication rereads
	// them every pass — cache must win by pass 4 for the large halo.
	if res.Metrics["cache_four_h8_s"] >= res.Metrics["rep_four_h8_s"] {
		t.Fatalf("4 passes, halo 8: cache %v !< replicate %v",
			res.Metrics["cache_four_h8_s"], res.Metrics["rep_four_h8_s"])
	}
}

func TestE11FileCountsAndOverhead(t *testing.T) {
	res := runOK(t, "e11")
	if res.Metrics["files_p64_f4"] != 256 {
		t.Fatalf("64 procs x 4 files = %v, want 256", res.Metrics["files_p64_f4"])
	}
	if res.Metrics["prepost_s_p4_f1"] <= 0 {
		t.Fatal("pre/post passes cost no time")
	}
}
