package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/pfs"
	"repro/internal/reliability"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/stripe"
	"repro/internal/workload"
)

// E5Decluster reproduces the Livny et al. comparison the paper cites:
// "by splitting blocks across multiple drives rather than allocating
// whole blocks to individual drives, contention problems caused by
// non-uniform access patterns are reduced". Whole blocks live on single
// drives (round-robin); declustered blocks are split into one chunk per
// drive, accessed as a synchronized gang (Kim's interleaving).
func E5Decluster() (*Result, error) {
	const blockBytes = 65536 // one database block (transfer-dominated)
	const nBlocks = 64
	const accesses = 48 // per worker
	const workers = 8
	table := stats.NewTable("E5: direct-access database blocks (64 KiB), 8 workers, 48 accesses each",
		"devices", "pattern", "placement", "elapsed", "blocks/s", "mean response", "max drive busy share")
	table.Note = "whole = block on one drive; declustered = block split across all drives (synchronized gang read)"
	metrics := map[string]float64{}

	run := func(devs int, skew float64, declustered bool) (time.Duration, time.Duration, float64, error) {
		e := sim.NewEngine()
		disks := make([]*device.Disk, devs)
		for i := range disks {
			disks[i] = device.New(device.Config{
				Name: fmt.Sprintf("d%d", i), Geometry: geom1989(), Engine: e,
			})
		}
		var elapsed time.Duration
		var respSum time.Duration
		_, err := runMain(e, func(p *sim.Proc) error {
			start := p.Now()
			var g sim.Group
			for w := 0; w < workers; w++ {
				seed := uint64(1000 + w)
				g.Spawn(p.Engine(), "w", func(c *sim.Proc) {
					var pat *workload.AccessPattern
					if skew > 0 {
						pat = workload.NewZipfAccess(seed, nBlocks, skew)
					} else {
						pat = workload.NewUniformAccess(seed, nBlocks)
					}
					buf := make([]byte, blockBytes)
					for i := 0; i < accesses; i++ {
						b := pat.Next()
						t0 := c.Now()
						if declustered {
							// Synchronized gang read: one chunk per drive.
							chunk := blockBytes / devs
							var ior sim.Group
							for d := 1; d < devs; d++ {
								d := d
								ior.Spawn(c.Engine(), "gang", func(gc *sim.Proc) {
									_ = disks[d].ReadAt(gc, b*int64(chunk), buf[d*chunk:(d+1)*chunk])
								})
							}
							_ = disks[0].ReadAt(c, b*int64(chunk), buf[:chunk])
							ior.Wait(c)
						} else {
							drive := int(b % int64(devs))
							off := (b / int64(devs)) * int64(blockBytes)
							_ = disks[drive].ReadAt(c, off, buf)
						}
						respSum += c.Now() - t0
					}
				})
			}
			g.Wait(p)
			elapsed = p.Now() - start
			return nil
		})
		if err != nil {
			return 0, 0, 0, err
		}
		var total, max time.Duration
		for _, d := range disks {
			bt := d.Stats().BusyTime
			total += bt
			if bt > max {
				max = bt
			}
		}
		share := 0.0
		if total > 0 {
			share = float64(max) / float64(total) * float64(devs)
		}
		meanResp := respSum / time.Duration(workers*accesses)
		return elapsed, meanResp, share, nil
	}

	for _, devs := range []int{4, 8} {
		for _, pat := range []struct {
			name string
			skew float64
		}{{"uniform", 0}, {"zipf(2.0)", 2.0}} {
			for _, decl := range []bool{false, true} {
				name := "whole"
				if decl {
					name = "declustered"
				}
				elapsed, resp, share, err := run(devs, pat.skew, decl)
				if err != nil {
					return nil, err
				}
				rate := float64(workers*accesses) / elapsed.Seconds()
				table.AddRow(devs, pat.name, name, elapsed, rate, resp, share)
				metrics[fmt.Sprintf("s_d%d_%s_%s", devs, pat.name, name)] = elapsed.Seconds()
				metrics[fmt.Sprintf("resp_ms_d%d_%s_%s", devs, pat.name, name)] = float64(resp) / 1e6
			}
		}
	}
	return &Result{ID: "e5", Title: Title("e5"), Tables: []*stats.Table{table}, Metrics: metrics}, nil
}

// E6Buffering reproduces the §4 buffering claims: "buffering overheads
// can be a significant factor in limiting speedups" and "reading ahead
// and deferred writing can be used to overlap I/O operations with
// computation".
func E6Buffering() (*Result, error) {
	const records = 256
	const recordSize = 4096
	const devs = 4
	compute := 6 * time.Millisecond // comparable to one block service
	table := stats.NewTable("E6: type-S scan with 6 ms compute per record, 4 striped devices",
		"mode", "buffers", "I/O procs", "elapsed", "vs unbuffered")
	table.Note = "unbuffered = synchronous fetch per record; multiple buffering overlaps transfers with compute"
	metrics := map[string]float64{}

	run := func(nbufs, ioprocs int, write bool) (time.Duration, error) {
		e := sim.NewEngine()
		_, vol, err := array(e, devs, device.FCFS)
		if err != nil {
			return 0, err
		}
		f, err := vol.Create(pfs.Spec{
			Name: "s", Org: pfs.OrgSequential, RecordSize: recordSize,
			BlockRecords: 1, NumRecords: records, StripeUnitFS: 1,
		})
		if err != nil {
			return 0, err
		}
		var elapsed time.Duration
		_, err = runMain(e, func(p *sim.Proc) error {
			buf := make([]byte, recordSize)
			if !write {
				// Pre-fill for the read scan.
				w, err := core.OpenWriter(f, core.Options{NBufs: 4, IOProcs: 2})
				if err != nil {
					return err
				}
				for r := int64(0); r < records; r++ {
					if _, err := w.WriteRecord(p, buf); err != nil {
						return err
					}
				}
				if err := w.Close(p); err != nil {
					return err
				}
			}
			start := p.Now()
			opts := core.Options{NBufs: nbufs, IOProcs: ioprocs}
			if write {
				w, err := core.OpenWriter(f, opts)
				if err != nil {
					return err
				}
				for r := int64(0); r < records; r++ {
					p.Sleep(compute)
					if _, err := w.WriteRecord(p, buf); err != nil {
						return err
					}
				}
				if err := w.Close(p); err != nil {
					return err
				}
			} else {
				rd, err := core.OpenReader(f, opts)
				if err != nil {
					return err
				}
				for {
					if _, _, err := rd.ReadRecord(p); err != nil {
						if err == io.EOF {
							break
						}
						return err
					}
					p.Sleep(compute)
				}
				if err := rd.Close(p); err != nil {
					return err
				}
			}
			elapsed = p.Now() - start
			return nil
		})
		return elapsed, err
	}

	type cfg struct {
		label   string
		nbufs   int
		ioprocs int
		write   bool
	}
	cases := []cfg{
		{"read, unbuffered", 1, 0, false},
		{"read, single buffer", 1, 1, false},
		{"read, double buffer", 2, 1, false},
		{"read, 4 buffers", 4, 2, false},
		{"read, 8 buffers", 8, 4, false},
		{"write, synchronous", 1, 0, true},
		{"write, deferred x2", 2, 1, true},
		{"write, deferred x4", 4, 2, true},
	}
	var baseRead, baseWrite time.Duration
	for _, c := range cases {
		elapsed, err := run(c.nbufs, c.ioprocs, c.write)
		if err != nil {
			return nil, err
		}
		if c.label == "read, unbuffered" {
			baseRead = elapsed
		}
		if c.label == "write, synchronous" {
			baseWrite = elapsed
		}
		base := baseRead
		if c.write {
			base = baseWrite
		}
		table.AddRow(c.label, c.nbufs, c.ioprocs, elapsed, stats.Speedup(base, elapsed))
		metrics[c.label] = elapsed.Seconds()
	}
	return &Result{ID: "e6", Title: Title("e6"), Tables: []*stats.Table{table}, Metrics: metrics}, nil
}

// E7GlobalView measures the §4 warnings about reading parallel files
// through the global (sequential) view: striped S files parallelize,
// PS files are serial ("all of the data would have to be read from the
// first disk, followed by ... the second"), and IS files degrade when
// the block size approaches the buffer space.
func E7GlobalView() (*Result, error) {
	const recordSize = 4096
	const totalRecords = 512
	const devs = 4
	table := stats.NewTable("E7: single-process global-view scan of a 2 MiB file on 4 devices",
		"written as", "paper-block (fs blocks)", "buffers", "elapsed", "MB/s")
	table.Note = "scan uses 8 buffers / 4 I/O procs unless noted; striped-S sets the parallel ceiling"
	metrics := map[string]float64{}

	type cfg struct {
		label   string
		spec    pfs.Spec
		nbufs   int
		ioprocs int
	}
	cases := []cfg{
		{
			label: "S striped (unit 1)",
			spec: pfs.Spec{Name: "s", Org: pfs.OrgSequential, RecordSize: recordSize,
				BlockRecords: 1, NumRecords: totalRecords, StripeUnitFS: 1},
			nbufs: 8, ioprocs: 4,
		},
		{
			label: "PS (partition per device)",
			spec: pfs.Spec{Name: "ps", Org: pfs.OrgPartitioned, RecordSize: recordSize,
				BlockRecords: 1, NumRecords: totalRecords, Parts: devs},
			nbufs: 8, ioprocs: 4,
		},
		{
			label: "IS (1-block groups)",
			spec: pfs.Spec{Name: "is", Org: pfs.OrgInterleaved, RecordSize: recordSize,
				BlockRecords: 1, NumRecords: totalRecords, Parts: devs},
			nbufs: 8, ioprocs: 4,
		},
		{
			label: "IS (8-block groups, buffers >= group)",
			spec: pfs.Spec{Name: "isbig", Org: pfs.OrgInterleaved, RecordSize: recordSize,
				BlockRecords: 8, NumRecords: totalRecords, Parts: devs},
			nbufs: 24, ioprocs: 24,
		},
		{
			label: "IS (8-block groups, buffers < group)",
			spec: pfs.Spec{Name: "issmall", Org: pfs.OrgInterleaved, RecordSize: recordSize,
				BlockRecords: 8, NumRecords: totalRecords, Parts: devs},
			nbufs: 4, ioprocs: 4,
		},
	}

	for _, c := range cases {
		e := sim.NewEngine()
		_, vol, err := array(e, devs, device.FCFS)
		if err != nil {
			return nil, err
		}
		f, err := vol.Create(c.spec)
		if err != nil {
			return nil, err
		}
		var elapsed time.Duration
		if _, err := runMain(e, func(p *sim.Proc) error {
			w, err := core.OpenWriter(f, core.Options{NBufs: 8, IOProcs: 4})
			if err != nil {
				return err
			}
			buf := make([]byte, recordSize)
			for r := int64(0); r < totalRecords; r++ {
				if _, err := w.WriteRecord(p, buf); err != nil {
					return err
				}
			}
			if err := w.Close(p); err != nil {
				return err
			}
			start := p.Now()
			rd, err := core.OpenReader(f, core.Options{NBufs: c.nbufs, IOProcs: c.ioprocs})
			if err != nil {
				return err
			}
			for {
				if _, _, err := rd.ReadRecord(p); err != nil {
					if err == io.EOF {
						break
					}
					return err
				}
			}
			if err := rd.Close(p); err != nil {
				return err
			}
			elapsed = p.Now() - start
			return nil
		}); err != nil {
			return nil, err
		}
		bytes := int64(totalRecords) * recordSize
		fsPer := f.Mapper().FSPerBlock()
		table.AddRow(c.label, fsPer, c.nbufs, elapsed, stats.MBps(bytes, elapsed))
		metrics[c.label] = stats.MBps(bytes, elapsed)
	}
	return &Result{ID: "e7", Title: Title("e7"), Tables: []*stats.Table{table}, Metrics: metrics}, nil
}

// E8Reliability reproduces the §5 analysis: the MTBF table (including
// the paper's 10-device and 100-device numbers), Monte-Carlo loss rates
// with and without redundancy, and measured inject/recover scenarios on
// parity and shadowed stores.
func E8Reliability() (*Result, error) {
	mtbfTable := stats.NewTable("E8a: system MTBF, 30,000 h drives (§5 arithmetic)",
		"devices", "system MTBF", "failures/year", "paper says")
	paperNote := map[int]string{
		10:  "fails every 3000 hours, about 3 times per year",
		100: "more than one failure every two weeks",
	}
	metrics := map[string]float64{}
	for _, n := range []int{1, 10, 50, 100} {
		m := reliability.SystemMTBF(reliability.DeviceMTBF1989, n)
		note := ""
		if s, ok := paperNote[n]; ok {
			note = s
		}
		mtbfTable.AddRow(n, m, reliability.FailuresPerYear(m), note)
		metrics[fmt.Sprintf("mtbf_h_n%d", n)] = m.Hours()
	}

	campTable := stats.NewTable("E8b: Monte-Carlo data-loss probability, 3000 h mission, 24 h repair, 800 missions",
		"devices", "organization", "drives used", "loss probability", "analytic MTTF (hours)")
	mttr := 24 * reliability.Hours
	mission := 3000 * reliability.Hours
	for _, n := range []int{10, 100} {
		plain := reliability.Campaign(sim.NewRNG(42), 800, n, 1, 0, reliability.DeviceMTBF1989, mttr, mission)
		parity := reliability.Campaign(sim.NewRNG(42), 800, n+1, 1, 1, reliability.DeviceMTBF1989, mttr, mission)
		shadow := reliability.Campaign(sim.NewRNG(42), 800, 2*n, n, 1, reliability.DeviceMTBF1989, mttr, mission)
		campTable.AddRow(n, "plain", n, plain.LossRate(),
			reliability.SystemMTBF(reliability.DeviceMTBF1989, n).Hours())
		campTable.AddRow(n, "parity (striped only, §5)", n+1, parity.LossRate(),
			reliability.MTTFSingleFaultHours(reliability.DeviceMTBF1989, mttr, n+1))
		campTable.AddRow(n, "shadowed pairs (2x cost)", 2*n, shadow.LossRate(),
			reliability.MTTFSingleFaultHours(reliability.DeviceMTBF1989, mttr, 2)/float64(n))
		metrics[fmt.Sprintf("loss_plain_n%d", n)] = plain.LossRate()
		metrics[fmt.Sprintf("loss_parity_n%d", n)] = parity.LossRate()
		metrics[fmt.Sprintf("loss_shadow_n%d", n)] = shadow.LossRate()
	}

	// Measured inject/recover scenarios (virtual time).
	scenTable := stats.NewTable("E8c: measured failure scenarios on a 96-block file",
		"store", "scenario", "rebuild time", "data intact")
	geom := device.Geometry{BlockSize: 4096, BlocksPerCyl: 16, Cylinders: 64}
	{
		e := sim.NewEngine()
		disks := make([]*device.Disk, 5)
		for i := range disks {
			disks[i] = device.New(device.Config{Geometry: geom, Engine: e})
		}
		par, err := stripe.NewParity(disks, true)
		if err != nil {
			return nil, err
		}
		vol := pfs.NewVolume(par)
		f, err := vol.Create(pfs.Spec{Name: "data", RecordSize: 4096, NumRecords: 96})
		if err != nil {
			return nil, err
		}
		var rebuild time.Duration
		if _, err := runMain(e, func(p *sim.Proc) error {
			var serr error
			rebuild, serr = reliability.ParityScenario(p, par, f, 2, 0x1)
			return serr
		}); err != nil {
			return nil, err
		}
		scenTable.AddRow("parity (4+1, rotated)", "fail drive, degraded reads, rebuild", rebuild, "yes")
		metrics["parity_rebuild_s"] = rebuild.Seconds()
	}
	{
		e := sim.NewEngine()
		mk := func() []*device.Disk {
			ds := make([]*device.Disk, 2)
			for i := range ds {
				ds[i] = device.New(device.Config{Geometry: geom, Engine: e})
			}
			return ds
		}
		mir, err := stripe.NewMirror(mk(), mk())
		if err != nil {
			return nil, err
		}
		vol := pfs.NewVolume(mir)
		f, err := vol.Create(pfs.Spec{Name: "data", RecordSize: 4096, NumRecords: 96})
		if err != nil {
			return nil, err
		}
		var rebuild time.Duration
		if _, err := runMain(e, func(p *sim.Proc) error {
			var serr error
			rebuild, serr = reliability.MirrorScenario(p, mir, f, 0, 0x2)
			return serr
		}); err != nil {
			return nil, err
		}
		scenTable.AddRow("shadowed (2x2)", "fail primary, failover, rebuild from shadow", rebuild, "yes")
		metrics["mirror_rebuild_s"] = rebuild.Seconds()
	}
	{
		// Rollback consistency demo (§5): single-drive restore corrupts.
		e := sim.NewEngine()
		disks, vol, err := reliability.NewPlainArray(e, 4, geom)
		if err != nil {
			return nil, err
		}
		f, err := vol.Create(pfs.Spec{Name: "data", RecordSize: 4096, NumRecords: 96})
		if err != nil {
			return nil, err
		}
		var inconsistent, consistent bool
		if _, err := runMain(e, func(p *sim.Proc) error {
			var derr error
			inconsistent, consistent, derr = reliability.RollbackDemo(p, disks, f, 1)
			return derr
		}); err != nil {
			return nil, err
		}
		scenTable.AddRow("plain striped", "restore ONE drive from backup", time.Duration(0),
			fmt.Sprintf("corrupted=%v (must roll back all drives: ok=%v)", inconsistent, consistent))
		if inconsistent {
			metrics["rollback_hazard"] = 1
		}
		if consistent {
			metrics["rollback_fix"] = 1
		}
	}

	return &Result{
		ID: "e8", Title: Title("e8"),
		Tables:  []*stats.Table{mtbfTable, campTable, scenTable},
		Metrics: metrics,
	}, nil
}
