package probe

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/stats"
)

func TestNilRecorderNoops(t *testing.T) {
	var r *Recorder
	if id := r.Track("x"); id != 0 {
		t.Fatalf("nil Track = %d, want 0", id)
	}
	if id := r.AsyncTrack("x"); id != 0 {
		t.Fatalf("nil AsyncTrack = %d, want 0", id)
	}
	if id := r.Span(1, "c", "n", 0, time.Second, 4, 0); id != 0 {
		t.Fatalf("nil Span = %d, want 0", id)
	}
	r.SetScope("s/")
	r.Reset()
	if r.Spans() != nil || r.Tracks() != nil || r.Usage() != nil {
		t.Fatal("nil recorder leaked data")
	}
	m := r.Metrics()
	if m != nil {
		t.Fatalf("nil Metrics = %v, want nil", m)
	}
	m.Counter("c").Add(3)
	m.Gauge("g", func() float64 { return 1 })
	m.Histogram("h").Add(1)
	m.ObserveSample("s", nil)
	if got := m.Counter("c").Value(); got != 0 {
		t.Fatalf("nil counter = %d", got)
	}
	if snap := m.Snapshot(); snap != nil {
		t.Fatalf("nil Snapshot = %v", snap)
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNilRecorderZeroAllocs(t *testing.T) {
	var r *Recorder
	c := r.Metrics().Counter("x")
	h := r.Metrics().Histogram("y")
	allocs := testing.AllocsPerRun(100, func() {
		trk := r.Track("dev/d0")
		id := r.Span(trk, "device", "read", 0, time.Millisecond, 512, 0)
		r.Instant(trk, "device", "plan", 0)
		_ = id
		c.Add(1)
		h.Add(0.5)
	})
	if allocs != 0 {
		t.Fatalf("nil-recorder path allocates %.1f per op, want 0", allocs)
	}
}

func TestTrackRegistrationAndScope(t *testing.T) {
	r := New()
	a := r.Track("dev/d0")
	if b := r.Track("dev/d0"); b != a {
		t.Fatalf("re-registration changed id: %d vs %d", a, b)
	}
	r.SetScope("run1/")
	c := r.Track("dev/d0")
	if c == a {
		t.Fatal("scoped track collided with unscoped")
	}
	r.SetScope("")
	got := r.Tracks()
	want := []string{"dev/d0", "run1/dev/d0"}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("Tracks = %v, want %v", got, want)
	}
}

func TestChromeTraceRoundTrip(t *testing.T) {
	r := New()
	ranks := r.Track("rank/0")
	q := r.AsyncTrack("dev/d0/q")
	dev := r.Track("dev/d0")
	ex := r.Span(ranks, "mpp", "exchange", 0, 10*time.Microsecond, 4096, 0)
	r.Span(q, "device", "wait", 10*time.Microsecond, 12*time.Microsecond, 0, ex)
	r.Span(dev, "device", "write", 12*time.Microsecond, 20*time.Microsecond, 4096, ex)
	r.Instant(ranks, "collective", "plan", 5*time.Microsecond)

	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadChromeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if gt, wt := got.Tracks(), r.Tracks(); len(gt) != len(wt) {
		t.Fatalf("tracks = %v, want %v", gt, wt)
	} else {
		for i := range gt {
			if gt[i] != wt[i] {
				t.Fatalf("tracks = %v, want %v", gt, wt)
			}
		}
	}
	gs, ws := got.Spans(), r.Spans()
	if len(gs) != len(ws) {
		t.Fatalf("got %d spans, want %d", len(gs), len(ws))
	}
	for i := range gs {
		if gs[i] != ws[i] {
			t.Fatalf("span %d = %+v, want %+v", i, gs[i], ws[i])
		}
	}
	// And a re-export of the parsed recorder is byte-identical.
	var buf2 bytes.Buffer
	if err := got.WriteChromeTrace(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("re-export of parsed trace differs from original")
	}
}

func TestChromeTraceDeterministic(t *testing.T) {
	build := func() *bytes.Buffer {
		r := New()
		trk := r.Track("rank/0")
		q := r.AsyncTrack("lane/a")
		for i := 0; i < 50; i++ {
			at := time.Duration(i) * time.Microsecond
			p := r.Span(trk, "mpp", "exchange", at, at+500*time.Nanosecond, int64(i), 0)
			r.Span(q, "ioserver", "req", at, at+2*time.Microsecond, 0, p)
		}
		var buf bytes.Buffer
		if err := r.WriteChromeTrace(&buf); err != nil {
			t.Fatal(err)
		}
		return &buf
	}
	a, b := build(), build()
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("identical recorders exported different bytes")
	}
	if !strings.Contains(a.String(), `"ph":"b"`) || !strings.Contains(a.String(), `"ph":"X"`) {
		t.Fatalf("export missing expected event phases:\n%s", a.String())
	}
}

func TestMetricsSnapshot(t *testing.T) {
	r := New()
	m := r.Metrics()
	m.Counter("z.count").Add(2)
	m.Counter("z.count").Add(3)
	m.Gauge("a.gauge", func() float64 { return 7.5 })
	h := m.Histogram("b.lat")
	for _, v := range []float64{1, 2, 3, 4} {
		h.Add(v)
	}
	var ext stats.Sample
	ext.Add(9)
	m.ObserveSample("c.ext", &ext)

	snap := m.Snapshot()
	names := make([]string, len(snap))
	for i, v := range snap {
		names[i] = v.Name
	}
	want := []string{"a.gauge", "b.lat", "c.ext", "z.count"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("snapshot order = %v, want %v", names, want)
		}
	}
	if snap[0].Value != 7.5 {
		t.Fatalf("gauge = %v", snap[0].Value)
	}
	if snap[1].Value != 4 || snap[1].Max != 4 {
		t.Fatalf("histogram = %+v", snap[1])
	}
	if snap[2].Value != 1 || snap[2].P50 != 9 {
		t.Fatalf("adopted sample = %+v", snap[2])
	}
	if snap[3].Value != 5 {
		t.Fatalf("counter = %v", snap[3].Value)
	}
	if tbl := m.Table().String(); !strings.Contains(tbl, "z.count") {
		t.Fatalf("table missing counter:\n%s", tbl)
	}
}

func TestUsageAndOverlap(t *testing.T) {
	r := New()
	a := r.Track("dev/a")
	b := r.Track("dev/b")
	// a busy [0,10] and [5,15] → union 15 of window [0,20].
	r.Span(a, "device", "w", 0, 10*time.Microsecond, 100, 0)
	r.Span(a, "device", "w", 5*time.Microsecond, 15*time.Microsecond, 0, 0)
	r.Span(b, "device", "r", 10*time.Microsecond, 20*time.Microsecond, 0, 0)
	u := r.Usage()
	if u[0].Busy != 15*time.Microsecond || u[0].Spans != 2 || u[0].Bytes != 100 {
		t.Fatalf("usage a = %+v", u[0])
	}
	if want := 15.0 / 20.0; u[0].Util != want {
		t.Fatalf("util a = %v, want %v", u[0].Util, want)
	}
	ov := r.OverlapBusy(
		func(s Span) bool { return s.Name == "w" },
		func(s Span) bool { return s.Name == "r" },
	)
	if ov != 5*time.Microsecond {
		t.Fatalf("overlap = %v, want 5µs", ov)
	}
	if got := r.UnionBusy(func(Span) bool { return true }); got != 20*time.Microsecond {
		t.Fatalf("union = %v, want 20µs", got)
	}
	if tbl := r.UtilizationTable().String(); !strings.Contains(tbl, "dev/a") {
		t.Fatalf("utilization table missing track:\n%s", tbl)
	}
}

func TestReset(t *testing.T) {
	r := New()
	trk := r.Track("x")
	r.Span(trk, "c", "n", 0, time.Microsecond, 0, 0)
	c := r.Metrics().Counter("n")
	c.Add(4)
	r.Metrics().Histogram("h").Add(1)
	r.Reset()
	if len(r.Spans()) != 0 {
		t.Fatal("Reset kept spans")
	}
	if r.Track("x") != trk {
		t.Fatal("Reset dropped tracks")
	}
	if c.Value() != 0 {
		t.Fatal("Reset kept counter value")
	}
}
