// Package probe is the stack's flight recorder: an always-compiled,
// nil-default span tracer and typed metrics registry threaded through
// every layer (sim, mpp, device, blockio, collective, ioserver).
//
// Spans are stamped with the VIRTUAL clock — recording is nothing but
// sim.Context.Now() reads between the events the simulation was already
// producing — so attaching a recorder never perturbs the modeled
// schedule: every pinned modeled time stays bit-identical with tracing
// on, and two runs of the same scenario export byte-identical traces.
// The other half of the contract is the nil default: every Recorder,
// Counter, Gauge and Histogram method is a no-op on a nil receiver, so
// an uninstrumented run pays one pointer check per site and zero
// allocations.
//
// Like the rest of the sim stack, a Recorder relies on the engine's
// strict alternation for safety: spans and metrics are recorded by
// managed processes (one runs at a time), so no locks are needed and
// recording order — and therefore the exported trace — is
// deterministic.
//
// Exports (export.go): Chrome trace-event JSON for Perfetto /
// chrome://tracing (WriteChromeTrace), per-resource busy-interval
// utilization tables (UtilizationTable), and a flat metrics snapshot
// (Metrics.Snapshot / Metrics.Table).
package probe

import (
	"sort"
	"strings"
	"time"

	"repro/internal/stats"
)

// TrackID names a registered track (a Perfetto row: one per rank,
// device, lane...). 0 is the zero track of a nil recorder; spans
// recorded against it are dropped.
type TrackID int32

// SpanID identifies a recorded span; 0 means "no span" (the nil
// recorder returns it, and it is the no-parent value).
type SpanID int64

// Span is one recorded interval of virtual time on a track. End == Start
// marks an instant event (a zero-duration marker, exported as such).
type Span struct {
	ID     SpanID
	Parent SpanID // causal parent (0: none); exported as a flow arrow
	Track  TrackID
	Cat    string // layer: "sim", "mpp", "device", "blockio", "collective", "ioserver"
	Name   string
	Start  time.Duration
	End    time.Duration
	Bytes  int64 // payload size; 0 omitted from the exported args
}

// track is one registered timeline row.
type track struct {
	name string
	// async tracks hold spans that may overlap in time (queue waits,
	// in-flight requests); they export as Chrome async (b/e) events,
	// which render on per-id sub-rows, instead of complete (X) events,
	// which require proper nesting.
	async bool
}

// Recorder is the flight recorder. The nil *Recorder is the off switch:
// every method is a cheap no-op, so instrumented code calls
// unconditionally. Create one with New and attach it via the layers'
// SetProbe methods.
type Recorder struct {
	tracks []track
	byName map[string]TrackID
	spans  []Span
	scope  string
	m      Metrics
}

// New returns an empty recorder.
func New() *Recorder {
	return &Recorder{byName: make(map[string]TrackID)}
}

// SetScope sets a prefix applied to track names registered from now on
// ("" clears it). A tool tracing several sub-runs into one recorder
// scopes each (e.g. "pipeline/chunked/") so their identically-named
// resources land on distinct tracks.
func (r *Recorder) SetScope(prefix string) {
	if r == nil {
		return
	}
	if prefix != "" && !strings.HasSuffix(prefix, "/") {
		prefix += "/"
	}
	r.scope = prefix
}

// Track registers (or looks up) a synchronous track — a timeline whose
// spans never overlap, like a device's service timeline. Returns 0 on a
// nil recorder.
func (r *Recorder) Track(name string) TrackID { return r.track(name, false) }

// AsyncTrack registers (or looks up) a track whose spans may overlap in
// time — queue waits, concurrently in-flight requests. Async/sync is
// fixed by the first registration of a name.
func (r *Recorder) AsyncTrack(name string) TrackID { return r.track(name, true) }

func (r *Recorder) track(name string, async bool) TrackID {
	if r == nil {
		return 0
	}
	name = r.scope + name
	if id, ok := r.byName[name]; ok {
		return id
	}
	r.tracks = append(r.tracks, track{name: name, async: async})
	id := TrackID(len(r.tracks))
	r.byName[name] = id
	return id
}

// Tracks reports the registered track names in registration order.
func (r *Recorder) Tracks() []string {
	if r == nil {
		return nil
	}
	names := make([]string, len(r.tracks))
	for i, t := range r.tracks {
		names[i] = t.name
	}
	return names
}

// Span records one completed interval [start, end] on a track and
// returns its ID (0 on a nil recorder or zero track, so the result can
// feed a later span's parent unconditionally). bytes annotates the
// payload size (0: none); parent links the span to the one causally
// upstream of it. Timestamps must come from the virtual clock
// (sim.Context.Now()), which is what keeps traces deterministic.
func (r *Recorder) Span(t TrackID, cat, name string, start, end time.Duration, bytes int64, parent SpanID) SpanID {
	if r == nil || t == 0 {
		return 0
	}
	id := SpanID(len(r.spans) + 1)
	r.spans = append(r.spans, Span{
		ID: id, Parent: parent, Track: t, Cat: cat, Name: name,
		Start: start, End: end, Bytes: bytes,
	})
	return id
}

// Instant records a zero-duration marker (plan decisions, admissions).
func (r *Recorder) Instant(t TrackID, cat, name string, at time.Duration) SpanID {
	return r.Span(t, cat, name, at, at, 0, 0)
}

// Spans returns the recorded spans in record order (shared backing
// array; callers must not mutate).
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	return r.spans
}

// Metrics returns the recorder's metrics registry (nil on a nil
// recorder; the registry's methods are themselves nil-safe).
func (r *Recorder) Metrics() *Metrics {
	if r == nil {
		return nil
	}
	return &r.m
}

// Reset drops recorded spans and metric values but keeps tracks and
// registered metrics, so one recorder can trace several runs.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.spans = r.spans[:0]
	for _, it := range r.m.items {
		if it.counter != nil {
			it.counter.v = 0
		}
		if it.hist != nil {
			it.hist.s = stats.Sample{}
		}
	}
}

// Counter is a monotonically increasing metric. The nil *Counter (from
// a nil registry) no-ops, so hot paths hold one and Add unconditionally.
type Counter struct{ v int64 }

// Add increments the counter.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v += n
}

// Value reports the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Histogram accumulates observations into a stats.Sample with a
// nil-safe wrapper, so instrumented code records unconditionally.
type Histogram struct{ s stats.Sample }

// Add folds one observation in.
func (h *Histogram) Add(x float64) {
	if h == nil {
		return
	}
	h.s.Add(x)
}

// AddDuration folds a duration in as seconds.
func (h *Histogram) AddDuration(d time.Duration) {
	if h == nil {
		return
	}
	h.s.AddDuration(d)
}

// Sample exposes the underlying sample (nil on a nil histogram).
func (h *Histogram) Sample() *stats.Sample {
	if h == nil {
		return nil
	}
	return &h.s
}

// metric is one registered entry of the registry.
type metric struct {
	kind    string // "counter", "gauge", "histogram"
	counter *Counter
	gauge   func() float64
	hist    *Histogram
	sample  *stats.Sample // adopted external sample (ObserveSample)
}

// Metrics is the typed metrics registry: counters (push), gauges (pull
// functions evaluated at snapshot time — how existing layer stats are
// subsumed without duplicating their accounting), and histograms
// (stats.Sample order statistics). All methods are nil-safe. Snapshot
// order is sorted by name, so snapshots are deterministic.
type Metrics struct {
	names []string
	items map[string]*metric
}

func (m *Metrics) get(name, kind string) *metric {
	if m.items == nil {
		m.items = make(map[string]*metric)
	}
	it, ok := m.items[name]
	if !ok {
		it = &metric{kind: kind}
		m.items[name] = it
		m.names = append(m.names, name)
	}
	return it
}

// Counter registers (or looks up) a counter. Returns nil — a no-op
// counter — on a nil registry.
func (m *Metrics) Counter(name string) *Counter {
	if m == nil {
		return nil
	}
	it := m.get(name, "counter")
	if it.counter == nil {
		it.counter = &Counter{}
	}
	return it.counter
}

// Gauge registers a pull gauge: fn is evaluated at snapshot time. The
// last registration of a name wins (re-attaching replaces the puller).
func (m *Metrics) Gauge(name string, fn func() float64) {
	if m == nil {
		return
	}
	m.get(name, "gauge").gauge = fn
}

// Histogram registers (or looks up) a histogram. Returns nil — a no-op
// histogram — on a nil registry.
func (m *Metrics) Histogram(name string) *Histogram {
	if m == nil {
		return nil
	}
	it := m.get(name, "histogram")
	if it.hist == nil {
		it.hist = &Histogram{}
	}
	return it.hist
}

// ObserveSample adopts an externally maintained stats.Sample (e.g. an
// I/O lane's latency sample) for snapshotting under the given name, so
// the registry subsumes existing accounting instead of duplicating it.
func (m *Metrics) ObserveSample(name string, s *stats.Sample) {
	if m == nil {
		return
	}
	m.get(name, "histogram").sample = s
}

// MetricValue is one snapshot row. For histograms Value is the
// observation count and the quantile fields are populated.
type MetricValue struct {
	Name  string
	Kind  string
	Value float64
	P50   float64
	P95   float64
	P99   float64
	Max   float64
}

// Snapshot evaluates every registered metric, sorted by name.
func (m *Metrics) Snapshot() []MetricValue {
	if m == nil {
		return nil
	}
	names := append([]string(nil), m.names...)
	sort.Strings(names)
	out := make([]MetricValue, 0, len(names))
	for _, name := range names {
		it := m.items[name]
		v := MetricValue{Name: name, Kind: it.kind}
		switch {
		case it.counter != nil:
			v.Value = float64(it.counter.Value())
		case it.gauge != nil:
			v.Value = it.gauge()
		default:
			s := it.sample
			if s == nil && it.hist != nil {
				s = &it.hist.s
			}
			if s != nil {
				v.Value = float64(s.N())
				v.P50, v.P95, v.P99, v.Max = s.P50(), s.P95(), s.P99(), s.Max()
			}
		}
		out = append(out, v)
	}
	return out
}

// Table renders the snapshot as a fixed-width table.
func (m *Metrics) Table() *stats.Table {
	t := stats.NewTable("metrics", "name", "kind", "value", "p50", "p95", "p99", "max")
	for _, v := range m.Snapshot() {
		if v.Kind == "histogram" {
			t.AddRow(v.Name, v.Kind, v.Value, v.P50, v.P95, v.P99, v.Max)
		} else {
			t.AddRow(v.Name, v.Kind, v.Value, "", "", "", "")
		}
	}
	return t
}
