package probe

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"

	"repro/internal/stats"
)

// Chrome trace-event export. The format is the JSON array flavour of
// the trace-event spec, loadable in Perfetto (ui.perfetto.dev) and
// chrome://tracing:
//
//   - one "M" thread_name metadata event per track (pid 1, tid = TrackID),
//     emitted in registration order;
//   - sync-track spans as "X" complete events (ts + dur);
//   - async-track spans as "b"/"e" async pairs keyed by span ID, so
//     overlapping intervals (queue waits, in-flight requests) render on
//     stacked sub-rows instead of corrupting a single row;
//   - instants (End == Start) as "i" events;
//   - causal parent links as "s"/"f" flow arrows.
//
// Timestamps are virtual-clock microseconds with fixed millinanosecond
// precision, formatted manually ("%d.%03d") — no floats and no map
// iteration anywhere on the write path, so the bytes are a pure
// function of the recorded spans: same run, same file.
//
// Every span event also carries args.span (and args.parent / args.bytes
// when set); viewers ignore the extras, and ReadChromeTrace uses them
// to rebuild the recorder losslessly for offline summarization.

// WriteChromeTrace writes the recorder's spans as Chrome trace-event
// JSON. The output is deterministic: byte-identical across runs of the
// same scenario.
func WriteChromeTrace(w io.Writer, r *Recorder) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("[")
	first := true
	sep := func() {
		if !first {
			bw.WriteString(",\n")
		} else {
			bw.WriteString("\n")
		}
		first = false
	}
	if r != nil {
		for i, t := range r.tracks {
			sep()
			fmt.Fprintf(bw, `{"name":"thread_name","ph":"M","pid":1,"tid":%d,"args":{"name":%s}}`,
				i+1, strconv.Quote(t.name))
		}
		for _, s := range r.spans {
			async := r.tracks[s.Track-1].async
			sep()
			writeSpanEvent(bw, s, async)
			if s.Parent != 0 && int(s.Parent) <= len(r.spans) {
				p := r.spans[s.Parent-1]
				sep()
				fmt.Fprintf(bw, `{"name":"flow","cat":"flow","ph":"s","pid":1,"tid":%d,"ts":%s,"id":%d}`,
					p.Track, usec(p.End), s.ID)
				sep()
				fmt.Fprintf(bw, `{"name":"flow","cat":"flow","ph":"f","bp":"e","pid":1,"tid":%d,"ts":%s,"id":%d}`,
					s.Track, usec(s.Start), s.ID)
			}
		}
	}
	bw.WriteString("\n]\n")
	return bw.Flush()
}

// WriteChromeTrace is the method form of the package function.
func (r *Recorder) WriteChromeTrace(w io.Writer) error { return WriteChromeTrace(w, r) }

func writeSpanEvent(bw *bufio.Writer, s Span, async bool) {
	args := spanArgs(s)
	switch {
	case s.End == s.Start:
		fmt.Fprintf(bw, `{"name":%s,"cat":%s,"ph":"i","s":"t","pid":1,"tid":%d,"ts":%s,"args":%s}`,
			strconv.Quote(s.Name), strconv.Quote(s.Cat), s.Track, usec(s.Start), args)
	case async:
		fmt.Fprintf(bw, `{"name":%s,"cat":%s,"ph":"b","pid":1,"tid":%d,"ts":%s,"id":%d,"args":%s},
{"name":%s,"cat":%s,"ph":"e","pid":1,"tid":%d,"ts":%s,"id":%d}`,
			strconv.Quote(s.Name), strconv.Quote(s.Cat), s.Track, usec(s.Start), s.ID, args,
			strconv.Quote(s.Name), strconv.Quote(s.Cat), s.Track, usec(s.End), s.ID)
	default:
		fmt.Fprintf(bw, `{"name":%s,"cat":%s,"ph":"X","pid":1,"tid":%d,"ts":%s,"dur":%s,"args":%s}`,
			strconv.Quote(s.Name), strconv.Quote(s.Cat), s.Track, usec(s.Start), usec(s.End-s.Start), args)
	}
}

func spanArgs(s Span) string {
	a := fmt.Sprintf(`{"span":%d`, s.ID)
	if s.Parent != 0 {
		a += fmt.Sprintf(`,"parent":%d`, s.Parent)
	}
	if s.Bytes != 0 {
		a += fmt.Sprintf(`,"bytes":%d`, s.Bytes)
	}
	return a + "}"
}

// usec renders a virtual-time offset as trace microseconds with fixed
// three-digit sub-microsecond precision.
func usec(d time.Duration) string {
	ns := d.Nanoseconds()
	return fmt.Sprintf("%d.%03d", ns/1000, ns%1000)
}

// traceEvent mirrors the subset of the trace-event schema the reader
// needs.
type traceEvent struct {
	Name string          `json:"name"`
	Cat  string          `json:"cat"`
	Ph   string          `json:"ph"`
	Tid  int32           `json:"tid"`
	Ts   json.Number     `json:"ts"`
	Dur  json.Number     `json:"dur"`
	ID   json.Number     `json:"id"`
	Args json.RawMessage `json:"args"`
}

type traceArgs struct {
	Name   string `json:"name"`
	Span   int64  `json:"span"`
	Parent int64  `json:"parent"`
	Bytes  int64  `json:"bytes"`
}

// ReadChromeTrace parses trace-event JSON produced by WriteChromeTrace
// back into a Recorder (tracks, spans, parent links), for offline
// summarization (`parioctl trace`).
func ReadChromeTrace(rd io.Reader) (*Recorder, error) {
	var evs []traceEvent
	dec := json.NewDecoder(rd)
	if err := dec.Decode(&evs); err != nil {
		return nil, fmt.Errorf("probe: parse trace: %w", err)
	}
	r := New()
	names := map[int32]string{}
	asyncTid := map[int32]bool{}
	type open struct {
		s  Span
		id int64
	}
	var pending []open // open async "b" events awaiting their "e"
	var raw []Span     // spans with original IDs, resolved at the end
	for _, ev := range evs {
		switch ev.Ph {
		case "M":
			if ev.Name == "thread_name" {
				var a traceArgs
				json.Unmarshal(ev.Args, &a)
				names[ev.Tid] = a.Name
			}
		case "X", "i", "b":
			var a traceArgs
			json.Unmarshal(ev.Args, &a)
			ts, err := parseUsec(ev.Ts)
			if err != nil {
				return nil, err
			}
			s := Span{
				ID: SpanID(a.Span), Parent: SpanID(a.Parent),
				Track: TrackID(ev.Tid), Cat: ev.Cat, Name: ev.Name,
				Start: ts, End: ts, Bytes: a.Bytes,
			}
			switch ev.Ph {
			case "X":
				dur, err := parseUsec(ev.Dur)
				if err != nil {
					return nil, err
				}
				s.End = ts + dur
				raw = append(raw, s)
			case "i":
				raw = append(raw, s)
			case "b":
				asyncTid[ev.Tid] = true
				id, _ := ev.ID.Int64()
				pending = append(pending, open{s: s, id: id})
			}
		case "e":
			id, _ := ev.ID.Int64()
			for i := len(pending) - 1; i >= 0; i-- {
				if pending[i].id == id {
					ts, err := parseUsec(ev.Ts)
					if err != nil {
						return nil, err
					}
					s := pending[i].s
					s.End = ts
					raw = append(raw, s)
					pending = append(pending[:i], pending[i+1:]...)
					break
				}
			}
		}
	}
	for _, o := range pending { // unterminated async spans: keep as instants
		raw = append(raw, o.s)
	}
	// Register tracks in tid order so TrackIDs stay meaningful.
	var tids []int32
	for tid := range names {
		tids = append(tids, tid)
	}
	sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })
	remap := map[TrackID]TrackID{}
	for _, tid := range tids {
		if asyncTid[tid] {
			remap[TrackID(tid)] = r.AsyncTrack(names[tid])
		} else {
			remap[TrackID(tid)] = r.Track(names[tid])
		}
	}
	// Re-issue spans in original-ID order so parent links resolve.
	sort.SliceStable(raw, func(i, j int) bool { return raw[i].ID < raw[j].ID })
	newID := map[SpanID]SpanID{}
	for _, s := range raw {
		trk, ok := remap[s.Track]
		if !ok {
			trk = r.Track(fmt.Sprintf("tid/%d", s.Track))
			remap[s.Track] = trk
		}
		id := r.Span(trk, s.Cat, s.Name, s.Start, s.End, s.Bytes, newID[s.Parent])
		if s.ID != 0 {
			newID[s.ID] = id
		}
	}
	return r, nil
}

func parseUsec(n json.Number) (time.Duration, error) {
	str := n.String()
	if str == "" {
		return 0, nil
	}
	f, err := strconv.ParseFloat(str, 64)
	if err != nil {
		return 0, fmt.Errorf("probe: bad trace timestamp %q: %w", str, err)
	}
	return time.Duration(f*1000 + 0.5), nil
}

// TrackUsage summarizes one track: busy time is the union of its span
// intervals (overlaps counted once), Util the busy fraction of the
// recorder's overall [earliest start, latest end] window.
type TrackUsage struct {
	Name  string
	Spans int
	Busy  time.Duration
	Util  float64
	Bytes int64
}

// Usage computes per-track busy-interval unions, in track registration
// order. Instant spans contribute to counts but not busy time.
func (r *Recorder) Usage() []TrackUsage {
	if r == nil {
		return nil
	}
	var lo, hi time.Duration
	seen := false
	per := make([][]iv, len(r.tracks))
	out := make([]TrackUsage, len(r.tracks))
	for i, t := range r.tracks {
		out[i].Name = t.name
	}
	for _, s := range r.spans {
		u := &out[s.Track-1]
		u.Spans++
		u.Bytes += s.Bytes
		if s.End > s.Start {
			per[s.Track-1] = append(per[s.Track-1], iv{s.Start, s.End})
		}
		if !seen || s.Start < lo {
			lo = s.Start
		}
		if !seen || s.End > hi {
			hi = s.End
		}
		seen = true
	}
	span := hi - lo
	for i := range out {
		out[i].Busy = unionIvs(per[i])
		if span > 0 {
			out[i].Util = float64(out[i].Busy) / float64(span)
		}
	}
	return out
}

// UtilizationTable renders Usage as a fixed-width table (tracks with no
// spans are skipped).
func (r *Recorder) UtilizationTable() *stats.Table {
	t := stats.NewTable("utilization", "track", "spans", "busy", "util", "bytes")
	for _, u := range r.Usage() {
		if u.Spans == 0 {
			continue
		}
		t.AddRow(u.Name, u.Spans, u.Busy, u.Util, u.Bytes)
	}
	return t
}

// UnionBusy returns the total virtual time covered by the union of the
// spans accepted by keep (overlaps counted once).
func (r *Recorder) UnionBusy(keep func(Span) bool) time.Duration {
	if r == nil {
		return 0
	}
	var ivs []iv
	for _, s := range r.spans {
		if s.End > s.Start && keep(s) {
			ivs = append(ivs, iv{s.Start, s.End})
		}
	}
	return unionIvs(ivs)
}

// OverlapBusy returns the virtual time where the union of spans
// accepted by a overlaps the union of spans accepted by b — e.g.
// exchange/access overlap in the pipelined collective.
func (r *Recorder) OverlapBusy(a, b func(Span) bool) time.Duration {
	if r == nil {
		return 0
	}
	ua, ub := r.unionOf(a), r.unionOf(b)
	var ov time.Duration
	i, j := 0, 0
	for i < len(ua) && j < len(ub) {
		from, to := maxDur(ua[i].from, ub[j].from), minDur(ua[i].to, ub[j].to)
		if to > from {
			ov += to - from
		}
		if ua[i].to < ub[j].to {
			i++
		} else {
			j++
		}
	}
	return ov
}

func (r *Recorder) unionOf(keep func(Span) bool) []iv {
	var ivs []iv
	for _, s := range r.spans {
		if s.End > s.Start && keep(s) {
			ivs = append(ivs, iv{s.Start, s.End})
		}
	}
	return mergeIvs(ivs)
}

type iv struct{ from, to time.Duration }

// mergeIvs sorts and coalesces intervals into a disjoint union.
func mergeIvs(ivs []iv) []iv {
	if len(ivs) == 0 {
		return ivs
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].from < ivs[j].from })
	out := ivs[:1]
	for _, x := range ivs[1:] {
		last := &out[len(out)-1]
		if x.from <= last.to {
			if x.to > last.to {
				last.to = x.to
			}
		} else {
			out = append(out, x)
		}
	}
	return out
}

func unionIvs(ivs []iv) time.Duration {
	var total time.Duration
	for _, x := range mergeIvs(ivs) {
		total += x.to - x.from
	}
	return total
}

func minDur(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
