package sim

import (
	"testing"
	"testing/quick"
	"time"
)

// TestQuickIndependentSleepsEndAtMax is the engine's core timing
// property: independent processes that only sleep finish at the maximum
// of their cumulative sleep totals.
func TestQuickIndependentSleepsEndAtMax(t *testing.T) {
	check := func(durs [][3]uint16) bool {
		if len(durs) == 0 || len(durs) > 12 {
			return true
		}
		e := NewEngine()
		var want time.Duration
		for _, trio := range durs {
			var total time.Duration
			ds := trio
			for _, d := range ds {
				total += time.Duration(d) * time.Microsecond
			}
			if total > want {
				want = total
			}
			e.Go("p", func(p *Proc) {
				for _, d := range ds {
					p.Sleep(time.Duration(d) * time.Microsecond)
				}
			})
		}
		if err := e.Run(); err != nil {
			return false
		}
		return e.Now() == want
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSemaphorePipelineTime checks the M/D/c-style identity: n unit
// jobs through a c-wide semaphore take ceil(n/c) service rounds.
func TestQuickSemaphorePipelineTime(t *testing.T) {
	check := func(n8, c8 uint8) bool {
		n := int(n8%20) + 1
		c := int(c8%5) + 1
		e := NewEngine()
		s := NewSemaphore(c)
		unit := time.Millisecond
		for i := 0; i < n; i++ {
			e.Go("w", func(p *Proc) {
				s.Acquire(p)
				p.Sleep(unit)
				s.Release(p)
			})
		}
		if err := e.Run(); err != nil {
			return false
		}
		rounds := (n + c - 1) / c
		return e.Now() == time.Duration(rounds)*unit
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickBarrierRounds checks that k barrier phases of staggered
// sleepers cost the sum of per-phase maxima.
func TestQuickBarrierRounds(t *testing.T) {
	check := func(matrix [3][4]uint8) bool {
		const procs = 3
		phases := 4
		e := NewEngine()
		b := NewBarrier(procs)
		var want time.Duration
		for ph := 0; ph < phases; ph++ {
			var max time.Duration
			for pr := 0; pr < procs; pr++ {
				d := time.Duration(matrix[pr][ph]) * time.Microsecond
				if d > max {
					max = d
				}
			}
			want += max
		}
		for pr := 0; pr < procs; pr++ {
			row := matrix[pr]
			e.Go("p", func(p *Proc) {
				for ph := 0; ph < phases; ph++ {
					p.Sleep(time.Duration(row[ph]) * time.Microsecond)
					b.Wait(p)
				}
			})
		}
		if err := e.Run(); err != nil {
			return false
		}
		return e.Now() == want
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
