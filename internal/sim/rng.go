package sim

import "math"

// RNG is a small, explicitly-seeded pseudorandom generator
// (splitmix64-based) used by workload generators and failure injection.
// It exists so simulations are reproducible across Go releases: unlike
// math/rand's default source, its sequence is fixed by this package.
type RNG struct {
	state uint64
}

// NewRNG returns a generator for the given seed. Distinct seeds give
// independent-looking streams; the zero seed is remapped so the state is
// never zero.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// ExpFloat64 returns an exponentially distributed value with mean 1,
// suitable for inter-failure times (scale by MTBF).
func (r *RNG) ExpFloat64() float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u)
}

// Perm returns a pseudorandom permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Zipf draws from a Zipf-like distribution over [0, n) with skew s >= 0
// (s = 0 is uniform; larger s concentrates mass on low ranks). It uses
// the classical inverse-CDF over precomputed harmonic weights; build one
// with NewZipf to amortize the table.
type Zipf struct {
	rng *RNG
	cdf []float64
}

// NewZipf precomputes a Zipf sampler of n ranks with exponent s.
func NewZipf(rng *RNG, n int, s float64) *Zipf {
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{rng: rng, cdf: cdf}
}

// Next draws a rank in [0, n).
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	// Binary search for the first cdf entry >= u.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
