package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds collided %d/64 times", same)
	}
}

func TestRNGZeroSeedRemapped(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced degenerate stream")
	}
}

func TestIntnBounds(t *testing.T) {
	if err := quick.Check(func(seed uint64, n int) bool {
		if n <= 0 {
			n = -n + 1
		}
		v := NewRNG(seed).Intn(n)
		return v >= 0 && v < n
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 1000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewRNG(11)
	sum := 0.0
	const n = 20000
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("negative exponential draw %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-1) > 0.05 {
		t.Fatalf("exponential mean = %v, want ~1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(3)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) len %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	z := NewZipf(NewRNG(5), 10, 0)
	counts := make([]int, 10)
	const n = 50000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	for rank, c := range counts {
		frac := float64(c) / n
		if math.Abs(frac-0.1) > 0.02 {
			t.Fatalf("s=0 rank %d frac %v, want ~0.1", rank, frac)
		}
	}
}

func TestZipfSkewConcentrates(t *testing.T) {
	z := NewZipf(NewRNG(5), 100, 0.99)
	counts := make([]int, 100)
	const n = 50000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	if counts[0] <= counts[50] {
		t.Fatalf("Zipf(0.99) rank0=%d not > rank50=%d", counts[0], counts[50])
	}
	top10 := 0
	for i := 0; i < 10; i++ {
		top10 += counts[i]
	}
	if float64(top10)/n < 0.4 {
		t.Fatalf("Zipf(0.99) top-10 mass %v, want >= 0.4", float64(top10)/n)
	}
}

func TestZipfInRange(t *testing.T) {
	z := NewZipf(NewRNG(9), 7, 1.2)
	for i := 0; i < 10000; i++ {
		v := z.Next()
		if v < 0 || v >= 7 {
			t.Fatalf("Zipf out of range: %d", v)
		}
	}
}
