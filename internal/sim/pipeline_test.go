package sim

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// TestQueueBoundsInFlight: a depth-2 queue never holds more than 2
// items, the consumer sees FIFO order, and Close ends the stream after
// draining.
func TestQueueBoundsInFlight(t *testing.T) {
	e := NewEngine()
	q := NewQueue(2)
	var got []int
	maxDepth := 0
	e.Go("producer", func(p *Proc) {
		for i := 0; i < 10; i++ {
			q.Put(p, i)
			if d := len(q.items); d > maxDepth {
				maxDepth = d
			}
		}
		q.Close(p)
	})
	e.Go("consumer", func(p *Proc) {
		for {
			v, ok := q.Get(p)
			if !ok {
				break
			}
			p.Sleep(time.Millisecond) // slow consumer forces backpressure
			got = append(got, v.(int))
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("consumed %d items, want 10", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("item %d = %d, want FIFO order", i, v)
		}
	}
	if maxDepth > 2 {
		t.Fatalf("queue held %d items, bound is 2", maxDepth)
	}
}

// TestQueueCloseUnblocksConsumer: a consumer parked on an empty queue
// wakes with ok=false when the producer closes without sending.
func TestQueueCloseUnblocksConsumer(t *testing.T) {
	e := NewEngine()
	q := NewQueue(1)
	done := false
	e.Go("consumer", func(p *Proc) {
		if _, ok := q.Get(p); ok {
			t.Error("Get returned an item from an empty closed queue")
		}
		done = true
	})
	e.Go("producer", func(p *Proc) {
		p.Sleep(time.Millisecond)
		q.Close(p)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("consumer never finished")
	}
}

// TestPipeOverlapsStages: with stage times A and B per item, a depth-1
// pipeline of n items completes in ≈ n·max(A,B) + min(A,B) rather than
// n·(A+B) — the whole point of the helper.
func TestPipeOverlapsStages(t *testing.T) {
	const n = 8
	const produceT = 3 * time.Millisecond
	const consumeT = 5 * time.Millisecond
	e := NewEngine()
	var elapsed time.Duration
	e.Go("pipe", func(p *Proc) {
		err := Pipe(p, "stage2", 1,
			func(q *Queue) error {
				for i := 0; i < n; i++ {
					p.Sleep(produceT)
					q.Put(p, i)
				}
				q.Close(p)
				return nil
			},
			func(c *Proc, q *Queue) error {
				for {
					_, ok := q.Get(c)
					if !ok {
						return nil
					}
					c.Sleep(consumeT)
				}
			})
		if err != nil {
			t.Error(err)
		}
		elapsed = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := n*consumeT + produceT // bottleneck × n + pipeline fill
	if elapsed != want {
		t.Fatalf("pipelined run took %v, want %v (serial would be %v)",
			elapsed, want, n*(produceT+consumeT))
	}
}

// TestPipeJoinsErrors: failures in both stages surface in the joined
// error, and a failing consumer that keeps draining never deadlocks the
// producer.
func TestPipeJoinsErrors(t *testing.T) {
	e := NewEngine()
	prodErr := errors.New("producer failed")
	consErr := errors.New("consumer failed")
	e.Go("pipe", func(p *Proc) {
		err := Pipe(p, "stage2", 1,
			func(q *Queue) error {
				for i := 0; i < 5; i++ {
					q.Put(p, i)
				}
				q.Close(p)
				return prodErr
			},
			func(c *Proc, q *Queue) error {
				var errs []error
				for {
					v, ok := q.Get(c)
					if !ok {
						return errors.Join(errs...)
					}
					if v.(int) == 2 {
						errs = append(errs, consErr)
					}
				}
			})
		if !errors.Is(err, prodErr) || !errors.Is(err, consErr) {
			t.Errorf("joined error = %v, want both stage errors", err)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestPipeConsumerOnCallerSide: the stages may be flipped — companion
// produces, caller consumes — for pipelines whose downstream stage must
// stay on the calling process (a collective's exchange phase).
func TestPipeConsumerOnCallerSide(t *testing.T) {
	e := NewEngine()
	var got []string
	e.Go("pipe", func(p *Proc) {
		err := Pipe(p, "producer", 1,
			func(q *Queue) error {
				for {
					v, ok := q.Get(p)
					if !ok {
						return nil
					}
					got = append(got, v.(string))
				}
			},
			func(c *Proc, q *Queue) error {
				for i := 0; i < 3; i++ {
					c.Sleep(time.Millisecond)
					q.Put(c, fmt.Sprintf("item-%d", i))
				}
				q.Close(c)
				return nil
			})
		if err != nil {
			t.Error(err)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != "item-0" || got[2] != "item-2" {
		t.Fatalf("consumed %v, want the 3 produced items in order", got)
	}
}
