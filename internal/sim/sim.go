// Package sim provides a deterministic virtual-time execution engine for
// simulated parallel programs.
//
// The paper's experiments concern timing phenomena on 1989-era hardware:
// seek interference, bandwidth aggregation across drives, and overlap of
// I/O with computation. To reproduce those shapes deterministically on
// modern machines, the entire library is parameterized over a Context
// that supplies the current time and the ability to wait. Two
// implementations exist:
//
//   - Proc, a process managed by Engine, runs under virtual time. The
//     Engine is a strict-alternation discrete-event scheduler: exactly one
//     managed goroutine executes at any instant, and when all are parked
//     the earliest pending event (ties broken by creation order) fires.
//     Results are bit-for-bit reproducible.
//
//   - Wall, a trivial context for ordinary library use, where device
//     models complete instantly and Sleep is a no-op unless a scale
//     factor is configured.
//
// # Scalability
//
// The engine is built to make a simulated second cheap even at thousands
// of processes. Each process owns exactly one event slot, embedded in the
// Proc itself and tracked by an indexed min-heap, so a superseded park or
// double wake is resolved in place at schedule time and the heap never
// accumulates stale entries. Events scheduled for the current instant
// bypass the heap entirely via a FIFO ready list, so a barrier releasing
// P processes costs P appends, not P heap pushes. Finished process
// shells — struct, wake channel, and worker goroutine — are recycled
// through a free list, so spawn-heavy patterns (sim.Par fan-out per
// device access) stop paying per-spawn allocation and goroutine-creation
// costs after warm-up. All of this changes wall-clock cost only: the
// dispatch order, and therefore every modeled timestamp, is bit-identical
// to a naive heap-of-events scheduler.
package sim

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/probe"
)

// Context supplies time to potentially blocking library operations. It
// plays the role context.Context plays for cancellation, but for virtual
// time: every operation that models a delay accepts a Context.
type Context interface {
	// Now reports the current time as an offset from the start of the
	// run (virtual for Proc, wall-clock-derived for Wall).
	Now() time.Duration
	// Sleep pauses the caller for d. Under virtual time the engine
	// advances; under Wall it sleeps scaled real time (or not at all).
	Sleep(d time.Duration)
}

// Event slot states for Proc.slot. Non-negative values index e.heap.
const (
	slotNone  = -1 // no pending event
	slotReady = -2 // queued on the ready list for the current instant
)

// Engine is a deterministic discrete-event scheduler for virtual-time
// processes. Create one with NewEngine, add processes with Go, then call
// Run from the owning (unmanaged) goroutine.
//
// Engine enforces strict alternation: at most one managed goroutine runs
// between scheduling decisions, so shared state touched only by managed
// processes needs no locking, and every run of the same program is
// identical. All engine and process methods must be called either from
// the currently running managed process or (before Run) from the owner.
type Engine struct {
	now       time.Duration
	seq       uint64
	heap      []*Proc // indexed min-heap on (evAt, evSeq); one slot per proc
	ready     []*Proc // FIFO of procs whose event time equals now
	readyHead int
	live      []*Proc // live processes (order immaterial; swap-removed)
	free      []*Proc // finished shells available for reuse by Go
	yield     chan struct{}
	started   bool
	// Flight-recorder hooks (nil when no recorder is attached; all are
	// nil-safe, so the off path costs one pointer check per site).
	prDispatch *probe.Counter
	prSpawn    *probe.Counter
	prBatch    *probe.Histogram
	batchN     float64 // dispatches at the current instant
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine {
	return &Engine{yield: make(chan struct{})}
}

// Now reports current virtual time. Valid from any managed process and,
// between events, from the owner.
func (e *Engine) Now() time.Duration { return e.now }

// SetProbe attaches a flight recorder to the engine: dispatch and spawn
// counters plus a same-instant batch-size histogram land in the
// recorder's metrics registry. Attaching (or detaching, with nil) never
// changes dispatch order or modeled time — the hooks are pure counting.
func (e *Engine) SetProbe(r *probe.Recorder) {
	m := r.Metrics()
	if m == nil {
		e.prDispatch, e.prSpawn, e.prBatch = nil, nil, nil
		return
	}
	e.prDispatch = m.Counter("sim.dispatches")
	e.prSpawn = m.Counter("sim.spawns")
	e.prBatch = m.Histogram("sim.batch_size")
	m.Gauge("sim.live_procs", func() float64 { return float64(len(e.live)) })
}

// Proc is a virtual-time process. It implements Context. All Proc methods
// must be called from the goroutine the engine created for it.
//
// A Proc value is only valid while its process is live: once the function
// passed to Go returns, the shell may be recycled for a later Go, so
// holding a *Proc across its completion and waking it is a protocol
// error (synchronization primitives and device queues only ever wake
// processes that are currently parked, which live processes are by
// construction).
type Proc struct {
	e       *Engine
	name    string
	wake    chan struct{}
	fn      func(*Proc)
	waiting bool
	dead    bool
	epoch   uint64
	// Embedded event slot: each process has at most one pending wakeup,
	// kept in-place so superseded schedules never leave heap garbage.
	evAt    time.Duration
	evSeq   uint64
	slot    int
	liveIdx int // index in e.live for O(1) removal
}

// Name reports the name given to Go.
func (p *Proc) Name() string { return p.name }

// Engine returns the owning engine.
func (p *Proc) Engine() *Engine { return p.e }

// Now reports current virtual time.
func (p *Proc) Now() time.Duration { return p.e.now }

// Go registers fn as a managed process. It may be called before Run or
// from a running managed process; the new process begins executing at the
// current virtual time, after the spawner next parks. Finished process
// shells (and their worker goroutines) are reused, so the returned *Proc
// must not be retained past fn's return.
func (e *Engine) Go(name string, fn func(p *Proc)) *Proc {
	e.prSpawn.Add(1)
	var p *Proc
	if n := len(e.free); n > 0 {
		p = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		p.dead = false
	} else {
		p = &Proc{e: e, wake: make(chan struct{}), slot: slotNone}
		go p.loop()
	}
	p.name = name
	p.fn = fn
	p.liveIdx = len(e.live)
	e.live = append(e.live, p)
	p.epoch++
	p.waiting = true // the worker goroutine is blocked on its start event
	e.schedule(e.now, p, p.epoch)
	return p
}

// loop is the worker goroutine body: run one process function per wake,
// then return the shell to the engine's free list. The goroutine exits
// when the engine closes the shell's wake channel after Run completes.
func (p *Proc) loop() {
	for {
		if _, ok := <-p.wake; !ok {
			return
		}
		fn := p.fn
		p.fn = nil
		fn(p)
		e := p.e
		last := len(e.live) - 1
		e.live[p.liveIdx] = e.live[last]
		e.live[p.liveIdx].liveIdx = p.liveIdx
		e.live[last] = nil
		e.live = e.live[:last]
		p.dead = true
		e.free = append(e.free, p)
		e.yield <- struct{}{}
	}
}

// schedule enqueues a wakeup for p at time at, bound to park epoch ep.
// Staleness is resolved here rather than at dispatch: under strict
// alternation a parked process cannot run (and so cannot finish or
// re-park) before its pending event fires, so conditions checked at
// schedule time still hold at dispatch time. A schedule for a process
// that already has an earlier-or-equal pending event is dropped — the
// earlier event is exactly the one the old pop-and-skip scheduler would
// have dispatched — and a strictly earlier schedule moves the slot in
// place (decrease-key), so no stale entries ever enter the heap.
func (e *Engine) schedule(at time.Duration, p *Proc, ep uint64) {
	e.seq++
	if p.dead || !p.waiting || ep != p.epoch {
		return // stale: process finished, running, or park superseded
	}
	if at < e.now {
		at = e.now
	}
	switch {
	case p.slot == slotNone:
		p.evAt, p.evSeq = at, e.seq
		if at == e.now {
			p.slot = slotReady
			e.ready = append(e.ready, p)
		} else {
			e.heapPush(p)
		}
	case at < p.evAt: // double schedule: keep the minimum (at, seq)
		p.evAt, p.evSeq = at, e.seq
		if at == e.now {
			e.heapRemove(p)
			p.slot = slotReady
			e.ready = append(e.ready, p)
		} else {
			e.heapUp(p.slot)
		}
	}
	// Otherwise the pending event fires no later; the new one is stale.
}

// park hands control to the scheduler and blocks until resumed. The
// caller must have set waiting and bumped epoch (via sleep/Park).
func (p *Proc) park() {
	p.e.yield <- struct{}{}
	<-p.wake
}

// Sleep suspends the process for d of virtual time. Sleep(0) yields,
// allowing other already-scheduled same-time events to run first.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.SleepUntil(p.e.now + d)
}

// SleepUntil suspends the process until the given virtual time (which is
// clamped to now if already past).
func (p *Proc) SleepUntil(t time.Duration) {
	p.epoch++
	p.waiting = true
	p.e.schedule(t, p, p.epoch)
	p.park()
}

// Park suspends the process indefinitely; it resumes when another process
// calls Engine.Wake (or WakeAt) for it. Used to build synchronization
// primitives and device queues. Each Park must be matched by exactly one
// Wake; extra wakes for a superseded park are dropped harmlessly.
func (p *Proc) Park() {
	p.epoch++
	p.waiting = true
	p.park()
}

// Wake schedules the parked process p to resume at the current virtual
// time. Under strict alternation the target is guaranteed to be parked
// whenever another process runs, so this is race-free. Waking a process
// that has finished is a protocol error (its shell may already belong to
// a later Go).
func (e *Engine) Wake(p *Proc) { e.WakeAt(p, e.now) }

// WakeAt schedules the parked process p to resume at virtual time at.
func (e *Engine) WakeAt(p *Proc, at time.Duration) {
	e.schedule(at, p, p.epoch)
}

// Deadlock describes an engine run that stalled: processes remain but no
// runnable events are pending.
type Deadlock struct {
	At    time.Duration
	Procs []string // names of stuck processes
}

func (d *Deadlock) Error() string {
	return fmt.Sprintf("sim: deadlock at %v: %d process(es) parked forever: %v", d.At, len(d.Procs), d.Procs)
}

// Run executes scheduled processes until none remain. It must be called
// from the goroutine that owns the engine (not a managed process), and at
// most once. It returns a *Deadlock error if processes remain parked with
// no pending events; otherwise nil.
//
// Dispatch order: among pending events, the minimum (time, schedule-seq)
// fires first. Events for the current instant live on a FIFO ready list;
// every heap event at the current instant was scheduled before time
// advanced here and so precedes every ready entry, which is why draining
// heap-at-now before the ready list preserves exact seq order.
func (e *Engine) Run() error {
	if e.started {
		return fmt.Errorf("sim: Run called twice")
	}
	e.started = true
	for {
		if len(e.live) == 0 {
			e.flushBatch()
			e.reapFree()
			return nil
		}
		var p *Proc
		switch {
		case len(e.heap) > 0 && e.heap[0].evAt == e.now:
			p = e.heapPop()
		case e.readyHead < len(e.ready):
			p = e.ready[e.readyHead]
			e.ready[e.readyHead] = nil
			e.readyHead++
			if e.readyHead == len(e.ready) {
				e.ready = e.ready[:0]
				e.readyHead = 0
			}
			p.slot = slotNone
		case len(e.heap) > 0:
			e.flushBatch()
			e.now = e.heap[0].evAt
			p = e.heapPop()
		default:
			var names []string
			for _, q := range e.live {
				names = append(names, q.name)
			}
			sort.Strings(names)
			e.reapFree()
			return &Deadlock{At: e.now, Procs: names}
		}
		if e.prDispatch != nil {
			e.prDispatch.Add(1)
			e.batchN++
		}
		p.waiting = false
		p.wake <- struct{}{}
		<-e.yield // wait for the process to park or finish
	}
}

// flushBatch folds the just-completed instant's dispatch count into the
// batch-size histogram (no-op when no recorder is attached).
func (e *Engine) flushBatch() {
	if e.prBatch != nil && e.batchN > 0 {
		e.prBatch.Add(e.batchN)
		e.batchN = 0
	}
}

// reapFree terminates pooled worker goroutines once the run is over so
// finished engines do not pin idle goroutines.
func (e *Engine) reapFree() {
	for i, p := range e.free {
		close(p.wake)
		e.free[i] = nil
	}
	e.free = nil
}

// Indexed binary min-heap over (evAt, evSeq), with each proc's position
// stored in p.slot so re-schedules adjust entries in place.

func (e *Engine) evLess(i, j int) bool {
	a, b := e.heap[i], e.heap[j]
	if a.evAt != b.evAt {
		return a.evAt < b.evAt
	}
	return a.evSeq < b.evSeq
}

func (e *Engine) evSwap(i, j int) {
	e.heap[i], e.heap[j] = e.heap[j], e.heap[i]
	e.heap[i].slot = i
	e.heap[j].slot = j
}

func (e *Engine) heapUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !e.evLess(i, parent) {
			break
		}
		e.evSwap(i, parent)
		i = parent
	}
}

func (e *Engine) heapDown(i int) {
	n := len(e.heap)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && e.evLess(l, min) {
			min = l
		}
		if r < n && e.evLess(r, min) {
			min = r
		}
		if min == i {
			return
		}
		e.evSwap(i, min)
		i = min
	}
}

func (e *Engine) heapPush(p *Proc) {
	p.slot = len(e.heap)
	e.heap = append(e.heap, p)
	e.heapUp(p.slot)
}

func (e *Engine) heapPop() *Proc {
	p := e.heap[0]
	last := len(e.heap) - 1
	e.heap[0] = e.heap[last]
	e.heap[0].slot = 0
	e.heap[last] = nil
	e.heap = e.heap[:last]
	if last > 0 {
		e.heapDown(0)
	}
	p.slot = slotNone
	return p
}

// heapRemove deletes p from an arbitrary heap position.
func (e *Engine) heapRemove(p *Proc) {
	i := p.slot
	last := len(e.heap) - 1
	if i != last {
		e.heap[i] = e.heap[last]
		e.heap[i].slot = i
	}
	e.heap[last] = nil
	e.heap = e.heap[:last]
	if i < last {
		e.heapDown(i)
		e.heapUp(i)
	}
	p.slot = slotNone
}

// Wall is a Context for ordinary (non-simulated) execution. The zero
// value never sleeps and reports time elapsed since the first call; the
// epoch is latched exactly once, so a zero-value Wall shared across
// goroutines is safe.
type Wall struct {
	start time.Time
	once  sync.Once
	// Scale multiplies modeled durations into real sleeps; zero means
	// modeled delays are skipped entirely (functional mode).
	Scale float64
}

// NewWall returns a wall-clock context that skips modeled delays.
func NewWall() *Wall {
	w := &Wall{}
	w.once.Do(func() { w.start = time.Now() })
	return w
}

// Now reports wall time elapsed since the context was created (or since
// the first call, for a zero-value Wall).
func (w *Wall) Now() time.Duration {
	w.once.Do(func() { w.start = time.Now() })
	return time.Since(w.start)
}

// Sleep sleeps d scaled by w.Scale (not at all when Scale is zero).
func (w *Wall) Sleep(d time.Duration) {
	if w.Scale > 0 && d > 0 {
		time.Sleep(time.Duration(float64(d) * w.Scale))
	}
}

var (
	_ Context = (*Proc)(nil)
	_ Context = (*Wall)(nil)
)
