// Package sim provides a deterministic virtual-time execution engine for
// simulated parallel programs.
//
// The paper's experiments concern timing phenomena on 1989-era hardware:
// seek interference, bandwidth aggregation across drives, and overlap of
// I/O with computation. To reproduce those shapes deterministically on
// modern machines, the entire library is parameterized over a Context
// that supplies the current time and the ability to wait. Two
// implementations exist:
//
//   - Proc, a process managed by Engine, runs under virtual time. The
//     Engine is a strict-alternation discrete-event scheduler: exactly one
//     managed goroutine executes at any instant, and when all are parked
//     the earliest pending event (ties broken by creation order) fires.
//     Results are bit-for-bit reproducible.
//
//   - Wall, a trivial context for ordinary library use, where device
//     models complete instantly and Sleep is a no-op unless a scale
//     factor is configured.
package sim

import (
	"container/heap"
	"fmt"
	"sort"
	"time"
)

// Context supplies time to potentially blocking library operations. It
// plays the role context.Context plays for cancellation, but for virtual
// time: every operation that models a delay accepts a Context.
type Context interface {
	// Now reports the current time as an offset from the start of the
	// run (virtual for Proc, wall-clock-derived for Wall).
	Now() time.Duration
	// Sleep pauses the caller for d. Under virtual time the engine
	// advances; under Wall it sleeps scaled real time (or not at all).
	Sleep(d time.Duration)
}

// event is a scheduled wakeup for a parked process. epoch pairs the event
// with a particular park: events whose epoch no longer matches the
// process's current park are stale and dropped, so a double wake or an
// abandoned timer can never resume the wrong wait.
type event struct {
	at    time.Duration
	seq   uint64 // tie-break: earlier-scheduled events fire first
	epoch uint64
	proc  *Proc
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine is a deterministic discrete-event scheduler for virtual-time
// processes. Create one with NewEngine, add processes with Go, then call
// Run from the owning (unmanaged) goroutine.
//
// Engine enforces strict alternation: at most one managed goroutine runs
// between scheduling decisions, so shared state touched only by managed
// processes needs no locking, and every run of the same program is
// identical. All engine and process methods must be called either from
// the currently running managed process or (before Run) from the owner.
type Engine struct {
	now     time.Duration
	seq     uint64
	events  eventHeap
	procs   map[*Proc]bool // live processes
	yield   chan struct{}  // process -> scheduler handoff
	started bool
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine {
	return &Engine{
		procs: make(map[*Proc]bool),
		yield: make(chan struct{}),
	}
}

// Now reports current virtual time. Valid from any managed process and,
// between events, from the owner.
func (e *Engine) Now() time.Duration { return e.now }

// Proc is a virtual-time process. It implements Context. All Proc methods
// must be called from the goroutine the engine created for it.
type Proc struct {
	e       *Engine
	name    string
	wake    chan struct{}
	waiting bool
	epoch   uint64
}

// Name reports the name given to Go.
func (p *Proc) Name() string { return p.name }

// Engine returns the owning engine.
func (p *Proc) Engine() *Engine { return p.e }

// Now reports current virtual time.
func (p *Proc) Now() time.Duration { return p.e.now }

// Go registers fn as a managed process. It may be called before Run or
// from a running managed process; the new process begins executing at the
// current virtual time, after the spawner next parks.
func (e *Engine) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{e: e, name: name, wake: make(chan struct{})}
	e.procs[p] = true
	p.epoch = 1
	p.waiting = true // the goroutine below starts blocked on its start event
	e.schedule(e.now, p, p.epoch)
	go func() {
		<-p.wake // wait for start event
		fn(p)
		delete(e.procs, p)
		e.yield <- struct{}{}
	}()
	return p
}

// schedule enqueues a wakeup for p at time at, bound to park epoch ep.
func (e *Engine) schedule(at time.Duration, p *Proc, ep uint64) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	heap.Push(&e.events, event{at: at, seq: e.seq, epoch: ep, proc: p})
}

// park hands control to the scheduler and blocks until resumed. The
// caller must have set waiting and bumped epoch (via sleep/Park).
func (p *Proc) park() {
	p.e.yield <- struct{}{}
	<-p.wake
}

// Sleep suspends the process for d of virtual time. Sleep(0) yields,
// allowing other already-scheduled same-time events to run first.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.SleepUntil(p.e.now + d)
}

// SleepUntil suspends the process until the given virtual time (which is
// clamped to now if already past).
func (p *Proc) SleepUntil(t time.Duration) {
	p.epoch++
	p.waiting = true
	p.e.schedule(t, p, p.epoch)
	p.park()
}

// Park suspends the process indefinitely; it resumes when another process
// calls Engine.Wake (or WakeAt) for it. Used to build synchronization
// primitives and device queues. Each Park must be matched by exactly one
// Wake; extra wakes for a superseded park are dropped harmlessly.
func (p *Proc) Park() {
	p.epoch++
	p.waiting = true
	p.park()
}

// Wake schedules the parked process p to resume at the current virtual
// time. Under strict alternation the target is guaranteed to be parked
// (or finished) whenever another process runs, so this is race-free.
func (e *Engine) Wake(p *Proc) { e.WakeAt(p, e.now) }

// WakeAt schedules the parked process p to resume at virtual time at.
func (e *Engine) WakeAt(p *Proc, at time.Duration) {
	e.schedule(at, p, p.epoch)
}

// Deadlock describes an engine run that stalled: processes remain but no
// runnable events are pending.
type Deadlock struct {
	At    time.Duration
	Procs []string // names of stuck processes
}

func (d *Deadlock) Error() string {
	return fmt.Sprintf("sim: deadlock at %v: %d process(es) parked forever: %v", d.At, len(d.Procs), d.Procs)
}

// Run executes scheduled processes until none remain. It must be called
// from the goroutine that owns the engine (not a managed process), and at
// most once. It returns a *Deadlock error if processes remain parked with
// no pending events; otherwise nil.
func (e *Engine) Run() error {
	if e.started {
		return fmt.Errorf("sim: Run called twice")
	}
	e.started = true
	for {
		if len(e.procs) == 0 {
			return nil
		}
		runnable := false
		var ev event
		for e.events.Len() > 0 {
			ev = heap.Pop(&e.events).(event)
			if e.procs[ev.proc] && ev.proc.waiting && ev.epoch == ev.proc.epoch {
				runnable = true
				break
			}
			// Stale: process finished, superseded park, or double wake.
		}
		if !runnable {
			var names []string
			for p := range e.procs {
				names = append(names, p.name)
			}
			sort.Strings(names)
			return &Deadlock{At: e.now, Procs: names}
		}
		e.now = ev.at
		ev.proc.waiting = false
		ev.proc.wake <- struct{}{}
		<-e.yield // wait for the process to park or finish
	}
}

// Wall is a Context for ordinary (non-simulated) execution. The zero
// value never sleeps and reports time elapsed since the first call.
type Wall struct {
	start time.Time
	// Scale multiplies modeled durations into real sleeps; zero means
	// modeled delays are skipped entirely (functional mode).
	Scale float64
}

// NewWall returns a wall-clock context that skips modeled delays.
func NewWall() *Wall { return &Wall{start: time.Now()} }

// Now reports wall time elapsed since the context was created.
func (w *Wall) Now() time.Duration {
	if w.start.IsZero() {
		w.start = time.Now()
	}
	return time.Since(w.start)
}

// Sleep sleeps d scaled by w.Scale (not at all when Scale is zero).
func (w *Wall) Sleep(d time.Duration) {
	if w.Scale > 0 && d > 0 {
		time.Sleep(time.Duration(float64(d) * w.Scale))
	}
}

var (
	_ Context = (*Proc)(nil)
	_ Context = (*Wall)(nil)
)
