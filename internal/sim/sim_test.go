package sim

import (
	"sync"
	"testing"
	"time"
)

func TestEngineEmptyRun(t *testing.T) {
	e := NewEngine()
	if err := e.Run(); err != nil {
		t.Fatalf("empty Run: %v", err)
	}
	if e.Now() != 0 {
		t.Fatalf("time advanced with no events: %v", e.Now())
	}
}

func TestEngineRunTwice(t *testing.T) {
	e := NewEngine()
	if err := e.Run(); err != nil {
		t.Fatalf("first Run: %v", err)
	}
	if err := e.Run(); err == nil {
		t.Fatal("second Run should fail")
	}
}

func TestSleepAdvancesVirtualTime(t *testing.T) {
	e := NewEngine()
	var got time.Duration
	e.Go("a", func(p *Proc) {
		p.Sleep(5 * time.Millisecond)
		p.Sleep(7 * time.Millisecond)
		got = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 12*time.Millisecond {
		t.Fatalf("Now after sleeps = %v, want 12ms", got)
	}
	if e.Now() != 12*time.Millisecond {
		t.Fatalf("engine Now = %v, want 12ms", e.Now())
	}
}

func TestSleepZeroYields(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Go("a", func(p *Proc) {
		order = append(order, "a1")
		p.Sleep(0)
		order = append(order, "a2")
	})
	e.Go("b", func(p *Proc) {
		order = append(order, "b1")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a1", "b1", "a2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestNegativeSleepIsZero(t *testing.T) {
	e := NewEngine()
	e.Go("a", func(p *Proc) {
		p.Sleep(-time.Second)
		if p.Now() != 0 {
			t.Errorf("negative sleep advanced time to %v", p.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSleepUntilPastClampsToNow(t *testing.T) {
	e := NewEngine()
	e.Go("a", func(p *Proc) {
		p.Sleep(10 * time.Millisecond)
		p.SleepUntil(2 * time.Millisecond) // already past
		if p.Now() != 10*time.Millisecond {
			t.Errorf("SleepUntil went backwards: %v", p.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicInterleaving(t *testing.T) {
	run := func() []string {
		e := NewEngine()
		var order []string
		for _, n := range []string{"p0", "p1", "p2"} {
			name := n
			e.Go(name, func(p *Proc) {
				for i := 0; i < 3; i++ {
					order = append(order, name)
					p.Sleep(time.Millisecond)
				}
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return order
	}
	first := run()
	for trial := 0; trial < 10; trial++ {
		again := run()
		for i := range first {
			if first[i] != again[i] {
				t.Fatalf("nondeterministic interleaving: run0=%v run%d=%v", first, trial, again)
			}
		}
	}
}

func TestSameTimeEventsFireInScheduleOrder(t *testing.T) {
	e := NewEngine()
	var order []string
	for _, n := range []string{"x", "y", "z"} {
		name := n
		e.Go(name, func(p *Proc) {
			p.Sleep(3 * time.Millisecond) // all wake at the same instant
			order = append(order, name)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"x", "y", "z"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("same-time order = %v, want %v", order, want)
		}
	}
}

func TestParkWake(t *testing.T) {
	e := NewEngine()
	var woke time.Duration
	var target *Proc
	target = e.Go("sleeper", func(p *Proc) {
		p.Park()
		woke = p.Now()
	})
	e.Go("waker", func(p *Proc) {
		p.Sleep(4 * time.Millisecond)
		p.Engine().Wake(target)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != 4*time.Millisecond {
		t.Fatalf("woke at %v, want 4ms", woke)
	}
}

func TestWakeAtFuture(t *testing.T) {
	e := NewEngine()
	var woke time.Duration
	var target *Proc
	target = e.Go("sleeper", func(p *Proc) {
		p.Park()
		woke = p.Now()
	})
	e.Go("waker", func(p *Proc) {
		p.Engine().WakeAt(target, 9*time.Millisecond)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != 9*time.Millisecond {
		t.Fatalf("woke at %v, want 9ms", woke)
	}
}

func TestDoubleWakeIsDropped(t *testing.T) {
	e := NewEngine()
	wakes := 0
	var target *Proc
	target = e.Go("sleeper", func(p *Proc) {
		p.Park()
		wakes++
		p.Sleep(20 * time.Millisecond) // if the stale wake fired, this would end early
		wakes++
	})
	e.Go("waker", func(p *Proc) {
		p.Engine().Wake(target)
		p.Engine().Wake(target) // second wake for the same park: stale
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if wakes != 2 {
		t.Fatalf("wakes = %d, want 2", wakes)
	}
	if e.Now() != 20*time.Millisecond {
		t.Fatalf("end time %v, want 20ms (stale wake must not cut the sleep short)", e.Now())
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := NewEngine()
	e.Go("stuck", func(p *Proc) {
		p.Park() // never woken
	})
	err := e.Run()
	d, ok := err.(*Deadlock)
	if !ok {
		t.Fatalf("expected *Deadlock, got %v", err)
	}
	if len(d.Procs) != 1 || d.Procs[0] != "stuck" {
		t.Fatalf("deadlock procs = %v", d.Procs)
	}
	if d.Error() == "" {
		t.Fatal("empty deadlock message")
	}
}

func TestSpawnFromRunningProc(t *testing.T) {
	e := NewEngine()
	var childTime time.Duration
	e.Go("parent", func(p *Proc) {
		p.Sleep(2 * time.Millisecond)
		p.Engine().Go("child", func(c *Proc) {
			childTime = c.Now()
		})
		p.Sleep(time.Millisecond)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if childTime != 2*time.Millisecond {
		t.Fatalf("child started at %v, want 2ms", childTime)
	}
}

func TestMutexExclusionAndFIFO(t *testing.T) {
	e := NewEngine()
	var m Mutex
	var order []string
	inside := 0
	for _, n := range []string{"a", "b", "c"} {
		name := n
		e.Go(name, func(p *Proc) {
			m.Lock(p)
			inside++
			if inside != 1 {
				t.Errorf("mutex violated: %d inside", inside)
			}
			order = append(order, name)
			p.Sleep(time.Millisecond)
			inside--
			m.Unlock(p)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "c"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("lock order = %v, want FIFO %v", order, want)
		}
	}
}

func TestMutexTryLock(t *testing.T) {
	e := NewEngine()
	var m Mutex
	e.Go("a", func(p *Proc) {
		if !m.TryLock() {
			t.Error("TryLock on free mutex failed")
		}
		if m.TryLock() {
			t.Error("TryLock on held mutex succeeded")
		}
		m.Unlock(p)
		if !m.TryLock() {
			t.Error("TryLock after Unlock failed")
		}
		m.Unlock(p)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBarrierReleasesTogetherAndReuses(t *testing.T) {
	e := NewEngine()
	b := NewBarrier(3)
	var phase1, phase2 []time.Duration
	for i := 0; i < 3; i++ {
		delay := time.Duration(i) * time.Millisecond
		e.Go("w", func(p *Proc) {
			p.Sleep(delay)
			b.Wait(p)
			phase1 = append(phase1, p.Now())
			p.Sleep(delay)
			b.Wait(p)
			phase2 = append(phase2, p.Now())
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for _, ts := range phase1 {
		if ts != 2*time.Millisecond {
			t.Fatalf("phase1 release at %v, want 2ms (slowest arrival)", ts)
		}
	}
	for _, ts := range phase2 {
		if ts != 4*time.Millisecond {
			t.Fatalf("phase2 release at %v, want 4ms", ts)
		}
	}
}

func TestSemaphoreLimitsConcurrency(t *testing.T) {
	e := NewEngine()
	s := NewSemaphore(2)
	inside, peak := 0, 0
	for i := 0; i < 6; i++ {
		e.Go("w", func(p *Proc) {
			s.Acquire(p)
			inside++
			if inside > peak {
				peak = inside
			}
			p.Sleep(time.Millisecond)
			inside--
			s.Release(p)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if peak != 2 {
		t.Fatalf("peak concurrency %d, want 2", peak)
	}
	// 6 unit jobs, 2 at a time -> 3ms.
	if e.Now() != 3*time.Millisecond {
		t.Fatalf("end time %v, want 3ms", e.Now())
	}
}

func TestGroupJoin(t *testing.T) {
	e := NewEngine()
	var g Group
	done := 0
	e.Go("parent", func(p *Proc) {
		for i := 0; i < 4; i++ {
			d := time.Duration(i+1) * time.Millisecond
			g.Spawn(p.Engine(), "child", func(c *Proc) {
				c.Sleep(d)
				done++
			})
		}
		g.Wait(p)
		if done != 4 {
			t.Errorf("joined with %d children done, want 4", done)
		}
		if p.Now() != 4*time.Millisecond {
			t.Errorf("join at %v, want 4ms", p.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestGroupWaitWhenEmpty(t *testing.T) {
	e := NewEngine()
	e.Go("parent", func(p *Proc) {
		var g Group
		g.Wait(p) // should not block
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestWaitQueueWakeOrder(t *testing.T) {
	e := NewEngine()
	var wq WaitQueue
	var order []string
	for _, n := range []string{"first", "second", "third"} {
		name := n
		e.Go(name, func(p *Proc) {
			wq.Wait(p)
			order = append(order, name)
		})
	}
	e.Go("waker", func(p *Proc) {
		p.Sleep(time.Millisecond)
		if wq.Len() != 3 {
			t.Errorf("queue len = %d, want 3", wq.Len())
		}
		wq.WakeOne(p.Engine())
		p.Sleep(time.Millisecond)
		wq.WakeAll(p.Engine())
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"first", "second", "third"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("wake order = %v, want %v", order, want)
		}
	}
}

// TestWallConcurrentNow guards the lazy-init fix: a zero-value Wall
// shared across goroutines must latch its epoch exactly once. Run with
// -race to catch regressions.
func TestWallConcurrentNow(t *testing.T) {
	var w Wall
	var wg sync.WaitGroup
	results := make([]time.Duration, 8)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = w.Now()
		}(i)
	}
	wg.Wait()
	for i, d := range results {
		if d < 0 {
			t.Fatalf("goroutine %d saw negative elapsed time %v", i, d)
		}
	}
}

// TestProcShellReuse checks that finished process shells are recycled:
// a spawn-join loop should settle onto pooled shells instead of
// allocating a fresh goroutine and channel per spawn.
func TestProcShellReuse(t *testing.T) {
	e := NewEngine()
	seen := make(map[*Proc]int)
	e.Go("driver", func(p *Proc) {
		for i := 0; i < 100; i++ {
			var g Group
			g.Spawn(p.Engine(), "worker", func(c *Proc) {
				seen[c]++
				c.Sleep(time.Microsecond)
			})
			g.Wait(p)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range seen {
		total += n
	}
	if total != 100 {
		t.Fatalf("ran %d workers, want 100", total)
	}
	// 100 sequential spawns should reuse a small number of shells.
	if len(seen) > 3 {
		t.Fatalf("used %d distinct shells for 100 sequential spawns, want pooling", len(seen))
	}
}

// TestBatchedSameTimeDispatch stresses the ready-list fast path: a
// barrier releasing many processes at one instant must preserve FIFO
// wake order and leave the heap free of stale entries.
func TestBatchedSameTimeDispatch(t *testing.T) {
	const n = 64
	e := NewEngine()
	b := NewBarrier(n)
	var order []int
	for i := 0; i < n; i++ {
		i := i
		e.Go("w", func(p *Proc) {
			p.Sleep(time.Duration(i%7) * time.Millisecond)
			b.Wait(p)
			order = append(order, i)
			p.Sleep(time.Millisecond)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != n {
		t.Fatalf("released %d, want %d", len(order), n)
	}
	// The last arriver (largest i with i%7 == 6) completes the barrier,
	// appends first, and releases the waiters in FIFO arrival order:
	// delay cohorts ascending, spawn order within each cohort.
	want := []int{62}
	for cohort := 0; cohort < 7; cohort++ {
		for i := cohort; i < n; i += 7 {
			if i != 62 {
				want = append(want, i)
			}
		}
	}
	for idx := range want {
		if order[idx] != want[idx] {
			t.Fatalf("release order[%d] = %d, want %d (full: %v)", idx, order[idx], want[idx], order)
		}
	}
	if len(e.heap) != 0 || e.readyHead != len(e.ready) {
		t.Fatalf("engine left %d heap / %d ready entries after Run", len(e.heap), len(e.ready)-e.readyHead)
	}
}

func TestWallContext(t *testing.T) {
	w := NewWall()
	t0 := w.Now()
	w.Sleep(50 * time.Millisecond) // Scale 0: returns immediately
	if w.Now()-t0 > 40*time.Millisecond {
		t.Fatal("Wall with Scale 0 actually slept")
	}
	var zero Wall
	if zero.Now() < 0 {
		t.Fatal("zero Wall Now negative")
	}
}
