package sim

import "errors"

// Software pipelining for virtual-time processes: a bounded FIFO
// hand-off (Queue) and a two-stage pipeline runner (Pipe) built on it.
//
// The shape these exist for is a producer/consumer pair whose stages
// both model time — a collective's exchange phase handing chunks to a
// device-access phase, a prefetcher feeding a compute loop — where the
// bound on the queue is the staging memory budget: depth 1 is classic
// double buffering (one item being produced while one is consumed).

// Queue is a bounded FIFO hand-off between managed processes — the
// virtual-time analogue of a buffered channel. The zero value is
// unusable; create with NewQueue. Like the other primitives, it relies
// on the engine's strict alternation instead of locks.
type Queue struct {
	cap    int
	items  []any
	closed bool
	sendq  WaitQueue
	recvq  WaitQueue
}

// NewQueue returns a queue bounding the number of in-flight items to
// cap (minimum 1).
func NewQueue(cap int) *Queue {
	if cap < 1 {
		cap = 1
	}
	return &Queue{cap: cap}
}

// Put appends v, parking while the queue is full. Putting on a closed
// queue panics (a pipeline protocol error, like a send on a closed
// channel).
func (q *Queue) Put(p *Proc, v any) {
	for len(q.items) >= q.cap && !q.closed {
		q.sendq.Wait(p)
	}
	if q.closed {
		panic("sim: Put on closed Queue")
	}
	q.items = append(q.items, v)
	q.recvq.WakeOne(p.e)
}

// Get removes and returns the head item, parking while the queue is
// empty. It returns ok=false once the queue is closed and drained.
func (q *Queue) Get(p *Proc) (v any, ok bool) {
	for len(q.items) == 0 && !q.closed {
		q.recvq.Wait(p)
	}
	if len(q.items) == 0 {
		return nil, false
	}
	v = q.items[0]
	q.items = q.items[1:]
	q.sendq.WakeOne(p.e)
	return v, true
}

// TryGet removes and returns the head item without parking; ok=false
// when the queue is momentarily empty. A scheduler draining several
// queues under its own ordering policy uses this instead of Get (which
// commits the caller to this queue's arrivals).
func (q *Queue) TryGet(p *Proc) (v any, ok bool) {
	if len(q.items) == 0 {
		return nil, false
	}
	v = q.items[0]
	q.items = q.items[1:]
	q.sendq.WakeOne(p.e)
	return v, true
}

// Peek returns the head item without removing it; ok=false when empty.
func (q *Queue) Peek() (v any, ok bool) {
	if len(q.items) == 0 {
		return nil, false
	}
	return q.items[0], true
}

// Len reports the number of buffered items.
func (q *Queue) Len() int { return len(q.items) }

// Closed reports whether Close has been called.
func (q *Queue) Closed() bool { return q.closed }

// Close marks the end of the stream: blocked and future Gets drain the
// remaining items and then report ok=false. Close is idempotent.
func (q *Queue) Close(p *Proc) {
	if q.closed {
		return
	}
	q.closed = true
	q.sendq.WakeAll(p.e)
	q.recvq.WakeAll(p.e)
}

// Pipe runs a two-stage software pipeline: caller runs on the calling
// process, companion in a spawned process, and the two communicate
// through a Queue bounding the in-flight items to depth (1 = double
// buffering). Which side produces and which consumes is the stages'
// choice — the producing side must Close the queue when done (or on
// early exit), and the consuming side should drain the queue even after
// a failure so the producer never blocks on a full queue. Pipe joins
// the companion before returning and joins both stages' errors.
func Pipe(p *Proc, name string, depth int, caller func(q *Queue) error, companion func(c *Proc, q *Queue) error) error {
	q := NewQueue(depth)
	var g Group
	var cerr error
	g.Spawn(p.Engine(), name, func(c *Proc) {
		cerr = companion(c, q)
	})
	err := caller(q)
	g.Wait(p)
	return errors.Join(err, cerr)
}
