package sim

import "errors"

// Synchronization primitives for virtual-time processes.
//
// Because the engine enforces strict alternation, these types need no
// real locks: a process mutates primitive state only while it is the sole
// running goroutine, and the park/wake channel operations provide the
// happens-before edges the memory model requires.

// WaitQueue is a FIFO queue of parked processes — the building block for
// the other primitives (condition-variable style).
type WaitQueue struct {
	q []*Proc
}

// Wait parks the calling process at the tail of the queue.
func (w *WaitQueue) Wait(p *Proc) {
	w.q = append(w.q, p)
	p.Park()
}

// Len reports how many processes are parked on the queue.
func (w *WaitQueue) Len() int { return len(w.q) }

// WakeOne resumes the process at the head of the queue (at the current
// virtual time) and reports whether one was waiting.
func (w *WaitQueue) WakeOne(e *Engine) bool {
	if len(w.q) == 0 {
		return false
	}
	p := w.q[0]
	w.q = w.q[1:]
	e.Wake(p)
	return true
}

// WakeAll resumes every parked process, in FIFO order, at the current
// virtual time.
func (w *WaitQueue) WakeAll(e *Engine) {
	for _, p := range w.q {
		e.Wake(p)
	}
	w.q = nil
}

// Mutex is a virtual-time mutual-exclusion lock with FIFO handoff. The
// zero value is unlocked.
type Mutex struct {
	locked bool
	wq     WaitQueue
}

// Lock acquires the mutex, parking the process until it is available.
func (m *Mutex) Lock(p *Proc) {
	for m.locked {
		m.wq.Wait(p)
	}
	m.locked = true
}

// TryLock acquires the mutex if it is free and reports whether it did.
func (m *Mutex) TryLock() bool {
	if m.locked {
		return false
	}
	m.locked = true
	return true
}

// Unlock releases the mutex, waking the next waiter if any. The caller
// supplies its Proc so the wake is scheduled deterministically.
func (m *Mutex) Unlock(p *Proc) {
	m.locked = false
	m.wq.WakeOne(p.e)
}

// Barrier blocks processes until a fixed number have arrived, then
// releases them all (reusable across phases).
type Barrier struct {
	n       int
	arrived int
	wq      WaitQueue
}

// NewBarrier returns a barrier for n participants.
func NewBarrier(n int) *Barrier { return &Barrier{n: n} }

// Wait blocks until all n participants have called Wait; the final
// arriver releases the others and the barrier resets.
func (b *Barrier) Wait(p *Proc) {
	b.arrived++
	if b.arrived == b.n {
		b.arrived = 0
		b.wq.WakeAll(p.e)
		return
	}
	b.wq.Wait(p)
}

// Semaphore is a counting semaphore under virtual time.
type Semaphore struct {
	avail int
	wq    WaitQueue
}

// NewSemaphore returns a semaphore with n initial permits.
func NewSemaphore(n int) *Semaphore { return &Semaphore{avail: n} }

// Acquire takes one permit, parking until one is available.
func (s *Semaphore) Acquire(p *Proc) {
	for s.avail == 0 {
		s.wq.Wait(p)
	}
	s.avail--
}

// Release returns one permit and wakes a waiter if any.
func (s *Semaphore) Release(p *Proc) {
	s.avail++
	s.wq.WakeOne(p.e)
}

// Group tracks completion of a set of spawned processes so a parent can
// join on them (WaitGroup analogue).
type Group struct {
	active  int
	waiters WaitQueue
}

// Add records n processes joining the group.
func (g *Group) Add(n int) { g.active += n }

// Done records one process leaving the group, waking joiners when the
// count reaches zero.
func (g *Group) Done(p *Proc) {
	g.active--
	if g.active == 0 {
		g.waiters.WakeAll(p.e)
	}
}

// Wait parks until the group count reaches zero.
func (g *Group) Wait(p *Proc) {
	for g.active > 0 {
		g.waiters.Wait(p)
	}
}

// Spawn runs fn in a new managed process registered with the group.
func (g *Group) Spawn(e *Engine, name string, fn func(p *Proc)) {
	g.Add(1)
	e.Go(name, func(p *Proc) {
		defer g.Done(p)
		fn(p)
	})
}

// Par runs the given operations concurrently when ctx is a managed
// process (the first on the calling process, the rest as spawned
// processes, matching how an I/O controller drives several spindles at
// once) and sequentially otherwise, joining all errors. Spawn order — and
// therefore virtual-time scheduling — follows argument order, keeping
// runs deterministic.
func Par(ctx Context, fns ...func(Context) error) error {
	p, ok := ctx.(*Proc)
	if !ok || len(fns) == 1 {
		var errs []error
		for _, fn := range fns {
			if err := fn(ctx); err != nil {
				errs = append(errs, err)
			}
		}
		return errors.Join(errs...)
	}
	errs := make([]error, len(fns))
	var g Group
	for i := 1; i < len(fns); i++ {
		i, fn := i, fns[i]
		g.Spawn(p.Engine(), "par-io", func(c *Proc) {
			errs[i] = fn(c)
		})
	}
	errs[0] = fns[0](p)
	g.Wait(p)
	return errors.Join(errs...)
}
