// The collective plan: the deterministic description of one two-phase
// operation that every rank derives identically from the gathered
// request lists.
//
// All coordinates are global fs blocks — the pfs.FileGroup concatenation
// of the member files' block spaces. The plan holds four things:
//
//   - the per-rank segment lists (each rank's requests flattened into
//     sorted global-block segments),
//
//   - the union access footprint (the merged covered spans, with prefix
//     sums assigning every covered block a dense "covered index"),
//
//   - the file-domain split: the covered index space divided into naggs
//     contiguous domains of ⌈total/naggs⌉ blocks (the final domain is
//     ragged when the footprint does not divide evenly), and
//
//   - the domain→aggregator assignment (owner): by default domain a
//     belongs to rank a (round-robin rank order, the historical PR 3
//     behavior); with Options.Locality the domain is instead assigned to
//     the participating rank owning the largest share of its footprint
//     (ties to the lowest rank), so nearly-aligned access patterns keep
//     most bytes local and only the stragglers cross the interconnect.
//
// Because domains are contiguous in covered-index space, each
// aggregator's device accesses are as sequential as the footprint
// permits, and holes nobody asked for are never touched.

package collective

import (
	"fmt"
	"sort"

	"repro/internal/pfs"
)

// rseg is one rank segment in global coordinates: n blocks starting at
// global block gb, moving the rank-buffer bytes [bufOff, bufOff+n×bs).
type rseg struct {
	gb     int64
	n      int64
	bufOff int64
}

// span is a covered interval of the union footprint.
type span struct{ gb, n int64 }

// clip is the intersection of one rank segment with one aggregator
// domain: n blocks moving rank-buffer bytes at bufOff to/from
// domain-buffer bytes at domOff. Clips enumerate in the same canonical
// order on the rank and the aggregator side, which is what lets the
// exchange payloads be plain concatenations.
type clip struct {
	n      int64
	bufOff int64
	domOff int64
}

// plan is the shared description of one collective operation.
type plan struct {
	bs        int64
	naggs     int
	segs      [][]rseg  // per rank, sorted by gb
	covered   []span    // merged union footprint, sorted by gb
	cbase     []int64   // covered-index of covered[i].gb
	total     int64     // total covered blocks
	domBlocks int64     // blocks per domain (last one ragged)
	owner     []int     // domain index → aggregator rank
	shares    [][]int64 // shares[rank][domain]: exchange payload bytes
	// Chunking (Options.ChunkBytes): each domain is cut into
	// chunkBlocks-block chunks (the final chunk of a domain ragged), and
	// the collective runs as `rounds` pipelined exchange/access rounds —
	// round k moving chunk k of every domain at once. Zero chunkBlocks /
	// rounds selects the unchunked single-shot path.
	chunkBlocks int64
	rounds      int
	// Sparse participation indexes, derived from shares: domsOf[r] lists
	// the domains rank r's footprint touches and ranksIn[a] the ranks
	// touching domain a (both ascending). The exchange and staging loops
	// iterate these instead of scanning all ranks × all domains, so a
	// round's cost follows the communication pattern, not the group size.
	domsOf  [][]int32
	ranksIn [][]int32
	// Per-rank covered-index ranges of segs (cstart[r][i] = covered
	// index of segs[r][i].gb, cend its end) and the running maximum of
	// cend — precomputed once so window clipping can binary-search its
	// first candidate segment instead of rescanning the whole list per
	// chunk. maxEnd is monotone by construction even when a rank's read
	// segments overlap (cend alone need not be).
	cstart [][]int64
	cend   [][]int64
	maxEnd [][]int64
}

// buildPlan validates every rank's requests and computes the footprint,
// domain split and domain→aggregator assignment. write additionally
// rejects cross-rank overlaps, whose store order would be ambiguous —
// unless opts.LastWriterWins selects MPI-IO rank-order semantics.
func buildPlan(group *pfs.FileGroup, reqs [][]VecReq, bufs [][]byte, naggs int, write bool, opts Options) (*plan, error) {
	bs := int64(group.Store().BlockSize())
	pl := &plan{bs: bs, naggs: naggs, segs: make([][]rseg, len(reqs))}
	type owned struct {
		rseg
		rank int
	}
	var all []owned
	for r, rr := range reqs {
		bufLen := int64(len(bufs[r]))
		var segs []rseg
		for qi, q := range rr {
			if q.File < 0 || q.File >= group.Len() {
				return nil, fmt.Errorf("collective: rank %d request %d: file %d of %d", r, qi, q.File, group.Len())
			}
			fileBlocks := group.File(q.File).Mapper().TotalFSBlocks()
			off := group.Offset(q.File)
			for si, sg := range q.Vec {
				if sg.N < 0 || sg.Block < 0 || sg.Block+sg.N > fileBlocks {
					return nil, fmt.Errorf("collective: rank %d request %d segment %d: blocks [%d,%d) of %d-block file",
						r, qi, si, sg.Block, sg.Block+sg.N, fileBlocks)
				}
				if sg.N == 0 {
					continue
				}
				if sg.BufOff < 0 || sg.BufOff%bs != 0 {
					return nil, fmt.Errorf("collective: rank %d request %d segment %d: buffer offset %d not aligned to %d-byte blocks",
						r, qi, si, sg.BufOff, bs)
				}
				if sg.BufOff+sg.N*bs > bufLen {
					return nil, fmt.Errorf("collective: rank %d request %d segment %d: buffer bytes [%d,%d) exceed %d-byte buffer",
						r, qi, si, sg.BufOff, sg.BufOff+sg.N*bs, bufLen)
				}
				segs = append(segs, rseg{gb: off + sg.Block, n: sg.N, bufOff: sg.BufOff})
			}
		}
		sort.Slice(segs, func(i, j int) bool { return segs[i].gb < segs[j].gb })
		if write {
			// A rank naming a block twice in one write is ambiguous; a
			// read may fetch one block into several buffer slots.
			for i := 1; i < len(segs); i++ {
				if segs[i-1].gb+segs[i-1].n > segs[i].gb {
					return nil, fmt.Errorf("collective: rank %d requests overlap at global block %d", r, segs[i].gb)
				}
			}
		}
		byBuf := append([]rseg(nil), segs...)
		sort.Slice(byBuf, func(i, j int) bool { return byBuf[i].bufOff < byBuf[j].bufOff })
		for i := 1; i < len(byBuf); i++ {
			if byBuf[i-1].bufOff+byBuf[i-1].n*bs > byBuf[i].bufOff {
				return nil, fmt.Errorf("collective: rank %d requests overlap in the buffer at offset %d", r, byBuf[i].bufOff)
			}
		}
		pl.segs[r] = segs
		for _, sg := range segs {
			all = append(all, owned{rseg: sg, rank: r})
		}
	}

	sort.Slice(all, func(i, j int) bool { return all[i].gb < all[j].gb })
	for i, sg := range all {
		if i > 0 && all[i-1].gb+all[i-1].n > sg.gb {
			if write && !opts.LastWriterWins {
				return nil, fmt.Errorf("collective: ranks %d and %d write overlapping blocks at global block %d",
					all[i-1].rank, sg.rank, sg.gb)
			}
			// Reads may share blocks, and LastWriterWins resolves write
			// overlaps in rank order; the union merge below absorbs both.
		}
		if k := len(pl.covered) - 1; k >= 0 && pl.covered[k].gb+pl.covered[k].n >= sg.gb {
			if end := sg.gb + sg.n; end > pl.covered[k].gb+pl.covered[k].n {
				pl.covered[k].n = end - pl.covered[k].gb
			}
			continue
		}
		pl.covered = append(pl.covered, span{gb: sg.gb, n: sg.n})
	}
	pl.cbase = make([]int64, len(pl.covered))
	for i, sp := range pl.covered {
		pl.cbase[i] = pl.total
		pl.total += sp.n
	}
	if pl.total > 0 {
		pl.domBlocks = (pl.total + int64(naggs) - 1) / int64(naggs)
	}
	pl.cstart = make([][]int64, len(reqs))
	pl.cend = make([][]int64, len(reqs))
	pl.maxEnd = make([][]int64, len(reqs))
	for r, segs := range pl.segs {
		pl.cstart[r] = make([]int64, len(segs))
		pl.cend[r] = make([]int64, len(segs))
		pl.maxEnd[r] = make([]int64, len(segs))
		var max int64
		for i, sg := range segs {
			ci := pl.coveredIndex(sg.gb)
			pl.cstart[r][i] = ci
			pl.cend[r][i] = ci + sg.n
			if ci+sg.n > max {
				max = ci + sg.n
			}
			pl.maxEnd[r][i] = max
		}
	}
	// One pass over all segments fills the rank×domain share table
	// (equal to clipBytes at every cell) — it drives the locality
	// election, the exchange stats, and payload-buffer sizing without
	// rescanning segment lists per domain.
	pl.shares = make([][]int64, len(reqs))
	for r := range pl.shares {
		pl.shares[r] = make([]int64, naggs)
		if pl.domBlocks == 0 {
			continue
		}
		for _, sg := range pl.segs[r] {
			ci := pl.coveredIndex(sg.gb)
			for a := ci / pl.domBlocks; a <= (ci+sg.n-1)/pl.domBlocks; a++ {
				lo, hi := a*pl.domBlocks, (a+1)*pl.domBlocks
				if lo < ci {
					lo = ci
				}
				if hi > ci+sg.n {
					hi = ci + sg.n
				}
				pl.shares[r][a] += (hi - lo) * pl.bs
			}
		}
	}
	pl.domsOf = make([][]int32, len(reqs))
	pl.ranksIn = make([][]int32, naggs)
	for r := range pl.shares {
		for a, b := range pl.shares[r] {
			if b > 0 {
				pl.domsOf[r] = append(pl.domsOf[r], int32(a))
				pl.ranksIn[a] = append(pl.ranksIn[a], int32(r))
			}
		}
	}
	if opts.ChunkBytes > 0 && pl.total > 0 {
		// A chunk is ChunkBytes worth of whole blocks — at least one (a
		// sub-block ChunkBytes degenerates to single-block chunks) and at
		// most a whole domain (a chunk larger than the domain degenerates
		// to one round, the pipelined code path with nothing to overlap).
		cb := opts.ChunkBytes / bs
		if cb < 1 {
			cb = 1
		}
		if cb > pl.domBlocks {
			cb = pl.domBlocks
		}
		pl.chunkBlocks = cb
		pl.rounds = int((pl.domBlocks + cb - 1) / cb)
	}
	pl.owner = make([]int, naggs)
	for a := range pl.owner {
		pl.owner[a] = a // round-robin rank order, the bit-identical default
	}
	if opts.Locality {
		for a := range pl.owner {
			// The rank with the largest byte share of the domain
			// aggregates it; strict > keeps the lowest rank on ties. A
			// nonempty domain always has a participating rank (domains
			// tile the covered footprint, and every covered block was
			// requested by someone), so best stays the round-robin rank
			// only for empty (past-the-footprint) domains.
			bestBytes := int64(0)
			for r := range reqs {
				if b := pl.shares[r][a]; b > bestBytes {
					pl.owner[a], bestBytes = r, b
				}
			}
		}
	}
	return pl, nil
}

// exchangeStats totals the exchange-phase payload bytes by destination:
// a rank's pieces for a domain it aggregates itself are a local copy
// (self-message, free under both link models); everything else crosses
// the interconnect.
func (pl *plan) exchangeStats(nranks int) (st ExchangeStats) {
	for a := 0; a < pl.naggs; a++ {
		for r := 0; r < nranks; r++ {
			b := pl.shares[r][a]
			if r == pl.owner[a] {
				st.BytesLocal += b
			} else {
				st.BytesMoved += b
			}
		}
	}
	return st
}

// coveredIndex maps a covered global block to its dense covered index.
// gb must lie in the footprint (every validated segment does).
func (pl *plan) coveredIndex(gb int64) int64 {
	i := sort.Search(len(pl.covered), func(i int) bool { return pl.covered[i].gb+pl.covered[i].n > gb })
	return pl.cbase[i] + gb - pl.covered[i].gb
}

// domain reports aggregator a's covered-index range [lo, hi); empty when
// the footprint runs out before domain a.
func (pl *plan) domain(a int) (lo, hi int64) {
	lo = int64(a) * pl.domBlocks
	hi = lo + pl.domBlocks
	if lo > pl.total {
		lo = pl.total
	}
	if hi > pl.total {
		hi = pl.total
	}
	return lo, hi
}

// forEachClip enumerates rank's segments clipped to aggregator agg's
// domain, in ascending global-block order — the canonical payload order
// of the exchange phase.
func (pl *plan) forEachClip(rank, agg int, fn func(c clip)) {
	lo, hi := pl.domain(agg)
	pl.forEachClipWin(rank, lo, hi, fn)
}

// forEachClipWin is forEachClip over an arbitrary covered-index window
// [lo, hi) — a whole domain, or one chunk of one (chunkWindow). domOff
// is relative to the window start, so chunk clips address chunk-sized
// staging buffers directly. A segment is always contained in one
// covered span, so its covered indexes are consecutive and each segment
// yields at most one clip per window. The precomputed covered ranges
// bound the scan to the intersecting segments (O(log S + clips)), which
// is what keeps the pipelined path affordable when tiny chunks make the
// window count large.
func (pl *plan) forEachClipWin(rank int, lo, hi int64, fn func(c clip)) {
	if lo >= hi {
		return
	}
	segs := pl.segs[rank]
	maxEnd := pl.maxEnd[rank]
	// First segment that can reach the window: maxEnd is monotone, so
	// everything before this index ends at or before lo.
	i := sort.Search(len(segs), func(i int) bool { return maxEnd[i] > lo })
	for ; i < len(segs); i++ {
		cLo, cHi := pl.cstart[rank][i], pl.cend[rank][i]
		if cLo >= hi {
			break // cstart ascends: nothing later intersects either
		}
		ci := cLo
		if cLo < lo {
			cLo = lo
		}
		if cHi > hi {
			cHi = hi
		}
		if cLo >= cHi {
			continue
		}
		fn(clip{
			n:      cHi - cLo,
			bufOff: segs[i].bufOff + (cLo-ci)*pl.bs,
			domOff: (cLo - lo) * pl.bs,
		})
	}
}

// chunkWindow reports chunk c of aggregator a's domain as a
// covered-index range; empty once the domain runs out (ragged domains
// have fewer nonempty chunks than plan.rounds).
func (pl *plan) chunkWindow(a, c int) (lo, hi int64) {
	dlo, dhi := pl.domain(a)
	lo = dlo + int64(c)*pl.chunkBlocks
	hi = lo + pl.chunkBlocks
	if lo > dhi {
		lo = dhi
	}
	if hi > dhi {
		hi = dhi
	}
	return lo, hi
}

// clipBytes reports the exchange payload size between rank and agg by
// enumerating clips — the reference implementation of shares[rank][agg],
// kept for the fuzz target's independent cross-check.
func (pl *plan) clipBytes(rank, agg int) int64 {
	var n int64
	pl.forEachClip(rank, agg, func(c clip) { n += c.n })
	return n * pl.bs
}

// forEachDomainSpan enumerates aggregator a's domain as (global block,
// length, domain-buffer offset) pieces — the covered spans clipped to
// the domain, ascending.
func (pl *plan) forEachDomainSpan(a int, fn func(gb, n, domOff int64)) {
	lo, hi := pl.domain(a)
	pl.forEachSpanWin(lo, hi, fn)
}

// forEachSpanWin is forEachDomainSpan over an arbitrary covered-index
// window, with offsets relative to the window start.
func (pl *plan) forEachSpanWin(lo, hi int64, fn func(gb, n, domOff int64)) {
	if lo >= hi {
		return
	}
	i := sort.Search(len(pl.covered), func(i int) bool { return pl.cbase[i]+pl.covered[i].n > lo })
	for ; i < len(pl.covered) && pl.cbase[i] < hi; i++ {
		sp, cb := pl.covered[i], pl.cbase[i]
		cLo, cHi := cb, cb+sp.n
		if cLo < lo {
			cLo = lo
		}
		if cHi > hi {
			cHi = hi
		}
		if cLo >= cHi {
			continue
		}
		fn(sp.gb+(cLo-cb), cHi-cLo, (cLo-lo)*pl.bs)
	}
}
