// Route selection: the collective half of the stack's self-tuning.
//
// Two-phase exchange is the right call when the interconnect is cheap
// relative to device requests — the package's founding trade. But
// "Noncontiguous I/O through PVFS" (PAPERS.md) shows the trade invert:
// when each rank's footprint is dense on few devices and the link is
// slow or contended, shipping every byte through aggregators costs more
// than letting ranks access the store directly, vectored or sieved.
// Options.Strategy exposes the choice; StrategyAuto prices the three
// routes per call from the plan, the store's drive parameters
// (blockio.StoreCostModel) and the group's link model
// (mpp.Group.LinkModel), and picks the cheapest.
//
// Whatever the route, the semantics are the plan's: validation and
// cross-rank overlap rejection happen in buildPlan before any route is
// chosen (identical errors on every route), and LastWriterWins is
// honored on independent routes by clipping each rank's write segments
// against every higher rank's footprint — block-disjoint independent
// writes whose final image equals the rank-ordered two-phase assembly.

package collective

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/blockio"
	"repro/internal/mpp"
	"repro/internal/probe"
)

// route is the access path one collective call executes.
type route int

const (
	routeTwoPhase route = iota // exchange + aggregator batches
	routeVectored              // independent per-rank Set.ReadVec/WriteVec
	routeSieved                // independent per-rank sieved transfers
)

func (r route) String() string {
	switch r {
	case routeVectored:
		return "vectored"
	case routeSieved:
		return "sieved"
	default:
		return "two-phase"
	}
}

// LastRoute reports which route the most recent successfully planned
// blocking call took ("two-phase", "vectored", "sieved") — observability
// for sweeps and tests. Valid under the same rules as LastStats.
func (c *Collective) LastRoute() string { return c.route.String() }

// chooseRoute resolves Options.Strategy for one call. Rank 0 runs it
// after buildPlan succeeds; it is a pure function of the plan, the
// gathered requests and the modeled machine, so the choice is
// deterministic.
func (c *Collective) chooseRoute(p *mpp.Proc, pl *plan, write bool) route {
	switch c.opts.Strategy {
	case blockio.StrategyVectored:
		return routeVectored
	case blockio.StrategySieved:
		return routeSieved
	case blockio.StrategyAuto:
	default:
		// StrategyDefault and StrategyCollective: the historical path.
		return routeTwoPhase
	}
	m := blockio.StoreCostModel(c.group.Store(), c.size)
	m.LinkMsg, m.LinkBytesPerSec, m.BisectionBytesPerSec = p.LinkModel()
	indVec, indSieve, ok := c.independentCosts(m, write)
	if !ok {
		// Some request list is not a valid independent Set descriptor
		// (e.g. one rank reading a block into two buffer slots): only
		// the exchange can serve it.
		return routeTwoPhase
	}
	two := c.twoPhaseCost(m, pl)
	if two <= indVec && two <= indSieve {
		return routeTwoPhase // ties to the historical path
	}
	if indVec <= indSieve {
		return routeVectored
	}
	return routeSieved
}

// independentCosts prices the independent routes: every rank's requests
// mapped onto the store's devices (blockio.SieveSpans yields both the
// vectored gather runs and the sieved covering span per device), request
// and byte costs accumulated per device — concurrent ranks serialize at
// the device queues — and the slowest device bounding the call.
func (c *Collective) independentCosts(m blockio.CostModel, write bool) (vec, sieve time.Duration, ok bool) {
	bs := c.bs
	nd := c.group.Store().Devices()
	vecDev := make([]time.Duration, nd)
	sieveDev := make([]time.Duration, nd)
	for _, rr := range c.reqs {
		for _, q := range rr {
			spans, err := c.group.File(q.File).Set().SieveSpans(q.Vec)
			if err != nil {
				return 0, 0, false
			}
			for _, sp := range spans {
				for _, run := range sp.Runs {
					vecDev[sp.Dev] += m.ReqFixed + m.Xfer(run.N*bs)
				}
				d := m.ReqFixed + m.Xfer(sp.Blocks*bs)
				if write && sp.Useful < sp.Blocks {
					d *= 2 // read-modify-write moves the span twice
				}
				sieveDev[sp.Dev] += d
			}
		}
	}
	for i := 0; i < nd; i++ {
		if vecDev[i] > vec {
			vec = vecDev[i]
		}
		if sieveDev[i] > sieve {
			sieve = sieveDev[i]
		}
	}
	return vec, sieve, true
}

// twoPhaseCost prices the exchange route: the link phase from the plan's
// share table under the group's link model, plus the access phase from
// the union footprint — two-phase coalesces across ranks, so its device
// requests are the union's physically contiguous gather runs (NOT any
// single rank's view, and NOT one request per device: a union that still
// has holes stays fragmented however it is aggregated), plus roughly one
// extra request per nonempty domain for runs the domain split severs. An
// estimate, not a replay — good enough to rank routes.
func (c *Collective) twoPhaseCost(m blockio.CostModel, pl *plan) time.Duration {
	// Exchange: per-rank injected+delivered bytes ride each rank's link
	// in parallel; cross-cut bytes also drain the shared bisection pool.
	var linkMax, msgMax time.Duration
	var cross int64
	for r := 0; r < c.size; r++ {
		var bytes int64
		var msgs int
		for _, a32 := range pl.domsOf[r] {
			if o := pl.owner[int(a32)]; o != r {
				bytes += pl.shares[r][int(a32)]
				msgs++
			}
		}
		cross += bytes
		for a := 0; a < pl.naggs; a++ {
			if pl.owner[a] != r {
				continue
			}
			for _, r32 := range pl.ranksIn[a] {
				if int(r32) != r {
					bytes += pl.shares[int(r32)][a]
					msgs++
				}
			}
		}
		var lt time.Duration
		if m.LinkBytesPerSec > 0 {
			lt = time.Duration(float64(bytes) / m.LinkBytesPerSec * float64(time.Second))
		}
		if lt > linkMax {
			linkMax = lt
		}
		if mt := time.Duration(msgs) * m.LinkMsg; mt > msgMax {
			msgMax = mt
		}
	}
	exch := linkMax + msgMax
	if m.BisectionBytesPerSec > 0 {
		if bt := time.Duration(float64(cross) / m.BisectionBytesPerSec * float64(time.Second)); bt > exch {
			exch = bt
		}
	}
	// Access: split the union footprint's covered spans at file
	// boundaries, map each file's slice to its device gather runs, and
	// charge request + transfer per run, devices in parallel.
	nd := c.group.Store().Devices()
	devCost := make([]time.Duration, nd)
	perFile := make([]blockio.Vec, c.group.Len())
	var off int64
	for _, sp := range pl.covered {
		for gb, n := sp.gb, sp.n; n > 0; {
			f, blk, err := c.group.Locate(gb)
			if err != nil {
				break // covered spans are always locatable
			}
			take := n
			if rem := c.group.Offset(f+1) - gb; take > rem {
				take = rem
			}
			perFile[f] = append(perFile[f], blockio.VecSeg{Block: blk, N: take, BufOff: off})
			off += take * pl.bs
			gb, n = gb+take, n-take
		}
	}
	for f, vec := range perFile {
		if len(vec) == 0 {
			continue
		}
		spans, err := c.group.File(f).Set().SieveSpans(vec)
		if err != nil {
			continue // union descriptors are always valid
		}
		for _, sp := range spans {
			for _, run := range sp.Runs {
				devCost[sp.Dev] += m.ReqFixed + m.Xfer(run.N*pl.bs)
			}
		}
	}
	var access time.Duration
	for _, d := range devCost {
		if d > access {
			access = d
		}
	}
	for a := 0; a < pl.naggs; a++ {
		if lo, hi := pl.domain(a); hi > lo {
			access += m.ReqFixed // domain split severing a run
		}
	}
	return exch + access
}

// runIndependent executes one collective call as independent per-rank
// Set transfers — no exchange, every rank moving its own requests
// straight to the store, sieved or vectored. Concurrent sieved writers
// are safe under the Sets' per-device sieve locks; vectored writers are
// block-disjoint by plan validation (after LastWriterWins clipping).
func (c *Collective) runIndependent(p *mpp.Proc, sd *schedule, write, sieved bool) {
	rank := p.Rank()
	buf := c.bufs[rank]
	reqs := c.reqs[rank]
	if write && c.opts.LastWriterWins {
		reqs = sd.lwwReqs(c, rank)
	}
	rec, _, prefix := p.Probe()
	var ioTrk probe.TrackID
	if rec != nil && len(reqs) > 0 {
		ioTrk = rec.Track(fmt.Sprintf("%s/%d/io", prefix, rank))
	}
	var errs []error
	t0 := p.Now()
	for _, q := range reqs {
		set := c.group.File(q.File).Set()
		var err error
		switch {
		case sieved && write:
			err = set.WriteVecSieved(p.Proc, q.Vec, buf)
		case sieved:
			err = set.ReadVecSieved(p.Proc, q.Vec, buf)
		case write:
			err = set.WriteVec(p.Proc, q.Vec, buf)
		default:
			err = set.ReadVec(p.Proc, q.Vec, buf)
		}
		if err != nil {
			errs = append(errs, err)
		}
	}
	if len(reqs) > 0 {
		c.ioIv = append(c.ioIv, iv{t0, p.Now()})
		rec.Span(ioTrk, "collective", "independent", t0, p.Now(), 0, 0)
	}
	c.errs[rank] = errors.Join(errs...)
}

// clipLWW rebuilds rank's write requests with every block claimed by a
// higher rank removed: since higher ranks land their own bytes on those
// blocks, the surviving writes are block-disjoint across ranks and the
// final image equals the two-phase path's rank-ordered assembly,
// whatever order the engine schedules the independent writers in.
func (c *Collective) clipLWW(pl *plan, rank int) []VecReq {
	// Merge the higher ranks' footprints into sorted disjoint spans.
	var higher []span
	for r := rank + 1; r < len(pl.segs); r++ {
		for _, sg := range pl.segs[r] {
			higher = append(higher, span{gb: sg.gb, n: sg.n})
		}
	}
	if len(higher) == 0 {
		return c.reqs[rank]
	}
	sortSpans(higher)
	merged := higher[:0]
	for _, sp := range higher {
		if k := len(merged) - 1; k >= 0 && merged[k].gb+merged[k].n >= sp.gb {
			if end := sp.gb + sp.n; end > merged[k].gb+merged[k].n {
				merged[k].n = end - merged[k].gb
			}
			continue
		}
		merged = append(merged, sp)
	}
	// Subtract the merged spans from each of rank's segments, converting
	// the survivors back to file-local descriptors (a segment never
	// crosses a file boundary, so one Locate per piece suffices).
	byFile := make([]blockio.Vec, c.group.Len())
	emit := func(gb, n, bufOff int64) {
		file, blk, err := c.group.Locate(gb)
		if err != nil {
			return // validated segments are always locatable
		}
		byFile[file] = append(byFile[file], blockio.VecSeg{Block: blk, N: n, BufOff: bufOff})
	}
	for _, sg := range pl.segs[rank] {
		lo, end := sg.gb, sg.gb+sg.n
		for _, sp := range merged {
			if sp.gb+sp.n <= lo {
				continue
			}
			if sp.gb >= end {
				break
			}
			if sp.gb > lo {
				emit(lo, sp.gb-lo, sg.bufOff+(lo-sg.gb)*pl.bs)
			}
			if lo = sp.gb + sp.n; lo >= end {
				break
			}
		}
		if lo < end {
			emit(lo, end-lo, sg.bufOff+(lo-sg.gb)*pl.bs)
		}
	}
	var out []VecReq
	for f, vec := range byFile {
		if len(vec) > 0 {
			out = append(out, VecReq{File: f, Vec: vec})
		}
	}
	return out
}

// sortSpans sorts spans by start block (insertion sort: the lists are
// per-call request footprints, already mostly ordered).
func sortSpans(s []span) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j].gb < s[j-1].gb; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
