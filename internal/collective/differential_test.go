// Randomized differential test harness: seeded workload generators
// drive collective, vectored and extent writes and reads across the
// full store-kind × layout matrix, and every scenario's final byte
// image — plus every mid-run read buffer — is checked against a simple
// serial reference model (a flat byte array updated phase by phase).
//
// The reference model is deliberately dumb: it knows nothing about
// domains, aggregators, exchange payloads, coalescing or redundancy, so
// any divergence localizes a bug in the optimized data path. Failures
// print the scenario seed; replay with
//
//	go test -run 'TestDifferential/seed=N' ./internal/collective
package collective

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"
	"time"

	"repro/internal/blockio"
	"repro/internal/mpp"
	"repro/internal/pfs"
	"repro/internal/sim"
)

// diffContent is the deterministic byte written at offset i of global
// block gb by rank in phase — the generator fills buffers with it and
// the reference model records it, so matching is exact.
func diffContent(seed int64, phase, rank int, gb, i int64) byte {
	return byte(seed*131 + int64(phase)*31 + int64(rank)*17 + gb*7 + i*3 + 1)
}

// Phase kinds. Collective phases go through the two-phase engine —
// single-shot, or pipelined through a chunked handle (the scenario's
// randomized ChunkBytes, including single-block chunks and chunks
// larger than any domain) — while vectored and extent phases go through
// the independent per-rank paths, so the harness cross-checks every
// generation of the data path against one reference.
const (
	diffCollectiveWrite = iota
	diffCollectiveRead
	diffPipelinedWrite
	diffPipelinedRead
	diffVectoredWrite
	diffExtentWrite
	diffExtentRead
	// Sieved phases hit the data-sieving paths directly (independent
	// per-rank WriteVecSieved/ReadVecSieved — the read-modify-write and
	// covering-span scatter against the same reference as everything
	// else); auto phases go through a collective handle with
	// Strategy: Auto, so whichever route its cost model picks for the
	// scenario's machine must produce reference-identical bytes.
	diffSievedWrite
	diffSievedRead
	diffAutoWrite
	diffAutoRead
	// Replay phases exercise the schedule cache (PR 10): the same
	// request lists issued several consecutive iterations with mutated
	// buffer contents through a cache-enabled handle — iterations 2+
	// replay the captured schedule — then cross-checked by re-issuing
	// through a fresh-plan (cache-disabled) handle against the same
	// reference.
	diffReplayWrite
	diffReplayRead
	diffKinds
)

var diffKindNames = [...]string{"cwrite", "cread", "pwrite", "pread", "vwrite", "ewrite", "eread",
	"swrite", "sread", "awrite", "aread", "rwrite", "rread"}

// diffReplayReps is how many consecutive iterations a replay phase
// issues its request lists (first plans, the rest replay).
const diffReplayReps = 3

// diffReplayKey spreads a replay iteration's content key away from the
// plain phase indexes (< nPhases ≤ 6), so no two writes collide.
func diffReplayKey(ph, it int) int { return 100 + ph*diffReplayReps + it }

// diffPhase is one precomputed phase: per-rank request lists and
// buffers (pre-filled for writes, pre-sized with expected images for
// reads). Everything is generated up front from the seed; execution
// only moves bytes.
type diffPhase struct {
	kind   int
	reqs   [][]VecReq
	bufs   [][]byte
	expect [][]byte   // read kinds: wanted buffer contents after the phase
	iters  [][][]byte // replay write: per-iteration per-rank buffers
}

// diffScenario is one generated workload plus its reference image.
type diffScenario struct {
	seed       int64
	kind       storeKind
	place      int
	nRanks     int
	opts       Options
	chunkBytes int64 // pipelined phases' ChunkBytes
	linkMode   int   // 0 free, 1 per-process, 2 per-process + bisection
	geom       *fileGroupInfo
	phases     []diffPhase
	ref        []byte // expected final image of the whole group
}

// rankSegments converts a per-block writer assignment into each rank's
// VecReqs: consecutive blocks owned by the same rank coalesce into
// segments, segments split at file boundaries, and buffer offsets are
// assigned in shuffled segment order so logical order and buffer order
// differ. Returns the reqs and each rank's (unfilled) buffer.
func rankSegments(rng *rand.Rand, g *fileGroupInfo, owners [][]int, nRanks int) ([][]VecReq, [][]byte) {
	type seg struct{ gb, n int64 }
	perRank := make([][]seg, nRanks)
	for r := 0; r < nRanks; r++ {
		var cur *seg
		for gb := int64(0); gb < g.total; gb++ {
			mine := false
			for _, w := range owners[gb] {
				if w == r {
					mine = true
				}
			}
			// Segments must not straddle file boundaries (VecReqs are
			// per-file), so force a break on each file's first block.
			if mine && cur != nil && cur.gb+cur.n == gb && !g.isFileStart(gb) {
				cur.n++
				continue
			}
			cur = nil
			if mine {
				perRank[r] = append(perRank[r], seg{gb: gb, n: 1})
				cur = &perRank[r][len(perRank[r])-1]
			}
		}
	}
	reqs := make([][]VecReq, nRanks)
	bufs := make([][]byte, nRanks)
	for r := 0; r < nRanks; r++ {
		segs := perRank[r]
		order := rng.Perm(len(segs))
		offs := make([]int64, len(segs))
		var off int64
		for _, si := range order {
			offs[si] = off
			off += segs[si].n * testBS
		}
		bufs[r] = make([]byte, off)
		byFile := make(map[int]blockio.Vec)
		for si, sg := range segs {
			file, blk := g.locate(sg.gb)
			byFile[file] = append(byFile[file], blockio.VecSeg{Block: blk, N: sg.n, BufOff: offs[si]})
		}
		for f := 0; f < g.nFiles; f++ {
			if v := byFile[f]; len(v) > 0 {
				reqs[r] = append(reqs[r], VecReq{File: f, Vec: v})
			}
		}
	}
	return reqs, bufs
}

// fileGroupInfo carries just the geometry the generator needs, so
// generation never touches simulator state.
type fileGroupInfo struct {
	nFiles int
	sizes  []int64
	offs   []int64
	total  int64
}

func (g *fileGroupInfo) locate(gb int64) (file int, block int64) {
	for f := g.nFiles - 1; f >= 0; f-- {
		if gb >= g.offs[f] {
			return f, gb - g.offs[f]
		}
	}
	return 0, gb
}

func (g *fileGroupInfo) isFileStart(gb int64) bool {
	for _, off := range g.offs {
		if gb == off {
			return true
		}
	}
	return false
}

// genScenario derives a full scenario from its seed: machine shape,
// collective options, and a phase list whose effects are folded into
// the serial reference image as they are generated.
func genScenario(seed int64) *diffScenario {
	rng := rand.New(rand.NewSource(seed))
	sc := &diffScenario{
		seed:   seed,
		kind:   storeKind(seed % 3), // seeds 0..8 sweep the 3×3 matrix
		place:  int(seed/3) % 3,
		nRanks: 2 + rng.Intn(7),
	}
	sc.opts = Options{
		Aggregators:    rng.Intn(7), // 0 = default (device count)
		Locality:       rng.Intn(2) == 1,
		LastWriterWins: rng.Intn(2) == 1,
	}
	// Chunk sizes for the pipelined phases: sub-block (degenerates to
	// single-block chunks), tiny, odd multi-block, and far larger than
	// any domain (degenerates to one round).
	sc.chunkBytes = []int64{1, testBS, 2*testBS + 7, 5 * testBS, 1 << 20}[rng.Intn(5)]
	sc.linkMode = rng.Intn(3)
	g := &fileGroupInfo{nFiles: 1 + rng.Intn(3)}
	for f := 0; f < g.nFiles; f++ {
		g.offs = append(g.offs, g.total)
		size := int64(8 + rng.Intn(40))
		g.sizes = append(g.sizes, size)
		g.total += size
	}
	sc.geom = g
	sc.ref = make([]byte, g.total*testBS)

	nPhases := 3 + rng.Intn(3)
	for ph := 0; ph < nPhases; ph++ {
		kind := rng.Intn(diffKinds)
		if ph == 0 {
			kind = diffPipelinedWrite // every scenario exercises the tentpole path
		}
		switch kind {
		case diffCollectiveWrite, diffPipelinedWrite, diffVectoredWrite, diffSievedWrite, diffAutoWrite:
			sc.genAssignedWrite(rng, g, ph, kind)
		case diffCollectiveRead, diffPipelinedRead, diffSievedRead, diffAutoRead:
			sc.genCollectiveRead(rng, g, ph, kind)
		case diffExtentWrite:
			sc.genExtentWrite(rng, g, ph)
		case diffExtentRead:
			sc.genExtentRead(rng, g, ph)
		case diffReplayWrite:
			sc.genReplayWrite(rng, g, ph)
		case diffReplayRead:
			sc.genCollectiveRead(rng, g, ph, kind)
		}
	}
	return sc
}

// genAssignedWrite generates a per-block writer assignment (cross-rank
// overlaps only for collective writes under LastWriterWins), fills the
// buffers, and applies rank-order-wins to the reference image.
func (sc *diffScenario) genAssignedWrite(rng *rand.Rand, g *fileGroupInfo, ph, kind int) {
	// Raw vectored/sieved Set writes have no overlap resolution, so only
	// the collective kinds — including Auto, which must honor
	// LastWriterWins on whatever route it picks — generate overlaps.
	overlaps := (kind == diffCollectiveWrite || kind == diffPipelinedWrite || kind == diffAutoWrite) &&
		sc.opts.LastWriterWins
	density := 0.2 + 0.6*rng.Float64()
	owners := make([][]int, g.total)
	for gb := int64(0); gb < g.total; gb++ {
		if rng.Float64() >= density {
			continue
		}
		r := rng.Intn(sc.nRanks)
		owners[gb] = []int{r}
		if overlaps && rng.Float64() < 0.25 {
			if r2 := rng.Intn(sc.nRanks); r2 != r {
				owners[gb] = append(owners[gb], r2)
			}
		}
	}
	reqs, bufs := rankSegments(rng, g, owners, sc.nRanks)
	for r := range reqs {
		for _, q := range reqs[r] {
			for _, sg := range q.Vec {
				gb0 := g.offs[q.File] + sg.Block
				for b := int64(0); b < sg.N; b++ {
					for i := int64(0); i < testBS; i++ {
						bufs[r][sg.BufOff+b*testBS+i] = diffContent(sc.seed, ph, r, gb0+b, i)
					}
				}
			}
		}
	}
	for gb := int64(0); gb < g.total; gb++ {
		if len(owners[gb]) == 0 {
			continue
		}
		winner := owners[gb][0] // last writer in rank order wins
		for _, w := range owners[gb] {
			if w > winner {
				winner = w
			}
		}
		for i := int64(0); i < testBS; i++ {
			sc.ref[gb*testBS+i] = diffContent(sc.seed, ph, winner, gb, i)
		}
	}
	sc.phases = append(sc.phases, diffPhase{kind: kind, reqs: reqs, bufs: bufs})
}

// genReplayWrite generates one assigned-write footprint that is issued
// diffReplayReps consecutive iterations with different contents — the
// schedule-cache shape. Cross-rank overlaps appear under LastWriterWins
// exactly as for the plain collective write. The reference holds the
// final iteration's (winner's) bytes.
func (sc *diffScenario) genReplayWrite(rng *rand.Rand, g *fileGroupInfo, ph int) {
	overlaps := sc.opts.LastWriterWins
	density := 0.2 + 0.6*rng.Float64()
	owners := make([][]int, g.total)
	for gb := int64(0); gb < g.total; gb++ {
		if rng.Float64() >= density {
			continue
		}
		r := rng.Intn(sc.nRanks)
		owners[gb] = []int{r}
		if overlaps && rng.Float64() < 0.25 {
			if r2 := rng.Intn(sc.nRanks); r2 != r {
				owners[gb] = append(owners[gb], r2)
			}
		}
	}
	reqs, bufs := rankSegments(rng, g, owners, sc.nRanks)
	iters := make([][][]byte, diffReplayReps)
	for it := range iters {
		iters[it] = make([][]byte, sc.nRanks)
		for r := range reqs {
			iters[it][r] = make([]byte, len(bufs[r]))
			for _, q := range reqs[r] {
				for _, sg := range q.Vec {
					gb0 := g.offs[q.File] + sg.Block
					for b := int64(0); b < sg.N; b++ {
						for i := int64(0); i < testBS; i++ {
							iters[it][r][sg.BufOff+b*testBS+i] = diffContent(sc.seed, diffReplayKey(ph, it), r, gb0+b, i)
						}
					}
				}
			}
		}
	}
	for gb := int64(0); gb < g.total; gb++ {
		if len(owners[gb]) == 0 {
			continue
		}
		winner := owners[gb][0]
		for _, w := range owners[gb] {
			if w > winner {
				winner = w
			}
		}
		for i := int64(0); i < testBS; i++ {
			sc.ref[gb*testBS+i] = diffContent(sc.seed, diffReplayKey(ph, diffReplayReps-1), winner, gb, i)
		}
	}
	sc.phases = append(sc.phases, diffPhase{kind: diffReplayWrite, reqs: reqs, bufs: bufs, iters: iters})
}

// genCollectiveRead generates per-rank read requests — cross-rank and
// even same-rank block overlaps are legal for reads — and snapshots the
// expected buffers from the current reference image. kind selects the
// single-shot or the pipelined handle.
func (sc *diffScenario) genCollectiveRead(rng *rand.Rand, g *fileGroupInfo, ph, kind int) {
	reqs := make([][]VecReq, sc.nRanks)
	bufs := make([][]byte, sc.nRanks)
	expect := make([][]byte, sc.nRanks)
	for r := 0; r < sc.nRanks; r++ {
		nSegs := rng.Intn(4)
		var off int64
		for s := 0; s < nSegs; s++ {
			f := rng.Intn(g.nFiles)
			blk := rng.Int63n(g.sizes[f])
			n := 1 + rng.Int63n(4)
			if blk+n > g.sizes[f] {
				n = g.sizes[f] - blk
			}
			reqs[r] = append(reqs[r], VecReq{File: f, Vec: blockio.Vec{{Block: blk, N: n, BufOff: off}}})
			off += n * testBS
		}
		bufs[r] = make([]byte, off)
		expect[r] = make([]byte, off)
		for _, q := range reqs[r] {
			for _, sg := range q.Vec {
				gb0 := (g.offs[q.File] + sg.Block) * testBS
				copy(expect[r][sg.BufOff:sg.BufOff+sg.N*testBS], sc.ref[gb0:gb0+sg.N*testBS])
			}
		}
	}
	sc.phases = append(sc.phases, diffPhase{kind: kind, reqs: reqs, bufs: bufs, expect: expect})
}

// genExtentWrite gives each rank one contiguous, cross-rank-disjoint
// range inside one file (WriteRange's shape), with per-file cursors
// guaranteeing disjointness.
func (sc *diffScenario) genExtentWrite(rng *rand.Rand, g *fileGroupInfo, ph int) {
	reqs := make([][]VecReq, sc.nRanks)
	bufs := make([][]byte, sc.nRanks)
	cursor := make([]int64, g.nFiles)
	for r := 0; r < sc.nRanks; r++ {
		f := rng.Intn(g.nFiles)
		n := 1 + rng.Int63n(6)
		if cursor[f]+n > g.sizes[f] {
			continue // file exhausted; rank sits this phase out
		}
		blk := cursor[f]
		cursor[f] += n + rng.Int63n(3) // gap keeps ranges disjoint
		reqs[r] = []VecReq{{File: f, Vec: blockio.Vec{{Block: blk, N: n, BufOff: 0}}}}
		bufs[r] = make([]byte, n*testBS)
		gb0 := g.offs[f] + blk
		for b := int64(0); b < n; b++ {
			for i := int64(0); i < testBS; i++ {
				v := diffContent(sc.seed, ph, r, gb0+b, i)
				bufs[r][b*testBS+i] = v
				sc.ref[(gb0+b)*testBS+i] = v
			}
		}
	}
	sc.phases = append(sc.phases, diffPhase{kind: diffExtentWrite, reqs: reqs, bufs: bufs})
}

// genExtentRead gives each rank one contiguous in-file range to read
// back through ReadRange, expected from the current reference image.
func (sc *diffScenario) genExtentRead(rng *rand.Rand, g *fileGroupInfo, ph int) {
	reqs := make([][]VecReq, sc.nRanks)
	bufs := make([][]byte, sc.nRanks)
	expect := make([][]byte, sc.nRanks)
	for r := 0; r < sc.nRanks; r++ {
		f := rng.Intn(g.nFiles)
		blk := rng.Int63n(g.sizes[f])
		n := 1 + rng.Int63n(6)
		if blk+n > g.sizes[f] {
			n = g.sizes[f] - blk
		}
		reqs[r] = []VecReq{{File: f, Vec: blockio.Vec{{Block: blk, N: n, BufOff: 0}}}}
		bufs[r] = make([]byte, n*testBS)
		gb0 := (g.offs[f] + blk) * testBS
		expect[r] = append([]byte(nil), sc.ref[gb0:gb0+n*testBS]...)
	}
	sc.phases = append(sc.phases, diffPhase{kind: diffExtentRead, reqs: reqs, bufs: bufs, expect: expect})
}

// run executes the scenario on a fresh simulated machine and diffs
// every read buffer and the final image against the reference model.
func (sc *diffScenario) run(t *testing.T) {
	e := sim.NewEngine()
	store, _ := newTestStore(t, e, sc.kind)
	vol := pfs.NewVolume(store)
	names := make([]string, sc.geom.nFiles)
	for f := 0; f < sc.geom.nFiles; f++ {
		names[f] = fmt.Sprintf("f%d", f)
		if _, err := vol.Create(testPlacements[sc.place].spec(names[f], sc.geom.sizes[f])); err != nil {
			t.Fatalf("seed %d: %v", sc.seed, err)
		}
	}
	g, err := vol.OpenGroup(names...)
	if err != nil {
		t.Fatalf("seed %d: %v", sc.seed, err)
	}
	col, err := Open(g, sc.nRanks, sc.opts)
	if err != nil {
		t.Fatalf("seed %d: %v", sc.seed, err)
	}
	popts := sc.opts
	popts.ChunkBytes = sc.chunkBytes
	piped, err := Open(g, sc.nRanks, popts)
	if err != nil {
		t.Fatalf("seed %d: %v", sc.seed, err)
	}
	aopts := sc.opts
	aopts.Strategy = blockio.StrategyAuto
	auto, err := Open(g, sc.nRanks, aopts)
	if err != nil {
		t.Fatalf("seed %d: %v", sc.seed, err)
	}
	fopts := sc.opts
	fopts.PlanCache = -1
	fresh, err := Open(g, sc.nRanks, fopts)
	if err != nil {
		t.Fatalf("seed %d: %v", sc.seed, err)
	}
	mg, join := mpp.Run(e, sc.nRanks, "diff", func(p *mpp.Proc) {
		r := p.Rank()
		for pi, ph := range sc.phases {
			switch ph.kind {
			case diffCollectiveWrite, diffPipelinedWrite, diffAutoWrite:
				h := col
				switch ph.kind {
				case diffPipelinedWrite:
					h = piped
				case diffAutoWrite:
					h = auto
				}
				if err := h.WriteAll(p, ph.reqs[r], ph.bufs[r]); err != nil {
					t.Errorf("seed %d phase %d (%s) rank %d: %v", sc.seed, pi, diffKindNames[ph.kind], r, err)
				}
			case diffCollectiveRead, diffPipelinedRead, diffAutoRead:
				h := col
				switch ph.kind {
				case diffPipelinedRead:
					h = piped
				case diffAutoRead:
					h = auto
				}
				if err := h.ReadAll(p, ph.reqs[r], ph.bufs[r]); err != nil {
					t.Errorf("seed %d phase %d (%s) rank %d: %v", sc.seed, pi, diffKindNames[ph.kind], r, err)
				} else if !bytes.Equal(ph.bufs[r], ph.expect[r]) {
					t.Errorf("seed %d phase %d (%s) rank %d: read diverged from reference model",
						sc.seed, pi, diffKindNames[ph.kind], r)
				}
			case diffVectoredWrite, diffSievedWrite:
				for _, q := range ph.reqs[r] {
					set := g.File(q.File).Set()
					var err error
					if ph.kind == diffSievedWrite {
						err = set.WriteVecSieved(p.Proc, q.Vec, ph.bufs[r])
					} else {
						err = set.WriteVec(p.Proc, q.Vec, ph.bufs[r])
					}
					if err != nil {
						t.Errorf("seed %d phase %d (%s) rank %d: %v", sc.seed, pi, diffKindNames[ph.kind], r, err)
					}
				}
			case diffSievedRead:
				for _, q := range ph.reqs[r] {
					if err := g.File(q.File).Set().ReadVecSieved(p.Proc, q.Vec, ph.bufs[r]); err != nil {
						t.Errorf("seed %d phase %d (%s) rank %d: %v", sc.seed, pi, diffKindNames[ph.kind], r, err)
					}
				}
				if !bytes.Equal(ph.bufs[r], ph.expect[r]) {
					t.Errorf("seed %d phase %d (%s) rank %d: sieved read diverged from reference model",
						sc.seed, pi, diffKindNames[ph.kind], r)
				}
			case diffReplayWrite:
				// Iteration 1 plans, 2..N replay the captured schedule
				// with mutated payloads; then the last iteration is
				// re-issued through the fresh-plan handle, which must
				// land the identical final bytes.
				for it, ibufs := range ph.iters {
					if err := col.WriteAll(p, ph.reqs[r], ibufs[r]); err != nil {
						t.Errorf("seed %d phase %d (%s) rank %d iter %d: %v", sc.seed, pi, diffKindNames[ph.kind], r, it, err)
					}
				}
				if err := fresh.WriteAll(p, ph.reqs[r], ph.iters[diffReplayReps-1][r]); err != nil {
					t.Errorf("seed %d phase %d (%s) rank %d fresh-plan: %v", sc.seed, pi, diffKindNames[ph.kind], r, err)
				}
			case diffReplayRead:
				// The same reads issued repeatedly through the cached
				// handle — buffers scribbled between iterations so a
				// replay that failed to deliver would be caught — then
				// once through the fresh-plan handle.
				for it := 0; it <= diffReplayReps; it++ {
					for i := range ph.bufs[r] {
						ph.bufs[r][i] ^= 0xA5
					}
					h, tag := col, "replay"
					if it == diffReplayReps {
						h, tag = fresh, "fresh-plan"
					}
					if err := h.ReadAll(p, ph.reqs[r], ph.bufs[r]); err != nil {
						t.Errorf("seed %d phase %d (%s) rank %d iter %d (%s): %v", sc.seed, pi, diffKindNames[ph.kind], r, it, tag, err)
					} else if !bytes.Equal(ph.bufs[r], ph.expect[r]) {
						t.Errorf("seed %d phase %d (%s) rank %d iter %d (%s): read diverged from reference model",
							sc.seed, pi, diffKindNames[ph.kind], r, it, tag)
					}
				}
			case diffExtentWrite:
				for _, q := range ph.reqs[r] {
					sg := q.Vec[0]
					if err := g.File(q.File).Set().WriteRange(p.Proc, sg.Block, sg.N, ph.bufs[r]); err != nil {
						t.Errorf("seed %d phase %d (%s) rank %d: %v", sc.seed, pi, diffKindNames[ph.kind], r, err)
					}
				}
			case diffExtentRead:
				for _, q := range ph.reqs[r] {
					sg := q.Vec[0]
					if err := g.File(q.File).Set().ReadRange(p.Proc, sg.Block, sg.N, ph.bufs[r]); err != nil {
						t.Errorf("seed %d phase %d (%s) rank %d: %v", sc.seed, pi, diffKindNames[ph.kind], r, err)
					} else if !bytes.Equal(ph.bufs[r], ph.expect[r]) {
						t.Errorf("seed %d phase %d (%s) rank %d: extent read diverged from reference model",
							sc.seed, pi, diffKindNames[ph.kind], r)
					}
				}
			}
			// Serialize phases so the reference model's sequential
			// semantics hold across independent-path phases too.
			p.Barrier()
		}
	})
	switch sc.linkMode {
	case 1:
		mg.SetLink(10*time.Microsecond, 50e6)
	case 2:
		mg.SetLink(10*time.Microsecond, 50e6)
		mg.SetBisection(100e6)
	}
	e.Go("join", func(sp *sim.Proc) { join.Wait(sp) })
	if err := e.Run(); err != nil {
		t.Fatalf("seed %d: %v", sc.seed, err)
	}
	if got := readAllBlocks(t, g); !bytes.Equal(got, sc.ref) {
		for gb := int64(0); gb < int64(len(got))/testBS; gb++ {
			if !bytes.Equal(got[gb*testBS:(gb+1)*testBS], sc.ref[gb*testBS:(gb+1)*testBS]) {
				t.Errorf("seed %d: final image diverges from reference model at global block %d (first of possibly many)",
					sc.seed, gb)
				break
			}
		}
	}
}

// TestDifferential runs the fixed seed matrix: 60 scenarios covering
// every store kind × layout at least 6 times each (seed mod 9 walks the
// 3×3 matrix), with randomized rank counts, aggregator counts, locality
// and overlap policies, link models, chunk sizes for the pipelined
// phases, and phase mixes.
// Set PARIO_DIFF_SEED=N to replay a single scenario — including seeds
// outside the fixed matrix — e.g.
//
//	PARIO_DIFF_SEED=1234 go test -run TestDifferential ./internal/collective
func TestDifferential(t *testing.T) {
	if s := os.Getenv("PARIO_DIFF_SEED"); s != "" {
		seed, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("PARIO_DIFF_SEED=%q: %v", s, err)
		}
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			genScenario(seed).run(t)
		})
		return
	}
	for seed := int64(0); seed < 60; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			genScenario(seed).run(t)
		})
	}
}
