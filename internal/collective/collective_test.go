package collective

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/blockio"
	"repro/internal/device"
	"repro/internal/mpp"
	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/stripe"
)

const testBS = 256 // fs block size for all collective tests

// storeKind selects the redundancy wrapper under test.
type storeKind int

const (
	storeDirect storeKind = iota
	storeParity
	storeMirror
)

func (k storeKind) String() string {
	return [...]string{"direct", "parity", "mirror"}[k]
}

// newTestStore builds a 4-data-device store of the given kind attached to
// e (nil for untimed), returning the store and every physical drive.
func newTestStore(t *testing.T, e *sim.Engine, kind storeKind) (blockio.Store, []*device.Disk) {
	t.Helper()
	geom := device.Geometry{BlockSize: testBS, BlocksPerCyl: 8, Cylinders: 64}
	mk := func(n int, pfx string) []*device.Disk {
		out := make([]*device.Disk, n)
		for i := range out {
			out[i] = device.New(device.Config{
				Name: fmt.Sprintf("%s%d", pfx, i), Geometry: geom, Engine: e,
			})
		}
		return out
	}
	switch kind {
	case storeParity:
		disks := mk(5, "d")
		st, err := stripe.NewParity(disks, true)
		if err != nil {
			t.Fatal(err)
		}
		return st, disks
	case storeMirror:
		primary, shadow := mk(4, "p"), mk(4, "s")
		st, err := stripe.NewMirror(primary, shadow)
		if err != nil {
			t.Fatal(err)
		}
		return st, append(primary, shadow...)
	default:
		disks := mk(4, "d")
		st, err := blockio.NewDirect(disks)
		if err != nil {
			t.Fatal(err)
		}
		return st, disks
	}
}

// testPlacements names the three layout families exercised by the
// equivalence tests. Every file's spec uses RecordSize == testBS, so one
// record is one fs block.
var testPlacements = []struct {
	name string
	spec func(name string, recs int64) pfs.Spec
}{
	{"striped-unit1", func(name string, recs int64) pfs.Spec {
		return pfs.Spec{Name: name, Org: pfs.OrgSequential, RecordSize: testBS,
			NumRecords: recs, Placement: pfs.PlaceStriped, StripeUnitFS: 1}
	}},
	{"partitioned", func(name string, recs int64) pfs.Spec {
		return pfs.Spec{Name: name, Org: pfs.OrgPartitioned, RecordSize: testBS,
			NumRecords: recs, Parts: 4}
	}},
	{"interleaved", func(name string, recs int64) pfs.Spec {
		return pfs.Spec{Name: name, Org: pfs.OrgInterleaved, RecordSize: testBS,
			NumRecords: recs, Parts: 4}
	}},
}

// pattern is the deterministic content of global block gb.
func pattern(gb int64, buf []byte) {
	for i := range buf {
		buf[i] = byte(gb*37 + int64(i)*11 + 5)
	}
}

// strideReqs builds rank's requests: every 8th block of both files
// (blocks ≡ rank mod 8 in the group's concatenated space), packed
// sequentially into the rank buffer. Returns the reqs, the buffer, and
// the global block each buffer slot holds.
func strideReqs(g *pfs.FileGroup, rank, nRanks int) ([]VecReq, []byte, []int64) {
	var reqs []VecReq
	var slots []int64
	var off int64
	for f := 0; f < g.Len(); f++ {
		total := g.File(f).Mapper().TotalFSBlocks()
		var vec blockio.Vec
		for b := int64(rank); b < total; b += int64(nRanks) {
			vec = append(vec, blockio.VecSeg{Block: b, N: 1, BufOff: off})
			slots = append(slots, g.Offset(f)+b)
			off += testBS
		}
		if len(vec) > 0 {
			reqs = append(reqs, VecReq{File: f, Vec: vec})
		}
	}
	return reqs, make([]byte, off), slots
}

// collectiveFixture builds engine + store + a 2-file group (40 and 23
// blocks — the second deliberately odd so domains are ragged).
func collectiveFixture(t *testing.T, kind storeKind, placement func(string, int64) pfs.Spec) (*sim.Engine, *pfs.FileGroup, []*device.Disk) {
	t.Helper()
	e := sim.NewEngine()
	store, disks := newTestStore(t, e, kind)
	vol := pfs.NewVolume(store)
	if _, err := vol.Create(placement("a", 40)); err != nil {
		t.Fatal(err)
	}
	if _, err := vol.Create(placement("b", 23)); err != nil {
		t.Fatal(err)
	}
	g, err := vol.OpenGroup("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	return e, g, disks
}

// readAllBlocks reads every block of every group file through the
// independent path (Wall context, per-file ReadVec).
func readAllBlocks(t *testing.T, g *pfs.FileGroup) []byte {
	t.Helper()
	ctx := sim.NewWall()
	out := make([]byte, g.TotalFSBlocks()*testBS)
	for f := 0; f < g.Len(); f++ {
		total := g.File(f).Mapper().TotalFSBlocks()
		buf := out[g.Offset(f)*testBS : (g.Offset(f)+total)*testBS]
		if err := g.File(f).Set().ReadVec(ctx, blockio.Vec{{Block: 0, N: total}}, buf); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

// TestCollectiveWriteEquivalence checks, for every store kind × layout,
// that a collective strided write lands exactly the bytes the
// independent vectored path lands.
func TestCollectiveWriteEquivalence(t *testing.T) {
	for _, kind := range []storeKind{storeDirect, storeParity, storeMirror} {
		for _, pl := range testPlacements {
			for _, locality := range []bool{false, true} {
				t.Run(fmt.Sprintf("%s/%s/locality=%v", kind, pl.name, locality), func(t *testing.T) {
					const nRanks = 8
					// Collective run.
					e, g, _ := collectiveFixture(t, kind, pl.spec)
					col, err := Open(g, nRanks, Options{Locality: locality})
					if err != nil {
						t.Fatal(err)
					}
					mg, join := mpp.Run(e, nRanks, "w", func(p *mpp.Proc) {
						reqs, buf, slots := strideReqs(g, p.Rank(), nRanks)
						for i, gb := range slots {
							pattern(gb, buf[int64(i)*testBS:int64(i+1)*testBS])
						}
						if err := col.WriteAll(p, reqs, buf); err != nil {
							t.Errorf("rank %d: %v", p.Rank(), err)
						}
					})
					mg.SetLink(0, 100e6)
					e.Go("join", func(sp *sim.Proc) { join.Wait(sp) })
					if err := e.Run(); err != nil {
						t.Fatal(err)
					}
					gotCollective := readAllBlocks(t, g)

					// Independent run on a twin setup.
					e2, g2, _ := collectiveFixture(t, kind, pl.spec)
					_, join2 := mpp.Run(e2, nRanks, "iw", func(p *mpp.Proc) {
						reqs, buf, slots := strideReqs(g2, p.Rank(), nRanks)
						for i, gb := range slots {
							pattern(gb, buf[int64(i)*testBS:int64(i+1)*testBS])
						}
						for _, q := range reqs {
							if err := g2.File(q.File).Set().WriteVec(p.Proc, q.Vec, buf); err != nil {
								t.Errorf("rank %d: %v", p.Rank(), err)
							}
						}
					})
					e2.Go("join", func(sp *sim.Proc) { join2.Wait(sp) })
					if err := e2.Run(); err != nil {
						t.Fatal(err)
					}
					gotIndependent := readAllBlocks(t, g2)

					if !bytes.Equal(gotCollective, gotIndependent) {
						t.Fatal("collective and independent writes landed different bytes")
					}
					// And both match the intended pattern on every written block.
					want := make([]byte, testBS)
					for gb := int64(0); gb < g.TotalFSBlocks(); gb++ {
						pattern(gb, want)
						if !bytes.Equal(gotCollective[gb*testBS:(gb+1)*testBS], want) {
							t.Fatalf("global block %d corrupt after collective write", gb)
						}
					}
				})
			}
		}
	}
}

// TestCollectiveReadEquivalence seeds the files independently, reads
// them back collectively (including cross-rank overlapping reads), and
// checks every rank's buffer.
func TestCollectiveReadEquivalence(t *testing.T) {
	for _, kind := range []storeKind{storeDirect, storeParity, storeMirror} {
		for _, pl := range testPlacements {
			for _, locality := range []bool{false, true} {
				t.Run(fmt.Sprintf("%s/%s/locality=%v", kind, pl.name, locality), func(t *testing.T) {
					const nRanks = 8
					e, g, _ := collectiveFixture(t, kind, pl.spec)
					// Seed through the independent path, untimed.
					ctx := sim.NewWall()
					blk := make([]byte, testBS)
					for f := 0; f < g.Len(); f++ {
						total := g.File(f).Mapper().TotalFSBlocks()
						for b := int64(0); b < total; b++ {
							pattern(g.Offset(f)+b, blk)
							if err := g.File(f).Set().WriteBlock(ctx, b, blk); err != nil {
								t.Fatal(err)
							}
						}
					}
					col, err := Open(g, nRanks, Options{Locality: locality})
					if err != nil {
						t.Fatal(err)
					}
					mg, join := mpp.Run(e, nRanks, "r", func(p *mpp.Proc) {
						reqs, buf, slots := strideReqs(g, p.Rank(), nRanks)
						// Every rank also reads block 0 of file 0 — a
						// cross-rank overlap, legal for reads.
						reqs = append(reqs, VecReq{File: 0, Vec: blockio.Vec{{Block: 0, N: 1, BufOff: int64(len(buf))}}})
						buf = append(buf, make([]byte, testBS)...)
						slots = append(slots, 0)
						if err := col.ReadAll(p, reqs, buf); err != nil {
							t.Errorf("rank %d: %v", p.Rank(), err)
							return
						}
						want := make([]byte, testBS)
						for i, gb := range slots {
							pattern(gb, want)
							if !bytes.Equal(buf[int64(i)*testBS:int64(i+1)*testBS], want) {
								t.Errorf("rank %d: slot %d (global block %d) mismatch", p.Rank(), i, gb)
								return
							}
						}
					})
					mg.SetLink(0, 100e6)
					e.Go("join", func(sp *sim.Proc) { join.Wait(sp) })
					if err := e.Run(); err != nil {
						t.Fatal(err)
					}
				})
			}
		}
	}
}

// TestCollectiveDegradedRead fails one parity data drive and checks a
// collective read still reconstructs every requested block.
func TestCollectiveDegradedRead(t *testing.T) {
	const nRanks = 4
	e, g, disks := collectiveFixture(t, storeParity, testPlacements[0].spec)
	ctx := sim.NewWall()
	blk := make([]byte, testBS)
	for f := 0; f < g.Len(); f++ {
		total := g.File(f).Mapper().TotalFSBlocks()
		for b := int64(0); b < total; b++ {
			pattern(g.Offset(f)+b, blk)
			if err := g.File(f).Set().WriteBlock(ctx, b, blk); err != nil {
				t.Fatal(err)
			}
		}
	}
	disks[1].Fail()
	col, err := Open(g, nRanks, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, join := mpp.Run(e, nRanks, "r", func(p *mpp.Proc) {
		reqs, buf, slots := strideReqs(g, p.Rank(), nRanks)
		if err := col.ReadAll(p, reqs, buf); err != nil {
			t.Errorf("rank %d: %v", p.Rank(), err)
			return
		}
		want := make([]byte, testBS)
		for i, gb := range slots {
			pattern(gb, want)
			if !bytes.Equal(buf[int64(i)*testBS:int64(i+1)*testBS], want) {
				t.Errorf("rank %d: global block %d wrong under degraded read", p.Rank(), gb)
				return
			}
		}
	})
	e.Go("join", func(sp *sim.Proc) { join.Wait(sp) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestCollectiveRaggedDomain uses a footprint that does not divide by the
// aggregator count (10 blocks over 4 aggregators → 3+3+3+1) and a group
// whose second file ends mid-domain.
func TestCollectiveRaggedDomain(t *testing.T) {
	const nRanks = 4
	e, g, _ := collectiveFixture(t, storeDirect, testPlacements[0].spec)
	col, err := Open(g, nRanks, Options{Aggregators: 4})
	if err != nil {
		t.Fatal(err)
	}
	// 10 blocks straddling the a/b file boundary: a[36,40) ∪ b[0,6) =
	// global [36,46), split 3/3/3/1 across the aggregators.
	_, join := mpp.Run(e, nRanks, "w", func(p *mpp.Proc) {
		r := int64(p.Rank())
		var vecA, vecB blockio.Vec
		buf := make([]byte, 0, 3*testBS)
		for gb := int64(36) + r; gb < 46; gb += nRanks {
			off := int64(len(buf))
			buf = append(buf, make([]byte, testBS)...)
			pattern(gb, buf[off:])
			if gb < 40 {
				vecA = append(vecA, blockio.VecSeg{Block: gb, N: 1, BufOff: off})
			} else {
				vecB = append(vecB, blockio.VecSeg{Block: gb - 40, N: 1, BufOff: off})
			}
		}
		var reqs []VecReq
		if len(vecA) > 0 {
			reqs = append(reqs, VecReq{File: 0, Vec: vecA})
		}
		if len(vecB) > 0 {
			reqs = append(reqs, VecReq{File: 1, Vec: vecB})
		}
		if err := col.WriteAll(p, reqs, buf); err != nil {
			t.Errorf("rank %d: %v", p.Rank(), err)
		}
	})
	e.Go("join", func(sp *sim.Proc) { join.Wait(sp) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	got := readAllBlocks(t, g)
	want := make([]byte, testBS)
	for gb := int64(36); gb < 46; gb++ {
		pattern(gb, want)
		if !bytes.Equal(got[gb*testBS:(gb+1)*testBS], want) {
			t.Fatalf("global block %d corrupt after ragged collective write", gb)
		}
	}
	// Untouched blocks stayed zero.
	zero := make([]byte, testBS)
	for _, gb := range []int64{0, 35, 46, g.TotalFSBlocks() - 1} {
		if !bytes.Equal(got[gb*testBS:(gb+1)*testBS], zero) {
			t.Fatalf("global block %d touched outside the footprint", gb)
		}
	}
}

// TestCollectiveEmptyRanks lets some ranks participate with no requests.
func TestCollectiveEmptyRanks(t *testing.T) {
	const nRanks = 4
	e, g, _ := collectiveFixture(t, storeDirect, testPlacements[0].spec)
	col, err := Open(g, nRanks, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, join := mpp.Run(e, nRanks, "w", func(p *mpp.Proc) {
		if p.Rank() != 2 {
			if err := col.WriteAll(p, nil, nil); err != nil {
				t.Errorf("rank %d empty write: %v", p.Rank(), err)
			}
			return
		}
		buf := make([]byte, 4*testBS)
		for i := 0; i < 4; i++ {
			pattern(int64(i), buf[i*testBS:(i+1)*testBS])
		}
		if err := col.WriteAll(p, []VecReq{{File: 0, Vec: blockio.Vec{{Block: 0, N: 4}}}}, buf); err != nil {
			t.Errorf("rank 2: %v", err)
		}
	})
	e.Go("join", func(sp *sim.Proc) { join.Wait(sp) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	got := readAllBlocks(t, g)
	want := make([]byte, testBS)
	for gb := int64(0); gb < 4; gb++ {
		pattern(gb, want)
		if !bytes.Equal(got[gb*testBS:(gb+1)*testBS], want) {
			t.Fatalf("block %d corrupt", gb)
		}
	}
}

// TestCollectiveErrorsPropagate: every rank receives the plan error.
func TestCollectiveErrorsPropagate(t *testing.T) {
	const nRanks = 2
	e, g, _ := collectiveFixture(t, storeDirect, testPlacements[0].spec)
	col, err := Open(g, nRanks, Options{})
	if err != nil {
		t.Fatal(err)
	}
	errs := make([]error, nRanks)
	_, join := mpp.Run(e, nRanks, "w", func(p *mpp.Proc) {
		// Both ranks write block 0: a cross-rank write overlap.
		buf := make([]byte, testBS)
		errs[p.Rank()] = col.WriteAll(p, []VecReq{{File: 0, Vec: blockio.Vec{{Block: 0, N: 1}}}}, buf)
	})
	e.Go("join", func(sp *sim.Proc) { join.Wait(sp) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for r, err := range errs {
		if err == nil || !strings.Contains(err.Error(), "write overlapping") {
			t.Fatalf("rank %d error = %v, want cross-rank overlap", r, err)
		}
	}
}

// TestCollectiveRequestReduction is the subsystem-level coalescing
// check: an 8-rank stride over both files must cost at most one device
// request per aggregator per device, versus one per block independently.
func TestCollectiveRequestReduction(t *testing.T) {
	const nRanks = 8
	e, g, disks := collectiveFixture(t, storeDirect, testPlacements[0].spec)
	col, err := Open(g, nRanks, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mg, join := mpp.Run(e, nRanks, "w", func(p *mpp.Proc) {
		reqs, buf, slots := strideReqs(g, p.Rank(), nRanks)
		for i, gb := range slots {
			pattern(gb, buf[int64(i)*testBS:int64(i+1)*testBS])
		}
		if err := col.WriteAll(p, reqs, buf); err != nil {
			t.Errorf("rank %d: %v", p.Rank(), err)
		}
	})
	mg.SetLink(0, 100e6)
	e.Go("join", func(sp *sim.Proc) { join.Wait(sp) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	var reqs int64
	for _, d := range disks {
		reqs += d.Stats().Requests()
	}
	// 63 blocks, 4 aggregators × 4 devices bounds the request count.
	if max := int64(col.Aggregators() * len(disks)); reqs > max {
		t.Fatalf("collective write issued %d device requests, want ≤ %d", reqs, max)
	}
	got := readAllBlocks(t, g)
	want := make([]byte, testBS)
	for gb := int64(0); gb < g.TotalFSBlocks(); gb++ {
		pattern(gb, want)
		if !bytes.Equal(got[gb*testBS:(gb+1)*testBS], want) {
			t.Fatalf("global block %d corrupt", gb)
		}
	}
}

// TestCollectiveReuseErrorVisibility is the regression for the
// cross-call error race: on a reused handle, a rank returning from one
// collective and immediately entering the next must not clear its error
// slot before slower ranks have joined the previous call's errors.
// Every rank must see the aggregator's device error from call 1, and
// call 2 (after repair) must succeed for all.
func TestCollectiveReuseErrorVisibility(t *testing.T) {
	const nRanks = 4
	e, g, disks := collectiveFixture(t, storeDirect, testPlacements[0].spec)
	// A single aggregator makes the failing rank the last barrier
	// arriver — the schedule in which it re-enters first and, without
	// the trailing barrier in run(), clears its error slot before the
	// other ranks join.
	col, err := Open(g, nRanks, Options{Aggregators: 1})
	if err != nil {
		t.Fatal(err)
	}
	disks[2].Fail()
	errs1 := make([]error, nRanks)
	errs2 := make([]error, nRanks)
	_, join := mpp.Run(e, nRanks, "w", func(p *mpp.Proc) {
		reqs, buf, slots := strideReqs(g, p.Rank(), nRanks)
		for i, gb := range slots {
			pattern(gb, buf[int64(i)*testBS:int64(i+1)*testBS])
		}
		errs1[p.Rank()] = col.WriteAll(p, reqs, buf)
		if p.Rank() == 0 {
			disks[2].Repair()
		}
		errs2[p.Rank()] = col.WriteAll(p, reqs, buf)
	})
	e.Go("join", func(sp *sim.Proc) { join.Wait(sp) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for r, err := range errs1 {
		if err == nil || !strings.Contains(err.Error(), "drive failed") {
			t.Errorf("rank %d call 1 error = %v, want the aggregator's drive failure", r, err)
		}
	}
	for r, err := range errs2 {
		if err != nil {
			t.Errorf("rank %d call 2 error = %v, want nil", r, err)
		}
	}
}

// TestCollectiveLocalityKeepsBytesLocal is the subsystem-level locality
// check: 4 ranks write 10-block slabs of file a shifted by one slab
// (rank r writes slab (r+1) mod 4), so under round-robin assignment
// every byte crosses the interconnect while locality assignment keeps
// every byte on its writing rank. Verified three ways: the plan's
// ExchangeStats, the measured mpp link traffic, and the landed bytes.
func TestCollectiveLocalityKeepsBytesLocal(t *testing.T) {
	const nRanks = 4
	run := func(locality bool) (ExchangeStats, int64) {
		e, g, _ := collectiveFixture(t, storeDirect, testPlacements[0].spec)
		col, err := Open(g, nRanks, Options{Aggregators: 4, Locality: locality})
		if err != nil {
			t.Fatal(err)
		}
		mg, join := mpp.Run(e, nRanks, "w", func(p *mpp.Proc) {
			slab := int64((p.Rank() + 1) % nRanks)
			buf := make([]byte, 10*testBS)
			for i := int64(0); i < 10; i++ {
				pattern(slab*10+i, buf[i*testBS:(i+1)*testBS])
			}
			reqs := []VecReq{{File: 0, Vec: blockio.Vec{{Block: slab * 10, N: 10, BufOff: 0}}}}
			if err := col.WriteAll(p, reqs, buf); err != nil {
				t.Errorf("rank %d: %v", p.Rank(), err)
			}
		})
		e.Go("join", func(sp *sim.Proc) { join.Wait(sp) })
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		got := readAllBlocks(t, g)
		want := make([]byte, testBS)
		for gb := int64(0); gb < 40; gb++ {
			pattern(gb, want)
			if !bytes.Equal(got[gb*testBS:(gb+1)*testBS], want) {
				t.Fatalf("locality=%v: global block %d corrupt", locality, gb)
			}
		}
		_, linkBytes := mg.Traffic()
		return col.LastStats(), linkBytes
	}

	const totalBytes = int64(40 * testBS)
	naive, naiveLink := run(false)
	if naive.BytesMoved != totalBytes || naive.BytesLocal != 0 {
		t.Errorf("round-robin stats = %+v, want all %d bytes moved", naive, totalBytes)
	}
	if naiveLink != totalBytes {
		t.Errorf("round-robin link traffic = %d bytes, want %d", naiveLink, totalBytes)
	}
	local, localLink := run(true)
	if local.BytesMoved != 0 || local.BytesLocal != totalBytes {
		t.Errorf("locality stats = %+v, want all %d bytes local", local, totalBytes)
	}
	if localLink != 0 {
		t.Errorf("locality link traffic = %d bytes, want 0", localLink)
	}
}

// TestCollectiveLastWriterWins pins the MPI-IO overlap semantics: three
// ranks write overlapping ranges and the outcome must be as if they
// wrote in rank order — deterministically, for both domain assignments.
func TestCollectiveLastWriterWins(t *testing.T) {
	for _, locality := range []bool{false, true} {
		t.Run(fmt.Sprintf("locality=%v", locality), func(t *testing.T) {
			const nRanks = 3
			e, g, _ := collectiveFixture(t, storeDirect, testPlacements[0].spec)
			col, err := Open(g, nRanks, Options{Locality: locality, LastWriterWins: true})
			if err != nil {
				t.Fatal(err)
			}
			// Rank 0: blocks [0,4); rank 1: [2,6); rank 2: [3,5).
			ranges := [][2]int64{{0, 4}, {2, 6}, {3, 5}}
			_, join := mpp.Run(e, nRanks, "w", func(p *mpp.Proc) {
				lo, hi := ranges[p.Rank()][0], ranges[p.Rank()][1]
				buf := make([]byte, (hi-lo)*testBS)
				for i := range buf {
					buf[i] = byte(100 + p.Rank()) // rank-identifying fill
				}
				reqs := []VecReq{{File: 0, Vec: blockio.Vec{{Block: lo, N: hi - lo, BufOff: 0}}}}
				if err := col.WriteAll(p, reqs, buf); err != nil {
					t.Errorf("rank %d: %v", p.Rank(), err)
				}
			})
			e.Go("join", func(sp *sim.Proc) { join.Wait(sp) })
			if err := e.Run(); err != nil {
				t.Fatal(err)
			}
			got := readAllBlocks(t, g)
			// Rank order outcome: rank 2 owns [3,5), rank 1 owns [2,3) and
			// [5,6), rank 0 owns [0,2).
			winners := []int{0, 0, 1, 2, 2, 1}
			for gb, w := range winners {
				want := byte(100 + w)
				for i := int64(0); i < testBS; i++ {
					if got[int64(gb)*testBS+i] != want {
						t.Fatalf("block %d byte %d = %d, want rank %d's %d",
							gb, i, got[int64(gb)*testBS+i], w, want)
					}
				}
			}
		})
	}
}

// TestCollectiveLastWriterWinsIdempotent re-runs the same overlapping
// write twice on a reused handle: the outcome must not change (the
// resolution is rank order, not arrival order).
func TestCollectiveLastWriterWinsIdempotent(t *testing.T) {
	const nRanks = 2
	e, g, _ := collectiveFixture(t, storeDirect, testPlacements[0].spec)
	col, err := Open(g, nRanks, Options{LastWriterWins: true})
	if err != nil {
		t.Fatal(err)
	}
	_, join := mpp.Run(e, nRanks, "w", func(p *mpp.Proc) {
		for call := 0; call < 2; call++ {
			buf := make([]byte, 4*testBS)
			for i := range buf {
				buf[i] = byte(10*(p.Rank()+1) + call)
			}
			// Both ranks write blocks [0,4).
			if err := col.WriteAll(p, []VecReq{{File: 0, Vec: blockio.Vec{{Block: 0, N: 4}}}}, buf); err != nil {
				t.Errorf("rank %d call %d: %v", p.Rank(), call, err)
			}
		}
	})
	e.Go("join", func(sp *sim.Proc) { join.Wait(sp) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	got := readAllBlocks(t, g)
	for i := int64(0); i < 4*testBS; i++ {
		if got[i] != 21 { // rank 1, call 1
			t.Fatalf("byte %d = %d, want rank 1's last write (21)", i, got[i])
		}
	}
}

// TestCollectiveExchangeStatsRead checks LastStats on the read path and
// that reads and writes of one footprint report the same split.
func TestCollectiveExchangeStatsRead(t *testing.T) {
	const nRanks = 2
	e, g, _ := collectiveFixture(t, storeDirect, testPlacements[0].spec)
	col, err := Open(g, nRanks, Options{Aggregators: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Rank 0 touches blocks [4,8), rank 1 blocks [0,4): under round-robin
	// assignment domain 0 ([0,4), read by rank 1) belongs to rank 0 and
	// vice versa, so every byte crosses the link.
	_, join := mpp.Run(e, nRanks, "rw", func(p *mpp.Proc) {
		lo := int64(4 * (1 - p.Rank()))
		buf := make([]byte, 4*testBS)
		reqs := []VecReq{{File: 0, Vec: blockio.Vec{{Block: lo, N: 4}}}}
		if err := col.WriteAll(p, reqs, buf); err != nil {
			t.Errorf("rank %d write: %v", p.Rank(), err)
		}
		wst := col.LastStats()
		if err := col.ReadAll(p, reqs, buf); err != nil {
			t.Errorf("rank %d read: %v", p.Rank(), err)
		}
		if rst := col.LastStats(); !rst.SameBytes(wst) {
			t.Errorf("rank %d: read stats %+v != write stats %+v", p.Rank(), rst, wst)
		}
	})
	e.Go("join", func(sp *sim.Proc) { join.Wait(sp) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	st := col.LastStats()
	if want := int64(8 * testBS); st.BytesMoved != want || st.BytesLocal != 0 {
		t.Fatalf("stats = %+v, want %d moved / 0 local", st, want)
	}
}
