// Multijob differential phase: several jobs — each its own rank group,
// its own files, its own QoS lane on one shared I/O server — run
// nonblocking collectives concurrently, and the final byte image must
// match (a) the same workload executed job-after-job through the
// blocking path with no server at all, and (b) the flat serial
// reference model. Jobs' file footprints are disjoint by construction,
// so any QoS policy's interleaving of their device batches must be
// data-invisible; a divergence localizes a bug in the scheduler or the
// split-collective plumbing (stale domain buffers, misrouted tickets,
// exchange-after-submit races).
//
// Failures print the scenario seed; replay with
//
//	go test -run 'TestDifferentialMultijob/seed=N' ./internal/collective
package collective

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/blockio"
	"repro/internal/ioserver"
	"repro/internal/mpp"
	"repro/internal/pfs"
	"repro/internal/sim"
)

// mjJob is one generated job: its geometry, two write phases (the
// second overwrites part of the first), one read-back phase, and its
// QoS lane configuration.
type mjJob struct {
	nRanks  int
	opts    Options // per-job collective options (Service filled at run time)
	geom    *fileGroupInfo
	names   []string
	lane    ioserver.JobConfig
	arrival time.Duration // staggered job start
	compute time.Duration // overlapped work between issue and Wait

	writes []diffPhase // kind ignored; write request lists
	read   diffPhase   // read-back with expected buffers
	ref    []byte      // this job's files' expected final image
}

// mjScenario is a seeded multijob workload over one shared store and
// one shared I/O server.
type mjScenario struct {
	seed    int64
	kind    storeKind
	place   int
	policy  ioserver.Policy
	workers int
	jobs    []*mjJob
}

func genMultijob(seed int64) *mjScenario {
	rng := rand.New(rand.NewSource(seed))
	sc := &mjScenario{
		seed:    seed,
		kind:    storeKind(seed % 3),
		place:   int(seed/3) % 3,
		policy:  ioserver.Policy(rng.Intn(3)),
		workers: 1 + rng.Intn(3),
	}
	nJobs := 2 + rng.Intn(3)
	for j := 0; j < nJobs; j++ {
		job := &mjJob{
			nRanks: 2 + rng.Intn(4),
			opts: Options{
				Aggregators:    rng.Intn(5),
				Locality:       rng.Intn(2) == 1,
				LastWriterWins: rng.Intn(2) == 1,
			},
			lane: ioserver.JobConfig{
				Name:     fmt.Sprintf("job%d", j),
				Priority: rng.Intn(3),
				Weight:   []float64{0, 1, 4}[rng.Intn(3)],
				// Occasional pacing cap, generous enough to terminate fast.
				BytesPerSec: []float64{0, 0, 0, 1 << 20}[rng.Intn(4)],
				QueueDepth:  []int{0, 2, 8}[rng.Intn(3)],
			},
			arrival: time.Duration(rng.Intn(4)) * 500 * time.Microsecond,
			compute: time.Duration(rng.Intn(3)) * time.Millisecond,
		}
		g := &fileGroupInfo{nFiles: 1 + rng.Intn(2)}
		for f := 0; f < g.nFiles; f++ {
			g.offs = append(g.offs, g.total)
			size := int64(8 + rng.Intn(24))
			g.sizes = append(g.sizes, size)
			g.total += size
			job.names = append(job.names, fmt.Sprintf("j%df%d", j, f))
		}
		job.geom = g
		job.ref = make([]byte, g.total*testBS)
		sc.jobs = append(sc.jobs, job)
		for ph := 0; ph < 2; ph++ {
			sc.genJobWrite(rng, job, j, ph)
		}
		sc.genJobRead(rng, job, j)
	}
	return sc
}

// genJobWrite assigns a random subset of the job's blocks to its ranks
// (cross-rank overlaps only under the job's LastWriterWins), fills the
// buffers, and folds rank-order-wins into the job's reference image.
func (sc *mjScenario) genJobWrite(rng *rand.Rand, job *mjJob, j, ph int) {
	g := job.geom
	density := 0.3 + 0.5*rng.Float64()
	owners := make([][]int, g.total)
	for gb := int64(0); gb < g.total; gb++ {
		if rng.Float64() >= density {
			continue
		}
		r := rng.Intn(job.nRanks)
		owners[gb] = []int{r}
		if job.opts.LastWriterWins && rng.Float64() < 0.25 {
			if r2 := rng.Intn(job.nRanks); r2 != r {
				owners[gb] = append(owners[gb], r2)
			}
		}
	}
	reqs, bufs := rankSegments(rng, g, owners, job.nRanks)
	phase := 1000*int(sc.seed) + 10*j + ph // any deterministic content tag
	for r := range reqs {
		for _, q := range reqs[r] {
			for _, sg := range q.Vec {
				gb0 := g.offs[q.File] + sg.Block
				for b := int64(0); b < sg.N; b++ {
					for i := int64(0); i < testBS; i++ {
						bufs[r][sg.BufOff+b*testBS+i] = diffContent(sc.seed, phase, r, gb0+b, i)
					}
				}
			}
		}
	}
	for gb := int64(0); gb < g.total; gb++ {
		if len(owners[gb]) == 0 {
			continue
		}
		winner := owners[gb][0]
		for _, w := range owners[gb] {
			if w > winner {
				winner = w
			}
		}
		for i := int64(0); i < testBS; i++ {
			job.ref[gb*testBS+i] = diffContent(sc.seed, phase, winner, gb, i)
		}
	}
	job.writes = append(job.writes, diffPhase{reqs: reqs, bufs: bufs})
}

// genJobRead snapshots random segments of the job's final image as the
// read-back phase's expected buffers.
func (sc *mjScenario) genJobRead(rng *rand.Rand, job *mjJob, j int) {
	g := job.geom
	reqs := make([][]VecReq, job.nRanks)
	bufs := make([][]byte, job.nRanks)
	expect := make([][]byte, job.nRanks)
	for r := 0; r < job.nRanks; r++ {
		var off int64
		for s := 0; s < rng.Intn(3); s++ {
			f := rng.Intn(g.nFiles)
			blk := rng.Int63n(g.sizes[f])
			n := 1 + rng.Int63n(4)
			if blk+n > g.sizes[f] {
				n = g.sizes[f] - blk
			}
			reqs[r] = append(reqs[r], VecReq{File: f, Vec: blockio.Vec{{Block: blk, N: n, BufOff: off}}})
			off += n * testBS
		}
		bufs[r] = make([]byte, off)
		expect[r] = make([]byte, off)
		for _, q := range reqs[r] {
			for _, sg := range q.Vec {
				gb0 := (g.offs[q.File] + sg.Block) * testBS
				copy(expect[r][sg.BufOff:sg.BufOff+sg.N*testBS], job.ref[gb0:gb0+sg.N*testBS])
			}
		}
	}
	job.read = diffPhase{reqs: reqs, bufs: bufs, expect: expect}
}

// build creates the scenario's volume and one collective per job, plus
// a group over every file (in job order) for whole-image capture.
func (sc *mjScenario) build(t *testing.T, e *sim.Engine, service []*ioserver.Job) (cols []*Collective, all *pfs.FileGroup) {
	t.Helper()
	store, _ := newTestStore(t, e, sc.kind)
	vol := pfs.NewVolume(store)
	var allNames []string
	for j, job := range sc.jobs {
		for f, name := range job.names {
			if _, err := vol.Create(testPlacements[sc.place].spec(name, job.geom.sizes[f])); err != nil {
				t.Fatalf("seed %d: %v", sc.seed, err)
			}
			allNames = append(allNames, name)
		}
		g, err := vol.OpenGroup(job.names...)
		if err != nil {
			t.Fatalf("seed %d: %v", sc.seed, err)
		}
		opts := job.opts
		if service != nil {
			opts.Service = service[j]
		}
		col, err := Open(g, job.nRanks, opts)
		if err != nil {
			t.Fatalf("seed %d: %v", sc.seed, err)
		}
		cols = append(cols, col)
	}
	all, err := vol.OpenGroup(allNames...)
	if err != nil {
		t.Fatalf("seed %d: %v", sc.seed, err)
	}
	return cols, all
}

// runScheduled executes every job concurrently through the shared
// server and returns the final whole-store image.
func (sc *mjScenario) runScheduled(t *testing.T) []byte {
	e := sim.NewEngine()
	srv := ioserver.New(ioserver.Config{Workers: sc.workers, Policy: sc.policy})
	lanes := make([]*ioserver.Job, len(sc.jobs))
	for j, job := range sc.jobs {
		lanes[j] = srv.AddJob(job.lane)
	}
	cols, all := sc.build(t, e, lanes)
	srv.Start(e)
	var joins []*sim.Group
	for j, job := range sc.jobs {
		j, job, col := j, job, cols[j]
		_, join := mpp.Run(e, job.nRanks, fmt.Sprintf("job%d", j), func(p *mpp.Proc) {
			r := p.Rank()
			p.Compute(job.arrival)
			for wi, w := range job.writes {
				h, err := col.IWriteAll(p, w.reqs[r], w.bufs[r])
				if err != nil {
					t.Errorf("seed %d job %d write %d rank %d: %v", sc.seed, j, wi, r, err)
					return
				}
				p.Compute(job.compute)
				if err := h.Wait(p); err != nil {
					t.Errorf("seed %d job %d write %d rank %d: %v", sc.seed, j, wi, r, err)
					return
				}
			}
			h, err := col.IReadAll(p, job.read.reqs[r], job.read.bufs[r])
			if err != nil {
				t.Errorf("seed %d job %d read rank %d: %v", sc.seed, j, r, err)
				return
			}
			p.Compute(job.compute)
			if err := h.Wait(p); err != nil {
				t.Errorf("seed %d job %d read rank %d: %v", sc.seed, j, r, err)
				return
			}
			if !bytes.Equal(job.read.bufs[r], job.read.expect[r]) {
				t.Errorf("seed %d job %d rank %d: scheduled read diverged from reference model", sc.seed, j, r)
			}
		})
		joins = append(joins, join)
	}
	e.Go("driver", func(sp *sim.Proc) {
		for _, jn := range joins {
			jn.Wait(sp)
		}
		srv.Stop(sp)
	})
	if err := e.Run(); err != nil {
		t.Fatalf("seed %d: %v", sc.seed, err)
	}
	for j, lane := range lanes {
		st := lane.Stats()
		if st.Submitted == 0 || st.Submitted != st.Completed {
			t.Fatalf("seed %d job %d: server accounting %+v", sc.seed, j, st)
		}
	}
	return readAllBlocks(t, all)
}

// runSerialized executes the same workload job-after-job (job j+1's
// ranks gate on job j's join) through the blocking path with no server,
// and returns the final image.
func (sc *mjScenario) runSerialized(t *testing.T) []byte {
	e := sim.NewEngine()
	cols, all := sc.build(t, e, nil)
	joins := make([]*sim.Group, len(sc.jobs))
	for j, job := range sc.jobs {
		j, job, col := j, job, cols[j]
		_, join := mpp.Run(e, job.nRanks, fmt.Sprintf("job%d", j), func(p *mpp.Proc) {
			if j > 0 {
				joins[j-1].Wait(p.Proc)
			}
			r := p.Rank()
			for wi, w := range job.writes {
				if err := col.WriteAll(p, w.reqs[r], w.bufs[r]); err != nil {
					t.Errorf("seed %d job %d write %d rank %d: %v", sc.seed, j, wi, r, err)
					return
				}
			}
			// Fresh buffers so the serialized run's read checks are
			// independent of the scheduled run's.
			buf := make([]byte, len(job.read.bufs[r]))
			if err := col.ReadAll(p, job.read.reqs[r], buf); err != nil {
				t.Errorf("seed %d job %d read rank %d: %v", sc.seed, j, r, err)
				return
			}
			if !bytes.Equal(buf, job.read.expect[r]) {
				t.Errorf("seed %d job %d rank %d: serialized read diverged from reference model", sc.seed, j, r)
			}
		})
		joins[j] = join
	}
	e.Go("driver", func(sp *sim.Proc) { joins[len(joins)-1].Wait(sp) })
	if err := e.Run(); err != nil {
		t.Fatalf("seed %d: %v", sc.seed, err)
	}
	return readAllBlocks(t, all)
}

// TestDifferentialMultijob: 18 seeded scenarios sweeping store kind ×
// layout × policy × worker count × lane configs. Scheduled and
// serialized executions must produce byte-identical images, both equal
// to the serial reference model.
func TestDifferentialMultijob(t *testing.T) {
	for seed := int64(0); seed < 18; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			sc := genMultijob(seed)
			scheduled := sc.runScheduled(t)
			serialized := sc.runSerialized(t)
			if !bytes.Equal(scheduled, serialized) {
				t.Fatalf("seed %d: scheduled image diverges from serialized image", seed)
			}
			var ref []byte
			for _, job := range sc.jobs {
				ref = append(ref, job.ref...)
			}
			if !bytes.Equal(scheduled, ref) {
				t.Fatalf("seed %d: scheduled image diverges from reference model", seed)
			}
		})
	}
}
