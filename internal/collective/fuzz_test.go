// Fuzz target for the planner's domain splitting. The fuzzer decodes
// arbitrary bytes into request lists over the planFixture group and, on
// every accepted plan, checks the invariants the two-phase engine
// relies on:
//
//   - domains are contiguous, disjoint, and cover the covered-index
//     space [0, total) exactly, with only the final nonempty domain
//     ragged;
//   - every requested block lands in exactly one domain (each rank's
//     clips across all domains sum to its requested blocks);
//   - forEachDomainSpan tiles each domain exactly, ascending, with
//     contiguous domain-buffer offsets;
//   - the locality assignment always picks a participating rank — the
//     one with the largest byte share, lowest rank on ties — and
//     round-robin assignment is untouched when Locality is off.
//
// Run as `go test -fuzz=FuzzPlanDomains ./internal/collective` for
// coverage-guided exploration; the seed corpus keeps it exercised as a
// plain test (CI runs a -fuzztime=10s smoke on top).
package collective

import (
	"testing"

	"repro/internal/blockio"
)

// fuzzPlanInput decodes data into (nRanks, naggs, locality, write,
// reqs, bufs). Segment triples are (rank, start, n) bytes over the
// 12-block planFixture group; buffer offsets are assigned sequentially
// per rank so buffer validation never rejects what block validation
// would accept.
func fuzzPlanInput(data []byte) (nRanks, naggs int, opts Options, write bool, reqs [][]VecReq, bufs [][]byte) {
	if len(data) < 3 {
		return 0, 0, Options{}, false, nil, nil
	}
	nRanks = int(data[0])%8 + 1
	naggs = int(data[1])%8 + 1
	if naggs > nRanks {
		naggs = nRanks
	}
	opts = Options{Locality: data[2]&1 != 0, LastWriterWins: data[2]&2 != 0}
	write = data[2]&4 != 0
	reqs = make([][]VecReq, nRanks)
	bufs = make([][]byte, nRanks)
	offs := make([]int64, nRanks)
	const bs = 64
	for p := 3; p+3 <= len(data); p += 3 {
		r := int(data[p]) % nRanks
		gb := int64(data[p+1]) % 12
		n := int64(data[p+2])%4 + 1
		if gb+n > 12 {
			n = 12 - gb
		}
		// Global [0,12) = file 0 [0,8) ++ file 1 [0,4); split at the
		// boundary like real request builders do.
		for n > 0 {
			file, blk, lim := 0, gb, int64(8)
			if gb >= 8 {
				file, blk, lim = 1, gb-8, 4
			}
			take := n
			if blk+take > lim {
				take = lim - blk
			}
			reqs[r] = append(reqs[r], VecReq{File: file, Vec: blockio.Vec{{Block: blk, N: take, BufOff: offs[r]}}})
			offs[r] += take * bs
			gb += take
			n -= take
		}
	}
	for r := range bufs {
		bufs[r] = make([]byte, offs[r])
	}
	return nRanks, naggs, opts, write, reqs, bufs
}

func FuzzPlanDomains(f *testing.F) {
	g := planFixture(f)
	// Seed corpus: empty, single-rank dense, strided multi-rank, ragged
	// tails, overlapping writers, locality + LWW flag mixes.
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0})
	f.Add([]byte{1, 4, 1, 0, 0, 3, 1, 4, 3, 2, 9, 1})
	f.Add([]byte{8, 3, 5, 0, 0, 0, 1, 1, 0, 2, 2, 0, 3, 3, 0, 4, 4, 0})
	f.Add([]byte{4, 8, 7, 0, 0, 3, 1, 2, 3, 2, 4, 3, 3, 6, 3})
	f.Add([]byte{2, 2, 3, 0, 0, 3, 1, 1, 3}) // cross-rank overlap, LWW write
	f.Fuzz(func(t *testing.T, data []byte) {
		nRanks, naggs, opts, write, reqs, bufs := fuzzPlanInput(data)
		if nRanks == 0 {
			return
		}
		pl, err := buildPlan(g, reqs, bufs, naggs, write, opts)
		if err != nil {
			return // rejected input: the validator at work, not a plan
		}

		// Domains: contiguous, disjoint, exact cover, ragged only at the
		// tail of the nonempty prefix.
		var covered int64
		prevHi := int64(0)
		for a := 0; a < naggs; a++ {
			lo, hi := pl.domain(a)
			if lo != prevHi {
				t.Fatalf("domain %d starts at %d, want %d (gap or overlap)", a, lo, prevHi)
			}
			if hi < lo {
				t.Fatalf("domain %d inverted: [%d,%d)", a, lo, hi)
			}
			if hi-lo > pl.domBlocks {
				t.Fatalf("domain %d has %d blocks > domBlocks %d", a, hi-lo, pl.domBlocks)
			}
			if hi-lo < pl.domBlocks && hi != pl.total {
				t.Fatalf("domain %d short (%d blocks) but not the ragged tail", a, hi-lo)
			}
			covered += hi - lo
			prevHi = hi
		}
		if covered != pl.total || prevHi != pl.total {
			t.Fatalf("domains cover %d of %d covered blocks", covered, pl.total)
		}

		// The one-pass share table agrees with clip enumeration.
		for r := 0; r < nRanks; r++ {
			for a := 0; a < naggs; a++ {
				if pl.shares[r][a] != pl.clipBytes(r, a) {
					t.Fatalf("shares[%d][%d] = %d, clip enumeration says %d",
						r, a, pl.shares[r][a], pl.clipBytes(r, a))
				}
			}
		}

		// Every requested block lands in exactly one domain.
		for r := 0; r < nRanks; r++ {
			var want int64
			for _, q := range reqs[r] {
				for _, sg := range q.Vec {
					want += sg.N
				}
			}
			var got int64
			for a := 0; a < naggs; a++ {
				pl.forEachClip(r, a, func(c clip) { got += c.n })
			}
			if got != want {
				t.Fatalf("rank %d: clips cover %d blocks, requested %d", r, got, want)
			}
		}

		// Domain spans tile each domain exactly with contiguous buffer
		// offsets, inside the covered footprint.
		for a := 0; a < naggs; a++ {
			lo, hi := pl.domain(a)
			var n, nextOff int64
			lastEnd := int64(-1)
			pl.forEachDomainSpan(a, func(gb, cnt, domOff int64) {
				if cnt <= 0 {
					t.Fatalf("domain %d: empty span at %d", a, gb)
				}
				if gb <= lastEnd {
					t.Fatalf("domain %d: spans not ascending/disjoint at %d", a, gb)
				}
				if domOff != nextOff {
					t.Fatalf("domain %d: span at %d has domOff %d, want %d", a, gb, domOff, nextOff)
				}
				lastEnd = gb + cnt - 1
				n += cnt
				nextOff += cnt * pl.bs
			})
			if n != hi-lo {
				t.Fatalf("domain %d spans %d blocks, want %d", a, n, hi-lo)
			}
		}

		// Ownership: always a valid rank; locality picks the
		// largest-share participant (lowest rank on ties) for nonempty
		// domains; round-robin stays identity.
		if len(pl.owner) != naggs {
			t.Fatalf("owner table has %d entries, want %d", len(pl.owner), naggs)
		}
		for a := 0; a < naggs; a++ {
			own := pl.owner[a]
			if own < 0 || own >= nRanks {
				t.Fatalf("domain %d owned by rank %d of %d", a, own, nRanks)
			}
			if !opts.Locality {
				if own != a {
					t.Fatalf("round-robin domain %d owned by %d", a, own)
				}
				continue
			}
			lo, hi := pl.domain(a)
			if lo >= hi {
				continue // empty domains keep their round-robin rank
			}
			ownBytes := pl.clipBytes(own, a)
			if ownBytes <= 0 {
				t.Fatalf("locality domain %d owner %d holds no bytes of it", a, own)
			}
			for r := 0; r < nRanks; r++ {
				b := pl.clipBytes(r, a)
				if b > ownBytes || (b == ownBytes && r < own) {
					t.Fatalf("locality domain %d owned by %d (%d bytes) but rank %d holds %d",
						a, own, ownBytes, r, b)
				}
			}
		}
	})
}

// FuzzChunkDomains fuzzes the chunk splitting layered on the domain
// split: decoded like FuzzPlanDomains plus a chunk-size byte, it checks
// that chunk windows preserve the exact cover/disjointness invariants
// of the domains they tile:
//
//   - every domain's chunks are contiguous, disjoint, and cover the
//     domain exactly, ragged only at the domain's tail;
//   - every chunk is at most chunkBlocks blocks, and chunkBlocks bytes
//     never exceed ChunkBytes except for the single-oversized-segment
//     degenerations (sub-block ChunkBytes → one block; chunk larger
//     than a domain → clamped to the domain);
//   - rounds is exactly the chunk count of the largest domain, and
//     every domain is exhausted within it;
//   - per (rank, domain), the clips of the domain's chunk windows sum
//     to the domain's clips, with chunk-relative offsets tiling each
//     window in canonical order — the invariant the pipelined payload
//     cursors rely on;
//   - span windows tile each chunk exactly, like domain spans.
func FuzzChunkDomains(f *testing.F) {
	g := planFixture(f)
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{7, 1, 4, 1, 0, 0, 3, 1, 4, 3, 2, 9, 1})   // 1-block chunks
	f.Add([]byte{1, 8, 3, 5, 0, 0, 0, 1, 1, 0, 2, 2, 0})   // sub-block ChunkBytes
	f.Add([]byte{255, 4, 8, 7, 0, 0, 3, 1, 2, 3, 2, 4, 3}) // chunk > domain
	f.Add([]byte{130, 2, 2, 3, 0, 0, 3, 1, 1, 3})          // odd chunk, LWW overlap
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 1 {
			return
		}
		// Chunk sizes sweep sub-block, exact-block, odd multiples and
		// larger-than-footprint (bs = 64 in the fixture).
		chunkBytes := []int64{1, 7, 63, 64, 65, 128, 130, 3 * 64, 1 << 20}[int(data[0])%9]
		nRanks, naggs, opts, write, reqs, bufs := fuzzPlanInput(data[1:])
		if nRanks == 0 {
			return
		}
		opts.ChunkBytes = chunkBytes
		pl, err := buildPlan(g, reqs, bufs, naggs, write, opts)
		if err != nil {
			return // rejected input: the validator at work, not a plan
		}
		if pl.total == 0 {
			if pl.rounds != 0 {
				t.Fatalf("empty footprint planned %d rounds", pl.rounds)
			}
			return
		}
		if pl.chunkBlocks < 1 {
			t.Fatalf("chunkBlocks = %d with ChunkBytes %d", pl.chunkBlocks, chunkBytes)
		}
		// Chunk size honors ChunkBytes except the two documented
		// oversized degenerations.
		maxBytes := chunkBytes
		if maxBytes < pl.bs {
			maxBytes = pl.bs // sub-block chunks round up to one block
		}
		if pl.chunkBlocks*pl.bs > maxBytes && pl.chunkBlocks != pl.domBlocks {
			t.Fatalf("chunkBlocks %d (%d bytes) exceeds ChunkBytes %d without domain clamp",
				pl.chunkBlocks, pl.chunkBlocks*pl.bs, chunkBytes)
		}
		wantRounds := int((pl.domBlocks + pl.chunkBlocks - 1) / pl.chunkBlocks)
		if pl.rounds != wantRounds {
			t.Fatalf("rounds = %d, want %d (domBlocks %d, chunkBlocks %d)",
				pl.rounds, wantRounds, pl.domBlocks, pl.chunkBlocks)
		}
		for a := 0; a < naggs; a++ {
			dLo, dHi := pl.domain(a)
			prevHi := dLo
			sawShort := false
			for c := 0; c < pl.rounds; c++ {
				lo, hi := pl.chunkWindow(a, c)
				if lo != prevHi {
					t.Fatalf("domain %d chunk %d starts at %d, want %d (gap or overlap)", a, c, lo, prevHi)
				}
				if hi < lo || hi-lo > pl.chunkBlocks {
					t.Fatalf("domain %d chunk %d spans [%d,%d), chunkBlocks %d", a, c, lo, hi, pl.chunkBlocks)
				}
				if sawShort && hi > lo {
					t.Fatalf("domain %d chunk %d nonempty after a short chunk", a, c)
				}
				if hi-lo < pl.chunkBlocks {
					sawShort = true
				}
				prevHi = hi

				// Span windows tile the chunk with contiguous offsets.
				var n, nextOff int64
				pl.forEachSpanWin(lo, hi, func(gb, cnt, off int64) {
					if cnt <= 0 {
						t.Fatalf("domain %d chunk %d: empty span", a, c)
					}
					if off != nextOff {
						t.Fatalf("domain %d chunk %d: span offset %d, want %d", a, c, off, nextOff)
					}
					n += cnt
					nextOff += cnt * pl.bs
				})
				if n != hi-lo {
					t.Fatalf("domain %d chunk %d spans %d blocks, want %d", a, c, n, hi-lo)
				}
			}
			if prevHi != dHi {
				t.Fatalf("domain %d chunks end at %d, domain ends at %d", a, prevHi, dHi)
			}

			// Chunk clips refine domain clips exactly, per rank.
			for r := 0; r < nRanks; r++ {
				var domBlocksClipped, chunkBlocksClipped int64
				pl.forEachClip(r, a, func(cl clip) { domBlocksClipped += cl.n })
				for c := 0; c < pl.rounds; c++ {
					lo, hi := pl.chunkWindow(a, c)
					var prevOff int64 = -1
					pl.forEachClipWin(r, lo, hi, func(cl clip) {
						chunkBlocksClipped += cl.n
						if cl.domOff < 0 || cl.domOff+cl.n*pl.bs > (hi-lo)*pl.bs {
							t.Fatalf("domain %d chunk %d rank %d: clip outside the window", a, c, r)
						}
						// Nondecreasing, not strictly increasing: a read
						// may name one block in several segments.
						if cl.domOff < prevOff {
							t.Fatalf("domain %d chunk %d rank %d: clips out of order", a, c, r)
						}
						prevOff = cl.domOff
					})
				}
				if domBlocksClipped != chunkBlocksClipped {
					t.Fatalf("domain %d rank %d: chunk clips cover %d blocks, domain clips %d",
						a, r, chunkBlocksClipped, domBlocksClipped)
				}
			}
		}
	})
}
