package collective

import (
	"bytes"
	"testing"

	"repro/internal/probe"
)

// TestTraceDeterminism512 is the fence for the flight recorder itself:
// the 512-rank contended pipelined scenario, run twice on fresh engines
// with a recorder attached across every layer, must export byte-identical
// Chrome trace JSON and byte-identical metrics tables. Any wall-clock
// leakage into span timestamps, map-iteration ordering on the export
// path, or nondeterministic track/span registration order breaks this.
// The CI race job runs this package, so the same fence also holds under
// -race.
func TestTraceDeterminism512(t *testing.T) {
	const nRanks = 512
	run := func() ([]byte, []byte, detResult) {
		rec := probe.New()
		res := runDeterminismScenario(t, nRanks, rec)
		var trace bytes.Buffer
		if err := rec.WriteChromeTrace(&trace); err != nil {
			t.Fatal(err)
		}
		return trace.Bytes(), []byte(rec.Metrics().Table().String()), res
	}
	trA, mA, a := run()
	trB, mB, _ := run()
	if a.writeErr != nil || a.readErr != nil {
		t.Fatalf("collective failed: write=%v read=%v", a.writeErr, a.readErr)
	}
	if len(trA) == 0 || !bytes.Contains(trA, []byte(`"cat":"collective"`)) {
		t.Fatalf("trace missing collective spans (%d bytes)", len(trA))
	}
	if !bytes.Equal(trA, trB) {
		t.Errorf("exported traces differ between runs (%d vs %d bytes)", len(trA), len(trB))
	}
	if !bytes.Equal(mA, mB) {
		t.Errorf("metrics tables differ between runs:\n--- run A\n%s--- run B\n%s", mA, mB)
	}

	// Recording must not perturb the model: the same scenario without a
	// recorder lands on the same modeled observables.
	bare := runDeterminismScenario(t, nRanks, nil)
	if a.now != bare.now {
		t.Errorf("recorder changed modeled time: %v traced vs %v bare", a.now, bare.now)
	}
	if a.stats != bare.stats {
		t.Errorf("recorder changed LastStats:\n  traced %+v\n  bare   %+v", a.stats, bare.stats)
	}
	if a.msgs != bare.msgs || a.bytes != bare.bytes {
		t.Errorf("recorder changed Traffic: (%d, %d) traced vs (%d, %d) bare",
			a.msgs, a.bytes, bare.msgs, bare.bytes)
	}

	// Round-trip sanity: the exported trace parses back and re-exports
	// byte-identically (parioctl trace depends on this).
	parsed, err := probe.ReadChromeTrace(bytes.NewReader(trA))
	if err != nil {
		t.Fatalf("ReadChromeTrace: %v", err)
	}
	var re bytes.Buffer
	if err := parsed.WriteChromeTrace(&re); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(re.Bytes(), trA) {
		t.Error("trace does not survive a parse/re-export round trip")
	}
}
