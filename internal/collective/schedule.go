// Schedule capture & replay: amortizing the collective's scheduling
// work across iterative workloads.
//
// The paper's headline workload — and every checkpoint-every-iteration
// loop — issues the *same* request lists over and over with fresh data
// in the buffers. Rebuilding the whole schedule per call (buildPlan's
// validation, sort and union merge, chooseRoute's pricing, the
// per-domain BatchVec map→sort→merge) throws that repetition away;
// Thakur/Gropp/Lusk note that collective optimization cost must be
// amortized over repeated accesses, and ViPIOS precomputes server-side
// access profiles for the same reason.
//
// The cache is transparent and first-call: rank 0 fingerprints the
// gathered request lists after the entry barrier, and a hit replays the
// frozen schedule — the validated plan, the domain→aggregator
// assignment, the chosen route, the per-domain prepared
// blockio.BatchPlans, the pipelined aggregator state, and the
// LastWriterWins clips — rebinding only the callers' buffers and
// packing fresh payloads. Everything frozen is a pure function of the
// request values and the machine model, so a replayed call is
// bit-identical in modeled time and probe trace to a fresh build; the
// win is host wall-clock and allocations.
//
// Invalidation is epoch-based: SetOptions flushes the handle's cache
// (Options shape every planning decision), and the group's model epoch
// (mpp.Group.ModelEpoch, bumped by SetLink/SetBisection/
// SetBisectionPool/SetTopology) is checked per call so reconfiguring
// the interconnect forces a rebuild — the route chooser priced the old
// model. The store's drive parameters are immutable after construction,
// so no device epoch is needed. A small LRU (Options.PlanCache) keeps
// several schedules so multi-pattern jobs don't thrash.

package collective

import (
	"time"

	"repro/internal/blockio"
	"repro/internal/mpp"
)

// defaultPlanCacheCap is the schedule-LRU capacity Options.PlanCache 0
// selects: enough for a few concurrent access patterns (checkpoint +
// restart + analysis dump) without retaining unbounded plan memory.
const defaultPlanCacheCap = 8

// schedule is one frozen collective schedule: everything derivable from
// the request values and the machine model, none of it referencing the
// callers' buffers. Immutable once built except for the lazily
// constructed per-rank/per-domain execution state, which is itself a
// pure function of the plan (laziness is a host-memory optimization and
// never moves virtual time).
type schedule struct {
	pl    *plan
	route route
	stats ExchangeStats // byte split only; time fields stay zero

	key uint64   // fingerprint hash (fast reject)
	sig []uint64 // full flattened signature (exact compare on lookup)

	// minBuf[r] is the smallest buffer length rank r's requests address;
	// a replayed call with a shorter buffer falls back to buildPlan so
	// the bounds error is byte-identical to the uncached path.
	minBuf []int64
	// ownedOf[r] lists the domains rank r aggregates, ascending —
	// including empty past-the-footprint domains, mirroring the
	// enumeration the execution paths historically did per call.
	ownedOf [][]int
	// maxSegRank is the highest rank with a nonempty footprint (-1 when
	// no rank requested anything): clipLWW's no-higher-writers fast path
	// in one comparison.
	maxSegRank int

	// Lazily built execution state. bplans[a] is domain a's prepared
	// single-window batch plan (single-shot and nonblocking paths);
	// aggs[r] is rank r's pipelined aggregator state (chunk-cut batch
	// plans plus double-buffered staging); lww[r] holds rank r's
	// LastWriterWins-clipped requests, rebuilt from the plan's own
	// segments so no caller slice is retained across calls.
	bplans []*blockio.BatchPlan
	aggs   []*aggState
	lww    [][]VecReq
	lwwSet []bool
}

// CacheStats is a point-in-time snapshot of a handle's schedule cache:
// replayed calls (Hits), full builds (Misses — including all calls on a
// disabled cache), schedules dropped by capacity (Evictions), and
// wholesale flushes from SetOptions or a model-epoch change
// (Invalidations). Entries is the current cache population.
type CacheStats struct {
	Hits, Misses, Evictions, Invalidations uint64
	Entries                                int
}

// PlanCacheStats snapshots the handle's schedule-cache counters. Valid
// between collective calls, like LastStats.
func (c *Collective) PlanCacheStats() CacheStats {
	return CacheStats{
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
		Invalidations: c.invalidations, Entries: len(c.cached),
	}
}

// SetOptions replaces the handle's options between collective calls,
// recomputing the aggregator count exactly as Open does and flushing
// the schedule cache — every cached decision (domain split, route,
// chunking, service binding) was shaped by the old options. Call it
// from one place between operations (not concurrently with a
// collective), like the mpp model setters.
func (c *Collective) SetOptions(opts Options) {
	c.opts = opts
	naggs := opts.Aggregators
	if naggs <= 0 {
		naggs = c.group.Store().Devices()
	}
	if naggs > c.size {
		naggs = c.size
	}
	c.naggs = naggs
	c.cacheCap = planCacheCap(opts.PlanCache)
	c.flushSchedules()
}

// InvalidateSchedules drops every cached schedule. The handle does this
// itself on SetOptions and on model-epoch changes; the explicit form is
// for callers that mutate state the handle cannot observe.
func (c *Collective) InvalidateSchedules() { c.flushSchedules() }

func (c *Collective) flushSchedules() {
	if len(c.cached) == 0 {
		return
	}
	c.invalidations++
	for i := range c.cached {
		c.cached[i] = nil
	}
	c.cached = c.cached[:0]
}

// planCacheCap resolves the Options.PlanCache knob: 0 = default
// capacity, negative = caching disabled.
func planCacheCap(v int) int {
	switch {
	case v == 0:
		return defaultPlanCacheCap
	case v < 0:
		return 0
	}
	return v
}

// modelStamp identifies the interconnect model a schedule was priced
// under. The epoch catches reconfiguration of one group; the raw
// parameters additionally catch a handle migrating between groups whose
// epochs happen to collide.
type modelStamp struct {
	epoch    uint64
	msg      time.Duration
	bps, bis float64
}

func stampOf(p *mpp.Proc) modelStamp {
	st := modelStamp{epoch: p.ModelEpoch()}
	st.msg, st.bps, st.bis = p.LinkModel()
	return st
}

// scheduleFor resolves the schedule for the current call: a cache hit
// replays the frozen schedule, a miss (or a disabled cache) builds it
// fresh — buildPlan, chooseRoute, the byte-split stats — and inserts
// it. Runs on rank 0 between the plan barriers; pure host work, no
// virtual time.
func (c *Collective) scheduleFor(p *mpp.Proc, write bool) (*schedule, error) {
	if st := stampOf(p); st != c.cacheStamp {
		c.flushSchedules()
		c.cacheStamp = st
	}
	key, sig := c.fingerprint(write)
	if c.cacheCap > 0 {
		for i, sd := range c.cached {
			if sd.key != key || !sigEqual(sd.sig, sig) {
				continue
			}
			if !c.bufsFit(sd) {
				// A replay would skip validation; rebuild so the bounds
				// error is byte-identical to the uncached path.
				break
			}
			copy(c.cached[1:i+1], c.cached[:i]) // move to front (MRU)
			c.cached[0] = sd
			c.hits++
			return sd, nil
		}
	}
	c.misses++
	pl, err := buildPlan(c.group, c.reqs, c.bufs, c.naggs, write, c.opts)
	if err != nil {
		return nil, err
	}
	sd := c.newSchedule(p, pl, write, key, sig)
	if c.cacheCap > 0 {
		if len(c.cached) >= c.cacheCap {
			last := len(c.cached) - 1
			c.cached[last] = nil
			c.cached = c.cached[:last]
			c.evictions++
		}
		c.cached = append(c.cached, nil)
		copy(c.cached[1:], c.cached)
		c.cached[0] = sd
	}
	return sd, nil
}

// newSchedule freezes a fresh plan into a schedule: route choice,
// byte-split stats, the per-rank owned-domain lists and buffer bounds.
// The signature is copied so no fingerprint scratch is retained.
func (c *Collective) newSchedule(p *mpp.Proc, pl *plan, write bool, key uint64, sig []uint64) *schedule {
	sd := &schedule{
		pl:         pl,
		key:        key,
		sig:        append([]uint64(nil), sig...),
		minBuf:     make([]int64, c.size),
		ownedOf:    make([][]int, c.size),
		maxSegRank: -1,
		bplans:     make([]*blockio.BatchPlan, pl.naggs),
	}
	sd.route = c.chooseRoute(p, pl, write)
	sd.stats = pl.exchangeStats(c.size)
	for a := 0; a < pl.naggs; a++ {
		r := pl.owner[a]
		sd.ownedOf[r] = append(sd.ownedOf[r], a)
	}
	for r, segs := range pl.segs {
		if len(segs) > 0 {
			sd.maxSegRank = r
		}
		for _, sg := range segs {
			if end := sg.bufOff + sg.n*pl.bs; end > sd.minBuf[r] {
				sd.minBuf[r] = end
			}
		}
	}
	if pl.rounds > 0 {
		sd.aggs = make([]*aggState, c.size)
	}
	return sd
}

// bufsFit reports whether every rank's current buffer is long enough
// for the schedule's requests — the only buffer-dependent validation
// buildPlan performs.
func (c *Collective) bufsFit(sd *schedule) bool {
	for r, min := range sd.minBuf {
		if int64(len(c.bufs[r])) < min {
			return false
		}
	}
	return true
}

// fingerprint flattens the gathered request lists (and the call
// direction) into the handle's signature scratch and hashes it. The
// signature captures everything buildPlan reads from the requests —
// per-rank list shapes, file indexes, and every segment's (Block, N,
// BufOff) — so equal signatures mean value-identical requests.
func (c *Collective) fingerprint(write bool) (key uint64, sig []uint64) {
	s := c.sigScratch[:0]
	w := uint64(0)
	if write {
		w = 1
	}
	s = append(s, w)
	for r, rr := range c.reqs {
		if len(rr) == 0 {
			continue
		}
		s = append(s, uint64(r)<<32|uint64(len(rr)))
		for _, q := range rr {
			s = append(s, uint64(q.File)<<32|uint64(len(q.Vec)))
			for _, sg := range q.Vec {
				s = append(s, uint64(sg.Block), uint64(sg.N), uint64(sg.BufOff))
			}
		}
	}
	c.sigScratch = s
	// FNV-1a over the words; collisions are harmless (sig is compared
	// exactly on lookup), the hash only short-circuits mismatches.
	h := uint64(14695981039346656037)
	for _, v := range s {
		h = (h ^ v) * 1099511628211
	}
	return h, s
}

func sigEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}

// batchPlan returns domain a's prepared single-window batch plan,
// building it on first use. The plan is buffer-less — the domain
// staging buffer binds at issue time — so one plan serves every
// iteration and every entry point (blocking and nonblocking alike).
func (sd *schedule) batchPlan(c *Collective, a int) (*blockio.BatchPlan, error) {
	if bp := sd.bplans[a]; bp != nil {
		return bp, nil
	}
	bp, err := c.domainBatchVec(sd.pl, a).Plan(nil)
	if err != nil {
		// Unreachable in practice: domain batches are derived from
		// validated, physically disjoint covered spans.
		return nil, err
	}
	sd.bplans[a] = bp
	return bp, nil
}

// issueDomain moves domain a between the device array and dombuf
// through the schedule's prepared plan — one window covering the whole
// domain, each merged run one device request, runs in parallel across
// devices (the single-shot schedule's access phase).
func (sd *schedule) issueDomain(c *Collective, p *mpp.Proc, a int, dombuf []byte, write bool) error {
	bp, err := sd.batchPlan(c, a)
	if err != nil {
		return err
	}
	if write {
		return bp.WriteWindow(p.Proc, 0, dombuf, 0)
	}
	return bp.ReadWindow(p.Proc, 0, dombuf, 0)
}

// aggState returns rank's pipelined aggregator state (chunk-cut batch
// plans, double-buffered staging), building it on first use.
func (sd *schedule) aggState(c *Collective, rank int, owned []int) (*aggState, error) {
	if s := sd.aggs[rank]; s != nil {
		return s, nil
	}
	s, err := c.newAggState(sd.pl, owned)
	if err == nil {
		sd.aggs[rank] = s
	}
	return s, err
}

// lwwReqs returns rank's LastWriterWins-clipped write requests for the
// independent routes. The no-higher-writers fast path returns the
// caller's own request list (value-identical to the one the schedule
// was built from — the fingerprint matched); the clipped rebuild is
// derived from the plan's segments only, so caching it retains no
// caller slice.
func (sd *schedule) lwwReqs(c *Collective, rank int) []VecReq {
	if rank >= sd.maxSegRank {
		return c.reqs[rank]
	}
	if sd.lww == nil {
		sd.lww = make([][]VecReq, len(sd.pl.segs))
		sd.lwwSet = make([]bool, len(sd.pl.segs))
	}
	if !sd.lwwSet[rank] {
		sd.lww[rank] = c.clipLWW(sd.pl, rank)
		sd.lwwSet[rank] = true
	}
	return sd.lww[rank]
}

// domBufs returns rank's owned-domain staging buffers sized for the
// plan, reusing the handle's per-rank retained scratch (grown as
// needed, never shrunk). Safe to reuse without zeroing: write domains
// are fully covered by the ranks' clips (domains tile the covered
// footprint) and read domains are fully overwritten by the device
// read, so stale bytes never travel.
func (c *Collective) domBufs(rank int, pl *plan, owned []int) [][]byte {
	bufs := c.domScr[rank]
	if cap(bufs) < len(owned) {
		bufs = append(bufs[:cap(bufs)], make([][]byte, len(owned)-cap(bufs))...)
	}
	bufs = bufs[:len(owned)]
	for i, a := range owned {
		lo, hi := pl.domain(a)
		n := (hi - lo) * pl.bs
		if int64(cap(bufs[i])) < n {
			bufs[i] = make([]byte, n)
		}
		bufs[i] = bufs[i][:n]
	}
	c.domScr[rank] = bufs
	return bufs
}
