// Schedule capture & replay tests: a replayed iteration must be
// bit-identical — modeled time, stats, traffic, probe trace, data — to
// the same iteration planned from scratch, and every invalidation
// trigger (SetOptions, link-model reconfiguration, topology changes,
// undersized buffers) must force a rebuild that still matches the
// uncached path exactly.

package collective

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"testing"
	"time"

	"repro/internal/blockio"
	"repro/internal/device"
	"repro/internal/mpp"
	"repro/internal/pfs"
	"repro/internal/probe"
	"repro/internal/sim"
)

// replayContent is the byte written at offset i of a rank's buffer in
// iteration it — every iteration writes fresh data, so a replay that
// reused stale payloads would be caught by the read-back.
func replayContent(it, rank int, i int64) byte {
	return byte(7*it + 13*rank + int(i)*3 + 1)
}

// replayScn is one iterated checkpoint scenario: every rank writes the
// same interleaved footprint each iteration with fresh contents, then
// reads it back.
type replayScn struct {
	nRanks, iters int
	opts          Options
	// mutate, when set, runs on rank 0 before iteration it's write
	// (it ≥ 1) — the hook the invalidation tests use to change options
	// or the interconnect model mid-loop.
	mutate func(it int, col *Collective, mg *mpp.Group)
	// bufLen, when set, overrides the write-buffer length for (it, rank)
	// (return <0 for the full length) — the bounds-error test's hook.
	bufLen func(it, rank int) int64
}

// replayObs is everything observable about one scenario run.
type replayObs struct {
	now       time.Duration
	iterDur   []time.Duration
	rankHash  []uint64
	imageHash uint64
	iterErrs  []string
	cache     CacheStats
	trace     []byte
	metrics   []byte
}

// runReplayScenario executes the scenario on a fresh simulated machine.
// cache=false disables the schedule cache (PlanCache -1), everything
// else identical — the comparison baseline.
func runReplayScenario(t *testing.T, scn replayScn, cache bool, rec *probe.Recorder) replayObs {
	t.Helper()
	const perRank = 4
	e := sim.NewEngine()
	geom := device.Geometry{BlockSize: testBS, BlocksPerCyl: 8, Cylinders: 64}
	disks := make([]*device.Disk, 8)
	for i := range disks {
		disks[i] = device.New(device.Config{
			Name: fmt.Sprintf("d%d", i), Geometry: geom, Engine: e,
		})
	}
	store, err := blockio.NewDirect(disks)
	if err != nil {
		t.Fatal(err)
	}
	vol := pfs.NewVolume(store)
	nBlocks := int64(perRank * scn.nRanks)
	if _, err := vol.Create(pfs.Spec{
		Name: "chk", Org: pfs.OrgSequential, RecordSize: testBS,
		NumRecords: nBlocks, Placement: pfs.PlaceStriped, StripeUnitFS: 1,
	}); err != nil {
		t.Fatal(err)
	}
	g, err := vol.OpenGroup("chk")
	if err != nil {
		t.Fatal(err)
	}
	opts := scn.opts
	if !cache {
		opts.PlanCache = -1
	}
	col, err := Open(g, scn.nRanks, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rec != nil {
		e.SetProbe(rec)
		for _, d := range disks {
			d.SetProbe(rec)
		}
		store.SetProbe(rec)
	}
	obs := replayObs{
		iterDur:  make([]time.Duration, scn.iters),
		rankHash: make([]uint64, scn.nRanks),
		iterErrs: make([]string, scn.iters),
	}
	var mg *mpp.Group
	var join *sim.Group
	mg, join = mpp.Run(e, scn.nRanks, "rp", func(p *mpp.Proc) {
		rank := p.Rank()
		// Blocks rank + k·nRanks, k in [0, perRank): interleaved, every
		// aggregator hears from many ranks.
		var vec blockio.Vec
		for k := int64(0); k < perRank; k++ {
			vec = append(vec, blockio.VecSeg{
				Block: int64(rank) + k*int64(scn.nRanks), N: 1, BufOff: k * testBS,
			})
		}
		reqs := []VecReq{{File: 0, Vec: vec}}
		buf := make([]byte, perRank*testBS)
		rbuf := make([]byte, perRank*testBS)
		h := fnv.New64a()
		for it := 0; it < scn.iters; it++ {
			if rank == 0 && scn.mutate != nil && it > 0 {
				scn.mutate(it, col, mg)
			}
			for i := range buf {
				buf[i] = replayContent(it, rank, int64(i))
			}
			wbuf := buf
			if scn.bufLen != nil {
				if n := scn.bufLen(it, rank); n >= 0 {
					wbuf = buf[:n]
				}
			}
			t0 := p.Now()
			werr := col.WriteAll(p, reqs, wbuf)
			rerr := col.ReadAll(p, reqs, rbuf)
			if rank == 0 {
				obs.iterDur[it] = p.Now() - t0
				var es string
				if werr != nil {
					es = "write: " + werr.Error()
				}
				if rerr != nil {
					es += " read: " + rerr.Error()
				}
				obs.iterErrs[it] = es
			}
			if werr == nil && rerr == nil && scn.bufLen == nil && !bytes.Equal(rbuf, buf) {
				t.Errorf("iter %d rank %d: read back different bytes than written", it, rank)
			}
			h.Write(rbuf)
		}
		obs.rankHash[rank] = h.Sum64()
	})
	mg.SetLink(2*time.Microsecond, 100e6)
	mg.SetBisection(500e6)
	if rec != nil {
		mg.SetProbe(rec, "rp")
	}
	e.Go("join", func(sp *sim.Proc) { join.Wait(sp) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	obs.now = e.Now()
	obs.cache = col.PlanCacheStats()
	img := readAllBlocks(t, g)
	ih := fnv.New64a()
	ih.Write(img)
	obs.imageHash = ih.Sum64()
	if rec != nil {
		var tr bytes.Buffer
		if err := rec.WriteChromeTrace(&tr); err != nil {
			t.Fatal(err)
		}
		obs.trace = tr.Bytes()
		obs.metrics = []byte(rec.Metrics().Table().String())
	}
	return obs
}

// diffReplayObs asserts two runs observed the same modeled world —
// virtual time, per-iteration durations, data, errors, and (when
// recorded) byte-identical traces and metrics.
func diffReplayObs(t *testing.T, label string, a, b replayObs) {
	t.Helper()
	if a.now != b.now {
		t.Errorf("%s: final virtual time differs: %v vs %v", label, a.now, b.now)
	}
	for it := range a.iterDur {
		if a.iterDur[it] != b.iterDur[it] {
			t.Errorf("%s: iteration %d modeled duration differs: %v vs %v", label, it, a.iterDur[it], b.iterDur[it])
		}
		if a.iterErrs[it] != b.iterErrs[it] {
			t.Errorf("%s: iteration %d errors differ:\n  %q\n  %q", label, it, a.iterErrs[it], b.iterErrs[it])
		}
	}
	for r := range a.rankHash {
		if a.rankHash[r] != b.rankHash[r] {
			t.Errorf("%s: rank %d read different data between runs", label, r)
		}
	}
	if a.imageHash != b.imageHash {
		t.Errorf("%s: final images differ", label)
	}
	if !bytes.Equal(a.trace, b.trace) {
		t.Errorf("%s: exported traces differ (%d vs %d bytes)", label, len(a.trace), len(b.trace))
	}
	if !bytes.Equal(a.metrics, b.metrics) {
		t.Errorf("%s: metrics tables differ", label)
	}
}

// TestReplayBitIdentical runs the iterated checkpoint loop cached and
// uncached on every route family — single-shot two-phase, pipelined,
// auto, vectored and sieved (the latter two with LastWriterWins, so the
// cached LWW clips are exercised) — and requires bit-identical modeled
// observables and probe traces, while the cached run actually replays.
func TestReplayBitIdentical(t *testing.T) {
	cases := []struct {
		name string
		opts Options
	}{
		{"single-shot", Options{}},
		{"locality", Options{Locality: true}},
		{"pipelined", Options{ChunkBytes: 2 * testBS}},
		{"auto", Options{Strategy: blockio.StrategyAuto}},
		{"vectored-lww", Options{Strategy: blockio.StrategyVectored, LastWriterWins: true}},
		{"sieved-lww", Options{Strategy: blockio.StrategySieved, LastWriterWins: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			scn := replayScn{nRanks: 24, iters: 5, opts: tc.opts}
			run := func(cache bool) replayObs {
				return runReplayScenario(t, scn, cache, probe.New())
			}
			cached := run(true)
			fresh := run(false)
			diffReplayObs(t, tc.name, cached, fresh)
			// 5 iterations × (write + read) = 2 misses then 8 replays.
			if cached.cache.Hits != 8 || cached.cache.Misses != 2 {
				t.Errorf("cached run: got %d hits / %d misses, want 8 / 2 (stats %+v)",
					cached.cache.Hits, cached.cache.Misses, cached.cache)
			}
			if fresh.cache.Hits != 0 || fresh.cache.Misses != 10 {
				t.Errorf("uncached run: got %d hits / %d misses, want 0 / 10", fresh.cache.Hits, fresh.cache.Misses)
			}
		})
	}
}

// TestReplayInvalidation mutates the handle options (ChunkBytes, then
// Strategy) and the interconnect model (SetLink, then SetTopology)
// between iterations: every mutation must flush the cache, rebuild the
// schedule, and still match an uncached run bit for bit.
func TestReplayInvalidation(t *testing.T) {
	const nRanks = 24
	mutate := func(it int, col *Collective, mg *mpp.Group) {
		switch it {
		case 2:
			col.SetOptions(Options{ChunkBytes: 4 * testBS})
		case 4:
			col.SetOptions(Options{Strategy: blockio.StrategyVectored})
		case 6:
			mg.SetLink(5*time.Microsecond, 80e6)
		case 8:
			side := make([]int, nRanks)
			for i := range side {
				side[i] = i % 2
			}
			mg.SetTopology(side)
		}
	}
	scn := replayScn{nRanks: nRanks, iters: 10, mutate: mutate}
	cached := runReplayScenario(t, scn, true, probe.New())
	fresh := runReplayScenario(t, scn, false, probe.New())
	diffReplayObs(t, "invalidation", cached, fresh)
	// Write+read schedules rebuild at iteration 0 and after each of the
	// four mutations (iterations 2, 4, 6, 8); the odd iterations replay.
	st := cached.cache
	if st.Misses != 10 || st.Hits != 10 {
		t.Errorf("got %d misses / %d hits, want 10 / 10 (stats %+v)", st.Misses, st.Hits, st)
	}
	if st.Invalidations < 4 {
		t.Errorf("got %d invalidations, want ≥ 4 (one per mutation)", st.Invalidations)
	}
}

// TestReplayBufferBoundsError shrinks one rank's buffer on a later
// iteration of an otherwise-replayed pattern: the cache must fall back
// to a fresh build so the bounds error is byte-identical to the
// uncached path's, instead of silently replaying past the validation.
func TestReplayBufferBoundsError(t *testing.T) {
	scn := replayScn{
		nRanks: 8, iters: 4,
		bufLen: func(it, rank int) int64 {
			if it == 2 && rank == 5 {
				return 2 * testBS // last two segments now exceed the buffer
			}
			return -1
		},
	}
	cached := runReplayScenario(t, scn, true, nil)
	fresh := runReplayScenario(t, scn, false, nil)
	diffReplayObs(t, "bounds", cached, fresh)
	if cached.iterErrs[2] == "" {
		t.Fatal("truncated buffer produced no error")
	}
	if cached.iterErrs[2] != fresh.iterErrs[2] {
		t.Errorf("cached and uncached bounds errors differ:\n  %q\n  %q", cached.iterErrs[2], fresh.iterErrs[2])
	}
}

// TestReplayDeterminism512 is the replay determinism fence: a 512-rank
// contended pipelined checkpoint loop, replayed across 3 iterations
// with the cache enabled, run twice on fresh engines — every modeled
// observable must be bit-identical, and the cache must actually have
// replayed. The CI race job runs this package, so the same scenario is
// exercised under -race.
func TestReplayDeterminism512(t *testing.T) {
	scn := replayScn{nRanks: 512, iters: 3, opts: Options{ChunkBytes: 16 * testBS}}
	a := runReplayScenario(t, scn, true, nil)
	b := runReplayScenario(t, scn, true, nil)
	diffReplayObs(t, "determinism", a, b)
	if a.cache != b.cache {
		t.Errorf("cache stats differ between runs: %+v vs %+v", a.cache, b.cache)
	}
	if a.cache.Hits != 4 || a.cache.Misses != 2 {
		t.Errorf("got %d hits / %d misses, want 4 / 2 (stats %+v)", a.cache.Hits, a.cache.Misses, a.cache)
	}
	for it := range a.iterErrs {
		if a.iterErrs[it] != "" {
			t.Fatalf("iteration %d failed: %s", it, a.iterErrs[it])
		}
	}
}
