// Nonblocking, server-directed collective I/O: IWriteAll/IReadAll are
// the split-collective forms of WriteAll/ReadAll (the MPI_File_iwrite_all
// shape). The plan and exchange phases still run inline — they are
// collective by nature, every rank participates — but the device phase
// is enqueued on an ioserver.Job lane (Options.Service) and the call
// returns a Handle. Ranks overlap their own computation with the
// server's device work and rendezvous in Handle.Wait.
//
// The outcome is data-identical to the blocking call: for writes, the
// exchange and LastWriterWins overlap resolution complete before any
// batch is submitted, so domain buffers are final and the server may
// execute batches in any QoS order (domains are disjoint by
// construction); for reads, the delivery exchange runs inside Wait,
// after every owned domain has arrived from the devices. The
// differential harness's multijob phase enforces this equivalence
// against serialized execution.

package collective

import (
	"errors"
	"fmt"

	"repro/internal/ioserver"
	"repro/internal/mpp"
)

// Handle is an in-flight nonblocking collective. All ranks of the
// group receive the same Handle from one IWriteAll/IReadAll call and
// must each call Wait exactly once (Wait is itself collective); Test
// is local and may be called any number of times before Wait. A
// Collective may have several outstanding Handles, but their Waits
// must be issued in the same order on every rank.
type Handle struct {
	c     *Collective
	write bool
	sd    *schedule

	// Per-rank state, indexed by the owning rank.
	tickets [][]*ioserver.Request
	dombufs [][][]byte
	bufs    [][]byte
	errs    []error
}

// IWriteAll starts a nonblocking collective write: the exchange runs
// now, the aggregators' domain batches are enqueued on Options.Service,
// and the returned Handle completes once the server has written them.
// Requires Options.Service; see WriteAll for the blocking semantics the
// data outcome matches.
func (c *Collective) IWriteAll(p *mpp.Proc, reqs []VecReq, buf []byte) (*Handle, error) {
	return c.istart(p, true, reqs, buf)
}

// IReadAll starts a nonblocking collective read: the aggregators'
// domain batches are enqueued on Options.Service now, and Wait performs
// the delivery exchange once they have arrived. The rank's buffer is
// filled only after Wait returns.
func (c *Collective) IReadAll(p *mpp.Proc, reqs []VecReq, buf []byte) (*Handle, error) {
	return c.istart(p, false, reqs, buf)
}

// istart is the shared nonblocking prologue: plan, then the
// direction's eager half (writes: exchange + submit; reads: submit).
func (c *Collective) istart(p *mpp.Proc, write bool, reqs []VecReq, buf []byte) (*Handle, error) {
	if p.Size() != c.size {
		return nil, fmt.Errorf("collective: handle opened for %d ranks, called from a %d-rank group", c.size, p.Size())
	}
	if c.opts.Service == nil {
		// Uniform across ranks (shared Options), so every rank returns
		// here before the first barrier and the group stays aligned.
		return nil, fmt.Errorf("collective: nonblocking calls require Options.Service (an ioserver job lane)")
	}
	rank := p.Rank()
	c.reqs[rank], c.bufs[rank], c.errs[rank] = reqs, buf, nil
	p.Barrier()
	if rank == 0 {
		c.sched, c.plErr = c.scheduleFor(p, write)
		if c.plErr == nil {
			// LastStats reports the exchange byte split for nonblocking
			// calls too; the phase-time fields stay zero (the access
			// phase runs on the server's clock, not inside this call).
			c.stats = c.sched.stats
			c.hScratch = &Handle{
				c:       c,
				write:   write,
				sd:      c.sched,
				tickets: make([][]*ioserver.Request, c.size),
				dombufs: make([][][]byte, c.size),
				bufs:    make([][]byte, c.size),
				errs:    make([]error, c.size),
			}
		}
	}
	p.Barrier()
	if c.plErr != nil {
		return nil, c.plErr
	}
	h := c.hScratch
	sd := h.sd
	pl := sd.pl
	h.bufs[rank] = buf

	// Allocate this rank's owned-domain buffers. The buffers outlive the
	// call — the server holds them until the batches complete — so they
	// are fresh per call, never pooled (unlike the blocking path's).
	owned := sd.ownedOf[rank]
	for _, a := range owned {
		lo, hi := pl.domain(a)
		h.dombufs[rank] = append(h.dombufs[rank], make([]byte, (hi-lo)*pl.bs))
	}

	if write {
		// Writes exchange eagerly: once the domains are assembled (with
		// rank-order overlap resolution), the batches are self-contained
		// and the server may run them in any order.
		send := c.packRankMsgs(pl, rank, buf)
		recv := p.AlltoallvSparse(send)
		c.assembleDomains(pl, owned, recv, h.dombufs[rank])
		p.RecycleRecv(recv)
	}
	var aggErrs []error
	for i, a := range owned {
		lo, hi := pl.domain(a)
		bp, err := sd.batchPlan(c, a)
		if err != nil {
			// Unreachable in practice; surfaced through the Handle's
			// error slots so every rank still joins in Wait.
			aggErrs = append(aggErrs, err)
			continue
		}
		bytes := (hi - lo) * pl.bs
		var tk *ioserver.Request
		if write {
			tk = c.opts.Service.SubmitWritePlan(p.Proc, bp, h.dombufs[rank][i], bytes)
		} else {
			tk = c.opts.Service.SubmitReadPlan(p.Proc, bp, h.dombufs[rank][i], bytes)
		}
		h.tickets[rank] = append(h.tickets[rank], tk)
	}
	h.errs[rank] = errors.Join(aggErrs...)
	return h, nil
}

// Test reports whether this rank's server requests have completed —
// local, never parks, the MPI_Test shape. Ranks that aggregate no
// domain report true immediately; global completion is Wait's job.
func (h *Handle) Test(p *mpp.Proc) bool {
	for _, tk := range h.tickets[p.Rank()] {
		if !tk.Done() {
			return false
		}
	}
	return true
}

// Wait completes the collective: every rank parks until its own server
// requests finish, reads additionally run the delivery exchange, and
// all ranks return the same joined error — exactly the error contract
// of the blocking calls.
func (h *Handle) Wait(p *mpp.Proc) error {
	c, pl, rank := h.c, h.sd.pl, p.Rank()
	aggErrs := []error{h.errs[rank]} // istart's submission errors, if any
	for _, tk := range h.tickets[rank] {
		if err := tk.Wait(p.Proc); err != nil {
			aggErrs = append(aggErrs, err)
		}
	}
	h.errs[rank] = errors.Join(aggErrs...)
	if !h.write {
		// Delivery: the freshly read domains ship back to the ranks and
		// scatter into their buffers, as in the blocking read's tail.
		send := c.packDomainMsgs(pl, rank, h.sd.ownedOf[rank], h.dombufs[rank])
		recv := p.AlltoallvSparse(send)
		c.scatterRankMsgs(pl, rank, recv, h.bufs[rank])
		p.RecycleRecv(recv)
	}
	p.Barrier()
	var errs []error
	for r, err := range h.errs {
		if err != nil {
			errs = append(errs, fmt.Errorf("rank %d: %w", r, err))
		}
	}
	// Hold everyone until all ranks have read the error slots (the
	// blocking calls' reuse-visibility rule, TestCollectiveReuseErrorVisibility).
	p.Barrier()
	return errors.Join(errs...)
}
