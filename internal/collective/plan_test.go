package collective

import (
	"strings"
	"testing"

	"repro/internal/blockio"
	"repro/internal/device"
	"repro/internal/pfs"
)

// planFixture builds a 2-file group (8 + 4 fs blocks) over 2 untimed
// devices.
func planFixture(t testing.TB) *pfs.FileGroup {
	t.Helper()
	disks := make([]*device.Disk, 2)
	for i := range disks {
		disks[i] = device.New(device.Config{
			Geometry: device.Geometry{BlockSize: 64, BlocksPerCyl: 8, Cylinders: 64},
		})
	}
	store, err := blockio.NewDirect(disks)
	if err != nil {
		t.Fatal(err)
	}
	vol := pfs.NewVolume(store)
	for _, f := range []struct {
		name string
		recs int64
	}{{"a", 8}, {"b", 4}} {
		if _, err := vol.Create(pfs.Spec{
			Name: f.name, Org: pfs.OrgSequential, RecordSize: 64, NumRecords: f.recs,
		}); err != nil {
			t.Fatal(err)
		}
	}
	g, err := vol.OpenGroup("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPlanFootprintAndDomains(t *testing.T) {
	g := planFixture(t)
	bs := int64(64)
	// Rank 0: file a blocks [0,2) and [4,6); rank 1: file a [2,4) and
	// file b [1,3). Union: a[0,6) plus b[1,3) = global [0,6) and [9,11),
	// 8 covered blocks with a 3-block hole.
	reqs := [][]VecReq{
		{{File: 0, Vec: blockio.Vec{{Block: 0, N: 2, BufOff: 0}, {Block: 4, N: 2, BufOff: 2 * bs}}}},
		{{File: 0, Vec: blockio.Vec{{Block: 2, N: 2, BufOff: 0}}}, {File: 1, Vec: blockio.Vec{{Block: 1, N: 2, BufOff: 2 * bs}}}},
	}
	bufs := [][]byte{make([]byte, 4*bs), make([]byte, 4*bs)}
	pl, err := buildPlan(g, reqs, bufs, 3, true, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.covered) != 2 || pl.covered[0] != (span{gb: 0, n: 6}) || pl.covered[1] != (span{gb: 9, n: 2}) {
		t.Fatalf("covered = %+v", pl.covered)
	}
	if pl.total != 8 || pl.domBlocks != 3 {
		t.Fatalf("total %d domBlocks %d", pl.total, pl.domBlocks)
	}
	// Domains: [0,3), [3,6), [6,8) — the last ragged.
	for a, want := range [][2]int64{{0, 3}, {3, 6}, {6, 8}} {
		lo, hi := pl.domain(a)
		if lo != want[0] || hi != want[1] {
			t.Fatalf("domain %d = [%d,%d), want %v", a, lo, hi, want)
		}
	}
	if ci := pl.coveredIndex(9); ci != 6 {
		t.Fatalf("coveredIndex(9) = %d, want 6 (hole skipped)", ci)
	}
	// Rank 0 ∩ domain 1 = covered [3,6) ∩ rank-0 segs {[0,2),[4,6)}:
	// blocks 4,5 are covered indexes 4,5 → one 2-block clip at domOff bs.
	var clips []clip
	pl.forEachClip(0, 1, func(c clip) { clips = append(clips, c) })
	if len(clips) != 1 || clips[0] != (clip{n: 2, bufOff: 2 * bs, domOff: 1 * bs}) {
		t.Fatalf("clips(0,1) = %+v", clips)
	}
	// Domain 2 spans the hole: covered [6,8) = global [9,11) — one span.
	var spans [][3]int64
	pl.forEachDomainSpan(2, func(gb, n, off int64) { spans = append(spans, [3]int64{gb, n, off}) })
	if len(spans) != 1 || spans[0] != [3]int64{9, 2, 0} {
		t.Fatalf("domain 2 spans = %v", spans)
	}
	// Domain 0 covers global [0,3) entirely within file a.
	spans = nil
	pl.forEachDomainSpan(0, func(gb, n, off int64) { spans = append(spans, [3]int64{gb, n, off}) })
	if len(spans) != 1 || spans[0] != [3]int64{0, 3, 0} {
		t.Fatalf("domain 0 spans = %v", spans)
	}
}

// slabReqs builds one rank request covering global blocks [lo, hi) of
// file 0 with buffer offset 0 (planFixture's file a is 8 blocks).
func slabReqs(lo, hi int64) []VecReq {
	return []VecReq{{File: 0, Vec: blockio.Vec{{Block: lo, N: hi - lo, BufOff: 0}}}}
}

func TestPlanLocalityAssignment(t *testing.T) {
	g := planFixture(t)
	bs := int64(64)
	mkBufs := func(reqs [][]VecReq) [][]byte {
		bufs := make([][]byte, len(reqs))
		for i := range bufs {
			bufs[i] = make([]byte, 8*bs)
		}
		return bufs
	}

	t.Run("default is round-robin", func(t *testing.T) {
		reqs := [][]VecReq{slabReqs(6, 8), slabReqs(3, 6), slabReqs(0, 3)}
		pl, err := buildPlan(g, reqs, mkBufs(reqs), 3, true, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for a, r := range pl.owner {
			if r != a {
				t.Fatalf("default owner[%d] = %d, want %d", a, r, a)
			}
		}
	})

	t.Run("majority owner wins", func(t *testing.T) {
		// Reversed slabs: domain 0 = blocks [0,3) written by rank 2 (2
		// blocks) and rank 1 (1 block); domain 1 all rank 1; domain 2 all
		// rank 0.
		reqs := [][]VecReq{slabReqs(6, 8), slabReqs(2, 6), slabReqs(0, 2)}
		pl, err := buildPlan(g, reqs, mkBufs(reqs), 3, true, Options{Locality: true})
		if err != nil {
			t.Fatal(err)
		}
		if want := []int{2, 1, 0}; pl.owner[0] != want[0] || pl.owner[1] != want[1] || pl.owner[2] != want[2] {
			t.Fatalf("locality owners = %v, want %v", pl.owner, want)
		}
		st := pl.exchangeStats(3)
		// Only rank 1's block 2 lands in a domain (0) it does not own.
		if st.BytesMoved != 1*bs || st.BytesLocal != 7*bs {
			t.Fatalf("stats = %+v, want 1 block moved, 7 local", st)
		}
	})

	t.Run("tie goes to the lower rank", func(t *testing.T) {
		// One 4-block domain, ranks 1 and 2 own two blocks each.
		reqs := [][]VecReq{nil, slabReqs(0, 2), slabReqs(2, 4)}
		pl, err := buildPlan(g, reqs, mkBufs(reqs), 1, true, Options{Locality: true})
		if err != nil {
			t.Fatal(err)
		}
		if pl.owner[0] != 1 {
			t.Fatalf("tied domain owner = %d, want rank 1", pl.owner[0])
		}
	})

	t.Run("empty domains keep round-robin ranks", func(t *testing.T) {
		// 2 covered blocks over 3 domains of 1: the third domain is empty.
		reqs := [][]VecReq{slabReqs(0, 2), nil, nil}
		pl, err := buildPlan(g, reqs, mkBufs(reqs), 3, true, Options{Locality: true})
		if err != nil {
			t.Fatal(err)
		}
		if want := []int{0, 0, 2}; pl.owner[0] != want[0] || pl.owner[1] != want[1] || pl.owner[2] != want[2] {
			t.Fatalf("owners = %v, want %v", pl.owner, want)
		}
	})
}

func TestPlanLastWriterWinsOverlap(t *testing.T) {
	g := planFixture(t)
	bs := int64(64)
	buf := make([]byte, 8*bs)
	reqs := [][]VecReq{slabReqs(0, 4), slabReqs(2, 6)}
	bufs := [][]byte{buf, buf}
	if _, err := buildPlan(g, reqs, bufs, 2, true, Options{}); err == nil {
		t.Fatal("cross-rank write overlap accepted without LastWriterWins")
	}
	pl, err := buildPlan(g, reqs, bufs, 2, true, Options{LastWriterWins: true})
	if err != nil {
		t.Fatalf("LastWriterWins rejected the overlap: %v", err)
	}
	if pl.total != 6 {
		t.Fatalf("overlap footprint = %d blocks, want 6", pl.total)
	}
	// Same-rank overlaps stay rejected: their outcome has no rank order.
	self := [][]VecReq{{
		{File: 0, Vec: blockio.Vec{{Block: 0, N: 3, BufOff: 0}}},
		{File: 0, Vec: blockio.Vec{{Block: 2, N: 2, BufOff: 4 * bs}}},
	}}
	if _, err := buildPlan(g, self, [][]byte{buf}, 2, true, Options{LastWriterWins: true}); err == nil {
		t.Fatal("same-rank overlap accepted under LastWriterWins")
	}
}

func TestPlanValidation(t *testing.T) {
	g := planFixture(t)
	bs := int64(64)
	buf := make([]byte, 8*bs)
	cases := []struct {
		name  string
		reqs  [][]VecReq
		write bool
		want  string
	}{
		{"bad file", [][]VecReq{{{File: 7, Vec: blockio.Vec{{N: 1}}}}}, true, "file 7"},
		{"beyond file", [][]VecReq{{{File: 1, Vec: blockio.Vec{{Block: 3, N: 2}}}}}, true, "blocks [3,5)"},
		{"misaligned buffer", [][]VecReq{{{File: 0, Vec: blockio.Vec{{Block: 0, N: 1, BufOff: 13}}}}}, true, "not aligned"},
		{"buffer overflow", [][]VecReq{{{File: 0, Vec: blockio.Vec{{Block: 0, N: 8, BufOff: bs}}}}}, true, "exceed"},
		{"rank self overlap", [][]VecReq{{
			{File: 0, Vec: blockio.Vec{{Block: 0, N: 4, BufOff: 0}}},
			{File: 0, Vec: blockio.Vec{{Block: 3, N: 2, BufOff: 4 * bs}}},
		}}, true, "overlap at global block"},
		{"rank buffer overlap", [][]VecReq{{
			{File: 0, Vec: blockio.Vec{{Block: 0, N: 2, BufOff: 0}}},
			{File: 0, Vec: blockio.Vec{{Block: 4, N: 2, BufOff: bs}}},
		}}, true, "overlap in the buffer"},
		{"cross-rank write overlap", [][]VecReq{
			{{File: 0, Vec: blockio.Vec{{Block: 0, N: 4, BufOff: 0}}}},
			{{File: 0, Vec: blockio.Vec{{Block: 2, N: 2, BufOff: 0}}}},
		}, true, "write overlapping"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bufs := make([][]byte, len(tc.reqs))
			for i := range bufs {
				bufs[i] = buf
			}
			_, err := buildPlan(g, tc.reqs, bufs, 2, tc.write, Options{})
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("buildPlan = %v, want error containing %q", err, tc.want)
			}
		})
	}
	// The same cross-rank overlap is legal for reads.
	reqs := [][]VecReq{
		{{File: 0, Vec: blockio.Vec{{Block: 0, N: 4, BufOff: 0}}}},
		{{File: 0, Vec: blockio.Vec{{Block: 2, N: 2, BufOff: 0}}}},
	}
	pl, err := buildPlan(g, reqs, [][]byte{buf, buf}, 2, false, Options{})
	if err != nil {
		t.Fatalf("read overlap rejected: %v", err)
	}
	if pl.total != 4 {
		t.Fatalf("read overlap footprint = %d blocks, want 4", pl.total)
	}
}

func TestPlanEmptyFootprint(t *testing.T) {
	g := planFixture(t)
	pl, err := buildPlan(g, [][]VecReq{nil, nil}, [][]byte{nil, nil}, 2, true, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if pl.total != 0 {
		t.Fatalf("empty footprint total = %d", pl.total)
	}
	for a := 0; a < 2; a++ {
		if lo, hi := pl.domain(a); lo != hi {
			t.Fatalf("empty plan domain %d = [%d,%d)", a, lo, hi)
		}
	}
}

func TestRecordRangeReq(t *testing.T) {
	g := planFixture(t)
	req, err := RecordRangeReq(g, 0, 2, 4, 128)
	if err != nil {
		t.Fatal(err)
	}
	want := VecReq{File: 0, Vec: blockio.Vec{{Block: 2, N: 4, BufOff: 128}}}
	if req.File != want.File || len(req.Vec) != 1 || req.Vec[0] != want.Vec[0] {
		t.Fatalf("req = %+v, want %+v", req, want)
	}
	if _, err := RecordRangeReq(g, 5, 0, 1, 0); err == nil {
		t.Fatal("bad file accepted")
	}
	if _, err := RecordRangeReq(g, 0, 0, 99, 0); err == nil {
		t.Fatal("out-of-range records accepted")
	}
}
