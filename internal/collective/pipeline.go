// The pipelined two-phase schedule (Options.ChunkBytes > 0): chunked
// aggregator staging buffers that overlap the exchange phase with the
// device-access phase, in the style of ROMIO's collective buffering
// (cb_buffer_size) and PVFS listio chunk pipelining.
//
// The single-shot schedule is a hard barrier: plan → whole exchange →
// whole access, so the interconnect idles while the drives work and the
// drives idle while bytes cross the link. Here each file domain is cut
// into chunk-aligned sub-domains (plan.chunkWindow) and the collective
// runs plan.rounds lockstep exchange rounds (mpp.Exchange — per-pair
// setup charged once for the whole collective), with every aggregator's
// device access running in a companion process fed through a depth-1
// sim.Queue:
//
//	write: main   pack(k) → Round(k) ──→ queue ──→ companion: assemble(k) → WriteWindow(k)
//	read:  companion ReadWindow(k) → pack(k) ──→ queue ──→ main: Round(k) → scatter(k)
//
// So while chunk k sits in the drives (writes) the main process is
// already exchanging chunk k+1, and while chunk k is being delivered to
// the ranks (reads) the companion is already reading chunk k+2's data —
// bounded by the double-buffered staging (the queue holds one round,
// the companion works on another). Device access goes through a
// blockio.BatchPlan prepared once per domain, so chunking never
// re-sorts or re-merges the physical pieces.

package collective

import (
	"errors"
	"sort"
	"time"

	"repro/internal/blockio"
	"repro/internal/mpp"
	"repro/internal/sim"
)

// iv is one busy interval of a phase, in virtual time.
type iv struct{ from, to time.Duration }

// runPipelined executes the chunked schedule for one rank, leaving its
// error in c.errs[rank]. Called with pl.rounds > 0.
func (c *Collective) runPipelined(p *mpp.Proc, pl *plan, write bool, buf []byte) {
	rank := p.Rank()
	var owned []int
	for a := 0; a < pl.naggs; a++ {
		if pl.owner[a] == rank {
			owned = append(owned, a)
		}
	}
	ex := p.NewExchange()
	if len(owned) == 0 {
		// Pure compute rank: it only feeds (or drains) the exchange
		// rounds — no device work, no companion process.
		for k := 0; k < pl.rounds; k++ {
			if write {
				send := c.packRankChunk(pl, rank, k, buf)
				t0 := p.Now()
				ex.Round(send)
				c.commIv = append(c.commIv, iv{t0, p.Now()})
			} else {
				t0 := p.Now()
				recv := ex.Round(nil)
				c.commIv = append(c.commIv, iv{t0, p.Now()})
				c.scatterRankChunk(pl, rank, k, recv, buf)
			}
		}
		c.errs[rank] = nil
		return
	}

	agg, err := c.newAggState(pl, owned)
	if err != nil {
		// Unreachable in practice (the plan's windows are valid by
		// construction), but surface it on every round's schedule anyway:
		// the rank still must participate in the exchanges.
		for k := 0; k < pl.rounds; k++ {
			var send [][]byte
			if write {
				send = c.packRankChunk(pl, rank, k, buf)
			}
			recv := ex.Round(send)
			if !write {
				c.scatterRankChunk(pl, rank, k, recv, buf)
			}
		}
		c.errs[rank] = err
		return
	}

	type round struct {
		k    int
		data [][]byte // write: received payloads; read: payloads to send
	}
	if write {
		c.errs[rank] = sim.Pipe(p.Proc, "collective-io", 1,
			func(q *sim.Queue) error { // exchange stage, on the rank
				defer q.Close(p.Proc)
				for k := 0; k < pl.rounds; k++ {
					send := c.packRankChunk(pl, rank, k, buf)
					t0 := p.Now()
					recv := ex.Round(send)
					c.commIv = append(c.commIv, iv{t0, p.Now()})
					q.Put(p.Proc, round{k: k, data: recv})
				}
				return nil
			},
			func(cp *sim.Proc, q *sim.Queue) error { // access stage
				var errs []error
				for {
					v, ok := q.Get(cp)
					if !ok {
						return errors.Join(errs...)
					}
					r := v.(round)
					t0 := cp.Now()
					if err := agg.writeChunk(cp, r.k, r.data); err != nil {
						errs = append(errs, err)
					}
					c.ioIv = append(c.ioIv, iv{t0, cp.Now()})
				}
			})
		return
	}
	c.errs[rank] = sim.Pipe(p.Proc, "collective-io", 1,
		func(q *sim.Queue) error { // delivery stage, on the rank
			for k := 0; k < pl.rounds; k++ {
				var send [][]byte
				if v, ok := q.Get(p.Proc); ok {
					send = v.(round).data
				}
				t0 := p.Now()
				recv := ex.Round(send)
				c.commIv = append(c.commIv, iv{t0, p.Now()})
				c.scatterRankChunk(pl, rank, k, recv, buf)
			}
			return nil
		},
		func(cp *sim.Proc, q *sim.Queue) error { // access stage, reads ahead
			defer q.Close(cp)
			var errs []error
			for k := 0; k < pl.rounds; k++ {
				t0 := cp.Now()
				send, err := agg.readChunk(cp, k)
				if err != nil {
					errs = append(errs, err)
				}
				c.ioIv = append(c.ioIv, iv{t0, cp.Now()})
				q.Put(cp, round{k: k, data: send})
			}
			return errors.Join(errs...)
		})
}

// aggState is one aggregator rank's pipelined device-access state: a
// prepared batch plan per owned domain (mapped, sorted and merged once,
// cut at the chunk boundaries) and two staging buffers per domain — the
// bounded memory the whole feature is named for.
type aggState struct {
	c     *Collective
	pl    *plan
	owned []int
	plans []*blockio.BatchPlan
	stage [][2][]byte
}

func (c *Collective) newAggState(pl *plan, owned []int) (*aggState, error) {
	s := &aggState{c: c, pl: pl, owned: owned}
	for _, a := range owned {
		lo, hi := pl.domain(a)
		var cuts []int64
		for off := pl.chunkBlocks; off < hi-lo; off += pl.chunkBlocks {
			cuts = append(cuts, off*pl.bs)
		}
		plan, err := c.domainBatchVec(pl, a).Plan(cuts)
		if err != nil {
			return nil, err
		}
		s.plans = append(s.plans, plan)
		n := pl.chunkBlocks * pl.bs
		s.stage = append(s.stage, [2][]byte{make([]byte, n), make([]byte, n)})
	}
	return s, nil
}

// chunkBuf returns the staging buffer for chunk k of owned domain i,
// sized to the chunk. Buffers alternate per round; buffer k%2 is free
// again by round k+2 because the access stage is sequential.
func (s *aggState) chunkBuf(i, k int, lo, hi int64) []byte {
	return s.stage[i][k%2][:(hi-lo)*s.pl.bs]
}

// writeChunk assembles round k's received payloads into each owned
// domain's chunk staging buffer and issues the chunk's window of the
// prepared plan. Payload cursors advance across the owned domains in
// ascending order, mirroring packRankChunk's concatenation; sources
// apply in rank order, so LastWriterWins overlaps resolve exactly as in
// the single-shot schedule.
func (s *aggState) writeChunk(ctx sim.Context, k int, recv [][]byte) error {
	pl := s.pl
	cur := make([]int64, s.c.size)
	var errs []error
	for i, a := range s.owned {
		lo, hi := pl.chunkWindow(a, k)
		if lo >= hi {
			continue
		}
		buf := s.chunkBuf(i, k, lo, hi)
		for src := 0; src < s.c.size; src++ {
			pay := recv[src]
			pl.forEachClipWin(src, lo, hi, func(cl clip) {
				n := cl.n * pl.bs
				copy(buf[cl.domOff:cl.domOff+n], pay[cur[src]:cur[src]+n])
				cur[src] += n
			})
		}
		if err := s.plans[i].WriteWindow(ctx, k, buf, (lo-dlo(pl, a))*pl.bs); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// readChunk reads chunk k of every owned domain through the prepared
// plans and packs the ranks' round-k payloads from the fresh staging
// buffers — the read mirror of writeChunk.
func (s *aggState) readChunk(ctx sim.Context, k int) ([][]byte, error) {
	pl := s.pl
	send := make([][]byte, s.c.size)
	var errs []error
	for i, a := range s.owned {
		lo, hi := pl.chunkWindow(a, k)
		if lo >= hi {
			continue
		}
		buf := s.chunkBuf(i, k, lo, hi)
		if err := s.plans[i].ReadWindow(ctx, k, buf, (lo-dlo(pl, a))*pl.bs); err != nil {
			errs = append(errs, err)
		}
		for r := 0; r < s.c.size; r++ {
			pl.forEachClipWin(r, lo, hi, func(cl clip) {
				if send[r] == nil {
					send[r] = []byte{}
				}
				send[r] = append(send[r], buf[cl.domOff:cl.domOff+cl.n*pl.bs]...)
			})
		}
	}
	return send, errors.Join(errs...)
}

// dlo is domain a's covered-index start.
func dlo(pl *plan, a int) int64 {
	lo, _ := pl.domain(a)
	return lo
}

// packRankChunk builds rank's round-k write payloads, keyed by
// destination rank: for each domain in ascending order, the rank's
// clips against that domain's chunk-k window concatenated onto the
// domain owner's payload — the chunked analogue of packRankPieces, with
// the same canonical (domain asc, clip asc) order.
func (c *Collective) packRankChunk(pl *plan, rank, k int, buf []byte) [][]byte {
	var send [][]byte
	for a := 0; a < pl.naggs; a++ {
		lo, hi := pl.chunkWindow(a, k)
		dst := pl.owner[a]
		pl.forEachClipWin(rank, lo, hi, func(cl clip) {
			if send == nil {
				send = make([][]byte, c.size)
			}
			if send[dst] == nil {
				send[dst] = []byte{}
			}
			send[dst] = append(send[dst], buf[cl.bufOff:cl.bufOff+cl.n*pl.bs]...)
		})
	}
	return send
}

// scatterRankChunk delivers round k's read payloads into rank's buffer,
// consuming each aggregator's payload with a per-round cursor across its
// owned domains in ascending order (matching readChunk's packing).
func (c *Collective) scatterRankChunk(pl *plan, rank, k int, recv [][]byte, buf []byte) {
	var cur []int64
	for a := 0; a < pl.naggs; a++ {
		src := pl.owner[a]
		lo, hi := pl.chunkWindow(a, k)
		pl.forEachClipWin(rank, lo, hi, func(cl clip) {
			if cur == nil {
				cur = make([]int64, c.size)
			}
			pay := recv[src]
			n := cl.n * pl.bs
			copy(buf[cl.bufOff:cl.bufOff+n], pay[cur[src]:cur[src]+n])
			cur[src] += n
		})
	}
}

// domainBatchVec assembles domain a's cross-file batch shape with no
// buffers bound — the input to blockio's prepared, windowed batch plan.
func (c *Collective) domainBatchVec(pl *plan, a int) blockio.BatchVec {
	var batch blockio.BatchVec
	fileIdx := -1
	pl.forEachDomainSpan(a, func(gb, n, domOff int64) {
		for n > 0 {
			file, block, err := c.group.Locate(gb)
			if err != nil {
				// Unreachable: validated segments lie inside the group.
				panic(err)
			}
			seg := c.group.Offset(file+1) - gb // blocks left in this file
			if seg > n {
				seg = n
			}
			if file != fileIdx {
				batch = append(batch, blockio.BatchItem{Set: c.group.File(file).Set()})
				fileIdx = file
			}
			it := &batch[len(batch)-1]
			it.Vec = append(it.Vec, blockio.VecSeg{Block: block, N: seg, BufOff: domOff})
			gb += seg
			domOff += seg * pl.bs
			n -= seg
		}
	})
	return batch
}

// busyUnion reports the total time covered by at least one interval
// (sorts ivs in place).
func busyUnion(ivs []iv) time.Duration {
	merged := mergeIvs(ivs)
	var total time.Duration
	for _, x := range merged {
		total += x.to - x.from
	}
	return total
}

// busyOverlap reports the total time covered by both interval sets.
func busyOverlap(a, b []iv) time.Duration {
	am, bm := mergeIvs(a), mergeIvs(b)
	var total time.Duration
	i, j := 0, 0
	for i < len(am) && j < len(bm) {
		lo, hi := am[i].from, am[i].to
		if bm[j].from > lo {
			lo = bm[j].from
		}
		if bm[j].to < hi {
			hi = bm[j].to
		}
		if hi > lo {
			total += hi - lo
		}
		if am[i].to < bm[j].to {
			i++
		} else {
			j++
		}
	}
	return total
}

// mergeIvs sorts the intervals in place and returns their merged,
// disjoint cover.
func mergeIvs(ivs []iv) []iv {
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].from < ivs[j].from })
	var out []iv
	for _, x := range ivs {
		if x.to <= x.from {
			continue
		}
		if k := len(out) - 1; k >= 0 && x.from <= out[k].to {
			if x.to > out[k].to {
				out[k].to = x.to
			}
			continue
		}
		out = append(out, x)
	}
	return out
}
