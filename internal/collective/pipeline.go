// The pipelined two-phase schedule (Options.ChunkBytes > 0): chunked
// aggregator staging buffers that overlap the exchange phase with the
// device-access phase, in the style of ROMIO's collective buffering
// (cb_buffer_size) and PVFS listio chunk pipelining.
//
// The single-shot schedule is a hard barrier: plan → whole exchange →
// whole access, so the interconnect idles while the drives work and the
// drives idle while bytes cross the link. Here each file domain is cut
// into chunk-aligned sub-domains (plan.chunkWindow) and the collective
// runs plan.rounds lockstep exchange rounds (mpp.SparseExchange — per-pair
// setup charged once for the whole collective), with every aggregator's
// device access running in a companion process fed through a depth-1
// sim.Queue:
//
//	write: main   pack(k) → Round(k) ──→ queue ──→ companion: assemble(k) → WriteWindow(k)
//	read:  companion ReadWindow(k) → pack(k) ──→ queue ──→ main: Round(k) → scatter(k)
//
// So while chunk k sits in the drives (writes) the main process is
// already exchanging chunk k+1, and while chunk k is being delivered to
// the ranks (reads) the companion is already reading chunk k+2's data —
// bounded by the double-buffered staging (the queue holds one round,
// the companion works on another). Device access goes through a
// blockio.BatchPlan prepared once per domain, so chunking never
// re-sorts or re-merges the physical pieces.

package collective

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/blockio"
	"repro/internal/mpp"
	"repro/internal/probe"
	"repro/internal/sim"
)

// iv is one busy interval of a phase, in virtual time.
type iv struct{ from, to time.Duration }

// runPipelined executes the chunked schedule for one rank, leaving its
// error in c.errs[rank]. Called with pl.rounds > 0.
func (c *Collective) runPipelined(p *mpp.Proc, sd *schedule, write bool, buf []byte) {
	rank := p.Rank()
	pl := sd.pl
	rec, trk, prefix := p.Probe()
	owned := sd.ownedOf[rank]
	ex := p.NewSparseExchange()
	if len(owned) == 0 {
		// Pure compute rank: it only feeds (or drains) the exchange
		// rounds — no device work, no companion process.
		for k := 0; k < pl.rounds; k++ {
			if write {
				send := c.packChunkSparse(pl, rank, k, buf)
				t0 := p.Now()
				p.RecycleRecv(ex.Round(send))
				c.commIv = append(c.commIv, iv{t0, p.Now()})
				rec.Span(trk, "collective", "chunk.exchange", t0, p.Now(), 0, 0)
			} else {
				t0 := p.Now()
				recv := ex.Round(nil)
				c.commIv = append(c.commIv, iv{t0, p.Now()})
				rec.Span(trk, "collective", "chunk.exchange", t0, p.Now(), 0, 0)
				c.scatterChunkSparse(pl, rank, k, recv, buf)
				p.RecycleRecv(recv)
			}
		}
		c.errs[rank] = nil
		return
	}
	// Aggregator rank: exchange spans live on the rank's track, device
	// access spans on a companion "<rank>/io" track — the two stages
	// overlap in time, which is the whole point of the pipeline.
	var ioTrk probe.TrackID
	if rec != nil {
		ioTrk = rec.Track(fmt.Sprintf("%s/%d/io", prefix, rank))
	}

	agg, err := sd.aggState(c, rank, owned)
	if err != nil {
		// Unreachable in practice (the plan's windows are valid by
		// construction), but surface it on every round's schedule anyway:
		// the rank still must participate in the exchanges.
		for k := 0; k < pl.rounds; k++ {
			var send []mpp.Msg
			if write {
				send = c.packChunkSparse(pl, rank, k, buf)
			}
			recv := ex.Round(send)
			if !write {
				c.scatterChunkSparse(pl, rank, k, recv, buf)
			}
			p.RecycleRecv(recv)
		}
		c.errs[rank] = err
		return
	}

	type round struct {
		k    int
		recv []mpp.RecvMsg // write: payloads received for the access stage
		send []mpp.Msg     // read: payloads packed for delivery
		span probe.SpanID  // producing stage's span: the consumer's causal parent
	}
	if write {
		c.errs[rank] = sim.Pipe(p.Proc, "collective-io", 1,
			func(q *sim.Queue) error { // exchange stage, on the rank
				defer q.Close(p.Proc)
				for k := 0; k < pl.rounds; k++ {
					send := c.packChunkSparse(pl, rank, k, buf)
					t0 := p.Now()
					recv := ex.Round(send)
					c.commIv = append(c.commIv, iv{t0, p.Now()})
					sp := rec.Span(trk, "collective", "chunk.exchange", t0, p.Now(), 0, 0)
					q.Put(p.Proc, round{k: k, recv: recv, span: sp})
				}
				return nil
			},
			func(cp *sim.Proc, q *sim.Queue) error { // access stage
				var errs []error
				for {
					v, ok := q.Get(cp)
					if !ok {
						return errors.Join(errs...)
					}
					r := v.(round)
					t0 := cp.Now()
					if err := agg.writeChunk(cp, r.k, r.recv); err != nil {
						errs = append(errs, err)
					}
					c.ioIv = append(c.ioIv, iv{t0, cp.Now()})
					rec.Span(ioTrk, "collective", "chunk.access", t0, cp.Now(), 0, r.span)
					// The companion recycles on the rank's behalf: only
					// handle memory is touched, never engine state.
					p.RecycleRecv(r.recv)
				}
			})
		return
	}
	c.errs[rank] = sim.Pipe(p.Proc, "collective-io", 1,
		func(q *sim.Queue) error { // delivery stage, on the rank
			for k := 0; k < pl.rounds; k++ {
				var send []mpp.Msg
				var parent probe.SpanID
				if v, ok := q.Get(p.Proc); ok {
					r := v.(round)
					send, parent = r.send, r.span
				}
				t0 := p.Now()
				recv := ex.Round(send)
				c.commIv = append(c.commIv, iv{t0, p.Now()})
				rec.Span(trk, "collective", "chunk.exchange", t0, p.Now(), 0, parent)
				c.scatterChunkSparse(pl, rank, k, recv, buf)
				p.RecycleRecv(recv)
			}
			return nil
		},
		func(cp *sim.Proc, q *sim.Queue) error { // access stage, reads ahead
			defer q.Close(cp)
			var errs []error
			for k := 0; k < pl.rounds; k++ {
				t0 := cp.Now()
				send, err := agg.readChunk(cp, k)
				if err != nil {
					errs = append(errs, err)
				}
				c.ioIv = append(c.ioIv, iv{t0, cp.Now()})
				sp := rec.Span(ioTrk, "collective", "chunk.access", t0, cp.Now(), 0, 0)
				q.Put(cp, round{k: k, send: send, span: sp})
			}
			return errors.Join(errs...)
		})
}

// aggState is one aggregator rank's pipelined device-access state: a
// prepared batch plan per owned domain (mapped, sorted and merged once,
// cut at the chunk boundaries) and two staging buffers per domain — the
// bounded memory the whole feature is named for. msgScr holds the read
// path's two in-flight outgoing message lists: round k's list sits in
// the stage queue while round k+1 is being packed, and slot k%2 is free
// again by round k+2 because the delivery stage is sequential.
type aggState struct {
	c      *Collective
	pl     *plan
	owned  []int
	plans  []*blockio.BatchPlan
	stage  [][2][]byte
	msgScr [2][]mpp.Msg
}

func (c *Collective) newAggState(pl *plan, owned []int) (*aggState, error) {
	s := &aggState{c: c, pl: pl, owned: owned}
	for _, a := range owned {
		lo, hi := pl.domain(a)
		var cuts []int64
		for off := pl.chunkBlocks; off < hi-lo; off += pl.chunkBlocks {
			cuts = append(cuts, off*pl.bs)
		}
		plan, err := c.domainBatchVec(pl, a).Plan(cuts)
		if err != nil {
			return nil, err
		}
		s.plans = append(s.plans, plan)
		n := pl.chunkBlocks * pl.bs
		s.stage = append(s.stage, [2][]byte{make([]byte, n), make([]byte, n)})
	}
	return s, nil
}

// chunkBuf returns the staging buffer for chunk k of owned domain i,
// sized to the chunk. Buffers alternate per round; buffer k%2 is free
// again by round k+2 because the access stage is sequential.
func (s *aggState) chunkBuf(i, k int, lo, hi int64) []byte {
	return s.stage[i][k%2][:(hi-lo)*s.pl.bs]
}

// writeChunk assembles round k's received payloads into the owned
// domains' chunk staging buffers and issues each chunk's window of the
// prepared plan. A single cursor walks each payload across the owned
// domains in ascending order, mirroring packChunkSparse's
// concatenation; the receive list is sorted by source first, so each
// domain sees its sources in rank order and LastWriterWins overlaps
// resolve exactly as in the single-shot schedule. Assembly is pure
// compute, so finishing it before the first WriteWindow leaves the
// device schedule bit-identical to assembling per domain.
func (s *aggState) writeChunk(ctx sim.Context, k int, recv []mpp.RecvMsg) error {
	pl := s.pl
	mpp.SortBySrc(recv)
	for _, m := range recv {
		var off int64
		for i, a := range s.owned {
			lo, hi := pl.chunkWindow(a, k)
			if lo >= hi {
				continue
			}
			buf := s.chunkBuf(i, k, lo, hi)
			pl.forEachClipWin(m.Src, lo, hi, func(cl clip) {
				n := cl.n * pl.bs
				copy(buf[cl.domOff:cl.domOff+n], m.Data[off:off+n])
				off += n
			})
		}
		s.c.putPay(m.Data)
	}
	var errs []error
	for i, a := range s.owned {
		lo, hi := pl.chunkWindow(a, k)
		if lo >= hi {
			continue
		}
		buf := s.chunkBuf(i, k, lo, hi)
		if err := s.plans[i].WriteWindow(ctx, k, buf, (lo-dlo(pl, a))*pl.bs); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// readChunk reads chunk k of every owned domain through the prepared
// plans, then packs the ranks' round-k messages from the fresh staging
// buffers — the read mirror of writeChunk. The pack copies into pooled
// payload buffers (staging is reused two rounds later, so bytes cannot
// ride the message by reference) and runs without parking, after all
// the reads, keeping the handle-shared pack scratch consistent.
func (s *aggState) readChunk(ctx sim.Context, k int) ([]mpp.Msg, error) {
	pl := s.pl
	var errs []error
	for i, a := range s.owned {
		lo, hi := pl.chunkWindow(a, k)
		if lo >= hi {
			continue
		}
		buf := s.chunkBuf(i, k, lo, hi)
		if err := s.plans[i].ReadWindow(ctx, k, buf, (lo-dlo(pl, a))*pl.bs); err != nil {
			errs = append(errs, err)
		}
	}
	c := s.c
	msgs := s.msgScr[k%2][:0]
	for i, a := range s.owned {
		lo, hi := pl.chunkWindow(a, k)
		if lo >= hi {
			continue
		}
		buf := s.chunkBuf(i, k, lo, hi)
		for _, r32 := range pl.ranksIn[a] {
			r := int(r32)
			pl.forEachClipWin(r, lo, hi, func(cl clip) {
				j := c.dstIdx[r]
				if j < 0 {
					j = len(msgs)
					msgs = append(msgs, mpp.Msg{Dst: r, Data: c.getPay()})
					c.dstIdx[r] = j
				}
				msgs[j].Data = append(msgs[j].Data, buf[cl.domOff:cl.domOff+cl.n*pl.bs]...)
			})
		}
	}
	for _, m := range msgs {
		c.dstIdx[m.Dst] = -1
	}
	s.msgScr[k%2] = msgs
	return msgs, errors.Join(errs...)
}

// dlo is domain a's covered-index start.
func dlo(pl *plan, a int) int64 {
	lo, _ := pl.domain(a)
	return lo
}

// packChunkSparse builds rank's round-k write messages: for each
// touched domain in ascending order, the rank's clips against that
// domain's chunk-k window concatenated onto the domain owner's payload
// — the chunked analogue of packRankMsgs, with the same canonical
// (domain asc, clip asc) order. A message is created only when the
// window actually holds a clip, so round-level pair counts (and the
// exchange's per-pair setup charges) match the dense schedule exactly.
func (c *Collective) packChunkSparse(pl *plan, rank, k int, buf []byte) []mpp.Msg {
	msgs := c.msgScratch[rank][:0]
	for _, a32 := range pl.domsOf[rank] {
		a := int(a32)
		lo, hi := pl.chunkWindow(a, k)
		dst := pl.owner[a]
		pl.forEachClipWin(rank, lo, hi, func(cl clip) {
			i := c.dstIdx[dst]
			if i < 0 {
				i = len(msgs)
				msgs = append(msgs, mpp.Msg{Dst: dst, Data: c.getPay()})
				c.dstIdx[dst] = i
			}
			msgs[i].Data = append(msgs[i].Data, buf[cl.bufOff:cl.bufOff+cl.n*pl.bs]...)
		})
	}
	for _, m := range msgs {
		c.dstIdx[m.Dst] = -1
	}
	c.msgScratch[rank] = msgs
	return msgs
}

// scatterChunkSparse delivers round k's read payloads into rank's
// buffer, consuming each aggregator's payload with a per-message cursor
// across that aggregator's domains in ascending order (matching
// readChunk's packing). Consumed payloads return to the pool; the
// caller recycles the receive list itself.
func (c *Collective) scatterChunkSparse(pl *plan, rank, k int, recv []mpp.RecvMsg, buf []byte) {
	for _, m := range recv {
		var off int64
		for _, a32 := range pl.domsOf[rank] {
			a := int(a32)
			if pl.owner[a] != m.Src {
				continue
			}
			lo, hi := pl.chunkWindow(a, k)
			pl.forEachClipWin(rank, lo, hi, func(cl clip) {
				n := cl.n * pl.bs
				copy(buf[cl.bufOff:cl.bufOff+n], m.Data[off:off+n])
				off += n
			})
		}
		c.putPay(m.Data)
	}
}

// domainBatchVec assembles domain a's cross-file batch shape with no
// buffers bound — the input to blockio's prepared, windowed batch plan.
func (c *Collective) domainBatchVec(pl *plan, a int) blockio.BatchVec {
	var batch blockio.BatchVec
	fileIdx := -1
	pl.forEachDomainSpan(a, func(gb, n, domOff int64) {
		for n > 0 {
			file, block, err := c.group.Locate(gb)
			if err != nil {
				// Unreachable: validated segments lie inside the group.
				panic(err)
			}
			seg := c.group.Offset(file+1) - gb // blocks left in this file
			if seg > n {
				seg = n
			}
			if file != fileIdx {
				batch = append(batch, blockio.BatchItem{Set: c.group.File(file).Set()})
				fileIdx = file
			}
			it := &batch[len(batch)-1]
			it.Vec = append(it.Vec, blockio.VecSeg{Block: block, N: seg, BufOff: domOff})
			gb += seg
			domOff += seg * pl.bs
			n -= seg
		}
	})
	return batch
}

// busyUnion reports the total time covered by at least one interval
// (sorts ivs in place).
func busyUnion(ivs []iv) time.Duration {
	merged := mergeIvs(ivs)
	var total time.Duration
	for _, x := range merged {
		total += x.to - x.from
	}
	return total
}

// busyOverlap reports the total time covered by both interval sets.
func busyOverlap(a, b []iv) time.Duration {
	am, bm := mergeIvs(a), mergeIvs(b)
	var total time.Duration
	i, j := 0, 0
	for i < len(am) && j < len(bm) {
		lo, hi := am[i].from, am[i].to
		if bm[j].from > lo {
			lo = bm[j].from
		}
		if bm[j].to < hi {
			hi = bm[j].to
		}
		if hi > lo {
			total += hi - lo
		}
		if am[i].to < bm[j].to {
			i++
		} else {
			j++
		}
	}
	return total
}

// mergeIvs sorts the intervals in place and returns their merged,
// disjoint cover.
func mergeIvs(ivs []iv) []iv {
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].from < ivs[j].from })
	var out []iv
	for _, x := range ivs {
		if x.to <= x.from {
			continue
		}
		if k := len(out) - 1; k >= 0 && x.from <= out[k].to {
			if x.to > out[k].to {
				out[k].to = x.to
			}
			continue
		}
		out = append(out, x)
	}
	return out
}
