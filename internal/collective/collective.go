// Package collective implements two-phase collective I/O over parallel
// files — the cross-process, cross-file aggregation layer above the
// per-file vectored path.
//
// The paper's shared organizations (SS, GDA and friends) coordinate
// processes at the file layer, but every process still issues its own
// device requests, so fine-grained concurrent accesses interleave at the
// drives and the seek interference the paper measures is never repaired.
// Two-phase collective I/O (Thakur/Gropp/Lusk's MPI-IO optimization) fixes
// that by trading interconnect traffic — cheap — for device requests —
// expensive:
//
//  1. Plan. The ranks' request lists are combined into a union access
//     footprint over the file group's concatenated block space, and the
//     footprint is split into contiguous file domains, one per aggregator
//     rank (plan.go).
//  2. Exchange. Every rank ships the pieces of its buffer that fall in
//     each domain to that domain's aggregator (writes), or the
//     aggregators ship freshly read domains back to the ranks (reads),
//     in one mpp.AlltoallvSparse with modeled link cost.
//  3. Access. Each aggregator moves its whole domain with one
//     blockio.BatchVec — the cross-file batch — so pieces that are
//     physically adjacent on a device coalesce into single requests even
//     across files, and each device sees at most one request per
//     aggregator per collective.
//
// An 8-rank interleaved checkpoint that costs one device request per
// record independently collapses to one request per device per
// aggregator; TestCollectiveCoalescingWin enforces the modeled win.
package collective

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/blockio"
	"repro/internal/ioserver"
	"repro/internal/mpp"
	"repro/internal/pfs"
	"repro/internal/probe"
)

// VecReq names one file of the collective's group and a scatter/gather
// descriptor against it: the file's fs blocks listed in Vec move to/from
// the calling rank's buffer at each segment's BufOff. A rank passes any
// number of VecReqs per collective call (several per file is fine as
// long as blocks and buffer ranges stay disjoint within the rank).
type VecReq struct {
	File int
	Vec  blockio.Vec
}

// Options tunes a collective handle. The zero value selects defaults
// (round-robin domains, overlapping writes rejected), which keep PR 3's
// modeled timings bit-identical.
type Options struct {
	// Aggregators is the number of file domains (and so the maximum
	// number of aggregator ranks performing device I/O). 0 selects
	// min(group size, device count), one file domain per device's worth
	// of parallelism. By default domain a is aggregated by rank a; see
	// Locality.
	Aggregators int

	// Locality assigns each file domain to the participating rank that
	// owns the largest share of the domain's footprint (ties to the
	// lowest rank) instead of round-robin rank order. Nearly-aligned
	// access patterns then keep most bytes local — self-messages cross
	// no link — which matters whenever the interconnect is contended
	// (mpp.Group.SetBisection). One rank may aggregate several domains;
	// LastStats reports the measured split.
	Locality bool

	// LastWriterWins permits cross-rank write overlaps with MPI-IO
	// ordering semantics: the outcome is as if the ranks wrote in rank
	// order, so the highest overlapping rank's bytes land — a
	// deterministic rule, unlike the racing independent writes it
	// replaces. Off (default) rejects overlapping collective writes.
	// Overlaps within one rank's request list remain errors either way.
	LastWriterWins bool

	// Service routes the nonblocking entry points (IWriteAll/IReadAll)
	// through an I/O server: instead of each aggregator executing its
	// domain batch inline, the batches are enqueued on this job's lane
	// of an ioserver.Server and the call returns a Handle immediately.
	// The server's QoS policy then decides when the batches run,
	// multiplexing this job against every other job sharing the
	// server's devices. nil (the default) leaves the blocking calls as
	// the only entry points; WriteAll/ReadAll never consult Service, so
	// the default modeled timings stay bit-identical.
	Service *ioserver.Job

	// ChunkBytes bounds each aggregator's staging memory and turns the
	// collective into a software pipeline (ROMIO's cb_buffer_size): every
	// file domain is cut into ChunkBytes-sized chunks and the exchange of
	// chunk k+1 proceeds concurrently with the device access of chunk k
	// (reads mirror this: the access of chunk k+1 overlaps the delivery
	// of chunk k), so the interconnect and the drives work at the same
	// time instead of strictly alternating. Each aggregator stages at
	// most two chunks per owned domain (double buffering). Sub-block
	// values round up to one block per chunk; values above the domain
	// size degenerate to a single round. 0 (the default) keeps the
	// unbounded single-shot two-phase schedule, whose modeled timings
	// are bit-identical to earlier releases.
	ChunkBytes int64

	// Strategy selects the access route of the blocking collective
	// calls. The zero value (and blockio.StrategyCollective) keeps the
	// two-phase exchange; StrategyVectored/StrategySieved route every
	// rank's requests as independent vectored/sieved Set transfers
	// (skipping the exchange entirely); StrategyAuto prices the three
	// routes per call — exchange traffic against the group's modeled
	// interconnect (mpp.Group.LinkModel), device requests against the
	// store's drive parameters — and picks the cheapest. Plan
	// validation, cross-rank overlap rejection, and LastWriterWins
	// semantics are identical on every route. The nonblocking entry
	// points (Service) always run two-phase.
	Strategy blockio.Strategy

	// PlanCache bounds the handle's schedule cache (schedule.go).
	// Iterative workloads issue the same request lists every iteration;
	// the handle fingerprints each call's gathered requests and, on a
	// match, replays the frozen schedule — validated plan, domain
	// assignment, chosen route, chunk windows, prepared per-domain
	// batch plans — rebinding only buffers and payloads. Replay is
	// bit-identical to a fresh build in modeled time and probe trace,
	// so caching is on by default: 0 selects the default capacity
	// (8 schedules, LRU), larger values retain more distinct patterns,
	// and a negative value disables caching (every call re-plans).
	// Schedules are invalidated by SetOptions and by interconnect-model
	// reconfiguration (mpp.Group.SetLink/SetBisection/SetBisectionPool/
	// SetTopology bump the group's model epoch).
	PlanCache int
}

// ExchangeStats reports where one collective call's exchange-phase bytes
// went — BytesMoved crossed the interconnect (rank ≠ domain aggregator),
// BytesLocal stayed on the aggregating rank (self-messages, free under
// both link models) — and how the call's two phases spent their time.
// Payload bytes are counted once per direction, so reads and writes of
// the same footprint report the same split.
//
// The time fields are unions of busy intervals across all ranks in the
// call's virtual-time window: ExchangeTime is the time at least one rank
// was inside the exchange (AlltoallvSparse or a pipelined round, including the
// collective's rendezvous waits), AccessTime the time at least one
// aggregator had device requests in flight, and Overlap the time both
// were true at once. The single-shot schedule (ChunkBytes 0) reports
// zero Overlap on writes — its phases are barrier-separated — and on
// reads can report only rendezvous overlap (ranks parked at the
// exchange while aggregators finish reading); real exchange/access
// concurrency needs the pipelined schedule, which reports it here.
// 1 - ExchangeTime/elapsed is the link idle fraction.
type ExchangeStats struct {
	BytesMoved int64
	BytesLocal int64

	ExchangeTime time.Duration
	AccessTime   time.Duration
	Overlap      time.Duration
}

// SameBytes reports whether two calls moved the same exchange split
// (the timing fields differ between reads and writes of one footprint;
// the byte split may not).
func (st ExchangeStats) SameBytes(o ExchangeStats) bool {
	return st.BytesMoved == o.BytesMoved && st.BytesLocal == o.BytesLocal
}

// Collective is a collective-I/O handle over a group of files sharing
// one device array, used by all ranks of one mpp group. ReadAll and
// WriteAll are collective calls: every rank of the group must call them
// the same number of times, in the same order (ranks with nothing to
// move pass empty request lists). The handle may be reused across calls;
// it must not be shared between different-sized groups.
type Collective struct {
	group *pfs.FileGroup
	size  int
	naggs int
	bs    int64
	opts  Options

	// per-call scratch, indexed by rank; safe under the engine's strict
	// alternation
	reqs  [][]VecReq
	bufs  [][]byte
	errs  []error
	sched *schedule
	plErr error
	route route
	stats ExchangeStats
	// per-call phase busy intervals, appended by every rank (strict
	// alternation again) and folded into stats by rank 0 at the end.
	// Recording is pure Now() reads, so it never perturbs the schedule.
	commIv []iv
	ioIv   []iv

	// Nonblocking-call scratch: the Handle under construction, built by
	// rank 0 between the plan barriers and grabbed by every rank right
	// after (nonblock.go). Outstanding handles own their state, so this
	// slot is free for reuse the moment every rank has copied it.
	hScratch *Handle

	// Sparse-exchange scratch, shared by all ranks under strict
	// alternation. payPool recycles exchange payload buffers: a sender
	// packs into a pooled buffer, ownership rides the message, and the
	// consumer returns it once copied out, so steady-state rounds
	// allocate nothing. dstIdx (invariant: all -1 outside a pack call)
	// maps destination rank to its message while one rank packs; a pack
	// never parks the engine, so one shared array serves every rank.
	// msgScratch holds per-rank outgoing message lists, reused per call.
	payPool    [][]byte
	dstIdx     []int
	msgScratch [][]mpp.Msg

	// Single-shot aggregation staging, per rank: each rank's
	// owned-domain buffers, retained and resized across calls
	// (schedule.domBufs) so steady-state iterations allocate nothing.
	domScr [][][]byte

	// Schedule capture/replay state (schedule.go): the cached
	// schedules in MRU order, the interconnect-model stamp they were
	// built under, the fingerprint scratch, and the counters
	// PlanCacheStats reports.
	cacheCap   int
	cached     []*schedule
	cacheStamp modelStamp
	sigScratch []uint64

	hits, misses, evictions, invalidations uint64
}

// getPay pops a recycled payload buffer (length 0, capacity whatever it
// grew to) or returns nil for append to grow.
func (c *Collective) getPay() []byte {
	if n := len(c.payPool); n > 0 {
		b := c.payPool[n-1]
		c.payPool[n-1] = nil
		c.payPool = c.payPool[:n-1]
		return b[:0]
	}
	return nil
}

// putPay returns a fully consumed payload buffer to the pool.
func (c *Collective) putPay(b []byte) {
	if cap(b) > 0 {
		c.payPool = append(c.payPool, b)
	}
}

// Open builds a collective handle for a size-rank group over the file
// group.
func Open(g *pfs.FileGroup, size int, opts Options) (*Collective, error) {
	if g == nil {
		return nil, fmt.Errorf("collective: nil file group")
	}
	if size <= 0 {
		return nil, fmt.Errorf("collective: group size %d", size)
	}
	naggs := opts.Aggregators
	if naggs <= 0 {
		naggs = g.Store().Devices()
	}
	if naggs > size {
		naggs = size
	}
	c := &Collective{
		group:      g,
		size:       size,
		naggs:      naggs,
		bs:         int64(g.Store().BlockSize()),
		opts:       opts,
		reqs:       make([][]VecReq, size),
		bufs:       make([][]byte, size),
		errs:       make([]error, size),
		dstIdx:     make([]int, size),
		msgScratch: make([][]mpp.Msg, size),
		domScr:     make([][][]byte, size),
		cacheCap:   planCacheCap(opts.PlanCache),
	}
	for i := range c.dstIdx {
		c.dstIdx[i] = -1
	}
	return c, nil
}

// Group returns the underlying file group.
func (c *Collective) Group() *pfs.FileGroup { return c.group }

// Aggregators reports the number of file domains (with Options.Locality
// several may be aggregated by one rank).
func (c *Collective) Aggregators() int { return c.naggs }

// LastStats reports the exchange split (bytes moved over the
// interconnect vs bytes kept local) of the most recent successfully
// planned ReadAll/WriteAll. Valid once that call has returned on every
// rank; a reused handle overwrites it per call.
func (c *Collective) LastStats() ExchangeStats { return c.stats }

// WriteAll writes every rank's requests as one two-phase collective:
// ranks exchange their pieces with the domain aggregators, and each
// aggregator issues its whole domain as one cross-file batch. All ranks
// receive the same error (the join of every rank's failures).
func (c *Collective) WriteAll(p *mpp.Proc, reqs []VecReq, buf []byte) error {
	return c.run(p, true, reqs, buf)
}

// ReadAll reads every rank's requests as one two-phase collective: the
// aggregators read their domains as cross-file batches, then ship each
// rank its pieces — the read mirror of WriteAll.
func (c *Collective) ReadAll(p *mpp.Proc, reqs []VecReq, buf []byte) error {
	return c.run(p, false, reqs, buf)
}

// run is the collective engine shared by ReadAll/WriteAll.
func (c *Collective) run(p *mpp.Proc, write bool, reqs []VecReq, buf []byte) error {
	if p.Size() != c.size {
		// A group-size mismatch is a programming error; returning before
		// the first barrier leaves the other ranks waiting, which the
		// engine reports as a deadlock naming them.
		return fmt.Errorf("collective: handle opened for %d ranks, called from a %d-rank group", c.size, p.Size())
	}
	rank := p.Rank()
	rec, trk, prefix := p.Probe()
	c.reqs[rank], c.bufs[rank], c.errs[rank] = reqs, buf, nil
	p.Barrier()
	// One rank derives the shared schedule; it is a pure function of the
	// gathered requests and the machine model, so any rank would compute
	// the same one — which is also why a cached replay (scheduleFor) is
	// indistinguishable from a fresh build.
	if rank == 0 {
		c.sched, c.plErr = c.scheduleFor(p, write)
		if c.plErr == nil {
			// Route selection happens only after the plan validates, so
			// every strategy rejects bad requests (cross-rank write
			// overlap above all) with byte-identical errors.
			c.route = c.sched.route
			c.stats = c.sched.stats
			if c.route != routeTwoPhase {
				c.stats = ExchangeStats{} // independent routes exchange nothing
			}
			rec.Instant(trk, "collective", "plan", p.Now())
		}
		c.commIv, c.ioIv = c.commIv[:0], c.ioIv[:0]
	}
	p.Barrier()
	if c.plErr != nil {
		return c.plErr
	}
	sd := c.sched
	pl := sd.pl
	switch {
	case c.route != routeTwoPhase:
		c.runIndependent(p, sd, write, c.route == routeSieved)
	case pl.rounds > 0:
		// Chunked staging buffers configured (Options.ChunkBytes): the
		// pipelined schedule overlapping exchange with device access.
		c.runPipelined(p, sd, write, buf)
	case write:
		send := c.packRankMsgs(pl, rank, buf)
		t0 := p.Now()
		recv := p.AlltoallvSparse(send)
		c.commIv = append(c.commIv, iv{t0, p.Now()})
		exSpan := rec.Span(trk, "collective", "exchange", t0, p.Now(), 0, 0)
		// Assemble every owned domain from the delivered payloads, then
		// issue the device batches. Assembly is pure compute — it costs no
		// virtual time — so hoisting it above the first batch leaves the
		// modeled schedule bit-identical to interleaving it per domain.
		owned := sd.ownedOf[rank]
		dombufs := c.domBufs(rank, pl, owned)
		c.assembleDomains(pl, owned, recv, dombufs)
		p.RecycleRecv(recv)
		var ioTrk probe.TrackID
		if rec != nil && len(owned) > 0 {
			ioTrk = rec.Track(fmt.Sprintf("%s/%d/io", prefix, rank))
		}
		var aggErrs []error
		for i, a := range owned {
			// p.Proc, not p: sim.Par recognizes the underlying engine
			// process, so the domain's per-device runs issue in parallel.
			t0 := p.Now()
			if err := sd.issueDomain(c, p, a, dombufs[i], true); err != nil {
				aggErrs = append(aggErrs, err)
			}
			c.ioIv = append(c.ioIv, iv{t0, p.Now()})
			rec.Span(ioTrk, "collective", "access", t0, p.Now(), int64(len(dombufs[i])), exSpan)
		}
		c.errs[rank] = errors.Join(aggErrs...)
	default:
		// Read every owned domain, then pack all outgoing payloads in one
		// non-parking section (the pack shares the handle's scratch, and
		// packing is free in virtual time — same schedule as packing each
		// domain right after its read).
		owned := sd.ownedOf[rank]
		dombufs := c.domBufs(rank, pl, owned)
		var aggErrs []error
		var ioTrk probe.TrackID
		var lastAcc probe.SpanID
		if rec != nil && len(owned) > 0 {
			ioTrk = rec.Track(fmt.Sprintf("%s/%d/io", prefix, rank))
		}
		for i, a := range owned {
			t0 := p.Now()
			if err := sd.issueDomain(c, p, a, dombufs[i], false); err != nil {
				aggErrs = append(aggErrs, err)
			}
			c.ioIv = append(c.ioIv, iv{t0, p.Now()})
			lastAcc = rec.Span(ioTrk, "collective", "access", t0, p.Now(), int64(len(dombufs[i])), 0)
		}
		c.errs[rank] = errors.Join(aggErrs...)
		send := c.packDomainMsgs(pl, rank, owned, dombufs)
		t0 := p.Now()
		recv := p.AlltoallvSparse(send)
		c.commIv = append(c.commIv, iv{t0, p.Now()})
		rec.Span(trk, "collective", "exchange", t0, p.Now(), 0, lastAcc)
		c.scatterRankMsgs(pl, rank, recv, buf)
		p.RecycleRecv(recv)
	}
	p.Barrier()
	if rank == 0 {
		c.stats.ExchangeTime = busyUnion(c.commIv)
		c.stats.AccessTime = busyUnion(c.ioIv)
		c.stats.Overlap = busyOverlap(c.commIv, c.ioIv)
	}
	var errs []error
	for r, err := range c.errs {
		if err != nil {
			errs = append(errs, fmt.Errorf("rank %d: %w", r, err))
		}
	}
	// Hold everyone until all ranks have read the error scratch: a rank
	// returning early could re-enter on a reused handle and clear its
	// slot before slower ranks join the errors
	// (TestCollectiveReuseErrorVisibility).
	p.Barrier()
	return errors.Join(errs...)
}

// packRankMsgs builds rank's write-phase exchange messages, one per
// destination aggregator rank the footprint actually touches: for each
// touched domain in ascending order, the rank's clips against that
// domain concatenated onto the domain owner's payload. The (domain asc,
// clip asc) canonical order is what lets the aggregator side consume a
// payload with one plain cursor. Payload buffers come from the handle's
// pool; the consumer recycles them.
func (c *Collective) packRankMsgs(pl *plan, rank int, buf []byte) []mpp.Msg {
	msgs := c.msgScratch[rank][:0]
	for _, a32 := range pl.domsOf[rank] {
		a := int(a32)
		dst := pl.owner[a]
		i := c.dstIdx[dst]
		if i < 0 {
			i = len(msgs)
			msgs = append(msgs, mpp.Msg{Dst: dst, Data: c.getPay()})
			c.dstIdx[dst] = i
		}
		pl.forEachClip(rank, a, func(cl clip) {
			msgs[i].Data = append(msgs[i].Data, buf[cl.bufOff:cl.bufOff+cl.n*pl.bs]...)
		})
	}
	for _, m := range msgs {
		c.dstIdx[m.Dst] = -1
	}
	c.msgScratch[rank] = msgs
	return msgs
}

// assembleDomains builds the owned domains' buffers from the write-phase
// receive list. The caller sorts recv by source rank first, so each
// domain sees its sources applied in rank order and overlap resolution
// (Options.LastWriterWins) matches the rank-ordered semantics. Each
// payload is one source's clips across the owned domains in ascending
// order — packRankMsgs's concatenation — so a single per-message cursor
// consumes it; consumed payloads return to the pool.
func (c *Collective) assembleDomains(pl *plan, owned []int, recv []mpp.RecvMsg, dombufs [][]byte) {
	mpp.SortBySrc(recv)
	for _, m := range recv {
		var off int64
		for i, a := range owned {
			dombuf := dombufs[i]
			pl.forEachClip(m.Src, a, func(cl clip) {
				n := cl.n * pl.bs
				copy(dombuf[cl.domOff:cl.domOff+n], m.Data[off:off+n])
				off += n
			})
		}
		c.putPay(m.Data)
	}
}

// packDomainMsgs builds an aggregator's read-phase messages, one per
// rank with clips in any owned domain: the rank's clips copied out of
// the freshly read domain buffers, owned domains in ascending order —
// the order scatterRankMsgs consumes.
func (c *Collective) packDomainMsgs(pl *plan, rank int, owned []int, dombufs [][]byte) []mpp.Msg {
	msgs := c.msgScratch[rank][:0]
	for i, a := range owned {
		dombuf := dombufs[i]
		for _, r32 := range pl.ranksIn[a] {
			r := int(r32)
			j := c.dstIdx[r]
			if j < 0 {
				j = len(msgs)
				msgs = append(msgs, mpp.Msg{Dst: r, Data: c.getPay()})
				c.dstIdx[r] = j
			}
			pl.forEachClip(r, a, func(cl clip) {
				msgs[j].Data = append(msgs[j].Data, dombuf[cl.domOff:cl.domOff+cl.n*pl.bs]...)
			})
		}
	}
	for _, m := range msgs {
		c.dstIdx[m.Dst] = -1
	}
	c.msgScratch[rank] = msgs
	return msgs
}

// scatterRankMsgs delivers the read-phase payloads into rank's buffer,
// consuming each aggregator's payload with a per-message cursor across
// that aggregator's domains in ascending order (scatter targets are
// disjoint buffer ranges, so message order is immaterial). Consumed
// payloads return to the pool.
func (c *Collective) scatterRankMsgs(pl *plan, rank int, recv []mpp.RecvMsg, buf []byte) {
	for _, m := range recv {
		var off int64
		for _, a32 := range pl.domsOf[rank] {
			a := int(a32)
			if pl.owner[a] != m.Src {
				continue
			}
			pl.forEachClip(rank, a, func(cl clip) {
				n := cl.n * pl.bs
				copy(buf[cl.bufOff:cl.bufOff+n], m.Data[off:off+n])
				off += n
			})
		}
		c.putPay(m.Data)
	}
}

// RecordRangeReq builds the VecReq covering records [firstRec,
// firstRec+nRec) of group file `file`, with the records' bytes at
// rank-buffer offset bufOff — the record-list convenience over the
// block-range API. The file's framing must be dense (records tile fs
// blocks with no padding) and the record range must cover whole fs
// blocks, so that ranks' byte ranges remain block-disjoint.
func RecordRangeReq(g *pfs.FileGroup, file int, firstRec, nRec, bufOff int64) (VecReq, error) {
	if file < 0 || file >= g.Len() {
		return VecReq{}, fmt.Errorf("collective: file %d of %d", file, g.Len())
	}
	m := g.File(file).Mapper()
	if !m.Dense() {
		return VecReq{}, fmt.Errorf("collective: file %q frames records with padding; use block-range requests", g.File(file).Name())
	}
	if firstRec < 0 || nRec < 0 || firstRec+nRec > m.NumRecords() {
		return VecReq{}, fmt.Errorf("collective: records [%d,%d) of %d", firstRec, firstRec+nRec, m.NumRecords())
	}
	bs := int64(m.FSBlockSize())
	rs := int64(m.RecordSize())
	if (firstRec*rs)%bs != 0 || (nRec*rs)%bs != 0 {
		return VecReq{}, fmt.Errorf("collective: records [%d,%d) of size %d do not cover whole %d-byte fs blocks",
			firstRec, firstRec+nRec, rs, bs)
	}
	return VecReq{File: file, Vec: blockio.Vec{{
		Block:  firstRec * rs / bs,
		N:      nRec * rs / bs,
		BufOff: bufOff,
	}}}, nil
}
