package collective

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/blockio"
	"repro/internal/ioserver"
	"repro/internal/mpp"
	"repro/internal/sim"
)

// serviceFor stands up an I/O server with one job lane on the engine.
func serviceFor(e *sim.Engine, pol ioserver.Policy, workers int) (*ioserver.Server, *ioserver.Job) {
	srv := ioserver.New(ioserver.Config{Workers: workers, Policy: pol})
	job := srv.AddJob(ioserver.JobConfig{Name: "col"})
	srv.Start(e)
	return srv, job
}

// TestNonblockingWriteMatchesBlocking: IWriteAll+Wait lands exactly the
// bytes WriteAll lands, for every layout and policy.
func TestNonblockingWriteMatchesBlocking(t *testing.T) {
	for _, pl := range testPlacements {
		for _, pol := range []ioserver.Policy{ioserver.FIFO, ioserver.FairShare, ioserver.Priority} {
			t.Run(fmt.Sprintf("%s/%v", pl.name, pol), func(t *testing.T) {
				const nRanks = 8
				// Blocking reference.
				e, g, _ := collectiveFixture(t, storeDirect, pl.spec)
				col, err := Open(g, nRanks, Options{})
				if err != nil {
					t.Fatal(err)
				}
				_, join := mpp.Run(e, nRanks, "w", func(p *mpp.Proc) {
					reqs, buf, slots := strideReqs(g, p.Rank(), nRanks)
					for i, gb := range slots {
						pattern(gb, buf[int64(i)*testBS:int64(i+1)*testBS])
					}
					if err := col.WriteAll(p, reqs, buf); err != nil {
						t.Errorf("rank %d: %v", p.Rank(), err)
					}
				})
				e.Go("join", func(sp *sim.Proc) { join.Wait(sp) })
				if err := e.Run(); err != nil {
					t.Fatal(err)
				}
				want := readAllBlocks(t, g)

				// Nonblocking run on a twin setup.
				e2, g2, _ := collectiveFixture(t, storeDirect, pl.spec)
				srv, jb := serviceFor(e2, pol, 2)
				col2, err := Open(g2, nRanks, Options{Service: jb})
				if err != nil {
					t.Fatal(err)
				}
				_, join2 := mpp.Run(e2, nRanks, "iw", func(p *mpp.Proc) {
					reqs, buf, slots := strideReqs(g2, p.Rank(), nRanks)
					for i, gb := range slots {
						pattern(gb, buf[int64(i)*testBS:int64(i+1)*testBS])
					}
					h, err := col2.IWriteAll(p, reqs, buf)
					if err != nil {
						t.Errorf("rank %d: %v", p.Rank(), err)
						return
					}
					p.Compute(500 * time.Microsecond) // overlapped work
					if err := h.Wait(p); err != nil {
						t.Errorf("rank %d: %v", p.Rank(), err)
					}
					if !h.Test(p) {
						t.Errorf("rank %d: Test false after Wait", p.Rank())
					}
				})
				e2.Go("join", func(sp *sim.Proc) { join2.Wait(sp); srv.Stop(sp) })
				if err := e2.Run(); err != nil {
					t.Fatal(err)
				}
				if got := readAllBlocks(t, g2); !bytes.Equal(got, want) {
					t.Fatal("nonblocking write landed different bytes than blocking write")
				}
				st := jb.Stats()
				if st.Submitted == 0 || st.Submitted != st.Completed {
					t.Fatalf("server accounting: %+v", st)
				}
			})
		}
	}
}

// TestNonblockingReadMatchesBlocking: IReadAll delivers the same rank
// buffers ReadAll delivers (buffers fill only at Wait).
func TestNonblockingReadMatchesBlocking(t *testing.T) {
	for _, pl := range testPlacements {
		t.Run(pl.name, func(t *testing.T) {
			const nRanks = 8
			e, g, _ := collectiveFixture(t, storeDirect, pl.spec)
			// Seed every block untimed through the independent path.
			ctx := sim.NewWall()
			for f := 0; f < g.Len(); f++ {
				total := g.File(f).Mapper().TotalFSBlocks()
				buf := make([]byte, total*testBS)
				for b := int64(0); b < total; b++ {
					pattern(g.Offset(f)+b, buf[b*testBS:(b+1)*testBS])
				}
				if err := g.File(f).Set().WriteVec(ctx, blockio.Vec{{Block: 0, N: total}}, buf); err != nil {
					t.Fatal(err)
				}
			}

			srv, jb := serviceFor(e, ioserver.FairShare, 2)
			colB, err := Open(g, nRanks, Options{})
			if err != nil {
				t.Fatal(err)
			}
			colNB, err := Open(g, nRanks, Options{Service: jb})
			if err != nil {
				t.Fatal(err)
			}
			_, join := mpp.Run(e, nRanks, "r", func(p *mpp.Proc) {
				reqs, bufWant, _ := strideReqs(g, p.Rank(), nRanks)
				if err := colB.ReadAll(p, reqs, bufWant); err != nil {
					t.Errorf("rank %d blocking: %v", p.Rank(), err)
				}
				reqs2, bufGot, _ := strideReqs(g, p.Rank(), nRanks)
				h, err := colNB.IReadAll(p, reqs2, bufGot)
				if err != nil {
					t.Errorf("rank %d: %v", p.Rank(), err)
					return
				}
				p.Compute(200 * time.Microsecond)
				if err := h.Wait(p); err != nil {
					t.Errorf("rank %d: %v", p.Rank(), err)
				}
				if !bytes.Equal(bufGot, bufWant) {
					t.Errorf("rank %d: nonblocking read delivered different bytes", p.Rank())
				}
			})
			e.Go("join", func(sp *sim.Proc) { join.Wait(sp); srv.Stop(sp) })
			if err := e.Run(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestNonblockingRequiresService documents the Options.Service guard.
func TestNonblockingRequiresService(t *testing.T) {
	const nRanks = 4
	e, g, _ := collectiveFixture(t, storeDirect, testPlacements[0].spec)
	col, err := Open(g, nRanks, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, join := mpp.Run(e, nRanks, "iw", func(p *mpp.Proc) {
		reqs, buf, _ := strideReqs(g, p.Rank(), nRanks)
		if _, err := col.IWriteAll(p, reqs, buf); err == nil {
			t.Errorf("rank %d: IWriteAll without a service succeeded", p.Rank())
		}
	})
	e.Go("join", func(sp *sim.Proc) { join.Wait(sp) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestNonblockingOverlapsCompute: with D of post-issue computation, the
// nonblocking write finishes sooner than blocking write + D — the
// server's device work ran under the ranks' compute.
func TestNonblockingOverlapsCompute(t *testing.T) {
	const nRanks = 8
	const compute = 20 * time.Millisecond
	elapsed := func(nonblocking bool) time.Duration {
		e, g, _ := collectiveFixture(t, storeDirect, testPlacements[0].spec)
		var opts Options
		var srv *ioserver.Server
		if nonblocking {
			var jb *ioserver.Job
			srv, jb = serviceFor(e, ioserver.FIFO, 2)
			opts.Service = jb
		}
		col, err := Open(g, nRanks, opts)
		if err != nil {
			t.Fatal(err)
		}
		var done time.Duration
		_, join := mpp.Run(e, nRanks, "w", func(p *mpp.Proc) {
			reqs, buf, _ := strideReqs(g, p.Rank(), nRanks)
			if nonblocking {
				h, err := col.IWriteAll(p, reqs, buf)
				if err != nil {
					t.Errorf("rank %d: %v", p.Rank(), err)
					return
				}
				p.Compute(compute)
				if err := h.Wait(p); err != nil {
					t.Errorf("rank %d: %v", p.Rank(), err)
				}
			} else {
				if err := col.WriteAll(p, reqs, buf); err != nil {
					t.Errorf("rank %d: %v", p.Rank(), err)
				}
				p.Compute(compute)
			}
			p.Barrier()
			if p.Rank() == 0 {
				done = p.Now()
			}
		})
		e.Go("join", func(sp *sim.Proc) {
			join.Wait(sp)
			if srv != nil {
				srv.Stop(sp)
			}
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return done
	}
	blocking := elapsed(false)
	nonblocking := elapsed(true)
	if nonblocking >= blocking {
		t.Fatalf("no overlap win: nonblocking %v vs blocking %v", nonblocking, blocking)
	}
}
