package collective

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/internal/blockio"
	"repro/internal/mpp"
	"repro/internal/sim"
)

// TestPipelinedEquivalence checks, across store kinds × layouts ×
// locality × chunk sizes (sub-block, one block, odd multi-block, larger
// than any domain), that the chunked schedule lands and reads back
// exactly the bytes the single-shot schedule does.
func TestPipelinedEquivalence(t *testing.T) {
	chunks := []int64{1, testBS, 3*testBS + 7, 1 << 20}
	for _, kind := range []storeKind{storeDirect, storeParity, storeMirror} {
		for _, pl := range testPlacements {
			for _, locality := range []bool{false, true} {
				for _, chunk := range chunks {
					t.Run(fmt.Sprintf("%s/%s/locality=%v/chunk=%d", kind, pl.name, locality, chunk), func(t *testing.T) {
						const nRanks = 8
						e, g, _ := collectiveFixture(t, kind, pl.spec)
						col, err := Open(g, nRanks, Options{Locality: locality, ChunkBytes: chunk})
						if err != nil {
							t.Fatal(err)
						}
						mg, join := mpp.Run(e, nRanks, "w", func(p *mpp.Proc) {
							reqs, buf, slots := strideReqs(g, p.Rank(), nRanks)
							for i, gb := range slots {
								pattern(gb, buf[int64(i)*testBS:int64(i+1)*testBS])
							}
							if err := col.WriteAll(p, reqs, buf); err != nil {
								t.Errorf("rank %d write: %v", p.Rank(), err)
								return
							}
							// Read the stride back through the same chunked
							// handle and verify in place.
							rbuf := make([]byte, len(buf))
							if err := col.ReadAll(p, reqs, rbuf); err != nil {
								t.Errorf("rank %d read: %v", p.Rank(), err)
								return
							}
							if !bytes.Equal(rbuf, buf) {
								t.Errorf("rank %d: chunked read-back diverges", p.Rank())
							}
						})
						mg.SetLink(0, 100e6)
						mg.SetBisection(500e6)
						e.Go("join", func(sp *sim.Proc) { join.Wait(sp) })
						if err := e.Run(); err != nil {
							t.Fatal(err)
						}
						got := readAllBlocks(t, g)
						want := make([]byte, testBS)
						for gb := int64(0); gb < g.TotalFSBlocks(); gb++ {
							pattern(gb, want)
							if !bytes.Equal(got[gb*testBS:(gb+1)*testBS], want) {
								t.Fatalf("global block %d corrupt after chunked collective write", gb)
							}
						}
					})
				}
			}
		}
	}
}

// TestPipelinedLastWriterWins pins the MPI-IO overlap semantics on the
// chunked schedule: single-block chunks slice the overlapping ranges
// across many rounds, and the outcome must still be as if ranks wrote
// in rank order.
func TestPipelinedLastWriterWins(t *testing.T) {
	for _, locality := range []bool{false, true} {
		t.Run(fmt.Sprintf("locality=%v", locality), func(t *testing.T) {
			const nRanks = 3
			e, g, _ := collectiveFixture(t, storeDirect, testPlacements[0].spec)
			col, err := Open(g, nRanks, Options{
				Locality: locality, LastWriterWins: true, ChunkBytes: testBS,
			})
			if err != nil {
				t.Fatal(err)
			}
			ranges := [][2]int64{{0, 4}, {2, 6}, {3, 5}}
			_, join := mpp.Run(e, nRanks, "w", func(p *mpp.Proc) {
				lo, hi := ranges[p.Rank()][0], ranges[p.Rank()][1]
				buf := make([]byte, (hi-lo)*testBS)
				for i := range buf {
					buf[i] = byte(100 + p.Rank())
				}
				reqs := []VecReq{{File: 0, Vec: blockio.Vec{{Block: lo, N: hi - lo, BufOff: 0}}}}
				if err := col.WriteAll(p, reqs, buf); err != nil {
					t.Errorf("rank %d: %v", p.Rank(), err)
				}
			})
			e.Go("join", func(sp *sim.Proc) { join.Wait(sp) })
			if err := e.Run(); err != nil {
				t.Fatal(err)
			}
			got := readAllBlocks(t, g)
			winners := []int{0, 0, 1, 2, 2, 1}
			for gb, w := range winners {
				want := byte(100 + w)
				for i := int64(0); i < testBS; i++ {
					if got[int64(gb)*testBS+i] != want {
						t.Fatalf("block %d byte %d = %d, want rank %d's %d",
							gb, i, got[int64(gb)*testBS+i], w, want)
					}
				}
			}
		})
	}
}

// TestPipelinedRaggedChunks drives the two ragged shapes at once: a
// footprint that does not divide by the aggregator count (the last
// domain short) and a chunk size that does not divide the domain (the
// last chunk of every domain short), over a footprint straddling the
// file boundary.
func TestPipelinedRaggedChunks(t *testing.T) {
	const nRanks = 4
	e, g, _ := collectiveFixture(t, storeDirect, testPlacements[0].spec)
	// 10 covered blocks over 4 aggregators → domains 3+3+3+1; chunk of 2
	// blocks → rounds=2 with ragged chunk tails in every domain.
	col, err := Open(g, nRanks, Options{Aggregators: 4, ChunkBytes: 2 * testBS})
	if err != nil {
		t.Fatal(err)
	}
	_, join := mpp.Run(e, nRanks, "w", func(p *mpp.Proc) {
		r := int64(p.Rank())
		var vecA, vecB blockio.Vec
		buf := make([]byte, 0, 3*testBS)
		for gb := int64(36) + r; gb < 46; gb += nRanks {
			off := int64(len(buf))
			buf = append(buf, make([]byte, testBS)...)
			pattern(gb, buf[off:])
			if gb < 40 {
				vecA = append(vecA, blockio.VecSeg{Block: gb, N: 1, BufOff: off})
			} else {
				vecB = append(vecB, blockio.VecSeg{Block: gb - 40, N: 1, BufOff: off})
			}
		}
		var reqs []VecReq
		if len(vecA) > 0 {
			reqs = append(reqs, VecReq{File: 0, Vec: vecA})
		}
		if len(vecB) > 0 {
			reqs = append(reqs, VecReq{File: 1, Vec: vecB})
		}
		if err := col.WriteAll(p, reqs, buf); err != nil {
			t.Errorf("rank %d: %v", p.Rank(), err)
		}
	})
	e.Go("join", func(sp *sim.Proc) { join.Wait(sp) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	got := readAllBlocks(t, g)
	want := make([]byte, testBS)
	for gb := int64(36); gb < 46; gb++ {
		pattern(gb, want)
		if !bytes.Equal(got[gb*testBS:(gb+1)*testBS], want) {
			t.Fatalf("global block %d corrupt after ragged chunked write", gb)
		}
	}
	zero := make([]byte, testBS)
	for _, gb := range []int64{0, 35, 46, g.TotalFSBlocks() - 1} {
		if !bytes.Equal(got[gb*testBS:(gb+1)*testBS], zero) {
			t.Fatalf("global block %d touched outside the footprint", gb)
		}
	}
}

// TestPipelinedOverlapStats: with both the link and the drives charging
// real time, the chunked schedule must report genuinely concurrent
// exchange and access (nonzero Overlap) while the single-shot write
// schedule reports none, and the chunked write must finish earlier.
func TestPipelinedOverlapStats(t *testing.T) {
	run := func(chunk int64) (ExchangeStats, time.Duration) {
		const nRanks = 8
		e, g, _ := collectiveFixture(t, storeDirect, testPlacements[0].spec)
		col, err := Open(g, nRanks, Options{ChunkBytes: chunk})
		if err != nil {
			t.Fatal(err)
		}
		mg, join := mpp.Run(e, nRanks, "w", func(p *mpp.Proc) {
			reqs, buf, slots := strideReqs(g, p.Rank(), nRanks)
			for i, gb := range slots {
				pattern(gb, buf[int64(i)*testBS:int64(i+1)*testBS])
			}
			if err := col.WriteAll(p, reqs, buf); err != nil {
				t.Errorf("rank %d: %v", p.Rank(), err)
			}
		})
		mg.SetLink(10*time.Microsecond, 1e6)
		mg.SetBisection(4e6)
		e.Go("join", func(sp *sim.Proc) { join.Wait(sp) })
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return col.LastStats(), e.Now()
	}
	serial, serialTime := run(0)
	piped, pipedTime := run(4 * testBS)
	if !serial.SameBytes(piped) {
		t.Errorf("schedules moved different bytes: %+v vs %+v", serial, piped)
	}
	if serial.Overlap != 0 {
		t.Errorf("single-shot write reported %v overlap, want none", serial.Overlap)
	}
	if piped.Overlap <= 0 {
		t.Errorf("chunked write reported no exchange/access overlap: %+v", piped)
	}
	if piped.ExchangeTime <= 0 || piped.AccessTime <= 0 {
		t.Errorf("chunked phase times degenerate: %+v", piped)
	}
	// No modeled-time assertion here: on this deliberately tiny fixture
	// the per-chunk request overhead swamps the overlap. TestPipelineWin
	// (package pario_test) enforces the win on a realistic checkpoint.
	t.Logf("single-shot %v (overlap %v) → chunked %v (exchange %v, access %v, overlap %v)",
		serialTime, serial.Overlap, pipedTime, piped.ExchangeTime, piped.AccessTime, piped.Overlap)
}
