package collective

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"testing"
	"time"

	"repro/internal/blockio"
	"repro/internal/device"
	"repro/internal/mpp"
	"repro/internal/pfs"
	"repro/internal/probe"
	"repro/internal/sim"
)

// detResult is everything observable about one contended pipelined
// collective run: if any field differs between two runs of the same
// scenario, the simulation is non-deterministic.
type detResult struct {
	now          time.Duration
	stats        ExchangeStats
	msgs, bytes  int64
	rankSums     []uint64
	writeErr     error
	readErr      error
	readBackDiff int
}

// runDeterminismScenario executes one 512-rank contended pipelined
// collective (strided write + read-back) on a fresh engine and 16-drive
// store, and returns the full observable state. A non-nil rec is
// attached across every layer (engine, disks, store, rank group) before
// the run; recording must not change any modeled observable.
func runDeterminismScenario(t *testing.T, nRanks int, rec *probe.Recorder) detResult {
	t.Helper()
	e := sim.NewEngine()
	geom := device.Geometry{BlockSize: testBS, BlocksPerCyl: 8, Cylinders: 64}
	disks := make([]*device.Disk, 16)
	for i := range disks {
		disks[i] = device.New(device.Config{
			Name: fmt.Sprintf("d%d", i), Geometry: geom, Engine: e,
		})
	}
	store, err := blockio.NewDirect(disks)
	if err != nil {
		t.Fatal(err)
	}
	vol := pfs.NewVolume(store)
	nBlocks := int64(2 * nRanks)
	if _, err := vol.Create(pfs.Spec{
		Name: "chk", Org: pfs.OrgSequential, RecordSize: testBS,
		NumRecords: nBlocks, Placement: pfs.PlaceStriped, StripeUnitFS: 1,
	}); err != nil {
		t.Fatal(err)
	}
	g, err := vol.OpenGroup("chk")
	if err != nil {
		t.Fatal(err)
	}
	col, err := Open(g, nRanks, Options{ChunkBytes: 16 * testBS})
	if err != nil {
		t.Fatal(err)
	}
	if rec != nil {
		e.SetProbe(rec)
		for _, d := range disks {
			d.SetProbe(rec)
		}
		store.SetProbe(rec)
	}
	res := detResult{rankSums: make([]uint64, nRanks)}
	mg, join := mpp.Run(e, nRanks, "w", func(p *mpp.Proc) {
		r := int64(p.Rank())
		// Blocks r and r+nRanks: two domains per rank, ~2·nRanks/naggs
		// source ranks per aggregator — contended but sparse.
		reqs := []VecReq{{File: 0, Vec: blockio.Vec{
			{Block: r, N: 1, BufOff: 0},
			{Block: r + int64(nRanks), N: 1, BufOff: testBS},
		}}}
		buf := make([]byte, 2*testBS)
		pattern(r, buf[:testBS])
		pattern(r+int64(nRanks), buf[testBS:])
		if err := col.WriteAll(p, reqs, buf); err != nil {
			res.writeErr = err
			return
		}
		rbuf := make([]byte, len(buf))
		if err := col.ReadAll(p, reqs, rbuf); err != nil {
			res.readErr = err
			return
		}
		if !bytes.Equal(rbuf, buf) {
			res.readBackDiff++
		}
		h := fnv.New64a()
		h.Write(rbuf)
		res.rankSums[p.Rank()] = h.Sum64()
	})
	mg.SetLink(2*time.Microsecond, 100e6)
	mg.SetBisection(500e6)
	if rec != nil {
		mg.SetProbe(rec, "w")
	}
	e.Go("join", func(sp *sim.Proc) { join.Wait(sp) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	res.now = e.Now()
	res.stats = col.LastStats()
	res.msgs, res.bytes = mg.Traffic()
	return res
}

// TestPipelinedDeterminism512 runs the same 512-rank contended pipelined
// collective twice on fresh engines and requires every modeled
// observable — final virtual time, LastStats, Traffic, per-rank data —
// to be bit-identical. This is the regression fence for the engine's
// pooled proc shells, the sparse exchange's by-reference delivery and
// the pooled pack scratch: none of that machinery may leak wall-clock
// scheduling into virtual time. The CI race job runs this package, so
// the same scenario is also exercised under -race.
func TestPipelinedDeterminism512(t *testing.T) {
	const nRanks = 512
	a := runDeterminismScenario(t, nRanks, nil)
	b := runDeterminismScenario(t, nRanks, nil)
	if a.writeErr != nil || a.readErr != nil {
		t.Fatalf("collective failed: write=%v read=%v", a.writeErr, a.readErr)
	}
	if a.readBackDiff != 0 {
		t.Fatalf("%d ranks read back different bytes than written", a.readBackDiff)
	}
	if a.now != b.now {
		t.Errorf("final virtual time differs between runs: %v vs %v", a.now, b.now)
	}
	if a.stats != b.stats {
		t.Errorf("LastStats differs between runs:\n  %+v\n  %+v", a.stats, b.stats)
	}
	if a.msgs != b.msgs || a.bytes != b.bytes {
		t.Errorf("Traffic differs between runs: (%d msgs, %d bytes) vs (%d msgs, %d bytes)",
			a.msgs, a.bytes, b.msgs, b.bytes)
	}
	for r := range a.rankSums {
		if a.rankSums[r] != b.rankSums[r] {
			t.Fatalf("rank %d read different data between runs", r)
		}
	}
}
