package collective

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/blockio"
	"repro/internal/mpp"
	"repro/internal/sim"
)

// strategyStrats is every Options.Strategy value a collective accepts.
var strategyStrats = []struct {
	name  string
	strat blockio.Strategy
}{
	{"default", blockio.StrategyDefault},
	{"vectored", blockio.StrategyVectored},
	{"sieved", blockio.StrategySieved},
	{"collective", blockio.StrategyCollective},
	{"auto", blockio.StrategyAuto},
}

// runStrategyOverlap executes one overlapping 4-rank strided write under
// the given strategy: rank r writes blocks {3r, 3r+2, ..., 3r+10} of
// file 0, so ranks r and r+2 overlap on three blocks and every rank's
// sieved covering span has holes (the read-modify-write path). Returns
// the per-rank-identical error string (empty on success), the final
// group image, and the route taken.
func runStrategyOverlap(t *testing.T, kind storeKind, strat blockio.Strategy, lww bool) (errStr string, img []byte, route string) {
	t.Helper()
	e, g, _ := collectiveFixture(t, kind, testPlacements[1].spec)
	col, err := Open(g, 4, Options{LastWriterWins: lww, Strategy: strat})
	if err != nil {
		t.Fatal(err)
	}
	errStrs := make([]string, 4)
	_, join := mpp.Run(e, 4, "strat", func(p *mpp.Proc) {
		r := p.Rank()
		var vec blockio.Vec
		for i := int64(0); i < 6; i++ {
			vec = append(vec, blockio.VecSeg{Block: int64(r)*3 + i*2, N: 1, BufOff: i * testBS})
		}
		buf := make([]byte, 6*testBS)
		for i := range buf {
			buf[i] = byte(100 + r)
		}
		if err := col.WriteAll(p, []VecReq{{File: 0, Vec: vec}}, buf); err != nil {
			errStrs[r] = err.Error()
		}
	})
	e.Go("join", func(sp *sim.Proc) { join.Wait(sp) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for r := 1; r < 4; r++ {
		if errStrs[r] != errStrs[0] {
			t.Fatalf("strategy %v: rank %d error %q != rank 0 error %q", strat, r, errStrs[r], errStrs[0])
		}
	}
	return errStrs[0], readAllBlocks(t, g), col.LastRoute()
}

// TestStrategyOverlapErrorIdentical is the guarantee the sieved and
// vectored routes must not weaken: a cross-rank write overlap (without
// LastWriterWins) is rejected with the exact same error, on every rank,
// whatever Options.Strategy says — validation runs before route
// selection. The store must also be untouched.
func TestStrategyOverlapErrorIdentical(t *testing.T) {
	for _, kind := range []storeKind{storeDirect, storeParity, storeMirror} {
		t.Run(kind.String(), func(t *testing.T) {
			var want string
			for _, tc := range strategyStrats {
				errStr, img, _ := runStrategyOverlap(t, kind, tc.strat, false)
				if errStr == "" {
					t.Fatalf("strategy %s: overlapping write succeeded, want rejection", tc.name)
				}
				if want == "" {
					want = errStr
				} else if errStr != want {
					t.Fatalf("strategy %s error %q != default strategy error %q", tc.name, errStr, want)
				}
				if !bytes.Equal(img, make([]byte, len(img))) {
					t.Fatalf("strategy %s: rejected write modified the store", tc.name)
				}
			}
		})
	}
}

// TestStrategyLWWEquivalence is the LastWriterWins half of the same
// guarantee: with overlaps permitted, every strategy must land the exact
// two-phase rank-order-wins image — the sieved route via
// higher-rank-footprint clipping over read-modify-write spans — and land
// it deterministically (two runs, byte-identical images).
func TestStrategyLWWEquivalence(t *testing.T) {
	for _, kind := range []storeKind{storeDirect, storeParity, storeMirror} {
		t.Run(kind.String(), func(t *testing.T) {
			var want []byte
			for _, tc := range strategyStrats {
				var prev []byte
				var prevRoute string
				for run := 0; run < 2; run++ {
					errStr, img, route := runStrategyOverlap(t, kind, tc.strat, true)
					if errStr != "" {
						t.Fatalf("strategy %s run %d: %s", tc.name, run, errStr)
					}
					if run == 0 {
						prev, prevRoute = img, route
						continue
					}
					if !bytes.Equal(img, prev) || route != prevRoute {
						t.Fatalf("strategy %s: two identical runs diverged (route %s then %s)", tc.name, prevRoute, route)
					}
				}
				if want == nil {
					want = prev
					continue
				}
				if !bytes.Equal(prev, want) {
					t.Fatalf("strategy %s final image differs from the two-phase rank-order image", tc.name)
				}
			}
		})
	}
}

// TestStrategyForcedRoutes pins the route each forced strategy takes,
// and that LastRoute reports it.
func TestStrategyForcedRoutes(t *testing.T) {
	for _, tc := range []struct {
		strat blockio.Strategy
		want  string
	}{
		{blockio.StrategyDefault, "two-phase"},
		{blockio.StrategyCollective, "two-phase"},
		{blockio.StrategyVectored, "vectored"},
		{blockio.StrategySieved, "sieved"},
	} {
		t.Run(fmt.Sprint(tc.strat), func(t *testing.T) {
			_, _, route := runStrategyOverlap(t, storeDirect, tc.strat, true)
			if route != tc.want {
				t.Fatalf("strategy %v took route %q, want %q", tc.strat, route, tc.want)
			}
		})
	}
}
