//go:build race

package collective

// raceEnabled reports whether the race detector is active; perf-ratio
// assertions are skipped under -race, where instrumentation overhead
// distorts the comparison.
const raceEnabled = true
