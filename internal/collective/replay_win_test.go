// Plan capture & replay acceptance (the PR 10 tentpole criterion): on a
// 1024-rank × 64-iteration contended checkpoint loop, every iteration
// after the first must replay the captured schedule — ≥3× fewer host
// allocations and ≥2× less host wall-clock than iteration 1's fresh
// build — while the modeled times, data, and probe traces stay
// bit-identical to the uncached path. The virtual world cannot tell the
// cache exists; only the host does.

package collective

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"sort"
	"testing"
	"time"

	"repro/internal/blockio"
	"repro/internal/device"
	"repro/internal/mpp"
	"repro/internal/pfs"
	"repro/internal/probe"
	"repro/internal/sim"
)

// replayWinPerRank is the number of single-block interleaved segments
// each rank writes per checkpoint.
const replayWinPerRank = 8

// replayWinContent is the byte at offset j of rank's k-th block in
// iteration it.
func replayWinContent(it, rank, k, j int) byte {
	return byte(11*it + 17*rank + 23*k + 3*j + 1)
}

// replayWinResult is one measured checkpoint-loop run.
type replayWinResult struct {
	wall    []time.Duration // host wall-clock per iteration (rank-0 window)
	mallocs []uint64        // host allocations per iteration
	vdur    []time.Duration // modeled duration per iteration
	now     time.Duration   // final virtual time
	image   uint64          // FNV-1a of the final file image
	cache   CacheStats
	trace   []byte
	metrics []byte
}

// runReplayWin executes the contended checkpoint loop: nRanks ranks each
// write the same replayWinPerRank interleaved blocks every iteration
// with fresh contents. Host wall-clock and allocation counts are
// measured per iteration at rank 0's call boundaries — under the
// engine's strict alternation the window spans the whole group's work
// for that collective.
func runReplayWin(tb testing.TB, nRanks, iters int, cache bool, rec *probe.Recorder) replayWinResult {
	tb.Helper()
	e := sim.NewEngine()
	geom := device.Geometry{BlockSize: testBS, BlocksPerCyl: 8, Cylinders: 64}
	disks := make([]*device.Disk, 16)
	for i := range disks {
		disks[i] = device.New(device.Config{
			Name: fmt.Sprintf("d%d", i), Geometry: geom, Engine: e,
		})
	}
	store, err := blockio.NewDirect(disks)
	if err != nil {
		tb.Fatal(err)
	}
	vol := pfs.NewVolume(store)
	nBlocks := int64(replayWinPerRank * nRanks)
	if _, err := vol.Create(pfs.Spec{
		Name: "chk", Org: pfs.OrgSequential, RecordSize: testBS,
		NumRecords: nBlocks, Placement: pfs.PlaceStriped, StripeUnitFS: 1,
	}); err != nil {
		tb.Fatal(err)
	}
	g, err := vol.OpenGroup("chk")
	if err != nil {
		tb.Fatal(err)
	}
	opts := Options{}
	if !cache {
		opts.PlanCache = -1
	}
	col, err := Open(g, nRanks, opts)
	if err != nil {
		tb.Fatal(err)
	}
	if rec != nil {
		e.SetProbe(rec)
		for _, d := range disks {
			d.SetProbe(rec)
		}
		store.SetProbe(rec)
	}
	res := replayWinResult{
		wall:    make([]time.Duration, iters),
		mallocs: make([]uint64, iters),
		vdur:    make([]time.Duration, iters),
	}
	var mg *mpp.Group
	var join *sim.Group
	mg, join = mpp.Run(e, nRanks, "ck", func(p *mpp.Proc) {
		rank := p.Rank()
		var vec blockio.Vec
		for k := 0; k < replayWinPerRank; k++ {
			vec = append(vec, blockio.VecSeg{
				Block: int64(rank + k*nRanks), N: 1, BufOff: int64(k) * testBS,
			})
		}
		reqs := []VecReq{{File: 0, Vec: vec}}
		buf := make([]byte, replayWinPerRank*testBS)
		var ms runtime.MemStats
		var m0 uint64
		var t0 time.Time
		var v0 time.Duration
		for it := 0; it < iters; it++ {
			for k := 0; k < replayWinPerRank; k++ {
				blk := buf[k*testBS : (k+1)*testBS]
				for j := range blk {
					blk[j] = replayWinContent(it, rank, k, j)
				}
			}
			if rank == 0 {
				runtime.ReadMemStats(&ms)
				m0, t0, v0 = ms.Mallocs, time.Now(), p.Now()
			}
			if err := col.WriteAll(p, reqs, buf); err != nil {
				tb.Errorf("iter %d rank %d: %v", it, rank, err)
			}
			if rank == 0 {
				res.wall[it] = time.Since(t0)
				res.vdur[it] = p.Now() - v0
				runtime.ReadMemStats(&ms)
				res.mallocs[it] = ms.Mallocs - m0
			}
		}
	})
	// Contended interconnect: per-hop latency plus a shared bisection
	// link the whole exchange squeezes through.
	mg.SetLink(2*time.Microsecond, 50e6)
	mg.SetBisection(200e6)
	if rec != nil {
		mg.SetProbe(rec, "ck")
	}
	e.Go("join", func(sp *sim.Proc) { join.Wait(sp) })
	if err := e.Run(); err != nil {
		tb.Fatal(err)
	}
	res.now = e.Now()
	res.cache = col.PlanCacheStats()

	// Final image: must hold the last iteration's bytes exactly.
	img := make([]byte, nBlocks*testBS)
	if err := g.File(0).Set().ReadVec(sim.NewWall(), blockio.Vec{{Block: 0, N: nBlocks}}, img); err != nil {
		tb.Fatal(err)
	}
	for b := int64(0); b < nBlocks; b++ {
		rank, k := int(b)%nRanks, int(b)/nRanks
		for j := 0; j < 4; j++ { // spot-check a prefix of each block
			if want := replayWinContent(iters-1, rank, k, j); img[b*testBS+int64(j)] != want {
				tb.Errorf("block %d byte %d: got %d, want %d (last iteration's data)", b, j, img[b*testBS+int64(j)], want)
				break
			}
		}
	}
	h := fnv.New64a()
	h.Write(img)
	res.image = h.Sum64()
	if rec != nil {
		var tr traceBuf
		if err := rec.WriteChromeTrace(&tr); err != nil {
			tb.Fatal(err)
		}
		res.trace = tr.b
		res.metrics = []byte(rec.Metrics().Table().String())
	}
	return res
}

// traceBuf is a minimal io.Writer (avoids pulling bytes.Buffer into the
// measured run's allocation profile).
type traceBuf struct{ b []byte }

func (t *traceBuf) Write(p []byte) (int, error) { t.b = append(t.b, p...); return len(p), nil }

// replayWinSummary reduces the per-iteration series: iteration 1's
// fresh-build cost versus the replayed iterations 2..N (median wall —
// robust to a stray GC pause — and mean allocations).
func replayWinSummary(res replayWinResult) (buildWall, replayWall time.Duration, buildAllocs, replayAllocs uint64) {
	buildWall, buildAllocs = res.wall[0], res.mallocs[0]
	rest := append([]time.Duration(nil), res.wall[1:]...)
	sort.Slice(rest, func(i, j int) bool { return rest[i] < rest[j] })
	replayWall = rest[len(rest)/2]
	var sum uint64
	for _, m := range res.mallocs[1:] {
		sum += m
	}
	replayAllocs = sum / uint64(len(res.mallocs)-1)
	return
}

// TestPlanReplayWin is the acceptance gate: 1024 ranks × 64 iterations,
// contended. Iterations 2..64 must replay with ≥3× fewer allocations
// and ≥2× less wall-clock than iteration 1's fresh build, and the whole
// cached run must be bit-identical — modeled times, final time, data —
// to the uncached path, with byte-identical probe traces checked on a
// traced pair of runs.
func TestPlanReplayWin(t *testing.T) {
	if testing.Short() {
		t.Skip("1024-rank × 64-iteration loop: skipped in -short")
	}
	const nRanks, iters = 1024, 64
	cached := runReplayWin(t, nRanks, iters, true, nil)
	if cached.cache.Misses != 1 || cached.cache.Hits != uint64(iters-1) {
		t.Errorf("cached run: got %d misses / %d hits, want 1 / %d (stats %+v)",
			cached.cache.Misses, cached.cache.Hits, iters-1, cached.cache)
	}

	// Bit-identity against the uncached path, iteration by iteration.
	fresh := runReplayWin(t, nRanks, iters, false, nil)
	if cached.now != fresh.now {
		t.Errorf("final virtual time differs: cached %v vs uncached %v", cached.now, fresh.now)
	}
	for it := range cached.vdur {
		if cached.vdur[it] != fresh.vdur[it] {
			t.Errorf("iteration %d modeled duration differs: cached %v vs uncached %v", it, cached.vdur[it], fresh.vdur[it])
		}
	}
	if cached.image != fresh.image {
		t.Error("final file images differ between cached and uncached runs")
	}

	// Probe-trace identity, on a smaller traced pair (a 1024×64 trace is
	// hundreds of MB; the replay machinery is scale-independent).
	ctr := runReplayWin(t, 128, 6, true, probe.New())
	ftr := runReplayWin(t, 128, 6, false, probe.New())
	if string(ctr.trace) != string(ftr.trace) {
		t.Errorf("probe traces differ between cached and uncached runs (%d vs %d bytes)", len(ctr.trace), len(ftr.trace))
	}
	if string(ctr.metrics) != string(ftr.metrics) {
		t.Error("metrics tables differ between cached and uncached runs")
	}

	buildWall, replayWall, buildAllocs, replayAllocs := replayWinSummary(cached)
	t.Logf("iteration 1 (fresh build): %v, %d allocs", buildWall, buildAllocs)
	t.Logf("iterations 2..%d (replay): %v median, %d allocs mean (%.1fx wall, %.1fx allocs)",
		iters, replayWall, replayAllocs,
		float64(buildWall)/float64(replayWall), float64(buildAllocs)/float64(replayAllocs))
	if raceEnabled {
		t.Log("race detector active: perf-ratio assertions skipped")
		return
	}
	if replayAllocs*3 > buildAllocs {
		t.Errorf("replayed iterations allocate too much: %d mean vs %d fresh (want ≥3× fewer)", replayAllocs, buildAllocs)
	}
	if replayWall*2 > buildWall {
		t.Errorf("replayed iterations too slow: %v median vs %v fresh (want ≥2× less wall-clock)", replayWall, buildWall)
	}
}

// BenchmarkPlanReplay is the CI trajectory benchmark (BENCH_replay.json):
// the checkpoint loop cached vs uncached, reporting iteration-1 build
// cost, replayed-iteration cost, and the per-iteration speedup.
func BenchmarkPlanReplay(b *testing.B) {
	for _, mode := range []struct {
		name  string
		cache bool
	}{{"cached", true}, {"uncached", false}} {
		b.Run(mode.name, func(b *testing.B) {
			var res replayWinResult
			for i := 0; i < b.N; i++ {
				res = runReplayWin(b, 1024, 64, mode.cache, nil)
			}
			buildWall, replayWall, buildAllocs, replayAllocs := replayWinSummary(res)
			b.ReportMetric(float64(buildWall.Microseconds())/1e3, "iter1-ms")
			b.ReportMetric(float64(replayWall.Microseconds())/1e3, "iter-ms")
			b.ReportMetric(float64(buildAllocs), "iter1-allocs")
			b.ReportMetric(float64(replayAllocs), "iter-allocs")
			b.ReportMetric(float64(buildWall)/float64(replayWall), "iter-speedup")
		})
	}
}
