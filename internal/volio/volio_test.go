package volio

import (
	"testing"

	"repro/internal/blockio"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/workload"
)

func mkVolume(t *testing.T, devs int) ([]*device.Disk, *pfs.Volume) {
	t.Helper()
	disks := make([]*device.Disk, devs)
	for i := range disks {
		disks[i] = device.New(device.Config{
			Geometry: device.Geometry{BlockSize: 256, BlocksPerCyl: 8, Cylinders: 64},
		})
	}
	store, err := blockio.NewDirect(disks)
	if err != nil {
		t.Fatal(err)
	}
	return disks, pfs.NewVolume(store)
}

func TestSaveLoadRoundTrip(t *testing.T) {
	disks, vol := mkVolume(t, 3)
	ctx := sim.NewWall()
	f, err := vol.Create(pfs.Spec{
		Name: "data", Org: pfs.OrgPartitioned, RecordSize: 64,
		BlockRecords: 2, NumRecords: 48, Parts: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	w, err := core.OpenWriter(f, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	for r := int64(0); r < 48; r++ {
		workload.Record(buf, 9, r)
		if _, err := w.WriteRecord(ctx, buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(ctx); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	if err := Save(dir, disks, vol); err != nil {
		t.Fatal(err)
	}
	_, vol2, err := Load(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := vol2.Lookup("data")
	if err != nil {
		t.Fatal(err)
	}
	if f2.Spec().Org != pfs.OrgPartitioned || f2.Parts() != 3 {
		t.Fatalf("restored spec = %+v", f2.Spec())
	}
	r, err := core.OpenReader(f2, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for want := int64(0); want < 48; want++ {
		data, rec, err := r.ReadRecord(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if rec != want {
			t.Fatalf("rec %d, want %d", rec, want)
		}
		if err := workload.CheckRecord(data, 9, want); err != nil {
			t.Fatal(err)
		}
	}
	_ = r.Close(ctx)
}

func TestSaveLoadSurvivesRemovals(t *testing.T) {
	disks, vol := mkVolume(t, 2)
	ctx := sim.NewWall()
	if _, err := vol.Create(pfs.Spec{Name: "temp", RecordSize: 64, NumRecords: 16}); err != nil {
		t.Fatal(err)
	}
	keep, err := vol.Create(pfs.Spec{Name: "keep", RecordSize: 64, NumRecords: 16})
	if err != nil {
		t.Fatal(err)
	}
	w, err := core.OpenWriter(keep, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	for r := int64(0); r < 16; r++ {
		workload.Record(buf, 4, r)
		if _, err := w.WriteRecord(ctx, buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if err := vol.Remove("temp"); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := Save(dir, disks, vol); err != nil {
		t.Fatal(err)
	}
	_, vol2, err := Load(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(vol2.Files()) != 1 {
		t.Fatalf("restored files = %v", vol2.Files())
	}
	// "keep" was allocated AFTER "temp"; its extents must still point at
	// the right data.
	f2, err := vol2.Lookup("keep")
	if err != nil {
		t.Fatal(err)
	}
	r, err := core.OpenReader(f2, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for want := int64(0); want < 16; want++ {
		data, _, err := r.ReadRecord(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if err := workload.CheckRecord(data, 4, want); err != nil {
			t.Fatal(err)
		}
	}
	_ = r.Close(ctx)
	// New files on the restored volume must not collide with "keep".
	f3, err := vol2.Create(pfs.Spec{Name: "new", RecordSize: 64, NumRecords: 16})
	if err != nil {
		t.Fatal(err)
	}
	w3, err := core.OpenWriter(f3, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	zero := make([]byte, 64)
	for r := int64(0); r < 16; r++ {
		if _, err := w3.WriteRecord(ctx, zero); err != nil {
			t.Fatal(err)
		}
	}
	_ = w3.Close(ctx)
	r2, err := core.OpenReader(f2, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	data, _, err := r2.ReadRecord(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := workload.CheckRecord(data, 4, 0); err != nil {
		t.Fatalf("new allocation collided with restored file: %v", err)
	}
	_ = r2.Close(ctx)
}

func TestLoadMissingDir(t *testing.T) {
	if _, _, err := Load("/nonexistent/volume", nil); err == nil {
		t.Fatal("missing dir accepted")
	}
}

func TestSaveValidation(t *testing.T) {
	disks, vol := mkVolume(t, 2)
	if err := Save(t.TempDir(), disks[:1], vol); err == nil {
		t.Fatal("mismatched disk count accepted")
	}
}

// TestSaveLoadExtentWritten round-trips a volume whose file was written
// through the coalescing extent path (ExtentBlocks > 1) and re-read with
// it after restore: persistence must be byte-identical regardless of the
// transfer granularity that produced the device images.
func TestSaveLoadExtentWritten(t *testing.T) {
	disks, vol := mkVolume(t, 3)
	ctx := sim.NewWall()
	const records = 96
	f, err := vol.Create(pfs.Spec{
		Name: "extent", Org: pfs.OrgSequential, RecordSize: 64,
		BlockRecords: 2, NumRecords: records, StripeUnitFS: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	w, err := core.OpenWriter(f, core.Options{NBufs: 2, ExtentBlocks: 8})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	for r := int64(0); r < records; r++ {
		workload.Record(buf, 31, r)
		if _, err := w.WriteRecord(ctx, buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(ctx); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	if err := Save(dir, disks, vol); err != nil {
		t.Fatal(err)
	}
	_, vol2, err := Load(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := vol2.Lookup("extent")
	if err != nil {
		t.Fatal(err)
	}
	r, err := core.OpenReader(f2, core.Options{NBufs: 2, ExtentBlocks: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < records; i++ {
		data, rec, err := r.ReadRecord(ctx)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if rec != i {
			t.Fatalf("record index %d, want %d", rec, i)
		}
		if err := workload.CheckRecord(data, 31, i); err != nil {
			t.Fatalf("restored record %d corrupt: %v", i, err)
		}
	}
	_ = r.Close(ctx)
}
