// Package volio persists volumes to host directories and back — the
// paper's §2 requirement that standard parallel files "appear
// conventional to the system, or at least have transparent mechanisms to
// transform them into a conventional appearance". A saved volume is a
// set of ordinary host files (one metadata file plus one sparse image
// per simulated device) that cmd/parioctl can inspect, convert and cat.
package volio

import (
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/blockio"
	"repro/internal/device"
	"repro/internal/pfs"
	"repro/internal/sim"
)

// imageFile is the persisted form of one parallel file.
type imageFile struct {
	Spec  pfs.Spec
	Bases []int64
}

// imageMeta is the persisted volume header.
type imageMeta struct {
	Devices  int
	Geometry device.Geometry
	Files    []imageFile
}

const metaName = "volume.gob"

// Save writes the volume (metadata plus every device's contents) to dir,
// creating it if needed. The disks must be the volume's backing devices
// in order.
func Save(dir string, disks []*device.Disk, vol *pfs.Volume) error {
	if len(disks) != vol.Devices() {
		return fmt.Errorf("volio: %d disks for %d-device volume", len(disks), vol.Devices())
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	meta := imageMeta{Devices: len(disks), Geometry: disks[0].Geometry()}
	for _, name := range vol.CreationOrder() {
		f, err := vol.Lookup(name)
		if err != nil {
			return err
		}
		meta.Files = append(meta.Files, imageFile{Spec: f.Spec(), Bases: f.Set().Bases()})
	}
	mf, err := os.Create(filepath.Join(dir, metaName))
	if err != nil {
		return err
	}
	if err := gob.NewEncoder(mf).Encode(meta); err != nil {
		mf.Close()
		return fmt.Errorf("volio: encode metadata: %w", err)
	}
	if err := mf.Close(); err != nil {
		return err
	}
	for i, d := range disks {
		df, err := os.Create(filepath.Join(dir, fmt.Sprintf("dev%03d.gob", i)))
		if err != nil {
			return err
		}
		snap, err := d.Snapshot()
		if err != nil {
			df.Close()
			return fmt.Errorf("volio: snapshot device %d: %w", i, err)
		}
		if err := gob.NewEncoder(df).Encode(snap); err != nil {
			df.Close()
			return fmt.Errorf("volio: encode device %d: %w", i, err)
		}
		if err := df.Close(); err != nil {
			return err
		}
	}
	return nil
}

// Load reads a volume image from dir, recreating devices (attached to
// the optional engine) and the directory with identical extents.
func Load(dir string, e *sim.Engine) ([]*device.Disk, *pfs.Volume, error) {
	mf, err := os.Open(filepath.Join(dir, metaName))
	if err != nil {
		return nil, nil, err
	}
	defer mf.Close()
	var meta imageMeta
	if err := gob.NewDecoder(mf).Decode(&meta); err != nil {
		return nil, nil, fmt.Errorf("volio: decode metadata: %w", err)
	}
	disks := make([]*device.Disk, meta.Devices)
	for i := range disks {
		disks[i] = device.New(device.Config{
			Name:     fmt.Sprintf("d%d", i),
			Geometry: meta.Geometry,
			Engine:   e,
		})
		df, err := os.Open(filepath.Join(dir, fmt.Sprintf("dev%03d.gob", i)))
		if err != nil {
			return nil, nil, err
		}
		var pages map[int64][]byte
		if err := gob.NewDecoder(df).Decode(&pages); err != nil {
			df.Close()
			return nil, nil, fmt.Errorf("volio: decode device %d: %w", i, err)
		}
		df.Close()
		if err := disks[i].Restore(pages); err != nil {
			return nil, nil, fmt.Errorf("volio: restore device %d: %w", i, err)
		}
	}
	store, err := blockio.NewDirect(disks)
	if err != nil {
		return nil, nil, err
	}
	vol := pfs.NewVolume(store)
	for _, imf := range meta.Files {
		if _, err := vol.Restore(imf.Spec, imf.Bases); err != nil {
			return nil, nil, fmt.Errorf("volio: restore %q: %w", imf.Spec.Name, err)
		}
	}
	return disks, vol, nil
}
