package stats

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestMBps(t *testing.T) {
	if got := MBps(1e6, time.Second); got != 1 {
		t.Fatalf("MBps = %v", got)
	}
	if got := MBps(100, 0); got != 0 {
		t.Fatalf("zero duration MBps = %v", got)
	}
	if got := MBps(3e6, 2*time.Second); got != 1.5 {
		t.Fatalf("MBps = %v", got)
	}
}

func TestSpeedup(t *testing.T) {
	if got := Speedup(4*time.Second, 2*time.Second); got != 2 {
		t.Fatalf("Speedup = %v", got)
	}
	if got := Speedup(time.Second, 0); got != 0 {
		t.Fatalf("Speedup by zero = %v", got)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("T1: demo", "devices", "MB/s", "time")
	tb.AddRow(1, 1.5, 1500*time.Millisecond)
	tb.AddRow(16, 23.456789, 90*time.Millisecond)
	tb.Note = "shape only"
	s := tb.String()
	for _, want := range []string{"T1: demo", "devices", "MB/s", "1.5", "23.5", "1.500s", "90.00ms", "note: shape only", "---"} {
		if !strings.Contains(s, want) {
			t.Fatalf("table output missing %q:\n%s", want, s)
		}
	}
	if tb.Rows() != 2 {
		t.Fatalf("Rows = %d", tb.Rows())
	}
	if tb.Cell(0, 0) != "1" {
		t.Fatalf("Cell(0,0) = %q", tb.Cell(0, 0))
	}
}

func TestTableDurationFormats(t *testing.T) {
	tb := NewTable("", "d")
	tb.AddRow(2 * time.Hour)
	tb.AddRow(90 * time.Microsecond)
	s := tb.String()
	if !strings.Contains(s, "2.0h") || !strings.Contains(s, "90µs") {
		t.Fatalf("duration formats wrong:\n%s", s)
	}
}

func TestWelford(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Fatalf("N = %d", w.N())
	}
	if w.Mean() != 5 {
		t.Fatalf("Mean = %v", w.Mean())
	}
	if math.Abs(w.Var()-32.0/7.0) > 1e-9 {
		t.Fatalf("Var = %v", w.Var())
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Fatalf("min/max = %v/%v", w.Min(), w.Max())
	}
	var empty Welford
	if empty.Var() != 0 {
		t.Fatal("empty variance")
	}
}

func TestSampleQuantiles(t *testing.T) {
	var s Sample
	if s.Quantile(0.5) != 0 || s.Mean() != 0 || s.Max() != 0 {
		t.Fatal("empty sample should report zeros")
	}
	// Insert out of order; quantiles must see the sorted view.
	for _, x := range []float64{9, 1, 5, 3, 7, 2, 8, 4, 6, 10} {
		s.Add(x)
	}
	if s.N() != 10 {
		t.Fatalf("N = %d", s.N())
	}
	// Nearest-rank: P50 of 10 obs is the 5th smallest, P99 the 10th.
	if got := s.P50(); got != 5 {
		t.Fatalf("P50 = %v", got)
	}
	if got := s.P95(); got != 10 {
		t.Fatalf("P95 = %v", got)
	}
	if got := s.P99(); got != 10 {
		t.Fatalf("P99 = %v", got)
	}
	if got := s.Quantile(0); got != 1 {
		t.Fatalf("Q0 = %v", got)
	}
	if got := s.Max(); got != 10 {
		t.Fatalf("Max = %v", got)
	}
	if got := s.Mean(); got != 5.5 {
		t.Fatalf("Mean = %v", got)
	}
	// Adding after a quantile read re-sorts.
	s.Add(0.5)
	if got := s.Quantile(0); got != 0.5 {
		t.Fatalf("Q0 after re-add = %v", got)
	}
	var d Sample
	d.AddDuration(30 * time.Millisecond)
	d.AddDuration(10 * time.Millisecond)
	if got := d.QuantileDur(1); got != 30*time.Millisecond {
		t.Fatalf("QuantileDur = %v", got)
	}
}
