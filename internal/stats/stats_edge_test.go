package stats

import (
	"testing"
	"time"
)

// Edge cases of the nearest-rank quantile estimator and Welford
// accumulator that the main tests skip over.

func TestSampleQuantileEmpty(t *testing.T) {
	var s Sample
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if got := s.Quantile(q); got != 0 {
			t.Fatalf("empty Quantile(%v) = %v, want 0", q, got)
		}
	}
	if got := s.QuantileDur(0.5); got != 0 {
		t.Fatalf("empty QuantileDur = %v, want 0", got)
	}
	if s.N() != 0 {
		t.Fatalf("empty N = %d", s.N())
	}
}

func TestSampleAddAfterQuantileResorts(t *testing.T) {
	var s Sample
	s.Add(5)
	s.Add(1)
	if got := s.Quantile(1); got != 5 { // forces the lazy sort
		t.Fatalf("max of {1,5} = %v", got)
	}
	// Adds after a Quantile must invalidate the sorted order: a smaller
	// and a larger value both land in the right rank positions.
	s.Add(0)
	s.Add(9)
	if got := s.Quantile(0); got != 0 {
		t.Fatalf("min after re-add = %v, want 0", got)
	}
	if got := s.Quantile(1); got != 9 {
		t.Fatalf("max after re-add = %v, want 9", got)
	}
	if got := s.Quantile(0.5); got != 1 { // rank ceil(0.5*4)=2 of {0,1,5,9}
		t.Fatalf("p50 after re-add = %v, want 1", got)
	}
}

func TestSampleNearestRankBoundaries(t *testing.T) {
	var s Sample
	for _, v := range []float64{10, 20, 30, 40} {
		s.Add(v)
	}
	cases := []struct {
		q    float64
		want float64
	}{
		{-0.5, 10}, // clamped below
		{0, 10},    // q=0: the minimum
		{0.25, 10}, // rank ceil(1) = 1st
		{0.26, 20}, // rank ceil(1.04) = 2nd
		{0.75, 30},
		{1, 40},   // q=1: the maximum
		{1.5, 40}, // clamped above
	}
	for _, c := range cases {
		if got := s.Quantile(c.q); got != c.want {
			t.Fatalf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestSampleSingleObservation(t *testing.T) {
	var s Sample
	s.AddDuration(3 * time.Second)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := s.Quantile(q); got != 3 {
			t.Fatalf("N=1 Quantile(%v) = %v, want 3", q, got)
		}
	}
	if got := s.QuantileDur(0.5); got != 3*time.Second {
		t.Fatalf("N=1 QuantileDur = %v", got)
	}
	if s.Mean() != 3 {
		t.Fatalf("N=1 Mean = %v", s.Mean())
	}
}

func TestWelfordSingleObservation(t *testing.T) {
	var w Welford
	w.Add(-2.5)
	if w.N() != 1 {
		t.Fatalf("N = %d", w.N())
	}
	if w.Min() != -2.5 || w.Max() != -2.5 {
		t.Fatalf("min/max = %v/%v, want -2.5/-2.5", w.Min(), w.Max())
	}
	if w.Mean() != -2.5 {
		t.Fatalf("mean = %v", w.Mean())
	}
	if got := w.Var(); got != 0 {
		t.Fatalf("variance of one observation = %v, want 0", got)
	}
}
