// Package stats provides counters, throughput math and fixed-width table
// rendering for the experiment harness (the paper-style tables printed
// by cmd/pariobench and recorded in EXPERIMENTS.md).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// MBps converts bytes moved in d to megabytes per second (10^6 B/s,
// the unit of the era's drive spec sheets).
func MBps(bytes int64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) / d.Seconds() / 1e6
}

// Speedup reports base/measured (how many times faster than base).
func Speedup(base, measured time.Duration) float64 {
	if measured <= 0 {
		return 0
	}
	return float64(base) / float64(measured)
}

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	Title   string
	Note    string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3g", v)
		case time.Duration:
			row[i] = fmtDuration(v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// Rows reports the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Cell returns the formatted cell at (row, col) for programmatic checks.
func (t *Table) Cell(row, col int) string { return t.rows[row][col] }

// fmtDuration renders durations compactly with ms precision above 1s.
func fmtDuration(d time.Duration) string {
	switch {
	case d >= time.Hour:
		return fmt.Sprintf("%.1fh", d.Hours())
	case d >= time.Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return d.String()
	}
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Note)
	}
	return b.String()
}

// Sample accumulates individual observations for order statistics —
// the latency-percentile companion to Welford's moment summary. The
// QoS scheduler records one observation per served request, so a
// Sample's memory is bounded by the job's request count, and
// Quantile's nearest-rank definition keeps reported percentiles exact
// and deterministic (they are always observed values, never
// interpolations).
type Sample struct {
	xs     []float64
	sorted bool
}

// Add folds one observation in.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// AddDuration folds a duration observation in as seconds.
func (s *Sample) AddDuration(d time.Duration) { s.Add(d.Seconds()) }

// N reports the observation count.
func (s *Sample) N() int { return len(s.xs) }

// Quantile reports the q-quantile (0 ≤ q ≤ 1) by the nearest-rank
// definition: the smallest observation such that at least q·N
// observations are ≤ it. Zero when empty.
func (s *Sample) Quantile(q float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
	if q <= 0 {
		return s.xs[0]
	}
	rank := int(math.Ceil(q * float64(len(s.xs))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(s.xs) {
		rank = len(s.xs)
	}
	return s.xs[rank-1]
}

// QuantileDur is Quantile for samples recorded with AddDuration.
func (s *Sample) QuantileDur(q float64) time.Duration {
	return time.Duration(s.Quantile(q) * float64(time.Second))
}

// P50 is the median (nearest-rank).
func (s *Sample) P50() float64 { return s.Quantile(0.50) }

// P95 is the 95th percentile (nearest-rank).
func (s *Sample) P95() float64 { return s.Quantile(0.95) }

// P99 is the 99th percentile (nearest-rank).
func (s *Sample) P99() float64 { return s.Quantile(0.99) }

// Max reports the largest observation, zero when empty.
func (s *Sample) Max() float64 { return s.Quantile(1) }

// Mean reports the arithmetic mean, zero when empty.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Welford accumulates mean/variance incrementally.
type Welford struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one observation in.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N reports the observation count.
func (w *Welford) N() int64 { return w.n }

// Mean reports the running mean.
func (w *Welford) Mean() float64 { return w.mean }

// Var reports the sample variance.
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Min reports the smallest observation.
func (w *Welford) Min() float64 { return w.min }

// Max reports the largest observation.
func (w *Welford) Max() float64 { return w.max }
