package core

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"

	"repro/internal/pfs"
	"repro/internal/sim"
)

// TestQuickGlobalReaderMatchesReference writes a byte pattern through
// the global writer and checks that arbitrary Seek/Read sequences on the
// global reader agree with a plain in-memory reference buffer — the
// "appears conventional to the system" property (§2) as an executable
// specification.
func TestQuickGlobalReaderMatchesReference(t *testing.T) {
	check := func(rs16 uint16, n8 uint8, ops []uint16) bool {
		recordSize := int(rs16%300) + 1
		numRecords := int64(n8%50) + 1
		size := numRecords * int64(recordSize)

		v := testVolume(t, 3, nil)
		f, err := v.Create(pfs.Spec{
			Name: "g", RecordSize: recordSize, NumRecords: numRecords,
		})
		if err != nil {
			return false
		}
		ctx := sim.NewWall()
		// Reference payload.
		ref := make([]byte, size)
		for i := range ref {
			ref[i] = byte(i*7 + 3)
		}
		gw, err := OpenGlobalWriter(f, ctx, Options{})
		if err != nil {
			return false
		}
		if _, err := gw.Write(ref); err != nil {
			return false
		}
		if err := gw.Close(); err != nil {
			return false
		}
		gr, err := OpenGlobalReader(f, ctx)
		if err != nil {
			return false
		}
		if gr.Size() != size {
			return false
		}
		refRd := bytes.NewReader(ref)
		// Interpret ops as alternating seek/read instructions.
		for i := 0; i+1 < len(ops) && i < 20; i += 2 {
			off := int64(ops[i]) % (size + 1)
			n := int(ops[i+1])%97 + 1
			if _, err := gr.Seek(off, io.SeekStart); err != nil {
				return false
			}
			if _, err := refRd.Seek(off, io.SeekStart); err != nil {
				return false
			}
			a := make([]byte, n)
			b := make([]byte, n)
			na, errA := io.ReadFull(gr, a)
			nb, errB := io.ReadFull(refRd, b)
			if na != nb {
				t.Logf("rs=%d n=%d off=%d want %d read %d (err %v vs %v)",
					recordSize, numRecords, off, nb, na, errA, errB)
				return false
			}
			if !bytes.Equal(a[:na], b[:nb]) {
				t.Logf("rs=%d n=%d off=%d: data mismatch", recordSize, numRecords, off)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
