// Package core implements the paper's contribution: access methods for
// the six standard parallel file organizations (§3) over the pfs
// substrate.
//
//	S    StreamReader / StreamWriter over the whole file
//	PS   OpenPartReader / OpenPartWriter — one contiguous partition
//	IS   OpenInterleavedReader / OpenInterleavedWriter — strided blocks
//	SS   SelfSched — shared handle; every request claims the next record
//	GDA  Direct — random record access through a block cache
//	PDA  DirectPart — random access within owned blocks
//
// Organizations are access methods, deliberately decoupled from the
// file's physical placement: opening a PS-placed file with an
// interleaved view is legal (it is the paper's §5 "alternate view with
// degraded performance"), and package convert builds on exactly that.
//
// Concurrent use of shared handles (SelfSched, Direct) requires running
// under a sim.Engine; see package sim.
package core

import (
	"fmt"

	"repro/internal/blockio"
	"repro/internal/buffer"
	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Options tune an access method. The zero value means: synchronous,
// unbuffered I/O. Use DefaultOptions for the paper's recommended
// configuration (double buffering, read-ahead, deferred write).
type Options struct {
	// NBufs is the number of block buffers for stream handles
	// (minimum 1; DefaultOptions sets 2 — double buffering).
	NBufs int
	// ExtentBlocks sets the streaming transfer size in fs blocks: stream
	// handles prefetch and write-behind whole extents of up to this many
	// fs blocks, and spans that are logically contiguous coalesce into
	// single device requests (extent I/O), paying the device's
	// per-request overhead once per extent instead of once per block.
	// 0 or 1 keeps the paper's block-at-a-time requests; DefaultOptions
	// leaves it there so the paper's modeled shapes are unchanged.
	// Each of the NBufs buffers grows to ExtentBlocks fs blocks, and a
	// closed stream writer zero-fills the unwritten remainder of its
	// final extent.
	ExtentBlocks int
	// IOProcs is the number of dedicated I/O processes performing
	// read-ahead / write-behind. 0 disables overlap (synchronous).
	IOProcs int
	// EarlyRelease enables the §4 self-scheduling optimization: the
	// shared file pointer advances and buffer space is reserved before
	// the data transfer completes. Disabling it serializes every SS
	// request through its full device transfer.
	EarlyRelease bool
	// CacheBlocks is the block-cache capacity for direct access
	// handles (minimum 1; DefaultOptions sets 8).
	CacheBlocks int
	// SeqWithinBlocks enforces the restricted PDA variant of §3.2:
	// records inside each owned block must be accessed sequentially.
	SeqWithinBlocks bool
	// Trace, when non-nil, records every record access (for Figure 1).
	Trace *trace.Recorder
	// Proc identifies the calling process in traces.
	Proc int
	// Strategy selects how noncontiguous extent transfers execute:
	// vectored (one request per physical run), sieved (one covering span
	// per device, writes as read-modify-write), or Auto, which prices
	// both against the store's modeled device parameters per operation
	// and picks the cheaper. The zero value keeps the historical
	// vectored path, so the paper's modeled shapes are unchanged;
	// TunedOptions sets StrategyAuto.
	Strategy blockio.Strategy
}

// The blockio strategies, re-exported for Options.Strategy.
const (
	StrategyDefault    = blockio.StrategyDefault
	StrategyVectored   = blockio.StrategyVectored
	StrategySieved     = blockio.StrategySieved
	StrategyCollective = blockio.StrategyCollective
	StrategyAuto       = blockio.StrategyAuto
)

// DefaultOptions is the paper-recommended configuration: double
// buffering with one dedicated I/O process, early release, and a small
// block cache.
func DefaultOptions() Options {
	return Options{
		NBufs:        2,
		IOProcs:      1,
		EarlyRelease: true,
		CacheBlocks:  8,
	}
}

// TunedOptions is the access-method half of the "modern defaults"
// profile: everything the layers grown since the paper recommend
// turning on. Streams move 32-block extents through four buffers (the
// vectored path coalesces them to one gather request per device per
// extent) and the direct-access cache grows to match. DefaultOptions
// remains the paper's configuration, whose modeled shapes stay
// bit-identical; see the top-level package's TunedProfile for the
// machine- and collective-level half (SCAN scheduling, queue merging, a
// modeled interconnect, chunked collective buffering).
func TunedOptions() Options {
	return Options{
		NBufs:        4,
		ExtentBlocks: 32,
		IOProcs:      1,
		EarlyRelease: true,
		CacheBlocks:  64,
		Strategy:     StrategyAuto,
	}
}

// norm clamps an Options value into a usable state.
func (o Options) norm() Options {
	if o.NBufs < 1 {
		o.NBufs = 1
	}
	if o.ExtentBlocks < 1 {
		o.ExtentBlocks = 1
	}
	if o.IOProcs < 0 {
		o.IOProcs = 0
	}
	if o.CacheBlocks < 1 {
		o.CacheBlocks = 1
	}
	return o
}

// blockSeq enumerates the paper-blocks of a stream view: n blocks, the
// j-th being pb(j) in file coordinates.
type blockSeq struct {
	n  int64
	pb func(j int64) int64
}

// wholeFileSeq is the S (and global sequential) view.
func wholeFileSeq(f *pfs.File) blockSeq {
	return blockSeq{n: f.Mapper().NumBlocks(), pb: func(j int64) int64 { return j }}
}

// partSeq is the PS view of partition p.
func partSeq(f *pfs.File, p int) (blockSeq, error) {
	if p < 0 || p >= f.Parts() {
		return blockSeq{}, fmt.Errorf("core: partition %d of %d", p, f.Parts())
	}
	first, end := f.PartBlockRange(p)
	return blockSeq{n: end - first, pb: func(j int64) int64 { return first + j }}, nil
}

// extentSpanAt reports the extent-aligned stream fs window [lo, hi)
// containing block k, clamped to the stream length — the one place the
// extent-window invariants live for all stream handles.
func extentSpanAt(k, ext, total int64) (lo, hi int64) {
	lo = (k / ext) * ext
	hi = lo + ext
	if hi > total {
		hi = total
	}
	return lo, hi
}

// extentSpanOf is extentSpanAt addressed by extent index.
func extentSpanOf(e, ext, total int64) (lo, hi int64) {
	return extentSpanAt(e*ext, ext, total)
}

// extentSlice returns fs block k's bytes within an extent buffer whose
// window starts at stream fs block lo.
func extentSlice(buf []byte, k, lo int64, bs int) []byte {
	off := (k - lo) * int64(bs)
	return buf[off : off+int64(bs)]
}

// contigRuns decomposes the stream fs blocks [first, first+n) into
// maximal logically contiguous runs, calling fn(logical, off, run) with
// each run's first logical fs block, its fs-block offset from first, and
// its length. Adjacent paper-blocks extend a run whenever the view's
// block sequence is contiguous (always for S and PS views; one
// paper-block at a time for strided IS views).
func (s blockSeq) contigRuns(fsPer, first, n int64, fn func(logical, off, run int64) error) error {
	k, rem := first, n
	for rem > 0 {
		j := k / fsPer
		off := k % fsPer
		logical := s.pb(j)*fsPer + off
		run := fsPer - off
		if run > rem {
			run = rem
		}
		for run < rem && s.pb(j+1) == s.pb(j)+1 {
			j++
			add := fsPer
			if run+add > rem {
				add = rem - run
			}
			run += add
		}
		if err := fn(logical, k-first, run); err != nil {
			return err
		}
		k += run
		rem -= run
	}
	return nil
}

// streamVec assembles the scatter/gather descriptor of the stream fs
// blocks [first, first+n): one segment per logically contiguous span.
// Every stream transfer goes through this one descriptor form, so the
// vec merge coalesces physically adjacent spans even when they are
// logically strided (IS views, unit-1 declustering).
func (s blockSeq) streamVec(dst blockio.Vec, fsPer, bs, first, n int64) blockio.Vec {
	_ = s.contigRuns(fsPer, first, n, func(logical, off, run int64) error {
		dst = append(dst, blockio.VecSeg{Block: logical, N: run, BufOff: off * bs})
		return nil
	})
	return dst
}

// costModelFor derives the cost model a strategy-dispatched transfer
// prices paths with — built once per handle, not per operation. Fixed
// strategies never consult it, so the zero model is fine for them.
func costModelFor(f *pfs.File, strat blockio.Strategy) blockio.CostModel {
	if strat != blockio.StrategyAuto {
		return blockio.CostModel{}
	}
	return blockio.StoreCostModel(f.Set().Store(), 1)
}

// rangedFetch returns a FetchRun over the stream's fs blocks that issues
// each extent as one vectored request (Set.ReadVec) — the extent read
// path, gather-capable since vectored I/O — or, under Options.Strategy,
// through the sieved/auto-selected path.
func rangedFetch(f *pfs.File, seq blockSeq, strat blockio.Strategy) buffer.FetchRun {
	set := f.Set()
	fsPer := f.Mapper().FSPerBlock()
	bs := int64(f.Mapper().FSBlockSize())
	cm := costModelFor(f, strat)
	// vec is reused across calls, which is safe even with several
	// prefetch processes sharing this closure: ReadVec consumes the
	// descriptor into physical runs before its first wait.
	var vec blockio.Vec
	return func(ctx sim.Context, first int64, n int, buf []byte) error {
		vec = seq.streamVec(vec[:0], fsPer, bs, first, int64(n))
		return set.ReadVecStrategy(ctx, strat, cm, vec, buf)
	}
}

// rangedFlush is the write counterpart of rangedFetch, built on
// Set.WriteVec (or its sieved/auto-selected counterpart).
func rangedFlush(f *pfs.File, seq blockSeq, strat blockio.Strategy) buffer.FlushRun {
	set := f.Set()
	fsPer := f.Mapper().FSPerBlock()
	bs := int64(f.Mapper().FSBlockSize())
	cm := costModelFor(f, strat)
	var vec blockio.Vec
	return func(ctx sim.Context, first int64, n int, buf []byte) error {
		vec = seq.streamVec(vec[:0], fsPer, bs, first, int64(n))
		return set.WriteVecStrategy(ctx, strat, cm, vec, buf)
	}
}

// interleavedSeq is the IS view: blocks ≡ part (mod stride).
func interleavedSeq(f *pfs.File, part, stride int) (blockSeq, error) {
	if stride <= 0 {
		return blockSeq{}, fmt.Errorf("core: interleave stride %d", stride)
	}
	if part < 0 || part >= stride {
		return blockSeq{}, fmt.Errorf("core: interleave part %d of stride %d", part, stride)
	}
	total := f.Mapper().NumBlocks()
	var n int64
	if int64(part) < total {
		n = (total-int64(part)-1)/int64(stride) + 1
	}
	return blockSeq{n: n, pb: func(j int64) int64 { return int64(part) + j*int64(stride) }}, nil
}
