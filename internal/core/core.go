// Package core implements the paper's contribution: access methods for
// the six standard parallel file organizations (§3) over the pfs
// substrate.
//
//	S    StreamReader / StreamWriter over the whole file
//	PS   OpenPartReader / OpenPartWriter — one contiguous partition
//	IS   OpenInterleavedReader / OpenInterleavedWriter — strided blocks
//	SS   SelfSched — shared handle; every request claims the next record
//	GDA  Direct — random record access through a block cache
//	PDA  DirectPart — random access within owned blocks
//
// Organizations are access methods, deliberately decoupled from the
// file's physical placement: opening a PS-placed file with an
// interleaved view is legal (it is the paper's §5 "alternate view with
// degraded performance"), and package convert builds on exactly that.
//
// Concurrent use of shared handles (SelfSched, Direct) requires running
// under a sim.Engine; see package sim.
package core

import (
	"fmt"

	"repro/internal/pfs"
	"repro/internal/trace"
)

// Options tune an access method. The zero value means: synchronous,
// unbuffered I/O. Use DefaultOptions for the paper's recommended
// configuration (double buffering, read-ahead, deferred write).
type Options struct {
	// NBufs is the number of block buffers for stream handles
	// (minimum 1; DefaultOptions sets 2 — double buffering).
	NBufs int
	// IOProcs is the number of dedicated I/O processes performing
	// read-ahead / write-behind. 0 disables overlap (synchronous).
	IOProcs int
	// EarlyRelease enables the §4 self-scheduling optimization: the
	// shared file pointer advances and buffer space is reserved before
	// the data transfer completes. Disabling it serializes every SS
	// request through its full device transfer.
	EarlyRelease bool
	// CacheBlocks is the block-cache capacity for direct access
	// handles (minimum 1; DefaultOptions sets 8).
	CacheBlocks int
	// SeqWithinBlocks enforces the restricted PDA variant of §3.2:
	// records inside each owned block must be accessed sequentially.
	SeqWithinBlocks bool
	// Trace, when non-nil, records every record access (for Figure 1).
	Trace *trace.Recorder
	// Proc identifies the calling process in traces.
	Proc int
}

// DefaultOptions is the paper-recommended configuration: double
// buffering with one dedicated I/O process, early release, and a small
// block cache.
func DefaultOptions() Options {
	return Options{
		NBufs:        2,
		IOProcs:      1,
		EarlyRelease: true,
		CacheBlocks:  8,
	}
}

// norm clamps an Options value into a usable state.
func (o Options) norm() Options {
	if o.NBufs < 1 {
		o.NBufs = 1
	}
	if o.IOProcs < 0 {
		o.IOProcs = 0
	}
	if o.CacheBlocks < 1 {
		o.CacheBlocks = 1
	}
	return o
}

// blockSeq enumerates the paper-blocks of a stream view: n blocks, the
// j-th being pb(j) in file coordinates.
type blockSeq struct {
	n  int64
	pb func(j int64) int64
}

// wholeFileSeq is the S (and global sequential) view.
func wholeFileSeq(f *pfs.File) blockSeq {
	return blockSeq{n: f.Mapper().NumBlocks(), pb: func(j int64) int64 { return j }}
}

// partSeq is the PS view of partition p.
func partSeq(f *pfs.File, p int) (blockSeq, error) {
	if p < 0 || p >= f.Parts() {
		return blockSeq{}, fmt.Errorf("core: partition %d of %d", p, f.Parts())
	}
	first, end := f.PartBlockRange(p)
	return blockSeq{n: end - first, pb: func(j int64) int64 { return first + j }}, nil
}

// interleavedSeq is the IS view: blocks ≡ part (mod stride).
func interleavedSeq(f *pfs.File, part, stride int) (blockSeq, error) {
	if stride <= 0 {
		return blockSeq{}, fmt.Errorf("core: interleave stride %d", stride)
	}
	if part < 0 || part >= stride {
		return blockSeq{}, fmt.Errorf("core: interleave part %d of stride %d", part, stride)
	}
	total := f.Mapper().NumBlocks()
	var n int64
	if int64(part) < total {
		n = (total-int64(part)-1)/int64(stride) + 1
	}
	return blockSeq{n: n, pb: func(j int64) int64 { return int64(part) + j*int64(stride) }}, nil
}
