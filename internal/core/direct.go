package core

import (
	"fmt"

	"repro/internal/blockio"
	"repro/internal/buffer"
	"repro/internal/pfs"
	"repro/internal/records"
	"repro/internal/sim"
	"repro/internal/trace"
)

// fetchSpanOf builds the vectored batch fetch for f's block cache: each
// listed fs block becomes a one-block descriptor segment, so physically
// adjacent blocks — even when logically strided — coalesce into gather
// runs (Set.ReadVec), the ranged fault path of the direct handles.
// Under Options.Strategy the faulted set may instead come in as one
// sieved covering span per device — direct access faults are exactly
// the dense-but-holey patterns sieving was invented for.
func fetchSpanOf(f *pfs.File, strat blockio.Strategy) buffer.FetchSpan {
	set := f.Set()
	bs := int64(f.Mapper().FSBlockSize())
	cm := costModelFor(f, strat)
	return func(ctx sim.Context, idxs []int64, buf []byte) error {
		vec := make(blockio.Vec, len(idxs))
		for i, k := range idxs {
			vec[i] = blockio.VecSeg{Block: k, N: 1, BufOff: int64(i) * bs}
		}
		return set.ReadVecStrategy(ctx, strat, cm, vec, buf)
	}
}

// moveRecord copies one record between data (len = record size) and the
// cache, tracing the access. spanBuf is scratch reused across calls.
func moveRecord(ctx sim.Context, cache *buffer.Cache, m *records.Mapper, opts *Options,
	rec int64, data []byte, write bool, spanBuf *[]records.Span) error {
	pos := 0
	*spanBuf = m.AppendSpans((*spanBuf)[:0], rec)
	for _, sp := range *spanBuf {
		sp := sp
		p0 := pos
		err := cache.With(ctx, sp.FSBlock, write, func(buf []byte) error {
			if write {
				copy(buf[sp.Off:sp.Off+sp.Len], data[p0:])
			} else {
				copy(data[p0:], buf[sp.Off:sp.Off+sp.Len])
			}
			return nil
		})
		if err != nil {
			return err
		}
		pos += sp.Len
	}
	op := trace.Read
	if write {
		op = trace.Write
	}
	opts.Trace.Add(trace.Event{
		Time: ctx.Now(), Proc: opts.Proc, Op: op, Record: rec, Block: m.BlockOf(rec),
	})
	return nil
}

// batchRecords moves the count records [rec, rec+count) between data and
// the cache in chunks whose fs-block span fits the cache: each chunk's
// missing blocks are faulted in with one vectored request
// (Cache.FaultIn) instead of block-at-a-time, then its records move as
// cache hits. check, when non-nil, validates each record in order before
// its chunk is faulted (PDA ownership, restricted sequencing); records
// preceding a failed check still transfer, matching the per-record loop.
func batchRecords(ctx sim.Context, cache *buffer.Cache, m *records.Mapper, opts *Options,
	rec, count int64, data []byte, write bool, check func(int64) error) error {
	if count < 0 {
		return fmt.Errorf("core: batch of %d records", count)
	}
	if count > 0 {
		if err := m.Check(rec); err != nil {
			return err
		}
		if err := m.Check(rec + count - 1); err != nil {
			return err
		}
	}
	rs := int64(m.RecordSize())
	if int64(len(data)) != count*rs {
		return fmt.Errorf("core: buffer is %d bytes, %d records are %d", len(data), count, count*rs)
	}
	capBlocks := opts.CacheBlocks
	var spanBuf []records.Span
	var blocks []int64
	var checkErr error
	for r := rec; r < rec+count; {
		// Build a chunk [r, r2) whose distinct fs blocks fit the cache.
		blocks = blocks[:0]
		r2 := r
		for r2 < rec+count && checkErr == nil {
			// Dry-run the record's blocks against the capacity before
			// validating it: a record deferred to the next chunk must not
			// have been sequence-checked (check mutates restricted-mode
			// state) this round.
			spanBuf = m.AppendSpans(spanBuf[:0], r2)
			add, last := 0, int64(-1)
			if len(blocks) > 0 {
				last = blocks[len(blocks)-1]
			}
			for _, sp := range spanBuf {
				if sp.FSBlock > last {
					add++
					last = sp.FSBlock
				}
			}
			if len(blocks) > 0 && len(blocks)+add > capBlocks {
				break
			}
			if check != nil {
				if checkErr = check(r2); checkErr != nil {
					break
				}
			}
			for _, sp := range spanBuf {
				if n := len(blocks); n == 0 || sp.FSBlock > blocks[n-1] {
					blocks = append(blocks, sp.FSBlock)
				}
			}
			r2++
		}
		if len(blocks) > 0 {
			if err := cache.FaultIn(ctx, blocks); err != nil {
				return err
			}
		}
		for ; r < r2; r++ {
			off := (r - rec) * rs
			if err := moveRecord(ctx, cache, m, opts, r, data[off:off+rs], write, &spanBuf); err != nil {
				return err
			}
		}
		if checkErr != nil {
			return checkErr
		}
	}
	return nil
}

// Direct is the type-GDA handle: any process may read or write any
// record in any order. Accesses go through a shared write-back block
// cache ("buffer caching techniques would be helpful when there is some
// locality of reference"). One Direct handle may be shared by all
// processes under an engine.
type Direct struct {
	f      *pfs.File
	opts   Options
	cache  *buffer.Cache
	closed bool
}

// OpenDirect opens the GDA view of f.
func OpenDirect(f *pfs.File, opts Options) (*Direct, error) {
	opts = opts.norm()
	m := f.Mapper()
	fetch := func(ctx sim.Context, k int64, buf []byte) error {
		return f.Set().ReadBlock(ctx, k, buf)
	}
	flush := func(ctx sim.Context, k int64, buf []byte) error {
		return f.Set().WriteBlock(ctx, k, buf)
	}
	cache, err := buffer.NewCache(fetch, flush, m.FSBlockSize(), opts.CacheBlocks)
	if err != nil {
		return nil, err
	}
	cache.SetFetchSpan(fetchSpanOf(f, opts.Strategy))
	return &Direct{f: f, opts: opts, cache: cache}, nil
}

// CacheStats reports the handle's cache counters.
func (d *Direct) CacheStats() buffer.CacheStats { return d.cache.Stats() }

// ReadRecordAt reads record rec into dst (len = record size).
func (d *Direct) ReadRecordAt(ctx sim.Context, rec int64, dst []byte) error {
	return d.access(ctx, rec, dst, false)
}

// WriteRecordAt writes src (len = record size) as record rec.
func (d *Direct) WriteRecordAt(ctx sim.Context, rec int64, src []byte) error {
	return d.access(ctx, rec, src, true)
}

// ReadRecordsAt reads the count records [rec, rec+count) into dst
// (len = count × record size). The span's missing blocks are faulted in
// with vectored reads — one device request per physically contiguous
// run, even on declustered layouts — instead of block-at-a-time.
func (d *Direct) ReadRecordsAt(ctx sim.Context, rec, count int64, dst []byte) error {
	return d.batch(ctx, rec, count, dst, false)
}

// WriteRecordsAt writes the count records [rec, rec+count) from src, the
// write counterpart of ReadRecordsAt (absent blocks are still faulted
// in, preserving the cache's read-modify-write semantics).
func (d *Direct) WriteRecordsAt(ctx sim.Context, rec, count int64, src []byte) error {
	return d.batch(ctx, rec, count, src, true)
}

// batch implements the batch-record methods.
func (d *Direct) batch(ctx sim.Context, rec, count int64, data []byte, write bool) error {
	if d.closed {
		return fmt.Errorf("core: handle closed")
	}
	return batchRecords(ctx, d.cache, d.f.Mapper(), &d.opts, rec, count, data, write, nil)
}

// access moves one record between the caller's buffer and the cache.
func (d *Direct) access(ctx sim.Context, rec int64, data []byte, write bool) error {
	if d.closed {
		return fmt.Errorf("core: handle closed")
	}
	m := d.f.Mapper()
	if err := m.Check(rec); err != nil {
		return err
	}
	if len(data) != m.RecordSize() {
		return fmt.Errorf("core: buffer is %d bytes, records are %d", len(data), m.RecordSize())
	}
	var spanBuf []records.Span
	return moveRecord(ctx, d.cache, m, &d.opts, rec, data, write, &spanBuf)
}

// Flush writes back dirty cached blocks.
func (d *Direct) Flush(ctx sim.Context) error { return d.cache.Flush(ctx) }

// Close flushes and invalidates the handle.
func (d *Direct) Close(ctx sim.Context) error {
	if d.closed {
		return nil
	}
	if err := d.cache.Flush(ctx); err != nil {
		return err
	}
	d.closed = true
	return nil
}

// DirectPart is the type-PDA handle: a process accesses records randomly
// but only within the paper-blocks assigned to it ("blocks can be thought
// of as pages of virtual memory"). Each process opens its own handle, so
// the block cache is private — the locality the paper expects.
//
// With Options.SeqWithinBlocks the §3.2 restricted variant is enforced:
// records inside each block must be accessed in ascending order (block
// order stays free).
type DirectPart struct {
	f      *pfs.File
	part   int
	opts   Options
	cache  *buffer.Cache
	seqPos map[int64]int // restricted mode: next record index per block
	closed bool
}

// OpenDirectPart opens the PDA view of partition part.
func OpenDirectPart(f *pfs.File, part int, opts Options) (*DirectPart, error) {
	opts = opts.norm()
	if part < 0 || part >= f.Parts() {
		return nil, fmt.Errorf("core: partition %d of %d", part, f.Parts())
	}
	m := f.Mapper()
	fetch := func(ctx sim.Context, k int64, buf []byte) error {
		return f.Set().ReadBlock(ctx, k, buf)
	}
	flush := func(ctx sim.Context, k int64, buf []byte) error {
		return f.Set().WriteBlock(ctx, k, buf)
	}
	cache, err := buffer.NewCache(fetch, flush, m.FSBlockSize(), opts.CacheBlocks)
	if err != nil {
		return nil, err
	}
	cache.SetFetchSpan(fetchSpanOf(f, opts.Strategy))
	dp := &DirectPart{f: f, part: part, opts: opts, cache: cache}
	if opts.SeqWithinBlocks {
		dp.seqPos = make(map[int64]int)
	}
	return dp, nil
}

// CacheStats reports the handle's private cache counters.
func (d *DirectPart) CacheStats() buffer.CacheStats { return d.cache.Stats() }

// check validates ownership and (in restricted mode) intra-block order.
func (d *DirectPart) check(rec int64) error {
	m := d.f.Mapper()
	if err := m.Check(rec); err != nil {
		return err
	}
	b := m.BlockOf(rec)
	if owner := d.f.BlockOwner(b); owner != d.part {
		return fmt.Errorf("core: PDA violation: record %d is in block %d owned by partition %d, not %d",
			rec, b, owner, d.part)
	}
	if d.seqPos != nil {
		idx := m.IndexInBlock(rec)
		if want := d.seqPos[b]; idx != want {
			return fmt.Errorf("core: restricted PDA: block %d expects record index %d next, got %d", b, want, idx)
		}
		d.seqPos[b] = idx + 1
		if d.seqPos[b] >= m.RecordsInBlock(b) {
			d.seqPos[b] = 0 // block completed; a new pass may begin
		}
	}
	return nil
}

// ReadRecordAt reads record rec (must lie in an owned block) into dst.
func (d *DirectPart) ReadRecordAt(ctx sim.Context, rec int64, dst []byte) error {
	if d.closed {
		return fmt.Errorf("core: handle closed")
	}
	if err := d.check(rec); err != nil {
		return err
	}
	return d.move(ctx, rec, dst, false)
}

// WriteRecordAt writes record rec (must lie in an owned block).
func (d *DirectPart) WriteRecordAt(ctx sim.Context, rec int64, src []byte) error {
	if d.closed {
		return fmt.Errorf("core: handle closed")
	}
	if err := d.check(rec); err != nil {
		return err
	}
	return d.move(ctx, rec, src, true)
}

// ReadRecordsAt reads the count records [rec, rec+count) — all in owned
// blocks — into dst (len = count × record size), faulting the span's
// missing blocks with vectored reads instead of block-at-a-time.
func (d *DirectPart) ReadRecordsAt(ctx sim.Context, rec, count int64, dst []byte) error {
	return d.batch(ctx, rec, count, dst, false)
}

// WriteRecordsAt writes the count records [rec, rec+count) from src, the
// write counterpart of ReadRecordsAt.
func (d *DirectPart) WriteRecordsAt(ctx sim.Context, rec, count int64, src []byte) error {
	return d.batch(ctx, rec, count, src, true)
}

// batch implements the batch-record methods; every record passes the
// ownership (and restricted-sequencing) check before its chunk faults.
func (d *DirectPart) batch(ctx sim.Context, rec, count int64, data []byte, write bool) error {
	if d.closed {
		return fmt.Errorf("core: handle closed")
	}
	return batchRecords(ctx, d.cache, d.f.Mapper(), &d.opts, rec, count, data, write, d.check)
}

// move copies one record through the private cache.
func (d *DirectPart) move(ctx sim.Context, rec int64, data []byte, write bool) error {
	m := d.f.Mapper()
	if len(data) != m.RecordSize() {
		return fmt.Errorf("core: buffer is %d bytes, records are %d", len(data), m.RecordSize())
	}
	var spanBuf []records.Span
	return moveRecord(ctx, d.cache, m, &d.opts, rec, data, write, &spanBuf)
}

// Flush writes back dirty cached blocks.
func (d *DirectPart) Flush(ctx sim.Context) error { return d.cache.Flush(ctx) }

// Close flushes and invalidates the handle.
func (d *DirectPart) Close(ctx sim.Context) error {
	if d.closed {
		return nil
	}
	if err := d.cache.Flush(ctx); err != nil {
		return err
	}
	d.closed = true
	return nil
}
