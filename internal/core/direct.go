package core

import (
	"fmt"

	"repro/internal/buffer"
	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Direct is the type-GDA handle: any process may read or write any
// record in any order. Accesses go through a shared write-back block
// cache ("buffer caching techniques would be helpful when there is some
// locality of reference"). One Direct handle may be shared by all
// processes under an engine.
type Direct struct {
	f      *pfs.File
	opts   Options
	cache  *buffer.Cache
	closed bool
}

// OpenDirect opens the GDA view of f.
func OpenDirect(f *pfs.File, opts Options) (*Direct, error) {
	opts = opts.norm()
	m := f.Mapper()
	fetch := func(ctx sim.Context, k int64, buf []byte) error {
		return f.Set().ReadBlock(ctx, k, buf)
	}
	flush := func(ctx sim.Context, k int64, buf []byte) error {
		return f.Set().WriteBlock(ctx, k, buf)
	}
	cache, err := buffer.NewCache(fetch, flush, m.FSBlockSize(), opts.CacheBlocks)
	if err != nil {
		return nil, err
	}
	return &Direct{f: f, opts: opts, cache: cache}, nil
}

// CacheStats reports the handle's cache counters.
func (d *Direct) CacheStats() buffer.CacheStats { return d.cache.Stats() }

// ReadRecordAt reads record rec into dst (len = record size).
func (d *Direct) ReadRecordAt(ctx sim.Context, rec int64, dst []byte) error {
	return d.access(ctx, rec, dst, false)
}

// WriteRecordAt writes src (len = record size) as record rec.
func (d *Direct) WriteRecordAt(ctx sim.Context, rec int64, src []byte) error {
	return d.access(ctx, rec, src, true)
}

// access moves one record between the caller's buffer and the cache.
func (d *Direct) access(ctx sim.Context, rec int64, data []byte, write bool) error {
	if d.closed {
		return fmt.Errorf("core: handle closed")
	}
	m := d.f.Mapper()
	if err := m.Check(rec); err != nil {
		return err
	}
	if len(data) != m.RecordSize() {
		return fmt.Errorf("core: buffer is %d bytes, records are %d", len(data), m.RecordSize())
	}
	pos := 0
	for _, sp := range m.Spans(rec) {
		sp := sp
		p0 := pos
		err := d.cache.With(ctx, sp.FSBlock, write, func(buf []byte) error {
			if write {
				copy(buf[sp.Off:sp.Off+sp.Len], data[p0:])
			} else {
				copy(data[p0:], buf[sp.Off:sp.Off+sp.Len])
			}
			return nil
		})
		if err != nil {
			return err
		}
		pos += sp.Len
	}
	op := trace.Read
	if write {
		op = trace.Write
	}
	d.opts.Trace.Add(trace.Event{
		Time: ctx.Now(), Proc: d.opts.Proc, Op: op, Record: rec, Block: m.BlockOf(rec),
	})
	return nil
}

// Flush writes back dirty cached blocks.
func (d *Direct) Flush(ctx sim.Context) error { return d.cache.Flush(ctx) }

// Close flushes and invalidates the handle.
func (d *Direct) Close(ctx sim.Context) error {
	if d.closed {
		return nil
	}
	if err := d.cache.Flush(ctx); err != nil {
		return err
	}
	d.closed = true
	return nil
}

// DirectPart is the type-PDA handle: a process accesses records randomly
// but only within the paper-blocks assigned to it ("blocks can be thought
// of as pages of virtual memory"). Each process opens its own handle, so
// the block cache is private — the locality the paper expects.
//
// With Options.SeqWithinBlocks the §3.2 restricted variant is enforced:
// records inside each block must be accessed in ascending order (block
// order stays free).
type DirectPart struct {
	f      *pfs.File
	part   int
	opts   Options
	cache  *buffer.Cache
	seqPos map[int64]int // restricted mode: next record index per block
	closed bool
}

// OpenDirectPart opens the PDA view of partition part.
func OpenDirectPart(f *pfs.File, part int, opts Options) (*DirectPart, error) {
	opts = opts.norm()
	if part < 0 || part >= f.Parts() {
		return nil, fmt.Errorf("core: partition %d of %d", part, f.Parts())
	}
	m := f.Mapper()
	fetch := func(ctx sim.Context, k int64, buf []byte) error {
		return f.Set().ReadBlock(ctx, k, buf)
	}
	flush := func(ctx sim.Context, k int64, buf []byte) error {
		return f.Set().WriteBlock(ctx, k, buf)
	}
	cache, err := buffer.NewCache(fetch, flush, m.FSBlockSize(), opts.CacheBlocks)
	if err != nil {
		return nil, err
	}
	dp := &DirectPart{f: f, part: part, opts: opts, cache: cache}
	if opts.SeqWithinBlocks {
		dp.seqPos = make(map[int64]int)
	}
	return dp, nil
}

// CacheStats reports the handle's private cache counters.
func (d *DirectPart) CacheStats() buffer.CacheStats { return d.cache.Stats() }

// check validates ownership and (in restricted mode) intra-block order.
func (d *DirectPart) check(rec int64) error {
	m := d.f.Mapper()
	if err := m.Check(rec); err != nil {
		return err
	}
	b := m.BlockOf(rec)
	if owner := d.f.BlockOwner(b); owner != d.part {
		return fmt.Errorf("core: PDA violation: record %d is in block %d owned by partition %d, not %d",
			rec, b, owner, d.part)
	}
	if d.seqPos != nil {
		idx := m.IndexInBlock(rec)
		if want := d.seqPos[b]; idx != want {
			return fmt.Errorf("core: restricted PDA: block %d expects record index %d next, got %d", b, want, idx)
		}
		d.seqPos[b] = idx + 1
		if d.seqPos[b] >= m.RecordsInBlock(b) {
			d.seqPos[b] = 0 // block completed; a new pass may begin
		}
	}
	return nil
}

// ReadRecordAt reads record rec (must lie in an owned block) into dst.
func (d *DirectPart) ReadRecordAt(ctx sim.Context, rec int64, dst []byte) error {
	if d.closed {
		return fmt.Errorf("core: handle closed")
	}
	if err := d.check(rec); err != nil {
		return err
	}
	return d.move(ctx, rec, dst, false)
}

// WriteRecordAt writes record rec (must lie in an owned block).
func (d *DirectPart) WriteRecordAt(ctx sim.Context, rec int64, src []byte) error {
	if d.closed {
		return fmt.Errorf("core: handle closed")
	}
	if err := d.check(rec); err != nil {
		return err
	}
	return d.move(ctx, rec, src, true)
}

// move copies one record through the private cache.
func (d *DirectPart) move(ctx sim.Context, rec int64, data []byte, write bool) error {
	m := d.f.Mapper()
	if len(data) != m.RecordSize() {
		return fmt.Errorf("core: buffer is %d bytes, records are %d", len(data), m.RecordSize())
	}
	pos := 0
	for _, sp := range m.Spans(rec) {
		sp := sp
		p0 := pos
		err := d.cache.With(ctx, sp.FSBlock, write, func(buf []byte) error {
			if write {
				copy(buf[sp.Off:sp.Off+sp.Len], data[p0:])
			} else {
				copy(data[p0:], buf[sp.Off:sp.Off+sp.Len])
			}
			return nil
		})
		if err != nil {
			return err
		}
		pos += sp.Len
	}
	op := trace.Read
	if write {
		op = trace.Write
	}
	d.opts.Trace.Add(trace.Event{
		Time: ctx.Now(), Proc: d.opts.Proc, Op: op, Record: rec, Block: m.BlockOf(rec),
	})
	return nil
}

// Flush writes back dirty cached blocks.
func (d *DirectPart) Flush(ctx sim.Context) error { return d.cache.Flush(ctx) }

// Close flushes and invalidates the handle.
func (d *DirectPart) Close(ctx sim.Context) error {
	if d.closed {
		return nil
	}
	if err := d.cache.Flush(ctx); err != nil {
		return err
	}
	d.closed = true
	return nil
}
