package core

import (
	"errors"
	"io"
	"testing"
	"time"

	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/trace"
)

func TestSelfSchedDirectEveryRecordOnce(t *testing.T) {
	e := sim.NewEngine()
	v := testVolume(t, 4, e)
	f, err := v.Create(pfs.Spec{Name: "ssd", Org: pfs.OrgGlobalDirect, RecordSize: 64, NumRecords: 64})
	if err != nil {
		t.Fatal(err)
	}
	e.Go("main", func(p *sim.Proc) {
		fillSeq(t, f, p)
		ss, err := OpenSelfSchedDirect(f, DefaultOptions())
		if err != nil {
			t.Error(err)
			return
		}
		seen := make(map[int64]int)
		var g sim.Group
		for w := 0; w < 3; w++ {
			g.Spawn(p.Engine(), "w", func(c *sim.Proc) {
				dst := make([]byte, 64)
				for {
					rec, err := ss.ReadNext(c, dst)
					if err == io.EOF {
						return
					}
					if err != nil {
						t.Error(err)
						return
					}
					if recVal(dst) != uint64(rec) {
						t.Errorf("record %d carried %d", rec, recVal(dst))
					}
					seen[rec]++
					c.Sleep(time.Millisecond)
				}
			})
		}
		g.Wait(p)
		if err := ss.Close(p); err != nil {
			t.Error(err)
		}
		if len(seen) != 64 {
			t.Errorf("saw %d records", len(seen))
		}
		for rec, n := range seen {
			if n != 1 {
				t.Errorf("record %d claimed %d times", rec, n)
			}
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSelfSchedDirectMixedRandomReads(t *testing.T) {
	// The hybrid mode: a worker claims sequential records AND performs
	// interspersed random lookups through the same cache.
	e := sim.NewEngine()
	v := testVolume(t, 2, e)
	f, err := v.Create(pfs.Spec{Name: "ssd", Org: pfs.OrgGlobalDirect, RecordSize: 64, NumRecords: 32})
	if err != nil {
		t.Fatal(err)
	}
	e.Go("main", func(p *sim.Proc) {
		fillSeq(t, f, p)
		ss, err := OpenSelfSchedDirect(f, DefaultOptions())
		if err != nil {
			t.Error(err)
			return
		}
		dst := make([]byte, 64)
		for {
			rec, err := ss.ReadNext(p, dst)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Error(err)
				return
			}
			// Random lookup relative to the claimed record.
			back := rec / 2
			if err := ss.ReadRecordAt(p, back, dst); err != nil {
				t.Error(err)
				return
			}
			if recVal(dst) != uint64(back) {
				t.Errorf("random read %d carried %d", back, recVal(dst))
			}
		}
		if ss.CacheStats().Hits == 0 {
			t.Error("no cache hits in mixed mode")
		}
		_ = ss.Close(p)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSelfSchedDirectWriteAndStraddle(t *testing.T) {
	// Unlike sequential SS, the direct variant accepts straddling
	// records (96-byte records on 256-byte fs blocks).
	v := testVolume(t, 2, nil)
	f, err := v.Create(pfs.Spec{
		Name: "ssd", Org: pfs.OrgGlobalDirect, RecordSize: 96, BlockRecords: 8, NumRecords: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := sim.NewWall()
	ss, err := OpenSelfSchedDirect(f, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 96)
	for {
		for i := range data {
			data[i] = 0x3c
		}
		if _, err := ss.WriteNext(ctx, data); err != nil {
			if errors.Is(err, io.ErrShortWrite) {
				break
			}
			t.Fatal(err)
		}
	}
	if err := ss.Close(ctx); err != nil {
		t.Fatal(err)
	}
	r, err := OpenReader(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		data, _, err := r.ReadRecord(ctx)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if data[0] != 0x3c || data[95] != 0x3c {
			t.Fatal("straddling record corrupted")
		}
		n++
	}
	_ = r.Close(ctx)
	if n != 20 {
		t.Fatalf("read %d records", n)
	}
}

func TestSelfSchedDirectTraceAndClose(t *testing.T) {
	e := sim.NewEngine()
	v := testVolume(t, 2, e)
	f, err := v.Create(pfs.Spec{Name: "ssd", Org: pfs.OrgGlobalDirect, RecordSize: 64, NumRecords: 8})
	if err != nil {
		t.Fatal(err)
	}
	rec := &trace.Recorder{}
	e.Go("main", func(p *sim.Proc) {
		fillSeq(t, f, p)
		opts := DefaultOptions()
		opts.Trace = rec
		ss, err := OpenSelfSchedDirect(f, opts)
		if err != nil {
			t.Error(err)
			return
		}
		ss.RegisterProc(p, 5)
		dst := make([]byte, 64)
		for {
			if _, err := ss.ReadNext(p, dst); err != nil {
				break
			}
		}
		if err := ss.Close(p); err != nil {
			t.Error(err)
		}
		if err := ss.Close(p); err != nil { // idempotent
			t.Error(err)
		}
		if _, err := ss.ReadNext(p, dst); err == nil {
			t.Error("read after close accepted")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if err := trace.ValidateSelfScheduled(rec.Events(), 8); err != nil {
		t.Fatal(err)
	}
	for _, ev := range rec.Events() {
		if ev.Proc != 5 {
			t.Fatalf("trace proc %d, want registered 5", ev.Proc)
		}
	}
}
