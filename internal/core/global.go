package core

import (
	"fmt"
	"io"

	"repro/internal/buffer"
	"repro/internal/pfs"
	"repro/internal/sim"
)

// GlobalReader presents the paper's global view of any parallel file: a
// standard sequential byte stream of the record payload in canonical
// order, with block padding invisible. It implements io.ReadSeeker, so
// conventional sequential software (editors, print spoolers, checksum
// tools — anything taking an io.Reader) can consume parallel files.
//
// GlobalReader favours generality over bandwidth: it reads through a
// small block cache with no read-ahead. Performance-sensitive sequential
// scans should use StreamReader (OpenReader), which prefetches.
type GlobalReader struct {
	f     *pfs.File
	ctx   sim.Context
	cache *buffer.Cache
	pos   int64 // byte position in payload space
	size  int64
}

// OpenGlobalReader opens the global view of f. The supplied context is
// used for all subsequent Read/Seek calls (io interfaces leave no
// parameter room).
func OpenGlobalReader(f *pfs.File, ctx sim.Context) (*GlobalReader, error) {
	m := f.Mapper()
	fetch := func(c sim.Context, k int64, buf []byte) error {
		return f.Set().ReadBlock(c, k, buf)
	}
	flush := func(c sim.Context, k int64, buf []byte) error {
		return f.Set().WriteBlock(c, k, buf)
	}
	cache, err := buffer.NewCache(fetch, flush, m.FSBlockSize(), 2)
	if err != nil {
		return nil, err
	}
	return &GlobalReader{
		f:     f,
		ctx:   ctx,
		cache: cache,
		size:  m.NumRecords() * int64(m.RecordSize()),
	}, nil
}

// Size reports the payload length in bytes.
func (g *GlobalReader) Size() int64 { return g.size }

// Read implements io.Reader over the canonical record stream. For dense
// framings (no paper-block padding) whole-fs-block spans of the request
// bypass the cache as coalesced ranged transfers — one device request
// per physically contiguous run instead of one per block.
func (g *GlobalReader) Read(p []byte) (int, error) {
	if g.pos >= g.size {
		return 0, io.EOF
	}
	m := g.f.Mapper()
	if m.Dense() {
		return g.readDense(p)
	}
	rs := int64(m.RecordSize())
	total := 0
	for len(p) > 0 && g.pos < g.size {
		rec := g.pos / rs
		within := int(g.pos % rs)
		// Walk the record's spans to the current offset.
		skipped := 0
		for _, sp := range m.Spans(rec) {
			if skipped+sp.Len <= within {
				skipped += sp.Len
				continue
			}
			inSpan := within - skipped
			n := sp.Len - inSpan
			if n > len(p) {
				n = len(p)
			}
			sp := sp
			err := g.cache.With(g.ctx, sp.FSBlock, false, func(buf []byte) error {
				copy(p[:n], buf[sp.Off+inSpan:sp.Off+inSpan+n])
				return nil
			})
			if err != nil {
				return total, err
			}
			p = p[n:]
			g.pos += int64(n)
			total += n
			within += n
			skipped += sp.Len
			if len(p) == 0 {
				break
			}
		}
	}
	return total, nil
}

// readDense serves Read when payload bytes map 1:1 onto fs-block bytes:
// block-aligned whole blocks transfer directly through Set.ReadRange
// (the extent path); unaligned head and tail bytes go through the cache.
func (g *GlobalReader) readDense(p []byte) (int, error) {
	m := g.f.Mapper()
	fsbs := int64(m.FSBlockSize())
	total := 0
	for len(p) > 0 && g.pos < g.size {
		off := g.pos % fsbs
		rem := g.size - g.pos
		if off == 0 && int64(len(p)) >= fsbs && rem >= fsbs {
			nb := int64(len(p)) / fsbs
			if max := rem / fsbs; nb > max {
				nb = max
			}
			if err := g.f.Set().ReadRange(g.ctx, g.pos/fsbs, nb, p[:nb*fsbs]); err != nil {
				return total, err
			}
			p = p[nb*fsbs:]
			g.pos += nb * fsbs
			total += int(nb * fsbs)
			continue
		}
		n := fsbs - off
		if n > int64(len(p)) {
			n = int64(len(p))
		}
		if n > rem {
			n = rem
		}
		err := g.cache.With(g.ctx, g.pos/fsbs, false, func(buf []byte) error {
			copy(p[:n], buf[off:off+n])
			return nil
		})
		if err != nil {
			return total, err
		}
		p = p[n:]
		g.pos += n
		total += int(n)
	}
	return total, nil
}

// Seek implements io.Seeker over payload bytes.
func (g *GlobalReader) Seek(offset int64, whence int) (int64, error) {
	var abs int64
	switch whence {
	case io.SeekStart:
		abs = offset
	case io.SeekCurrent:
		abs = g.pos + offset
	case io.SeekEnd:
		abs = g.size + offset
	default:
		return 0, fmt.Errorf("core: bad whence %d", whence)
	}
	if abs < 0 {
		return 0, fmt.Errorf("core: negative seek %d", abs)
	}
	g.pos = abs
	return abs, nil
}

var _ io.ReadSeeker = (*GlobalReader)(nil)

// GlobalWriter fills a parallel file through the global view: a plain
// io.Writer whose byte stream lands in canonical record order. Partial
// trailing records are zero-padded at Close.
type GlobalWriter struct {
	f      *pfs.File
	ctx    sim.Context
	w      *StreamWriter
	rec    []byte
	fill   int
	closed bool
}

// OpenGlobalWriter opens the global write view of f using ctx for all
// subsequent calls.
func OpenGlobalWriter(f *pfs.File, ctx sim.Context, opts Options) (*GlobalWriter, error) {
	w, err := OpenWriter(f, opts)
	if err != nil {
		return nil, err
	}
	return &GlobalWriter{
		f:   f,
		ctx: ctx,
		w:   w,
		rec: make([]byte, f.Mapper().RecordSize()),
	}, nil
}

// Write implements io.Writer; bytes beyond the file's capacity are
// rejected with io.ErrShortWrite.
func (g *GlobalWriter) Write(p []byte) (int, error) {
	if g.closed {
		return 0, fmt.Errorf("core: writer closed")
	}
	written := 0
	for len(p) > 0 {
		n := copy(g.rec[g.fill:], p)
		g.fill += n
		p = p[n:]
		written += n
		if g.fill == len(g.rec) {
			if _, err := g.w.WriteRecord(g.ctx, g.rec); err != nil {
				return written, err
			}
			g.fill = 0
		}
	}
	return written, nil
}

// Close pads and flushes the final record and drains deferred writes.
func (g *GlobalWriter) Close() error {
	if g.closed {
		return nil
	}
	g.closed = true
	if g.fill > 0 {
		for i := g.fill; i < len(g.rec); i++ {
			g.rec[i] = 0
		}
		if _, err := g.w.WriteRecord(g.ctx, g.rec); err != nil {
			return err
		}
	}
	return g.w.Close(g.ctx)
}

var _ io.WriteCloser = (*GlobalWriter)(nil)
