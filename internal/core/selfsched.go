package core

import (
	"fmt"
	"io"

	"repro/internal/buffer"
	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/trace"
)

// SelfSched is the shared type-SS handle: each request — from whatever
// process — is guaranteed to reference the next record of the file, so
// every record is consumed (or produced) exactly once, in claim order.
//
// With Options.EarlyRelease (the §4 optimization) the shared file
// pointer is advanced and buffer space reserved inside the critical
// section, while data transfers are carried by dedicated I/O processes
// outside it; concurrent requests therefore serialize only on pointer
// arithmetic. Without it, each request performs its device transfer
// while holding the lock — the naive fully-serialized implementation.
//
// SelfSched also supports self-scheduling by whole blocks ("could be
// provided if needed", §3.1) via ReadNextBlock/WriteNextBlock. Record
// and block granularity must not be mixed on one handle.
//
// SS requires records not to straddle fs blocks ("the use of predictable
// length records reduces the problem"); OpenSelfSched rejects framings
// that straddle.
type SelfSched struct {
	f    *pfs.File
	opts Options
	mode ssMode
	gran ssGran

	mu     sim.Mutex
	cursor int64 // next record (record mode) or paper-block (block mode)

	ext     int64 // fs blocks per streaming extent (early release)
	totalFS int64

	// Read state.
	rd    *buffer.SeqReader
	cur   []byte
	curLo int64 // logical fs range [curLo, curHi) held by cur
	curHi int64

	// Write state.
	sw    *buffer.SeqWriter
	wbuf  []byte
	wLo   int64 // logical fs range [wLo, wHi) assembled in wbuf
	wHi   int64
	wBuf1 []byte // serialized-mode scratch block

	payload []byte // block-mode assembly buffer
	closed  bool

	// procIDs maps simulated processes to trace ids: the handle is
	// shared, so the per-handle Options.Proc cannot identify claimants.
	procIDs map[*sim.Proc]int
}

type ssMode int

const (
	ssRead ssMode = iota
	ssWrite
)

type ssGran int

const (
	granUnset ssGran = iota
	granRecord
	granBlock
)

// SSRead and SSWrite select the handle direction.
const (
	SSRead  = ssRead
	SSWrite = ssWrite
)

// OpenSelfSched opens the shared SS handle in the given direction. All
// participating processes share the one handle.
func OpenSelfSched(f *pfs.File, mode ssMode, opts Options) (*SelfSched, error) {
	opts = opts.norm()
	m := f.Mapper()
	// Reject record framings that straddle fs blocks.
	probe := m.BlockRecords()
	if int64(probe) > m.NumRecords() {
		probe = int(m.NumRecords())
	}
	for i := 0; i < probe; i++ {
		if len(m.Spans(int64(i))) != 1 {
			return nil, fmt.Errorf("core: self-scheduled files need records that do not straddle fs blocks (record size %d, fs block %d)",
				m.RecordSize(), m.FSBlockSize())
		}
	}
	totalFS := m.TotalFSBlocks()
	s := &SelfSched{f: f, opts: opts, mode: mode,
		ext: int64(opts.ExtentBlocks), totalFS: totalFS,
		curLo: -1, curHi: -1, wLo: -1, wHi: -1}
	switch mode {
	case ssRead:
		if opts.EarlyRelease {
			fetch := func(ctx sim.Context, first int64, n int, buf []byte) error {
				return f.Set().ReadRange(ctx, first, int64(n), buf)
			}
			ioProcs := opts.IOProcs
			if ioProcs < 1 {
				ioProcs = 1
			}
			rd, err := buffer.NewSeqReaderExtent(fetch, m.FSBlockSize(), totalFS,
				opts.ExtentBlocks, opts.NBufs, ioProcs)
			if err != nil {
				return nil, err
			}
			s.rd = rd
		} else {
			s.cur = make([]byte, m.FSBlockSize())
		}
	case ssWrite:
		if opts.EarlyRelease {
			flush := func(ctx sim.Context, first int64, n int, buf []byte) error {
				return f.Set().WriteRange(ctx, first, int64(n), buf)
			}
			ioProcs := opts.IOProcs
			if ioProcs < 1 {
				ioProcs = 1
			}
			sw, err := buffer.NewSeqWriterExtent(flush, m.FSBlockSize(), totalFS,
				opts.ExtentBlocks, opts.NBufs, ioProcs)
			if err != nil {
				return nil, err
			}
			s.sw = sw
		} else {
			s.wBuf1 = make([]byte, m.FSBlockSize())
		}
	default:
		return nil, fmt.Errorf("core: unknown SS mode %d", mode)
	}
	return s, nil
}

// RegisterProc associates a simulated process with a process id for
// tracing. Call once per participating process before its first request;
// unregistered processes trace as Options.Proc.
func (s *SelfSched) RegisterProc(p *sim.Proc, id int) {
	if s.procIDs == nil {
		s.procIDs = make(map[*sim.Proc]int)
	}
	s.procIDs[p] = id
}

// traceProc resolves the claimant's trace id.
func (s *SelfSched) traceProc(ctx sim.Context) int {
	if p, ok := ctx.(*sim.Proc); ok {
		if id, ok := s.procIDs[p]; ok {
			return id
		}
	}
	return s.opts.Proc
}

// lock acquires the shared pointer lock when running under an engine.
func (s *SelfSched) lock(ctx sim.Context) *sim.Proc {
	if p, ok := ctx.(*sim.Proc); ok {
		s.mu.Lock(p)
		return p
	}
	return nil
}

// unlock releases the pointer lock.
func (s *SelfSched) unlock(p *sim.Proc) {
	if p != nil {
		s.mu.Unlock(p)
	}
}

// setGran fixes the handle granularity on first use.
func (s *SelfSched) setGran(g ssGran) error {
	if s.gran == granUnset {
		s.gran = g
		return nil
	}
	if s.gran != g {
		return fmt.Errorf("core: self-scheduled handle already used with different granularity")
	}
	return nil
}

// readAdvanceTo makes cur hold logical fs block k.
func (s *SelfSched) readAdvanceTo(ctx sim.Context, k int64) error {
	if s.opts.EarlyRelease {
		for s.cur == nil || k >= s.curHi {
			if s.cur != nil {
				s.rd.Release(ctx, s.cur)
				s.cur = nil
			}
			buf, e, err := s.rd.Next(ctx)
			if err != nil {
				return err
			}
			s.cur = buf
			s.curLo, s.curHi = extentSpanOf(e, s.ext, s.totalFS)
		}
		if k < s.curLo {
			return fmt.Errorf("core: SS read skipped fs block %d (at [%d,%d))", k, s.curLo, s.curHi)
		}
		return nil
	}
	if k < s.curLo || k >= s.curHi {
		if err := s.f.Set().ReadBlock(ctx, k, s.cur); err != nil {
			return err
		}
		s.curLo, s.curHi = k, k+1
	}
	return nil
}

// rblock returns the cached bytes of logical fs block k; readAdvanceTo(k)
// must have succeeded.
func (s *SelfSched) rblock(k int64) []byte {
	return extentSlice(s.cur, k, s.curLo, s.f.Mapper().FSBlockSize())
}

// wblock returns the assembly bytes of logical fs block k;
// writeAdvanceTo(k) must have succeeded.
func (s *SelfSched) wblock(k int64) []byte {
	return extentSlice(s.wbuf, k, s.wLo, s.f.Mapper().FSBlockSize())
}

// ReadNext claims and returns the next record (valid until the caller's
// next ReadNext) and its record index. Returns io.EOF when the file is
// exhausted.
func (s *SelfSched) ReadNext(ctx sim.Context, dst []byte) (int64, error) {
	if s.mode != ssRead {
		return 0, fmt.Errorf("core: ReadNext on a write handle")
	}
	if err := s.setGran(granRecord); err != nil {
		return 0, err
	}
	m := s.f.Mapper()
	if len(dst) != m.RecordSize() {
		return 0, fmt.Errorf("core: dst is %d bytes, records are %d", len(dst), m.RecordSize())
	}
	p := s.lock(ctx)
	defer s.unlock(p)
	if s.closed {
		return 0, fmt.Errorf("core: handle closed")
	}
	if s.cursor >= m.NumRecords() {
		return 0, io.EOF
	}
	rec := s.cursor
	s.cursor++
	sp := m.Spans(rec)[0]
	if err := s.readAdvanceTo(ctx, sp.FSBlock); err != nil {
		return rec, err
	}
	blk := s.rblock(sp.FSBlock)
	copy(dst, blk[sp.Off:sp.Off+sp.Len])
	s.opts.Trace.Add(trace.Event{
		Time: ctx.Now(), Proc: s.traceProc(ctx), Op: trace.Read, Record: rec, Block: m.BlockOf(rec),
	})
	return rec, nil
}

// WriteNext claims the next record slot and writes data (len must equal
// the record size), returning the record index.
func (s *SelfSched) WriteNext(ctx sim.Context, data []byte) (int64, error) {
	if s.mode != ssWrite {
		return 0, fmt.Errorf("core: WriteNext on a read handle")
	}
	if err := s.setGran(granRecord); err != nil {
		return 0, err
	}
	m := s.f.Mapper()
	if len(data) != m.RecordSize() {
		return 0, fmt.Errorf("core: record is %d bytes, file records are %d", len(data), m.RecordSize())
	}
	p := s.lock(ctx)
	defer s.unlock(p)
	if s.closed {
		return 0, fmt.Errorf("core: handle closed")
	}
	if s.cursor >= m.NumRecords() {
		return 0, fmt.Errorf("core: file full: %w", io.ErrShortWrite)
	}
	rec := s.cursor
	s.cursor++
	sp := m.Spans(rec)[0]
	if err := s.writeAdvanceTo(ctx, sp.FSBlock); err != nil {
		return rec, err
	}
	blk := s.wblock(sp.FSBlock)
	copy(blk[sp.Off:sp.Off+sp.Len], data)
	s.opts.Trace.Add(trace.Event{
		Time: ctx.Now(), Proc: s.traceProc(ctx), Op: trace.Write, Record: rec, Block: m.BlockOf(rec),
	})
	return rec, nil
}

// writeAdvanceTo makes wbuf the assembly buffer covering logical fs
// block k, flushing the completed predecessor extent.
func (s *SelfSched) writeAdvanceTo(ctx sim.Context, k int64) error {
	if s.wbuf != nil && k >= s.wLo && k < s.wHi {
		return nil
	}
	if s.opts.EarlyRelease {
		if s.wbuf != nil {
			if err := s.sw.Submit(ctx, s.wLo/s.ext, s.wbuf); err != nil {
				return err
			}
			s.wbuf = nil
		}
		buf, err := s.sw.Acquire(ctx)
		if err != nil {
			return err
		}
		clear(buf)
		s.wbuf = buf
		s.wLo, s.wHi = extentSpanAt(k, s.ext, s.totalFS)
		return nil
	}
	if s.wbuf != nil {
		if err := s.f.Set().WriteBlock(ctx, s.wLo, s.wbuf); err != nil {
			return err
		}
	}
	clear(s.wBuf1)
	s.wbuf = s.wBuf1
	s.wLo, s.wHi = k, k+1
	return nil
}

// ReadNextBlock claims the next whole paper-block, returning its payload
// (valid until the next block-mode call) and block index. The final
// block's payload may be short.
func (s *SelfSched) ReadNextBlock(ctx sim.Context) ([]byte, int64, error) {
	if s.mode != ssRead {
		return nil, 0, fmt.Errorf("core: ReadNextBlock on a write handle")
	}
	if err := s.setGran(granBlock); err != nil {
		return nil, 0, err
	}
	m := s.f.Mapper()
	p := s.lock(ctx)
	defer s.unlock(p)
	if s.closed {
		return nil, 0, fmt.Errorf("core: handle closed")
	}
	if s.cursor >= m.NumBlocks() {
		return nil, 0, io.EOF
	}
	b := s.cursor
	s.cursor++
	nRec := m.RecordsInBlock(b)
	want := nRec * m.RecordSize()
	if cap(s.payload) < want {
		s.payload = make([]byte, want)
	}
	out := s.payload[:want]
	firstFS, _ := m.BlockSpan(b)
	fsbs := m.FSBlockSize()
	for got := 0; got < want; {
		k := firstFS + int64(got/fsbs)
		if err := s.readAdvanceTo(ctx, k); err != nil {
			return nil, b, err
		}
		off := got % fsbs
		n := fsbs - off
		if n > want-got {
			n = want - got
		}
		blk := s.rblock(k)
		copy(out[got:], blk[off:off+n])
		got += n
	}
	s.opts.Trace.Add(trace.Event{
		Time: ctx.Now(), Proc: s.traceProc(ctx), Op: trace.Read,
		Record: b * int64(m.BlockRecords()), Block: b,
	})
	return out, b, nil
}

// WriteNextBlock claims the next paper-block slot and writes its payload
// (len must equal RecordsInBlock(b) * record size).
func (s *SelfSched) WriteNextBlock(ctx sim.Context, payload []byte) (int64, error) {
	if s.mode != ssWrite {
		return 0, fmt.Errorf("core: WriteNextBlock on a read handle")
	}
	if err := s.setGran(granBlock); err != nil {
		return 0, err
	}
	m := s.f.Mapper()
	p := s.lock(ctx)
	defer s.unlock(p)
	if s.closed {
		return 0, fmt.Errorf("core: handle closed")
	}
	if s.cursor >= m.NumBlocks() {
		return 0, fmt.Errorf("core: file full: %w", io.ErrShortWrite)
	}
	b := s.cursor
	s.cursor++
	want := m.RecordsInBlock(b) * m.RecordSize()
	if len(payload) != want {
		return b, fmt.Errorf("core: block %d payload is %d bytes, want %d", b, len(payload), want)
	}
	firstFS, _ := m.BlockSpan(b)
	fsbs := m.FSBlockSize()
	for put := 0; put < want; {
		k := firstFS + int64(put/fsbs)
		if err := s.writeAdvanceTo(ctx, k); err != nil {
			return b, err
		}
		off := put % fsbs
		n := fsbs - off
		if n > want-put {
			n = want - put
		}
		blk := s.wblock(k)
		copy(blk[off:off+n], payload[put:put+n])
		put += n
	}
	s.opts.Trace.Add(trace.Event{
		Time: ctx.Now(), Proc: s.traceProc(ctx), Op: trace.Write,
		Record: b * int64(m.BlockRecords()), Block: b,
	})
	return b, nil
}

// Close flushes pending output and stops the I/O processes. Call once,
// after all participants are done.
func (s *SelfSched) Close(ctx sim.Context) error {
	p := s.lock(ctx)
	defer s.unlock(p)
	if s.closed {
		return nil
	}
	s.closed = true
	switch s.mode {
	case ssRead:
		if s.opts.EarlyRelease {
			if s.cur != nil {
				s.rd.Release(ctx, s.cur)
				s.cur = nil
			}
			s.rd.Close(ctx)
		}
		return nil
	default:
		if s.wbuf != nil {
			if s.opts.EarlyRelease {
				if err := s.sw.Submit(ctx, s.wLo/s.ext, s.wbuf); err != nil {
					return err
				}
			} else if err := s.f.Set().WriteBlock(ctx, s.wLo, s.wbuf); err != nil {
				return err
			}
			s.wbuf = nil
		}
		if s.opts.EarlyRelease {
			return s.sw.Close(ctx)
		}
		return nil
	}
}
