package core

import (
	"fmt"
	"io"

	"repro/internal/buffer"
	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/trace"
)

// SelfSchedDirect is the §3.2 variant the paper sketches for the GDA
// organization: "this organization could be used to support direct
// access versions of the S and SS file types". Records are claimed in
// strict sequence (the SS guarantee) but transferred through a shared
// direct-access block cache instead of a sequential prefetch stream, so
// the same handle can also serve interspersed random reads — the mixed
// mode a purely sequential SS handle cannot offer.
//
// Like SelfSched, a single handle is shared by all processes; unlike
// SelfSched, records may straddle fs blocks (the cache assembles spans).
type SelfSchedDirect struct {
	f    *pfs.File
	opts Options
	d    *Direct

	mu      sim.Mutex
	cursor  int64
	closed  bool
	procIDs map[*sim.Proc]int
}

// OpenSelfSchedDirect opens the shared direct-access self-scheduled view.
func OpenSelfSchedDirect(f *pfs.File, opts Options) (*SelfSchedDirect, error) {
	opts = opts.norm()
	inner := opts
	inner.Trace = nil // this handle emits the events; avoid double tracing
	d, err := OpenDirect(f, inner)
	if err != nil {
		return nil, err
	}
	return &SelfSchedDirect{f: f, opts: opts, d: d}, nil
}

// RegisterProc associates a simulated process with a trace id (as with
// SelfSched, the shared handle cannot identify claimants otherwise).
func (s *SelfSchedDirect) RegisterProc(p *sim.Proc, id int) {
	if s.procIDs == nil {
		s.procIDs = make(map[*sim.Proc]int)
	}
	s.procIDs[p] = id
}

// traceProc resolves the claimant's trace id.
func (s *SelfSchedDirect) traceProc(ctx sim.Context) int {
	if p, ok := ctx.(*sim.Proc); ok {
		if id, ok := s.procIDs[p]; ok {
			return id
		}
	}
	return s.opts.Proc
}

// Claim atomically takes the next record index without transferring any
// data — the §4 early-release idea taken to its limit: the critical
// section contains only the pointer bump, and the caller performs the
// transfer at its leisure through the shared cache.
func (s *SelfSchedDirect) Claim(ctx sim.Context) (int64, error) {
	var p *sim.Proc
	if pr, ok := ctx.(*sim.Proc); ok {
		s.mu.Lock(pr)
		p = pr
	}
	defer func() {
		if p != nil {
			s.mu.Unlock(p)
		}
	}()
	if s.closed {
		return 0, fmt.Errorf("core: handle closed")
	}
	if s.cursor >= s.f.Mapper().NumRecords() {
		return 0, io.EOF
	}
	rec := s.cursor
	s.cursor++
	return rec, nil
}

// ReadNext claims the next record and reads it into dst via the shared
// cache. The device transfer happens outside the pointer lock.
func (s *SelfSchedDirect) ReadNext(ctx sim.Context, dst []byte) (int64, error) {
	rec, err := s.Claim(ctx)
	if err != nil {
		return 0, err
	}
	if err := s.d.ReadRecordAt(ctx, rec, dst); err != nil {
		return rec, err
	}
	s.opts.Trace.Add(trace.Event{
		Time: ctx.Now(), Proc: s.traceProc(ctx), Op: trace.Read,
		Record: rec, Block: s.f.Mapper().BlockOf(rec),
	})
	return rec, nil
}

// WriteNext claims the next record slot and writes data through the
// shared cache.
func (s *SelfSchedDirect) WriteNext(ctx sim.Context, data []byte) (int64, error) {
	rec, err := s.Claim(ctx)
	if err != nil {
		if err == io.EOF {
			return 0, fmt.Errorf("core: file full: %w", io.ErrShortWrite)
		}
		return 0, err
	}
	if err := s.d.WriteRecordAt(ctx, rec, data); err != nil {
		return rec, err
	}
	s.opts.Trace.Add(trace.Event{
		Time: ctx.Now(), Proc: s.traceProc(ctx), Op: trace.Write,
		Record: rec, Block: s.f.Mapper().BlockOf(rec),
	})
	return rec, nil
}

// ReadRecordAt performs an interspersed random read through the same
// shared cache (the GDA side of the hybrid).
func (s *SelfSchedDirect) ReadRecordAt(ctx sim.Context, rec int64, dst []byte) error {
	return s.d.ReadRecordAt(ctx, rec, dst)
}

// CacheStats exposes the shared cache counters.
func (s *SelfSchedDirect) CacheStats() buffer.CacheStats {
	return s.d.CacheStats()
}

// Close flushes the cache and invalidates the handle.
func (s *SelfSchedDirect) Close(ctx sim.Context) error {
	if pr, ok := ctx.(*sim.Proc); ok {
		s.mu.Lock(pr)
		defer s.mu.Unlock(pr)
	}
	if s.closed {
		return nil
	}
	s.closed = true
	return s.d.Close(ctx)
}
