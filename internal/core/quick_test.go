package core

import (
	"io"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/blockio"
	"repro/internal/device"
	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/workload"
)

// TestQuickRoundTripAllFramings is the package's central property test:
// for arbitrary record sizes, block groupings, file lengths, device
// counts and organizations, writing every record through the
// organization's own view and reading back through both the same view
// and the global sequential view must reproduce the data exactly.
func TestQuickRoundTripAllFramings(t *testing.T) {
	check := func(rs16, n16 uint16, br8, devs8, parts8, org8 uint8) bool {
		recordSize := int(rs16%500) + 1
		numRecords := int64(n16%300) + 1
		blockRecords := int(br8%5) + 1
		devs := int(devs8%4) + 1
		parts := int(parts8%4) + 1
		orgs := []pfs.Organization{
			pfs.OrgSequential, pfs.OrgPartitioned, pfs.OrgInterleaved,
			pfs.OrgGlobalDirect, pfs.OrgPartitionedDirect,
		}
		org := orgs[int(org8)%len(orgs)]

		disks := make([]*device.Disk, devs)
		for i := range disks {
			disks[i] = device.New(device.Config{
				Geometry: device.Geometry{BlockSize: 512, BlocksPerCyl: 16, Cylinders: 512},
			})
		}
		store, err := blockio.NewDirect(disks)
		if err != nil {
			t.Log(err)
			return false
		}
		vol := pfs.NewVolume(store)
		spec := pfs.Spec{
			Name: "q", Org: org, RecordSize: recordSize,
			BlockRecords: blockRecords, NumRecords: numRecords,
		}
		if org == pfs.OrgPartitioned || org == pfs.OrgInterleaved || org == pfs.OrgPartitionedDirect {
			spec.Parts = parts
		}
		f, err := vol.Create(spec)
		if err != nil {
			t.Log(err)
			return false
		}
		ctx := sim.NewWall()
		seed := uint64(rs16) ^ uint64(n16)<<16

		buf := make([]byte, recordSize)

		// Write through the organization's own view.
		switch org {
		case pfs.OrgSequential:
			w, err := OpenWriter(f, Options{})
			if err != nil {
				return false
			}
			for r := int64(0); r < numRecords; r++ {
				workload.Record(buf, seed, r)
				if _, err := w.WriteRecord(ctx, buf); err != nil {
					t.Log(err)
					return false
				}
			}
			if err := w.Close(ctx); err != nil {
				return false
			}
		case pfs.OrgPartitioned:
			for p := 0; p < parts; p++ {
				w, err := OpenPartWriter(f, p, Options{})
				if err != nil {
					return false
				}
				first, end := f.PartRecordRange(p)
				for r := first; r < end; r++ {
					workload.Record(buf, seed, r)
					if _, err := w.WriteRecord(ctx, buf); err != nil {
						t.Log(err)
						return false
					}
				}
				if err := w.Close(ctx); err != nil {
					return false
				}
			}
		case pfs.OrgInterleaved:
			for p := 0; p < parts; p++ {
				w, err := OpenInterleavedWriter(f, p, parts, Options{})
				if err != nil {
					return false
				}
				m := f.Mapper()
				for b := int64(p); b < m.NumBlocks(); b += int64(parts) {
					for i := 0; i < m.RecordsInBlock(b); i++ {
						r := b*int64(m.BlockRecords()) + int64(i)
						workload.Record(buf, seed, r)
						if _, err := w.WriteRecord(ctx, buf); err != nil {
							t.Log(err)
							return false
						}
					}
				}
				if err := w.Close(ctx); err != nil {
					return false
				}
			}
		case pfs.OrgGlobalDirect:
			d, err := OpenDirect(f, Options{CacheBlocks: 3})
			if err != nil {
				return false
			}
			// Scrambled write order.
			perm := sim.NewRNG(seed).Perm(int(numRecords))
			for _, ri := range perm {
				workload.Record(buf, seed, int64(ri))
				if err := d.WriteRecordAt(ctx, int64(ri), buf); err != nil {
					t.Log(err)
					return false
				}
			}
			if err := d.Close(ctx); err != nil {
				return false
			}
		case pfs.OrgPartitionedDirect:
			for p := 0; p < parts; p++ {
				d, err := OpenDirectPart(f, p, Options{CacheBlocks: 3})
				if err != nil {
					return false
				}
				m := f.Mapper()
				for b := int64(0); b < m.NumBlocks(); b++ {
					if f.BlockOwner(b) != p {
						continue
					}
					for i := 0; i < m.RecordsInBlock(b); i++ {
						r := b*int64(m.BlockRecords()) + int64(i)
						workload.Record(buf, seed, r)
						if err := d.WriteRecordAt(ctx, r, buf); err != nil {
							t.Log(err)
							return false
						}
					}
				}
				if err := d.Close(ctx); err != nil {
					return false
				}
			}
		}

		// Read back through the global sequential view.
		rd, err := OpenReader(f, Options{})
		if err != nil {
			return false
		}
		defer rd.Close(ctx)
		var count int64
		for {
			data, rec, err := rd.ReadRecord(ctx)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Log(err)
				return false
			}
			if rec != count {
				t.Logf("out of order: %d at position %d", rec, count)
				return false
			}
			if err := workload.CheckRecord(data, seed, rec); err != nil {
				t.Logf("org=%v rs=%d br=%d n=%d devs=%d parts=%d: %v",
					org, recordSize, blockRecords, numRecords, devs, parts, err)
				return false
			}
			count++
		}
		return count == numRecords
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSelfSchedClaimsComplete checks the SS invariant under random
// framing (no-straddle framings only): workers claim every record
// exactly once, regardless of worker count and compute skew.
func TestQuickSelfSchedClaimsComplete(t *testing.T) {
	check := func(n16 uint16, workers8, br8 uint8) bool {
		numRecords := int64(n16%200) + 1
		workers := int(workers8%6) + 1
		blockRecords := int(br8%4) + 1

		e := sim.NewEngine()
		disks := make([]*device.Disk, 2)
		for i := range disks {
			disks[i] = device.New(device.Config{
				Geometry: device.Geometry{BlockSize: 512, BlocksPerCyl: 16, Cylinders: 512},
				Engine:   e,
			})
		}
		store, err := blockio.NewDirect(disks)
		if err != nil {
			return false
		}
		vol := pfs.NewVolume(store)
		f, err := vol.Create(pfs.Spec{
			Name: "ss", Org: pfs.OrgSelfScheduled, RecordSize: 128,
			BlockRecords: blockRecords, NumRecords: numRecords,
		})
		if err != nil {
			return false
		}
		ok := true
		e.Go("driver", func(p *sim.Proc) {
			w, err := OpenWriter(f, Options{})
			if err != nil {
				ok = false
				return
			}
			buf := make([]byte, 128)
			for r := int64(0); r < numRecords; r++ {
				workload.Record(buf, 5, r)
				if _, err := w.WriteRecord(p, buf); err != nil {
					ok = false
					return
				}
			}
			if err := w.Close(p); err != nil {
				ok = false
				return
			}
			ss, err := OpenSelfSched(f, SSRead, DefaultOptions())
			if err != nil {
				ok = false
				return
			}
			seen := make(map[int64]int)
			var g sim.Group
			for wk := 0; wk < workers; wk++ {
				wid := wk
				g.Spawn(p.Engine(), "w", func(c *sim.Proc) {
					dst := make([]byte, 128)
					for {
						rec, err := ss.ReadNext(c, dst)
						if err != nil {
							return
						}
						if workload.CheckRecord(dst, 5, rec) != nil {
							ok = false
							return
						}
						seen[rec]++
						c.Sleep(time.Duration(sim.NewRNG(uint64(wid)).Intn(3)*1000 + 1))
					}
				})
			}
			g.Wait(p)
			_ = ss.Close(p)
			if int64(len(seen)) != numRecords {
				ok = false
			}
			for _, n := range seen {
				if n != 1 {
					ok = false
				}
			}
		})
		if err := e.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
