package core

import (
	"errors"
	"io"
	"testing"
	"time"

	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/trace"
)

func TestDirectFlushPersistsWithoutClose(t *testing.T) {
	v := testVolume(t, 2, nil)
	f, err := v.Create(pfs.Spec{Name: "g", Org: pfs.OrgGlobalDirect, RecordSize: 64, NumRecords: 16})
	if err != nil {
		t.Fatal(err)
	}
	ctx := sim.NewWall()
	d, err := OpenDirect(f, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.WriteRecordAt(ctx, 3, rec64(77)); err != nil {
		t.Fatal(err)
	}
	if err := d.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	// A second, independent handle must see the flushed record even
	// though the first handle is still open.
	d2, err := OpenDirect(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 64)
	if err := d2.ReadRecordAt(ctx, 3, dst); err != nil || recVal(dst) != 77 {
		t.Fatalf("after Flush: %v %d", err, recVal(dst))
	}
	if st := d.CacheStats(); st.WriteBacks == 0 {
		t.Fatalf("no write-backs recorded: %+v", st)
	}
	_ = d.Close(ctx)
	if err := d.Close(ctx); err != nil { // idempotent
		t.Fatal(err)
	}
}

func TestDirectPartFlushAndStats(t *testing.T) {
	v := testVolume(t, 2, nil)
	f, err := v.Create(pfs.Spec{
		Name: "pda", Org: pfs.OrgPartitionedDirect, RecordSize: 64,
		BlockRecords: 2, NumRecords: 16, Parts: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := sim.NewWall()
	d, err := OpenDirectPart(f, 0, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.WriteRecordAt(ctx, 1, rec64(9)); err != nil {
		t.Fatal(err)
	}
	if err := d.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if d.CacheStats().Misses == 0 {
		t.Fatal("no misses recorded")
	}
	if err := d.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteRecordAt(ctx, 1, rec64(9)); err == nil {
		t.Fatal("write after close accepted")
	}
	if err := d.ReadRecordAt(ctx, 1, make([]byte, 64)); err == nil {
		t.Fatal("read after close accepted")
	}
}

func TestOpenBlockRangeReader(t *testing.T) {
	v := testVolume(t, 2, nil)
	f, err := v.Create(pfs.Spec{Name: "s", RecordSize: 64, BlockRecords: 2, NumRecords: 20})
	if err != nil {
		t.Fatal(err)
	}
	ctx := sim.NewWall()
	fillSeq(t, f, ctx)
	r, err := OpenBlockRangeReader(f, 2, 5, Options{}) // blocks 2,3,4 -> records 4..9
	if err != nil {
		t.Fatal(err)
	}
	var got []int64
	for {
		_, rec, err := r.ReadRecord(ctx)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, rec)
	}
	want := []int64{4, 5, 6, 7, 8, 9}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("range read %v, want %v", got, want)
		}
	}
	_ = r.Close(ctx)
	// Validation.
	if _, err := OpenBlockRangeReader(f, -1, 2, Options{}); err == nil {
		t.Fatal("negative start accepted")
	}
	if _, err := OpenBlockRangeReader(f, 3, 2, Options{}); err == nil {
		t.Fatal("inverted range accepted")
	}
	if _, err := OpenBlockRangeReader(f, 0, 99, Options{}); err == nil {
		t.Fatal("overlong range accepted")
	}
}

func TestSelfSchedBlockModeWrite(t *testing.T) {
	e := sim.NewEngine()
	v := testVolume(t, 2, e)
	f, err := v.Create(pfs.Spec{
		Name: "ssb", Org: pfs.OrgSelfScheduled, RecordSize: 64,
		BlockRecords: 4, NumRecords: 22, // last block short: 2 records
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Go("main", func(p *sim.Proc) {
		ss, err := OpenSelfSched(f, SSWrite, DefaultOptions())
		if err != nil {
			t.Error(err)
			return
		}
		var g sim.Group
		for w := 0; w < 2; w++ {
			g.Spawn(p.Engine(), "w", func(c *sim.Proc) {
				for {
					// Claim, then build the payload for the claimed block.
					m := f.Mapper()
					// Probe the next block's record count via a dry run:
					// WriteNextBlock validates length, so construct for
					// the worst case and retry shorter on the final block.
					payload := make([]byte, 4*64)
					b, err := ss.WriteNextBlock(c, payload)
					if err != nil {
						if errors.Is(err, io.ErrShortWrite) {
							return
						}
						// Final short block: retry with its real size.
						short := make([]byte, m.RecordsInBlock(m.NumBlocks()-1)*64)
						if _, err2 := ss.WriteNextBlock(c, short); err2 != nil {
							if errors.Is(err2, io.ErrShortWrite) {
								return
							}
							t.Error(err2)
							return
						}
						continue
					}
					_ = b
					c.Sleep(time.Millisecond)
				}
			})
		}
		g.Wait(p)
		if err := ss.Close(p); err != nil {
			t.Error(err)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSelfSchedSerializedWritePath(t *testing.T) {
	// EarlyRelease=false exercises the synchronous write-under-lock path.
	e := sim.NewEngine()
	v := testVolume(t, 2, e)
	f, err := v.Create(pfs.Spec{Name: "ss", Org: pfs.OrgSelfScheduled, RecordSize: 64, NumRecords: 24})
	if err != nil {
		t.Fatal(err)
	}
	e.Go("main", func(p *sim.Proc) {
		opts := Options{NBufs: 2, IOProcs: 1, EarlyRelease: false}
		ss, err := OpenSelfSched(f, SSWrite, opts)
		if err != nil {
			t.Error(err)
			return
		}
		var g sim.Group
		for w := 0; w < 3; w++ {
			g.Spawn(p.Engine(), "w", func(c *sim.Proc) {
				for {
					if _, err := ss.WriteNext(c, rec64(1)); err != nil {
						return
					}
				}
			})
		}
		g.Wait(p)
		if err := ss.Close(p); err != nil {
			t.Error(err)
		}
		// All records must be non-zero after close.
		r, err := OpenReader(f, Options{})
		if err != nil {
			t.Error(err)
			return
		}
		n := 0
		for {
			data, _, err := r.ReadRecord(p)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Error(err)
				return
			}
			if recVal(data) != 1 {
				t.Errorf("record value %d", recVal(data))
			}
			n++
		}
		_ = r.Close(p)
		if n != 24 {
			t.Errorf("read %d records", n)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSelfSchedRegisterProcTracing(t *testing.T) {
	e := sim.NewEngine()
	v := testVolume(t, 2, e)
	f, err := v.Create(pfs.Spec{Name: "ss", Org: pfs.OrgSelfScheduled, RecordSize: 64, NumRecords: 12})
	if err != nil {
		t.Fatal(err)
	}
	rec := &trace.Recorder{}
	e.Go("main", func(p *sim.Proc) {
		fillSeq(t, f, p)
		opts := DefaultOptions()
		opts.Trace = rec
		opts.Proc = 99 // fallback id for unregistered procs
		ss, err := OpenSelfSched(f, SSRead, opts)
		if err != nil {
			t.Error(err)
			return
		}
		var g sim.Group
		for w := 0; w < 2; w++ {
			wid := w
			g.Spawn(p.Engine(), "w", func(c *sim.Proc) {
				ss.RegisterProc(c, wid)
				dst := make([]byte, 64)
				for {
					if _, err := ss.ReadNext(c, dst); err != nil {
						return
					}
					c.Sleep(time.Millisecond)
				}
			})
		}
		g.Wait(p)
		_ = ss.Close(p)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	procs := map[int]bool{}
	for _, ev := range rec.Events() {
		procs[ev.Proc] = true
	}
	if procs[99] {
		t.Fatal("registered procs traced under fallback id")
	}
	if !procs[0] || !procs[1] {
		t.Fatalf("traced procs: %v", procs)
	}
}

func TestGlobalWriterRejectsOverflow(t *testing.T) {
	v := testVolume(t, 2, nil)
	f, err := v.Create(pfs.Spec{Name: "g", RecordSize: 64, NumRecords: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx := sim.NewWall()
	gw, err := OpenGlobalWriter(f, ctx, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gw.Write(make([]byte, 3*64)); err == nil {
		t.Fatal("overflow accepted")
	}
	_ = gw.Close()
	if _, err := gw.Write([]byte{1}); err == nil {
		t.Fatal("write after close accepted")
	}
}

func TestStreamReaderCloseIdempotentAndReadAfterClose(t *testing.T) {
	v := testVolume(t, 2, nil)
	f, err := v.Create(pfs.Spec{Name: "s", RecordSize: 64, NumRecords: 8})
	if err != nil {
		t.Fatal(err)
	}
	ctx := sim.NewWall()
	fillSeq(t, f, ctx)
	r, err := OpenReader(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.ReadRecord(ctx); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.ReadRecord(ctx); err == nil {
		t.Fatal("read after close accepted")
	}
}
