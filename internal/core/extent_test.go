package core

import (
	"io"
	"testing"

	"repro/internal/blockio"
	"repro/internal/pfs"
	"repro/internal/sim"
)

// extentSpecs enumerates file shapes covering every stream organization,
// both pack policies, straddling records (96-byte records over 256-byte
// fs blocks), padded paper-blocks and shared devices (3 devices for 5
// partitions).
func extentSpecs() []pfs.Spec {
	return []pfs.Spec{
		{Name: "s-striped", Org: pfs.OrgSequential, RecordSize: 64, NumRecords: 101},
		{Name: "s-unit1", Org: pfs.OrgSequential, RecordSize: 96, BlockRecords: 8,
			NumRecords: 77, StripeUnitFS: 1},
		{Name: "ps-contig", Org: pfs.OrgPartitioned, RecordSize: 64, BlockRecords: 4,
			NumRecords: 97, Parts: 5, Pack: blockio.PackContiguous},
		{Name: "ps-inter", Org: pfs.OrgPartitioned, RecordSize: 64, BlockRecords: 4,
			NumRecords: 97, Parts: 5, Pack: blockio.PackInterleaved},
		{Name: "is-contig", Org: pfs.OrgInterleaved, RecordSize: 96, BlockRecords: 8,
			NumRecords: 90, Parts: 5, Pack: blockio.PackContiguous},
		{Name: "is-inter", Org: pfs.OrgInterleaved, RecordSize: 64, BlockRecords: 4,
			NumRecords: 90, Parts: 5, Pack: blockio.PackInterleaved},
	}
}

// streamCount reports how many stream views f has.
func streamCount(f *pfs.File) int {
	if f.Spec().Org == pfs.OrgPartitioned || f.Spec().Org == pfs.OrgInterleaved {
		return f.Parts()
	}
	return 1
}

// openView opens the part'th stream view of f, read or write.
func openView(t *testing.T, f *pfs.File, part int, opts Options, write bool) (*StreamReader, *StreamWriter) {
	t.Helper()
	var r *StreamReader
	var w *StreamWriter
	var err error
	switch f.Spec().Org {
	case pfs.OrgPartitioned:
		if write {
			w, err = OpenPartWriter(f, part, opts)
		} else {
			r, err = OpenPartReader(f, part, opts)
		}
	case pfs.OrgInterleaved:
		if write {
			w, err = OpenInterleavedWriter(f, part, f.Parts(), opts)
		} else {
			r, err = OpenInterleavedReader(f, part, f.Parts(), opts)
		}
	default:
		if write {
			w, err = OpenWriter(f, opts)
		} else {
			r, err = OpenReader(f, opts)
		}
	}
	if err != nil {
		t.Fatal(err)
	}
	return r, w
}

// stamp fills data with a deterministic pattern derived from rec.
func stamp(data []byte, rec int64) {
	for i := range data {
		data[i] = byte(int64(i+1)*(rec+3) + rec>>5)
	}
}

// writeStamped fills every stream of f with records stamped by their
// global record index. Two passes per stream: the first learns the
// stream's record sequence (the writer assigns indices), the second —
// on a reopened view — writes the stamped payloads.
func writeStamped(t *testing.T, f *pfs.File, ctx sim.Context, opts Options) {
	t.Helper()
	rs := f.Mapper().RecordSize()
	for part := 0; part < streamCount(f); part++ {
		_, w := openView(t, f, part, opts, true)
		zero := make([]byte, rs)
		var recs []int64
		for {
			rec, err := w.WriteRecord(ctx, zero)
			if err != nil {
				break // stream full
			}
			recs = append(recs, rec)
		}
		if err := w.Close(ctx); err != nil {
			t.Fatal(err)
		}
		_, w = openView(t, f, part, opts, true)
		data := make([]byte, rs)
		for _, rec := range recs {
			stamp(data, rec)
			if got, err := w.WriteRecord(ctx, data); err != nil || got != rec {
				t.Fatalf("restamp rec %d: got %d err %v", rec, got, err)
			}
		}
		if err := w.Close(ctx); err != nil {
			t.Fatal(err)
		}
	}
}

// verifyStamped reads every stream of f checking each record's payload
// against its global record index; it returns the records seen.
func verifyStamped(t *testing.T, f *pfs.File, ctx sim.Context, opts Options) int64 {
	t.Helper()
	rs := f.Mapper().RecordSize()
	want := make([]byte, rs)
	var total int64
	for part := 0; part < streamCount(f); part++ {
		r, _ := openView(t, f, part, opts, false)
		for {
			data, rec, err := r.ReadRecord(ctx)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("part %d: %v", part, err)
			}
			stamp(want, rec)
			if string(data) != string(want) {
				t.Fatalf("part %d record %d payload mismatch", part, rec)
			}
			total++
		}
		if err := r.Close(ctx); err != nil {
			t.Fatal(err)
		}
	}
	return total
}

// TestStreamExtentEquivalence asserts extent and per-block streaming are
// bit-for-bit interchangeable: files written with one extent size read
// back exactly under every other, across all organizations and packs.
func TestStreamExtentEquivalence(t *testing.T) {
	extents := []int{1, 3, 8}
	for _, spec := range extentSpecs() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			ctx := sim.NewWall()
			for _, wExt := range extents {
				vol := testVolume(t, 3, nil)
				f, err := vol.Create(spec)
				if err != nil {
					t.Fatal(err)
				}
				writeStamped(t, f, ctx, Options{NBufs: 2, ExtentBlocks: wExt})
				for _, rExt := range extents {
					n := verifyStamped(t, f, ctx, Options{NBufs: 2, ExtentBlocks: rExt})
					if n != spec.NumRecords {
						t.Fatalf("write ext %d / read ext %d: %d records, want %d",
							wExt, rExt, n, spec.NumRecords)
					}
				}
			}
		})
	}
}

// TestStreamExtentEquivalenceEngine repeats the round trip under the
// virtual-time engine with prefetch and write-behind processes, so the
// asynchronous extent path (parallel per-device runs) is covered.
func TestStreamExtentEquivalenceEngine(t *testing.T) {
	for _, spec := range extentSpecs() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			e := sim.NewEngine()
			vol := testVolume(t, 3, e)
			f, err := vol.Create(spec)
			if err != nil {
				t.Fatal(err)
			}
			e.Go("main", func(p *sim.Proc) {
				writeStamped(t, f, p, Options{NBufs: 4, IOProcs: 2, ExtentBlocks: 4})
				if n := verifyStamped(t, f, p, Options{NBufs: 4, IOProcs: 2, ExtentBlocks: 1}); n != spec.NumRecords {
					t.Errorf("read %d records, want %d", n, spec.NumRecords)
				}
				if n := verifyStamped(t, f, p, Options{NBufs: 4, IOProcs: 2, ExtentBlocks: 8}); n != spec.NumRecords {
					t.Errorf("read %d records, want %d", n, spec.NumRecords)
				}
			})
			if err := e.Run(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSelfSchedExtent runs the shared SS handle with extents under the
// engine: several processes write the whole file, then several read it,
// every record exactly once, payloads intact.
func TestSelfSchedExtent(t *testing.T) {
	const records = 120
	e := sim.NewEngine()
	vol := testVolume(t, 3, e)
	f, err := vol.Create(pfs.Spec{Name: "ss", Org: pfs.OrgSelfScheduled,
		RecordSize: 64, NumRecords: records})
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{NBufs: 4, IOProcs: 2, EarlyRelease: true, ExtentBlocks: 4}
	w, err := OpenSelfSched(f, SSWrite, opts)
	if err != nil {
		t.Fatal(err)
	}
	var wg sim.Group
	for i := 0; i < 3; i++ {
		wg.Spawn(e, "writer", func(p *sim.Proc) {
			data := make([]byte, 64)
			for {
				// Claim then stamp: WriteNext copies data after the claim,
				// so the stamp must be computed from the returned index —
				// write zero first is not possible; instead write a
				// predictable pattern independent of claim order.
				for i := range data {
					data[i] = 0xA5
				}
				if _, err := w.WriteNext(p, data); err != nil {
					return
				}
			}
		})
	}
	e.Go("closer", func(p *sim.Proc) {
		wg.Wait(p)
		if err := w.Close(p); err != nil {
			t.Errorf("close writer: %v", err)
		}
		r, err := OpenSelfSched(f, SSRead, opts)
		if err != nil {
			t.Errorf("open reader: %v", err)
			return
		}
		seen := make(map[int64]bool)
		var rg sim.Group
		for i := 0; i < 3; i++ {
			rg.Spawn(p.Engine(), "reader", func(c *sim.Proc) {
				buf := make([]byte, 64)
				for {
					rec, err := r.ReadNext(c, buf)
					if err == io.EOF {
						return
					}
					if err != nil {
						t.Errorf("ReadNext: %v", err)
						return
					}
					if seen[rec] {
						t.Errorf("record %d claimed twice", rec)
					}
					seen[rec] = true
					for _, b := range buf {
						if b != 0xA5 {
							t.Errorf("record %d corrupted", rec)
							break
						}
					}
				}
			})
		}
		rg.Wait(p)
		if len(seen) != records {
			t.Errorf("saw %d records, want %d", len(seen), records)
		}
		if err := r.Close(p); err != nil {
			t.Errorf("close reader: %v", err)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestGlobalReaderDenseBulk checks the dense bulk path: a global read
// into a large buffer returns the exact canonical stream and issues far
// fewer device requests than blocks.
func TestGlobalReaderDenseBulk(t *testing.T) {
	vol := testVolume(t, 2, nil)
	f, err := vol.Create(pfs.Spec{Name: "g", Org: pfs.OrgSequential,
		RecordSize: 64, NumRecords: 64, StripeUnitFS: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !f.Mapper().Dense() {
		t.Fatal("expected dense framing")
	}
	ctx := sim.NewWall()
	writeStamped(t, f, ctx, Options{ExtentBlocks: 1})
	gr, err := OpenGlobalReader(f, ctx)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, gr.Size()+10)
	n, err := io.ReadFull(gr, got[:gr.Size()])
	if err != nil {
		t.Fatal(err)
	}
	if int64(n) != gr.Size() {
		t.Fatalf("read %d of %d", n, gr.Size())
	}
	rs := f.Mapper().RecordSize()
	want := make([]byte, rs)
	for rec := int64(0); rec < 64; rec++ {
		stamp(want, rec)
		if string(got[rec*int64(rs):(rec+1)*int64(rs)]) != string(want) {
			t.Fatalf("record %d mismatch in global stream", rec)
		}
	}
	// Unaligned reads still work (head/tail through the cache).
	if _, err := gr.Seek(13, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	frag := make([]byte, 300)
	if _, err := io.ReadFull(gr, frag); err != nil {
		t.Fatal(err)
	}
	if string(frag) != string(got[13:313]) {
		t.Fatal("unaligned dense read mismatch")
	}
}
