package core

import (
	"encoding/binary"
	"errors"
	"io"
	"testing"
	"time"

	"repro/internal/blockio"
	"repro/internal/device"
	"repro/internal/pfs"
	"repro/internal/sim"
	"repro/internal/trace"
)

// testVolume builds a volume over devs fresh disks (engine optional).
func testVolume(t *testing.T, devs int, e *sim.Engine) *pfs.Volume {
	t.Helper()
	disks := make([]*device.Disk, devs)
	for i := range disks {
		disks[i] = device.New(device.Config{
			Name:     "d",
			Geometry: device.Geometry{BlockSize: 256, BlocksPerCyl: 8, Cylinders: 128},
			Engine:   e,
		})
	}
	store, err := blockio.NewDirect(disks)
	if err != nil {
		t.Fatal(err)
	}
	return pfs.NewVolume(store)
}

// rec64 builds a 64-byte record whose first 8 bytes encode v.
func rec64(v uint64) []byte {
	b := make([]byte, 64)
	binary.BigEndian.PutUint64(b, v)
	return b
}

func recVal(b []byte) uint64 { return binary.BigEndian.Uint64(b) }

// fillSeq writes records 0..n-1 (value = index) through the S view.
func fillSeq(t *testing.T, f *pfs.File, ctx sim.Context) {
	t.Helper()
	w, err := OpenWriter(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for r := int64(0); r < f.Mapper().NumRecords(); r++ {
		if _, err := w.WriteRecord(ctx, rec64(uint64(r))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestSequentialWriteReadRoundTrip(t *testing.T) {
	v := testVolume(t, 4, nil)
	f, err := v.Create(pfs.Spec{Name: "s", Org: pfs.OrgSequential, RecordSize: 64, NumRecords: 100})
	if err != nil {
		t.Fatal(err)
	}
	ctx := sim.NewWall()
	fillSeq(t, f, ctx)
	r, err := OpenReader(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for want := int64(0); ; want++ {
		data, rec, err := r.ReadRecord(ctx)
		if err == io.EOF {
			if want != 100 {
				t.Fatalf("EOF after %d records", want)
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if rec != want || recVal(data) != uint64(want) {
			t.Fatalf("record %d: idx %d val %d", want, rec, recVal(data))
		}
	}
	if err := r.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestStreamReaderRecordsCount(t *testing.T) {
	v := testVolume(t, 2, nil)
	f, err := v.Create(pfs.Spec{Name: "s", Org: pfs.OrgSequential, RecordSize: 64, BlockRecords: 3, NumRecords: 10})
	if err != nil {
		t.Fatal(err)
	}
	r, err := OpenReader(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n := r.Records(); n != 10 {
		t.Fatalf("Records = %d", n)
	}
}

func TestPartitionedViews(t *testing.T) {
	v := testVolume(t, 4, nil)
	f, err := v.Create(pfs.Spec{
		Name: "ps", Org: pfs.OrgPartitioned, RecordSize: 64,
		BlockRecords: 4, NumRecords: 64, Parts: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := sim.NewWall()
	// Each partition writes its own records (value = 1000*part + seq).
	for p := 0; p < 4; p++ {
		w, err := OpenPartWriter(f, p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		first, end := f.PartRecordRange(p)
		for r := first; r < end; r++ {
			idx, err := w.WriteRecord(ctx, rec64(uint64(1000*p)+uint64(r-first)))
			if err != nil {
				t.Fatal(err)
			}
			if idx != r {
				t.Fatalf("part %d wrote record %d, want %d", p, idx, r)
			}
		}
		if err := w.Close(ctx); err != nil {
			t.Fatal(err)
		}
	}
	// Read back per partition.
	for p := 0; p < 4; p++ {
		r, err := OpenPartReader(f, p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		first, end := f.PartRecordRange(p)
		for want := first; want < end; want++ {
			data, rec, err := r.ReadRecord(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if rec != want || recVal(data) != uint64(1000*p)+uint64(want-first) {
				t.Fatalf("part %d record %d: idx %d val %d", p, want, rec, recVal(data))
			}
		}
		if _, _, err := r.ReadRecord(ctx); err != io.EOF {
			t.Fatalf("partition overrun: %v", err)
		}
		if err := r.Close(ctx); err != nil {
			t.Fatal(err)
		}
	}
	// And the global view sees the canonical order.
	gr, err := OpenReader(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for want := int64(0); want < 64; want++ {
		data, rec, err := gr.ReadRecord(ctx)
		if err != nil {
			t.Fatal(err)
		}
		p := int(want / 16)
		if rec != want || recVal(data) != uint64(1000*p)+uint64(want-int64(p)*16) {
			t.Fatalf("global record %d: idx %d val %d", want, rec, recVal(data))
		}
	}
	if err := gr.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestInterleavedViews(t *testing.T) {
	v := testVolume(t, 3, nil)
	f, err := v.Create(pfs.Spec{
		Name: "is", Org: pfs.OrgInterleaved, RecordSize: 64,
		BlockRecords: 2, NumRecords: 36, Parts: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := sim.NewWall()
	// Each proc writes its stride class.
	for p := 0; p < 3; p++ {
		w, err := OpenInterleavedWriter(f, p, 3, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for {
			_, err := w.WriteRecord(ctx, rec64(uint64(100+p)))
			if err != nil {
				if errors.Is(err, io.ErrShortWrite) {
					break
				}
				t.Fatal(err)
			}
		}
		if err := w.Close(ctx); err != nil {
			t.Fatal(err)
		}
	}
	// Global view: block b (2 records) written by proc b%3.
	gr, err := OpenReader(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for want := int64(0); want < 36; want++ {
		data, rec, err := gr.ReadRecord(ctx)
		if err != nil {
			t.Fatal(err)
		}
		wantProc := int((want / 2) % 3)
		if rec != want || recVal(data) != uint64(100+wantProc) {
			t.Fatalf("record %d: val %d, want proc %d", want, recVal(data), wantProc)
		}
	}
	if err := gr.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestInterleavedReaderStrideClass(t *testing.T) {
	v := testVolume(t, 2, nil)
	f, err := v.Create(pfs.Spec{
		Name: "is", Org: pfs.OrgInterleaved, RecordSize: 64,
		BlockRecords: 2, NumRecords: 20, Parts: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := sim.NewWall()
	fillSeq(t, f, ctx)
	r, err := OpenInterleavedReader(f, 1, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var got []int64
	for {
		_, rec, err := r.ReadRecord(ctx)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, rec)
	}
	want := []int64{2, 3, 6, 7, 10, 11, 14, 15, 18, 19}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("stride class = %v, want %v", got, want)
		}
	}
}

func TestStreamValidationErrors(t *testing.T) {
	v := testVolume(t, 2, nil)
	f, err := v.Create(pfs.Spec{
		Name: "ps", Org: pfs.OrgPartitioned, RecordSize: 64,
		BlockRecords: 2, NumRecords: 8, Parts: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenPartReader(f, 2, Options{}); err == nil {
		t.Fatal("bad partition accepted")
	}
	if _, err := OpenPartReader(f, -1, Options{}); err == nil {
		t.Fatal("negative partition accepted")
	}
	if _, err := OpenInterleavedReader(f, 2, 2, Options{}); err == nil {
		t.Fatal("part >= stride accepted")
	}
	if _, err := OpenInterleavedReader(f, 0, 0, Options{}); err == nil {
		t.Fatal("zero stride accepted")
	}
	ctx := sim.NewWall()
	w, err := OpenPartWriter(f, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.WriteRecord(ctx, make([]byte, 3)); err == nil {
		t.Fatal("short record accepted")
	}
	for i := 0; i < 4; i++ {
		if _, err := w.WriteRecord(ctx, rec64(0)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := w.WriteRecord(ctx, rec64(0)); !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("overrun error = %v", err)
	}
	if err := w.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := w.WriteRecord(ctx, rec64(0)); err == nil {
		t.Fatal("write after close accepted")
	}
}

func TestStraddlingRecordsAcrossFSBlocks(t *testing.T) {
	// 96-byte records on 256-byte fs blocks straddle; stream views must
	// still round-trip.
	v := testVolume(t, 2, nil)
	f, err := v.Create(pfs.Spec{
		Name: "odd", Org: pfs.OrgSequential, RecordSize: 96,
		BlockRecords: 8, NumRecords: 33,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := sim.NewWall()
	w, err := OpenWriter(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for r := int64(0); r < 33; r++ {
		data := make([]byte, 96)
		for i := range data {
			data[i] = byte(r)
		}
		if _, err := w.WriteRecord(ctx, data); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(ctx); err != nil {
		t.Fatal(err)
	}
	rd, err := OpenReader(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for want := int64(0); want < 33; want++ {
		data, _, err := rd.ReadRecord(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if data[0] != byte(want) || data[95] != byte(want) {
			t.Fatalf("record %d corrupted: %d %d", want, data[0], data[95])
		}
	}
	if err := rd.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestSelfScheduledReadEveryRecordOnce(t *testing.T) {
	e := sim.NewEngine()
	v := testVolume(t, 4, e)
	f, err := v.Create(pfs.Spec{Name: "ss", Org: pfs.OrgSelfScheduled, RecordSize: 64, NumRecords: 128})
	if err != nil {
		t.Fatal(err)
	}
	// Fill under the engine too (device calls need managed procs).
	e.Go("producer", func(p *sim.Proc) {
		fillSeq(t, f, p)
		ss, err := OpenSelfSched(f, SSRead, DefaultOptions())
		if err != nil {
			t.Error(err)
			return
		}
		seen := make(map[int64]int)
		var g sim.Group
		for w := 0; w < 4; w++ {
			g.Spawn(p.Engine(), "worker", func(c *sim.Proc) {
				dst := make([]byte, 64)
				for {
					rec, err := ss.ReadNext(c, dst)
					if err == io.EOF {
						return
					}
					if err != nil {
						t.Error(err)
						return
					}
					if recVal(dst) != uint64(rec) {
						t.Errorf("record %d carried %d", rec, recVal(dst))
					}
					seen[rec]++
					c.Sleep(time.Millisecond) // simulate work
				}
			})
		}
		g.Wait(p)
		if err := ss.Close(p); err != nil {
			t.Error(err)
		}
		if len(seen) != 128 {
			t.Errorf("saw %d distinct records", len(seen))
		}
		for rec, n := range seen {
			if n != 1 {
				t.Errorf("record %d delivered %d times", rec, n)
			}
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSelfScheduledWriteFillsFile(t *testing.T) {
	e := sim.NewEngine()
	v := testVolume(t, 4, e)
	f, err := v.Create(pfs.Spec{Name: "ss", Org: pfs.OrgSelfScheduled, RecordSize: 64, NumRecords: 64})
	if err != nil {
		t.Fatal(err)
	}
	e.Go("main", func(p *sim.Proc) {
		ss, err := OpenSelfSched(f, SSWrite, DefaultOptions())
		if err != nil {
			t.Error(err)
			return
		}
		var g sim.Group
		for w := 0; w < 3; w++ {
			wid := w
			g.Spawn(p.Engine(), "worker", func(c *sim.Proc) {
				for {
					_, err := ss.WriteNext(c, rec64(uint64(500+wid)))
					if errors.Is(err, io.ErrShortWrite) {
						return
					}
					if err != nil {
						t.Error(err)
						return
					}
				}
			})
		}
		g.Wait(p)
		if err := ss.Close(p); err != nil {
			t.Error(err)
		}
		// Every record must carry some worker's tag.
		r, err := OpenReader(f, Options{})
		if err != nil {
			t.Error(err)
			return
		}
		count := 0
		for {
			data, _, err := r.ReadRecord(p)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Error(err)
				return
			}
			if v := recVal(data); v < 500 || v > 502 {
				t.Errorf("record value %d not a worker tag", v)
			}
			count++
		}
		if count != 64 {
			t.Errorf("read %d records", count)
		}
		_ = r.Close(p)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSelfScheduledBlockMode(t *testing.T) {
	e := sim.NewEngine()
	v := testVolume(t, 2, e)
	f, err := v.Create(pfs.Spec{
		Name: "ssb", Org: pfs.OrgSelfScheduled, RecordSize: 64,
		BlockRecords: 4, NumRecords: 30, // final block short: 2 records
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Go("main", func(p *sim.Proc) {
		fillSeq(t, f, p)
		ss, err := OpenSelfSched(f, SSRead, DefaultOptions())
		if err != nil {
			t.Error(err)
			return
		}
		blocks := 0
		records := 0
		for {
			payload, b, err := ss.ReadNextBlock(p)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Error(err)
				return
			}
			nRec := len(payload) / 64
			for i := 0; i < nRec; i++ {
				want := uint64(b*4 + int64(i))
				if got := recVal(payload[i*64:]); got != want {
					t.Errorf("block %d record %d carried %d, want %d", b, i, got, want)
				}
			}
			blocks++
			records += nRec
		}
		if blocks != 8 || records != 30 {
			t.Errorf("blocks=%d records=%d", blocks, records)
		}
		// Mixing granularities must fail.
		dst := make([]byte, 64)
		if _, err := ss.ReadNext(p, dst); err == nil {
			t.Error("granularity mix accepted")
		}
		_ = ss.Close(p)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSelfScheduledRejectsStraddlingRecords(t *testing.T) {
	v := testVolume(t, 2, nil)
	f, err := v.Create(pfs.Spec{
		Name: "bad", Org: pfs.OrgSelfScheduled, RecordSize: 96, BlockRecords: 8, NumRecords: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSelfSched(f, SSRead, Options{}); err == nil {
		t.Fatal("straddling records accepted for SS")
	}
}

func TestSelfScheduledEarlyReleaseFaster(t *testing.T) {
	// 4 workers reading 64 records with per-record compute; early release
	// must beat the fully serialized implementation.
	run := func(early bool) time.Duration {
		e := sim.NewEngine()
		v := testVolume(t, 4, e)
		f, err := v.Create(pfs.Spec{Name: "ss", Org: pfs.OrgSelfScheduled, RecordSize: 64, NumRecords: 64})
		if err != nil {
			t.Fatal(err)
		}
		var end time.Duration
		e.Go("main", func(p *sim.Proc) {
			fillSeq(t, f, p)
			start := p.Now()
			opts := DefaultOptions()
			opts.EarlyRelease = early
			opts.NBufs = 4
			opts.IOProcs = 4
			ss, err := OpenSelfSched(f, SSRead, opts)
			if err != nil {
				t.Error(err)
				return
			}
			var g sim.Group
			for w := 0; w < 4; w++ {
				g.Spawn(p.Engine(), "worker", func(c *sim.Proc) {
					dst := make([]byte, 64)
					for {
						if _, err := ss.ReadNext(c, dst); err != nil {
							return
						}
						c.Sleep(2 * time.Millisecond)
					}
				})
			}
			g.Wait(p)
			_ = ss.Close(p)
			end = p.Now() - start
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return end
	}
	fast, slow := run(true), run(false)
	if fast >= slow {
		t.Fatalf("early release %v not faster than serialized %v", fast, slow)
	}
}

func TestDirectRandomAccess(t *testing.T) {
	v := testVolume(t, 4, nil)
	f, err := v.Create(pfs.Spec{Name: "gda", Org: pfs.OrgGlobalDirect, RecordSize: 64, NumRecords: 64})
	if err != nil {
		t.Fatal(err)
	}
	ctx := sim.NewWall()
	d, err := OpenDirect(f, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Write in a scrambled order, read back in another.
	perm := sim.NewRNG(7).Perm(64)
	for _, r := range perm {
		if err := d.WriteRecordAt(ctx, int64(r), rec64(uint64(r*3))); err != nil {
			t.Fatal(err)
		}
	}
	perm2 := sim.NewRNG(9).Perm(64)
	dst := make([]byte, 64)
	for _, r := range perm2 {
		if err := d.ReadRecordAt(ctx, int64(r), dst); err != nil {
			t.Fatal(err)
		}
		if recVal(dst) != uint64(r*3) {
			t.Fatalf("record %d = %d", r, recVal(dst))
		}
	}
	if err := d.Close(ctx); err != nil {
		t.Fatal(err)
	}
	st := d.CacheStats()
	if st.Hits == 0 {
		t.Fatal("no cache hits on 4-records-per-block file")
	}
	// After close the data is durable: reopen and check.
	d2, err := OpenDirect(f, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := d2.ReadRecordAt(ctx, 11, dst); err != nil || recVal(dst) != 33 {
		t.Fatalf("durability: %v %d", err, recVal(dst))
	}
	if err := d2.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestDirectValidation(t *testing.T) {
	v := testVolume(t, 2, nil)
	f, err := v.Create(pfs.Spec{Name: "gda", Org: pfs.OrgGlobalDirect, RecordSize: 64, NumRecords: 8})
	if err != nil {
		t.Fatal(err)
	}
	ctx := sim.NewWall()
	d, err := OpenDirect(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.ReadRecordAt(ctx, 8, make([]byte, 64)); err == nil {
		t.Fatal("out-of-range record accepted")
	}
	if err := d.ReadRecordAt(ctx, 0, make([]byte, 3)); err == nil {
		t.Fatal("short buffer accepted")
	}
	if err := d.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if err := d.ReadRecordAt(ctx, 0, make([]byte, 64)); err == nil {
		t.Fatal("read after close accepted")
	}
}

func TestDirectPartOwnership(t *testing.T) {
	v := testVolume(t, 2, nil)
	f, err := v.Create(pfs.Spec{
		Name: "pda", Org: pfs.OrgPartitionedDirect, RecordSize: 64,
		BlockRecords: 4, NumRecords: 64, Parts: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := sim.NewWall()
	d0, err := OpenDirectPart(f, 0, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Partition 0 owns blocks 0..7 = records 0..31.
	if err := d0.WriteRecordAt(ctx, 31, rec64(1)); err != nil {
		t.Fatal(err)
	}
	if err := d0.WriteRecordAt(ctx, 32, rec64(1)); err == nil {
		t.Fatal("foreign record accepted")
	}
	dst := make([]byte, 64)
	if err := d0.ReadRecordAt(ctx, 31, dst); err != nil || recVal(dst) != 1 {
		t.Fatalf("read back: %v %d", err, recVal(dst))
	}
	if err := d0.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDirectPart(f, 2, Options{}); err == nil {
		t.Fatal("bad partition accepted")
	}
}

func TestDirectPartSeqWithinBlocks(t *testing.T) {
	v := testVolume(t, 2, nil)
	f, err := v.Create(pfs.Spec{
		Name: "pda", Org: pfs.OrgPartitionedDirect, RecordSize: 64,
		BlockRecords: 4, NumRecords: 32, Parts: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := sim.NewWall()
	opts := DefaultOptions()
	opts.SeqWithinBlocks = true
	d, err := OpenDirectPart(f, 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 64)
	// In-order within block 0 is fine.
	for r := int64(0); r < 4; r++ {
		if err := d.ReadRecordAt(ctx, r, dst); err != nil {
			t.Fatal(err)
		}
	}
	// Blocks may be revisited (new pass).
	if err := d.ReadRecordAt(ctx, 0, dst); err != nil {
		t.Fatal(err)
	}
	// But skipping within a block is rejected.
	if err := d.ReadRecordAt(ctx, 2, dst); err == nil {
		t.Fatal("out-of-order intra-block access accepted in restricted mode")
	}
	_ = d.Close(ctx)
}

func TestGlobalReaderWholeFile(t *testing.T) {
	v := testVolume(t, 4, nil)
	f, err := v.Create(pfs.Spec{
		Name: "g", Org: pfs.OrgPartitioned, RecordSize: 64,
		BlockRecords: 4, NumRecords: 32, Parts: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := sim.NewWall()
	fillSeq(t, f, ctx)
	gr, err := OpenGlobalReader(f, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if gr.Size() != 32*64 {
		t.Fatalf("Size = %d", gr.Size())
	}
	all, err := io.ReadAll(gr)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 32*64 {
		t.Fatalf("read %d bytes", len(all))
	}
	for r := 0; r < 32; r++ {
		if got := binary.BigEndian.Uint64(all[r*64:]); got != uint64(r) {
			t.Fatalf("record %d = %d", r, got)
		}
	}
}

func TestGlobalReaderSeek(t *testing.T) {
	v := testVolume(t, 2, nil)
	f, err := v.Create(pfs.Spec{Name: "g", RecordSize: 64, NumRecords: 16})
	if err != nil {
		t.Fatal(err)
	}
	ctx := sim.NewWall()
	fillSeq(t, f, ctx)
	gr, err := OpenGlobalReader(f, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gr.Seek(5*64, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	if _, err := io.ReadFull(gr, buf); err != nil {
		t.Fatal(err)
	}
	if binary.BigEndian.Uint64(buf) != 5 {
		t.Fatalf("seek read %d", binary.BigEndian.Uint64(buf))
	}
	if _, err := gr.Seek(-64, io.SeekEnd); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(gr, buf); err != nil {
		t.Fatal(err)
	}
	if binary.BigEndian.Uint64(buf) != 15 {
		t.Fatalf("end seek read %d", binary.BigEndian.Uint64(buf))
	}
	if _, err := gr.Seek(-1, io.SeekStart); err == nil {
		t.Fatal("negative seek accepted")
	}
	if _, err := gr.Seek(0, 9); err == nil {
		t.Fatal("bad whence accepted")
	}
}

func TestGlobalWriterPadsFinalRecord(t *testing.T) {
	v := testVolume(t, 2, nil)
	f, err := v.Create(pfs.Spec{Name: "g", RecordSize: 64, NumRecords: 4})
	if err != nil {
		t.Fatal(err)
	}
	ctx := sim.NewWall()
	gw, err := OpenGlobalWriter(f, ctx, Options{})
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 100) // 1.5625 records
	for i := range payload {
		payload[i] = 0xcd
	}
	if n, err := gw.Write(payload); err != nil || n != 100 {
		t.Fatalf("write: %d %v", n, err)
	}
	if err := gw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := gw.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	gr, err := OpenGlobalReader(f, ctx)
	if err != nil {
		t.Fatal(err)
	}
	all, err := io.ReadAll(gr)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if all[i] != 0xcd {
			t.Fatalf("byte %d = %#x", i, all[i])
		}
	}
	for i := 100; i < 128; i++ {
		if all[i] != 0 {
			t.Fatalf("padding byte %d = %#x", i, all[i])
		}
	}
}

func TestFigure1Traces(t *testing.T) {
	// Reproduce Figure 1 with 3 processes and 12 single-record blocks,
	// validating each organization's access pattern.
	const procs = 3
	const blocks = 12
	newFile := func(t *testing.T, org pfs.Organization) (*pfs.File, *sim.Engine) {
		e := sim.NewEngine()
		v := testVolume(t, 3, e)
		spec := pfs.Spec{
			Name: "fig1", Org: org, RecordSize: 64, BlockRecords: 1, NumRecords: blocks,
		}
		if org == pfs.OrgPartitioned || org == pfs.OrgInterleaved {
			spec.Parts = procs
		}
		f, err := v.Create(spec)
		if err != nil {
			t.Fatal(err)
		}
		return f, e
	}

	t.Run("S", func(t *testing.T) {
		f, e := newFile(t, pfs.OrgSequential)
		rec := &trace.Recorder{}
		e.Go("p0", func(p *sim.Proc) {
			fillSeq(t, f, p)
			opts := Options{Trace: rec, Proc: 0}
			r, err := OpenReader(f, opts)
			if err != nil {
				t.Error(err)
				return
			}
			for {
				if _, _, err := r.ReadRecord(p); err != nil {
					break
				}
			}
			_ = r.Close(p)
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		if err := trace.ValidateSequential(rec.Events(), blocks); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("PS", func(t *testing.T) {
		f, e := newFile(t, pfs.OrgPartitioned)
		rec := &trace.Recorder{}
		e.Go("main", func(p *sim.Proc) {
			fillSeq(t, f, p)
			var g sim.Group
			for w := 0; w < procs; w++ {
				wid := w
				g.Spawn(p.Engine(), "w", func(c *sim.Proc) {
					r, err := OpenPartReader(f, wid, Options{Trace: rec, Proc: wid})
					if err != nil {
						t.Error(err)
						return
					}
					for {
						if _, _, err := r.ReadRecord(c); err != nil {
							break
						}
					}
					_ = r.Close(c)
				})
			}
			g.Wait(p)
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		first := []int64{0, 4, 8, 12}
		if err := trace.ValidatePartitioned(rec.Events(), first); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("IS", func(t *testing.T) {
		f, e := newFile(t, pfs.OrgInterleaved)
		rec := &trace.Recorder{}
		e.Go("main", func(p *sim.Proc) {
			fillSeq(t, f, p)
			var g sim.Group
			for w := 0; w < procs; w++ {
				wid := w
				g.Spawn(p.Engine(), "w", func(c *sim.Proc) {
					r, err := OpenInterleavedReader(f, wid, procs, Options{Trace: rec, Proc: wid})
					if err != nil {
						t.Error(err)
						return
					}
					for {
						if _, _, err := r.ReadRecord(c); err != nil {
							break
						}
					}
					_ = r.Close(c)
				})
			}
			g.Wait(p)
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		if err := trace.ValidateInterleaved(rec.Events(), procs, 1, blocks); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("SS", func(t *testing.T) {
		f, e := newFile(t, pfs.OrgSelfScheduled)
		rec := &trace.Recorder{}
		e.Go("main", func(p *sim.Proc) {
			fillSeq(t, f, p)
			ss, err := OpenSelfSched(f, SSRead, Options{NBufs: 2, IOProcs: 1, EarlyRelease: true, Trace: rec})
			if err != nil {
				t.Error(err)
				return
			}
			var g sim.Group
			for w := 0; w < procs; w++ {
				g.Spawn(p.Engine(), "w", func(c *sim.Proc) {
					dst := make([]byte, 64)
					for {
						if _, err := ss.ReadNext(c, dst); err != nil {
							return
						}
						c.Sleep(time.Millisecond)
					}
				})
			}
			g.Wait(p)
			_ = ss.Close(p)
		})
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		if err := trace.ValidateSelfScheduled(rec.Events(), blocks); err != nil {
			t.Fatal(err)
		}
	})
}

func TestDefaultOptionsSane(t *testing.T) {
	o := DefaultOptions()
	if o.NBufs < 2 || o.IOProcs < 1 || !o.EarlyRelease || o.CacheBlocks < 1 {
		t.Fatalf("DefaultOptions = %+v", o)
	}
	var zero Options
	n := zero.norm()
	if n.NBufs < 1 || n.CacheBlocks < 1 || n.IOProcs != 0 {
		t.Fatalf("norm(zero) = %+v", n)
	}
}
