package core

import (
	"fmt"
	"io"

	"repro/internal/buffer"
	"repro/internal/pfs"
	"repro/internal/records"
	"repro/internal/sim"
	"repro/internal/trace"
)

// StreamReader reads the records of a stream view (S, one PS partition,
// or one IS stride class) in order, with multiple buffering and
// read-ahead when IOProcs > 0. It is a single-process handle.
type StreamReader struct {
	f    *pfs.File
	seq  blockSeq
	opts Options

	rd      *buffer.SeqReader
	ext     int64  // fs blocks per streaming extent
	totalFS int64  // stream length in fs blocks
	cur     []byte // current extent buffer
	curLo   int64  // stream fs range [curLo, curHi) held by cur
	curHi   int64
	j       int64 // paper-block cursor within the stream
	i       int   // record cursor within the paper-block

	recBuf  []byte
	spanBuf []records.Span
	closed  bool
}

// newStreamReader wires an extent SeqReader over the stream's fs blocks:
// each prefetch covers one extent of up to opts.ExtentBlocks fs blocks,
// issued through the coalescing ranged path (Set.ReadRange).
func newStreamReader(f *pfs.File, seq blockSeq, opts Options) (*StreamReader, error) {
	opts = opts.norm()
	m := f.Mapper()
	totalFS := seq.n * m.FSPerBlock()
	rd, err := buffer.NewSeqReaderExtent(rangedFetch(f, seq, opts.Strategy), m.FSBlockSize(), totalFS,
		opts.ExtentBlocks, opts.NBufs, opts.IOProcs)
	if err != nil {
		return nil, err
	}
	return &StreamReader{
		f:       f,
		seq:     seq,
		opts:    opts,
		rd:      rd,
		ext:     int64(opts.ExtentBlocks),
		totalFS: totalFS,
		recBuf:  make([]byte, m.RecordSize()),
	}, nil
}

// OpenReader opens the type-S (whole file, sequential) read view.
func OpenReader(f *pfs.File, opts Options) (*StreamReader, error) {
	return newStreamReader(f, wholeFileSeq(f), opts)
}

// OpenPartReader opens the type-PS read view of partition part.
func OpenPartReader(f *pfs.File, part int, opts Options) (*StreamReader, error) {
	seq, err := partSeq(f, part)
	if err != nil {
		return nil, err
	}
	return newStreamReader(f, seq, opts)
}

// OpenInterleavedReader opens the type-IS read view: the blocks
// ≡ part (mod stride). For an IS-organized file stride is normally
// f.Parts(), but any stride is legal (alternate views).
func OpenInterleavedReader(f *pfs.File, part, stride int, opts Options) (*StreamReader, error) {
	seq, err := interleavedSeq(f, part, stride)
	if err != nil {
		return nil, err
	}
	return newStreamReader(f, seq, opts)
}

// OpenBlockRangeReader opens a sequential read view over the contiguous
// paper-block range [first, end) — an ad-hoc PS-style partition
// independent of the file's own partition table (used by alternate
// views, §5).
func OpenBlockRangeReader(f *pfs.File, first, end int64, opts Options) (*StreamReader, error) {
	if first < 0 || end < first || end > f.Mapper().NumBlocks() {
		return nil, fmt.Errorf("core: block range [%d,%d) of %d", first, end, f.Mapper().NumBlocks())
	}
	seq := blockSeq{n: end - first, pb: func(j int64) int64 { return first + j }}
	return newStreamReader(f, seq, opts)
}

// advanceTo makes cur the extent holding stream fs block k (consuming
// the underlying sequential stream; k must be ≥ curLo).
func (r *StreamReader) advanceTo(ctx sim.Context, k int64) error {
	for r.cur == nil || k >= r.curHi {
		if r.cur != nil {
			r.rd.Release(ctx, r.cur)
			r.cur = nil
		}
		buf, e, err := r.rd.Next(ctx)
		if err != nil {
			return err
		}
		r.cur = buf
		r.curLo, r.curHi = extentSpanOf(e, r.ext, r.totalFS)
	}
	if k < r.curLo {
		return fmt.Errorf("core: stream reader skipped past fs block %d (at [%d,%d))", k, r.curLo, r.curHi)
	}
	return nil
}

// fsSlice returns the cached bytes of stream fs block k; advanceTo(k)
// must have succeeded.
func (r *StreamReader) fsSlice(k int64) []byte {
	return extentSlice(r.cur, k, r.curLo, r.f.Mapper().FSBlockSize())
}

// ReadRecord returns the next record of the stream and its global record
// index. The returned slice is valid until the next call. At the end of
// the stream it returns io.EOF.
func (r *StreamReader) ReadRecord(ctx sim.Context) ([]byte, int64, error) {
	if r.closed {
		return nil, 0, fmt.Errorf("core: reader closed")
	}
	m := r.f.Mapper()
	for r.j < r.seq.n && r.i >= m.RecordsInBlock(r.seq.pb(r.j)) {
		r.j++
		r.i = 0
	}
	if r.j >= r.seq.n {
		return nil, 0, io.EOF
	}
	block := r.seq.pb(r.j)
	rec := block*int64(m.BlockRecords()) + int64(r.i)
	fsPer := m.FSPerBlock()
	blockFirstFS := block * fsPer
	streamFirstFS := r.j * fsPer

	r.spanBuf = m.AppendSpans(r.spanBuf[:0], rec)
	got := 0
	for _, sp := range r.spanBuf {
		k := streamFirstFS + (sp.FSBlock - blockFirstFS)
		if err := r.advanceTo(ctx, k); err != nil {
			return nil, rec, err
		}
		blk := r.fsSlice(k)
		copy(r.recBuf[got:], blk[sp.Off:sp.Off+sp.Len])
		got += sp.Len
	}
	r.i++
	r.opts.Trace.Add(trace.Event{
		Time: ctx.Now(), Proc: r.opts.Proc, Op: trace.Read, Record: rec, Block: block,
	})
	return r.recBuf[:got], rec, nil
}

// Records reports how many records the stream view contains.
func (r *StreamReader) Records() int64 {
	m := r.f.Mapper()
	var n int64
	for j := int64(0); j < r.seq.n; j++ {
		n += int64(m.RecordsInBlock(r.seq.pb(j)))
	}
	return n
}

// Close releases buffers and stops read-ahead.
func (r *StreamReader) Close(ctx sim.Context) error {
	if r.closed {
		return nil
	}
	r.closed = true
	if r.cur != nil {
		r.rd.Release(ctx, r.cur)
		r.cur = nil
	}
	r.rd.Close(ctx)
	return nil
}

// StreamWriter writes the records of a stream view in order, with
// deferred writing when IOProcs > 0. It is a single-process handle.
type StreamWriter struct {
	f    *pfs.File
	seq  blockSeq
	opts Options

	sw      *buffer.SeqWriter
	ext     int64  // fs blocks per streaming extent
	totalFS int64  // stream length in fs blocks
	cur     []byte // current extent assembly buffer
	wLo     int64  // stream fs range [wLo, wHi) assembled in cur
	wHi     int64
	j       int64
	i       int

	spanBuf []records.Span
	closed  bool
}

// newStreamWriter wires an extent SeqWriter over the stream's fs blocks:
// each deferred flush covers one extent of up to opts.ExtentBlocks fs
// blocks, issued through the coalescing ranged path (Set.WriteRange).
func newStreamWriter(f *pfs.File, seq blockSeq, opts Options) (*StreamWriter, error) {
	opts = opts.norm()
	m := f.Mapper()
	totalFS := seq.n * m.FSPerBlock()
	sw, err := buffer.NewSeqWriterExtent(rangedFlush(f, seq, opts.Strategy), m.FSBlockSize(), totalFS,
		opts.ExtentBlocks, opts.NBufs, opts.IOProcs)
	if err != nil {
		return nil, err
	}
	return &StreamWriter{f: f, seq: seq, opts: opts, sw: sw,
		ext: int64(opts.ExtentBlocks), totalFS: totalFS}, nil
}

// OpenWriter opens the type-S (whole file, sequential) write view.
func OpenWriter(f *pfs.File, opts Options) (*StreamWriter, error) {
	return newStreamWriter(f, wholeFileSeq(f), opts)
}

// OpenPartWriter opens the type-PS write view of partition part.
func OpenPartWriter(f *pfs.File, part int, opts Options) (*StreamWriter, error) {
	seq, err := partSeq(f, part)
	if err != nil {
		return nil, err
	}
	return newStreamWriter(f, seq, opts)
}

// OpenInterleavedWriter opens the type-IS write view.
func OpenInterleavedWriter(f *pfs.File, part, stride int, opts Options) (*StreamWriter, error) {
	seq, err := interleavedSeq(f, part, stride)
	if err != nil {
		return nil, err
	}
	return newStreamWriter(f, seq, opts)
}

// advanceTo makes cur the extent assembly buffer holding stream fs block
// k, submitting the completed predecessor extent.
func (w *StreamWriter) advanceTo(ctx sim.Context, k int64) error {
	if w.cur != nil && k >= w.wLo && k < w.wHi {
		return nil
	}
	if w.cur != nil {
		if err := w.sw.Submit(ctx, w.wLo/w.ext, w.cur); err != nil {
			return err
		}
		w.cur = nil
	}
	buf, err := w.sw.Acquire(ctx)
	if err != nil {
		return err
	}
	clear(buf)
	w.cur = buf
	w.wLo, w.wHi = extentSpanAt(k, w.ext, w.totalFS)
	return nil
}

// fsSlice returns the assembly bytes of stream fs block k; advanceTo(k)
// must have succeeded.
func (w *StreamWriter) fsSlice(k int64) []byte {
	return extentSlice(w.cur, k, w.wLo, w.f.Mapper().FSBlockSize())
}

// WriteRecord appends data (len must equal the record size) as the next
// record of the stream, returning its global record index.
func (w *StreamWriter) WriteRecord(ctx sim.Context, data []byte) (int64, error) {
	if w.closed {
		return 0, fmt.Errorf("core: writer closed")
	}
	m := w.f.Mapper()
	if len(data) != m.RecordSize() {
		return 0, fmt.Errorf("core: record is %d bytes, file records are %d", len(data), m.RecordSize())
	}
	for w.j < w.seq.n && w.i >= m.RecordsInBlock(w.seq.pb(w.j)) {
		w.j++
		w.i = 0
	}
	if w.j >= w.seq.n {
		return 0, fmt.Errorf("core: stream full: %w", io.ErrShortWrite)
	}
	block := w.seq.pb(w.j)
	rec := block*int64(m.BlockRecords()) + int64(w.i)
	fsPer := m.FSPerBlock()
	blockFirstFS := block * fsPer
	streamFirstFS := w.j * fsPer

	w.spanBuf = m.AppendSpans(w.spanBuf[:0], rec)
	put := 0
	for _, sp := range w.spanBuf {
		k := streamFirstFS + (sp.FSBlock - blockFirstFS)
		if err := w.advanceTo(ctx, k); err != nil {
			return rec, err
		}
		blk := w.fsSlice(k)
		copy(blk[sp.Off:sp.Off+sp.Len], data[put:])
		put += sp.Len
	}
	w.i++
	w.opts.Trace.Add(trace.Event{
		Time: ctx.Now(), Proc: w.opts.Proc, Op: trace.Write, Record: rec, Block: block,
	})
	return rec, nil
}

// Close flushes the partial block and drains deferred writes.
func (w *StreamWriter) Close(ctx sim.Context) error {
	if w.closed {
		return nil
	}
	w.closed = true
	if w.cur != nil {
		if err := w.sw.Submit(ctx, w.wLo/w.ext, w.cur); err != nil {
			return err
		}
		w.cur = nil
	}
	return w.sw.Close(ctx)
}
