package core

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/blockio"
	"repro/internal/device"
	"repro/internal/pfs"
	"repro/internal/sim"
)

// declusteredFile builds a unit-1 striped (declustered) file over 4
// fresh untimed drives, one 256-byte record per fs block.
func declusteredFile(t *testing.T, records int64) (*pfs.File, []*device.Disk) {
	t.Helper()
	disks := make([]*device.Disk, 4)
	for i := range disks {
		disks[i] = device.New(device.Config{
			Name:     fmt.Sprintf("d%d", i),
			Geometry: device.Geometry{BlockSize: 256, BlocksPerCyl: 8, Cylinders: 128},
		})
	}
	store, err := blockio.NewDirect(disks)
	if err != nil {
		t.Fatal(err)
	}
	v := pfs.NewVolume(store)
	f, err := v.Create(pfs.Spec{
		Name: "vec", Org: pfs.OrgGlobalDirect, RecordSize: 256, BlockRecords: 1,
		NumRecords: records, Placement: pfs.PlaceStriped, StripeUnitFS: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f, disks
}

func reqTotal(disks []*device.Disk) int64 {
	var n int64
	for _, d := range disks {
		n += d.Stats().Requests()
	}
	return n
}

// TestDirectBatchEquivalence checks ReadRecordsAt/WriteRecordsAt against
// per-record loops on a declustered GDA file, and that the batch read
// faults through the vectored path: ≥4× fewer device requests than the
// per-record scan.
func TestDirectBatchEquivalence(t *testing.T) {
	const records = 64
	f, disks := declusteredFile(t, records)
	ctx := sim.NewWall()
	opts := Options{CacheBlocks: 16}

	// Batch-write a pattern, then verify per record through a fresh handle.
	src := make([]byte, records*256)
	for i := range src {
		src[i] = byte(i*7 + 3)
	}
	w, err := OpenDirect(f, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteRecordsAt(ctx, 0, records, src); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(ctx); err != nil {
		t.Fatal(err)
	}
	rd, err := OpenDirect(f, opts)
	if err != nil {
		t.Fatal(err)
	}
	one := make([]byte, 256)
	for r := int64(0); r < records; r++ {
		if err := rd.ReadRecordAt(ctx, r, one); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(one, src[r*256:(r+1)*256]) {
			t.Fatalf("record %d: batch write differs from per-record read", r)
		}
	}
	if err := rd.Close(ctx); err != nil {
		t.Fatal(err)
	}

	// Per-record scan through a cold handle: one request per record.
	for _, d := range disks {
		d.ResetStats()
	}
	rd, err = OpenDirect(f, opts)
	if err != nil {
		t.Fatal(err)
	}
	for r := int64(0); r < records; r++ {
		if err := rd.ReadRecordAt(ctx, r, one); err != nil {
			t.Fatal(err)
		}
	}
	perRecord := reqTotal(disks)

	// Batch scan through another cold handle: vectored faults.
	for _, d := range disks {
		d.ResetStats()
	}
	rd2, err := OpenDirect(f, opts)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, records*256)
	if err := rd2.ReadRecordsAt(ctx, 0, records, got); err != nil {
		t.Fatal(err)
	}
	batch := reqTotal(disks)
	if !bytes.Equal(got, src) {
		t.Fatal("batch read differs from written data")
	}
	if batch*4 > perRecord {
		t.Fatalf("batch scan issued %d requests vs %d per-record; want ≥4× fewer", batch, perRecord)
	}
}

// TestDirectBatchValidation exercises the batch error cases.
func TestDirectBatchValidation(t *testing.T) {
	f, _ := declusteredFile(t, 8)
	ctx := sim.NewWall()
	d, err := OpenDirect(f, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.ReadRecordsAt(ctx, 0, 8, make([]byte, 7*256)); err == nil {
		t.Fatal("short buffer accepted")
	}
	if err := d.ReadRecordsAt(ctx, 4, 8, make([]byte, 8*256)); err == nil {
		t.Fatal("out-of-range batch accepted")
	}
	if err := d.ReadRecordsAt(ctx, 0, -1, nil); err == nil {
		t.Fatal("negative count accepted")
	}
	if err := d.ReadRecordsAt(ctx, 0, 0, nil); err != nil {
		t.Fatalf("empty batch rejected: %v", err)
	}
	if err := d.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if err := d.ReadRecordsAt(ctx, 0, 1, make([]byte, 256)); err == nil {
		t.Fatal("batch on closed handle accepted")
	}
}

// TestDirectPartBatch checks PDA batch semantics: owned spans transfer,
// and a batch crossing into a foreign block fails its ownership check
// with the records before the violation already transferred — matching
// the per-record loop.
func TestDirectPartBatch(t *testing.T) {
	disks := make([]*device.Disk, 2)
	for i := range disks {
		disks[i] = device.New(device.Config{
			Geometry: device.Geometry{BlockSize: 256, BlocksPerCyl: 8, Cylinders: 64},
		})
	}
	store, err := blockio.NewDirect(disks)
	if err != nil {
		t.Fatal(err)
	}
	v := pfs.NewVolume(store)
	// 2 partitions × 8 blocks × 2 records: partition 0 owns records [0,16).
	f, err := v.Create(pfs.Spec{
		Name: "pda", Org: pfs.OrgPartitionedDirect, RecordSize: 128, BlockRecords: 2,
		NumRecords: 32, Parts: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := sim.NewWall()
	d, err := OpenDirectPart(f, 0, Options{CacheBlocks: 4})
	if err != nil {
		t.Fatal(err)
	}
	src := make([]byte, 16*128)
	for i := range src {
		src[i] = byte(i)
	}
	if err := d.WriteRecordsAt(ctx, 0, 16, src); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 16*128)
	if err := d.ReadRecordsAt(ctx, 0, 16, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, src) {
		t.Fatal("PDA batch round-trip mismatch")
	}
	// Records 14..17: 14 and 15 are owned, 16 is partition 1's.
	err = d.ReadRecordsAt(ctx, 14, 4, make([]byte, 4*128))
	if err == nil || !strings.Contains(err.Error(), "PDA violation") {
		t.Fatalf("foreign batch error = %v, want PDA violation", err)
	}
	if err := d.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestDirectBatchMultiSpanRecords covers records that straddle fs-block
// boundaries: every record's spans cross two 256-byte blocks (record
// size 384, two per paper-block), so the chunk builder must count blocks
// it has not yet appended.
func TestDirectBatchMultiSpanRecords(t *testing.T) {
	disks := []*device.Disk{device.New(device.Config{
		Geometry: device.Geometry{BlockSize: 256, BlocksPerCyl: 8, Cylinders: 64},
	})}
	store, err := blockio.NewDirect(disks)
	if err != nil {
		t.Fatal(err)
	}
	f, err := pfs.NewVolume(store).Create(pfs.Spec{
		Name: "straddle", Org: pfs.OrgGlobalDirect, RecordSize: 384, BlockRecords: 2,
		NumRecords: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := sim.NewWall()
	d, err := OpenDirect(f, Options{CacheBlocks: 2})
	if err != nil {
		t.Fatal(err)
	}
	src := make([]byte, 16*384)
	for i := range src {
		src[i] = byte(i * 11)
	}
	if err := d.WriteRecordsAt(ctx, 0, 16, src); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 16*384)
	if err := d.ReadRecordsAt(ctx, 0, 16, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, src) {
		t.Fatal("multi-span batch round-trip mismatch")
	}
}

// TestDirectPartBatchRestrictedSeq covers SeqWithinBlocks batches whose
// chunks break at cache capacity: the record deferred to the next chunk
// must be sequence-checked exactly once.
func TestDirectPartBatchRestrictedSeq(t *testing.T) {
	disks := []*device.Disk{device.New(device.Config{
		Geometry: device.Geometry{BlockSize: 256, BlocksPerCyl: 8, Cylinders: 64},
	})}
	store, err := blockio.NewDirect(disks)
	if err != nil {
		t.Fatal(err)
	}
	f, err := pfs.NewVolume(store).Create(pfs.Spec{
		Name: "seq", Org: pfs.OrgPartitionedDirect, RecordSize: 128, BlockRecords: 2,
		NumRecords: 8, Parts: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := sim.NewWall()
	d, err := OpenDirectPart(f, 0, Options{CacheBlocks: 1, SeqWithinBlocks: true})
	if err != nil {
		t.Fatal(err)
	}
	src := make([]byte, 8*128)
	for i := range src {
		src[i] = byte(i * 5)
	}
	if err := d.WriteRecordsAt(ctx, 0, 8, src); err != nil {
		t.Fatalf("in-order restricted batch rejected: %v", err)
	}
	got := make([]byte, 8*128)
	if err := d.ReadRecordsAt(ctx, 0, 8, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, src) {
		t.Fatal("restricted batch round-trip mismatch")
	}
	// Out-of-order within a block must still be rejected.
	if err := d.ReadRecordsAt(ctx, 1, 1, make([]byte, 128)); err == nil {
		t.Fatal("restricted PDA accepted out-of-order record")
	}
}

// TestStreamVecCoalesces asserts the stream read path now coalesces a
// unit-1 declustered scan: with ExtentBlocks 8 over 4 devices every
// extent is one gather request per device instead of one per block.
func TestStreamVecCoalesces(t *testing.T) {
	const records = 64
	f, disks := declusteredFile(t, records)
	ctx := sim.NewWall()
	w, err := OpenWriter(f, Options{ExtentBlocks: 8})
	if err != nil {
		t.Fatal(err)
	}
	rec := make([]byte, 256)
	for r := int64(0); r < records; r++ {
		rec[0] = byte(r)
		if _, err := w.WriteRecord(ctx, rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(ctx); err != nil {
		t.Fatal(err)
	}
	for _, d := range disks {
		d.ResetStats()
	}
	rd, err := OpenReader(f, Options{ExtentBlocks: 8})
	if err != nil {
		t.Fatal(err)
	}
	for r := int64(0); r < records; r++ {
		data, idx, err := rd.ReadRecord(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if idx != r || data[0] != byte(r) {
			t.Fatalf("record %d: got %d first byte %d", r, idx, data[0])
		}
	}
	if err := rd.Close(ctx); err != nil {
		t.Fatal(err)
	}
	// 64 blocks / extent 8 = 8 extents × 4 devices = 32 requests.
	if got := reqTotal(disks); got != 32 {
		t.Fatalf("declustered extent scan issued %d requests, want 32 (one per device per extent)", got)
	}
}
