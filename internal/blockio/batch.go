// Cross-file batched (listio-style) I/O: one scatter/gather request list
// spanning several Sets that share a device array.
//
// A Vec coalesces pieces that land physically adjacent on one device, but
// only within a single file: each Set adds its own extent base, so two
// files whose extents abut — a checkpoint set written file-per-process,
// or the file domains of a two-phase collective — still issue separate
// requests even when their blocks are neighbors on the platter. A
// BatchVec lifts the merge above the file boundary: every item's segments
// are mapped through its own Set into absolute physical addresses, the
// pieces are sorted device-major and merged across items, and each merged
// run transfers as ONE device request gathering from (scattering into)
// the items' buffers. This is the cross-Set entry point the collective
// subsystem issues its per-domain I/O through.

package blockio

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/sim"
)

// BatchItem is one file's contribution to a cross-file batch: a
// scatter/gather descriptor against Set, moving bytes of Buf.
type BatchItem struct {
	Set *Set
	Vec Vec
	Buf []byte
}

// BatchVec is a cross-file scatter/gather request list. All items' Sets
// must share one Store (the same device array — Sets of one Volume
// qualify); pieces that are physically adjacent on a device merge into
// single gather requests even across items.
type BatchVec []BatchItem

// bpiece is one physical fragment of a batch before merging: n blocks at
// absolute physical block pb of device dev, moving the buffer bytes
// [bufOff, bufOff+n×bs) of buf.
type bpiece struct {
	dev    int
	pb     int64
	n      int64
	buf    []byte
	bufOff int64
}

// batchRun is a merged physically contiguous gather run; iov holds its
// buffer slices (across item buffers) in transfer order.
type batchRun struct {
	dev int
	pb  int64
	n   int64
	iov [][]byte
	// final-element bookkeeping, so adjacent pieces of one buffer extend
	// the last iov slice instead of adding an element
	lastBuf        []byte
	lastOff, lastN int64
}

// sameBuf reports whether a and b are the same slice (identical base and
// length). Both are non-empty here: checkVec rejects pieces whose buffer
// window is empty.
func sameBuf(a, b []byte) bool {
	return len(a) == len(b) && len(a) > 0 && &a[0] == &b[0]
}

// addPiece appends pc's buffer window to the run's iov.
func (r *batchRun) addPiece(pc bpiece, bs int64) {
	n := pc.n * bs
	if r.lastBuf != nil && sameBuf(r.lastBuf, pc.buf) && r.lastOff+r.lastN == pc.bufOff {
		r.lastN += n
		r.iov[len(r.iov)-1] = pc.buf[r.lastOff : r.lastOff+r.lastN]
		return
	}
	r.lastBuf, r.lastOff, r.lastN = pc.buf, pc.bufOff, n
	r.iov = append(r.iov, pc.buf[pc.bufOff:pc.bufOff+n])
}

// batchScratch is mapBatch's pooled mapping state: the unsorted piece
// list and the per-segment MapRun scratch. The holder doubles as the
// sort.Interface over its pieces, so the device-major sort allocates
// nothing (sort.Slice builds a closure and a reflect-based swapper per
// call — measurable at collective scale, where every domain batch maps
// through here).
type batchScratch struct {
	pieces []bpiece
	tmp    []Run
}

func (s *batchScratch) Len() int { return len(s.pieces) }
func (s *batchScratch) Less(i, j int) bool {
	if s.pieces[i].dev != s.pieces[j].dev {
		return s.pieces[i].dev < s.pieces[j].dev
	}
	return s.pieces[i].pb < s.pieces[j].pb
}
func (s *batchScratch) Swap(i, j int) {
	s.pieces[i], s.pieces[j] = s.pieces[j], s.pieces[i]
}

var batchPool = sync.Pool{New: func() any { return new(batchScratch) }}

// mapBatch validates the batch and merges it into per-device gather runs
// in (device, physical block) order. Only the returned runs survive the
// call (BatchPlan retains them); all mapping scratch goes back to the
// pool.
func (b BatchVec) mapBatch(op string) ([]batchRun, Store, error) {
	if len(b) == 0 {
		return nil, nil, nil
	}
	if b[0].Set == nil {
		return nil, nil, fmt.Errorf("blockio: %s item 0 has no Set", op)
	}
	store := b[0].Set.store
	bs := int64(store.BlockSize())
	s := batchPool.Get().(*batchScratch)
	defer func() {
		s.pieces = s.pieces[:0]
		batchPool.Put(s)
	}()
	// Preallocate from the footprint: each non-empty segment maps to at
	// least one piece, so the segment count is a cheap lower bound that
	// absorbs most of the append growth on first use.
	nseg := 0
	for _, it := range b {
		nseg += len(it.Vec)
	}
	if cap(s.pieces) < nseg {
		s.pieces = make([]bpiece, 0, nseg)
	}
	for i, it := range b {
		if it.Set == nil {
			return nil, nil, fmt.Errorf("blockio: %s item %d has no Set", op, i)
		}
		if it.Set.store != store {
			return nil, nil, fmt.Errorf("blockio: %s item %d is on a different store", op, i)
		}
		if err := it.Set.checkVec(fmt.Sprintf("%s item %d", op, i), it.Vec, int64(len(it.Buf))); err != nil {
			return nil, nil, err
		}
		for _, sg := range it.Vec {
			if sg.N == 0 {
				continue
			}
			s.tmp = it.Set.layout.MapRun(s.tmp[:0], sg.Block, sg.N)
			for _, r := range s.tmp {
				s.pieces = append(s.pieces, bpiece{
					dev: r.Dev, pb: it.Set.base[r.Dev] + r.PBlock, n: r.N,
					buf: it.Buf, bufOff: sg.BufOff + (r.B-sg.Block)*bs,
				})
			}
		}
	}
	sort.Sort(s)
	runs := make([]batchRun, 0, len(s.pieces))
	for _, pc := range s.pieces {
		if k := len(runs) - 1; k >= 0 && runs[k].dev == pc.dev {
			last := &runs[k]
			if last.pb+last.n > pc.pb {
				// Same physical blocks named twice (a Set listed twice, or
				// overlapping vecs): the transfer order would be ambiguous.
				return nil, nil, fmt.Errorf("blockio: %s items overlap on device %d at block %d", op, pc.dev, pc.pb)
			}
			if last.pb+last.n == pc.pb {
				last.n += pc.n
				last.addPiece(pc, bs)
				continue
			}
		}
		r := batchRun{dev: pc.dev, pb: pc.pb, n: pc.n}
		r.addPiece(pc, bs)
		runs = append(runs, r)
	}
	return runs, store, nil
}

// Read transfers the batch from the devices into the items' buffers:
// each merged cross-file run is one scatter device request, and runs
// proceed in parallel across devices under a simulation engine.
func (b BatchVec) Read(ctx sim.Context) error {
	return b.do(ctx, "ReadBatch", Store.ReadBlocksVec)
}

// Write transfers the batch from the items' buffers to the devices, the
// write counterpart of Read.
func (b BatchVec) Write(ctx sim.Context) error {
	return b.do(ctx, "WriteBatch", Store.WriteBlocksVec)
}

// NumRuns reports how many device requests the batch coalesces into
// (diagnostics and tests).
func (b BatchVec) NumRuns() (int, error) {
	runs, _, err := b.mapBatch("MapBatch")
	return len(runs), err
}

// do implements Read/Write over the merged runs.
func (b BatchVec) do(ctx sim.Context, op string,
	xfer func(Store, sim.Context, int, int64, int, [][]byte) error) error {
	runs, store, err := b.mapBatch(op)
	if err != nil || len(runs) == 0 {
		return err
	}
	bp := probeOf(store)
	var t0 time.Duration
	if bp != nil {
		t0 = ctx.Now()
	}
	if len(runs) == 1 {
		r := runs[0]
		err = xfer(store, ctx, r.dev, r.pb, int(r.n), r.iov)
	} else {
		fns := make([]func(sim.Context) error, len(runs))
		for i, r := range runs {
			r := r
			fns[i] = func(c sim.Context) error {
				return xfer(store, c, r.dev, r.pb, int(r.n), r.iov)
			}
		}
		err = sim.Par(ctx, fns...)
	}
	if bp != nil {
		var blocks int64
		for _, r := range runs {
			blocks += r.n
		}
		nb := blocks * int64(store.BlockSize())
		bp.batches.Add(1)
		bp.runs.Add(int64(len(runs)))
		bp.bytes.Add(nb)
		bp.rec.Span(bp.trk, "blockio", op, t0, ctx.Now(), nb, 0)
	}
	return err
}

// probeOf reports the store's attached batch probe, or nil.
func probeOf(store Store) *batchProbe {
	if sp, ok := store.(storeProber); ok {
		return sp.batchProbe()
	}
	return nil
}
