package blockio

import (
	"strings"
	"testing"

	"repro/internal/device"
)

func TestLayoutNames(t *testing.T) {
	s := NewStriped(4, 2)
	if !strings.Contains(s.Name(), "striped") || !strings.Contains(s.Name(), "d=4") {
		t.Fatalf("striped name %q", s.Name())
	}
	p, err := NewPartitioned(2, []int64{4, 4}, 1, PackContiguous)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p.Name(), "partitioned") || !strings.Contains(p.Name(), "contiguous") {
		t.Fatalf("partitioned name %q", p.Name())
	}
	il, err := NewInterleaved(2, 4, 1, 16, PackInterleaved)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(il.Name(), "interleaved") {
		t.Fatalf("interleaved name %q", il.Name())
	}
}

func TestDirectAccessors(t *testing.T) {
	disks := smallDisks(3)
	d, err := NewDirect(disks)
	if err != nil {
		t.Fatal(err)
	}
	if d.Blocks() != disks[0].Geometry().Blocks() {
		t.Fatalf("Blocks = %d", d.Blocks())
	}
	if d.Disk(1) != disks[1] {
		t.Fatal("Disk accessor wrong")
	}
}

func TestSetAccessors(t *testing.T) {
	store, err := NewDirect(smallDisks(2))
	if err != nil {
		t.Fatal(err)
	}
	layout := NewStriped(2, 1)
	set, err := NewSet(store, layout, []int64{3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if set.Store() != Store(store) {
		t.Fatal("Store accessor wrong")
	}
	if set.Layout() != Layout(layout) {
		t.Fatal("Layout accessor wrong")
	}
	bases := set.Bases()
	if len(bases) != 2 || bases[0] != 3 || bases[1] != 5 {
		t.Fatalf("Bases = %v", bases)
	}
	bases[0] = 99 // must be a copy
	if b2 := set.Bases(); b2[0] != 3 {
		t.Fatal("Bases leaked internal slice")
	}
	dev, pb := set.Locate(1) // logical 1 -> dev 1, pblock 0 + base 5
	if dev != 1 || pb != 5 {
		t.Fatalf("Locate = (%d,%d)", dev, pb)
	}
}

func TestInterleavedProcsOnDev(t *testing.T) {
	il, err := NewInterleaved(3, 7, 1, 21, PackInterleaved)
	if err != nil {
		t.Fatal(err)
	}
	// procs 0..6 on 3 devices: dev0 gets {0,3,6}=3, dev1 {1,4}=2, dev2 {2,5}=2.
	if il.procsOnDev(0) != 3 || il.procsOnDev(1) != 2 || il.procsOnDev(2) != 2 {
		t.Fatalf("procsOnDev = %d,%d,%d", il.procsOnDev(0), il.procsOnDev(1), il.procsOnDev(2))
	}
	// More devices than procs: high devices host nobody.
	il2, err := NewInterleaved(8, 2, 1, 4, PackInterleaved)
	if err != nil {
		t.Fatal(err)
	}
	if il2.procsOnDev(5) != 0 {
		t.Fatalf("empty device hosts %d", il2.procsOnDev(5))
	}
}

func TestGeometryOfDisk(t *testing.T) {
	d := device.New(device.Config{})
	if d.Geometry().BlockSize != device.DefaultGeometry1989().BlockSize {
		t.Fatal("default geometry mismatch")
	}
}
