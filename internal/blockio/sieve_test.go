package blockio

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/device"
	"repro/internal/sim"
)

// sieveVecFromBits turns a block-selection bitmap into a Vec: block b is
// requested iff bit b of bits is set, each selected block landing at the
// next free buffer offset (so the buffer is dense however holey the
// pattern). Returns the vec and the number of selected blocks.
func sieveVecFromBits(bits uint64, total int64, bs int64) (Vec, int64) {
	var vec Vec
	var picked int64
	for b := int64(0); b < total && b < 64; b++ {
		if bits&(1<<uint(b)) == 0 {
			continue
		}
		if k := len(vec) - 1; k >= 0 && vec[k].Block+vec[k].N == b {
			vec[k].N++
		} else {
			vec = append(vec, VecSeg{Block: b, N: 1, BufOff: picked * bs})
		}
		picked++
	}
	return vec, picked
}

// TestSieveSpansShape pins the planner's output on a striped layout:
// one span per touched device, covering exactly the device's first
// through last requested physical block.
func TestSieveSpansShape(t *testing.T) {
	set, _ := newTestSet(t, NewStriped(2, 4), 64)
	// Blocks 0 and 16 are dev 0 pblocks 0 and 8; block 5 is dev 1 pblock 1.
	spans, err := set.SieveSpans(Vec{
		{Block: 0, N: 1, BufOff: 0},
		{Block: 5, N: 1, BufOff: 64},
		{Block: 16, N: 1, BufOff: 128},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 {
		t.Fatalf("%d spans, want 2 (one per touched device): %+v", len(spans), spans)
	}
	if sp := spans[0]; sp.Dev != 0 || sp.PBlock != 0 || sp.Blocks != 9 || sp.Useful != 2 {
		t.Fatalf("dev0 span = %+v, want pblock 0, 9 blocks (7 holes), 2 useful", sp)
	}
	if sp := spans[1]; sp.Dev != 1 || sp.PBlock != 1 || sp.Blocks != 1 || sp.Useful != 1 {
		t.Fatalf("dev1 span = %+v, want the single requested block, no holes", sp)
	}
}

// TestSievedMatchesVectored checks, across layouts and random hole
// densities, that the sieved paths are observationally identical to the
// vectored ones: sieved reads return the same bytes, sieved writes leave
// the same store image — including every untouched block of the
// read-modify-write span.
func TestSievedMatchesVectored(t *testing.T) {
	for _, tc := range testLayouts(t) {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			ctx := sim.NewWall()
			set, _ := newTestSet(t, tc.layout, tc.total)
			bs := int64(set.BlockSize())
			base := make([]byte, tc.total*bs)
			rng.Read(base)
			if err := set.WriteRange(ctx, 0, tc.total, base); err != nil {
				t.Fatal(err)
			}
			for trial := 0; trial < 20; trial++ {
				total := tc.total
				if total > 64 {
					total = 64
				}
				vec, picked := sieveVecFromBits(rng.Uint64(), total, bs)
				if picked == 0 {
					continue
				}
				// Sieved read == vectored read.
				want := make([]byte, picked*bs)
				got := make([]byte, picked*bs)
				if err := set.ReadVec(ctx, vec, want); err != nil {
					t.Fatal(err)
				}
				if err := set.ReadVecSieved(ctx, vec, got); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("trial %d: sieved read differs from vectored", trial)
				}
				// Sieved write leaves the image a vectored write would.
				data := make([]byte, picked*bs)
				rng.Read(data)
				if err := set.WriteVecSieved(ctx, vec, data); err != nil {
					t.Fatal(err)
				}
				img := make([]byte, tc.total*bs)
				if err := set.ReadRange(ctx, 0, tc.total, img); err != nil {
					t.Fatal(err)
				}
				for _, sg := range vec {
					copy(base[sg.Block*bs:(sg.Block+sg.N)*bs], data[sg.BufOff:sg.BufOff+sg.N*bs])
				}
				if !bytes.Equal(img, base) {
					t.Fatalf("trial %d: sieved write corrupted untouched bytes", trial)
				}
			}
		})
	}
}

// TestSieveConcurrentWriters runs two engine processes sieve-writing
// interleaved (disjoint) block sets whose covering spans fully overlap:
// without the per-device sieve locks one writer's read-modify-write
// would write back stale holes over the other's data. Both writers'
// bytes must land.
func TestSieveConcurrentWriters(t *testing.T) {
	const total, bs = 32, 64
	l := NewStriped(1, 4)
	e := sim.NewEngine()
	disks := []*device.Disk{device.New(device.Config{
		Name:     "d0",
		Geometry: device.Geometry{BlockSize: bs, BlocksPerCyl: 8, Cylinders: 64},
		Engine:   e,
	})}
	store, err := NewDirect(disks)
	if err != nil {
		t.Fatal(err)
	}
	set, err := NewSet(store, l, []int64{0})
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 2; w++ {
		w := w
		var vec Vec
		for b := int64(0); b < total; b += 2 {
			vec = append(vec, VecSeg{Block: b + int64(w), N: 1, BufOff: (b / 2) * bs})
		}
		data := bytes.Repeat([]byte{byte('A' + w)}, total/2*bs)
		e.Go(fmt.Sprintf("writer%d", w), func(p *sim.Proc) {
			if err := set.WriteVecSieved(p, vec, data); err != nil {
				t.Errorf("writer %d: %v", w, err)
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	img := make([]byte, total*bs)
	if err := set.ReadRange(sim.NewWall(), 0, total, img); err != nil {
		t.Fatal(err)
	}
	for b := int64(0); b < total; b++ {
		want := byte('A' + b%2)
		for _, got := range img[b*bs : (b+1)*bs] {
			if got != want {
				t.Fatalf("block %d: byte %q, want %q — a sieved RMW wrote back a stale hole", b, got, want)
			}
		}
	}
}

// FuzzSieveSpans feeds random block-selection bitmaps through the sieve
// planner and the write path, checking the span invariants (one span per
// device; the span covers every requested block exactly once; Useful
// counts exactly the requested blocks) and that the read-modify-write
// preserves every untouched byte of the covering span.
func FuzzSieveSpans(f *testing.F) {
	f.Add(uint64(0b1011), uint8(0))
	f.Add(uint64(0xdeadbeef), uint8(1))
	f.Add(^uint64(0), uint8(2))
	f.Fuzz(func(t *testing.T, bits uint64, layoutSel uint8) {
		var l Layout
		switch layoutSel % 3 {
		case 0:
			l = NewStriped(3, 4)
		case 1:
			l = NewStriped(1, 4)
		default:
			var err error
			l, err = NewPartitioned(2, []int64{20, 24, 20}, 1, PackContiguous)
			if err != nil {
				t.Fatal(err)
			}
		}
		const total, bs = 64, 64
		set, _ := newTestSet(t, l, total)
		vec, picked := sieveVecFromBits(bits, total, bs)
		if picked == 0 {
			return
		}
		spans, err := set.SieveSpans(vec)
		if err != nil {
			t.Fatal(err)
		}
		runs, err := set.MapVec(vec)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[int]bool{}
		var useful int64
		for _, sp := range spans {
			if seen[sp.Dev] {
				t.Fatalf("device %d has two spans", sp.Dev)
			}
			seen[sp.Dev] = true
			var inSpan int64
			pos := sp.PBlock
			for _, r := range sp.Runs {
				if r.Dev != sp.Dev {
					t.Fatalf("span dev %d holds run for dev %d", sp.Dev, r.Dev)
				}
				if r.PBlock < pos {
					t.Fatalf("dev %d: run at pblock %d overlaps or precedes cursor %d", sp.Dev, r.PBlock, pos)
				}
				pos = r.PBlock + r.N
				inSpan += r.N
			}
			if pos > sp.PBlock+sp.Blocks {
				t.Fatalf("dev %d: runs overrun the span", sp.Dev)
			}
			if sp.Runs[0].PBlock != sp.PBlock || pos != sp.PBlock+sp.Blocks {
				t.Fatalf("dev %d: span [%d,%d) not tight around runs", sp.Dev, sp.PBlock, sp.PBlock+sp.Blocks)
			}
			if sp.Useful != inSpan {
				t.Fatalf("dev %d: Useful %d != run blocks %d", sp.Dev, sp.Useful, inSpan)
			}
			useful += sp.Useful
		}
		var mapped int64
		for _, r := range runs {
			mapped += r.N
		}
		if useful != picked || mapped != picked {
			t.Fatalf("requested %d blocks, spans hold %d, runs hold %d", picked, useful, mapped)
		}
		// RMW preservation: write through the sieve, check the full image.
		ctx := sim.NewWall()
		base := make([]byte, total*bs)
		rand.New(rand.NewSource(int64(bits))).Read(base)
		if err := set.WriteRange(ctx, 0, total, base); err != nil {
			t.Fatal(err)
		}
		data := bytes.Repeat([]byte{0x5a}, int(picked)*bs)
		if err := set.WriteVecSieved(ctx, vec, data); err != nil {
			t.Fatal(err)
		}
		img := make([]byte, total*bs)
		if err := set.ReadRange(ctx, 0, total, img); err != nil {
			t.Fatal(err)
		}
		for _, sg := range vec {
			copy(base[sg.Block*bs:(sg.Block+sg.N)*bs], data[sg.BufOff:sg.BufOff+sg.N*bs])
		}
		if !bytes.Equal(img, base) {
			t.Fatal("sieved RMW altered untouched bytes")
		}
	})
}
