package blockio

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/device"
	"repro/internal/sim"
)

// testLayouts enumerates layout instances covering all three families,
// both pack policies, shared devices, uneven partitions and partial
// trailing units. Each comes with the logical total it was sized for.
func testLayouts(t *testing.T) []struct {
	name   string
	layout Layout
	total  int64
} {
	t.Helper()
	mk := func(name string, l Layout, err error, total int64) struct {
		name   string
		layout Layout
		total  int64
	} {
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return struct {
			name   string
			layout Layout
			total  int64
		}{name, l, total}
	}
	p1, err1 := NewPartitioned(4, []int64{13, 7, 0, 22, 5}, 3, PackContiguous)
	p2, err2 := NewPartitioned(4, []int64{13, 7, 0, 22, 5}, 3, PackInterleaved)
	p3, err3 := NewPartitioned(2, []int64{9, 9, 9}, 1, PackInterleaved)
	i1, err4 := NewInterleaved(4, 6, 3, 47, PackContiguous)
	i2, err5 := NewInterleaved(4, 6, 3, 47, PackInterleaved)
	i3, err6 := NewInterleaved(3, 3, 2, 17, PackContiguous)
	return []struct {
		name   string
		layout Layout
		total  int64
	}{
		{"striped-d4-u1", NewStriped(4, 1), 47},
		{"striped-d4-u8", NewStriped(4, 8), 100},
		{"striped-d1-u4", NewStriped(1, 4), 23},
		{"striped-d3-u5", NewStriped(3, 5), 61},
		mk("part-contig", p1, err1, 47),
		mk("part-inter", p2, err2, 47),
		mk("part-inter-shared", p3, err3, 27),
		mk("inter-contig", i1, err4, 47),
		mk("inter-inter", i2, err5, 47),
		mk("inter-contig-d3", i3, err6, 17),
	}
}

// bruteRuns builds the expected run decomposition by mapping every block
// and merging physically and logically adjacent neighbours.
func bruteRuns(l Layout, b, n int64) []Run {
	var runs []Run
	for i := int64(0); i < n; i++ {
		dev, pb := l.Map(b + i)
		runs = appendRun(runs, dev, pb, b+i, 1)
	}
	return runs
}

// TestMapRunMatchesMap asserts that every layout's MapRun decomposition
// equals the per-block reference over every (start, length) window.
func TestMapRunMatchesMap(t *testing.T) {
	for _, tc := range testLayouts(t) {
		t.Run(tc.name, func(t *testing.T) {
			for b := int64(0); b < tc.total; b++ {
				for n := int64(0); b+n <= tc.total; n++ {
					got := tc.layout.MapRun(nil, b, n)
					want := bruteRuns(tc.layout, b, n)
					if len(got) != len(want) {
						t.Fatalf("MapRun(%d,%d): %d runs, want %d\n got %v\nwant %v",
							b, n, len(got), len(want), got, want)
					}
					for i := range got {
						g, w := got[i], want[i]
						if g.Dev != w.Dev || g.PBlock != w.PBlock || g.B != w.B || g.N != w.N || g.Segs != nil {
							t.Fatalf("MapRun(%d,%d) run %d = %+v, want %+v", b, n, i, got[i], want[i])
						}
					}
				}
			}
		})
	}
}

// TestPerDeviceClosedForm validates the closed-form per-device extent
// computation against the exhaustive per-block loop for every prefix
// total of every layout.
func TestPerDeviceClosedForm(t *testing.T) {
	for _, tc := range testLayouts(t) {
		t.Run(tc.name, func(t *testing.T) {
			for total := int64(0); total <= tc.total; total++ {
				got := PerDevice(tc.layout, total)
				want := make([]int64, tc.layout.Devices())
				for b := int64(0); b < total; b++ {
					dev, pb := tc.layout.Map(b)
					if pb+1 > want[dev] {
						want[dev] = pb + 1
					}
				}
				for dev := range want {
					if got[dev] != want[dev] {
						t.Fatalf("PerDevice(total=%d) dev %d = %d, want %d (full: got %v want %v)",
							total, dev, got[dev], want[dev], got, want)
					}
				}
			}
		})
	}
}

// newTestSet builds a Set over fresh untimed disks for a layout.
func newTestSet(t *testing.T, l Layout, total int64) (*Set, []*device.Disk) {
	t.Helper()
	disks := make([]*device.Disk, l.Devices())
	for i := range disks {
		disks[i] = device.New(device.Config{
			Name:     fmt.Sprintf("d%d", i),
			Geometry: device.Geometry{BlockSize: 64, BlocksPerCyl: 8, Cylinders: 64},
		})
	}
	store, err := NewDirect(disks)
	if err != nil {
		t.Fatal(err)
	}
	set, err := NewSet(store, l, make([]int64, l.Devices()))
	if err != nil {
		t.Fatal(err)
	}
	return set, disks
}

// TestRangeEquivalence asserts ReadRange/WriteRange are bit-for-bit
// identical to block-at-a-time loops on every layout: data written by
// WriteRange reads back block-by-block, and data written block-by-block
// reads back via ReadRange.
func TestRangeEquivalence(t *testing.T) {
	ctx := sim.NewWall()
	for _, tc := range testLayouts(t) {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			bs := 64
			set, _ := newTestSet(t, tc.layout, tc.total)
			data := make([]byte, int(tc.total)*bs)
			rng.Read(data)
			// Write the whole space with WriteRange in irregular chunks.
			for b := int64(0); b < tc.total; {
				n := int64(rng.Intn(7) + 1)
				if b+n > tc.total {
					n = tc.total - b
				}
				if err := set.WriteRange(ctx, b, n, data[b*int64(bs):(b+n)*int64(bs)]); err != nil {
					t.Fatalf("WriteRange(%d,%d): %v", b, n, err)
				}
				b += n
			}
			// Read back block-at-a-time.
			buf := make([]byte, bs)
			for b := int64(0); b < tc.total; b++ {
				if err := set.ReadBlock(ctx, b, buf); err != nil {
					t.Fatalf("ReadBlock(%d): %v", b, err)
				}
				if !bytes.Equal(buf, data[b*int64(bs):(b+1)*int64(bs)]) {
					t.Fatalf("block %d mismatch after WriteRange", b)
				}
			}

			// Fresh set: write block-at-a-time, read back with ReadRange.
			set2, _ := newTestSet(t, tc.layout, tc.total)
			for b := int64(0); b < tc.total; b++ {
				if err := set2.WriteBlock(ctx, b, data[b*int64(bs):(b+1)*int64(bs)]); err != nil {
					t.Fatalf("WriteBlock(%d): %v", b, err)
				}
			}
			got := make([]byte, len(data))
			for b := int64(0); b < tc.total; {
				n := int64(rng.Intn(9) + 1)
				if b+n > tc.total {
					n = tc.total - b
				}
				if err := set2.ReadRange(ctx, b, n, got[b*int64(bs):(b+n)*int64(bs)]); err != nil {
					t.Fatalf("ReadRange(%d,%d): %v", b, n, err)
				}
				b += n
			}
			if !bytes.Equal(got, data) {
				t.Fatal("ReadRange data differs from per-block writes")
			}
		})
	}
}

// TestRangeCoalescesRequests asserts that a ranged sequential scan of a
// striped layout issues one device request per stripe-unit run rather
// than one per block.
func TestRangeCoalescesRequests(t *testing.T) {
	ctx := sim.NewWall()
	const unit, devs, total = 8, 4, 256
	l := NewStriped(devs, unit)
	set, disks := newTestSet(t, l, total)
	buf := make([]byte, total*64)
	if err := set.ReadRange(ctx, 0, total, buf); err != nil {
		t.Fatal(err)
	}
	var requests int64
	for _, d := range disks {
		requests += d.Stats().Requests()
	}
	if want := int64(total / unit); requests != want {
		t.Fatalf("requests = %d, want %d (one per %d-block run)", requests, want, unit)
	}
}

// TestRangeUnderEngine runs ranged transfers from managed processes so
// the per-device parallel issue path (sim.Par) is exercised.
func TestRangeUnderEngine(t *testing.T) {
	const total = 96
	const bs = 64
	l := NewStriped(4, 4)
	e := sim.NewEngine()
	disks := make([]*device.Disk, l.Devices())
	for i := range disks {
		disks[i] = device.New(device.Config{
			Name:     fmt.Sprintf("d%d", i),
			Geometry: device.Geometry{BlockSize: bs, BlocksPerCyl: 8, Cylinders: 64},
			Engine:   e,
		})
	}
	store, err := NewDirect(disks)
	if err != nil {
		t.Fatal(err)
	}
	set, err := NewSet(store, l, make([]int64, l.Devices()))
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, total*bs)
	rand.New(rand.NewSource(7)).Read(data)
	got := make([]byte, total*bs)
	e.Go("io", func(p *sim.Proc) {
		if err := set.WriteRange(p, 0, total, data); err != nil {
			t.Errorf("WriteRange: %v", err)
			return
		}
		if err := set.ReadRange(p, 0, total, got); err != nil {
			t.Errorf("ReadRange: %v", err)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("engine round trip mismatch")
	}
}
