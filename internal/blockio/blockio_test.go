package blockio

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/device"
	"repro/internal/sim"
)

func smallDisks(n int) []*device.Disk {
	disks := make([]*device.Disk, n)
	for i := range disks {
		disks[i] = device.New(device.Config{
			Name:     "d",
			Geometry: device.Geometry{BlockSize: 256, BlocksPerCyl: 8, Cylinders: 32},
		})
	}
	return disks
}

// checkBijective verifies a layout never maps two logical blocks to the
// same physical location.
func checkBijective(t *testing.T, l Layout, total int64) {
	t.Helper()
	seen := make(map[[2]int64]int64)
	for b := int64(0); b < total; b++ {
		dev, pb := l.Map(b)
		if dev < 0 || dev >= l.Devices() {
			t.Fatalf("%s: block %d mapped to device %d of %d", l.Name(), b, dev, l.Devices())
		}
		if pb < 0 {
			t.Fatalf("%s: block %d mapped to negative pblock %d", l.Name(), b, pb)
		}
		key := [2]int64{int64(dev), pb}
		if prev, dup := seen[key]; dup {
			t.Fatalf("%s: blocks %d and %d collide at dev %d pblock %d", l.Name(), prev, b, dev, pb)
		}
		seen[key] = b
	}
}

func TestStripedMapping(t *testing.T) {
	s := NewStriped(4, 1)
	wantDev := []int{0, 1, 2, 3, 0, 1, 2, 3}
	for b, wd := range wantDev {
		dev, pb := s.Map(int64(b))
		if dev != wd || pb != int64(b/4) {
			t.Fatalf("Map(%d) = (%d,%d), want (%d,%d)", b, dev, pb, wd, b/4)
		}
	}
}

func TestStripedUnitMapping(t *testing.T) {
	s := NewStriped(2, 3)
	// unit 3: blocks 0,1,2 -> dev0 pb0,1,2; 3,4,5 -> dev1 pb0,1,2; 6 -> dev0 pb3.
	cases := []struct {
		b   int64
		dev int
		pb  int64
	}{{0, 0, 0}, {2, 0, 2}, {3, 1, 0}, {5, 1, 2}, {6, 0, 3}, {11, 1, 5}, {12, 0, 6}}
	for _, c := range cases {
		dev, pb := s.Map(c.b)
		if dev != c.dev || pb != c.pb {
			t.Fatalf("Map(%d) = (%d,%d), want (%d,%d)", c.b, dev, pb, c.dev, c.pb)
		}
	}
}

func TestStripedBijective(t *testing.T) {
	checkBijective(t, NewStriped(3, 2), 100)
	checkBijective(t, NewStriped(1, 1), 50)
	checkBijective(t, NewStriped(7, 5), 200)
}

func TestStripedUnitClamped(t *testing.T) {
	s := NewStriped(2, 0)
	if s.Unit != 1 {
		t.Fatalf("unit 0 should clamp to 1, got %d", s.Unit)
	}
}

func TestStripedBalance(t *testing.T) {
	s := NewStriped(4, 2)
	need := PerDevice(s, 64) // 8 full rounds of 4 devices x 2 blocks
	for dev, n := range need {
		if n != 16 {
			t.Fatalf("dev %d extent %d, want 16", dev, n)
		}
	}
}

func TestPartitionedContiguousOneDevicePerPart(t *testing.T) {
	p, err := NewPartitioned(3, []int64{4, 4, 4}, 1, PackContiguous)
	if err != nil {
		t.Fatal(err)
	}
	for b := int64(0); b < 12; b++ {
		dev, pb := p.Map(b)
		if dev != int(b/4) || pb != b%4 {
			t.Fatalf("Map(%d) = (%d,%d), want (%d,%d)", b, dev, pb, b/4, b%4)
		}
	}
}

func TestPartitionedSharedDeviceContiguous(t *testing.T) {
	// 4 partitions of 4 blocks on 2 devices: parts 0,2 on dev0; 1,3 on dev1.
	p, err := NewPartitioned(2, []int64{4, 4, 4, 4}, 1, PackContiguous)
	if err != nil {
		t.Fatal(err)
	}
	// Part 2 (blocks 8..11) should be at dev0 pblocks 4..7.
	dev, pb := p.Map(8)
	if dev != 0 || pb != 4 {
		t.Fatalf("Map(8) = (%d,%d), want (0,4)", dev, pb)
	}
	checkBijective(t, p, 16)
}

func TestPartitionedSharedDeviceInterleaved(t *testing.T) {
	// Unit 2, parts 0,2 share dev0. Part0 unit0 -> pb 0..1, part2 unit0 -> pb 2..3,
	// part0 unit1 -> pb 4..5, part2 unit1 -> pb 6..7.
	p, err := NewPartitioned(2, []int64{4, 4, 4, 4}, 2, PackInterleaved)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		b   int64
		dev int
		pb  int64
	}{{0, 0, 0}, {1, 0, 1}, {2, 0, 4}, {3, 0, 5}, {8, 0, 2}, {9, 0, 3}, {10, 0, 6}, {11, 0, 7}}
	for _, c := range cases {
		dev, pb := p.Map(c.b)
		if dev != c.dev || pb != c.pb {
			t.Fatalf("Map(%d) = (%d,%d), want (%d,%d)", c.b, dev, pb, c.dev, c.pb)
		}
	}
	checkBijective(t, p, 16)
}

func TestPartitionedUnevenSizes(t *testing.T) {
	p, err := NewPartitioned(2, []int64{5, 3, 2}, 1, PackContiguous)
	if err != nil {
		t.Fatal(err)
	}
	checkBijective(t, p, 10)
	if p.Parts() != 3 {
		t.Fatalf("Parts = %d", p.Parts())
	}
	if s, e := p.PartRange(1); s != 5 || e != 8 {
		t.Fatalf("PartRange(1) = [%d,%d)", s, e)
	}
	for b := int64(0); b < 10; b++ {
		want := 0
		switch {
		case b >= 8:
			want = 2
		case b >= 5:
			want = 1
		}
		if got := p.PartOf(b); got != want {
			t.Fatalf("PartOf(%d) = %d, want %d", b, got, want)
		}
	}
}

func TestPartitionedErrors(t *testing.T) {
	if _, err := NewPartitioned(0, []int64{1}, 1, PackContiguous); err == nil {
		t.Fatal("0 devices accepted")
	}
	if _, err := NewPartitioned(1, nil, 1, PackContiguous); err == nil {
		t.Fatal("no partitions accepted")
	}
	if _, err := NewPartitioned(1, []int64{-1}, 1, PackContiguous); err == nil {
		t.Fatal("negative size accepted")
	}
}

func TestInterleavedEqualProcsDevices(t *testing.T) {
	// P == D: each proc's stream sequential on its own device.
	il, err := NewInterleaved(3, 3, 1, 12, PackInterleaved)
	if err != nil {
		t.Fatal(err)
	}
	for b := int64(0); b < 12; b++ {
		dev, pb := il.Map(b)
		if dev != int(b%3) || pb != b/3 {
			t.Fatalf("Map(%d) = (%d,%d), want (%d,%d)", b, dev, pb, b%3, b/3)
		}
	}
}

func TestInterleavedMoreProcsThanDevices(t *testing.T) {
	// P=4 procs on D=2 devices: procs 0,2 -> dev0; 1,3 -> dev1.
	il, err := NewInterleaved(2, 4, 1, 16, PackInterleaved)
	if err != nil {
		t.Fatal(err)
	}
	checkBijective(t, il, 16)
	// Block 0 (proc0 round0) and block 2 (proc2 round0) both on dev0.
	d0, p0 := il.Map(0)
	d2, p2 := il.Map(2)
	if d0 != 0 || d2 != 0 {
		t.Fatalf("devs = %d,%d want 0,0", d0, d2)
	}
	if p0 == p2 {
		t.Fatal("collision on shared device")
	}
}

func TestInterleavedContiguousPacking(t *testing.T) {
	il, err := NewInterleaved(2, 4, 1, 16, PackContiguous)
	if err != nil {
		t.Fatal(err)
	}
	checkBijective(t, il, 16)
	// proc0 owns groups 0,4,8,12 -> 4 groups at dev0 pblocks 0..3;
	// proc2 owns groups 2,6,10,14 -> dev0 pblocks 4..7.
	dev, pb := il.Map(2) // proc2 round0
	if dev != 0 || pb != 4 {
		t.Fatalf("Map(2) = (%d,%d), want (0,4)", dev, pb)
	}
}

func TestInterleavedUnits(t *testing.T) {
	il, err := NewInterleaved(2, 2, 3, 24, PackInterleaved)
	if err != nil {
		t.Fatal(err)
	}
	checkBijective(t, il, 24)
	// Group = 3 blocks. Block 0..2 -> proc0 dev0 pb0..2; 3..5 -> proc1 dev1 pb0..2;
	// 6..8 -> proc0 dev0 pb3..5.
	dev, pb := il.Map(7)
	if dev != 0 || pb != 4 {
		t.Fatalf("Map(7) = (%d,%d), want (0,4)", dev, pb)
	}
}

func TestInterleavedErrors(t *testing.T) {
	if _, err := NewInterleaved(0, 1, 1, 1, PackInterleaved); err == nil {
		t.Fatal("0 devices accepted")
	}
	if _, err := NewInterleaved(1, 0, 1, 1, PackInterleaved); err == nil {
		t.Fatal("0 procs accepted")
	}
}

func TestLayoutBijectiveQuick(t *testing.T) {
	err := quick.Check(func(d8, p8, u8 uint8, total16 uint16) bool {
		d := int(d8%6) + 1
		procs := int(p8%6) + 1
		unit := int64(u8%4) + 1
		total := int64(total16%200) + 1
		il, err := NewInterleaved(d, procs, unit, total, PackInterleaved)
		if err != nil {
			return false
		}
		seen := make(map[[2]int64]bool)
		for b := int64(0); b < total; b++ {
			dev, pb := il.Map(b)
			key := [2]int64{int64(dev), pb}
			if seen[key] {
				return false
			}
			seen[key] = true
		}
		return true
	}, &quick.Config{MaxCount: 60})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPerDeviceCoversMapping(t *testing.T) {
	l, err := NewPartitioned(2, []int64{7, 5, 3}, 2, PackInterleaved)
	if err != nil {
		t.Fatal(err)
	}
	need := PerDevice(l, 15)
	for b := int64(0); b < 15; b++ {
		dev, pb := l.Map(b)
		if pb >= need[dev] {
			t.Fatalf("block %d at dev %d pb %d exceeds extent %d", b, dev, pb, need[dev])
		}
	}
}

func TestDirectStoreValidation(t *testing.T) {
	if _, err := NewDirect(nil); err == nil {
		t.Fatal("empty device set accepted")
	}
	mixed := []*device.Disk{
		device.New(device.Config{Geometry: device.Geometry{BlockSize: 256, BlocksPerCyl: 2, Cylinders: 2}}),
		device.New(device.Config{Geometry: device.Geometry{BlockSize: 512, BlocksPerCyl: 2, Cylinders: 2}}),
	}
	if _, err := NewDirect(mixed); err == nil {
		t.Fatal("mixed geometry accepted")
	}
}

func TestSetRoundTripAcrossLayouts(t *testing.T) {
	layouts := []func(total int64) Layout{
		func(total int64) Layout { return NewStriped(4, 1) },
		func(total int64) Layout {
			l, err := NewPartitioned(4, []int64{8, 8, 8, 8}, 2, PackContiguous)
			if err != nil {
				t.Fatal(err)
			}
			return l
		},
		func(total int64) Layout {
			l, err := NewInterleaved(4, 8, 2, total, PackInterleaved)
			if err != nil {
				t.Fatal(err)
			}
			return l
		},
	}
	const total = 32
	for _, mk := range layouts {
		layout := mk(total)
		store, err := NewDirect(smallDisks(4))
		if err != nil {
			t.Fatal(err)
		}
		set, err := NewSet(store, layout, make([]int64, 4))
		if err != nil {
			t.Fatal(err)
		}
		ctx := sim.NewWall()
		bs := set.BlockSize()
		for b := int64(0); b < total; b++ {
			blk := bytes.Repeat([]byte{byte(b + 1)}, bs)
			if err := set.WriteBlock(ctx, b, blk); err != nil {
				t.Fatalf("%s: write %d: %v", layout.Name(), b, err)
			}
		}
		for b := int64(0); b < total; b++ {
			got := make([]byte, bs)
			if err := set.ReadBlock(ctx, b, got); err != nil {
				t.Fatalf("%s: read %d: %v", layout.Name(), b, err)
			}
			if got[0] != byte(b+1) || got[bs-1] != byte(b+1) {
				t.Fatalf("%s: block %d corrupted (got %d)", layout.Name(), b, got[0])
			}
		}
	}
}

func TestSetWithExtentBases(t *testing.T) {
	store, err := NewDirect(smallDisks(2))
	if err != nil {
		t.Fatal(err)
	}
	ctx := sim.NewWall()
	bs := store.BlockSize()
	// Two files on the same devices at different bases must not collide.
	mk := func(base int64) *Set {
		set, err := NewSet(store, NewStriped(2, 1), []int64{base, base})
		if err != nil {
			t.Fatal(err)
		}
		return set
	}
	f1, f2 := mk(0), mk(10)
	blkA := bytes.Repeat([]byte{0xaa}, bs)
	blkB := bytes.Repeat([]byte{0xbb}, bs)
	if err := f1.WriteBlock(ctx, 0, blkA); err != nil {
		t.Fatal(err)
	}
	if err := f2.WriteBlock(ctx, 0, blkB); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, bs)
	if err := f1.ReadBlock(ctx, 0, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0xaa {
		t.Fatal("file extents collided")
	}
}

func TestSetValidation(t *testing.T) {
	store, err := NewDirect(smallDisks(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSet(store, NewStriped(3, 1), make([]int64, 3)); err == nil {
		t.Fatal("layout wider than store accepted")
	}
	if _, err := NewSet(store, NewStriped(2, 1), make([]int64, 1)); err == nil {
		t.Fatal("wrong base count accepted")
	}
}

func TestPackString(t *testing.T) {
	if PackContiguous.String() != "contiguous" || PackInterleaved.String() != "interleaved" {
		t.Fatal("Pack String broken")
	}
	if Pack(5).String() == "" {
		t.Fatal("unknown Pack empty")
	}
}
