package blockio

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/device"
	"repro/internal/sim"
)

// newBatchStore builds a shared untimed store plus n Sets with abutting
// extents (file i occupies per-device blocks [i*perDev, (i+1)*perDev)),
// all striped with the given unit.
func newBatchStore(t *testing.T, devs int, unit, perDev int64, files int) ([]*Set, []*device.Disk) {
	t.Helper()
	disks := make([]*device.Disk, devs)
	for i := range disks {
		disks[i] = device.New(device.Config{
			Name:     fmt.Sprintf("d%d", i),
			Geometry: device.Geometry{BlockSize: 64, BlocksPerCyl: 8, Cylinders: 64},
		})
	}
	store, err := NewDirect(disks)
	if err != nil {
		t.Fatal(err)
	}
	sets := make([]*Set, files)
	for f := range sets {
		base := make([]int64, devs)
		for d := range base {
			base[d] = int64(f) * perDev
		}
		sets[f], err = NewSet(store, NewStriped(devs, unit), base)
		if err != nil {
			t.Fatal(err)
		}
	}
	return sets, disks
}

// TestBatchVecMergesAcrossFiles is the point of the cross-file batch: two
// files with abutting extents, each contributing a contiguous range,
// coalesce to ONE device request per device — where per-file vectored
// I/O must issue one per file per device.
func TestBatchVecMergesAcrossFiles(t *testing.T) {
	const devs, perDev = 2, 4
	sets, disks := newBatchStore(t, devs, 1, perDev, 2)
	bs := int64(sets[0].BlockSize())
	ctx := sim.NewWall()
	bufA := make([]byte, 8*bs)
	bufB := make([]byte, 8*bs)
	for i := range bufA {
		bufA[i] = byte(i)
		bufB[i] = byte(i + 128)
	}
	batch := BatchVec{
		{Set: sets[0], Vec: Vec{{Block: 0, N: 8}}, Buf: bufA},
		{Set: sets[1], Vec: Vec{{Block: 0, N: 8}}, Buf: bufB},
	}
	if n, err := batch.NumRuns(); err != nil || n != devs {
		t.Fatalf("NumRuns = %d, %v; want %d (one merged run per device)", n, err, devs)
	}
	if err := batch.Write(ctx); err != nil {
		t.Fatal(err)
	}
	var reqs int64
	for _, d := range disks {
		reqs += d.Stats().Requests()
	}
	if reqs != devs {
		t.Fatalf("batch write issued %d requests, want %d", reqs, devs)
	}
	// Per-file vectored I/O on the same accesses: one run per file per
	// device.
	for _, d := range disks {
		d.ResetStats()
	}
	if err := sets[0].WriteVec(ctx, Vec{{Block: 0, N: 8}}, bufA); err != nil {
		t.Fatal(err)
	}
	if err := sets[1].WriteVec(ctx, Vec{{Block: 0, N: 8}}, bufB); err != nil {
		t.Fatal(err)
	}
	reqs = 0
	for _, d := range disks {
		reqs += d.Stats().Requests()
	}
	if reqs != 2*devs {
		t.Fatalf("per-file writes issued %d requests, want %d", reqs, 2*devs)
	}
	// Read the batch back and verify both buffers round-trip.
	gotA := make([]byte, len(bufA))
	gotB := make([]byte, len(bufB))
	rd := BatchVec{
		{Set: sets[0], Vec: Vec{{Block: 0, N: 8}}, Buf: gotA},
		{Set: sets[1], Vec: Vec{{Block: 0, N: 8}}, Buf: gotB},
	}
	if err := rd.Read(ctx); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotA, bufA) || !bytes.Equal(gotB, bufB) {
		t.Fatal("batch read differs from batch write")
	}
}

// TestBatchVecSharedBuffer exercises the aggregator shape: several files'
// vecs scatter out of ONE buffer, with buffer-contiguous adjacent pieces
// collapsing into a single iov slice.
func TestBatchVecSharedBuffer(t *testing.T) {
	sets, disks := newBatchStore(t, 2, 1, 4, 2)
	bs := int64(sets[0].BlockSize())
	ctx := sim.NewWall()
	buf := make([]byte, 16*bs)
	for i := range buf {
		buf[i] = byte(i * 7)
	}
	batch := BatchVec{
		{Set: sets[0], Vec: Vec{{Block: 0, N: 8, BufOff: 0}}, Buf: buf},
		{Set: sets[1], Vec: Vec{{Block: 0, N: 8, BufOff: 8 * bs}}, Buf: buf},
	}
	if err := batch.Write(ctx); err != nil {
		t.Fatal(err)
	}
	var reqs int64
	for _, d := range disks {
		reqs += d.Stats().Requests()
	}
	if reqs != 2 {
		t.Fatalf("shared-buffer batch issued %d requests, want 2", reqs)
	}
	got := make([]byte, len(buf))
	rd := BatchVec{
		{Set: sets[0], Vec: Vec{{Block: 0, N: 8, BufOff: 0}}, Buf: got},
		{Set: sets[1], Vec: Vec{{Block: 0, N: 8, BufOff: 8 * bs}}, Buf: got},
	}
	if err := rd.Read(ctx); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, buf) {
		t.Fatal("shared-buffer batch round-trip mismatch")
	}
}

// TestBatchVecEquivalence checks batch transfers against per-set vectored
// transfers for random descriptors over every layout family.
func TestBatchVecEquivalence(t *testing.T) {
	for _, tc := range testLayouts(t) {
		t.Run(tc.name, func(t *testing.T) {
			// Two files of tc.total logical blocks each, sharing one
			// store: file 1's extents follow file 0's.
			need := PerDevice(tc.layout, tc.total)
			disks := make([]*device.Disk, tc.layout.Devices())
			for i := range disks {
				disks[i] = device.New(device.Config{
					Name:     fmt.Sprintf("d%d", i),
					Geometry: device.Geometry{BlockSize: 64, BlocksPerCyl: 8, Cylinders: 64},
				})
			}
			store, err := NewDirect(disks)
			if err != nil {
				t.Fatal(err)
			}
			mk := func(file int64) *Set {
				base := make([]int64, len(need))
				for d := range base {
					base[d] = file * need[d]
				}
				s, err := NewSet(store, tc.layout, base)
				if err != nil {
					t.Fatal(err)
				}
				return s
			}
			sets := []*Set{mk(0), mk(1)}
			bs := int64(store.BlockSize())
			ctx := sim.NewWall()
			rng := rand.New(rand.NewSource(11))
			// Seed both files with distinct per-block patterns.
			blk := make([]byte, bs)
			for f, s := range sets {
				for b := int64(0); b < tc.total; b++ {
					for i := range blk {
						blk[i] = byte(int64(f)*97 + b*31 + int64(i))
					}
					if err := s.WriteBlock(ctx, b, blk); err != nil {
						t.Fatal(err)
					}
				}
			}
			for trial := 0; trial < 10; trial++ {
				vecs := make([]Vec, len(sets))
				bufs := make([][]byte, len(sets))
				var batch BatchVec
				for f := range sets {
					vec, bufLen := randomVec(rng, tc.total, bs)
					vecs[f] = vec
					bufs[f] = make([]byte, bufLen)
					batch = append(batch, BatchItem{Set: sets[f], Vec: vec, Buf: bufs[f]})
				}
				if err := batch.Read(ctx); err != nil {
					t.Fatalf("trial %d: batch read: %v", trial, err)
				}
				for f, s := range sets {
					want := make([]byte, len(bufs[f]))
					if err := s.ReadVec(ctx, vecs[f], want); err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(bufs[f], want) {
						t.Fatalf("trial %d: batch read of file %d differs from ReadVec", trial, f)
					}
				}
				// Write random data through the batch; verify per set.
				for f := range bufs {
					rng.Read(bufs[f])
				}
				if err := batch.Write(ctx); err != nil {
					t.Fatalf("trial %d: batch write: %v", trial, err)
				}
				for f, s := range sets {
					got := make([]byte, len(bufs[f]))
					if err := s.ReadVec(ctx, vecs[f], got); err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(got, bufs[f]) {
						t.Fatalf("trial %d: batch write of file %d not visible via ReadVec", trial, f)
					}
				}
			}
		})
	}
}

// TestBatchVecValidation exercises the batch-level error cases.
func TestBatchVecValidation(t *testing.T) {
	sets, disks := newBatchStore(t, 2, 1, 4, 2)
	bs := int64(sets[0].BlockSize())
	ctx := sim.NewWall()
	buf := make([]byte, 8*bs)

	otherDisks := []*device.Disk{device.New(device.Config{
		Geometry: device.Geometry{BlockSize: 64, BlocksPerCyl: 8, Cylinders: 64},
	})}
	otherStore, err := NewDirect(otherDisks)
	if err != nil {
		t.Fatal(err)
	}
	otherSet, err := NewSet(otherStore, NewStriped(1, 1), []int64{0})
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name  string
		batch BatchVec
		want  string
	}{
		{"nil set", BatchVec{{Set: nil, Vec: Vec{{N: 1}}, Buf: buf}}, "no Set"},
		{"mixed stores", BatchVec{
			{Set: sets[0], Vec: Vec{{Block: 0, N: 1}}, Buf: buf},
			{Set: otherSet, Vec: Vec{{Block: 0, N: 1}}, Buf: buf},
		}, "different store"},
		{"same set twice overlapping", BatchVec{
			{Set: sets[0], Vec: Vec{{Block: 0, N: 4}}, Buf: buf},
			{Set: sets[0], Vec: Vec{{Block: 2, N: 4}}, Buf: buf},
		}, "overlap"},
		{"bad item vec", BatchVec{
			{Set: sets[0], Vec: Vec{{Block: 0, N: 1, BufOff: 7}}, Buf: buf},
		}, "not aligned"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.batch.Read(ctx)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Read = %v, want error containing %q", err, tc.want)
			}
			if err := tc.batch.Write(ctx); err == nil {
				t.Fatal("Write accepted invalid batch")
			}
		})
	}
	// An empty batch and empty vecs are fine no-ops.
	if err := (BatchVec{}).Read(ctx); err != nil {
		t.Fatalf("empty batch rejected: %v", err)
	}
	if err := (BatchVec{{Set: sets[0], Vec: nil, Buf: nil}}).Write(ctx); err != nil {
		t.Fatalf("empty item rejected: %v", err)
	}
	if reqs := disks[0].Stats().Requests() + disks[1].Stats().Requests(); reqs != 0 {
		t.Fatalf("invalid/empty batches issued %d requests, want 0", reqs)
	}
}
