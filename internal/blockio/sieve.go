// Data sieving: noncontiguous access as one contiguous covering span per
// device, in the style of ROMIO's optimization of noncontiguous MPI-IO
// requests (Thakur/Gropp/Lusk).
//
// The vectored path (vec.go) issues one device request per physically
// contiguous gather run, which is optimal when runs are long but pays the
// full per-request cost (overhead + seek + rotational latency) for every
// hole in the access pattern. When the pattern is dense — many small
// pieces separated by small holes — it is cheaper to move the holes too:
// a sieved read issues ONE request per device covering the span from the
// first to the last requested block, scattering the requested pieces into
// the caller's buffer and the unwanted hole blocks into pooled scratch; a
// sieved write reads the covering span, overlays the caller's pieces, and
// writes the span back (read-modify-write), two requests per device
// however fragmented the pattern.
//
// The write-back makes concurrent writers dangerous: a span's holes may
// be another writer's data, so writing back a stale hole loses that
// writer's update. Each Set therefore serializes sieved writes per device
// through a lazily created sim.Mutex (strict-alternation discipline, like
// stripe.Parity's row locks): the whole read-modify-write of one device
// is atomic, every branch of the cross-device sim.Par holds at most one
// device lock (no ordering to violate, hence no deadlock), and concurrent
// sieved writers with disjoint block sets land exactly their own bytes
// whatever order the engine schedules them in. Writers that bypass the
// sieve (plain WriteVec) are not protected — concurrent writers to one
// device must either touch disjoint spans or all go through the sieve,
// which is how the collective layer's strategy routing uses it.

package blockio

import (
	"sync"

	"repro/internal/sim"
)

// SieveSpan is one device's covering span for a sieved transfer: the
// Blocks physically contiguous blocks starting at PBlock (extent
// relative) cover every gather run of the descriptor on Dev; Useful of
// them were actually requested, the rest are holes moved only to make
// the span one device request.
type SieveSpan struct {
	Dev    int
	PBlock int64
	Blocks int64
	Useful int64
	Runs   []Run // the device's gather runs inside the span, ascending
}

// SieveSpans validates vec and computes the per-device covering spans the
// sieved paths would transfer, in ascending device order — the planning
// half of ReadVecSieved/WriteVecSieved, exposed for cost models and
// tests.
func (s *Set) SieveSpans(vec Vec) ([]SieveSpan, error) {
	if err := s.checkVec("SieveSpans", vec, -1); err != nil {
		return nil, err
	}
	return s.sieveSpans(s.mapVec(vec)), nil
}

// sieveSpans groups mapped gather runs (sorted by device, physical
// block — mapVec's order) into one covering span per device.
func (s *Set) sieveSpans(runs []Run) []SieveSpan {
	var spans []SieveSpan
	for i := 0; i < len(runs); {
		j := i + 1
		for j < len(runs) && runs[j].Dev == runs[i].Dev {
			j++
		}
		sp := SieveSpan{
			Dev:    runs[i].Dev,
			PBlock: runs[i].PBlock,
			Blocks: runs[j-1].PBlock + runs[j-1].N - runs[i].PBlock,
			Runs:   runs[i:j],
		}
		for _, r := range sp.Runs {
			sp.Useful += r.N
		}
		spans = append(spans, sp)
		i = j
	}
	return spans
}

// sievePool recycles hole scratch and span staging buffers across sieved
// transfers (the spans can be large — that is the point of sieving — so
// per-call allocation would be real churn, as the pooled batch-mapping
// scratch was before it).
var sievePool = sync.Pool{New: func() any { return new([]byte) }}

// getSieveBuf pops a pooled buffer of at least n bytes.
func getSieveBuf(n int64) *[]byte {
	bp := sievePool.Get().(*[]byte)
	if int64(cap(*bp)) < n {
		*bp = make([]byte, n)
	}
	*bp = (*bp)[:n]
	return bp
}

// sieveIov builds the scatter/gather list of one covering span: the
// requested runs' blocks map to the caller's buffer slices (the true
// scatter path — no staging copy on stores that scatter at the device),
// and each hole maps to its slice of the scratch buffer. hole(off, n)
// returns the scratch bytes standing in for the n hole blocks at span
// offset off.
func sieveIov(sp SieveSpan, bs int64, buf []byte, hole func(off, n int64) []byte) [][]byte {
	var iov [][]byte
	pos := sp.PBlock
	for _, r := range sp.Runs {
		if r.PBlock > pos {
			iov = append(iov, hole(pos-sp.PBlock, r.PBlock-pos))
			pos = r.PBlock
		}
		for _, sg := range r.Segs {
			iov = append(iov, buf[sg.BufOff:sg.BufOff+sg.Blocks*bs])
		}
		pos += r.N
	}
	return iov
}

// ReadVecSieved reads the blocks described by vec into buf like ReadVec,
// but as one covering device request per device: requested pieces
// scatter straight into buf, hole blocks into pooled scratch. Devices
// proceed in parallel under a simulation engine. Reads take no locks
// (they modify nothing), matching ReadVec.
func (s *Set) ReadVecSieved(ctx sim.Context, vec Vec, buf []byte) error {
	if err := s.checkVec("ReadVecSieved", vec, int64(len(buf))); err != nil {
		return err
	}
	spans := s.sieveSpans(s.mapVec(vec))
	if len(spans) == 0 {
		return nil
	}
	bs := int64(s.store.BlockSize())
	one := func(ctx sim.Context, sp SieveSpan) error {
		holeBp := getSieveBuf((sp.Blocks - sp.Useful) * bs)
		defer sievePool.Put(holeBp)
		var holeOff int64
		iov := sieveIov(sp, bs, buf, func(_, n int64) []byte {
			h := (*holeBp)[holeOff : holeOff+n*bs]
			holeOff += n * bs
			return h
		})
		return s.store.ReadBlocksVec(ctx, sp.Dev, s.base[sp.Dev]+sp.PBlock, int(sp.Blocks), iov)
	}
	if len(spans) == 1 {
		return one(ctx, spans[0])
	}
	fns := make([]func(sim.Context) error, len(spans))
	for i, sp := range spans {
		sp := sp
		fns[i] = func(c sim.Context) error { return one(c, sp) }
	}
	return sim.Par(ctx, fns...)
}

// lockSieve serializes sieved writes on device dev (engine contexts
// only — without an engine there is no concurrency to guard). The
// returned function unlocks.
func (s *Set) lockSieve(ctx sim.Context, dev int) func() {
	pr, ok := ctx.(*sim.Proc)
	if !ok {
		return func() {}
	}
	if s.sieveLocks == nil {
		s.sieveLocks = make(map[int]*sim.Mutex)
	}
	mu := s.sieveLocks[dev]
	if mu == nil {
		mu = &sim.Mutex{}
		s.sieveLocks[dev] = mu
	}
	mu.Lock(pr)
	return func() { mu.Unlock(pr) }
}

// WriteVecSieved writes the blocks described by vec from buf like
// WriteVec, but as a read-modify-write of one covering span per device:
// under the device's sieve lock, the span is read into pooled scratch
// (one request), then written back (one request) gathering the
// requested pieces straight from buf and the hole blocks from the
// freshly read scratch. A span with no holes skips the read but still
// takes the lock, so a hole-free writer can never slip inside another
// writer's read-modify-write window. Devices proceed in parallel under
// a simulation engine; each parallel branch holds at most one device
// lock, so concurrent sieved writers contend but never deadlock.
func (s *Set) WriteVecSieved(ctx sim.Context, vec Vec, buf []byte) error {
	if err := s.checkVec("WriteVecSieved", vec, int64(len(buf))); err != nil {
		return err
	}
	spans := s.sieveSpans(s.mapVec(vec))
	if len(spans) == 0 {
		return nil
	}
	bs := int64(s.store.BlockSize())
	one := func(ctx sim.Context, sp SieveSpan) error {
		unlock := s.lockSieve(ctx, sp.Dev)
		defer unlock()
		pb := s.base[sp.Dev] + sp.PBlock
		if sp.Useful == sp.Blocks {
			iov := sieveIov(sp, bs, buf, nil) // no holes: hole fn never called
			return s.store.WriteBlocksVec(ctx, sp.Dev, pb, int(sp.Blocks), iov)
		}
		spanBp := getSieveBuf(sp.Blocks * bs)
		defer sievePool.Put(spanBp)
		span := *spanBp
		if err := s.store.ReadBlocks(ctx, sp.Dev, pb, int(sp.Blocks), span); err != nil {
			return err
		}
		iov := sieveIov(sp, bs, buf, func(off, n int64) []byte {
			return span[off*bs : (off+n)*bs]
		})
		return s.store.WriteBlocksVec(ctx, sp.Dev, pb, int(sp.Blocks), iov)
	}
	if len(spans) == 1 {
		return one(ctx, spans[0])
	}
	fns := make([]func(sim.Context) error, len(spans))
	for i, sp := range spans {
		sp := sp
		fns[i] = func(c sim.Context) error { return one(c, sp) }
	}
	return sim.Par(ctx, fns...)
}
