// Extent (multi-block run) I/O: the contiguity iterator over layouts and
// the ranged Set operations built on it.
//
// The device model charges every request a fixed overhead plus seek and
// rotational latency, so a sequential scan issued block-at-a-time pays
// those costs once per block. MapRun decomposes a logical block range
// into maximal physically contiguous per-device runs in closed form;
// ReadRange/WriteRange issue each run as a single coalesced store
// request, in parallel across devices under a simulation engine. A run
// of N contiguous blocks then costs one overhead + one seek + rotation +
// N transfers instead of N of each.

package blockio

import (
	"fmt"

	"repro/internal/sim"
)

// Run is a physically contiguous span of a layout: N logical blocks map
// to the physical blocks [PBlock, PBlock+N) of device Dev.
//
// A run produced by Layout.MapRun is logically contiguous too — its
// blocks are [B, B+N) — and has no Segs. A gather run produced by vec
// merging (Set.MapVec) may cover logically scattered blocks: Segs then
// lists where each consecutive slice of the run's blocks lives in the
// caller's buffer, and B records only the run's first logical block (for
// diagnostics).
type Run struct {
	Dev    int   // device index
	PBlock int64 // first physical block (file-extent relative)
	B      int64 // first logical block
	N      int64 // length in blocks
	Segs   []Seg // buffer scatter/gather map; nil for plain MapRun runs
}

// appendRun adds a span to dst, merging with the previous run when it is
// both logically and physically adjacent (e.g. consecutive stripe units
// on a single-device layout, or consecutive granules of an unshared
// partition).
func appendRun(dst []Run, dev int, pblock, b, n int64) []Run {
	if n <= 0 {
		return dst
	}
	if k := len(dst) - 1; k >= 0 {
		if last := &dst[k]; last.Dev == dev && last.PBlock+last.N == pblock && last.B+last.N == b {
			last.N += n
			return dst
		}
	}
	return append(dst, Run{Dev: dev, PBlock: pblock, B: b, N: n})
}

// MapRun implements Layout one stripe unit at a time: within a unit
// blocks are physically contiguous, and adjacent units merge when the
// layout has a single device.
func (s *Striped) MapRun(dst []Run, b, n int64) []Run {
	for n > 0 {
		seg := s.Unit - b%s.Unit
		if seg > n {
			seg = n
		}
		dev, pb := s.Map(b)
		dst = appendRun(dst, dev, pb, b, seg)
		b += seg
		n -= seg
	}
	return dst
}

// perDevice is the closed-form extent computation for PerDevice: device
// dev holds stripe units dev, dev+D, …, each Unit blocks except a
// possibly short final unit.
func (s *Striped) perDevice(need []int64, total int64) {
	nUnits := (total + s.Unit - 1) / s.Unit
	lastLen := total - (nUnits-1)*s.Unit
	for dev := int64(0); dev < int64(s.D) && dev < nUnits; dev++ {
		c := (nUnits-1-dev)/int64(s.D) + 1 // units on this device
		h := s.Unit
		if dev+(c-1)*int64(s.D) == nUnits-1 {
			h = lastLen
		}
		need[dev] = (c-1)*s.Unit + h
	}
}

// MapRun implements Layout one partition span at a time; under
// PackContiguous a whole within-partition span is one run, under
// PackInterleaved runs are the partition's Unit-sized granules.
func (p *Partitioned) MapRun(dst []Run, b, n int64) []Run {
	for n > 0 {
		part := p.PartOf(b)
		within := b - p.starts[part]
		seg := p.starts[part+1] - b
		if seg > n {
			seg = n
		}
		dev := part % p.D
		if p.Policy != PackInterleaved {
			dst = appendRun(dst, dev, p.base[part]+within, b, seg)
			b += seg
			n -= seg
			continue
		}
		k, rk := int64(p.shareK[part]), int64(p.rank[part])
		for seg > 0 {
			g := p.Unit - within%p.Unit
			if g > seg {
				g = seg
			}
			pblock := ((within/p.Unit)*k+rk)*p.Unit + within%p.Unit
			dst = appendRun(dst, dev, pblock, b, g)
			b += g
			within += g
			seg -= g
			n -= g
		}
	}
	return dst
}

// perDevice is the closed-form extent computation for PerDevice: each
// partition's topmost physical block follows directly from its size,
// share count and rank.
func (p *Partitioned) perDevice(need []int64, total int64) {
	for i := 0; i < p.Parts(); i++ {
		start, end := p.starts[i], p.starts[i+1]
		if start >= total {
			break
		}
		if end > total {
			end = total
		}
		size := end - start
		if size == 0 {
			continue
		}
		dev := i % p.D
		var top int64
		if p.Policy == PackInterleaved {
			k, rk := int64(p.shareK[i]), int64(p.rank[i])
			lastIdx := (size - 1) / p.Unit
			top = (lastIdx*k+rk)*p.Unit + (size - lastIdx*p.Unit)
		} else {
			top = p.base[i] + size
		}
		if top > need[dev] {
			need[dev] = top
		}
	}
}

// MapRun implements Layout one interleave group at a time: a group's
// Unit blocks are physically contiguous on its owner's device.
func (il *Interleaved) MapRun(dst []Run, b, n int64) []Run {
	for n > 0 {
		seg := il.Unit - b%il.Unit
		if seg > n {
			seg = n
		}
		dev, pb := il.Map(b)
		dst = appendRun(dst, dev, pb, b, seg)
		b += seg
		n -= seg
	}
	return dst
}

// perDevice is the closed-form extent computation for PerDevice: stream
// q owns groups q, q+P, … below ceil(total/Unit); its topmost physical
// block follows from its group count, the height of its final group and
// its packing position on the device.
func (il *Interleaved) perDevice(need []int64, total int64) {
	unit := il.Unit
	g := (total + unit - 1) / unit // groups covering [0, total)
	hLast := total - (g-1)*unit
	for q := int64(0); q < int64(il.P) && q < g; q++ {
		c := (g-1-q)/int64(il.P) + 1 // groups owned by stream q
		dev := int(q) % il.D
		h := unit
		if q+(c-1)*int64(il.P) == g-1 {
			h = hLast
		}
		var top int64
		if il.Policy == PackContiguous {
			var base int64
			for q2 := int64(dev); q2 < q; q2 += int64(il.D) {
				base += il.streamGroups(int(q2)) * unit
			}
			top = base + (c-1)*unit + h
		} else {
			k := int64(il.procsOnDev(dev))
			top = ((c-1)*k+q/int64(il.D))*unit + h
		}
		if top > need[dev] {
			need[dev] = top
		}
	}
}

// ReadRange reads the n logical blocks [b, b+n) into dst (len must equal
// n × block size). The range is decomposed into per-device physically
// contiguous runs (Layout.MapRun); each run is issued as one coalesced
// store request, and the runs proceed in parallel across devices under a
// simulation engine.
func (s *Set) ReadRange(ctx sim.Context, b, n int64, dst []byte) error {
	return s.doRange(ctx, "ReadRange", b, n, dst, s.store.ReadBlocks)
}

// WriteRange writes the n logical blocks [b, b+n) from src, the write
// counterpart of ReadRange.
func (s *Set) WriteRange(ctx sim.Context, b, n int64, src []byte) error {
	return s.doRange(ctx, "WriteRange", b, n, src, s.store.WriteBlocks)
}

// doRange implements ReadRange/WriteRange over a per-run transfer.
func (s *Set) doRange(ctx sim.Context, op string, b, n int64, buf []byte,
	xfer func(sim.Context, int, int64, int, []byte) error) error {
	bs := int64(s.store.BlockSize())
	if b < 0 || n < 0 {
		return fmt.Errorf("blockio: %s of blocks [%d,%d)", op, b, b+n)
	}
	if int64(len(buf)) != n*bs {
		return fmt.Errorf("blockio: %s buffer len %d != %d blocks of %d bytes", op, len(buf), n, bs)
	}
	if n == 0 {
		return nil
	}
	runs := s.layout.MapRun(nil, b, n)
	if len(runs) == 1 {
		r := runs[0]
		return xfer(ctx, r.Dev, s.base[r.Dev]+r.PBlock, int(r.N), buf)
	}
	fns := make([]func(sim.Context) error, len(runs))
	for i, r := range runs {
		r := r
		sub := buf[(r.B-b)*bs : (r.B-b+r.N)*bs]
		fns[i] = func(c sim.Context) error {
			return xfer(c, r.Dev, s.base[r.Dev]+r.PBlock, int(r.N), sub)
		}
	}
	return sim.Par(ctx, fns...)
}
