package blockio

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/sim"
)

// TestBatchPlanWindowedEquivalence: writing a batch window by window
// through a plan (with windows issued out of order and staged through
// per-window buffers) must land exactly the bytes one whole-batch
// BatchVec write lands, across stripe units, and reading the windows
// back must reproduce them.
func TestBatchPlanWindowedEquivalence(t *testing.T) {
	for _, unit := range []int64{1, 2, 8} {
		const devs, perDev = 2, 32
		const blocks = 48 // across 2 files of 24
		sets, _ := newBatchStore(t, devs, unit, perDev, 2)
		bs := int64(sets[0].BlockSize())
		ctx := sim.NewWall()
		rng := rand.New(rand.NewSource(unit))
		whole := make([]byte, blocks*bs)
		rng.Read(whole)
		// Both files fully covered, with buffer offsets permuted
		// relative to block order (7 and 5 are coprime to 24) so plan
		// windows cut across scrambled piece order.
		mkBatch := func(buf []byte) BatchVec {
			var v0, v1 Vec
			for b := int64(0); b < 24; b++ {
				v0 = append(v0, VecSeg{Block: b, N: 1, BufOff: (b * 7 % 24) * bs})
				v1 = append(v1, VecSeg{Block: b, N: 1, BufOff: (24 + b*5%24) * bs})
			}
			return BatchVec{
				{Set: sets[0], Vec: v0, Buf: buf},
				{Set: sets[1], Vec: v1, Buf: buf},
			}
		}
		// Reference: whole-batch write on a twin store.
		refSets, _ := newBatchStore(t, devs, unit, perDev, 2)
		refBatch := mkBatch(whole)
		for i := range refBatch {
			refBatch[i].Set = refSets[i]
		}
		if err := refBatch.Write(ctx); err != nil {
			t.Fatal(err)
		}

		// Plan with 3 uneven windows, issued out of order through
		// staging copies.
		cuts := []int64{10 * bs, 31 * bs}
		plan, err := mkBatch(nil).Plan(cuts)
		if err != nil {
			t.Fatal(err)
		}
		if plan.Windows() != 3 {
			t.Fatalf("Windows = %d, want 3", plan.Windows())
		}
		bounds := [][2]int64{{0, 10 * bs}, {10 * bs, 31 * bs}, {31 * bs, blocks * bs}}
		var totalBlocks int64
		for w := range bounds {
			totalBlocks += plan.WindowBlocks(w)
		}
		if totalBlocks != blocks {
			t.Fatalf("windows cover %d blocks, want %d", totalBlocks, blocks)
		}
		for _, w := range []int{2, 0, 1} {
			lo, hi := bounds[w][0], bounds[w][1]
			stage := make([]byte, hi-lo)
			copy(stage, whole[lo:hi])
			if err := plan.WriteWindow(ctx, w, stage, lo); err != nil {
				t.Fatal(err)
			}
		}
		read := func(ss []*Set) []byte {
			out := make([]byte, blocks*bs)
			for f, s := range ss {
				if err := s.ReadVec(ctx, Vec{{Block: 0, N: 24}}, out[int64(f)*24*bs:(int64(f)+1)*24*bs]); err != nil {
					t.Fatal(err)
				}
			}
			return out
		}
		if got, want := read(sets), read(refSets); !bytes.Equal(got, want) {
			t.Fatalf("unit %d: windowed writes diverge from whole-batch write", unit)
		}

		// Read the windows back through the plan, again out of order.
		for _, w := range []int{1, 2, 0} {
			lo, hi := bounds[w][0], bounds[w][1]
			stage := make([]byte, hi-lo)
			if err := plan.ReadWindow(ctx, w, stage, lo); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(stage, whole[lo:hi]) {
				t.Fatalf("unit %d: window %d read back wrong bytes", unit, w)
			}
		}
	}
}

// TestBatchPlanNoReMerge: a contiguous 2-file batch plans to one run per
// device per window — the merge happens once at Plan time, and cutting
// only splits runs at the window edges.
func TestBatchPlanNoReMerge(t *testing.T) {
	// perDev 8 = exactly the blocks each 16-block file puts on each of
	// the 2 devices, so the two files' extents abut physically.
	const devs, perDev = 2, 8
	sets, disks := newBatchStore(t, devs, 1, perDev, 2)
	bs := int64(sets[0].BlockSize())
	batch := BatchVec{
		{Set: sets[0], Vec: Vec{{Block: 0, N: 16}}},
		{Set: sets[1], Vec: Vec{{Block: 0, N: 16, BufOff: 16 * bs}}},
	}
	// Whole batch: one merged cross-file run per device.
	plan, err := batch.Plan(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.WindowRuns(0); got != devs {
		t.Fatalf("unwindowed plan has %d runs, want %d", got, devs)
	}
	// Four windows: one run per device per window, no other inflation.
	plan4, err := batch.Plan([]int64{8 * bs, 16 * bs, 24 * bs})
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < plan4.Windows(); w++ {
		if got := plan4.WindowRuns(w); got != devs {
			t.Fatalf("window %d has %d runs, want %d", w, got, devs)
		}
	}
	ctx := sim.NewWall()
	buf := make([]byte, 8*bs)
	for w := 0; w < plan4.Windows(); w++ {
		if err := plan4.WriteWindow(ctx, w, buf, int64(w)*8*bs); err != nil {
			t.Fatal(err)
		}
	}
	var reqs int64
	for _, d := range disks {
		reqs += d.Stats().Requests()
	}
	if want := int64(4 * devs); reqs != want {
		t.Fatalf("windowed writes issued %d requests, want %d", reqs, want)
	}
}

// TestBatchPlanErrors covers the validation surface: misaligned and
// unordered cuts, cross-store items, physical overlap across windows,
// and out-of-range staging buffers at issue time.
func TestBatchPlanErrors(t *testing.T) {
	sets, _ := newBatchStore(t, 2, 1, 16, 2)
	bs := int64(sets[0].BlockSize())
	batch := BatchVec{{Set: sets[0], Vec: Vec{{Block: 0, N: 8}}}}
	if _, err := batch.Plan([]int64{bs + 1}); err == nil || !strings.Contains(err.Error(), "block size") {
		t.Errorf("misaligned cut: err = %v", err)
	}
	if _, err := batch.Plan([]int64{4 * bs, 2 * bs}); err == nil || !strings.Contains(err.Error(), "ascending") {
		t.Errorf("descending cuts: err = %v", err)
	}
	overlap := BatchVec{
		{Set: sets[0], Vec: Vec{{Block: 0, N: 8}}},
		{Set: sets[0], Vec: Vec{{Block: 4, N: 4, BufOff: 8 * bs}}},
	}
	if _, err := overlap.Plan([]int64{8 * bs}); err == nil || !strings.Contains(err.Error(), "overlap") {
		t.Errorf("physical overlap across windows: err = %v", err)
	}
	plan, err := batch.Plan([]int64{4 * bs})
	if err != nil {
		t.Fatal(err)
	}
	ctx := sim.NewWall()
	if err := plan.WriteWindow(ctx, 2, nil, 0); err == nil || !strings.Contains(err.Error(), "window") {
		t.Errorf("out-of-range window: err = %v", err)
	}
	// Window 1 covers plan bytes [4bs, 8bs): a 2-block buffer at base
	// 4bs cannot hold it.
	if err := plan.WriteWindow(ctx, 1, make([]byte, 2*bs), 4*bs); err == nil || !strings.Contains(err.Error(), "outside") {
		t.Errorf("short staging buffer: err = %v", err)
	}
	// Empty batches plan and issue as no-ops.
	empty, err := BatchVec{}.Plan([]int64{bs})
	if err != nil || empty.Windows() != 2 {
		t.Fatalf("empty batch: %v, windows %d", err, empty.Windows())
	}
	if err := empty.ReadWindow(ctx, 1, nil, 0); err != nil {
		t.Errorf("empty window read: %v", err)
	}
}
