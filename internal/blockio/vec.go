// Vectored (scatter/gather) I/O: the request descriptor, the listio-style
// merge of physically adjacent pieces across descriptor segments, and the
// vectored Set operations built on them.
//
// Extent I/O (extent.go) coalesces runs that are contiguous in both the
// logical file and the caller's buffer. Declustered layouts break that:
// with a stripe unit smaller than the transfer, logically consecutive
// blocks alternate devices, and the blocks that ARE physically adjacent
// on one device are logically strided — so the extent path degenerates to
// one request per unit. A Vec describes the whole transfer up front;
// MapVec decomposes every segment, sorts the pieces by physical address
// and merges the adjacent ones into gather runs, each of which transfers
// as one device request scattering into (gathering from) the caller's
// buffer. Unit-1 declustering then coalesces exactly like unit-8
// striping.

package blockio

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// Seg maps one consecutive slice of a gather run onto the caller's
// buffer: the run's next Blocks blocks transfer at buffer byte offset
// BufOff.
type Seg struct {
	BufOff int64 // byte offset into the caller's buffer (block aligned)
	Blocks int64 // number of consecutive run blocks at that offset
}

// VecSeg is one segment of a vectored request: the n logical blocks
// [Block, Block+N) correspond to the caller-buffer bytes
// [BufOff, BufOff+N×blocksize).
type VecSeg struct {
	Block  int64 // first logical block
	N      int64 // length in blocks
	BufOff int64 // byte offset into the request buffer (block aligned)
}

// Vec is a scatter/gather request descriptor: a list of (logical block
// range, buffer offset) segments, in any order. Segments must be
// pairwise disjoint both in logical blocks and in buffer bytes —
// overlapping segments make the transfer order ambiguous and are
// rejected. Zero-length segments are permitted and ignored.
type Vec []VecSeg

// Blocks reports the total block count of the descriptor.
func (v Vec) Blocks() int64 {
	var n int64
	for _, sg := range v {
		n += sg.N
	}
	return n
}

// checkVec validates descriptor shape: block-aligned in-bounds buffer
// ranges, non-negative block ranges, and pairwise disjointness in both
// coordinate systems. bufLen < 0 skips the buffer bound check (MapVec,
// which has no buffer).
func (s *Set) checkVec(op string, vec Vec, bufLen int64) error {
	bs := int64(s.store.BlockSize())
	act := make([]int, 0, len(vec)) // indices of non-empty segments
	for i, sg := range vec {
		if sg.N < 0 || sg.Block < 0 {
			return fmt.Errorf("blockio: %s segment %d: blocks [%d,%d)", op, i, sg.Block, sg.Block+sg.N)
		}
		if sg.N == 0 {
			continue
		}
		if sg.BufOff < 0 || sg.BufOff%bs != 0 {
			return fmt.Errorf("blockio: %s segment %d: buffer offset %d not aligned to %d-byte blocks", op, i, sg.BufOff, bs)
		}
		if bufLen >= 0 && sg.BufOff+sg.N*bs > bufLen {
			return fmt.Errorf("blockio: %s segment %d: buffer bytes [%d,%d) exceed %d-byte buffer",
				op, i, sg.BufOff, sg.BufOff+sg.N*bs, bufLen)
		}
		act = append(act, i)
	}
	for pass := 0; pass < 2; pass++ {
		byBlock := pass == 0
		idx := append([]int(nil), act...)
		sort.Slice(idx, func(a, b int) bool {
			if byBlock {
				return vec[idx[a]].Block < vec[idx[b]].Block
			}
			return vec[idx[a]].BufOff < vec[idx[b]].BufOff
		})
		for k := 1; k < len(idx); k++ {
			p, c := vec[idx[k-1]], vec[idx[k]]
			if byBlock && p.Block+p.N > c.Block {
				return fmt.Errorf("blockio: %s segments %d and %d overlap in logical blocks", op, idx[k-1], idx[k])
			}
			if !byBlock && p.BufOff+p.N*bs > c.BufOff {
				return fmt.Errorf("blockio: %s segments %d and %d overlap in the buffer", op, idx[k-1], idx[k])
			}
		}
	}
	return nil
}

// appendGather extends runs with the piece (dev, pblock, b, n, bufOff),
// merging it into the previous run when physically adjacent. Pieces must
// arrive sorted by (dev, pblock).
func appendGather(runs []Run, bs int64, dev int, pblock, b, n, bufOff int64) []Run {
	if k := len(runs) - 1; k >= 0 {
		last := &runs[k]
		if last.Dev == dev && last.PBlock+last.N == pblock {
			last.N += n
			if j := len(last.Segs) - 1; j >= 0 && last.Segs[j].BufOff+last.Segs[j].Blocks*bs == bufOff {
				last.Segs[j].Blocks += n
			} else {
				last.Segs = append(last.Segs, Seg{BufOff: bufOff, Blocks: n})
			}
			return runs
		}
	}
	return append(runs, Run{Dev: dev, PBlock: pblock, B: b, N: n,
		Segs: []Seg{{BufOff: bufOff, Blocks: n}}})
}

// MapVec validates vec and decomposes it into gather runs: every segment
// is mapped through the layout, the resulting pieces are sorted by
// physical address, and pieces that are physically adjacent on one
// device merge into a single run even when they come from different
// segments or are logically strided (listio-style coalescing). Physical
// blocks are file-extent relative, like Layout.MapRun. The runs are
// returned in (device, physical block) order.
func (s *Set) MapVec(vec Vec) ([]Run, error) {
	if err := s.checkVec("MapVec", vec, -1); err != nil {
		return nil, err
	}
	return s.mapVec(vec), nil
}

// piece is one (physical run, buffer offset) fragment before merging.
type piece struct {
	dev    int
	pblock int64
	b      int64
	n      int64
	bufOff int64
}

// mapVec is MapVec without validation (callers have run checkVec).
func (s *Set) mapVec(vec Vec) []Run {
	bs := int64(s.store.BlockSize())
	var pieces []piece
	var tmp []Run
	for _, sg := range vec {
		if sg.N == 0 {
			continue
		}
		tmp = s.layout.MapRun(tmp[:0], sg.Block, sg.N)
		for _, r := range tmp {
			pieces = append(pieces, piece{
				dev: r.Dev, pblock: r.PBlock, b: r.B, n: r.N,
				bufOff: sg.BufOff + (r.B-sg.Block)*bs,
			})
		}
	}
	sort.Slice(pieces, func(i, j int) bool {
		if pieces[i].dev != pieces[j].dev {
			return pieces[i].dev < pieces[j].dev
		}
		return pieces[i].pblock < pieces[j].pblock
	})
	runs := make([]Run, 0, len(pieces))
	for _, p := range pieces {
		runs = appendGather(runs, bs, p.dev, p.pblock, p.b, p.n, p.bufOff)
	}
	return runs
}

// ReadVec reads the blocks described by vec into buf, scattering each
// segment's blocks at its buffer offset. Physically adjacent pieces —
// across segments, regardless of logical adjacency — coalesce into
// single gather requests, issued in parallel across devices under a
// simulation engine.
func (s *Set) ReadVec(ctx sim.Context, vec Vec, buf []byte) error {
	return s.doVec(ctx, "ReadVec", vec, buf, s.store.ReadBlocksVec)
}

// WriteVec writes the blocks described by vec from buf, gathering each
// segment's bytes from its buffer offset — the write counterpart of
// ReadVec.
func (s *Set) WriteVec(ctx sim.Context, vec Vec, buf []byte) error {
	return s.doVec(ctx, "WriteVec", vec, buf, s.store.WriteBlocksVec)
}

// doVec implements ReadVec/WriteVec over a per-run vectored transfer.
func (s *Set) doVec(ctx sim.Context, op string, vec Vec, buf []byte,
	xfer func(sim.Context, int, int64, int, [][]byte) error) error {
	if err := s.checkVec(op, vec, int64(len(buf))); err != nil {
		return err
	}
	runs := s.mapVec(vec)
	if len(runs) == 0 {
		return nil
	}
	bs := int64(s.store.BlockSize())
	iov := func(r Run) [][]byte {
		out := make([][]byte, len(r.Segs))
		for i, sg := range r.Segs {
			out[i] = buf[sg.BufOff : sg.BufOff+sg.Blocks*bs]
		}
		return out
	}
	if len(runs) == 1 {
		r := runs[0]
		return xfer(ctx, r.Dev, s.base[r.Dev]+r.PBlock, int(r.N), iov(r))
	}
	fns := make([]func(sim.Context) error, len(runs))
	for i, r := range runs {
		r := r
		fns[i] = func(c sim.Context) error {
			return xfer(c, r.Dev, s.base[r.Dev]+r.PBlock, int(r.N), iov(r))
		}
	}
	return sim.Par(ctx, fns...)
}
